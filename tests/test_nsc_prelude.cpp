// Tests for the derived NSC functions of section 3 and Figures 2-3,
// including the paper's own worked examples and the claimed complexity
// shapes (index: T = O(1), W = O(n + k); bm_route: T = O(1)).
#include <gtest/gtest.h>

#include "nsc/build.hpp"
#include "nsc/eval.hpp"
#include "nsc/prelude.hpp"
#include "nsc/typecheck.hpp"
#include "support/error.hpp"
#include "support/prng.hpp"

namespace nsc::lang {
namespace {

using nsc::SplitMix64;
using nsc::Type;
using nsc::Value;

const TypeRef N = Type::nat();
const TypeRef NSeq = Type::seq(Type::nat());

Evaluated run(const FuncRef& f, const ValueRef& arg) { return apply_fn(f, arg); }

std::vector<std::uint64_t> nats(const ValueRef& v) {
  return v->as_nat_vector();
}

TEST(Prelude, Identity) {
  auto f = prelude::identity(N);
  EXPECT_EQ(run(f, Value::nat(9)).value->as_nat(), 9u);
  check_func(f);
}

TEST(Prelude, Compose) {
  auto inc = lambda("x", N, add(var("x"), nat(1)));
  auto dbl = lambda("x", N, mul(var("x"), nat(2)));
  auto f = prelude::compose(inc, dbl, N);  // inc(dbl(x))
  EXPECT_EQ(run(f, Value::nat(5)).value->as_nat(), 11u);
}

TEST(Prelude, P2Broadcast) {
  // p2(x, [y0..]) = [(x, y0), ...]  (section 3)
  auto f = prelude::p2(N, N);
  auto r = run(f, Value::pair(Value::nat(7), Value::nat_seq({1, 2, 3}))).value;
  ASSERT_EQ(r->length(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(r->elems()[i]->first()->as_nat(), 7u);
    EXPECT_EQ(r->elems()[i]->second()->as_nat(), i + 1);
  }
  check_func(f);
}

TEST(Prelude, BmRoutePaperExample) {
  // bm_route(([u0,u1,u2,u3,u4], [3,0,2]), [a,b,c]) = [a,a,a,c,c] (section 3)
  auto f = prelude::bm_route(N, N);
  auto arg = Value::pair(
      Value::pair(Value::nat_seq({90, 91, 92, 93, 94}),
                  Value::nat_seq({3, 0, 2})),
      Value::nat_seq({100, 101, 102}));
  EXPECT_EQ(nats(run(f, arg).value),
            (std::vector<std::uint64_t>{100, 100, 100, 102, 102}));
  check_func(f);
}

TEST(Prelude, BmRouteBoundMismatchIsOmega) {
  auto f = prelude::bm_route(N, N);
  // Bound has length 2 but counts sum to 3: split fails (Omega).
  auto arg = Value::pair(
      Value::pair(Value::nat_seq({0, 0}), Value::nat_seq({3})),
      Value::nat_seq({5}));
  EXPECT_THROW(run(f, arg), EvalError);
}

TEST(Prelude, BmRouteConstantTime) {
  auto f = prelude::bm_route(N, N);
  auto mk = [](std::size_t n) {
    std::vector<std::uint64_t> u(n, 0), d(n, 1), x(n, 3);
    return Value::pair(Value::pair(Value::nat_seq(u), Value::nat_seq(d)),
                       Value::nat_seq(x));
  };
  auto t1 = run(f, mk(16)).cost;
  auto t2 = run(f, mk(1024)).cost;
  EXPECT_EQ(t1.time, t2.time);                 // T = O(1)
  EXPECT_GT(t2.work, t1.work * 16);            // W scales with data
}

TEST(Prelude, Sigma1Sigma2PaperExample) {
  // x = [in1 a, in2 b, in2 c, in2 d, in1 e, in1 f]:
  // sigma1 = [a, e, f], sigma2 = [b, c, d]  (section 3)
  auto x = Value::seq({Value::in1(Value::nat(1)), Value::in2(Value::nat(2)),
                       Value::in2(Value::nat(3)), Value::in2(Value::nat(4)),
                       Value::in1(Value::nat(5)), Value::in1(Value::nat(6))});
  EXPECT_EQ(nats(run(prelude::sigma1(N, N), x).value),
            (std::vector<std::uint64_t>{1, 5, 6}));
  EXPECT_EQ(nats(run(prelude::sigma2(N, N), x).value),
            (std::vector<std::uint64_t>{2, 3, 4}));
}

TEST(Prelude, FilterKeepsOrder) {
  auto even = lambda("x", N, eq(mod_t(var("x"), nat(2)), nat(0)));
  auto f = prelude::filter(even, N);
  EXPECT_EQ(nats(run(f, Value::nat_seq({5, 2, 7, 4, 6, 1})).value),
            (std::vector<std::uint64_t>{2, 4, 6}));
  EXPECT_EQ(nats(run(f, Value::nat_seq({})).value),
            (std::vector<std::uint64_t>{}));
}

TEST(Prelude, FirstTailLastRemoveLast) {
  auto xs = Value::nat_seq({4, 5, 6, 7});
  EXPECT_EQ(run(prelude::first(N), xs).value->as_nat(), 4u);
  EXPECT_EQ(nats(run(prelude::tail(N), xs).value),
            (std::vector<std::uint64_t>{5, 6, 7}));
  EXPECT_EQ(run(prelude::last(N), xs).value->as_nat(), 7u);
  EXPECT_EQ(nats(run(prelude::remove_last(N), xs).value),
            (std::vector<std::uint64_t>{4, 5, 6}));
}

TEST(Prelude, FirstOfSingleton) {
  auto xs = Value::nat_seq({9});
  EXPECT_EQ(run(prelude::first(N), xs).value->as_nat(), 9u);
  EXPECT_EQ(run(prelude::last(N), xs).value->as_nat(), 9u);
  EXPECT_EQ(run(prelude::tail(N), xs).value->length(), 0u);
  EXPECT_EQ(run(prelude::remove_last(N), xs).value->length(), 0u);
}

TEST(Prelude, FirstOfEmptyIsOmega) {
  // "If x is empty, split will produce an error" (section 3).
  EXPECT_THROW(run(prelude::first(N), Value::empty_seq()), EvalError);
  EXPECT_THROW(run(prelude::last(N), Value::empty_seq()), EvalError);
}

TEST(Prelude, TailOfEmptyIsEmpty) {
  EXPECT_EQ(run(prelude::tail(N), Value::empty_seq()).value->length(), 0u);
  EXPECT_EQ(run(prelude::remove_last(N), Value::empty_seq()).value->length(),
            0u);
}

TEST(Prelude, IndexSelectsSortedPositions) {
  // index(C, I) = [C_{i0}, ...] (Figure 3).
  auto f = prelude::index(N);
  auto C = Value::nat_seq({10, 11, 12, 13, 14, 15});
  EXPECT_EQ(nats(run(f, Value::pair(C, Value::nat_seq({0, 2, 5}))).value),
            (std::vector<std::uint64_t>{10, 12, 15}));
  EXPECT_EQ(nats(run(f, Value::pair(C, Value::nat_seq({}))).value),
            (std::vector<std::uint64_t>{}));
  // Duplicate indices replicate, still constant time.
  EXPECT_EQ(nats(run(f, Value::pair(C, Value::nat_seq({1, 1, 4}))).value),
            (std::vector<std::uint64_t>{11, 11, 14}));
}

TEST(Prelude, IndexComplexityShape) {
  // T = O(1) and W = O(n + k): time equal across sizes, work ~linear.
  auto f = prelude::index(N);
  auto mk = [](std::size_t n) {
    std::vector<std::uint64_t> c(n);
    for (std::size_t i = 0; i < n; ++i) c[i] = i;
    std::vector<std::uint64_t> idx{0, n / 2, n - 1};
    return Value::pair(Value::nat_seq(c), Value::nat_seq(idx));
  };
  auto small = run(f, mk(64)).cost;
  auto large = run(f, mk(4096)).cost;
  EXPECT_EQ(small.time, large.time);
  EXPECT_GT(large.work, small.work * 32);
  EXPECT_LT(large.work, small.work * 128);
}

TEST(Prelude, IndexSplitBlocks) {
  auto f = prelude::index_split(N);
  auto C = Value::nat_seq({10, 11, 12, 13, 14, 15});
  auto r = run(f, Value::pair(C, Value::nat_seq({2, 4}))).value;
  // Split *at* positions 2 and 4: [10,11 | 12,13 | 14,15].
  ASSERT_EQ(r->length(), 3u);
  EXPECT_EQ(nats(r->elems()[0]), (std::vector<std::uint64_t>{10, 11}));
  EXPECT_EQ(nats(r->elems()[1]), (std::vector<std::uint64_t>{12, 13}));
  EXPECT_EQ(nats(r->elems()[2]), (std::vector<std::uint64_t>{14, 15}));
}

TEST(Prelude, IndexSplitAtZeroMakesLeadingEmptyBlock) {
  auto f = prelude::index_split(N);
  auto r = run(f, Value::pair(Value::nat_seq({1, 2}), Value::nat_seq({0})))
               .value;
  ASSERT_EQ(r->length(), 2u);
  EXPECT_EQ(r->elems()[0]->length(), 0u);
  EXPECT_EQ(nats(r->elems()[1]), (std::vector<std::uint64_t>{1, 2}));
}

TEST(Prelude, SqrtBlockWithinFactorTwo) {
  for (std::uint64_t n : {1ull, 4ull, 9ull, 100ull, 1000ull, 4096ull}) {
    auto b = eval(prelude::sqrt_block(nat(n))).value->as_nat();
    EXPECT_GE(b, 1u);
    EXPECT_GE(2 * b + 1, nsc::isqrt(n)) << n;
    EXPECT_LE(b, 2 * nsc::isqrt(n) + 1) << n;
  }
}

TEST(Prelude, SqrtPositionsSamplesEveryBlock) {
  auto f = prelude::sqrt_positions(N);
  std::vector<std::uint64_t> c(16);
  for (std::size_t i = 0; i < 16; ++i) c[i] = 100 + i;
  auto r = nats(run(f, Value::nat_seq(c)).value);
  // Block size for n=16 is 4: positions 0, 4, 8, 12.
  EXPECT_EQ(r, (std::vector<std::uint64_t>{100, 104, 108, 112}));
}

TEST(Prelude, SqrtSplitReassembles) {
  auto f = prelude::sqrt_split(N);
  std::vector<std::uint64_t> c{9, 8, 7, 6, 5, 4, 3, 2, 1};
  auto r = run(f, Value::nat_seq(c)).value;
  std::vector<std::uint64_t> flat;
  for (const auto& blk : r->elems()) {
    for (auto v : blk->as_nat_vector()) flat.push_back(v);
  }
  EXPECT_EQ(flat, c);
  EXPECT_GT(r->length(), 1u);
}

TEST(Prelude, RankOne) {
  auto f = prelude::rank_one();
  auto B = Value::nat_seq({1, 3, 5, 7});
  EXPECT_EQ(run(f, Value::pair(Value::nat(0), B)).value->as_nat(), 0u);
  EXPECT_EQ(run(f, Value::pair(Value::nat(3), B)).value->as_nat(), 2u);
  EXPECT_EQ(run(f, Value::pair(Value::nat(9), B)).value->as_nat(), 4u);
}

TEST(Prelude, DirectRank) {
  auto f = prelude::direct_rank();
  auto r = run(f, Value::pair(Value::nat_seq({0, 4, 8}),
                              Value::nat_seq({1, 3, 5, 7})))
               .value;
  EXPECT_EQ(nats(r), (std::vector<std::uint64_t>{0, 2, 4}));
}

TEST(Prelude, DirectMergeMergesSorted) {
  auto f = prelude::direct_merge();
  auto r = run(f, Value::pair(Value::nat_seq({2, 4, 6}),
                              Value::nat_seq({1, 3, 5, 7})))
               .value;
  EXPECT_EQ(nats(r), (std::vector<std::uint64_t>{1, 2, 3, 4, 5, 6, 7}));
}

TEST(Prelude, DirectMergeEdgeCases) {
  auto f = prelude::direct_merge();
  EXPECT_EQ(nats(run(f, Value::pair(Value::nat_seq({}),
                                    Value::nat_seq({1, 2})))
                     .value),
            (std::vector<std::uint64_t>{1, 2}));
  EXPECT_EQ(nats(run(f, Value::pair(Value::nat_seq({1, 2}),
                                    Value::nat_seq({})))
                     .value),
            (std::vector<std::uint64_t>{1, 2}));
  EXPECT_EQ(nats(run(f, Value::pair(Value::nat_seq({}), Value::nat_seq({})))
                     .value),
            (std::vector<std::uint64_t>{}));
}

TEST(Prelude, DirectMergeRandomized) {
  SplitMix64 rng(77);
  auto f = prelude::direct_merge();
  for (int trial = 0; trial < 20; ++trial) {
    auto a = rng.vec(rng.below(12), 50);
    auto b = rng.vec(rng.below(12), 50);
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    std::vector<std::uint64_t> want;
    std::merge(a.begin(), a.end(), b.begin(), b.end(),
               std::back_inserter(want));
    auto got = nats(
        run(f, Value::pair(Value::nat_seq(a), Value::nat_seq(b))).value);
    EXPECT_EQ(got, want);
  }
}

TEST(Prelude, SumNats) {
  auto f = prelude::sum_nats();
  EXPECT_EQ(run(f, Value::nat_seq({})).value->as_nat(), 0u);
  EXPECT_EQ(run(f, Value::nat_seq({5})).value->as_nat(), 5u);
  EXPECT_EQ(run(f, Value::nat_seq({1, 2, 3, 4, 5})).value->as_nat(), 15u);
  EXPECT_EQ(run(f, Value::nat_seq({7, 7, 7, 7, 7, 7, 7, 7})).value->as_nat(),
            56u);
}

TEST(Prelude, SumNatsLogTime) {
  auto f = prelude::sum_nats();
  auto t64 = run(f, Value::nat_seq(std::vector<std::uint64_t>(64, 1))).cost;
  auto t4096 =
      run(f, Value::nat_seq(std::vector<std::uint64_t>(4096, 1))).cost;
  // T = O(log n): doubling log n doubles rounds, so time ratio ~2, not 64.
  EXPECT_LT(t4096.time, t64.time * 3);
  EXPECT_GT(t4096.work, t64.work * 32);  // W = O(n)
}

TEST(Prelude, MaxNats) {
  auto f = prelude::max_nats();
  EXPECT_EQ(run(f, Value::nat_seq({})).value->as_nat(), 0u);
  EXPECT_EQ(run(f, Value::nat_seq({3, 9, 2, 9, 1})).value->as_nat(), 9u);
  SplitMix64 rng(3);
  for (int trial = 0; trial < 10; ++trial) {
    auto v = rng.vec(1 + rng.below(20), 1000);
    auto want = *std::max_element(v.begin(), v.end());
    EXPECT_EQ(run(f, Value::nat_seq(v)).value->as_nat(), want);
  }
}

TEST(Prelude, AllTypecheck) {
  check_func(prelude::p2(N, Type::boolean()));
  check_func(prelude::bm_route(Type::unit(), N));
  check_func(prelude::sigma1(N, Type::unit()));
  check_func(prelude::sigma2(N, Type::unit()));
  check_func(prelude::first(NSeq));
  check_func(prelude::tail(NSeq));
  check_func(prelude::last(N));
  check_func(prelude::remove_last(N));
  check_func(prelude::index(NSeq));
  check_func(prelude::index_split(N));
  check_func(prelude::sqrt_positions(N));
  check_func(prelude::sqrt_split(N));
  check_func(prelude::rank_one());
  check_func(prelude::direct_rank());
  check_func(prelude::direct_merge());
  check_func(prelude::sum_nats());
  check_func(prelude::max_nats());
}

}  // namespace
}  // namespace nsc::lang
