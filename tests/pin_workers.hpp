// Shared by the parallel-sensitive test binaries: pin the pool to 4
// workers before its lazy construction, so the multi-chunk parallel
// paths are exercised even on single-core CI boxes.  The pool reads
// NSCC_WORKERS once, on first use -- which is after all static
// initialization -- so a namespace-scope initializer is early enough.
#pragma once

#include <cstdlib>

namespace nsc::testing {

inline const bool kWorkersPinned = [] {
  setenv("NSCC_WORKERS", "4", /*overwrite=*/0);
  return true;
}();

}  // namespace nsc::testing
