// Tests for the BVRAM machine (section 2): every instruction, the cost
// accounting (T = instruction count, W = register lengths touched),
// control flow, error states, and small hand-written programs.
#include <gtest/gtest.h>

#include "bvram/machine.hpp"
#include "support/error.hpp"

namespace nsc::bvram {
namespace {

using Vec = std::vector<std::uint64_t>;

TEST(Bvram, MoveAndConst) {
  Assembler a;
  auto r0 = a.reg();
  auto r1 = a.reg();
  a.load_const(r0, 42);
  a.move(r1, r0);
  a.halt();
  auto p = a.finish(0, 2);
  auto r = run(p, {});
  EXPECT_EQ(r.outputs[0], Vec{42});
  EXPECT_EQ(r.outputs[1], Vec{42});
  EXPECT_EQ(r.cost.time, 3u);
}

TEST(Bvram, ArithElementwise) {
  Assembler a;
  auto x = a.reg();
  auto y = a.reg();
  auto z = a.reg();
  a.arith(z, ArithOp::Add, x, y);
  a.halt();
  auto p = a.finish(2, 3);
  auto r = run(p, {{1, 2, 3}, {10, 20, 30}});
  EXPECT_EQ(r.outputs[2], (Vec{11, 22, 33}));
}

TEST(Bvram, ArithMonusAndLog) {
  Assembler a;
  auto x = a.reg();
  auto y = a.reg();
  auto d = a.reg();
  auto l = a.reg();
  a.arith(d, ArithOp::Monus, x, y);
  a.arith(l, ArithOp::Log2, x, y);
  a.halt();
  auto p = a.finish(2, 4);
  auto r = run(p, {{5, 2, 1024}, {9, 1, 7}});
  EXPECT_EQ(r.outputs[2], (Vec{0, 1, 1017}));
  EXPECT_EQ(r.outputs[3], (Vec{2, 1, 10}));
}

TEST(Bvram, ArithLengthMismatchFails) {
  Assembler a;
  auto x = a.reg();
  auto y = a.reg();
  a.arith(x, ArithOp::Add, x, y);
  a.halt();
  auto p = a.finish(2, 1);
  EXPECT_THROW(run(p, {{1, 2}, {1}}), MachineError);
}

TEST(Bvram, AppendLengthEnumerate) {
  Assembler a;
  auto x = a.reg();
  auto y = a.reg();
  auto cat = a.reg();
  auto len = a.reg();
  auto idx = a.reg();
  a.append(cat, x, y);
  a.length(len, cat);
  a.enumerate(idx, cat);
  a.halt();
  auto p = a.finish(2, 5);
  auto r = run(p, {{7, 8}, {9}});
  EXPECT_EQ(r.outputs[2], (Vec{7, 8, 9}));
  EXPECT_EQ(r.outputs[3], Vec{3});
  EXPECT_EQ(r.outputs[4], (Vec{0, 1, 2}));
}

TEST(Bvram, BmRoutePaperExample) {
  // V_j = [x0,x1,z0,z1,z2] (bound), V_k = [2,0,3], V_l = [a,b,c]
  // -> [a,a,c,c,c]  (section 2)
  Assembler a;
  auto bound = a.reg();
  auto counts = a.reg();
  auto data = a.reg();
  auto out = a.reg();
  a.bm_route(out, bound, counts, data);
  a.halt();
  auto p = a.finish(3, 4);
  auto r = run(p, {{1, 1, 1, 1, 1}, {2, 0, 3}, {100, 101, 102}});
  EXPECT_EQ(r.outputs[3], (Vec{100, 100, 102, 102, 102}));
}

TEST(Bvram, BmRouteBoundViolation) {
  Assembler a;
  auto bound = a.reg();
  auto counts = a.reg();
  auto data = a.reg();
  a.bm_route(bound, bound, counts, data);
  a.halt();
  auto p = a.finish(3, 1);
  EXPECT_THROW(run(p, {{1, 1}, {2, 0, 3}, {100, 101, 102}}), MachineError);
  EXPECT_THROW(run(p, {{1, 1, 1, 1, 1}, {2, 0}, {100, 101, 102}}),
               MachineError);
}

TEST(Bvram, SbmRoutePaperExample) {
  // V_l = [a0,a1,b0,b1,b2,c0,c1,c2], V_m = [2,3,3], counts [2,0,3]:
  // a-block twice, b-block dropped, c-block three times (section 2).
  Assembler a;
  auto bound = a.reg();
  auto counts = a.reg();
  auto data = a.reg();
  auto segs = a.reg();
  auto out = a.reg();
  a.sbm_route(out, bound, counts, data, segs);
  a.halt();
  auto p = a.finish(4, 5);
  auto r = run(p, {{0, 0, 0, 0, 0},
                   {2, 0, 3},
                   {10, 11, 20, 21, 22, 30, 31, 32},
                   {2, 3, 3}});
  EXPECT_EQ(r.outputs[4],
            (Vec{10, 11, 10, 11, 30, 31, 32, 30, 31, 32, 30, 31, 32}));
}

TEST(Bvram, SbmRouteCartesianCase) {
  // counts and segs of length 1: the cartesian-product special case.
  Assembler a;
  auto bound = a.reg();
  auto counts = a.reg();
  auto data = a.reg();
  auto segs = a.reg();
  auto out = a.reg();
  a.sbm_route(out, bound, counts, data, segs);
  a.halt();
  auto p = a.finish(4, 5);
  auto r = run(p, {{0, 0, 0}, {3}, {5, 6}, {2}});
  EXPECT_EQ(r.outputs[4], (Vec{5, 6, 5, 6, 5, 6}));
}

TEST(Bvram, SelectPaperExample) {
  // sigma([3,0,1,0,0,4]) = [3,1,4]  (section 2)
  Assembler a;
  auto x = a.reg();
  auto out = a.reg();
  a.select(out, x);
  a.halt();
  auto p = a.finish(1, 2);
  auto r = run(p, {{3, 0, 1, 0, 0, 4}});
  EXPECT_EQ(r.outputs[1], (Vec{3, 1, 4}));
}

TEST(Bvram, ScanPlusExclusive) {
  Assembler a;
  auto x = a.reg();
  auto out = a.reg();
  a.scan_plus(out, x);
  a.halt();
  auto p = a.finish(1, 2);
  auto r = run(p, {{3, 1, 4, 1, 5}});
  EXPECT_EQ(r.outputs[1], (Vec{0, 3, 4, 8, 9}));
  EXPECT_EQ(run(p, {{}}).outputs[1], Vec{});
}

TEST(Bvram, LoopCountdown) {
  // V1 counts down from [n] to []; V0 accumulates a running product of 2s.
  Assembler a;
  auto acc = a.reg();
  auto n = a.reg();
  auto one = a.reg();
  auto two = a.reg();
  a.load_const(acc, 1);
  a.load_const(one, 1);
  a.load_const(two, 2);
  auto top = a.fresh_label();
  auto done = a.fresh_label();
  a.bind(top);
  // if n == [0]-selected-empty: we encode "n reaches 0" by selecting
  // the nonzeros of n: when n = [0], select gives [].
  auto nz = a.reg();
  a.select(nz, n);
  a.jump_if_empty(nz, done);
  a.arith(acc, ArithOp::Mul, acc, two);
  a.arith(n, ArithOp::Monus, n, one);
  a.jump(top);
  a.bind(done);
  a.halt();
  auto p = a.finish(2, 1);  // inputs: acc(ignored), n
  auto r = run(p, {{}, {6}});
  EXPECT_EQ(r.outputs[0], Vec{64});
  // T counts every executed instruction: 3 loads + 6*(4) + final 3-ish.
  EXPECT_GT(r.cost.time, 24u);
}

TEST(Bvram, InfiniteLoopHitsFuel) {
  Assembler a;
  auto top = a.fresh_label();
  a.bind(top);
  a.jump(top);
  auto p = a.finish(0, 0);
  RunConfig cfg;
  cfg.max_instructions = 1000;
  EXPECT_THROW(run(p, {}, cfg), FuelExhausted);
}

TEST(Bvram, WorkChargesRegisterLengths) {
  Assembler a;
  auto x = a.reg();
  auto y = a.reg();
  a.append(y, x, x);
  a.halt();
  auto p = a.finish(1, 2);
  auto small = run(p, {Vec(10, 1)});
  auto large = run(p, {Vec(1000, 1)});
  EXPECT_EQ(small.cost.time, large.cost.time);
  // append charges |in|+|in|+|out| = 4n, plus halt's 1.
  EXPECT_EQ(small.cost.work, 41u);
  EXPECT_EQ(large.cost.work, 4001u);
}

TEST(Bvram, TraceRecordsPerInstructionWork) {
  Assembler a;
  auto x = a.reg();
  auto y = a.reg();
  a.append(y, x, x);
  a.scan_plus(y, y);
  a.halt();
  auto p = a.finish(1, 0);
  RunConfig cfg;
  cfg.record_trace = true;
  auto r = run(p, {Vec(8, 2)}, cfg);
  ASSERT_EQ(r.trace.size(), 3u);
  EXPECT_EQ(r.trace[0].op, Op::Append);
  EXPECT_EQ(r.trace[0].work, 32u);
  EXPECT_EQ(r.trace[1].op, Op::ScanPlus);
  EXPECT_EQ(r.trace[1].work, 32u);
}

TEST(Bvram, ParallelBackendMatchesSerial) {
  Assembler a;
  auto x = a.reg();
  auto y = a.reg();
  auto z = a.reg();
  a.arith(z, ArithOp::Mul, x, y);
  a.enumerate(y, z);
  a.halt();
  auto p = a.finish(2, 3);
  Vec big1(50000), big2(50000);
  for (std::size_t i = 0; i < big1.size(); ++i) {
    big1[i] = i;
    big2[i] = 2 * i + 1;
  }
  auto serial = run(p, {big1, big2});
  RunConfig cfg;
  cfg.parallel_backend = true;
  auto parallel = run(p, {big1, big2}, cfg);
  EXPECT_EQ(serial.outputs, parallel.outputs);
  EXPECT_EQ(serial.cost.work, parallel.cost.work);
}

TEST(Bvram, ParallelBackendPropagatesEvalError) {
  // Regression: a Div by zero evaluated on a pool worker used to escape
  // into the worker thread and std::terminate the interpreter; the
  // EvalError must surface on the calling thread exactly as it does under
  // the serial backend.
  Assembler a;
  auto x = a.reg();
  auto y = a.reg();
  a.arith(x, ArithOp::Div, x, y);
  a.halt();
  auto p = a.finish(2, 1);
  Vec num(50000, 7);
  Vec den(50000, 3);
  den[12345] = 0;  // one poisoned slot deep inside a parallel chunk
  RunConfig cfg;
  cfg.parallel_backend = true;
  EXPECT_THROW(run(p, {num, den}), EvalError);        // serial reference
  EXPECT_THROW(run(p, {num, den}, cfg), EvalError);   // pool must match
  // The backend stays healthy after the failure.
  den[12345] = 3;
  auto r = run(p, {num, den}, cfg);
  EXPECT_EQ(r.outputs[0], Vec(50000, 2));
}

TEST(Bvram, UnboundLabelRejected) {
  Assembler a;
  auto l = a.fresh_label();
  a.jump(l);
  EXPECT_THROW(a.finish(0, 0), MachineError);
}

TEST(Bvram, BadRegisterRejected) {
  Assembler a;
  a.move(5, 6);
  a.halt();
  auto p = a.finish(0, 0);
  EXPECT_THROW(run(p, {}), MachineError);
}

TEST(Bvram, Disassembles) {
  Assembler a;
  auto x = a.reg();
  a.load_const(x, 7);
  a.scan_plus(x, x);
  a.halt();
  auto p = a.finish(0, 1);
  const std::string d = p.disassemble();
  EXPECT_NE(d.find("V0 <- [7]"), std::string::npos);
  EXPECT_NE(d.find("scan+"), std::string::npos);
  EXPECT_NE(d.find("halt"), std::string::npos);
}

}  // namespace
}  // namespace nsc::bvram
