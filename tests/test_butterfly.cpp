// Tests for Proposition 2.1: BVRAM instructions on a butterfly network with
// oblivious greedy routing, in O(log n) steps, congestion-free for
// monotone routes.
#include <gtest/gtest.h>

#include "butterfly/butterfly.hpp"
#include "support/error.hpp"
#include "support/prng.hpp"

namespace nsc::net {
namespace {

TEST(Butterfly, Geometry) {
  Butterfly b(4);
  EXPECT_EQ(b.rows(), 16u);
  EXPECT_EQ(b.nodes(), 5u * 16u);  // (q+1) * 2^q = "n log n" nodes
}

TEST(Butterfly, IdentityRouteIsFree) {
  Butterfly b(5);
  std::vector<std::uint32_t> rows{0, 1, 2, 3, 4};
  auto s = b.monotone_route(rows, rows);
  EXPECT_TRUE(s.oblivious_ok);
  EXPECT_LE(s.max_edge_load, 1u);
  EXPECT_EQ(s.steps, 5u);
}

TEST(Butterfly, CompactionRouteHasConstantCongestion) {
  // The select/pack pattern: scattered sources to a prefix of rows.
  Butterfly b(6);
  std::vector<std::uint32_t> src{3, 9, 17, 18, 40, 51, 63};
  std::vector<std::uint32_t> dst{0, 1, 2, 3, 4, 5, 6};
  auto s = b.monotone_route(src, dst);
  EXPECT_TRUE(s.oblivious_ok);
  EXPECT_LE(s.max_edge_load, 2u);
  EXPECT_LE(s.steps, 12u);  // q * max_load = O(log n)
}

TEST(Butterfly, SpreadRouteIsCongestionFree) {
  // The bm-route pattern: a prefix spread out monotonically.
  Butterfly b(6);
  std::vector<std::uint32_t> src{0, 1, 2, 3};
  std::vector<std::uint32_t> dst{5, 20, 21, 60};
  auto s = b.monotone_route(src, dst);
  EXPECT_TRUE(s.oblivious_ok);
  EXPECT_LE(s.max_edge_load, 2u);
}

TEST(Butterfly, RandomMonotoneRoutesHaveConstantCongestion) {
  SplitMix64 rng(11);
  Butterfly b(8);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t n = 1 + rng.below(200);
    // Random sorted, duplicate-free src and dst.
    auto mk = [&](std::size_t k) {
      std::vector<std::uint32_t> v;
      std::uint32_t at = static_cast<std::uint32_t>(rng.below(3));
      while (v.size() < k && at < b.rows()) {
        v.push_back(at);
        at += 1 + static_cast<std::uint32_t>(rng.below(3));
      }
      return v;
    };
    auto src = mk(n);
    auto dst = mk(src.size());
    if (dst.size() < src.size()) src.resize(dst.size());
    auto s = b.monotone_route(src, dst);
    EXPECT_TRUE(s.oblivious_ok) << "trial " << trial;
    EXPECT_LE(s.max_edge_load, 2u) << "trial " << trial;
    EXPECT_LE(s.steps, 2u * b.q()) << "trial " << trial;
  }
}

TEST(Butterfly, NonMonotoneRouteRejected) {
  Butterfly b(4);
  EXPECT_THROW(b.monotone_route({0, 1}, {5, 3}), Error);
  EXPECT_THROW(b.monotone_route({2, 1}, {3, 5}), Error);
}

TEST(Butterfly, RowOverflowRejected) {
  Butterfly b(3);
  EXPECT_THROW(b.monotone_route({0}, {8}), Error);
}

TEST(Butterfly, ReplicateStepsAreTwoQ) {
  Butterfly b(7);
  auto s = b.replicate({4, 3, 5}, {2, 0, 3});
  EXPECT_EQ(s.steps, 14u);  // one wave: 2q
  EXPECT_EQ(s.packets, 4u * 2 + 3u * 0 + 5u * 3);
  EXPECT_EQ(s.max_edge_load, 1u);
}

TEST(Butterfly, ReplicateGroupsWhenWide) {
  Butterfly b(3);  // 8 rows
  auto s = b.replicate({8}, {8});  // 64 padded outputs on 8 rows: 8 waves
  EXPECT_EQ(s.steps, 8u * 6u);
}

TEST(Butterfly, ScanIsTwoSweeps) {
  Butterfly b(9);
  EXPECT_EQ(b.scan(512).steps, 18u);
  EXPECT_EQ(b.scan(0).steps, 18u);
}

TEST(ButterflySteps, LocalOpsDontCommunicate) {
  bvram::TraceEntry arith{bvram::Op::Arith, 64, 32};
  EXPECT_EQ(butterfly_steps(arith, 6), 1u);  // 64 <= 2^6
  bvram::TraceEntry big{bvram::Op::Arith, 1 << 10, 1 << 10};
  EXPECT_EQ(butterfly_steps(big, 6), 16u);  // grouped: W / 2^q waves
}

TEST(ButterflySteps, RoutingOpsAreLogN) {
  bvram::TraceEntry route{bvram::Op::BmRoute, 60, 30};
  EXPECT_EQ(butterfly_steps(route, 6), 6u);
  bvram::TraceEntry scan{bvram::Op::ScanPlus, 60, 60};
  EXPECT_EQ(butterfly_steps(scan, 6), 12u);
  bvram::TraceEntry sel{bvram::Op::Select, 60, 60};
  EXPECT_EQ(butterfly_steps(sel, 6), 18u);
}

TEST(ButterflySteps, GroupedModeScalesAsWOverP) {
  // Prop 2.1 extension: W elements on 2^q rows -> O((W / 2^q) log n) steps.
  bvram::TraceEntry route{bvram::Op::BmRoute, 1 << 12, 1 << 12};
  const auto steps_q6 = butterfly_steps(route, 6);
  const auto steps_q8 = butterfly_steps(route, 8);
  EXPECT_EQ(steps_q6, (std::uint64_t{1} << 6) * 6);
  EXPECT_EQ(steps_q8, (std::uint64_t{1} << 4) * 8);
  EXPECT_GT(steps_q6, steps_q8);  // more processors, fewer steps
}

TEST(ButterflySteps, TraceAccumulates) {
  std::vector<bvram::TraceEntry> trace{
      {bvram::Op::Arith, 10, 10},
      {bvram::Op::Append, 20, 10},
      {bvram::Op::Halt, 1, 0},
  };
  EXPECT_EQ(butterfly_steps_for_trace(trace, 5),
            butterfly_steps(trace[0], 5) + butterfly_steps(trace[1], 5) +
                butterfly_steps(trace[2], 5));
}

}  // namespace
}  // namespace nsc::net
