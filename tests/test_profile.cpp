// Observability-layer tests (src/obs/ + the engine profiler behind
// bvram::RunConfig::profile):
//
//   * profiling is a pure observer: with cfg.profile on vs off, outputs,
//     trap type *and message*, T, W, and the per-instruction trace are
//     bit-identical at every OptLevel x WhileSchedule on the corpus;
//   * the deterministic profile fields (per-pc count / work / bytes)
//     agree across all six engine configurations (run_reference / run,
//     serial / parallel, v2 again after opt::annotate_last_use) -- only
//     wall times, chunk counts, and engine counters may differ;
//   * every TraceEntry carries the executed instruction's index;
//   * >= 95% of *executed* instructions on the O2-compiled corpus carry
//     surface attribution (the CI profile-smoke gate, measured here via
//     Program::debug_coverage weighted by execution counts);
//   * DebugTable interning and the obs::Profile report views.
#include <gtest/gtest.h>

#include <string>
#include <typeinfo>
#include <vector>

#include "bvram/machine.hpp"
#include "front/front.hpp"
#include "nsc/eval.hpp"
#include "nsc/prelude.hpp"
#include "nsc/typecheck.hpp"
#include "obs/debuginfo.hpp"
#include "obs/profile.hpp"
#include "opt/liveness.hpp"
#include "opt/opt.hpp"
#include "sa/compile.hpp"
#include "sa/layout.hpp"
#include "support/error.hpp"
#include "corpus_files.hpp"
#include "pin_workers.hpp"

namespace nsc {
namespace {

namespace F = nsc::front;
namespace L = nsc::lang;
namespace P = nsc::lang::prelude;
using Vec = std::vector<std::uint64_t>;
using nsc::testing::corpus_files;

struct Outcome {
  bool trapped = false;
  std::string error;  // dynamic exception type + message
  bvram::RunResult result;
};

template <typename Runner>
Outcome outcome_of(Runner runner, const bvram::Program& p,
                   const std::vector<Vec>& inputs, bool parallel,
                   bool profile) {
  bvram::RunConfig cfg;
  cfg.record_trace = true;
  cfg.parallel_backend = parallel;
  cfg.profile = profile;
  Outcome o;
  try {
    o.result = runner(p, inputs, cfg);
  } catch (const Error& e) {
    o.trapped = true;
    o.error = std::string(typeid(e).name()) + ": " + e.what();
  }
  return o;
}

/// The observable machine state two runs must agree on regardless of
/// profiling or engine configuration.
void expect_same_semantics(const Outcome& base, const Outcome& got,
                           const std::string& label) {
  ASSERT_EQ(base.trapped, got.trapped)
      << label << ": trap disagreement (" << base.error << " vs " << got.error
      << ")";
  if (base.trapped) {
    EXPECT_EQ(base.error, got.error) << label;
    return;
  }
  EXPECT_EQ(base.result.outputs, got.result.outputs) << label;
  EXPECT_EQ(base.result.cost.time, got.result.cost.time) << label;
  EXPECT_EQ(base.result.cost.work, got.result.cost.work) << label;
  ASSERT_EQ(base.result.trace.size(), got.result.trace.size()) << label;
  for (std::size_t i = 0; i < base.result.trace.size(); ++i) {
    EXPECT_EQ(base.result.trace[i].op, got.result.trace[i].op)
        << label << " trace[" << i << "]";
    EXPECT_EQ(base.result.trace[i].work, got.result.trace[i].work)
        << label << " trace[" << i << "]";
    EXPECT_EQ(base.result.trace[i].max_len, got.result.trace[i].max_len)
        << label << " trace[" << i << "]";
    EXPECT_EQ(base.result.trace[i].instr, got.result.trace[i].instr)
        << label << " trace[" << i << "]";
  }
}

/// The deterministic profile fields: count, work, and bytes per pc are a
/// function of the executed path, never of the engine, backend, or clock.
void expect_same_profile(const Outcome& base, const Outcome& got,
                         const std::string& label) {
  ASSERT_EQ(base.result.profile.size(), got.result.profile.size()) << label;
  for (std::size_t pc = 0; pc < base.result.profile.size(); ++pc) {
    EXPECT_EQ(base.result.profile[pc].count, got.result.profile[pc].count)
        << label << " pc=" << pc;
    EXPECT_EQ(base.result.profile[pc].work, got.result.profile[pc].work)
        << label << " pc=" << pc;
    EXPECT_EQ(base.result.profile[pc].bytes, got.result.profile[pc].bytes)
        << label << " pc=" << pc;
  }
}

struct CorpusProgram {
  std::string path;
  bvram::Program program;
  std::vector<std::vector<Vec>> inputs;  // encoded REP(dom) per declaration
};

std::vector<CorpusProgram> compiled_corpus(opt::OptLevel level,
                                           const opt::WhileSchedule& sched) {
  std::vector<CorpusProgram> out;
  for (const auto& path : corpus_files()) {
    const F::SourceFile src = F::load_file(path);
    const F::ResolvedModule mod = F::compile_file(src);
    const F::ResolvedFn& main_fn = mod.main();
    CorpusProgram cp;
    cp.path = path;
    cp.program = sa::compile_nsc(main_fn.fn, level, sched);
    for (const auto& in : mod.inputs) {
      cp.inputs.push_back(
          sa::encode_value(L::eval(in.term).value, main_fn.dom));
    }
    out.push_back(std::move(cp));
  }
  return out;
}

// ---------------------------------------------------------------------------
// profiling is a pure observer
// ---------------------------------------------------------------------------

TEST(Profile, OffVsOnBitIdenticalAcrossOptLevelsAndSchedules) {
  const opt::OptLevel levels[] = {opt::OptLevel::O0, opt::OptLevel::O1,
                                  opt::OptLevel::O2};
  const struct {
    const char* name;
    opt::WhileSchedule sched;
  } scheds[] = {
      {"naive", opt::WhileSchedule::naive()},
      {"eager", opt::WhileSchedule::eager()},
      {"staged(1/2)", opt::WhileSchedule::staged({1, 2})},
  };
  for (const auto level : levels) {
    for (const auto& s : scheds) {
      SCOPED_TRACE(std::string("opt ") + std::to_string(int(level)) +
                   " sched " + s.name);
      for (const auto& cp : compiled_corpus(level, s.sched)) {
        SCOPED_TRACE(cp.path);
        for (std::size_t i = 0; i < cp.inputs.size(); ++i) {
          SCOPED_TRACE("input " + std::to_string(i));
          const Outcome off = outcome_of(bvram::run, cp.program, cp.inputs[i],
                                         false, false);
          const Outcome on = outcome_of(bvram::run, cp.program, cp.inputs[i],
                                        false, true);
          expect_same_semantics(off, on, "profile on/off");
          // Off: no samples allocated.  On: one slot per instruction.
          EXPECT_TRUE(off.result.profile.empty());
          if (!on.trapped) {
            EXPECT_EQ(on.result.profile.size(), cp.program.code.size());
          }
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// deterministic profile fields agree across all six configurations
// ---------------------------------------------------------------------------

TEST(Profile, DeterministicFieldsAcrossSixConfigs) {
  for (const auto& cp : compiled_corpus(opt::OptLevel::O2, {})) {
    SCOPED_TRACE(cp.path);
    bvram::Program annotated = cp.program;
    opt::annotate_last_use(annotated);
    for (std::size_t i = 0; i < cp.inputs.size(); ++i) {
      SCOPED_TRACE("input " + std::to_string(i));
      const Outcome base =
          outcome_of(bvram::run_reference, cp.program, cp.inputs[i], false,
                     true);
      const struct {
        const char* label;
        Outcome got;
      } others[] = {
          {"v1/par", outcome_of(bvram::run_reference, cp.program,
                                cp.inputs[i], true, true)},
          {"v2/serial",
           outcome_of(bvram::run, cp.program, cp.inputs[i], false, true)},
          {"v2/par",
           outcome_of(bvram::run, cp.program, cp.inputs[i], true, true)},
          {"v2+liveness/serial",
           outcome_of(bvram::run, annotated, cp.inputs[i], false, true)},
          {"v2+liveness/par",
           outcome_of(bvram::run, annotated, cp.inputs[i], true, true)},
      };
      for (const auto& o : others) {
        expect_same_semantics(base, o.got, o.label);
        expect_same_profile(base, o.got, o.label);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// every TraceEntry names the instruction it executed
// ---------------------------------------------------------------------------

TEST(Profile, TraceEntriesCarryInstructionIndex) {
  for (const auto& cp : compiled_corpus(opt::OptLevel::O2, {})) {
    SCOPED_TRACE(cp.path);
    for (const auto& inputs : cp.inputs) {
      const Outcome o = outcome_of(bvram::run, cp.program, inputs, false,
                                   true);
      for (const auto& te : o.result.trace) {
        ASSERT_LT(te.instr, cp.program.code.size());
        EXPECT_EQ(cp.program.code[te.instr].op, te.op);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// the attribution gate: >= 95% of executed instructions, O2 corpus
// ---------------------------------------------------------------------------

TEST(Profile, ExecutedAttributionAtLeast95PercentOnO2Corpus) {
  std::uint64_t executed = 0, attributed = 0;
  for (const auto& cp : compiled_corpus(opt::OptLevel::O2, {})) {
    SCOPED_TRACE(cp.path);
    std::vector<std::uint64_t> counts(cp.program.code.size(), 0);
    for (const auto& inputs : cp.inputs) {
      const Outcome o = outcome_of(bvram::run, cp.program, inputs, false,
                                   true);
      if (o.trapped) continue;  // a trapped run yields no RunResult
      ASSERT_EQ(o.result.profile.size(), counts.size());
      for (std::size_t pc = 0; pc < counts.size(); ++pc) {
        counts[pc] += o.result.profile[pc].count;
      }
    }
    std::uint64_t file_total = 0;
    for (std::size_t pc = 0; pc < counts.size(); ++pc) {
      file_total += counts[pc];
      executed += counts[pc];
      if (cp.program.debug.site(cp.program.code[pc].dbg).has_loc()) {
        attributed += counts[pc];
      }
    }
    if (file_total > 0) {
      EXPECT_GE(cp.program.debug_coverage(&counts), 0.95)
          << cp.path << ": executed-instruction attribution below the gate";
    }
  }
  ASSERT_GT(executed, 0u);
  EXPECT_GE(static_cast<double>(attributed) / static_cast<double>(executed),
            0.95)
      << "corpus-wide executed attribution below the CI gate";
}

// ---------------------------------------------------------------------------
// the report layer
// ---------------------------------------------------------------------------

TEST(Profile, BuildAggregatesAndFindsLoops) {
  // sum-via-while compiles to a real backwards jump; the loop view must
  // find it and the by-line/by-opcode totals must match the run's W.
  auto f = P::sum_nats();
  auto [dom, cod] = L::check_func(f);
  (void)cod;
  const auto p = sa::compile_nsc(f, opt::OptLevel::O2);
  const auto inputs = sa::encode_value(
      Value::nat_seq(std::vector<std::uint64_t>(64, 3)), dom);
  bvram::RunConfig cfg;
  cfg.record_trace = true;
  cfg.profile = true;
  const bvram::RunResult r = bvram::run(p, inputs, cfg);
  const obs::Profile prof = obs::Profile::build(p, r);
  EXPECT_EQ(prof.total_count, r.trace.size());
  EXPECT_EQ(prof.total_work, r.cost.work);
  ASSERT_FALSE(prof.by_opcode.empty());
  ASSERT_FALSE(prof.by_loop.empty()) << "while loop not detected";
  EXPECT_GT(prof.by_loop[0].trips, 1u);
  EXPECT_LE(prof.by_loop[0].head, prof.by_loop[0].back);
  // The report strings render without throwing and are non-empty.
  EXPECT_FALSE(prof.render_by_opcode().empty());
  EXPECT_FALSE(prof.render_by_line().empty());
  EXPECT_FALSE(prof.render_loops().empty());
  EXPECT_FALSE(prof.render_engine().empty());
}

TEST(Profile, DebugTableInternsAndResolves) {
  obs::DebugTable t;
  EXPECT_EQ(t.size(), 1u);  // the reserved unknown site
  EXPECT_FALSE(t.site(0).has_loc());
  EXPECT_EQ(t.site(0).show(), "?");

  const auto a = t.intern("map", 12, 7);
  const auto b = t.intern("map", 12, 7);
  const auto c = t.intern("map", 12, 8);
  EXPECT_NE(a, 0u);
  EXPECT_EQ(a, b);  // idempotent
  EXPECT_NE(a, c);
  EXPECT_EQ(t.site(a).show(), "map@12:7");
  EXPECT_TRUE(t.site(a).has_loc());

  // A combinator with no surface position is still named.
  const auto d = t.intern("append", 0, 0);
  EXPECT_FALSE(t.site(d).has_loc());

  // Out-of-range indices resolve to the unknown site, never throw.
  EXPECT_EQ(t.site(9999).show(), "?");
}

TEST(Profile, PassTimingsArePopulated) {
  opt::PipelineStats stats;
  auto f = P::sum_nats();
  (void)sa::compile_nsc(f, opt::OptLevel::O2, {}, &stats);
  ASSERT_FALSE(stats.passes.empty());
  // steady_clock is monotonic; the pipeline total bounds each pass.
  for (const auto& ps : stats.passes) {
    EXPECT_LE(ps.wall_ns, stats.wall_ns) << ps.name;
  }
  EXPECT_GT(stats.wall_ns, 0u);
}

}  // namespace
}  // namespace nsc
