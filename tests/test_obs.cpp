// Observability-layer units (src/obs/metrics, events, serve spans) and
// the minimal JSON reader that validates their outputs:
//
//   * log2 histogram bucket edges and nearest-rank quantiles (a quantile
//     always lands inside its bucket's [lower, upper] bounds);
//   * registry semantics: same name returns the same metric, a kind
//     mismatch throws, exports are deterministic and properly escaped;
//   * Prometheus exposition shape: HELP/TYPE pairs, cumulative
//     bucket{le=...} series, the +Inf bucket equals _count, and the
//     nscc_build_info provenance metric with escaped label values;
//   * the bounded event log and span log drop-and-count at capacity;
//   * the Chrome serve-trace writer emits well-formed JSON with thread
//     metadata, async queue events, and flow arrows;
//   * an 8-thread hammer over one registry (the TSan job's target for
//     this layer): relaxed atomics must lose no increments.
#include <gtest/gtest.h>

#include <future>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "obs/events.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/provenance.hpp"
#include "support/error.hpp"
#include "support/json.hpp"
#include "pin_workers.hpp"

namespace nsc {
namespace {

// -- Histogram -----------------------------------------------------------

TEST(Metrics, HistogramBucketEdges) {
  using H = obs::Histogram;
  using S = obs::HistogramSnapshot;
  EXPECT_EQ(H::bucket_of(0), 0u);
  EXPECT_EQ(H::bucket_of(1), 1u);
  EXPECT_EQ(H::bucket_of(2), 2u);
  EXPECT_EQ(H::bucket_of(3), 2u);
  EXPECT_EQ(H::bucket_of(4), 3u);
  EXPECT_EQ(H::bucket_of(7), 3u);
  EXPECT_EQ(H::bucket_of(8), 4u);
  EXPECT_EQ(H::bucket_of(std::numeric_limits<std::uint64_t>::max()), 64u);
  EXPECT_EQ(S::bucket_upper(0), 0u);
  EXPECT_EQ(S::bucket_upper(1), 1u);
  EXPECT_EQ(S::bucket_upper(2), 3u);
  EXPECT_EQ(S::bucket_upper(3), 7u);
  EXPECT_EQ(S::bucket_upper(64), std::numeric_limits<std::uint64_t>::max());
  // Every bucket's upper edge is one below the next bucket's lower edge.
  for (std::size_t b = 1; b < 64; ++b) {
    EXPECT_EQ(H::bucket_of(S::bucket_upper(b)), b);
    EXPECT_EQ(H::bucket_of(S::bucket_upper(b) + 1), b + 1);
  }
}

TEST(Metrics, HistogramQuantilesStayInBucketBounds) {
  obs::Histogram h;
  EXPECT_EQ(h.snapshot().quantile(0.5), 0u);  // empty
  for (int i = 0; i < 5; ++i) h.observe(0);
  EXPECT_EQ(h.snapshot().quantile(0.5), 0u);
  EXPECT_EQ(h.snapshot().quantile(1.0), 0u);

  obs::Histogram one;
  for (int i = 0; i < 4; ++i) one.observe(1);
  EXPECT_EQ(one.snapshot().quantile(0.99), 1u);  // bucket 1 is exact

  obs::Histogram mixed;
  mixed.observe(1);            // bucket 1: [1, 1]
  for (int i = 0; i < 3; ++i) mixed.observe(2);  // bucket 2: [2, 3]
  for (int i = 0; i < 6; ++i) mixed.observe(100);  // bucket 7: [64, 127]
  const obs::HistogramSnapshot s = mixed.snapshot();
  EXPECT_EQ(s.count, 10u);
  EXPECT_EQ(s.sum, 1u + 3 * 2 + 6 * 100);
  EXPECT_EQ(s.mean(), s.sum / 10);
  EXPECT_EQ(s.quantile(0.1), 1u);  // rank 1 -> bucket 1, exact
  const std::uint64_t q4 = s.quantile(0.4);  // rank 4 -> bucket 2
  EXPECT_GE(q4, 2u);
  EXPECT_LE(q4, 3u);
  const std::uint64_t q9 = s.quantile(0.9);  // rank 9 -> bucket 7
  EXPECT_GE(q9, 64u);
  EXPECT_LE(q9, 127u);
  EXPECT_EQ(s.quantile(0.0), 1u);  // clamps to rank 1
  EXPECT_LE(s.quantile(1.0), 127u);
}

TEST(Metrics, HistogramSumSaturatesInsteadOfWrapping) {
  obs::Histogram h;
  h.observe(std::numeric_limits<std::uint64_t>::max());
  h.observe(std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(h.snapshot().sum, std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(h.snapshot().count, 2u);
}

// -- Registry ------------------------------------------------------------

TEST(Metrics, RegistryReturnsStableRefsAndChecksKinds) {
  obs::Registry reg;
  obs::Counter& a = reg.counter("x_total", "help one");
  obs::Counter& b = reg.counter("x_total", "ignored on re-registration");
  EXPECT_EQ(&a, &b);
  a.inc(3);
  EXPECT_EQ(b.value(), 3u);
  EXPECT_THROW(reg.gauge("x_total", "not a counter"), Error);
  EXPECT_THROW(reg.histogram("x_total", "not a counter"), Error);
}

TEST(Metrics, PrometheusExposition) {
  obs::Registry reg;
  reg.counter("req_total", "requests\nwith a \\ newline").inc(7);
  reg.gauge("depth", "queue depth").set(3);
  obs::Histogram& h = reg.histogram("lat_ns", "latency");
  h.observe(0);
  h.observe(1);
  h.observe(2);
  h.observe(3);
  obs::Provenance prov;
  prov.compiler = "g\"cc";
  prov.git_sha = "abc123";
  prov.host_cores = 8;
  prov.workers = 4;
  std::ostringstream out;
  reg.write_prometheus(out, &prov);
  const std::string text = out.str();
  // Info metric first, with the quote in the label value escaped.
  EXPECT_NE(text.find("nscc_build_info{compiler=\"g\\\"cc\""),
            std::string::npos);
  // HELP escaping: newline -> \n, backslash -> \\.
  EXPECT_NE(text.find("# HELP req_total requests\\nwith a \\\\ newline"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE req_total counter"), std::string::npos);
  EXPECT_NE(text.find("req_total 7"), std::string::npos);
  EXPECT_NE(text.find("depth 3"), std::string::npos);
  // Cumulative buckets: le="0" -> 1 sample, le="1" -> 2, le="3" -> 4.
  EXPECT_NE(text.find("lat_ns_bucket{le=\"0\"} 1"), std::string::npos);
  EXPECT_NE(text.find("lat_ns_bucket{le=\"1\"} 2"), std::string::npos);
  EXPECT_NE(text.find("lat_ns_bucket{le=\"3\"} 4"), std::string::npos);
  EXPECT_NE(text.find("lat_ns_bucket{le=\"+Inf\"} 4"), std::string::npos);
  EXPECT_NE(text.find("lat_ns_sum 6"), std::string::npos);
  EXPECT_NE(text.find("lat_ns_count 4"), std::string::npos);
}

TEST(Metrics, JsonSnapshotDeterministic) {
  obs::Registry reg;
  reg.counter("a_total", "a").inc(1);
  reg.histogram("h", "h").observe(42);
  std::ostringstream one, two;
  reg.write_json(one);
  reg.write_json(two);
  EXPECT_EQ(one.str(), two.str());  // no timestamps, no pointers
  // And it is real JSON with the advertised schema.
  const json::Value v = json::parse(one.str());
  EXPECT_EQ(v.at("schema").as_string(), "nscc-metrics/v1");
  EXPECT_EQ(v.at("metrics").at("a_total").at("value").as_u64(), 1u);
  EXPECT_EQ(v.at("metrics").at("h").at("count").as_u64(), 1u);
}

// 8 threads hammer one registry's worth of metrics; relaxed atomics must
// lose nothing.  This test is built into the CI ThreadSanitizer job.
TEST(Metrics, ConcurrentHammerLosesNothing) {
  obs::Registry reg;
  obs::Counter& c = reg.counter("hits_total", "hammered");
  obs::Gauge& g = reg.gauge("depth", "hammered");
  obs::Histogram& h = reg.histogram("lat", "hammered");
  constexpr int kThreads = 8;
  constexpr int kReps = 20000;
  std::vector<std::future<void>> done;
  for (int t = 0; t < kThreads; ++t) {
    done.push_back(std::async(std::launch::async, [&, t] {
      for (int i = 0; i < kReps; ++i) {
        c.inc();
        g.set(static_cast<std::uint64_t>(i));
        h.observe(static_cast<std::uint64_t>(t * kReps + i));
      }
    }));
  }
  for (auto& d : done) d.get();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kReps);
  const obs::HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, static_cast<std::uint64_t>(kThreads) * kReps);
  EXPECT_LT(g.value(), static_cast<std::uint64_t>(kReps));
}

// -- EventLog ------------------------------------------------------------

TEST(Events, FluentFieldsPreserveOrder) {
  std::ostringstream out;
  obs::EventLog::write_event(
      out, obs::Event("serve.trap", obs::Severity::Warn)
               .num("request", 7)
               .str("error", "div by \"zero\"\n")
               .num("run", 3));
  const std::string line = out.str();
  // Numbers raw, strings escaped+quoted, declaration order preserved.
  EXPECT_NE(line.find("\"event\":\"serve.trap\""), std::string::npos);
  EXPECT_NE(line.find("\"sev\":\"warn\""), std::string::npos);
  const std::size_t req = line.find("\"request\":7");
  const std::size_t err = line.find("\"error\":\"div by \\\"zero\\\"\\n\"");
  const std::size_t run = line.find("\"run\":3");
  ASSERT_NE(req, std::string::npos);
  ASSERT_NE(err, std::string::npos);
  ASSERT_NE(run, std::string::npos);
  EXPECT_LT(req, err);
  EXPECT_LT(err, run);
  EXPECT_EQ(line.back(), '\n');
  json::parse(line);  // throws if the line is not valid JSON
}

TEST(Events, BoundedQueueDropsAndCounts) {
  obs::EventLog log(2);
  for (int i = 0; i < 5; ++i) {
    log.emit(obs::Event("e", obs::Severity::Info).num("i", i));
  }
  obs::EventLogStats st = log.stats();
  EXPECT_EQ(st.emitted, 2u);
  EXPECT_EQ(st.dropped, 3u);
  EXPECT_EQ(st.queued, 2u);
  EXPECT_EQ(st.capacity, 2u);
  const std::vector<obs::Event> drained = log.drain();
  ASSERT_EQ(drained.size(), 2u);
  EXPECT_GE(drained[1].mono_ns, drained[0].mono_ns);  // emission order
  // Draining frees capacity; the drop counter is cumulative.
  log.emit(obs::Event("e", obs::Severity::Info));
  st = log.stats();
  EXPECT_EQ(st.emitted, 3u);
  EXPECT_EQ(st.dropped, 3u);
}

TEST(Events, HeaderIsSelfDescribing) {
  obs::EventLog log;
  std::ostringstream out;
  log.write_header(out);
  const json::Value v = json::parse(out.str());
  EXPECT_EQ(v.at("schema").as_string(), "nscc-serve-events/v1");
  EXPECT_EQ(v.at("capacity").as_u64(), 4096u);
  EXPECT_EQ(v.at("dropped").as_u64(), 0u);
  EXPECT_NE(v.at("provenance").find("compiler"), nullptr);
}

// -- SpanLog + Chrome serve trace ----------------------------------------

TEST(Spans, BoundedLogDropsAndCounts) {
  obs::SpanLog log(2);
  for (int i = 0; i < 4; ++i) {
    obs::ServeSpan s;
    s.phase = "execute";
    s.t0_ns = log.now_ns();
    log.record(std::move(s));
  }
  const obs::SpanLogStats st = log.stats();
  EXPECT_EQ(st.recorded, 2u);
  EXPECT_EQ(st.dropped, 2u);
  EXPECT_EQ(st.queued, 2u);
  EXPECT_EQ(log.drain().size(), 2u);
  EXPECT_EQ(log.stats().queued, 0u);
}

TEST(Spans, ChromeTraceShape) {
  std::vector<obs::ServeSpan> spans;
  obs::ServeSpan wait;
  wait.phase = "queue-wait";
  wait.request_id = 1;
  wait.batch_id = 9;
  wait.t0_ns = 1000;
  wait.dur_ns = 500;
  wait.size = 2;
  spans.push_back(wait);
  obs::ServeSpan exec;
  exec.phase = "execute";
  exec.request_id = 0;
  exec.batch_id = 9;
  exec.worker = 1;
  exec.t0_ns = 1600;
  exec.dur_ns = 2000;
  exec.size = 2;
  exec.note = "with \"quotes\"";
  spans.push_back(exec);

  obs::Provenance prov;
  prov.compiler = "test";
  std::ostringstream out;
  obs::write_serve_trace(out, spans, 2, &prov);
  const std::string text = out.str();
  const json::Value doc = json::parse(text);  // must be well-formed JSON
  EXPECT_NE(doc.find("traceEvents"), nullptr);
  EXPECT_NE(doc.at("otherData").find("provenance"), nullptr);
  // Worker rows are named up front.
  EXPECT_NE(text.find("\"name\":\"queue\""), std::string::npos);
  EXPECT_NE(text.find("\"name\":\"worker 1\""), std::string::npos);
  EXPECT_NE(text.find("\"name\":\"worker 2\""), std::string::npos);
  // The queue-wait is an async begin/end pair on tid 0...
  EXPECT_NE(text.find("\"ph\":\"b\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"e\""), std::string::npos);
  // ...with a flow arrow into the matching batch's first worker span.
  EXPECT_NE(text.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"f\""), std::string::npos);
  // The execute span is a complete event on the worker's row.
  EXPECT_NE(text.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(text.find("\"note\":\"with \\\"quotes\\\"\""), std::string::npos);
}

// -- support/json (the reader used to validate the above) ----------------

TEST(Json, ParsesDocumentsExactly) {
  const json::Value v = json::parse(
      "{\"a\": [1, 2.5, true, null, \"x\\ny\"], "
      "\"big\": 18446744073709551615}");
  EXPECT_EQ(v.at("a").items.size(), 5u);
  EXPECT_EQ(v.at("a").items[0].as_u64(), 1u);
  EXPECT_DOUBLE_EQ(v.at("a").items[1].as_double(), 2.5);
  EXPECT_TRUE(v.at("a").items[2].as_bool());
  EXPECT_TRUE(v.at("a").items[3].is(json::Value::Kind::Null));
  EXPECT_EQ(v.at("a").items[4].as_string(), "x\ny");
  // Exact uint64 round trip at the very top of the range (a double
  // would have rounded this).
  EXPECT_EQ(v.at("big").as_u64(), std::numeric_limits<std::uint64_t>::max());
}

TEST(Json, RejectsMalformedInput) {
  EXPECT_THROW(json::parse("{\"a\": 1,}"), Error);
  EXPECT_THROW(json::parse("[1, 2] trailing"), Error);
  EXPECT_THROW(json::parse("{\"unterminated\": \"str"), Error);
  EXPECT_THROW(json::parse("18446744073709551616").as_u64(), Error);  // 2^64
  EXPECT_THROW(json::parse("1.5").as_u64(), Error);
  EXPECT_THROW(json::parse("-3").as_u64(), Error);
}

}  // namespace
}  // namespace nsc
