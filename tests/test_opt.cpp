// The src/opt/ optimizer: verifier, pass unit tests, and the
// differential harness -- every corpus program is compiled at O0 / O1 /
// O2 and run on random well-typed inputs; outputs must agree exactly
// (including traps) and the optimized T and W must not exceed the naive
// ones.
#include <gtest/gtest.h>

#include "nsc/build.hpp"
#include "nsc/eval.hpp"
#include "nsc/maprec.hpp"
#include "nsc/prelude.hpp"
#include "nsc/typecheck.hpp"
#include "object/random.hpp"
#include "opt/liveness.hpp"
#include "opt/opt.hpp"
#include "sa/compile.hpp"
#include "support/prng.hpp"

namespace nsc::opt {
namespace {

namespace L = nsc::lang;
namespace P = nsc::lang::prelude;
using bvram::Assembler;
using bvram::Op;
using bvram::Program;
using lang::ArithOp;
using nsc::SplitMix64;
using nsc::Type;
using nsc::Value;

const TypeRef N = Type::nat();
const TypeRef NSeq = Type::seq(Type::nat());

// ---------------------------------------------------------------------------
// verifier
// ---------------------------------------------------------------------------

TEST(Verify, AcceptsWellFormed) {
  Assembler a;
  auto r = a.reg();
  a.load_const(r, 7);
  a.halt();
  EXPECT_NO_THROW(verify(a.finish(0, 1)));
}

TEST(Verify, RejectsRegisterOutOfRange) {
  Program p;
  p.num_regs = 2;
  p.code.push_back({Op::Move, ArithOp::Add, 1, 5, 0, 0, 0, 0});
  EXPECT_THROW(verify(p), MachineError);
}

TEST(Verify, RejectsSbmRouteSegmentRegister) {
  // SbmRoute's fourth register operand travels in `imm`.
  Program p;
  p.num_regs = 4;
  p.code.push_back({Op::SbmRoute, ArithOp::Add, 0, 1, 2, 3, 99, 0});
  EXPECT_THROW(verify(p), MachineError);
}

TEST(Verify, RejectsBadJumpTarget) {
  Program p;
  p.num_regs = 1;
  p.code.push_back({Op::Goto, ArithOp::Add, 0, 0, 0, 0, 0, 5});
  EXPECT_THROW(verify(p), MachineError);
}

TEST(Verify, RejectsBadIoArity) {
  Program p;
  p.num_regs = 1;
  p.num_inputs = 3;
  EXPECT_THROW(verify(p), MachineError);
}

// ---------------------------------------------------------------------------
// assembler label hygiene
// ---------------------------------------------------------------------------

TEST(Assembler, UnboundLabelRejected) {
  Assembler a;
  auto l = a.fresh_label();
  a.jump(l);  // never bound
  EXPECT_THROW(a.finish(0, 0), MachineError);
}

TEST(Assembler, DoubleBindRejected) {
  Assembler a;
  auto l = a.fresh_label();
  a.bind(l);
  EXPECT_THROW(a.bind(l), MachineError);
}

TEST(Assembler, UnknownLabelRejected) {
  Assembler a;
  EXPECT_THROW(a.jump(42), MachineError);
  EXPECT_THROW(a.bind(42), MachineError);
}

// ---------------------------------------------------------------------------
// pass unit tests
// ---------------------------------------------------------------------------

std::size_t count_op(const Program& p, Op op) {
  std::size_t n = 0;
  for (const auto& in : p.code) n += in.op == op ? 1 : 0;
  return n;
}

TEST(Passes, MoveChainCollapses) {
  // V1 <- V0; V2 <- V1; V3 <- V2; output V0 <- V3 @ V3.
  Assembler a;
  a.reserve_regs(1);
  auto v1 = a.reg(), v2 = a.reg(), v3 = a.reg();
  a.move(v1, 0);
  a.move(v2, v1);
  a.move(v3, v2);
  a.append(0, v3, v3);
  a.halt();
  Program p = a.finish(1, 1);
  optimize(p);
  EXPECT_EQ(count_op(p, Op::Move), 0u);
  auto r = bvram::run(p, {{4, 5}});
  EXPECT_EQ(r.outputs[0], (std::vector<std::uint64_t>{4, 5, 4, 5}));
}

TEST(Passes, ConstantChainFolds) {
  // (2 + 3) * 4 over LoadConst chains folds to a single LoadConst 20.
  Assembler a;
  auto c2 = a.reg(), c3 = a.reg(), c4 = a.reg(), t = a.reg(), u = a.reg();
  a.load_const(c2, 2);
  a.load_const(c3, 3);
  a.load_const(c4, 4);
  a.arith(t, ArithOp::Add, c2, c3);
  a.arith(u, ArithOp::Mul, t, c4);
  a.move(0, u);
  a.halt();
  Program p = a.finish(0, 1);
  optimize(p);
  EXPECT_EQ(count_op(p, Op::Arith), 0u);
  auto r = bvram::run(p, {});
  EXPECT_EQ(r.outputs[0], (std::vector<std::uint64_t>{20}));
  EXPECT_LE(p.code.size(), 2u);  // LoadConst + (possibly dropped) Halt
}

TEST(Passes, DivisionByZeroIsNotFolded) {
  Assembler a;
  auto one = a.reg(), zero = a.reg();
  a.load_const(one, 1);
  a.load_const(zero, 0);
  a.arith(0, ArithOp::Div, one, zero);
  a.halt();
  Program p = a.finish(0, 1);
  optimize(p);
  EXPECT_EQ(count_op(p, Op::Arith), 1u);  // the trap must survive
  EXPECT_THROW(bvram::run(p, {}), Error);
}

TEST(Passes, RedundantLengthsFuse) {
  // Two Lengths of the same register get the same value number, so their
  // consumers fuse (the second Arith becomes a Move of the first's
  // result); the now-unused second Length is then dead and removed.
  Assembler a;
  a.reserve_regs(1);
  auto l1 = a.reg(), t1 = a.reg(), l2 = a.reg(), t2 = a.reg();
  a.length(l1, 0);
  a.arith(t1, ArithOp::Add, l1, l1);
  a.length(l2, 0);
  a.arith(t2, ArithOp::Add, l2, l2);
  a.append(0, t1, t2);
  a.halt();
  Program p = a.finish(1, 1);
  optimize(p);
  EXPECT_EQ(count_op(p, Op::Length), 1u);
  EXPECT_EQ(count_op(p, Op::Arith), 1u);
  auto r = bvram::run(p, {{9, 9, 9}});
  EXPECT_EQ(r.outputs[0], (std::vector<std::uint64_t>{6, 6}));
}

TEST(Passes, DeadCodeRemovedButTrapsKept) {
  Assembler a;
  a.reserve_regs(1);
  auto dead = a.reg(), one = a.reg(), empty = a.reg();
  a.enumerate(dead, 0);  // dead: removable
  a.load_const(one, 1);
  a.load_empty(empty);
  a.arith(a.reg(), ArithOp::Add, one, empty);  // dead but traps: kept
  a.halt();
  Program p = a.finish(1, 1);
  optimize(p);
  EXPECT_EQ(count_op(p, Op::Enumerate), 0u);
  EXPECT_EQ(count_op(p, Op::Arith), 1u);
  EXPECT_THROW(bvram::run(p, {{1, 2}}), MachineError);
}

TEST(Passes, BranchOnKnownShapeFolds) {
  Assembler a;
  a.reserve_regs(1);
  auto c = a.reg();
  a.load_const(c, 5);
  auto l = a.fresh_label();
  a.jump_if_empty(c, l);  // [5] is never empty: branch folds away
  a.move(0, c);
  a.bind(l);
  a.halt();
  Program p = a.finish(1, 1);
  optimize(p);
  EXPECT_EQ(count_op(p, Op::GotoIfEmpty), 0u);
  auto r = bvram::run(p, {{}});
  EXPECT_EQ(r.outputs[0], (std::vector<std::uint64_t>{5}));
}

TEST(Passes, UnreachableCodeRemoved) {
  Assembler a;
  a.reserve_regs(1);
  auto l = a.fresh_label();
  a.jump(l);
  a.enumerate(a.reg(), 0);  // unreachable
  a.enumerate(a.reg(), 0);  // unreachable
  a.bind(l);
  a.halt();
  Program p = a.finish(1, 1);
  optimize(p);
  EXPECT_EQ(count_op(p, Op::Enumerate), 0u);
}

TEST(Passes, RegisterFileCompacts) {
  Assembler a;
  a.reserve_regs(1);
  for (int i = 0; i < 20; ++i) a.reg();  // never-touched registers
  auto v = a.reg();
  a.length(v, 0);
  a.move(0, v);
  a.halt();
  Program p = a.finish(1, 1);
  const std::size_t before = p.num_regs;
  optimize(p);
  EXPECT_LT(p.num_regs, before);
  auto r = bvram::run(p, {{7, 8}});
  EXPECT_EQ(r.outputs[0], (std::vector<std::uint64_t>{2}));
}

TEST(Passes, LoopHeadAtEntryDoesNotInheritTailFacts) {
  // Instruction 0 is a jump target whose only CFG predecessor is the
  // loop tail J (a tree root, since two paths reach it).  The EBB value
  // numbering must not make block 0 a child of J: on the zero-iteration
  // entry path J never executed, so aliasing the entry Length to J's
  // Length (and CSE-ing the exit Arith into J's) would read registers
  // that were never written.  V1 empty => exit immediately with
  // [len(V0)+len(V0)].
  Assembler a;
  a.reserve_regs(2);
  auto v2 = a.reg(), s2 = a.reg(), v3 = a.reg(), s3 = a.reg();
  auto top = a.fresh_label(), tail = a.fresh_label(), exit = a.fresh_label();
  a.bind(top);
  a.length(v2, 0);
  a.jump_if_empty(1, exit);
  a.jump_if_empty(0, tail);  // second edge into the tail: makes it a root
  a.load_empty(1);
  a.bind(tail);
  a.length(v3, 0);
  a.arith(s3, ArithOp::Add, v3, v3);
  a.load_empty(1);
  a.jump(top);
  a.bind(exit);
  a.arith(s2, ArithOp::Add, v2, v2);
  a.move(0, s2);
  a.halt();
  (void)s3;
  Program p = a.finish(2, 1);
  const auto want = bvram::run(p, {{7, 8, 9}, {}}).outputs[0];
  optimize(p);
  EXPECT_EQ(bvram::run(p, {{7, 8, 9}, {}}).outputs[0], want);
  EXPECT_EQ(want, (std::vector<std::uint64_t>{6}));
}

TEST(Passes, LoopHeadAtEntryKeepsBackEdgeStates) {
  // A register that is empty on program entry but constant on the back
  // edge must not be folded as empty at instruction 0.
  Assembler a;
  a.reserve_regs(2);
  auto v2 = a.reg(), v3 = a.reg();
  auto top = a.fresh_label(), exit = a.fresh_label();
  a.bind(top);
  a.length(v2, v3);
  a.jump_if_empty(1, exit);
  a.load_const(v3, 5);
  a.load_empty(1);
  a.jump(top);
  a.bind(exit);
  a.move(0, v2);
  a.halt();
  Program p = a.finish(2, 1);
  const auto want = bvram::run(p, {{}, {1}}).outputs[0];
  optimize(p);
  EXPECT_EQ(bvram::run(p, {{}, {1}}).outputs[0], want);
  EXPECT_EQ(want, (std::vector<std::uint64_t>{1}));
}

TEST(Passes, ExpandingRouteIsNotRewrittenToMove) {
  // sbm-route is the one op whose output can be longer than all of its
  // operands combined (|out| = sum counts*segs), so a CSE hit must not
  // become a Move of the result (work 2*|out| > the route's own work).
  Assembler a;
  a.reserve_regs(3);  // V1 = bound (len 3), V2 = data (len 4)
  auto counts = a.reg(), segs = a.reg(), r1 = a.reg(), r2 = a.reg();
  a.load_const(counts, 3);
  a.load_const(segs, 4);
  a.sbm_route(r1, 1, counts, 2, segs);
  a.sbm_route(r2, 1, counts, 2, segs);
  a.append(0, r1, r2);
  a.halt();
  Program p = a.finish(3, 1);
  const std::vector<std::vector<std::uint64_t>> inputs = {
      {}, {0, 0, 0}, {5, 6, 7, 8}};
  const auto before = bvram::run(p, inputs);
  optimize(p);
  EXPECT_EQ(count_op(p, Op::SbmRoute), 2u);
  EXPECT_EQ(count_op(p, Op::Move), 0u);
  const auto after = bvram::run(p, inputs);
  EXPECT_EQ(after.outputs[0], before.outputs[0]);
  EXPECT_LE(after.cost.work, before.cost.work);
  EXPECT_LE(after.cost.time, before.cost.time);
}

TEST(Passes, RouteAlgebraCollapsesAllOnesPack) {
  // The catalog's pack_vec(x, ones_like(x)): broadcast [1] over x, select
  // the bits, route x through them.  The counts are provably all-ones and
  // every certificate is discharged by value numbering, so the pack
  // collapses to a copy of x; only the broadcast route itself survives
  // (its own certificate can trap, so DCE must keep it).
  Assembler a;
  a.reserve_regs(1);
  auto one = a.reg(), lenx = a.reg(), bits = a.reg(), bound2 = a.reg(),
       packed = a.reg();
  a.load_const(one, 1);
  a.length(lenx, 0);
  a.bm_route(bits, 0, lenx, one);   // ones_like(V0)
  a.select(bound2, bits);           // all ones selected: a copy
  a.bm_route(packed, bound2, bits, 0);  // pack_vec(V0, bits): identity
  a.move(0, packed);
  a.halt();
  Program p = a.finish(1, 1);
  const std::vector<std::vector<std::uint64_t>> inputs = {{4, 0, 6, 7}};
  const auto before = bvram::run(p, inputs);
  optimize(p);
  EXPECT_EQ(count_op(p, Op::BmRoute), 1u);  // broadcast kept (can trap)
  EXPECT_EQ(count_op(p, Op::Select), 0u);
  const auto after = bvram::run(p, inputs);
  EXPECT_EQ(after.outputs[0], before.outputs[0]);
  EXPECT_LE(after.cost.work, before.cost.work);
  EXPECT_LE(after.cost.time, before.cost.time);
  // select([]) and the zero slot survive: the pack is an identity even
  // with zero *values* (sigma is only applied to the all-ones bits).
  EXPECT_EQ(after.outputs[0], (std::vector<std::uint64_t>{4, 0, 6, 7}));
}

TEST(Passes, RouteAlgebraSelectOfOnesIsCopy) {
  Assembler a;
  a.reserve_regs(1);
  auto one = a.reg(), lenx = a.reg(), bits = a.reg(), sel = a.reg();
  a.load_const(one, 1);
  a.length(lenx, 0);
  a.bm_route(bits, 0, lenx, one);
  a.select(sel, bits);
  a.move(0, sel);
  a.halt();
  Program p = a.finish(1, 1);
  optimize(p);
  EXPECT_EQ(count_op(p, Op::Select), 0u);
  auto r = bvram::run(p, {{9, 9, 9}});
  EXPECT_EQ(r.outputs[0], (std::vector<std::uint64_t>{1, 1, 1}));
}

TEST(Passes, RouteAlgebraEnumerateOfOnesFuses) {
  // enumerate(ones_like(x)) has x's length, so it value-numbers together
  // with enumerate(x) and the recomputation fuses away.
  Assembler a;
  a.reserve_regs(1);
  auto one = a.reg(), lenx = a.reg(), bits = a.reg(), e1 = a.reg(),
       e2 = a.reg();
  a.load_const(one, 1);
  a.length(lenx, 0);
  a.enumerate(e1, 0);
  a.bm_route(bits, 0, lenx, one);
  a.enumerate(e2, bits);
  a.append(0, e1, e2);
  a.halt();
  Program p = a.finish(1, 1);
  optimize(p);
  EXPECT_EQ(count_op(p, Op::Enumerate), 1u);
  auto r = bvram::run(p, {{5, 5, 5}});
  EXPECT_EQ(r.outputs[0], (std::vector<std::uint64_t>{0, 1, 2, 0, 1, 2}));
}

TEST(Passes, RouteAlgebraKeepsUnprovableCertificates) {
  // counts are all-ones of V0's length, but the bound is a *different*
  // register: sum(counts) == |bound| is not provable, so the route (and
  // its runtime trap) must survive.
  Assembler a;
  a.reserve_regs(2);
  auto one = a.reg(), lenx = a.reg(), bits = a.reg(), out = a.reg();
  a.load_const(one, 1);
  a.length(lenx, 0);
  a.bm_route(bits, 0, lenx, one);
  a.bm_route(out, 1, bits, 0);  // bound is V1, unrelated to bits
  a.move(0, out);
  a.halt();
  Program p = a.finish(2, 1);
  optimize(p);
  EXPECT_EQ(count_op(p, Op::BmRoute), 2u);
  // Matching bound: identity semantics preserved.
  auto ok = bvram::run(p, {{7, 8}, {0, 0}});
  EXPECT_EQ(ok.outputs[0], (std::vector<std::uint64_t>{7, 8}));
  // Mismatched bound: the certificate still traps.
  EXPECT_THROW(bvram::run(p, {{7, 8}, {0, 0, 0}}), MachineError);
}

// ---------------------------------------------------------------------------
// dominators, loop forest, preheader insertion (opt/cfg.hpp)
// ---------------------------------------------------------------------------

std::size_t executed_ops(const bvram::RunResult& r, Op op) {
  std::size_t n = 0;
  for (const auto& t : r.trace) n += t.op == op ? 1 : 0;
  return n;
}

TEST(Analysis, DominatorsOfADiamond) {
  // 0: branch; 1/2: arms; 3: join.  The branch dominates everything, the
  // arms dominate nothing but themselves.
  Assembler a;
  a.reserve_regs(2);
  auto v = a.reg();
  auto join = a.fresh_label(), el = a.fresh_label();
  a.jump_if_empty(1, el);
  a.enumerate(v, 0);
  a.jump(join);
  a.bind(el);
  a.length(v, 0);
  a.bind(join);
  a.move(0, v);
  a.halt();
  Program p = a.finish(2, 1);
  const Cfg cfg = Cfg::build(p);
  const DomTree dom = DomTree::build(cfg);
  const std::size_t b0 = cfg.block_of[0];  // the branch
  const std::size_t arm1 = cfg.block_of[1];
  const std::size_t arm2 = cfg.block_of[3];
  const std::size_t join_b = cfg.block_of[4];
  EXPECT_TRUE(dom.dominates(b0, arm1));
  EXPECT_TRUE(dom.dominates(b0, arm2));
  EXPECT_TRUE(dom.dominates(b0, join_b));
  EXPECT_FALSE(dom.dominates(arm1, join_b));
  EXPECT_FALSE(dom.dominates(arm2, join_b));
  EXPECT_EQ(dom.idom[join_b], b0);
  EXPECT_TRUE(dom.dominates(join_b, join_b));
}

TEST(Analysis, LoopForestOfAWhile) {
  Assembler a;
  a.reserve_regs(2);
  auto one = a.reg(), nz = a.reg();
  a.load_const(one, 1);
  auto top = a.fresh_label(), done = a.fresh_label();
  a.bind(top);
  a.select(nz, 1);
  a.jump_if_empty(nz, done);
  a.arith(1, ArithOp::Monus, 1, one);
  a.jump(top);
  a.bind(done);
  a.move(0, 1);
  a.halt();
  Program p = a.finish(2, 1);
  const Cfg cfg = Cfg::build(p);
  const DomTree dom = DomTree::build(cfg);
  const LoopForest loops = LoopForest::build(cfg, dom);
  ASSERT_EQ(loops.loops.size(), 1u);
  const Loop& l = loops.loops[0];
  EXPECT_EQ(l.header, cfg.block_of[1]);  // the select at `top`
  EXPECT_EQ(l.depth, 1u);
  EXPECT_EQ(l.parent, kNoBlock);
  ASSERT_EQ(l.latches.size(), 1u);
  EXPECT_EQ(l.latches[0], cfg.block_of[4]);  // the jump back
  ASSERT_EQ(l.exits.size(), 1u);
  EXPECT_EQ(l.exits[0], cfg.block_of[1]);  // the conditional exit
  EXPECT_EQ(l.blocks.size(), 2u);          // header + body
  EXPECT_TRUE(loops.contains(0, cfg.block_of[3]));
  EXPECT_EQ(loops.loop_of[cfg.block_of[0]], kNoBlock);  // preheader code
}

TEST(Analysis, LoopForestNesting) {
  // while (!empty V1) { while (!empty V2) { V2 -= 1 } V1 -= 1 }
  Assembler a;
  a.reserve_regs(3);
  auto one = a.reg(), nz = a.reg();
  a.load_const(one, 1);
  auto otop = a.fresh_label(), odone = a.fresh_label();
  auto itop = a.fresh_label(), idone = a.fresh_label();
  a.bind(otop);
  a.jump_if_empty(1, odone);
  a.bind(itop);
  a.select(nz, 2);
  a.jump_if_empty(nz, idone);
  a.arith(2, ArithOp::Monus, 2, one);
  a.jump(itop);
  a.bind(idone);
  a.arith(1, ArithOp::Monus, 1, one);
  a.select(nz, 1);
  a.move(1, nz);
  a.jump(otop);
  a.bind(odone);
  a.move(0, 1);
  a.halt();
  Program p = a.finish(3, 1);
  const Cfg cfg = Cfg::build(p);
  const LoopForest loops = LoopForest::build(cfg, DomTree::build(cfg));
  ASSERT_EQ(loops.loops.size(), 2u);
  const std::size_t outer = loops.loops[0].depth == 1 ? 0 : 1;
  const std::size_t inner = 1 - outer;
  EXPECT_EQ(loops.loops[inner].depth, 2u);
  EXPECT_EQ(loops.loops[inner].parent, outer);
  EXPECT_EQ(loops.loops[outer].parent, kNoBlock);
  EXPECT_GT(loops.loops[outer].blocks.size(),
            loops.loops[inner].blocks.size());
  // The inner header belongs to the inner loop, the outer header only to
  // the outer one.
  EXPECT_EQ(loops.loop_of[loops.loops[inner].header], inner);
  EXPECT_EQ(loops.loop_of[loops.loops[outer].header], outer);
}

TEST(Analysis, SingleBlockSelfLoop) {
  // A latch that IS the header (one-block loop ending in a conditional
  // back edge): the body must be exactly the header block, not
  // everything upstream of it.
  Assembler a;
  a.reserve_regs(2);  // V0: invariant data, output; V1 unused
  auto one = a.reg(), k = a.reg(), cnt = a.reg(), inv = a.reg(),
       d = a.reg(), t = a.reg();
  a.load_const(one, 1);
  a.load_const(k, 3);
  a.load_const(cnt, 0);
  auto top = a.fresh_label();
  a.bind(top);
  a.enumerate(inv, 0);  // invariant, hoistable
  a.arith(cnt, ArithOp::Add, cnt, one);
  a.arith(d, ArithOp::Monus, cnt, k);
  a.select(t, d);
  a.jump_if_empty(t, top);  // back while cnt <= k; falls through to exit
  a.move(0, inv);
  a.halt();
  Program p = a.finish(2, 1);
  const Cfg cfg = Cfg::build(p);
  const LoopForest loops = LoopForest::build(cfg, DomTree::build(cfg));
  ASSERT_EQ(loops.loops.size(), 1u);
  const Loop& l = loops.loops[0];
  EXPECT_EQ(l.header, cfg.block_of[3]);  // the enumerate at `top`
  EXPECT_EQ(l.blocks, (std::vector<std::size_t>{l.header}));
  EXPECT_EQ(l.latches, (std::vector<std::size_t>{l.header}));
  EXPECT_EQ(l.exits, (std::vector<std::size_t>{l.header}));
  EXPECT_EQ(loops.loop_of[cfg.block_of[0]], kNoBlock);

  // LICM works on self-loops too: the invariant enumerate hoists.
  bvram::RunConfig rc;
  rc.record_trace = true;
  const auto before = bvram::run(p, {{7, 7}, {}}, rc);
  optimize(p);
  const auto after = bvram::run(p, {{7, 7}, {}}, rc);
  EXPECT_EQ(after.outputs[0], before.outputs[0]);
  EXPECT_LE(after.cost.work, before.cost.work);
  EXPECT_EQ(executed_ops(before, Op::Enumerate), 4u);  // once per iteration
  EXPECT_EQ(executed_ops(after, Op::Enumerate), 1u);   // hoisted
}

TEST(Analysis, InsertBeforeRoutesEntryAndBackEdges) {
  // A one-block loop; code inserted before the header must run on entry
  // (fall-through) but be skipped by the back-edge jump.
  Assembler a;
  a.reserve_regs(2);
  auto one = a.reg(), nz = a.reg();
  a.load_const(one, 1);
  auto top = a.fresh_label(), done = a.fresh_label();
  a.bind(top);                            // instruction 1
  a.select(nz, 1);
  a.jump_if_empty(nz, done);
  a.arith(1, ArithOp::Monus, 1, one);
  a.jump(top);                            // instruction 4: the back edge
  a.bind(done);
  a.move(0, 1);
  a.halt();
  Program p = a.finish(2, 1);
  const auto want = bvram::run(p, {{}, {3}});

  std::vector<std::vector<bvram::Instr>> ins(p.code.size());
  // Insert "V_fresh <- [7]" before the header.  It must execute exactly
  // once even though the loop iterates three times.
  Program q = p;
  q.num_regs += 1;
  const auto fresh = static_cast<std::uint32_t>(q.num_regs - 1);
  ins[1].push_back({Op::LoadConst, ArithOp::Add, fresh, 0, 0, 0, 7, 0});
  std::vector<bool> land_after(p.code.size(), false);
  land_after[4] = true;  // the back edge skips the inserted run
  EXPECT_TRUE(insert_before(q, ins, land_after));
  ASSERT_EQ(q.code.size(), p.code.size() + 1);
  EXPECT_EQ(q.code[1].op, Op::LoadConst);  // sits where the header was
  EXPECT_EQ(q.code[5].op, Op::Goto);
  EXPECT_EQ(q.code[5].target, 2u);  // back edge lands after the insertion
  const auto got = bvram::run(q, {{}, {3}});
  EXPECT_EQ(got.outputs[0], want.outputs[0]);
  // 3 iterations, 1 inserted instruction executed once.
  EXPECT_EQ(got.cost.time, want.cost.time + 1);
}

// ---------------------------------------------------------------------------
// global value numbering (opt/gvn.cpp)
// ---------------------------------------------------------------------------

TEST(Gvn, RecomputationAfterAJoinFuses) {
  // Length(V0) is computed before a branch diamond and again after the
  // join.  The EBB-scoped CSE of PR 1-3 lost all facts at the join; the
  // dominator-scoped GVN fuses the second Length (and the Arith over it)
  // with the originals.
  Assembler a;
  a.reserve_regs(2);
  auto l1 = a.reg(), t1 = a.reg(), m = a.reg(), l2 = a.reg(), t2 = a.reg(),
       q = a.reg(), r = a.reg();
  a.length(l1, 0);
  a.arith(t1, ArithOp::Add, l1, l1);
  auto el = a.fresh_label(), join = a.fresh_label();
  a.jump_if_empty(1, el);
  a.enumerate(m, 0);
  a.jump(join);
  a.bind(el);
  a.load_empty(m);
  a.bind(join);
  a.length(l2, 0);  // recomputation across the join: fuses
  a.arith(t2, ArithOp::Add, l2, l2);
  a.append(q, t1, t2);
  a.append(r, q, m);
  a.move(0, r);
  a.halt();
  Program p = a.finish(2, 1);
  const auto want = bvram::run(p, {{4, 5, 6}, {1}});
  optimize(p);
  EXPECT_EQ(count_op(p, Op::Length), 1u);
  EXPECT_EQ(count_op(p, Op::Arith), 1u);
  EXPECT_EQ(bvram::run(p, {{4, 5, 6}, {1}}).outputs[0], want.outputs[0]);
  EXPECT_EQ(want.outputs[0], (std::vector<std::uint64_t>{6, 6, 0, 1, 2}));
  EXPECT_EQ(bvram::run(p, {{4, 5, 6}, {}}).outputs[0],
            (std::vector<std::uint64_t>{6, 6}));
}

TEST(Gvn, LoopRedefinitionBlocksFusion) {
  // Length(V0) before the loop and at the loop header, with V0 doubled
  // inside the loop: the header recomputation must NOT fuse with the
  // pre-loop value (the loop body's definitions are killed at the
  // header), or the second output entry would read 2 instead of 4.
  Assembler a;
  a.reserve_regs(2);
  auto l1 = a.reg(), l2 = a.reg(), s = a.reg();
  a.length(l1, 0);
  auto top = a.fresh_label(), exit = a.fresh_label();
  a.bind(top);
  a.length(l2, 0);  // V0 changes per iteration: stays
  a.jump_if_empty(1, exit);
  a.append(0, 0, 0);
  a.load_empty(1);
  a.jump(top);
  a.bind(exit);
  a.append(s, l1, l2);
  a.move(0, s);
  a.halt();
  Program p = a.finish(2, 1);
  const auto want = bvram::run(p, {{7, 8}, {1}}).outputs[0];
  optimize(p);
  EXPECT_EQ(bvram::run(p, {{7, 8}, {1}}).outputs[0], want);
  EXPECT_EQ(want, (std::vector<std::uint64_t>{2, 4}));
  EXPECT_EQ(count_op(p, Op::Length), 2u);
}

TEST(Gvn, SiblingBranchesDoNotShareFacts) {
  // The same expression computed in the two arms of a diamond must not
  // fuse across arms (neither dominates the other).
  Assembler a;
  a.reserve_regs(2);
  auto x = a.reg(), y = a.reg();
  auto el = a.fresh_label(), join = a.fresh_label();
  a.jump_if_empty(1, el);
  a.enumerate(x, 0);
  a.move(0, x);
  a.jump(join);
  a.bind(el);
  a.enumerate(y, 0);  // same expression, sibling arm: must survive
  a.move(0, y);
  a.bind(join);
  a.halt();
  Program p = a.finish(2, 1);
  optimize(p);
  EXPECT_EQ(count_op(p, Op::Enumerate), 2u);
  EXPECT_EQ(bvram::run(p, {{5, 5}, {}}).outputs[0],
            (std::vector<std::uint64_t>{0, 1}));
  EXPECT_EQ(bvram::run(p, {{5, 5}, {1}}).outputs[0],
            (std::vector<std::uint64_t>{0, 1}));
}

// ---------------------------------------------------------------------------
// branch-sensitive constant propagation
// ---------------------------------------------------------------------------

TEST(BranchSensitive, TakenEdgeKnowsTheRegisterIsEmpty)
{
  // The block reached only by the taken edge of `if empty?(V1)` knows V1
  // is empty, so Length(V1) folds to [0] even though V1 is an input with
  // no global fact.
  Assembler a;
  a.reserve_regs(2);
  auto l = a.reg();
  auto taken = a.fresh_label();
  a.jump_if_empty(1, taken);
  a.move(0, 1);
  a.halt();
  a.bind(taken);
  a.length(l, 1);
  a.move(0, l);
  a.halt();
  Program p = a.finish(2, 1);
  optimize(p);
  EXPECT_EQ(count_op(p, Op::Length), 0u);
  EXPECT_EQ(bvram::run(p, {{}, {}}).outputs[0],
            (std::vector<std::uint64_t>{0}));
  EXPECT_EQ(bvram::run(p, {{}, {5}}).outputs[0],
            (std::vector<std::uint64_t>{5}));
}

TEST(BranchSensitive, FallThroughEdgeLearnsNothing) {
  // On the fall-through edge the register is non-empty, which the
  // lattice cannot represent: downstream code must stay.
  Assembler a;
  a.reserve_regs(2);
  auto l = a.reg();
  auto taken = a.fresh_label();
  a.jump_if_empty(1, taken);
  a.length(l, 1);
  a.move(0, l);
  a.halt();
  a.bind(taken);
  a.load_const(l, 99);
  a.move(0, l);
  a.halt();
  Program p = a.finish(2, 1);
  optimize(p);
  EXPECT_EQ(count_op(p, Op::Length), 1u);
  EXPECT_EQ(bvram::run(p, {{}, {5, 6}}).outputs[0],
            (std::vector<std::uint64_t>{2}));
  EXPECT_EQ(bvram::run(p, {{}, {}}).outputs[0],
            (std::vector<std::uint64_t>{99}));
}

// ---------------------------------------------------------------------------
// loop-invariant code motion (opt/licm.cpp)
// ---------------------------------------------------------------------------

TEST(Licm, InvariantHeaderCodeHoists) {
  // enumerate(V0) sits in the loop header with V0 never written inside:
  // it must execute once per run, not once per iteration.
  Assembler a;
  a.reserve_regs(2);
  auto one = a.reg(), inv = a.reg(), nz = a.reg();
  a.load_const(one, 1);
  auto top = a.fresh_label(), exit = a.fresh_label();
  a.bind(top);
  a.enumerate(inv, 0);  // invariant, in the header block
  a.select(nz, 1);
  a.jump_if_empty(nz, exit);
  a.arith(1, ArithOp::Monus, 1, one);
  a.jump(top);
  a.bind(exit);
  a.move(0, inv);
  a.halt();
  Program p = a.finish(2, 1);
  bvram::RunConfig cfg;
  cfg.record_trace = true;
  const auto before = bvram::run(p, {{9, 9, 9}, {3}}, cfg);
  optimize(p);
  const auto after = bvram::run(p, {{9, 9, 9}, {3}}, cfg);
  EXPECT_EQ(after.outputs[0], before.outputs[0]);
  EXPECT_LE(after.cost.time, before.cost.time);
  EXPECT_LE(after.cost.work, before.cost.work);
  EXPECT_EQ(executed_ops(before, Op::Enumerate), 4u);  // per header visit
  EXPECT_EQ(executed_ops(after, Op::Enumerate), 1u);   // hoisted
}

TEST(Licm, NothingHoistsOntoTheZeroTripPath) {
  // The same loop entered with V1 already empty: the loop still exits
  // immediately and the optimized program must not spend more than the
  // naive one (no speculation).
  Assembler a;
  a.reserve_regs(2);
  auto one = a.reg(), inv = a.reg(), nz = a.reg();
  a.load_const(one, 1);
  auto top = a.fresh_label(), exit = a.fresh_label();
  a.bind(top);
  a.enumerate(inv, 0);
  a.select(nz, 1);
  a.jump_if_empty(nz, exit);
  a.arith(1, ArithOp::Monus, 1, one);
  a.jump(top);
  a.bind(exit);
  a.move(0, inv);
  a.halt();
  Program p = a.finish(2, 1);
  const auto before = bvram::run(p, {{9, 9}, {}});
  optimize(p);
  const auto after = bvram::run(p, {{9, 9}, {}});
  EXPECT_EQ(after.outputs[0], before.outputs[0]);
  EXPECT_LE(after.cost.time, before.cost.time);
  EXPECT_LE(after.cost.work, before.cost.work);
}

TEST(Licm, VaryingOperandsStay) {
  // enumerate(V1) with V1 stepped in the loop is not invariant.
  Assembler a;
  a.reserve_regs(2);
  auto one = a.reg(), e = a.reg(), nz = a.reg();
  a.load_const(one, 1);
  auto top = a.fresh_label(), exit = a.fresh_label();
  a.bind(top);
  a.enumerate(e, 1);
  a.select(nz, 1);
  a.jump_if_empty(nz, exit);
  a.arith(1, ArithOp::Monus, 1, one);
  a.jump(top);
  a.bind(exit);
  a.move(0, e);
  a.halt();
  Program p = a.finish(2, 1);
  bvram::RunConfig cfg;
  cfg.record_trace = true;
  const auto before = bvram::run(p, {{}, {2}}, cfg);
  optimize(p);
  const auto after = bvram::run(p, {{}, {2}}, cfg);
  EXPECT_EQ(after.outputs[0], before.outputs[0]);
  EXPECT_EQ(executed_ops(after, Op::Enumerate), 3u);  // per header visit
}

TEST(Licm, InvariantBroadcastCertificateDischarges) {
  // The catalog's ones_like(V0): LoadConst 1, Length(V0), bm-route with
  // bound == the Length's source.  All three are invariant and the route
  // certificate is provable, so the whole mask hoists out of the loop.
  Assembler a;
  a.reserve_regs(2);
  auto stepc = a.reg(), one = a.reg(), lenx = a.reg(), mask = a.reg(),
       nz = a.reg();
  a.load_const(stepc, 1);
  auto top = a.fresh_label(), exit = a.fresh_label();
  a.bind(top);
  a.load_const(one, 1);
  a.length(lenx, 0);
  a.bm_route(mask, 0, lenx, one);  // ones_like(V0), invariant
  a.select(nz, 1);
  a.jump_if_empty(nz, exit);
  a.arith(1, ArithOp::Monus, 1, stepc);
  a.jump(top);
  a.bind(exit);
  a.move(0, mask);
  a.halt();
  Program p = a.finish(2, 1);
  bvram::RunConfig cfg;
  cfg.record_trace = true;
  const auto before = bvram::run(p, {{4, 0, 6}, {2}}, cfg);
  optimize(p);
  const auto after = bvram::run(p, {{4, 0, 6}, {2}}, cfg);
  EXPECT_EQ(after.outputs[0], before.outputs[0]);
  EXPECT_EQ(after.outputs[0], (std::vector<std::uint64_t>{1, 1, 1}));
  EXPECT_LE(after.cost.work, before.cost.work);
  EXPECT_EQ(executed_ops(before, Op::BmRoute), 3u);  // per header visit
  EXPECT_EQ(executed_ops(after, Op::BmRoute), 1u);   // hoisted
}

TEST(Licm, SelfClobberingLengthDoesNotCertifyRoute) {
  // length(y, y) overwrites its own source, so "sum(counts) == |bound|"
  // does not hold for bm_route(m, y, y, c): with y initially empty,
  // |y| becomes 1 but sum(y) = 0.  The route sits on the loop's only
  // exit path (its block dominates the exit) while a spin cycle can
  // keep the loop running forever without reaching it -- hoisting it
  // would introduce a trap the original program never executes.
  Assembler a;
  a.reserve_regs(2);  // V0: out, V1: spin selector
  auto y = a.reg(), c = a.reg(), m = a.reg();
  a.load_const(c, 1);
  a.length(y, y);  // y := [length(y)] : clobbers its own source
  auto top = a.fresh_label(), route_l = a.fresh_label(),
       exit = a.fresh_label();
  a.bind(top);
  a.jump_if_empty(1, route_l);
  a.jump(top);  // spin while V1 is non-empty
  a.bind(route_l);
  a.bm_route(m, y, y, c);  // certificate fails at run time: 0 != 1
  a.jump_if_empty(0, exit);
  a.jump(top);
  a.bind(exit);
  a.move(0, m);
  a.halt();
  Program p = a.finish(2, 1);
  bvram::RunConfig fuel;
  fuel.max_instructions = 1000;
  // Spinning input: runs out of fuel without ever trapping.
  EXPECT_THROW(bvram::run(p, {{}, {1}}, fuel), FuelExhausted);
  // Route input: the certificate trap fires.
  EXPECT_THROW(bvram::run(p, {{}, {}}, fuel), MachineError);
  optimize(p);
  // Both behaviors must survive: the route was NOT hoisted into the
  // preheader (which the spin path executes).
  EXPECT_THROW(bvram::run(p, {{}, {1}}, fuel), FuelExhausted);
  EXPECT_THROW(bvram::run(p, {{}, {}}, fuel), MachineError);
}

TEST(Licm, UnprovableRouteCertificateStays) {
  // Same shape but the route's bound is a *different* register than the
  // Length's source: sum(counts) == |bound| is not provable, so the
  // (possibly trapping) route must stay in the loop.
  Assembler a;
  a.reserve_regs(3);
  auto one = a.reg(), lenx = a.reg(), mask = a.reg(), nz = a.reg(),
       stepc = a.reg();
  a.load_const(stepc, 1);
  auto top = a.fresh_label(), exit = a.fresh_label();
  a.bind(top);
  a.load_const(one, 1);
  a.length(lenx, 0);
  a.bm_route(mask, 1, lenx, one);  // bound V1 != Length source V0
  a.select(nz, 2);
  a.jump_if_empty(nz, exit);
  a.arith(2, ArithOp::Monus, 2, stepc);
  a.jump(top);
  a.bind(exit);
  a.move(0, mask);
  a.halt();
  Program p = a.finish(3, 1);
  bvram::RunConfig cfg;
  cfg.record_trace = true;
  const auto before = bvram::run(p, {{4}, {9}, {1}}, cfg);
  optimize(p);
  const auto after = bvram::run(p, {{4}, {9}, {1}}, cfg);
  EXPECT_EQ(after.outputs[0], before.outputs[0]);
  EXPECT_EQ(executed_ops(after, Op::BmRoute), 2u);  // per header visit
  // The mismatch case still traps identically.
  EXPECT_THROW(bvram::run(p, {{4, 4}, {9}, {1}}), MachineError);
}

// ---------------------------------------------------------------------------
// liveness export (opt/liveness.hpp)
// ---------------------------------------------------------------------------

TEST(LastUse, StraightLineMasks) {
  Assembler a;
  a.reserve_regs(1);
  auto t = a.reg();
  a.enumerate(t, 0);  // V0's old value dies here (overwritten next)
  a.move(0, t);       // t dies here
  a.halt();
  Program p = a.finish(1, 1);
  const auto mask = compute_last_use(p);
  ASSERT_EQ(mask.size(), 3u);
  EXPECT_EQ(mask[0] & 1u, 1u);  // enumerate's source V0 dead after
  EXPECT_EQ(mask[1] & 1u, 1u);  // move's source t dead after
  EXPECT_EQ(mask[2], 0u);       // halt has no sources
}

TEST(LastUse, OutputRegistersStayLive) {
  Assembler a;
  a.reserve_regs(1);
  auto t = a.reg();
  a.enumerate(t, 0);
  a.halt();
  Program p = a.finish(1, 2);  // both V0 and t are outputs
  const auto mask = compute_last_use(p);
  EXPECT_EQ(mask[0] & 1u, 0u);  // V0 live at exit: not a last use
}

TEST(LastUse, LoopCarriedRegisterNotDead) {
  // V1 is read again on the next iteration: no instruction inside the
  // loop may claim it as a last use, except where it is rewritten first.
  Assembler a;
  a.reserve_regs(2);
  auto one = a.reg(), nz = a.reg();
  a.load_const(one, 1);
  auto top = a.fresh_label(), done = a.fresh_label();
  a.bind(top);
  a.select(nz, 1);
  a.jump_if_empty(nz, done);
  a.arith(1, ArithOp::Monus, 1, one);
  a.jump(top);
  a.bind(done);
  a.move(0, 1);
  a.halt();
  Program p = a.finish(2, 1);
  const auto mask = compute_last_use(p);
  // Instruction 1 (select of V1): V1 must be live after (the loop body
  // and the exit both read it).
  EXPECT_EQ(p.code[1].op, Op::Select);
  EXPECT_EQ(mask[1] & 1u, 0u);
  // The Arith reads V1 and immediately overwrites it.  The mask tracks
  // the *register* after the instruction, and the new value is read on
  // the next iteration, so the bit stays clear (the engine handles
  // dst == src aliasing in place without needing the mask).
  EXPECT_EQ(p.code[3].op, Op::Arith);
  EXPECT_EQ(mask[3] & 1u, 0u);
  // The loop-exit Move is V1's true last use.
  EXPECT_EQ(p.code[5].op, Op::Move);
  EXPECT_EQ(mask[5] & 1u, 1u);
}

TEST(LastUse, CompiledProgramsArriveAnnotated) {
  auto f = L::lam(NSeq, [](L::TermRef x) {
    return L::apply(L::map_f(L::lam(N, [](L::TermRef v) {
                      return L::mul(v, L::nat(3));
                    })),
                    x);
  });
  for (auto level : {OptLevel::O0, OptLevel::O1, OptLevel::O2}) {
    auto p = sa::compile_nsc(f, level);
    EXPECT_EQ(p.last_use.size(), p.code.size());
  }
}

TEST(LastUse, PassManagerDropsStaleAnnotation) {
  Assembler a;
  a.reserve_regs(1);
  auto v1 = a.reg(), v2 = a.reg();
  a.move(v1, 0);
  a.move(v2, v1);
  a.move(0, v2);
  a.halt();
  Program p = a.finish(1, 1);
  annotate_last_use(p);
  ASSERT_EQ(p.last_use.size(), p.code.size());
  optimize(p);  // rewrites the code: annotation must not survive stale
  EXPECT_TRUE(p.last_use.empty() || p.last_use.size() == p.code.size());
  EXPECT_NO_THROW(verify(p));
}

TEST(Verify, RejectsMismatchedLastUse) {
  Assembler a;
  auto r = a.reg();
  a.load_const(r, 7);
  a.halt();
  Program p = a.finish(0, 1);
  p.last_use.assign(1, 0);  // program has 2 instructions
  EXPECT_THROW(verify(p), MachineError);
}

TEST(Passes, ManagerReportsStats) {
  Assembler a;
  a.reserve_regs(1);
  auto v1 = a.reg(), v2 = a.reg();
  a.move(v1, 0);
  a.move(v2, v1);
  a.move(0, v2);
  a.halt();
  Program p = a.finish(1, 1);
  PipelineStats stats = optimize(p);
  EXPECT_EQ(stats.instrs_before, 4u);
  EXPECT_LT(stats.instrs_after, stats.instrs_before);
  EXPECT_GE(stats.rounds, 1u);
  ASSERT_FALSE(stats.passes.empty());
  EXPECT_FALSE(stats.show().empty());
  bool any_applied = false;
  for (const auto& ps : stats.passes) any_applied |= ps.applications > 0;
  EXPECT_TRUE(any_applied);
}

TEST(Passes, O0LeavesTheProgramAlone) {
  auto f = L::lam(N, [](L::TermRef x) { return L::add(x, L::nat(1)); });
  auto p0 = sa::compile_nsc(f, OptLevel::O0);
  auto p0_again = sa::compile_nsc(f, OptLevel::O0);
  EXPECT_EQ(p0.code.size(), p0_again.code.size());
  auto p2 = sa::compile_nsc(f, OptLevel::O2);
  EXPECT_LT(p2.code.size(), p0.code.size());
}

// ---------------------------------------------------------------------------
// differential harness: O0 vs O1 vs O2 on random well-typed inputs
// ---------------------------------------------------------------------------

struct Outcome {
  bool trapped = false;
  ValueRef value;
  Cost cost;
};

Outcome run_one(const Program& p, const TypeRef& dom, const TypeRef& cod,
                const ValueRef& arg) {
  Outcome o;
  try {
    auto r = sa::run_compiled(p, dom, cod, arg);
    o.value = r.value;
    o.cost = r.cost;
  } catch (const MachineError&) {
    o.trapped = true;
  }
  return o;
}

/// Compile `f` at every opt level and check, on random inputs of the
/// domain type, that the three programs agree (value or trap) and that
/// optimization never increased the executed T or W.
void differential(const L::FuncRef& f, std::uint64_t seed, int trials,
                  const RandomValueConfig& cfg = {}) {
  auto [dom, cod] = L::check_func(f);
  auto p0 = sa::compile_nsc(f, OptLevel::O0);
  auto p1 = sa::compile_nsc(f, OptLevel::O1);
  auto p2 = sa::compile_nsc(f, OptLevel::O2);
  EXPECT_LE(p1.code.size(), p0.code.size());
  EXPECT_LE(p2.code.size(), p1.code.size());
  SplitMix64 rng(seed);
  for (int t = 0; t < trials; ++t) {
    auto arg = random_value(*dom, rng, cfg);
    auto o0 = run_one(p0, dom, cod, arg);
    auto o1 = run_one(p1, dom, cod, arg);
    auto o2 = run_one(p2, dom, cod, arg);
    ASSERT_EQ(o0.trapped, o2.trapped) << "arg=" << arg->show();
    ASSERT_EQ(o0.trapped, o1.trapped) << "arg=" << arg->show();
    if (o0.trapped) continue;
    EXPECT_TRUE(Value::equal(o0.value, o1.value))
        << "O1 disagrees; arg=" << arg->show() << "\nwant=" << o0.value->show()
        << "\ngot=" << o1.value->show();
    EXPECT_TRUE(Value::equal(o0.value, o2.value))
        << "O2 disagrees; arg=" << arg->show() << "\nwant=" << o0.value->show()
        << "\ngot=" << o2.value->show();
    EXPECT_LE(o1.cost.time, o0.cost.time) << "arg=" << arg->show();
    EXPECT_LE(o1.cost.work, o0.cost.work) << "arg=" << arg->show();
    EXPECT_LE(o2.cost.time, o0.cost.time) << "arg=" << arg->show();
    EXPECT_LE(o2.cost.work, o0.cost.work) << "arg=" << arg->show();
  }
}

TEST(Differential, ScalarArithmetic) {
  differential(L::lam(N,
                      [](L::TermRef x) {
                        return L::add(L::mul(x, x),
                                      L::monus_t(L::nat(10), x));
                      }),
               11, 20);
}

TEST(Differential, CaseAndBooleans) {
  differential(L::lam(Type::prod(N, N),
                      [](L::TermRef z) {
                        return L::ite(L::leq(L::proj1(z), L::proj2(z)),
                                      L::proj2(z), L::proj1(z));
                      }),
               12, 20);
}

TEST(Differential, SumInjections) {
  differential(L::lam(N,
                      [](L::TermRef x) {
                        return L::ite(L::lt(x, L::nat(5)), L::inj1(x, NSeq),
                                      L::inj2(L::singleton(x), N));
                      }),
               13, 20);
}

TEST(Differential, FilterThenMap) {
  auto keep = L::lam(N, [](L::TermRef v) { return L::lt(v, L::nat(50)); });
  auto dbl = L::lam(N, [](L::TermRef v) { return L::mul(v, L::nat(2)); });
  differential(L::lam(NSeq,
                      [&](L::TermRef x) {
                        return L::apply(L::map_f(dbl),
                                        L::apply(P::filter(keep, N), x));
                      }),
               14, 20);
}

TEST(Differential, NestedMaps) {
  auto inc = L::lam(N, [](L::TermRef v) { return L::mul(v, L::nat(3)); });
  differential(L::lam(Type::seq(NSeq),
                      [&](L::TermRef x) {
                        return L::apply(L::map_f(L::map_f(inc)), x);
                      }),
               15, 20);
}

TEST(Differential, SequencePrimitives) {
  differential(L::lam(NSeq,
                      [](L::TermRef x) {
                        return L::append(
                            L::enumerate(x),
                            L::flatten(L::split(
                                x, L::singleton(L::length(x)))));
                      }),
               16, 20);
}

TEST(Differential, IndexMayTrap) {
  // Random indices are frequently out of range: both programs must trap
  // on exactly the same inputs.
  differential(P::index(N), 17, 30);
}

TEST(Differential, SumNats) { differential(P::sum_nats(), 18, 10); }

TEST(Differential, DirectMerge) { differential(P::direct_merge(), 19, 8); }

TEST(Differential, MappedWhile) {
  auto pred = L::lam(N, [](L::TermRef v) { return L::lt(L::nat(0), v); });
  auto step =
      L::lam(N, [](L::TermRef v) { return L::monus_t(v, L::nat(3)); });
  differential(L::lam(NSeq,
                      [&](L::TermRef x) {
                        return L::apply(
                            L::map_f(L::lam(N,
                                            [&](L::TermRef v) {
                                              return L::apply(
                                                  L::while_f(pred, step), v);
                                            })),
                            x);
                      }),
               20, 12);
}

TEST(Differential, ZipMismatchTrapsIdentically) {
  differential(L::lam(Type::prod(NSeq, NSeq),
                      [](L::TermRef z) {
                        return L::zip(L::proj1(z), L::proj2(z));
                      }),
               21, 30);
}

TEST(Differential, WhileWithInvariantComponent) {
  // while i < bound: (bound, i+1) -- the bound component passes through
  // the step untouched, so after copy propagation it is loop-invariant
  // and the predicate's masks over it are LICM fodder.  The usual
  // contract must hold: identical outputs, non-increasing executed T/W.
  const TypeRef PT = Type::prod(N, N);
  auto pred =
      L::lam(PT, [](L::TermRef s) { return L::lt(L::proj2(s), L::proj1(s)); });
  auto step = L::lam(PT, [](L::TermRef s) {
    return L::pair(L::proj1(s), L::add(L::proj2(s), L::nat(1)));
  });
  differential(L::lam(PT,
                      [&](L::TermRef s) {
                        return L::apply(L::while_f(pred, step), s);
                      }),
               22, 10);
}

// ---------------------------------------------------------------------------
// hoisting regressions on compiled whiles
// ---------------------------------------------------------------------------

TEST(Regression, OnesLikeMaskHoistedOutOfCompiledStagedWhile) {
  // while not(bound == i): (bound, i+1), compiled under the staged
  // schedule.  The predicate's eq_bits derives ones_like(bound) -- a
  // LoadConst + Length + bm-route broadcast -- from the invariant bound
  // component every iteration; after the loop-aware pipeline the mask
  // must execute a constant number of times, independent of the
  // iteration count.
  const TypeRef PT = Type::prod(N, N);
  auto pred = L::lam(
      PT, [](L::TermRef s) { return L::neq(L::proj1(s), L::proj2(s)); });
  auto step = L::lam(PT, [](L::TermRef s) {
    return L::pair(L::proj1(s), L::add(L::proj2(s), L::nat(1)));
  });
  auto f = L::lam(PT, [&](L::TermRef s) {
    return L::apply(L::while_f(pred, step), s);
  });
  auto [dom, cod] = L::check_func(f);
  auto p0 = sa::compile_nsc(f, OptLevel::O0, WhileSchedule::staged({1, 2}));
  auto p2 = sa::compile_nsc(f, OptLevel::O2, WhileSchedule::staged({1, 2}));

  bvram::RunConfig cfg;
  cfg.record_trace = true;
  auto run_k = [&](const Program& p, std::uint64_t k) {
    auto inputs = sa::encode_value(
        Value::pair(Value::nat(k), Value::nat(0)), dom);
    return bvram::run(p, inputs, cfg);
  };
  const auto o0_3 = run_k(p0, 3), o0_7 = run_k(p0, 7);
  const auto o2_3 = run_k(p2, 3), o2_7 = run_k(p2, 7);
  EXPECT_EQ(o2_3.outputs, o0_3.outputs);
  EXPECT_EQ(o2_7.outputs, o0_7.outputs);
  // Naive emission re-derives the mask per iteration...
  EXPECT_GT(executed_ops(o0_7, Op::BmRoute), executed_ops(o0_3, Op::BmRoute));
  // ...the optimized program does not: every route left in the loop body
  // was hoisted, so the executed count is iteration-independent.
  EXPECT_EQ(executed_ops(o2_7, Op::BmRoute), executed_ops(o2_3, Op::BmRoute));
  EXPECT_LT(executed_ops(o2_7, Op::BmRoute), executed_ops(o0_7, Op::BmRoute));
}

TEST(Regression, MappedStagedWhileHoistsPredicateConstants) {
  // map(while 0 < v: v - 1) under the staged schedule: the rotated
  // buffered-while loop makes the predicate block the loop header, so
  // its per-iteration LoadConsts hoist.  The per-iteration LoadConst
  // cost at O2 must be strictly below O0's.
  auto pred = L::lam(N, [](L::TermRef v) { return L::lt(L::nat(0), v); });
  auto step =
      L::lam(N, [](L::TermRef v) { return L::monus_t(v, L::nat(1)); });
  auto f = L::lam(NSeq, [&](L::TermRef x) {
    return L::apply(L::map_f(L::lam(N,
                                    [&](L::TermRef v) {
                                      return L::apply(
                                          L::while_f(pred, step), v);
                                    })),
                    x);
  });
  auto [dom, cod] = L::check_func(f);
  auto p0 = sa::compile_nsc(f, OptLevel::O0, WhileSchedule::staged({1, 2}));
  auto p2 = sa::compile_nsc(f, OptLevel::O2, WhileSchedule::staged({1, 2}));

  bvram::RunConfig cfg;
  cfg.record_trace = true;
  auto run_k = [&](const Program& p, std::uint64_t k) {
    auto inputs = sa::encode_value(Value::nat_seq({k}), dom);
    return bvram::run(p, inputs, cfg);
  };
  // One element finishing after k steps: k extra iterations between the
  // two runs isolate the per-iteration cost.
  const auto o0_3 = run_k(p0, 3), o0_9 = run_k(p0, 9);
  const auto o2_3 = run_k(p2, 3), o2_9 = run_k(p2, 9);
  EXPECT_EQ(o2_3.outputs, o0_3.outputs);
  EXPECT_EQ(o2_9.outputs, o0_9.outputs);
  const std::size_t per_iter_o0 =
      executed_ops(o0_9, Op::LoadConst) - executed_ops(o0_3, Op::LoadConst);
  const std::size_t per_iter_o2 =
      executed_ops(o2_9, Op::LoadConst) - executed_ops(o2_3, Op::LoadConst);
  EXPECT_LT(per_iter_o2, per_iter_o0);
}

// ---------------------------------------------------------------------------
// acceptance: static instruction-count reduction on the example programs
// ---------------------------------------------------------------------------

double reduction(const L::FuncRef& f) {
  auto p0 = sa::compile_nsc(f, OptLevel::O0);
  auto p2 = sa::compile_nsc(f, OptLevel::O2);
  return 1.0 - static_cast<double>(p2.code.size()) /
                   static_cast<double>(p0.code.size());
}

TEST(Reduction, QuickstartPipelineAtLeast20Percent) {
  // examples/quickstart.cpp's program.
  auto small = L::lam(N, [](L::TermRef v) { return L::lt(v, L::nat(10)); });
  auto square = L::lam(N, [](L::TermRef v) { return L::mul(v, v); });
  auto f = L::lam(NSeq, [&](L::TermRef xs) {
    L::TermRef kept = L::apply(P::filter(small, N), xs);
    return L::let_in(NSeq, kept, [&](L::TermRef k) {
      return L::zip(L::enumerate(k), L::apply(L::map_f(square), k));
    });
  });
  EXPECT_GE(reduction(f), 0.20);
}

TEST(Reduction, DivideConquerAtLeast20Percent) {
  // examples/divide_conquer.cpp's Theorem 4.2 translation.
  auto p = L::lam(NSeq, [](L::TermRef c) {
    return L::leq(L::length(c), L::nat(1));
  });
  auto s = L::lam(NSeq, [](L::TermRef c) {
    return L::ite(L::eq(L::length(c), L::nat(0)), L::nat(0), L::get(c));
  });
  auto halve = [&](bool second) {
    return L::lam(NSeq, [&, second](L::TermRef c) {
      return L::let_in(N, L::length(c), [&](L::TermRef n) {
        L::TermRef half = L::div_t(n, L::nat(2));
        L::TermRef sizes = L::append(L::singleton(L::monus_t(n, half)),
                                     L::singleton(half));
        auto blocks = L::split(c, sizes);
        return second ? L::apply(P::last(NSeq), blocks)
                      : L::apply(P::first(NSeq), blocks);
      });
    });
  };
  auto c2 = L::lam(Type::prod(N, N), [](L::TermRef q) {
    return L::add(L::proj1(q), L::proj2(q));
  });
  auto g = L::schema_g(NSeq, N, p, s, halve(false), halve(true), c2);
  EXPECT_GE(reduction(L::translate_maprec(g)), 0.20);
}

}  // namespace
}  // namespace nsc::opt
