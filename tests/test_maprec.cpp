// Tests for map-recursion (Definition 4.1) and the Theorem 4.2 translation,
// both non-staged and staged.  Correctness is checked against the direct
// recursive evaluator on several recursion shapes (balanced, skewed, unary),
// and the complexity claims are probed: T preserved up to constants, W
// preserved for balanced trees.
#include <gtest/gtest.h>

#include "nsc/build.hpp"
#include "nsc/eval.hpp"
#include "nsc/maprec.hpp"
#include "nsc/prelude.hpp"
#include "nsc/typecheck.hpp"
#include "support/error.hpp"

namespace nsc::lang {
namespace {

using nsc::Type;
using nsc::Value;

const TypeRef N = Type::nat();
const TypeRef NSeq = Type::seq(Type::nat());

/// sum over [lo, hi) by divide and conquer on ranges (schema g):
///   f((lo, hi)) = hi - lo <= 1 ? lo : f(lo, mid) + f(mid, hi).
MapRec range_sum() {
  const TypeRef range = Type::prod(N, N);
  auto p = lam(range, [](TermRef x) {
    return leq(monus_t(proj2(x), proj1(x)), nat(1));
  });
  auto s = lam(range, [](TermRef x) {
    return ite(eq(monus_t(proj2(x), proj1(x)), nat(0)), nat(0), proj1(x));
  });
  auto d1 = lam(range, [](TermRef x) {
    return pair(proj1(x),
                div_t(add(proj1(x), proj2(x)), nat(2)));
  });
  auto d2 = lam(range, [](TermRef x) {
    return pair(div_t(add(proj1(x), proj2(x)), nat(2)), proj2(x));
  });
  auto c2 = lam(Type::prod(N, N),
                [](TermRef q) { return add(proj1(q), proj2(q)); });
  return schema_g(range, N, p, s, d1, d2, c2);
}

/// Skewed (caterpillar) recursion: f(n) peels one unit at a time:
///   f(n) = n <= 1 ? n : c2(f(1), f(n-1))  with c2 = +.
MapRec skewed_sum() {
  auto p = lam(N, [](TermRef x) { return leq(x, nat(1)); });
  auto s = prelude::identity(N);
  auto d1 = lam(N, [](TermRef) { return nat(1); });
  auto d2 = lam(N, [](TermRef x) { return monus_t(x, nat(1)); });
  auto c2 =
      lam(Type::prod(N, N), [](TermRef q) { return add(proj1(q), proj2(q)); });
  return schema_g(N, N, p, s, d1, d2, c2);
}

/// Unary recursion (schema h): collatz-ish halving count is awkward without
/// an accumulator, so use: f(n) = n <= 1 ? 0 : 1 + f(n / 2).
MapRec halving_depth() {
  auto p = lam(N, [](TermRef x) { return leq(x, nat(1)); });
  auto s = lam(N, [](TermRef) { return nat(0); });
  auto d1 = lam(N, [](TermRef x) { return div_t(x, nat(2)); });
  auto c1 = lam(N, [](TermRef r) { return add(r, nat(1)); });
  return schema_h(N, N, p, s, d1, c1);
}

TEST(MapRecEval, RangeSum) {
  auto f = range_sum();
  // sum 0..n-1 = n(n-1)/2
  for (std::uint64_t n : {1ull, 2ull, 5ull, 16ull, 33ull}) {
    auto r = eval_maprec(f, Value::pair(Value::nat(0), Value::nat(n)));
    EXPECT_EQ(r.value->as_nat(), n * (n - 1) / 2) << n;
  }
}

TEST(MapRecEval, SkewedSum) {
  auto f = skewed_sum();
  for (std::uint64_t n : {1ull, 2ull, 7ull, 20ull}) {
    EXPECT_EQ(eval_maprec(f, Value::nat(n)).value->as_nat(), n) << n;
  }
}

TEST(MapRecEval, HalvingDepth) {
  auto f = halving_depth();
  EXPECT_EQ(eval_maprec(f, Value::nat(1)).value->as_nat(), 0u);
  EXPECT_EQ(eval_maprec(f, Value::nat(2)).value->as_nat(), 1u);
  EXPECT_EQ(eval_maprec(f, Value::nat(64)).value->as_nat(), 6u);
  EXPECT_EQ(eval_maprec(f, Value::nat(100)).value->as_nat(), 6u);
}

TEST(MapRecEval, ArityViolationIsError) {
  auto f = range_sum();
  f.d = lam(f.dom, [&](TermRef x) {
    return append(singleton(x), append(singleton(x), singleton(x)));
  });
  EXPECT_THROW(eval_maprec(f, Value::pair(Value::nat(0), Value::nat(8))),
               EvalError);
}

TEST(MapRecEval, ParallelTimeIsTreeDepth) {
  auto f = range_sum();
  auto t16 = eval_maprec(f, Value::pair(Value::nat(0), Value::nat(16))).cost;
  auto t256 =
      eval_maprec(f, Value::pair(Value::nat(0), Value::nat(256))).cost;
  // Balanced tree: depth log n, so time grows ~2x for n 16 -> 256,
  // while work grows ~16x.
  EXPECT_LT(t256.time, t16.time * 4);
  EXPECT_GT(t256.work, t16.work * 8);
}

// ---------------------------------------------------------------------------
// Theorem 4.2 translation
// ---------------------------------------------------------------------------

class Thm42 : public ::testing::TestWithParam<bool> {};

TEST_P(Thm42, RangeSumAgrees) {
  auto f = range_sum();
  MapRecTranslateOptions opts;
  opts.staged = GetParam();
  auto g = translate_maprec(f, opts);
  check_func(g);
  for (std::uint64_t n : {1ull, 2ull, 3ull, 8ull, 13ull, 32ull}) {
    auto arg = Value::pair(Value::nat(0), Value::nat(n));
    auto want = eval_maprec(f, arg).value;
    auto got = apply_fn(g, arg).value;
    EXPECT_TRUE(Value::equal(want, got))
        << "n=" << n << " want=" << want->show() << " got=" << got->show();
  }
}

TEST_P(Thm42, SkewedAgrees) {
  auto f = skewed_sum();
  MapRecTranslateOptions opts;
  opts.staged = GetParam();
  auto g = translate_maprec(f, opts);
  for (std::uint64_t n : {1ull, 2ull, 5ull, 12ull}) {
    auto got = apply_fn(g, Value::nat(n)).value;
    EXPECT_EQ(got->as_nat(), n) << n;
  }
}

TEST_P(Thm42, UnaryAgrees) {
  auto f = halving_depth();
  MapRecTranslateOptions opts;
  opts.staged = GetParam();
  auto g = translate_maprec(f, opts);
  for (std::uint64_t n : {1ull, 2ull, 9ull, 100ull}) {
    auto want = eval_maprec(f, Value::nat(n)).value;
    auto got = apply_fn(g, Value::nat(n)).value;
    EXPECT_TRUE(Value::equal(want, got)) << n;
  }
}

INSTANTIATE_TEST_SUITE_P(Both, Thm42, ::testing::Values(false, true),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "staged" : "plain";
                         });

TEST(Thm42Complexity, TimePreservedOnBalanced) {
  auto f = range_sum();
  auto g = translate_maprec(f);
  auto direct16 =
      eval_maprec(f, Value::pair(Value::nat(0), Value::nat(16))).cost;
  auto direct256 =
      eval_maprec(f, Value::pair(Value::nat(0), Value::nat(256))).cost;
  auto trans16 =
      apply_fn(g, Value::pair(Value::nat(0), Value::nat(16))).cost;
  auto trans256 =
      apply_fn(g, Value::pair(Value::nat(0), Value::nat(256))).cost;
  // T' = O(T): the ratio T'(n)/T(n) stays bounded as n grows.
  const double r16 =
      static_cast<double>(trans16.time) / static_cast<double>(direct16.time);
  const double r256 = static_cast<double>(trans256.time) /
                      static_cast<double>(direct256.time);
  EXPECT_LT(r256, r16 * 3.0);
}

TEST(Thm42Complexity, WorkPreservedOnBalanced) {
  auto f = range_sum();
  auto g = translate_maprec(f);
  auto d64 = eval_maprec(f, Value::pair(Value::nat(0), Value::nat(64))).cost;
  auto d1024 =
      eval_maprec(f, Value::pair(Value::nat(0), Value::nat(1024))).cost;
  auto t64 = apply_fn(g, Value::pair(Value::nat(0), Value::nat(64))).cost;
  auto t1024 = apply_fn(g, Value::pair(Value::nat(0), Value::nat(1024))).cost;
  // W' = O(W) on balanced trees: the ratio stays bounded.
  const double r64 =
      static_cast<double>(t64.work) / static_cast<double>(d64.work);
  const double r1024 =
      static_cast<double>(t1024.work) / static_cast<double>(d1024.work);
  EXPECT_LT(r1024, r64 * 3.0);
}

TEST(Thm42Complexity, StagedBeatsPlainOnSkewedTrees) {
  // The caterpillar recursion finishes one big leaf early each level; the
  // non-staged translation re-touches finished leaves at every later round.
  auto f = skewed_sum();
  auto plain = translate_maprec(f);
  MapRecTranslateOptions so;
  so.staged = true;
  auto staged = translate_maprec(f, so);
  const auto wp = apply_fn(plain, Value::nat(48)).cost.work;
  const auto ws = apply_fn(staged, Value::nat(48)).cost.work;
  // The staged schedule should not be (much) worse, and for deep skew
  // strictly better; allow slack for constants at this small size.
  EXPECT_LT(ws, wp * 2);
}

TEST(Thm42, TailRecursionTranslation) {
  // f(n) = n < 2 ? n : f(n - 2)  == n mod 2 for the while translation.
  auto p = lam(N, [](TermRef x) { return lt(x, nat(2)); });
  auto s = prelude::identity(N);
  auto d = lam(N, [](TermRef x) { return monus_t(x, nat(2)); });
  auto g = translate_tail_recursion(N, p, s, d);
  check_func(g);
  for (std::uint64_t n : {0ull, 1ull, 2ull, 9ull, 100ull}) {
    EXPECT_EQ(apply_fn(g, Value::nat(n)).value->as_nat(), n % 2) << n;
  }
}

TEST(Thm42, TranslatedFunctionTypechecks) {
  auto g = translate_maprec(range_sum());
  auto [dom, cod] = check_func(g);
  EXPECT_EQ(dom->show(), "(N x N)");
  EXPECT_EQ(cod->show(), "N");
  MapRecTranslateOptions so;
  so.staged = true;
  auto gs = translate_maprec(range_sum(), so);
  auto [sdom, scod] = check_func(gs);
  EXPECT_EQ(sdom->show(), "(N x N)");
  EXPECT_EQ(scod->show(), "N");
}

}  // namespace
}  // namespace nsc::lang
