// Corpus differential execution: every tests/corpus/*.nsc program is
// parsed, resolved, evaluated with the NSC evaluator (Definition 3.1
// semantics) on every `input` declaration, and compiled + executed on the
// BVRAM at every OptLevel x WhileSchedule -- O0/O1/O2 x naive/eager/
// staged(1/2) -- with bit-for-bit agreement required on values and on
// traps (the Omega programs must trap identically everywhere).  This is
// the acceptance gate that turns "find a workload" into "add a .nsc
// file": anything dropped into tests/corpus/ is automatically held to
// the full pipeline contract.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "front/front.hpp"
#include "nsc/eval.hpp"
#include "object/value.hpp"
#include "opt/opt.hpp"
#include "sa/compile.hpp"
#include "support/error.hpp"
#include "corpus_files.hpp"

namespace nsc {
namespace {

namespace F = nsc::front;
namespace L = nsc::lang;

using nsc::testing::corpus_files;

struct Outcome {
  bool trapped = false;
  ValueRef value;
};

Outcome eval_outcome(const L::FuncRef& f, const ValueRef& arg) {
  Outcome o;
  try {
    o.value = L::apply_fn(f, arg).value;
  } catch (const Error&) {
    o.trapped = true;
  }
  return o;
}

Outcome compiled_outcome(const bvram::Program& p, const TypeRef& dom,
                         const TypeRef& cod, const ValueRef& arg) {
  Outcome o;
  try {
    o.value = sa::run_compiled(p, dom, cod, arg).value;
  } catch (const Error&) {
    o.trapped = true;
  }
  return o;
}

TEST(Corpus, MeetsTheAcceptanceFloor) {
  const auto files = corpus_files();
  EXPECT_GE(files.size(), 10u);
  std::size_t inputs = 0, traps = 0;
  for (const auto& path : files) {
    const F::SourceFile src = F::load_file(path);
    const F::ResolvedModule mod = F::compile_file(src);
    const F::ResolvedFn& main_fn = mod.main();
    EXPECT_GE(mod.inputs.size(), 2u) << path << ": too few inputs";
    inputs += mod.inputs.size();
    for (const auto& in : mod.inputs) {
      try {
        const auto r = L::eval(in.term);
        if (eval_outcome(main_fn.fn, r.value).trapped) ++traps;
      } catch (const Error&) {
        ++traps;
      }
    }
  }
  EXPECT_GE(inputs, 30u);
  EXPECT_GE(traps, 1u) << "the corpus should include trapping runs";
}

TEST(Corpus, DifferentialAcrossOptLevelsAndSchedules) {
  const opt::OptLevel levels[] = {opt::OptLevel::O0, opt::OptLevel::O1,
                                  opt::OptLevel::O2};
  const struct {
    const char* name;
    opt::WhileSchedule sched;
  } scheds[] = {
      {"naive", opt::WhileSchedule::naive()},
      {"eager", opt::WhileSchedule::eager()},
      {"staged(1/2)", opt::WhileSchedule::staged({1, 2})},
  };
  const auto files = corpus_files();
  ASSERT_GE(files.size(), 10u);
  for (const auto& path : files) {
    SCOPED_TRACE(path);
    const F::SourceFile src = F::load_file(path);
    const F::ResolvedModule mod = F::compile_file(src);
    const F::ResolvedFn& main_fn = mod.main();
    ASSERT_FALSE(mod.inputs.empty()) << path << " has no input declarations";
    std::vector<ValueRef> args;
    for (const auto& in : mod.inputs) args.push_back(L::eval(in.term).value);
    std::vector<Outcome> expected;
    for (const auto& a : args) expected.push_back(eval_outcome(main_fn.fn, a));
    for (const auto level : levels) {
      for (const auto& s : scheds) {
        SCOPED_TRACE(std::string("opt ") + std::to_string(int(level)) +
                     " sched " + s.name);
        bvram::Program program;
        ASSERT_NO_THROW(program = sa::compile_nsc(main_fn.fn, level, s.sched));
        for (std::size_t i = 0; i < args.size(); ++i) {
          SCOPED_TRACE("input " + std::to_string(i));
          const Outcome got = compiled_outcome(program, main_fn.dom,
                                               main_fn.cod, args[i]);
          ASSERT_EQ(expected[i].trapped, got.trapped);
          if (!expected[i].trapped) {
            EXPECT_TRUE(Value::equal(expected[i].value, got.value))
                << "eval: " << expected[i].value->show()
                << "\ncompiled: " << got.value->show();
          }
        }
      }
    }
  }
}

}  // namespace
}  // namespace nsc
