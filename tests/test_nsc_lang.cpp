// Tests for the NSC core language: typechecker (appendix A) and the
// natural-semantics evaluator with Definition 3.1 cost accounting
// (appendix B).
#include <gtest/gtest.h>

#include "nsc/build.hpp"
#include "nsc/eval.hpp"
#include "nsc/typecheck.hpp"
#include "support/error.hpp"

namespace nsc::lang {
namespace {

using nsc::Type;
using nsc::TypeError;
using nsc::Value;

TEST(TypeCheck, Constants) {
  EXPECT_TRUE(Type::equal(check_term(nat(5)), Type::nat()));
  EXPECT_TRUE(Type::equal(check_term(unit_v()), Type::unit()));
  EXPECT_TRUE(Type::equal(check_term(tru()), Type::boolean()));
  EXPECT_TRUE(Type::equal(check_term(omega(Type::nat())), Type::nat()));
}

TEST(TypeCheck, UnboundVariableRejected) {
  EXPECT_THROW(check_term(var("x")), TypeError);
  TypeEnv env{{"x", Type::nat()}};
  EXPECT_TRUE(Type::equal(check_term(var("x"), env), Type::nat()));
}

TEST(TypeCheck, ArithRequiresNat) {
  EXPECT_TRUE(Type::equal(check_term(add(nat(1), nat(2))), Type::nat()));
  EXPECT_THROW(check_term(add(nat(1), unit_v())), TypeError);
  EXPECT_THROW(check_term(eq(unit_v(), nat(1))), TypeError);
}

TEST(TypeCheck, ProductsAndSums) {
  auto p = pair(nat(1), tru());
  EXPECT_EQ(check_term(p)->show(), "(N x B)");
  EXPECT_TRUE(Type::equal(check_term(proj1(p)), Type::nat()));
  EXPECT_TRUE(Type::equal(check_term(proj2(p)), Type::boolean()));
  EXPECT_THROW(check_term(proj1(nat(3))), TypeError);

  auto s = inj1(nat(1), Type::unit());
  EXPECT_EQ(check_term(s)->show(), "(N + unit)");
}

TEST(TypeCheck, CaseBranchesMustAgree) {
  auto scrut = inj1(nat(1), Type::unit());
  auto good = case_of(scrut, "a", var("a"), "b", nat(0));
  EXPECT_TRUE(Type::equal(check_term(good), Type::nat()));
  auto bad = case_of(scrut, "a", var("a"), "b", unit_v());
  EXPECT_THROW(check_term(bad), TypeError);
}

TEST(TypeCheck, SequenceOps) {
  auto xs = nat_list({1, 2, 3});
  EXPECT_EQ(check_term(xs)->show(), "[N]");
  EXPECT_TRUE(Type::equal(check_term(length(xs)), Type::nat()));
  EXPECT_EQ(check_term(zip(xs, xs))->show(), "[(N x N)]");
  EXPECT_EQ(check_term(split(xs, xs))->show(), "[[N]]");
  EXPECT_EQ(check_term(flatten(split(xs, xs)))->show(), "[N]");
  EXPECT_THROW(check_term(flatten(xs)), TypeError);  // not nested
  EXPECT_THROW(check_term(append(xs, singleton(unit_v()))), TypeError);
}

TEST(TypeCheck, Functions) {
  auto f = lambda("x", Type::nat(), add(var("x"), nat(1)));
  auto [dom, cod] = check_func(f);
  EXPECT_TRUE(Type::equal(dom, Type::nat()));
  EXPECT_TRUE(Type::equal(cod, Type::nat()));

  auto m = map_f(f);
  auto [mdom, mcod] = check_func(m);
  EXPECT_EQ(mdom->show(), "[N]");
  EXPECT_EQ(mcod->show(), "[N]");

  auto p = lambda("x", Type::nat(), lt(var("x"), nat(10)));
  auto w = while_f(p, f);
  auto [wdom, wcod] = check_func(w);
  EXPECT_TRUE(Type::equal(wdom, wcod));

  // while with non-boolean predicate is rejected.
  auto notp = lambda("x", Type::nat(), var("x"));
  EXPECT_THROW(check_func(while_f(notp, f)), TypeError);
  // while with mismatched body type is rejected.
  auto tounit = lambda("x", Type::nat(), unit_v());
  EXPECT_THROW(check_func(while_f(p, tounit)), TypeError);
}

TEST(TypeCheck, NoHigherOrderByConstruction) {
  // Function types are not types: apply expects dom match.
  auto f = lambda("x", Type::nat(), var("x"));
  EXPECT_THROW(check_term(apply(f, unit_v())), TypeError);
}

// --------------------------------------------------------------------------
// Evaluation
// --------------------------------------------------------------------------

ValueRef ev(const TermRef& m) { return eval(m).value; }

TEST(Eval, Arithmetic) {
  EXPECT_EQ(ev(add(nat(2), nat(3)))->as_nat(), 5u);
  EXPECT_EQ(ev(monus_t(nat(2), nat(3)))->as_nat(), 0u);  // monus
  EXPECT_EQ(ev(monus_t(nat(7), nat(3)))->as_nat(), 4u);
  EXPECT_EQ(ev(mul(nat(4), nat(5)))->as_nat(), 20u);
  EXPECT_EQ(ev(div_t(nat(17), nat(5)))->as_nat(), 3u);
  EXPECT_EQ(ev(rsh(nat(40), nat(3)))->as_nat(), 5u);
  EXPECT_EQ(ev(log2_t(nat(1024)))->as_nat(), 10u);
  EXPECT_THROW(ev(div_t(nat(1), nat(0))), EvalError);
}

TEST(Eval, Comparisons) {
  EXPECT_TRUE(ev(leq(nat(3), nat(3)))->as_bool());
  EXPECT_FALSE(ev(leq(nat(4), nat(3)))->as_bool());
  EXPECT_TRUE(ev(lt(nat(2), nat(3)))->as_bool());
  EXPECT_FALSE(ev(lt(nat(3), nat(3)))->as_bool());
  EXPECT_TRUE(ev(neq(nat(1), nat(2)))->as_bool());
  EXPECT_EQ(ev(mod_t(nat(17), nat(5)))->as_nat(), 2u);
}

TEST(Eval, PairsAndCase) {
  EXPECT_EQ(ev(proj1(pair(nat(1), nat(2))))->as_nat(), 1u);
  EXPECT_EQ(ev(proj2(pair(nat(1), nat(2))))->as_nat(), 2u);
  auto c = case_of(inj2(nat(9), Type::nat()), "a", var("a"), "b",
                   add(var("b"), nat(1)));
  EXPECT_EQ(ev(c)->as_nat(), 10u);
  EXPECT_EQ(ev(ite(tru(), nat(1), nat(2)))->as_nat(), 1u);
  EXPECT_EQ(ev(ite(fls(), nat(1), nat(2)))->as_nat(), 2u);
}

TEST(Eval, BooleanConnectives) {
  EXPECT_TRUE(ev(land(tru(), tru()))->as_bool());
  EXPECT_FALSE(ev(land(tru(), fls()))->as_bool());
  EXPECT_TRUE(ev(lor(fls(), tru()))->as_bool());
  EXPECT_FALSE(ev(lnot(tru()))->as_bool());
}

TEST(Eval, SequencePrimitives) {
  auto xs = nat_list({3, 1, 4, 1, 5});
  EXPECT_EQ(ev(length(xs))->as_nat(), 5u);
  EXPECT_EQ(ev(append(nat_list({1}), nat_list({2, 3})))->as_nat_vector(),
            (std::vector<std::uint64_t>{1, 2, 3}));
  EXPECT_EQ(ev(enumerate(xs))->as_nat_vector(),
            (std::vector<std::uint64_t>{0, 1, 2, 3, 4}));
  EXPECT_EQ(ev(get(singleton(nat(42))))->as_nat(), 42u);
  EXPECT_THROW(ev(get(nat_list({1, 2}))), EvalError);
  EXPECT_THROW(ev(get(empty(Type::nat()))), EvalError);
}

TEST(Eval, FlattenMatchesPaper) {
  // flatten([x0..]) = x0 @ x1 @ ...
  auto nested = split(nat_list({1, 2, 3, 4}), nat_list({2, 0, 2}));
  EXPECT_EQ(ev(flatten(nested))->as_nat_vector(),
            (std::vector<std::uint64_t>{1, 2, 3, 4}));
}

TEST(Eval, SplitExample) {
  // split([a,b,c,d,e,f], [3,0,1,0,2]) = [[a,b,c],[],[d],[],[e,f]] (section 3)
  auto r = ev(split(nat_list({10, 11, 12, 13, 14, 15}),
                    nat_list({3, 0, 1, 0, 2})));
  ASSERT_EQ(r->length(), 5u);
  EXPECT_EQ(r->elems()[0]->as_nat_vector(),
            (std::vector<std::uint64_t>{10, 11, 12}));
  EXPECT_EQ(r->elems()[1]->length(), 0u);
  EXPECT_EQ(r->elems()[2]->as_nat_vector(), (std::vector<std::uint64_t>{13}));
  EXPECT_EQ(r->elems()[4]->as_nat_vector(),
            (std::vector<std::uint64_t>{14, 15}));
}

TEST(Eval, SplitErrors) {
  EXPECT_THROW(ev(split(nat_list({1, 2}), nat_list({1}))), EvalError);
  EXPECT_THROW(ev(split(nat_list({1, 2}), nat_list({3}))), EvalError);
}

TEST(Eval, ZipErrorsOnLengthMismatch) {
  EXPECT_THROW(ev(zip(nat_list({1}), nat_list({1, 2}))), EvalError);
}

TEST(Eval, OmegaRaises) { EXPECT_THROW(ev(omega(Type::nat())), EvalError); }

TEST(Eval, MapAppliesInParallel) {
  auto inc = lambda("x", Type::nat(), add(var("x"), nat(1)));
  auto r = eval(apply(map_f(inc), nat_list({1, 2, 3})));
  EXPECT_EQ(r.value->as_nat_vector(), (std::vector<std::uint64_t>{2, 3, 4}));
}

TEST(Eval, MapTimeIsMaxNotSum) {
  // Body with data-dependent time: a while loop counting down.
  auto p = lambda("x", Type::nat(), lt(nat(0), var("x")));
  auto f = lambda("x", Type::nat(), monus_t(var("x"), nat(1)));
  auto body = lambda("x", Type::nat(), apply(while_f(p, f), var("x")));
  // One slow element among fast ones: T(map) ~ T(slow), not the sum.
  auto slow = eval(apply(map_f(body), nat_list({64})));
  auto mixed = eval(apply(map_f(body), nat_list({64, 1, 1, 1, 1, 1, 1, 1})));
  EXPECT_LT(mixed.cost.time, slow.cost.time * 2);
  // Work, by contrast, accumulates across elements.
  auto one = eval(apply(map_f(body), nat_list({64})));
  auto eight = eval(apply(map_f(body),
                          nat_list({64, 64, 64, 64, 64, 64, 64, 64})));
  EXPECT_GT(eight.cost.work, one.cost.work * 4);
}

TEST(Eval, WhileRunsToFixpoint) {
  auto p = lambda("x", Type::nat(), lt(var("x"), nat(100)));
  auto f = lambda("x", Type::nat(), mul(var("x"), nat(2)));
  EXPECT_EQ(eval(apply(while_f(p, f), nat(3))).value->as_nat(), 192u);
  // Zero iterations when the predicate is initially false.
  EXPECT_EQ(eval(apply(while_f(p, f), nat(100))).value->as_nat(), 100u);
}

TEST(Eval, WhileTimeScalesWithIterations) {
  auto p = lambda("x", Type::nat(), lt(nat(0), var("x")));
  auto f = lambda("x", Type::nat(), monus_t(var("x"), nat(1)));
  auto w = while_f(p, f);
  auto t10 = eval(apply(w, nat(10))).cost.time;
  auto t100 = eval(apply(w, nat(100))).cost.time;
  EXPECT_GT(t100, t10 * 5);
  EXPECT_LT(t100, t10 * 20);
}

TEST(Eval, FuelExhaustionIsDetected) {
  auto p = lambda("x", Type::nat(), tru());
  auto f = lambda("x", Type::nat(), var("x"));
  Evaluator ev_limited({/*max_steps=*/1000});
  EXPECT_THROW(ev_limited.apply(while_f(p, f), Value::nat(0)),
               nsc::FuelExhausted);
}

TEST(Eval, LetBindsOnce) {
  auto m = let_in(Type::nat(), add(nat(2), nat(3)),
                  [](TermRef x) { return mul(x, x); });
  EXPECT_EQ(ev(m)->as_nat(), 25u);
  EXPECT_TRUE(Type::equal(check_term(m), Type::nat()));
}

TEST(Eval, EnvShadowing) {
  // (\x. (\x. x+1)(10) + x)(1) = 12
  auto inner = lambda("x", Type::nat(), add(var("x"), nat(1)));
  auto outer =
      lambda("x", Type::nat(), add(apply(inner, nat(10)), var("x")));
  EXPECT_EQ(apply_fn(outer, Value::nat(1)).value->as_nat(), 12u);
}

TEST(Eval, FreeVariablesInMapBody) {
  // map(\v. (y, v))(xs) with y free: the broadcast pattern behind p2.
  auto body = lambda("v", Type::nat(), pair(var("y"), var("v")));
  Env env = Env{}.extend("y", Value::nat(7));
  auto r = Evaluator().eval(apply(map_f(body), nat_list({1, 2})), env);
  ASSERT_EQ(r.value->length(), 2u);
  EXPECT_EQ(r.value->elems()[0]->first()->as_nat(), 7u);
}

TEST(Eval, CostsArePositive) {
  auto r = eval(add(nat(1), nat(2)));
  EXPECT_GE(r.cost.time, 1u);
  EXPECT_GE(r.cost.work, 1u);
}

TEST(Eval, WorkScalesWithDataSize) {
  auto dup = lambda("x", Type::seq(Type::nat()),
                    append(var("x"), var("x")));
  auto small = apply_fn(dup, Value::nat_seq(std::vector<std::uint64_t>(10, 1)));
  auto large = apply_fn(dup, Value::nat_seq(std::vector<std::uint64_t>(1000, 1)));
  EXPECT_GT(large.cost.work, small.cost.work * 50);
  // Parallel time is size-independent for one append.
  EXPECT_EQ(large.cost.time, small.cost.time);
}

TEST(Show, TermsRoundTripReadably) {
  auto m = ite(leq(nat(1), nat(2)), nat_list({1}), empty(Type::nat()));
  EXPECT_NE(m->show().find("case"), std::string::npos);
  auto f = map_f(lambda("x", Type::nat(), var("x")));
  EXPECT_NE(f->show().find("map"), std::string::npos);
}

}  // namespace
}  // namespace nsc::lang
