// Unit tests for the support library: checked arithmetic, epsilon helpers,
// PRNG determinism, parallel_for, and the table printer.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <vector>

#include "support/checked.hpp"
#include "support/error.hpp"
#include "support/cost.hpp"
#include "support/parallel.hpp"
#include "support/prng.hpp"
#include "support/table.hpp"
#include "pin_workers.hpp"

namespace nsc {
namespace {

TEST(Checked, SatAddSaturates) {
  EXPECT_EQ(sat_add(1, 2), 3u);
  EXPECT_EQ(sat_add(~std::uint64_t{0}, 1), ~std::uint64_t{0});
  EXPECT_EQ(sat_add(~std::uint64_t{0} - 1, 5), ~std::uint64_t{0});
}

TEST(Checked, SatMulSaturates) {
  EXPECT_EQ(sat_mul(3, 4), 12u);
  EXPECT_EQ(sat_mul(0, ~std::uint64_t{0}), 0u);
  EXPECT_EQ(sat_mul(std::uint64_t{1} << 33, std::uint64_t{1} << 33),
            ~std::uint64_t{0});
}

TEST(Checked, Monus) {
  EXPECT_EQ(monus(5, 3), 2u);
  EXPECT_EQ(monus(3, 5), 0u);
  EXPECT_EQ(monus(0, 0), 0u);
}

TEST(Checked, Ilog2) {
  EXPECT_EQ(ilog2(0), 0u);
  EXPECT_EQ(ilog2(1), 0u);
  EXPECT_EQ(ilog2(2), 1u);
  EXPECT_EQ(ilog2(3), 1u);
  EXPECT_EQ(ilog2(1024), 10u);
  EXPECT_EQ(ilog2(1025), 10u);
}

TEST(Checked, CeilLog2AndPow2) {
  EXPECT_EQ(ceil_log2(1), 0u);
  EXPECT_EQ(ceil_log2(2), 1u);
  EXPECT_EQ(ceil_log2(3), 2u);
  EXPECT_EQ(ceil_pow2(1), 1u);
  EXPECT_EQ(ceil_pow2(3), 4u);
  EXPECT_EQ(ceil_pow2(1024), 1024u);
  EXPECT_EQ(ceil_pow2(1025), 2048u);
}

TEST(Checked, PowEpsMonotoneAndBounded) {
  const Rational half{1, 2};
  for (std::uint64_t n : {2ull, 16ull, 256ull, 65536ull}) {
    const std::uint64_t p = pow_eps(n, half);
    // 2^ceil(log2(n)/2) is within a factor 2 of sqrt(n).
    EXPECT_GE(p, isqrt(n));
    EXPECT_LE(p, 2 * isqrt(n) + 2);
  }
  EXPECT_EQ(pow_eps(0, half), 1u);
  EXPECT_EQ(pow_eps(1, half), 1u);
}

TEST(Checked, StageCount) {
  EXPECT_EQ(stage_count({1, 2}), 2u);
  EXPECT_EQ(stage_count({1, 3}), 3u);
  EXPECT_EQ(stage_count({2, 3}), 2u);
  EXPECT_EQ(stage_count({1, 1}), 1u);
}

TEST(Checked, SqrtPow2IsThetaSqrt) {
  for (std::uint64_t n = 1; n < 5000; n = n * 3 + 1) {
    const std::uint64_t s = sqrt_pow2(n);
    EXPECT_GE(s * 2, isqrt(n)) << n;
    EXPECT_LE(s, 2 * isqrt(n) + 2) << n;
  }
}

TEST(Checked, Isqrt) {
  EXPECT_EQ(isqrt(0), 0u);
  EXPECT_EQ(isqrt(1), 1u);
  EXPECT_EQ(isqrt(3), 1u);
  EXPECT_EQ(isqrt(4), 2u);
  EXPECT_EQ(isqrt(99), 9u);
  EXPECT_EQ(isqrt(100), 10u);
}

TEST(Cost, Accumulates) {
  Cost a{2, 10};
  Cost b{3, 7};
  a += b;
  EXPECT_EQ(a.time, 5u);
  EXPECT_EQ(a.work, 17u);
  EXPECT_EQ((Cost{1, 1} + Cost{2, 2}), (Cost{3, 3}));
}

TEST(Prng, Deterministic) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Prng, BelowRespectsBound) {
  SplitMix64 rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.below(17), 17u);
  EXPECT_EQ(rng.below(0), 0u);
}

TEST(Prng, VecShape) {
  SplitMix64 rng(9);
  auto v = rng.vec(32, 5);
  EXPECT_EQ(v.size(), 32u);
  for (auto x : v) EXPECT_LT(x, 5u);
}

TEST(Parallel, CoversRangeExactlyOnce) {
  std::vector<std::atomic<int>> hits(10000);
  parallel_for(hits.size(), [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
  }, 64);
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Parallel, EmptyRange) {
  bool called = false;
  parallel_for(0, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(Parallel, WorkersAtLeastOne) { EXPECT_GE(parallel_workers(), 1u); }

TEST(Parallel, EffectiveWorkersAcceptsValidCounts) {
  std::string w;
  EXPECT_EQ(effective_workers("1", &w), 1u);
  EXPECT_TRUE(w.empty());
  EXPECT_EQ(effective_workers("4", &w), 4u);
  EXPECT_TRUE(w.empty());
  EXPECT_EQ(effective_workers("256", &w), 256u);
  EXPECT_TRUE(w.empty());
}

TEST(Parallel, EffectiveWorkersUnsetUsesHardware) {
  std::string w;
  EXPECT_GE(effective_workers(nullptr, &w), 1u);
  EXPECT_TRUE(w.empty()) << "unset must not warn: " << w;
}

TEST(Parallel, EffectiveWorkersRejectsGarbage) {
  for (const char* bad : {"", "abc", "8 threads", "-2", "1.5", "0x10"}) {
    std::string w;
    EXPECT_GE(effective_workers(bad, &w), 1u) << bad;
    EXPECT_NE(w.find("is not a worker count"), std::string::npos)
        << "'" << bad << "' produced: " << w;
    EXPECT_NE(w.find("NSCC_WORKERS='"), std::string::npos) << w;
  }
}

TEST(Parallel, EffectiveWorkersRejectsZero) {
  std::string w;
  EXPECT_GE(effective_workers("0", &w), 1u);
  EXPECT_NE(w.find("asks for zero workers"), std::string::npos) << w;
}

TEST(Parallel, EffectiveWorkersClampsOverlarge) {
  std::string w;
  EXPECT_EQ(effective_workers("257", &w), 256u);
  EXPECT_NE(w.find("exceeds the 256-worker cap"), std::string::npos) << w;
  // Overlong digit strings (would overflow) are treated as garbage.
  w.clear();
  EXPECT_GE(effective_workers("9999999999", &w), 1u);
  EXPECT_FALSE(w.empty());
}

TEST(Parallel, EffectiveWorkersWarningsAreOptional) {
  // nullptr warning sink must be safe on every path.
  EXPECT_GE(effective_workers("garbage", nullptr), 1u);
  EXPECT_GE(effective_workers("0", nullptr), 1u);
  EXPECT_EQ(effective_workers("2", nullptr), 2u);
}

TEST(Parallel, CountersAdvanceAcrossADispatch) {
  const ParallelCounters before = parallel_counters();
  std::atomic<int> sum{0};
  parallel_for(100000, [&](std::size_t b, std::size_t e) {
    sum.fetch_add(static_cast<int>(e - b));
  }, 64);
  const ParallelCounters after = parallel_counters();
  EXPECT_EQ(sum.load(), 100000);
  EXPECT_GT(after.calls, before.calls);
  EXPECT_GE(after.chunks, before.chunks);
  EXPECT_GE(after.serial_calls, before.serial_calls);
  EXPECT_EQ(after.per_worker_tasks.size(), parallel_workers());
  EXPECT_GE(parallel_chunk_count(), after.chunks);
}

TEST(Parallel, NoInvertedOrEmptyChunks) {
  // Regression: with step rounded up, trailing chunks used to start past n
  // (n=5, 4+ workers, grain=1 dispatched fn(6, 5) -- an inverted range).
  // Every dispatched chunk must now satisfy b < e <= n, and together the
  // chunks must partition [0, n) exactly.
  for (std::size_t n : {1u, 2u, 3u, 5u, 7u, 11u, 13u, 100u, 101u}) {
    for (std::size_t grain : {1u, 2u, 3u, 4u, 7u}) {
      std::vector<std::atomic<int>> hits(n);
      std::atomic<bool> bad{false};
      parallel_for(
          n,
          [&](std::size_t b, std::size_t e) {
            if (b >= e || e > n) {
              bad = true;
              return;
            }
            for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
          },
          grain);
      EXPECT_FALSE(bad.load()) << "n=" << n << " grain=" << grain;
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(hits[i].load(), 1) << "n=" << n << " grain=" << grain
                                     << " i=" << i;
      }
    }
  }
}

TEST(Parallel, ExceptionPropagatesToCaller) {
  // Regression: an exception thrown inside a pool task used to escape into
  // the worker thread and std::terminate the process.  It must instead be
  // rethrown on the calling thread once all chunks have finished.
  EXPECT_THROW(
      parallel_for(
          10000,
          [&](std::size_t b, std::size_t) {
            if (b == 0) throw EvalError("division by zero");
          },
          16),
      EvalError);
  // The pool must still be usable afterwards.
  std::atomic<int> sum{0};
  parallel_for(1000, [&](std::size_t b, std::size_t e) {
    sum.fetch_add(static_cast<int>(e - b));
  }, 16);
  EXPECT_EQ(sum.load(), 1000);
}

TEST(Parallel, FirstOfManyExceptionsWins) {
  // Several chunks may throw; exactly one exception must surface and the
  // call must not deadlock or leak pending work.
  for (int round = 0; round < 8; ++round) {
    try {
      parallel_for(
          4096, [&](std::size_t, std::size_t) { throw EvalError("boom"); },
          16);
      FAIL() << "expected EvalError";
    } catch (const EvalError&) {
    }
  }
}

TEST(ChunkPlan, SerialIsOneChunk) {
  auto p = ChunkPlan::serial(100);
  EXPECT_EQ(p.chunks, 1u);
  EXPECT_EQ(p.begin(0), 0u);
  EXPECT_EQ(p.end(0), 100u);
  EXPECT_EQ(ChunkPlan::serial(0).chunks, 0u);
}

TEST(ChunkPlan, MakePartitionsExactly) {
  for (std::size_t n : {0u, 1u, 5u, 100u, 4095u, 4096u, 4097u, 100000u}) {
    for (std::size_t grain : {1u, 7u, 4096u}) {
      auto p = ChunkPlan::make(n, grain);
      std::size_t covered = 0;
      for (std::size_t c = 0; c < p.chunks; ++c) {
        ASSERT_LT(p.begin(c), p.end(c));
        ASSERT_LE(p.end(c), n);
        ASSERT_EQ(p.begin(c), covered);
        covered = p.end(c);
      }
      EXPECT_EQ(covered, n) << "n=" << n << " grain=" << grain;
    }
  }
}

TEST(ParallelReduce, MatchesSerialSumUnderAnyChunking) {
  SplitMix64 rng(3);
  auto v = rng.vec(50000, 1000);
  std::uint64_t expected = 0;
  for (auto x : v) expected += x;
  for (std::size_t grain : {1u, 64u, 4096u, 1u << 20}) {
    auto plan = ChunkPlan::make(v.size(), grain);
    auto got = parallel_reduce(plan, [&](std::size_t b, std::size_t e) {
      std::uint64_t s = 0;
      for (std::size_t i = b; i < e; ++i) s += v[i];
      return s;
    });
    EXPECT_EQ(got, expected) << "grain=" << grain;
  }
}

TEST(ParallelReduce, SaturationIsChunkingIndependent) {
  // sat_add is associative: once any partial sum pins at 2^64-1 the total
  // does too, so serial and parallel decompositions agree bit-for-bit.
  std::vector<std::uint64_t> v(10000, ~std::uint64_t{0} / 4096);
  auto sum_chunk = [&](std::size_t b, std::size_t e) {
    std::uint64_t s = 0;
    for (std::size_t i = b; i < e; ++i) s = sat_add(s, v[i]);
    return s;
  };
  const auto serial = parallel_reduce(ChunkPlan::serial(v.size()), sum_chunk);
  for (std::size_t grain : {1u, 17u, 1024u}) {
    EXPECT_EQ(parallel_reduce(ChunkPlan::make(v.size(), grain), sum_chunk),
              serial);
  }
}

TEST(ParallelScan, OffsetsAreExclusivePrefix) {
  SplitMix64 rng(11);
  auto v = rng.vec(30000, 50);
  auto sum_chunk = [&](std::size_t b, std::size_t e) {
    std::uint64_t s = 0;
    for (std::size_t i = b; i < e; ++i) s += v[i];
    return s;
  };
  for (std::size_t grain : {64u, 4096u}) {
    auto plan = ChunkPlan::make(v.size(), grain);
    std::vector<std::uint64_t> offs;
    const auto total = parallel_scan(plan, sum_chunk, offs);
    ASSERT_EQ(offs.size(), plan.chunks);
    std::uint64_t running = 0;
    for (std::size_t c = 0; c < plan.chunks; ++c) {
      EXPECT_EQ(offs[c], running);
      running += sum_chunk(plan.begin(c), plan.end(c));
    }
    EXPECT_EQ(total, running);
  }
}

TEST(ForEachChunk, RunsEveryChunkAndPropagatesExceptions) {
  // An explicit multi-chunk plan, so the pool dispatch path runs
  // regardless of how many workers this machine has.
  ChunkPlan plan;
  plan.n = 10000;
  plan.step = 2500;
  plan.chunks = 4;
  std::vector<std::atomic<int>> hits(10000);
  for_each_chunk(plan, [&](std::size_t, std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (auto& h : hits) ASSERT_EQ(h.load(), 1);
  EXPECT_THROW(
      for_each_chunk(plan,
                     [&](std::size_t c, std::size_t, std::size_t) {
                       if (c == 1) throw EvalError("boom");
                     }),
      EvalError);
}

TEST(Table, AlignsAndCounts) {
  Table t({"a", "bb"});
  t.row({"1", "2"});
  t.row({"333", "4"});
  const std::string s = t.str();
  EXPECT_NE(s.find("a"), std::string::npos);
  EXPECT_NE(s.find("333"), std::string::npos);
  EXPECT_THROW(t.row({"only-one"}), Error);
}

TEST(Table, Formatters) {
  EXPECT_EQ(Table::num(42), "42");
  EXPECT_EQ(Table::fixed(1.5, 2), "1.50");
}

}  // namespace
}  // namespace nsc
