// End-to-end tests for the Theorem 7.1 pipeline:
// NSC --(variable elimination)--> NSA --(flattening)--> BVRAM.
//
// Differential testing: every program in the corpus is evaluated by the
// NSC natural semantics and by the compiled BVRAM program; values must
// agree exactly.  Cost-shape checks verify T' = O(T) on grown inputs.
#include <gtest/gtest.h>

#include "nsc/build.hpp"
#include "nsc/eval.hpp"
#include "nsc/maprec.hpp"
#include "nsc/typecheck.hpp"
#include "nsc/prelude.hpp"
#include "object/random.hpp"
#include "sa/compile.hpp"
#include "sa/layout.hpp"
#include "support/prng.hpp"

namespace nsc::sa {
namespace {

namespace L = nsc::lang;
namespace P = nsc::lang::prelude;
using nsc::SplitMix64;
using nsc::Type;
using nsc::Value;

const TypeRef N = Type::nat();
const TypeRef NSeq = Type::seq(Type::nat());

// ---------------------------------------------------------------------------
// layout round-trips
// ---------------------------------------------------------------------------

TEST(Layout, RoundTripScalars) {
  SplitMix64 rng(1);
  for (const auto& t :
       {N, Type::unit(), Type::boolean(), Type::prod(N, Type::boolean()),
        Type::sum(N, Type::prod(N, N))}) {
    for (int i = 0; i < 20; ++i) {
      auto v = random_value(*t, rng);
      auto regs = encode_value(v, t);
      EXPECT_EQ(regs.size(), rep_width(*t));
      EXPECT_TRUE(Value::equal(v, decode_value(t, regs))) << v->show();
    }
  }
}

TEST(Layout, RoundTripSequences) {
  SplitMix64 rng(2);
  for (const auto& t :
       {NSeq, Type::seq(Type::seq(N)), Type::seq(Type::sum(N, Type::unit())),
        Type::seq(Type::prod(N, Type::seq(N))),
        Type::seq(Type::seq(Type::sum(Type::unit(), Type::seq(N))))}) {
    for (int i = 0; i < 20; ++i) {
      auto v = random_value(*t, rng);
      auto regs = encode_value(v, t);
      EXPECT_TRUE(Value::equal(v, decode_value(t, regs))) << v->show();
    }
  }
}

TEST(Layout, SegmentDescriptorsAreExplicit) {
  // [[1,2],[],[3]] lays out as lengths [2,0,1] ++ data [1,2,3].
  auto v = Value::seq({Value::nat_seq({1, 2}), Value::nat_seq({}),
                       Value::nat_seq({3})});
  auto regs = encode_value(v, Type::seq(NSeq));
  ASSERT_EQ(regs.size(), 2u);
  EXPECT_EQ(regs[0], (std::vector<std::uint64_t>{2, 0, 1}));
  EXPECT_EQ(regs[1], (std::vector<std::uint64_t>{1, 2, 3}));
}

TEST(Layout, SumFlagsArePackedSides) {
  auto v = Value::seq({Value::in1(Value::nat(5)), Value::in2(Value::unit()),
                       Value::in1(Value::nat(7))});
  auto regs = encode_value(v, Type::seq(Type::sum(N, Type::unit())));
  ASSERT_EQ(regs.size(), 3u);
  EXPECT_EQ(regs[0], (std::vector<std::uint64_t>{1, 0, 1}));  // flags
  EXPECT_EQ(regs[1], (std::vector<std::uint64_t>{5, 7}));     // packed in1
  EXPECT_EQ(regs[2], (std::vector<std::uint64_t>{0}));        // unit zeros
}

// ---------------------------------------------------------------------------
// differential pipeline checks
// ---------------------------------------------------------------------------

void check_compiled(const L::FuncRef& f, const std::vector<ValueRef>& args) {
  auto [dom, cod] = L::check_func(f);
  auto program = compile_nsc(f);
  for (const auto& arg : args) {
    auto want = L::apply_fn(f, arg);
    auto got = run_compiled(program, dom, cod, arg);
    EXPECT_TRUE(Value::equal(want.value, got.value))
        << "arg=" << arg->show() << "\nwant=" << want.value->show()
        << "\ngot=" << got.value->show();
  }
}

TEST(Compile, ScalarArithmetic) {
  auto f = L::lam(N, [](L::TermRef x) {
    return L::add(L::mul(x, x), L::monus_t(L::nat(10), x));
  });
  check_compiled(f, {Value::nat(0), Value::nat(3), Value::nat(100)});
}

TEST(Compile, PairsAndProjections) {
  auto f = L::lam(Type::prod(N, N), [](L::TermRef z) {
    return L::pair(L::proj2(z), L::proj1(z));
  });
  check_compiled(f, {Value::pair(Value::nat(1), Value::nat(2))});
}

TEST(Compile, CaseAndBooleans) {
  auto f = L::lam(Type::prod(N, N), [](L::TermRef z) {
    return L::ite(L::leq(L::proj1(z), L::proj2(z)), L::proj2(z), L::proj1(z));
  });
  check_compiled(f, {Value::pair(Value::nat(2), Value::nat(9)),
                     Value::pair(Value::nat(9), Value::nat(2)),
                     Value::pair(Value::nat(4), Value::nat(4))});
}

TEST(Compile, SumInjections) {
  auto f = L::lam(N, [](L::TermRef x) {
    return L::ite(L::lt(x, L::nat(5)), L::inj1(x, NSeq),
                  L::inj2(L::singleton(x), N));
  });
  check_compiled(f, {Value::nat(1), Value::nat(9)});
}

TEST(Compile, MapScalarBody) {
  auto inc = L::lam(N, [](L::TermRef v) { return L::add(v, L::nat(1)); });
  auto f = L::lam(NSeq, [&](L::TermRef x) {
    return L::apply(L::map_f(inc), x);
  });
  check_compiled(f, {Value::nat_seq({}), Value::nat_seq({5}),
                     Value::nat_seq({1, 2, 3, 4})});
}

TEST(Compile, MapWithBroadcastContext) {
  auto f = L::lam(Type::prod(N, NSeq), [](L::TermRef z) {
    auto body =
        L::lam(N, [&](L::TermRef v) { return L::add(v, L::proj1(z)); });
    return L::apply(L::map_f(body), L::proj2(z));
  });
  check_compiled(f, {Value::pair(Value::nat(10), Value::nat_seq({1, 2, 3})),
                     Value::pair(Value::nat(5), Value::nat_seq({}))});
}

TEST(Compile, NestedMaps) {
  auto inc = L::lam(N, [](L::TermRef v) { return L::mul(v, L::nat(3)); });
  auto f = L::lam(Type::seq(NSeq), [&](L::TermRef x) {
    return L::apply(L::map_f(L::map_f(inc)), x);
  });
  auto nested = Value::seq({Value::nat_seq({1, 2}), Value::nat_seq({}),
                            Value::nat_seq({7})});
  check_compiled(f, {nested, Value::empty_seq()});
}

TEST(Compile, SequencePrimitives) {
  auto f = L::lam(NSeq, [](L::TermRef x) {
    return L::append(L::enumerate(x),
                     L::flatten(L::split(x, L::singleton(L::length(x)))));
  });
  check_compiled(f, {Value::nat_seq({4, 5, 6}), Value::nat_seq({})});
}

TEST(Compile, ZipAndArith) {
  auto addp = L::lam(Type::prod(N, N), [](L::TermRef q) {
    return L::add(L::proj1(q), L::proj2(q));
  });
  auto f = L::lam(Type::prod(NSeq, NSeq), [&](L::TermRef z) {
    return L::apply(L::map_f(addp), L::zip(L::proj1(z), L::proj2(z)));
  });
  check_compiled(f, {Value::pair(Value::nat_seq({1, 2}), Value::nat_seq({10, 20}))});
}

TEST(Compile, FilterViaFlattenMapCase) {
  auto even = L::lam(N, [](L::TermRef v) {
    return L::eq(L::mod_t(v, L::nat(2)), L::nat(0));
  });
  auto f = P::filter(even, N);
  check_compiled(f, {Value::nat_seq({5, 2, 7, 4, 6, 1}), Value::nat_seq({}),
                     Value::nat_seq({1, 3, 5})});
}

TEST(Compile, PreludeFirstTailLast) {
  check_compiled(P::tail(N), {Value::nat_seq({7, 8, 9}), Value::nat_seq({})});
  check_compiled(P::first(N), {Value::nat_seq({7, 8, 9})});
  check_compiled(P::last(N), {Value::nat_seq({7, 8, 9})});
  check_compiled(P::remove_last(N), {Value::nat_seq({7, 8, 9})});
}

TEST(Compile, PreludeIndex) {
  check_compiled(
      P::index(N),
      {Value::pair(Value::nat_seq({10, 11, 12, 13}), Value::nat_seq({1, 3})),
       Value::pair(Value::nat_seq({10, 11, 12}), Value::nat_seq({}))});
}

TEST(Compile, PreludeBmRoute) {
  auto arg = Value::pair(
      Value::pair(Value::nat_seq({0, 0, 0, 0, 0}), Value::nat_seq({3, 0, 2})),
      Value::nat_seq({100, 101, 102}));
  check_compiled(P::bm_route(N, N), {arg});
}

TEST(Compile, PreludeSigma) {
  auto x = Value::seq({Value::in1(Value::nat(1)), Value::in2(Value::nat(2)),
                       Value::in1(Value::nat(5))});
  check_compiled(P::sigma1(N, N), {x});
  check_compiled(P::sigma2(N, N), {x});
}

TEST(Compile, WhileLoop) {
  auto pred = L::lam(N, [](L::TermRef x) { return L::lt(x, L::nat(100)); });
  auto step = L::lam(N, [](L::TermRef x) { return L::mul(x, L::nat(2)); });
  auto f = L::lam(N, [&](L::TermRef x) {
    return L::apply(L::while_f(pred, step), x);
  });
  check_compiled(f, {Value::nat(3), Value::nat(100), Value::nat(1)});
}

TEST(Compile, SumNatsReduction) {
  check_compiled(P::sum_nats(),
                 {Value::nat_seq({}), Value::nat_seq({5}),
                  Value::nat_seq({1, 2, 3, 4, 5}),
                  Value::nat_seq({7, 7, 7, 7, 7, 7, 7, 7})});
}

TEST(Compile, MaxNats) {
  check_compiled(P::max_nats(), {Value::nat_seq({3, 9, 2, 9, 1})});
}

TEST(Compile, DirectMerge) {
  check_compiled(
      P::direct_merge(),
      {Value::pair(Value::nat_seq({2, 4, 6}), Value::nat_seq({1, 3, 5, 7})),
       Value::pair(Value::nat_seq({}), Value::nat_seq({1, 2})),
       Value::pair(Value::nat_seq({1, 2}), Value::nat_seq({}))});
}

TEST(Compile, MappedWhile) {
  // map(while(v > 0, v - 3)) -- data-dependent per-element iteration
  // counts: exercises the lifted active-set while.
  auto pred = L::lam(N, [](L::TermRef v) { return L::lt(L::nat(0), v); });
  auto step = L::lam(N, [](L::TermRef v) { return L::monus_t(v, L::nat(3)); });
  auto f = L::lam(NSeq, [&](L::TermRef x) {
    return L::apply(L::map_f(L::lam(N, [&](L::TermRef v) {
                      return L::apply(L::while_f(pred, step), v);
                    })),
                    x);
  });
  check_compiled(f, {Value::nat_seq({10, 0, 5, 27, 1}), Value::nat_seq({})});
}

TEST(Compile, RandomizedPipeline) {
  auto dbl = L::lam(N, [](L::TermRef v) { return L::mul(v, L::nat(2)); });
  auto small = L::lam(N, [](L::TermRef v) { return L::lt(v, L::nat(50)); });
  auto f = L::lam(NSeq, [&](L::TermRef x) {
    return L::apply(L::map_f(dbl), L::apply(P::filter(small, N), x));
  });
  auto [dom, cod] = L::check_func(f);
  auto program = compile_nsc(f);
  SplitMix64 rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    auto arg = Value::nat_seq(rng.vec(rng.below(16), 100));
    auto want = L::apply_fn(f, arg);
    auto got = run_compiled(program, dom, cod, arg);
    EXPECT_TRUE(Value::equal(want.value, got.value)) << arg->show();
  }
}

TEST(Compile, Thm42TranslatedProgramCompiles) {
  // The full stack: map-recursion -> NSC (Thm 4.2) -> BVRAM (Thm 7.1).
  auto p = L::lam(Type::prod(N, N), [](L::TermRef x) {
    return L::leq(L::monus_t(L::proj2(x), L::proj1(x)), L::nat(1));
  });
  auto s = L::lam(Type::prod(N, N), [](L::TermRef x) {
    return L::ite(L::eq(L::monus_t(L::proj2(x), L::proj1(x)), L::nat(0)),
                  L::nat(0), L::proj1(x));
  });
  auto d1 = L::lam(Type::prod(N, N), [](L::TermRef x) {
    return L::pair(L::proj1(x), L::div_t(L::add(L::proj1(x), L::proj2(x)),
                                         L::nat(2)));
  });
  auto d2 = L::lam(Type::prod(N, N), [](L::TermRef x) {
    return L::pair(L::div_t(L::add(L::proj1(x), L::proj2(x)), L::nat(2)),
                   L::proj2(x));
  });
  auto c2 = L::lam(Type::prod(N, N), [](L::TermRef q) {
    return L::add(L::proj1(q), L::proj2(q));
  });
  auto g = L::translate_maprec(
      L::schema_g(Type::prod(N, N), N, p, s, d1, d2, c2));
  check_compiled(g, {Value::pair(Value::nat(0), Value::nat(8)),
                     Value::pair(Value::nat(0), Value::nat(13))});
}

TEST(Compile, TimePreservedAcrossSizes) {
  // T' = O(T): the BVRAM/NSC time ratio stays bounded as the input grows.
  auto f = P::index(N);
  auto [dom, cod] = L::check_func(f);
  auto program = compile_nsc(f);
  auto mk = [](std::size_t n) {
    std::vector<std::uint64_t> c(n);
    for (std::size_t i = 0; i < n; ++i) c[i] = i;
    return Value::pair(Value::nat_seq(c), Value::nat_seq({0, n / 2, n - 1}));
  };
  auto nsc64 = L::apply_fn(f, mk(64)).cost;
  auto bv64 = run_compiled(program, dom, cod, mk(64)).cost;
  auto nsc4k = L::apply_fn(f, mk(4096)).cost;
  auto bv4k = run_compiled(program, dom, cod, mk(4096)).cost;
  // Straight-line program: identical instruction count at any size.
  EXPECT_EQ(bv64.time, bv4k.time);
  (void)nsc64;
  (void)nsc4k;
  // Work scales linearly like NSC's.
  const double w_ratio64 =
      static_cast<double>(bv64.work) / static_cast<double>(nsc64.work);
  const double w_ratio4k =
      static_cast<double>(bv4k.work) / static_cast<double>(nsc4k.work);
  EXPECT_LT(w_ratio4k, w_ratio64 * 2.0 + 1.0);
}

TEST(Compile, RegisterCountIsStatic) {
  auto program = compile_nsc(P::index(N));
  EXPECT_GT(program.num_regs, 0u);
  // Same program text regardless of future inputs: the register count is a
  // property of the source (Theorem 7.1's bounded registers).
  auto program2 = compile_nsc(P::index(N));
  EXPECT_EQ(program.num_regs, program2.num_regs);
  EXPECT_EQ(program.code.size(), program2.code.size());
}

TEST(Compile, OmegaTraps) {
  auto f = L::lam(N, [](L::TermRef) { return L::omega(N); });
  auto program = compile_nsc(f);
  EXPECT_THROW(
      run_compiled(program, N, N, Value::nat(1)),
      MachineError);
}

TEST(Compile, ZipMismatchTraps) {
  auto f = L::lam(Type::prod(NSeq, NSeq), [](L::TermRef z) {
    return L::zip(L::proj1(z), L::proj2(z));
  });
  auto [dom, cod] = L::check_func(f);
  auto program = compile_nsc(f);
  EXPECT_THROW(run_compiled(program, dom, cod,
                            Value::pair(Value::nat_seq({1}),
                                        Value::nat_seq({1, 2}))),
               MachineError);
}

}  // namespace
}  // namespace nsc::sa
