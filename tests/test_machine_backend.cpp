// Differential harness for the BVRAM execution engine: every program is
// executed under four configurations --
//
//     run_reference  serial      (the v1 interpreter, the baseline)
//     run_reference  parallel
//     run            serial      (the v2 pooled/in-place engine)
//     run            parallel    (all 11 vector opcodes on the pool)
//
// plus the v2 pair again on a copy annotated with opt::annotate_last_use
// (exercising Move-as-swap and the in-place kernels), plus three more on
// a copy additionally annotated with opt::annotate_fusion -- fused
// serial, fused parallel, and the fused plan with RunConfig::fuse off --
// and all nine must agree bit-for-bit on outputs, trap type *and
// message*, T, W, and the per-instruction trace.  Covers every opcode
// including the trap cases (length mismatch, bad bound/segment
// certificates, division by zero) and the compiled example corpus at
// every OptLevel and WhileSchedule.  The Fusion suite at the bottom
// adds group-specific adversaries: trap-at-element inside a group,
// extent-mismatch fallback, aliased dst/src, budget expiry mid-group,
// and the attribution floor with fusion enabled.
#include <gtest/gtest.h>

#include <string>
#include <typeinfo>
#include <vector>

#include "bvram/machine.hpp"
#include "front/front.hpp"
#include "nsc/build.hpp"
#include "nsc/prelude.hpp"
#include "nsc/typecheck.hpp"
#include "obs/profile.hpp"
#include "opt/fuse.hpp"
#include "opt/liveness.hpp"
#include "opt/opt.hpp"
#include "sa/compile.hpp"
#include "sa/layout.hpp"
#include "support/error.hpp"
#include "support/prng.hpp"
#include "pin_workers.hpp"

namespace nsc::bvram {
namespace {

namespace L = nsc::lang;
namespace P = nsc::lang::prelude;
using Vec = std::vector<std::uint64_t>;

struct Outcome {
  bool trapped = false;
  std::string error;  // dynamic exception type + message
  RunResult result;
};

template <typename Runner>
Outcome outcome_of(Runner runner, const Program& p,
                   const std::vector<Vec>& inputs, bool parallel,
                   bool fuse = true) {
  RunConfig cfg;
  cfg.record_trace = true;
  cfg.parallel_backend = parallel;
  cfg.fuse = fuse;
  Outcome o;
  try {
    o.result = runner(p, inputs, cfg);
  } catch (const Error& e) {
    o.trapped = true;
    o.error = std::string(typeid(e).name()) + ": " + e.what();
  }
  return o;
}

void expect_same(const Outcome& base, const Outcome& got,
                 const std::string& label) {
  ASSERT_EQ(base.trapped, got.trapped) << label << ": trap disagreement ("
                                       << base.error << " vs " << got.error
                                       << ")";
  if (base.trapped) {
    EXPECT_EQ(base.error, got.error) << label;
    return;
  }
  EXPECT_EQ(base.result.outputs, got.result.outputs) << label;
  EXPECT_EQ(base.result.cost.time, got.result.cost.time) << label;
  EXPECT_EQ(base.result.cost.work, got.result.cost.work) << label;
  ASSERT_EQ(base.result.trace.size(), got.result.trace.size()) << label;
  for (std::size_t i = 0; i < base.result.trace.size(); ++i) {
    EXPECT_EQ(base.result.trace[i].op, got.result.trace[i].op)
        << label << " trace[" << i << "]";
    EXPECT_EQ(base.result.trace[i].work, got.result.trace[i].work)
        << label << " trace[" << i << "]";
    EXPECT_EQ(base.result.trace[i].max_len, got.result.trace[i].max_len)
        << label << " trace[" << i << "]";
  }
}

/// The harness: v1 serial is ground truth; the other eight configurations
/// must match it exactly.
void expect_identical(const Program& p, const std::vector<Vec>& inputs) {
  const Outcome base = outcome_of(run_reference, p, inputs, false);
  expect_same(base, outcome_of(run_reference, p, inputs, true), "v1/par");
  expect_same(base, outcome_of(run, p, inputs, false), "v2/serial");
  expect_same(base, outcome_of(run, p, inputs, true), "v2/par");
  Program annotated = p;
  opt::annotate_last_use(annotated);
  expect_same(base, outcome_of(run, annotated, inputs, false),
              "v2+liveness/serial");
  expect_same(base, outcome_of(run, annotated, inputs, true),
              "v2+liveness/par");
  // Fusion differential: the same liveness-annotated program with the
  // fusion plan attached, executed fused (serial + parallel) and with
  // the fused path switched off again -- cost-model invisibility means
  // all three are indistinguishable from the reference.
  Program fused = annotated;
  opt::annotate_fusion(fused);
  expect_same(base, outcome_of(run, fused, inputs, false),
              "v2+fusion/serial");
  expect_same(base, outcome_of(run, fused, inputs, true), "v2+fusion/par");
  expect_same(base, outcome_of(run, fused, inputs, false, false),
              "v2+fusion-off/serial");
}

// Sizes straddle the parallel grain (4096) so both the serial fallback
// and real pool dispatch are exercised.
const std::size_t kSizes[] = {0, 1, 7, 4096, 20011};

Vec iota_mod(std::size_t n, std::uint64_t mod) {
  Vec v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = (i * 2654435761u) % mod;
  return v;
}

// ---------------------------------------------------------------------------
// per-opcode differential programs
// ---------------------------------------------------------------------------

TEST(Backend, MoveChain) {
  // Move in a chain, then reuse the source -- with liveness annotation the
  // first two Moves execute as swaps, the last one must copy (x is read
  // again by the Append).
  Assembler a;
  auto x = a.reg();
  auto y = a.reg();
  auto z = a.reg();
  auto w = a.reg();
  a.move(y, x);
  a.move(z, y);
  a.move(w, x);
  a.append(0, w, x);
  a.halt();
  auto p = a.finish(1, 4);
  for (std::size_t n : kSizes) expect_identical(p, {iota_mod(n, 97)});
}

TEST(Backend, MoveSelfIsNoop) {
  Assembler a;
  auto x = a.reg();
  a.move(x, x);
  a.halt();
  auto p = a.finish(1, 1);
  expect_identical(p, {iota_mod(100, 7)});
}

TEST(Backend, ArithEveryOp) {
  for (auto op : {ArithOp::Add, ArithOp::Monus, ArithOp::Mul, ArithOp::Div,
                  ArithOp::Rsh, ArithOp::Log2}) {
    Assembler a;
    auto x = a.reg();
    auto y = a.reg();
    auto z = a.reg();
    a.arith(z, op, x, y);
    a.halt();
    auto p = a.finish(2, 3);
    for (std::size_t n : kSizes) {
      Vec xs = iota_mod(n, 1000);
      Vec ys(n);
      for (std::size_t i = 0; i < n; ++i) ys[i] = (i % 9) + 1;  // no zeros
      expect_identical(p, {xs, ys});
    }
  }
}

TEST(Backend, ArithSaturates) {
  Assembler a;
  auto x = a.reg();
  auto y = a.reg();
  auto z = a.reg();
  a.arith(z, ArithOp::Add, x, y);
  a.arith(z, ArithOp::Mul, z, z);
  a.halt();
  auto p = a.finish(2, 3);
  Vec huge(5000, ~std::uint64_t{0} - 3);
  Vec small(5000, 17);
  expect_identical(p, {huge, small});
}

TEST(Backend, ArithDivByZeroTraps) {
  Assembler a;
  auto x = a.reg();
  auto y = a.reg();
  a.arith(x, ArithOp::Div, x, y);
  a.halt();
  auto p = a.finish(2, 1);
  Vec num(20000, 7);
  Vec den(20000, 3);
  den[12345] = 0;  // poisoned slot deep inside a parallel chunk
  expect_identical(p, {num, den});
  den[0] = 0;  // and at the very front
  expect_identical(p, {num, den});
}

TEST(Backend, ArithLengthMismatchTraps) {
  Assembler a;
  auto x = a.reg();
  auto y = a.reg();
  a.arith(x, ArithOp::Add, x, y);
  a.halt();
  auto p = a.finish(2, 1);
  expect_identical(p, {Vec(10, 1), Vec(11, 1)});
  expect_identical(p, {Vec{}, Vec{1}});
}

TEST(Backend, ArithInPlaceAliases) {
  // dst == a, dst == b, and a == b variants all stay index-aligned.
  for (int variant = 0; variant < 3; ++variant) {
    Assembler a;
    auto x = a.reg();
    auto y = a.reg();
    if (variant == 0) a.arith(x, ArithOp::Add, x, y);
    if (variant == 1) a.arith(y, ArithOp::Mul, x, y);
    if (variant == 2) a.arith(x, ArithOp::Add, y, y);
    a.halt();
    auto p = a.finish(2, 2);
    for (std::size_t n : kSizes) {
      expect_identical(p, {iota_mod(n, 50), iota_mod(n, 11)});
    }
  }
}

TEST(Backend, AppendAndLength) {
  Assembler a;
  auto x = a.reg();
  auto y = a.reg();
  auto cat = a.reg();
  auto len = a.reg();
  a.append(cat, x, y);
  a.append(cat, cat, cat);  // dst aliases both sources
  a.length(len, cat);
  a.length(len, len);  // dst aliases src
  a.halt();
  auto p = a.finish(2, 4);
  for (std::size_t n : kSizes) {
    expect_identical(p, {iota_mod(n, 13), iota_mod(n / 2, 29)});
  }
}

TEST(Backend, EnumerateInPlace) {
  Assembler a;
  auto x = a.reg();
  auto y = a.reg();
  a.enumerate(y, x);  // fresh output (x still read below)
  a.enumerate(x, x);  // dst == src
  a.halt();
  auto p = a.finish(1, 2);
  for (std::size_t n : kSizes) expect_identical(p, {iota_mod(n, 5)});
}

TEST(Backend, SelectShapes) {
  Assembler a;
  auto x = a.reg();
  auto out = a.reg();
  a.select(out, x);
  a.halt();
  auto p = a.finish(1, 2);
  for (std::size_t n : kSizes) {
    expect_identical(p, {iota_mod(n, 3)});  // ~1/3 zeros
    expect_identical(p, {Vec(n, 0)});       // everything dropped
    expect_identical(p, {Vec(n, 9)});       // nothing dropped
  }
}

TEST(Backend, ScanPlusMatchesAndSaturates) {
  Assembler a;
  auto x = a.reg();
  auto out = a.reg();
  a.scan_plus(out, x);
  a.scan_plus(x, x);  // in-place variant
  a.halt();
  auto p = a.finish(1, 2);
  for (std::size_t n : kSizes) expect_identical(p, {iota_mod(n, 1000)});
  // Saturation: the block-scan decomposition must agree with the serial
  // left-to-right saturating sum (sat_add is associative).
  Vec spiky(20000, 1);
  for (std::size_t i = 0; i < spiky.size(); i += 997) {
    spiky[i] = ~std::uint64_t{0} / 3;
  }
  expect_identical(p, {spiky});
}

TEST(Backend, BmRouteValidAndTraps) {
  Assembler a;
  auto bound = a.reg();
  auto counts = a.reg();
  auto data = a.reg();
  auto out = a.reg();
  a.bm_route(out, bound, counts, data);
  a.halt();
  auto p = a.finish(3, 4);
  SplitMix64 rng(42);
  for (std::size_t n : {std::size_t{0}, std::size_t{5}, std::size_t{4096},
                        std::size_t{20011}}) {
    Vec cnt = rng.vec(n, 4);  // mix of 0..3 repetitions
    std::uint64_t total = 0;
    for (auto c : cnt) total += c;
    Vec dat = iota_mod(n, 1 << 20);
    expect_identical(p, {Vec(total, 0), cnt, dat});
    // bound too short / too long
    expect_identical(p, {Vec(total + 1, 0), cnt, dat});
    if (total > 0) expect_identical(p, {Vec(total - 1, 0), cnt, dat});
    // counts/data length mismatch
    expect_identical(p, {Vec(total, 0), cnt, iota_mod(n + 1, 7)});
  }
}

TEST(Backend, SbmRouteValidAndTraps) {
  Assembler a;
  auto bound = a.reg();
  auto counts = a.reg();
  auto data = a.reg();
  auto segs = a.reg();
  auto out = a.reg();
  a.sbm_route(out, bound, counts, data, segs);
  a.halt();
  auto p = a.finish(4, 5);
  SplitMix64 rng(7);
  for (std::size_t n : {std::size_t{0}, std::size_t{3}, std::size_t{4096},
                        std::size_t{9001}}) {
    Vec cnt = rng.vec(n, 3);
    Vec seg = rng.vec(n, 4);
    std::uint64_t csum = 0, ssum = 0;
    for (auto c : cnt) csum += c;
    for (auto s : seg) ssum += s;
    Vec dat = iota_mod(ssum, 1 << 16);
    expect_identical(p, {Vec(csum, 0), cnt, dat, seg});
    // each certificate violated in turn
    expect_identical(p, {Vec(csum + 2, 0), cnt, dat, seg});
    expect_identical(p, {Vec(csum, 0), cnt, iota_mod(ssum + 1, 9), seg});
    if (n > 0) {
      Vec cnt_short(cnt.begin(), cnt.end() - 1);
      expect_identical(p, {Vec(csum, 0), cnt_short, dat, seg});
    }
  }
}

TEST(Backend, BmRouteSkewedBroadcast) {
  // The compiler's broadcast: a single count of n (maximum skew).  The
  // parallel backend must partition the *output* space, and the result
  // must stay bit-identical to the serial walk.
  Assembler a;
  auto bound = a.reg();
  auto counts = a.reg();
  auto data = a.reg();
  auto out = a.reg();
  a.bm_route(out, bound, counts, data);
  a.halt();
  auto p = a.finish(3, 4);
  for (std::size_t n : {std::size_t{1}, std::size_t{4096}, std::size_t{50000}}) {
    expect_identical(p, {Vec(n, 0), Vec{n}, Vec{42}});
    // two skewed elements plus a tail of ones
    if (n >= 10) {
      Vec cnt(10, 1);
      cnt[3] = n;
      cnt[7] = n / 2;
      Vec dat = iota_mod(10, 100);
      expect_identical(p, {Vec(n + n / 2 + 8, 0), cnt, dat});
    }
  }
}

TEST(Backend, SbmRouteSkewedCartesian) {
  // One segment replicated k times (the flattened cartesian product) and
  // a mixed-skew case with empty segments and zero counts.
  Assembler a;
  auto bound = a.reg();
  auto counts = a.reg();
  auto data = a.reg();
  auto segs = a.reg();
  auto out = a.reg();
  a.sbm_route(out, bound, counts, data, segs);
  a.halt();
  auto p = a.finish(4, 5);
  // |bound| = sum counts; |data| = sum segs; |out| = sum counts*segs.
  expect_identical(p, {Vec(10000, 0), Vec{10000}, iota_mod(3, 50), Vec{3}});
  expect_identical(p, {Vec(20005, 0), Vec{2, 0, 20000, 3}, iota_mod(7, 50),
                       Vec{4, 0, 2, 1}});
}

TEST(Backend, ControlFlowLoop) {
  // The countdown loop from test_bvram, at a size where the loop body's
  // vector ops cross the parallel grain.
  Assembler a;
  auto acc = a.reg();
  auto n = a.reg();
  auto one = a.reg();
  auto nz = a.reg();
  a.load_const(acc, 1);
  a.load_const(one, 1);
  auto top = a.fresh_label();
  auto done = a.fresh_label();
  a.bind(top);
  a.select(nz, n);
  a.jump_if_empty(nz, done);
  a.arith(acc, ArithOp::Add, acc, acc);
  a.arith(n, ArithOp::Monus, n, one);
  a.jump(top);
  a.bind(done);
  a.halt();
  auto p = a.finish(2, 1);
  expect_identical(p, {Vec{}, Vec{12}});
  expect_identical(p, {Vec{}, Vec{0}});
}

TEST(Backend, SelectInPlaceOverDeadSource) {
  // The serial engine packs in place when the source dies at the select
  // (last_use annotation) or doubles as the destination; all six
  // configurations must still agree bit-for-bit on outputs, T, W.
  Assembler a;
  auto x = a.reg();  // V0: input and final output
  auto t = a.reg();
  a.enumerate(t, x);
  a.arith(t, ArithOp::Mul, t, x);
  a.select(x, t);  // t dead afterwards: steal its buffer
  a.select(x, x);  // dst == src: pack in place outright
  a.halt();
  auto p = a.finish(1, 1);
  for (std::size_t n : kSizes) {
    expect_identical(p, {iota_mod(n, 3)});  // ~1/3 zeros
    expect_identical(p, {Vec(n, 0)});
    expect_identical(p, {Vec(n, 9)});
  }
}

TEST(Backend, AppendInPlaceOverDeadSource) {
  // The engine extends the left source's buffer in place when it dies at
  // the append (or doubles as the destination) and its capacity suffices;
  // all six configurations must agree bit-for-bit on outputs, T, W.  The
  // select of a zero-free vector shrinks the register without shrinking
  // its capacity, which is exactly the headroom the in-place path needs.
  Assembler a;
  auto x = a.reg();  // V0: input and final output
  auto y = a.reg();
  auto z = a.reg();
  auto one = a.reg();
  a.load_const(one, 1);
  a.arith(y, ArithOp::Add, x, x);
  a.select(z, y);      // z's buffer gets capacity >= |y|
  a.append(z, z, one); // dst == left source: in place when capacity allows
  a.append(x, z, y);   // z dead afterwards: steal its buffer if it fits
  a.append(x, x, x);   // both sources alias dst
  a.halt();
  auto p = a.finish(1, 1);
  for (std::size_t n : kSizes) {
    expect_identical(p, {iota_mod(n, 97)});   // ~1/97 zeros
    expect_identical(p, {Vec(n, 3)});         // zero-free: select keeps all
    expect_identical(p, {Vec(n, 0)});         // select empties z
  }
}

TEST(Backend, AppendInPlaceTightCapacity) {
  // A dying source whose capacity is exactly its size must take the copy
  // path; a previously shrunk one takes the in-place path.  Differential
  // over both, plus append onto an empty dying source.
  Assembler a;
  auto x = a.reg();
  auto y = a.reg();
  auto z = a.reg();
  a.enumerate(y, x);
  a.append(z, y, x);   // y dies; fresh enumerate buffer, no slack
  a.select(z, z);      // shrink in place: capacity headroom appears
  a.append(x, z, x);   // z dies with headroom
  a.halt();
  auto p = a.finish(1, 1);
  for (std::size_t n : kSizes) {
    expect_identical(p, {iota_mod(n, 5)});
    expect_identical(p, {Vec(n, 0)});
  }
}

TEST(Backend, PoolReuseAcrossGrowShrink) {
  // Registers repeatedly grow (append) and shrink (select of zeros),
  // churning the buffer pool.
  Assembler a;
  auto x = a.reg();
  auto y = a.reg();
  auto z = a.reg();
  auto cnt = a.reg();
  auto one = a.reg();
  a.load_const(one, 1);
  for (int round = 0; round < 6; ++round) {
    a.append(y, x, x);
    a.scan_plus(z, y);
    a.select(z, z);
    a.enumerate(y, y);
    a.length(cnt, z);
    a.move(x, z);
  }
  a.halt();
  auto p = a.finish(1, 4);
  expect_identical(p, {iota_mod(3000, 2)});
}

TEST(Backend, RandomStraightLinePrograms) {
  // Randomized differential sweep: straight-line programs over the whole
  // ISA (routes usually trap on their certificates, which is exactly the
  // point: first-trap identity across all six configurations).
  SplitMix64 rng(1234);
  for (int trial = 0; trial < 120; ++trial) {
    Assembler a;
    const std::size_t nregs = 4;
    for (std::size_t r = 0; r < nregs; ++r) a.reg();
    const int len = 3 + static_cast<int>(rng.below(12));
    for (int i = 0; i < len; ++i) {
      const auto dst = static_cast<std::uint32_t>(rng.below(nregs));
      const auto s1 = static_cast<std::uint32_t>(rng.below(nregs));
      const auto s2 = static_cast<std::uint32_t>(rng.below(nregs));
      const auto s3 = static_cast<std::uint32_t>(rng.below(nregs));
      switch (rng.below(10)) {
        case 0:
          a.move(dst, s1);
          break;
        case 1:
          a.arith(dst, static_cast<ArithOp>(rng.below(6)), s1, s2);
          break;
        case 2:
          a.load_const(dst, rng.below(100));
          break;
        case 3:
          a.load_empty(dst);
          break;
        case 4:
          a.append(dst, s1, s2);
          break;
        case 5:
          a.length(dst, s1);
          break;
        case 6:
          a.enumerate(dst, s1);
          break;
        case 7:
          a.select(dst, s1);
          break;
        case 8:
          a.scan_plus(dst, s1);
          break;
        case 9:
          a.bm_route(dst, s1, s2, s3);
          break;
      }
    }
    a.halt();
    auto p = a.finish(2, nregs);
    std::vector<Vec> inputs = {rng.vec(rng.below(50), 6),
                               rng.vec(rng.below(50), 6)};
    expect_identical(p, inputs);
  }
}

// ---------------------------------------------------------------------------
// satellite regressions: I/O arity and jump-target validation
// ---------------------------------------------------------------------------

TEST(Backend, OutputsBeyondRegisterFileRejected) {
  // Used to read past the register file (UB); now a MachineError up front,
  // in both engines.
  Program p;
  p.num_regs = 1;
  p.num_outputs = 3;
  p.code.push_back({Op::Halt, ArithOp::Add, 0, 0, 0, 0, 0, 0});
  EXPECT_THROW(run(p, {}), MachineError);
  EXPECT_THROW(run_reference(p, {}), MachineError);
}

TEST(Backend, InputsBeyondRegisterFileRejected) {
  Program p;
  p.num_regs = 1;
  p.num_inputs = 2;
  p.code.push_back({Op::Halt, ArithOp::Add, 0, 0, 0, 0, 0, 0});
  EXPECT_THROW(run(p, {Vec{1}, Vec{2}}), MachineError);
  EXPECT_THROW(run_reference(p, {Vec{1}, Vec{2}}), MachineError);
}

TEST(Backend, NotTakenBranchWithBadTargetRejected) {
  // The branch is never taken (register is non-empty), but the target is
  // out of range: previously this passed silently, now it is a
  // MachineError on both engines.
  Program p;
  p.num_regs = 1;
  p.num_inputs = 1;
  p.code.push_back({Op::GotoIfEmpty, ArithOp::Add, 0, 0, 0, 0, 0, 999});
  p.code.push_back({Op::Halt, ArithOp::Add, 0, 0, 0, 0, 0, 0});
  EXPECT_THROW(run(p, {Vec{5}}), MachineError);
  EXPECT_THROW(run_reference(p, {Vec{5}}), MachineError);
}

// ---------------------------------------------------------------------------
// fused elementwise groups
// ---------------------------------------------------------------------------

/// Annotate with liveness + a fusion plan, the way compile_nsc emits.
Program fuse_annotated(Assembler& a, std::size_t ins, std::size_t outs) {
  auto p = a.finish(ins, outs);
  opt::annotate_last_use(p);
  opt::annotate_fusion(p);
  return p;
}

/// Counters from a profiled run: differential identity alone cannot tell
/// whether the fused path actually executed (that's the point of
/// cost-model invisibility), so these assertions watch the engine.
EngineProfile fused_counters(const Program& p, const std::vector<Vec>& in,
                             bool parallel = false) {
  RunConfig cfg;
  cfg.profile = true;
  cfg.parallel_backend = parallel;
  EngineProfile eng;
  try {
    eng = run(p, in, cfg).engine;
  } catch (const Error&) {
    // Trapping runs surface no counters; callers asserting on traps use
    // expect_identical for the trap itself.
  }
  return eng;
}

TEST(Fusion, ArithChainFusesWithCounters) {
  Assembler a;
  a.reserve_regs(2);
  auto u = a.reg(), v = a.reg();
  a.arith(u, ArithOp::Add, 0, 1);
  a.arith(v, ArithOp::Mul, u, 0);
  a.arith(u, ArithOp::Monus, v, 1);
  a.arith(v, ArithOp::Rsh, u, 1);
  a.move(0, v);
  a.halt();
  auto p = fuse_annotated(a, 2, 1);
  ASSERT_EQ(p.fusion.size(), 1u);
  EXPECT_EQ(p.fusion[0].begin, 0u);
  EXPECT_EQ(p.fusion[0].end, 5u);
  for (std::size_t n : kSizes) {
    std::vector<Vec> in = {iota_mod(n, 1000), iota_mod(n, 60)};
    const EngineProfile eng = fused_counters(p, in);
    EXPECT_EQ(eng.fused_groups, 1u);
    EXPECT_EQ(eng.fused_instrs, 5u);
    EXPECT_GT(eng.fused_elided, 0u);
    EXPECT_EQ(eng.fused_fallbacks, 0u);
  }
  Assembler b;
  b.reserve_regs(2);
  auto u2 = b.reg(), v2 = b.reg();
  b.arith(u2, ArithOp::Add, 0, 1);
  b.arith(v2, ArithOp::Mul, u2, 0);
  b.arith(u2, ArithOp::Monus, v2, 1);
  b.arith(v2, ArithOp::Rsh, u2, 1);
  b.move(0, v2);
  b.halt();
  auto plain = b.finish(2, 1);
  for (std::size_t n : kSizes) {
    expect_identical(plain, {iota_mod(n, 1000), iota_mod(n, 60)});
  }
}

TEST(Fusion, EveryFusableOpcodeMix) {
  // One group spanning the full fusable ISA: Enumerate head, Arith body,
  // an elided Move, a mid-group ScanPlus (forces the serial-only path),
  // and a terminal Select.
  Assembler a;
  a.reserve_regs(1);
  auto e = a.reg(), u = a.reg(), v = a.reg();
  a.enumerate(e, 0);
  a.arith(u, ArithOp::Add, 0, e);
  a.move(v, u);
  a.scan_plus(u, v);
  a.arith(v, ArithOp::Monus, u, 0);
  a.select(0, v);
  a.halt();
  auto annotated = fuse_annotated(a, 1, 1);
  ASSERT_EQ(annotated.fusion.size(), 1u);
  EXPECT_TRUE(annotated.fusion[0].serial_only);
  EXPECT_TRUE(annotated.fusion[0].has_select);
  for (std::size_t n : kSizes) {
    Assembler b;
    b.reserve_regs(1);
    auto e2 = b.reg(), u2 = b.reg(), v2 = b.reg();
    b.enumerate(e2, 0);
    b.arith(u2, ArithOp::Add, 0, e2);
    b.move(v2, u2);
    b.scan_plus(u2, v2);
    b.arith(v2, ArithOp::Monus, u2, 0);
    b.select(0, v2);
    b.halt();
    auto p = b.finish(1, 1);
    expect_identical(p, {iota_mod(n, 97)});
  }
}

TEST(Fusion, TrapAtElementInsideGroup) {
  // Division by zero on the *third* instruction of a fused group, with
  // the poisoned element at the front, deep inside, and at the tail.
  // The fused attempt discards and the per-instruction replay must
  // charge the first two instructions and trap at the exact element.
  for (std::size_t poison : {std::size_t{0}, std::size_t{12345},
                             std::size_t{19999}}) {
    Assembler a;
    a.reserve_regs(2);
    auto u = a.reg(), v = a.reg();
    a.arith(u, ArithOp::Add, 0, 1);
    a.arith(v, ArithOp::Mul, u, 0);
    a.arith(u, ArithOp::Div, v, 1);
    a.move(0, u);
    a.halt();
    auto p = a.finish(2, 1);
    Vec num(20000, 7);
    Vec den(20000, 3);
    den[poison] = 0;
    // The identity assertions are the whole contract here: the fused
    // attempt discards its buffers and the per-instruction replay must
    // charge the first two instructions and trap at the exact element
    // with the exact message.  (A trapping run produces no RunResult,
    // so the fallback counter itself is not observable -- the healthy
    // variant below confirms this plan does take the fused path.)
    expect_identical(p, {num, den});
    Assembler b;
    b.reserve_regs(2);
    auto u2 = b.reg(), v2 = b.reg();
    b.arith(u2, ArithOp::Add, 0, 1);
    b.arith(v2, ArithOp::Mul, u2, 0);
    b.arith(u2, ArithOp::Div, v2, 1);
    b.move(0, u2);
    b.halt();
    auto annotated = fuse_annotated(b, 2, 1);
    ASSERT_EQ(annotated.fusion.size(), 1u);
    const EngineProfile healthy =
        fused_counters(annotated, {num, Vec(20000, 3)});
    EXPECT_EQ(healthy.fused_groups, 1u);
    EXPECT_EQ(healthy.fused_fallbacks, 0u);
  }
}

TEST(Fusion, ExtentMismatchFallsBack) {
  // Group inputs of unequal length: the fused entry check bounces the
  // group to per-instruction execution, which reproduces the unfused
  // length-mismatch trap on the first Arith.
  Assembler a;
  a.reserve_regs(2);
  auto u = a.reg(), v = a.reg();
  a.arith(u, ArithOp::Add, 0, 1);
  a.arith(v, ArithOp::Mul, u, 1);
  a.move(0, v);
  a.halt();
  auto p = a.finish(2, 1);
  expect_identical(p, {Vec(10, 1), Vec(11, 1)});
  expect_identical(p, {Vec{}, Vec{1}});
}

TEST(Fusion, AliasedDstAndSrc) {
  // Aliasing adversaries: dst == src arithmetic, dst == both srcs, a
  // self-Move inside the group, and ScanPlus over its own destination.
  Assembler a;
  a.reserve_regs(1);
  auto x = a.reg();
  a.arith(0, ArithOp::Add, 0, 0);
  a.move(x, x);
  a.arith(x, ArithOp::Mul, 0, 0);
  a.scan_plus(x, x);
  a.arith(0, ArithOp::Monus, x, 0);
  a.halt();
  auto p = a.finish(1, 1);
  for (std::size_t n : kSizes) expect_identical(p, {iota_mod(n, 50)});
}

TEST(Fusion, BudgetExpiryMidGroup) {
  // max_instructions lands in the middle of a group: the precheck
  // bounces to the per-instruction path, which throws FuelExhausted at
  // the same instruction as the reference engine.
  Assembler a;
  a.reserve_regs(2);
  auto u = a.reg(), v = a.reg();
  a.arith(u, ArithOp::Add, 0, 1);
  a.arith(v, ArithOp::Mul, u, 0);
  a.arith(u, ArithOp::Monus, v, 1);
  a.arith(v, ArithOp::Add, u, u);
  a.move(0, v);
  a.halt();
  auto p = a.finish(2, 1);
  opt::annotate_last_use(p);
  opt::annotate_fusion(p);
  ASSERT_EQ(p.fusion.size(), 1u);
  const std::vector<Vec> in = {iota_mod(100, 10), iota_mod(100, 10)};
  for (std::uint64_t budget : {1ull, 2ull, 4ull}) {
    RunConfig cfg;
    cfg.max_instructions = budget;
    std::string ref_err, v2_err;
    try {
      run_reference(p, in, cfg);
    } catch (const Error& e) {
      ref_err = std::string(typeid(e).name()) + ": " + e.what();
    }
    try {
      run(p, in, cfg);
    } catch (const Error& e) {
      v2_err = std::string(typeid(e).name()) + ": " + e.what();
    }
    EXPECT_FALSE(ref_err.empty()) << "budget " << budget;
    EXPECT_EQ(ref_err, v2_err) << "budget " << budget;
  }
}

TEST(Fusion, LoopBodyGroupCountsPerTrip) {
  // A fused group inside a natural loop executes once per trip; the
  // counters are dynamic, and the back-edge target breaks the group at
  // the loop head (control may re-enter there).
  Assembler a;
  auto acc = a.reg();
  auto n = a.reg();
  auto one = a.reg();
  auto nz = a.reg();
  auto t = a.reg();
  a.load_const(acc, 1);
  a.load_const(one, 1);
  auto top = a.fresh_label();
  auto done = a.fresh_label();
  a.bind(top);
  a.select(nz, n);
  a.jump_if_empty(nz, done);
  a.arith(t, ArithOp::Add, acc, acc);
  a.arith(acc, ArithOp::Add, t, t);
  a.arith(n, ArithOp::Monus, n, one);
  a.jump(top);
  a.bind(done);
  a.halt();
  auto p = a.finish(2, 1);
  expect_identical(p, {Vec{}, Vec{12}});
  Assembler b;
  auto acc2 = b.reg();
  auto n2 = b.reg();
  auto one2 = b.reg();
  auto nz2 = b.reg();
  auto t2 = b.reg();
  b.load_const(acc2, 1);
  b.load_const(one2, 1);
  auto top2 = b.fresh_label();
  auto done2 = b.fresh_label();
  b.bind(top2);
  b.select(nz2, n2);
  b.jump_if_empty(nz2, done2);
  b.arith(t2, ArithOp::Add, acc2, acc2);
  b.arith(acc2, ArithOp::Add, t2, t2);
  b.arith(n2, ArithOp::Monus, n2, one2);
  b.jump(top2);
  b.bind(done2);
  b.halt();
  auto annotated = fuse_annotated(b, 2, 1);
  if (!annotated.fusion.empty()) {
    const EngineProfile eng = fused_counters(annotated, {Vec{}, Vec{12}});
    EXPECT_EQ(eng.fused_groups, 12u);
  }
}

TEST(Fusion, AttributionStaysAbove95Percent) {
  // The profiling contract with fusion enabled: a compiled program keeps
  // >= 95% of executed instructions attributed to source lines (the CI
  // profile-smoke gate), because fused execution books each constituent
  // instruction against its own debug site.  Source attribution needs
  // the textual frontend -- lang-built trees carry no line:col.
  const front::SourceFile src("fusion_attr.nsc",
                              "fn main(xs : [nat]) : [nat] =\n"
                              "  let small = [x | x <- xs, x < 512] in\n"
                              "  [3 * v + 7 | v <- small]\n");
  const front::ResolvedModule mod = front::compile_file(src);
  const front::ResolvedFn& fn = mod.main();
  auto p = sa::compile_nsc(fn.fn);
  SplitMix64 rng(11);
  RunConfig cfg;
  cfg.profile = true;
  cfg.record_trace = true;
  const RunResult r = run(
      p, sa::encode_value(Value::nat_seq(rng.vec(5000, 1024)), fn.dom), cfg);
  EXPECT_GT(r.engine.fused_groups, 0u);
  const obs::Profile prof = obs::Profile::build(p, r);
  EXPECT_GE(prof.attributed_frac, 0.95);
}

// ---------------------------------------------------------------------------
// compiled corpus: T/W bit-identical at every OptLevel and WhileSchedule
// ---------------------------------------------------------------------------

const TypeRef N = Type::nat();
const TypeRef NSeq = Type::seq(Type::nat());

void differential_compiled(const L::FuncRef& f,
                           const std::vector<ValueRef>& args) {
  auto [dom, cod] = L::check_func(f);
  for (auto level : {opt::OptLevel::O0, opt::OptLevel::O1, opt::OptLevel::O2}) {
    for (auto sched :
         {opt::WhileSchedule::naive(), opt::WhileSchedule::eager(),
          opt::WhileSchedule::staged({1, 2})}) {
      auto p = sa::compile_nsc(f, level, sched);
      for (const auto& arg : args) {
        expect_identical(p, sa::encode_value(arg, dom));
      }
    }
  }
}

TEST(CompiledCorpus, IndexProgram) {
  std::vector<std::uint64_t> c(300);
  for (std::size_t i = 0; i < c.size(); ++i) c[i] = 3 * i;
  differential_compiled(
      P::index(N),
      {Value::pair(Value::nat_seq(c), Value::nat_seq({0, 100, 299}))});
}

TEST(CompiledCorpus, FilterThenMap) {
  auto keep = L::lam(N, [](L::TermRef v) { return L::lt(v, L::nat(512)); });
  auto dbl = L::lam(N, [](L::TermRef v) { return L::mul(v, L::nat(2)); });
  auto f = L::lam(NSeq, [&](L::TermRef x) {
    return L::apply(L::map_f(dbl), L::apply(P::filter(keep, N), x));
  });
  SplitMix64 rng(5);
  differential_compiled(f, {Value::nat_seq(rng.vec(400, 1024)),
                            Value::nat_seq({}), Value::nat_seq({7})});
}

TEST(CompiledCorpus, SumViaWhile) {
  differential_compiled(
      P::sum_nats(),
      {Value::nat_seq(std::vector<std::uint64_t>(200, 3)),
       Value::nat_seq({})});
}

TEST(CompiledCorpus, MappedWhileStraggler) {
  // The Lemma 7.2 adversary: exercises the staged-schedule emission,
  // pack/replay, and a trapping variant (division by zero inside the
  // mapped step).
  auto pred = L::lam(N, [](L::TermRef v) { return L::lt(L::nat(0), v); });
  auto step = L::lam(N, [](L::TermRef v) { return L::monus_t(v, L::nat(1)); });
  auto f = L::lam(NSeq, [&](L::TermRef x) {
    return L::apply(
        L::map_f(L::lam(
            N, [&](L::TermRef v) { return L::apply(L::while_f(pred, step), v); })),
        x);
  });
  std::vector<std::uint64_t> counts(120, 1);
  for (std::uint64_t j = 0; j < 10; ++j) counts[110 + j] = j + 2;
  differential_compiled(f, {Value::nat_seq(counts)});
}

TEST(CompiledCorpus, TrappingDivide) {
  auto f = L::lam(NSeq, [](L::TermRef x) {
    return L::apply(
        L::map_f(L::lam(N, [](L::TermRef v) { return L::div_t(L::nat(100), v); })),
        x);
  });
  differential_compiled(f, {Value::nat_seq({5, 2, 10}),
                            Value::nat_seq({5, 0, 10})});  // second traps
}

}  // namespace
}  // namespace nsc::bvram
