// Shared corpus discovery for the frontend test suites: every .nsc file
// under tests/corpus/ (NSCC_CORPUS_DIR is injected by tests/CMakeLists),
// sorted for deterministic iteration order.
#pragma once

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

namespace nsc::testing {

inline std::vector<std::string> corpus_files() {
  std::vector<std::string> files;
  for (const auto& entry :
       std::filesystem::directory_iterator(NSCC_CORPUS_DIR)) {
    if (entry.path().extension() == ".nsc") {
      files.push_back(entry.path().string());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

}  // namespace nsc::testing
