// Tests for the section 5 algorithms: Valiant's merge and mergesort
// (Figures 1-3) evaluated by the reference map-recursion semantics, plus
// the quicksort schema-g example.  Includes randomized correctness and the
// T = O(log n log log n) shape check.
#include <gtest/gtest.h>

#include <algorithm>

#include "algorithms/valiant.hpp"
#include "nsc/maprec.hpp"
#include "pram/pram.hpp"
#include "support/prng.hpp"

namespace nsc::alg {
namespace {

using nsc::SplitMix64;
using nsc::Value;

ValueRef vpair(const std::vector<std::uint64_t>& a,
               const std::vector<std::uint64_t>& b) {
  return Value::pair(Value::nat_seq(a), Value::nat_seq(b));
}

TEST(ValiantMerge, SmallCases) {
  EXPECT_EQ(eval_valiant_merge(vpair({}, {})).value->as_nat_vector(),
            (std::vector<std::uint64_t>{}));
  EXPECT_EQ(eval_valiant_merge(vpair({1}, {})).value->as_nat_vector(),
            (std::vector<std::uint64_t>{1}));
  EXPECT_EQ(eval_valiant_merge(vpair({}, {2, 3})).value->as_nat_vector(),
            (std::vector<std::uint64_t>{2, 3}));
  EXPECT_EQ(eval_valiant_merge(vpair({2, 4, 6}, {1, 3, 5, 7}))
                .value->as_nat_vector(),
            (std::vector<std::uint64_t>{1, 2, 3, 4, 5, 6, 7}));
}

TEST(ValiantMerge, TriggersRecursiveCase) {
  // |A| > 2 forces the sqrt-sampling divide.
  std::vector<std::uint64_t> a{1, 4, 7, 9, 12, 15, 18, 21, 30};
  std::vector<std::uint64_t> b{0, 2, 5, 8, 10, 11, 13, 20, 22, 25, 31, 40};
  std::vector<std::uint64_t> want;
  std::merge(a.begin(), a.end(), b.begin(), b.end(), std::back_inserter(want));
  EXPECT_EQ(eval_valiant_merge(vpair(a, b)).value->as_nat_vector(), want);
}

TEST(ValiantMerge, Randomized) {
  SplitMix64 rng(414);
  for (int trial = 0; trial < 30; ++trial) {
    auto a = rng.vec(rng.below(40), 200);
    auto b = rng.vec(rng.below(40), 200);
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    std::vector<std::uint64_t> want;
    std::merge(a.begin(), a.end(), b.begin(), b.end(),
               std::back_inserter(want));
    EXPECT_EQ(eval_valiant_merge(vpair(a, b)).value->as_nat_vector(), want)
        << "trial " << trial;
  }
}

TEST(ValiantMerge, DuplicateHeavy) {
  std::vector<std::uint64_t> a{3, 3, 3, 3, 3, 3};
  std::vector<std::uint64_t> b{3, 3, 3};
  auto got = eval_valiant_merge(vpair(a, b)).value->as_nat_vector();
  EXPECT_EQ(got, (std::vector<std::uint64_t>(9, 3)));
}

TEST(ValiantMerge, UnboundedArityRejectsTranslation) {
  EXPECT_THROW(lang::translate_maprec(valiant_merge()), Error);
}

TEST(Mergesort, SortsRandom) {
  SplitMix64 rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    auto v = rng.vec(rng.below(60), 1000);
    auto want = v;
    std::sort(want.begin(), want.end());
    auto got = eval_valiant_mergesort(Value::nat_seq(v)).value;
    EXPECT_EQ(got->as_nat_vector(), want) << "trial " << trial;
  }
}

TEST(Mergesort, EdgeCases) {
  EXPECT_EQ(eval_valiant_mergesort(Value::nat_seq({})).value->length(), 0u);
  EXPECT_EQ(eval_valiant_mergesort(Value::nat_seq({5})).value->as_nat_vector(),
            (std::vector<std::uint64_t>{5}));
  EXPECT_EQ(
      eval_valiant_mergesort(Value::nat_seq({2, 1})).value->as_nat_vector(),
      (std::vector<std::uint64_t>{1, 2}));
  // Already sorted / reverse sorted.
  EXPECT_EQ(eval_valiant_mergesort(Value::nat_seq({1, 2, 3, 4, 5, 6, 7, 8}))
                .value->as_nat_vector(),
            (std::vector<std::uint64_t>{1, 2, 3, 4, 5, 6, 7, 8}));
  EXPECT_EQ(eval_valiant_mergesort(Value::nat_seq({8, 7, 6, 5, 4, 3, 2, 1}))
                .value->as_nat_vector(),
            (std::vector<std::uint64_t>{1, 2, 3, 4, 5, 6, 7, 8}));
}

TEST(Mergesort, TimeIsPolylog) {
  // T = O(log n log log n): time should grow far slower than n.
  SplitMix64 rng(7);
  auto t_of = [&](std::size_t n) {
    auto v = rng.vec(n, 1u << 20);
    return eval_valiant_mergesort(Value::nat_seq(v)).cost;
  };
  auto c128 = t_of(128);
  auto c1024 = t_of(1024);
  // 8x the data: time should grow by well under 3x (polylog), work by
  // roughly 8x-13x (n log n).
  EXPECT_LT(c1024.time, c128.time * 3);
  EXPECT_GT(c1024.work, c128.work * 6);
}

TEST(Quicksort, SortsAndTranslates) {
  auto q = quicksort();
  SplitMix64 rng(55);
  for (int trial = 0; trial < 10; ++trial) {
    auto v = rng.vec(rng.below(20), 40);  // duplicates likely
    auto want = v;
    std::sort(want.begin(), want.end());
    auto got = lang::eval_maprec(q, Value::nat_seq(v)).value;
    EXPECT_EQ(got->as_nat_vector(), want) << "trial " << trial;
  }
  // Bounded arity: the Theorem 4.2 translation applies.
  auto translated = lang::translate_maprec(q);
  auto got = lang::apply_fn(translated, Value::nat_seq({5, 3, 8, 3, 1}));
  EXPECT_EQ(got.value->as_nat_vector(),
            (std::vector<std::uint64_t>{1, 3, 3, 5, 8}));
}

// ---------------------------------------------------------------------------
// CREW PRAM (Prop 3.2)
// ---------------------------------------------------------------------------

TEST(Pram, ConcurrentReadsAllowed) {
  pram::CrewPram m(8, 4);
  m.mem(0) = 7;
  std::vector<pram::ProcOp> ops(4);
  for (std::size_t i = 0; i < 4; ++i) {
    ops[i] = {pram::ProcOpKind::CopyAdd, 1 + i, 0, std::size_t(-1), 0, 0};
  }
  m.step(ops);
  for (std::size_t i = 1; i <= 4; ++i) EXPECT_EQ(m.mem(i), 7u);
  EXPECT_EQ(m.steps(), 1u);
}

TEST(Pram, ConcurrentWritesDetected) {
  pram::CrewPram m(4, 2);
  std::vector<pram::ProcOp> ops(2);
  ops[0] = {pram::ProcOpKind::CopyAdd, 3, 0, std::size_t(-1), 0, 0};
  ops[1] = {pram::ProcOpKind::CopyAdd, 3, 1, std::size_t(-1), 0, 0};
  EXPECT_THROW(m.step(ops), Error);
}

TEST(Pram, ScanPrimitiveIsOneStep) {
  pram::CrewPram m(8, 2);
  for (std::size_t i = 0; i < 5; ++i) m.mem(i) = i + 1;  // 1..5
  pram::ProcOp scan;
  scan.kind = pram::ProcOpKind::Scan;
  scan.range_begin = 0;
  scan.range_end = 5;
  m.step({scan});
  EXPECT_EQ(m.steps(), 1u);
  EXPECT_EQ(m.mem(0), 0u);
  EXPECT_EQ(m.mem(4), 10u);  // 1+2+3+4
}

TEST(Pram, TooManyOpsRejected) {
  pram::CrewPram m(4, 1);
  std::vector<pram::ProcOp> ops(2);
  EXPECT_THROW(m.step(ops), Error);
}

TEST(Pram, ScheduledTimeMatchesBrent) {
  std::vector<bvram::TraceEntry> trace;
  for (int i = 0; i < 50; ++i) {
    trace.push_back({bvram::Op::Arith, 1000, 1000});
  }
  // T = 50, W = 50'000.
  for (std::size_t p : {1u, 4u, 64u, 1024u}) {
    auto sched = pram::scheduled_time(trace, p);
    auto bound = pram::brent_bound(50, 50000, p);
    EXPECT_GE(sched, bound / 4) << p;
    EXPECT_LE(sched, bound * 4 + 100) << p;
  }
  // More processors never slows it down.
  EXPECT_GE(pram::scheduled_time(trace, 1), pram::scheduled_time(trace, 16));
  EXPECT_GE(pram::scheduled_time(trace, 16),
            pram::scheduled_time(trace, 1024));
}

}  // namespace
}  // namespace nsc::alg
