// Tests for the NSC textual frontend (src/front/): lexer locations,
// printer round-trips (parse(print(m)) == m over the whole corpus and
// over precedence-heavy expressions), golden line:col diagnostics for
// representative parse and type errors, the docs/nsc-language.md drift
// check, and the parser robustness smoke (random token-stream mutations
// of corpus files must produce a FrontError diagnostic or parse cleanly
// -- never crash, assert, or leak another exception type; run under
// ASan/UBSan in CI).
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "front/front.hpp"
#include "nsc/eval.hpp"
#include "support/prng.hpp"
#include "corpus_files.hpp"

namespace nsc::front {
namespace {

using nsc::testing::corpus_files;

std::string first_line(const std::string& s) {
  const std::size_t nl = s.find('\n');
  return nl == std::string::npos ? s : s.substr(0, nl);
}

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

TEST(Lexer, TracksLineAndColumn) {
  SourceFile src("t.nsc", "fn f(x : nat) =\n  x + 10 -- tail\n");
  const auto toks = lex(src);
  ASSERT_GE(toks.size(), 10u);
  EXPECT_EQ(toks[0].kind, Tok::KwFn);
  EXPECT_EQ(toks[0].loc.line, 1u);
  EXPECT_EQ(toks[0].loc.col, 1u);
  EXPECT_EQ(toks[1].kind, Tok::Ident);
  EXPECT_EQ(toks[1].text, "f");
  EXPECT_EQ(toks[1].loc.col, 4u);
  // "x" on line 2 at col 3; the comment disappears.
  bool saw_x2 = false;
  for (const auto& t : toks) {
    if (t.kind == Tok::Ident && t.text == "x" && t.loc.line == 2) {
      EXPECT_EQ(t.loc.col, 3u);
      saw_x2 = true;
    }
    EXPECT_NE(t.kind, Tok::Minus);  // '--' comment, not minus
  }
  EXPECT_TRUE(saw_x2);
  EXPECT_EQ(toks.back().kind, Tok::Eof);
}

TEST(Lexer, NumberOverflowIsDiagnosed) {
  SourceFile src("t.nsc", "fn f(x : nat) = 99999999999999999999999");
  try {
    lex(src);
    FAIL() << "expected FrontError";
  } catch (const FrontError& e) {
    EXPECT_EQ(e.diag().loc.line, 1u);
    EXPECT_EQ(e.diag().loc.col, 17u);
    EXPECT_NE(std::string(e.what()).find("does not fit"), std::string::npos);
  }
}

TEST(Lexer, SpellingsRoundTrip) {
  // Re-lexing the spellings reproduces the token kinds -- the property the
  // mutation smoke test's re-rendering relies on.
  SourceFile src("t.nsc",
                 "fn f(x : nat * bool) = [x | y <- z, a <= b] ++ c >> 2");
  const auto toks = lex(src);
  std::string rendered;
  for (const auto& t : toks) {
    rendered += t.spelling();
    rendered += ' ';
  }
  const auto relexed = lex(SourceFile("t.nsc", rendered));
  ASSERT_EQ(relexed.size(), toks.size());
  for (std::size_t i = 0; i < toks.size(); ++i) {
    EXPECT_EQ(relexed[i].kind, toks[i].kind) << "token " << i;
  }
}

// ---------------------------------------------------------------------------
// Printer round-trip
// ---------------------------------------------------------------------------

TEST(RoundTrip, WholeCorpus) {
  const auto files = corpus_files();
  ASSERT_GE(files.size(), 10u) << "corpus went missing";
  for (const auto& path : files) {
    SCOPED_TRACE(path);
    const SourceFile src = load_file(path);
    const Module m = parse_module(src);
    const std::string printed = print_module(m);
    const Module again = parse_module(SourceFile(path + "<printed>", printed));
    EXPECT_TRUE(equal(m, again)) << printed;
    // And printing is canonical: a second round is byte-identical.
    EXPECT_EQ(printed, print_module(again));
  }
}

TEST(RoundTrip, CorpusStillResolvesAfterPrinting) {
  for (const auto& path : corpus_files()) {
    SCOPED_TRACE(path);
    const SourceFile src = load_file(path);
    const std::string printed = print_module(parse_module(src));
    const SourceFile psrc(path + "<printed>", printed);
    EXPECT_NO_THROW({ resolve(parse_module(psrc), psrc); });
  }
}

TEST(RoundTrip, PrecedenceHeavyExpressions) {
  const char* exprs[] = {
      "a + b * c",
      "(a + b) * c",
      "a - b - c",
      "a - (b - c)",
      "a >> b % c * d",
      "x ++ y ++ [1, 2]",
      "(x ++ y) ++ z",
      "a < b && c == d || !e",
      "!(a < b)",
      "(a || b) && c",
      "[x * x | x <- xs, x % 2 == 0]",
      "[case s of inl x => x | inr y => y + 1 | s <- ss]",
      "(if a < 1 then b else c) + 2",
      "let u = while s = (xs, 0); fst(s) == snd(s); s in fst(u)",
      "inl[nat + bool](inr[[nat]](x))",
      "f(a, (b, c), [d])",
      "(empty[nat * (nat + unit)], omega[[bool]])",
      "zip(enumerate(k), map(square, k))",
  };
  for (const char* s : exprs) {
    SCOPED_TRACE(s);
    const SourceFile src("e.nsc", s);
    const ExprPtr e = parse_expression(src);
    const std::string printed = print_expr(e);
    const ExprPtr again = parse_expression(SourceFile("e2.nsc", printed));
    EXPECT_TRUE(equal(e, again)) << "printed as: " << printed;
  }
}

TEST(RoundTrip, PrinterDropsRedundantParens) {
  const SourceFile src("e.nsc", "((a)) + (b * c)");
  EXPECT_EQ(print_expr(parse_expression(src)), "a + b * c");
}

// ---------------------------------------------------------------------------
// Golden diagnostics: exact file:line:col + message
// ---------------------------------------------------------------------------

std::string diagnose(const std::string& text) {
  const SourceFile src("g.nsc", text);
  try {
    const Module m = parse_module(src);
    resolve(m, src);
  } catch (const FrontError& e) {
    return first_line(e.what());
  }
  return "(no error)";
}

TEST(Diagnostics, Golden) {
  struct Case {
    const char* name;
    const char* source;
    const char* expect;
  };
  const Case cases[] = {
      {"lex: unknown character",
       "fn f(x : nat) = x ? 2",
       "g.nsc:1:19: error: unexpected character '?'"},
      {"parse: unclosed parameter list",
       "fn f(x : nat = x",
       "g.nsc:1:14: error: unexpected '=' after parameter list; expected ')'"},
      {"parse: empty sequence literal",
       "fn f(x : nat) = length([])",
       "g.nsc:1:25: error: an empty sequence literal has no element type; "
       "write empty[t] instead of []"},
      {"parse: chained comparison",
       "fn f(x : nat) = x < 2 < 3",
       "g.nsc:1:23: error: comparison operators do not chain; parenthesize "
       "the comparison"},
      {"parse: missing operand",
       "fn f(x : nat) = x +\nfn g(y : nat) = y",
       "g.nsc:2:1: error: unexpected 'fn' where an expression should be; "
       "expected number, identifier, '(', '[', 'let', 'if', 'while', 'case' "
       "or '\\'"},
      {"parse: missing type",
       "fn f(x : ) = x",
       "g.nsc:1:10: error: unexpected ')' where a type should be; expected "
       "'nat', 'unit', 'bool', '[' or '('"},
      {"type: unbound variable",
       "fn f(x : nat) = x + y",
       "g.nsc:1:21: error: unbound variable 'y'"},
      {"type: if branches disagree",
       "fn f(x : nat) = if x < 1 then [x] else x",
       "g.nsc:1:17: error: if branches have different types: [N] vs N"},
      {"type: arith on a sequence",
       "fn f(xs : [nat]) = xs + 1",
       "g.nsc:1:20: error: left operand of '+' must be nat, got [N]"},
      {"type: first-order violation",
       "fn f(x : nat) = \\y : nat. y",
       "g.nsc:1:17: error: a lambda may only appear as a function argument "
       "(NSC is first-order)"},
      {"type: forward reference",
       "fn f(x : nat) = g(x)\nfn g(x : nat) = x",
       "g.nsc:1:17: error: function 'g' is defined later in the file (NSC "
       "surface modules resolve top-down)"},
      {"type: while step changes the state type",
       "fn f(x : nat) = while s = x; s < 10; [s]",
       "g.nsc:1:38: error: while step has type [N] but the state 's' has "
       "type N"},
      {"type: input does not match main",
       "fn main(xs : [nat]) = xs\ninput 3",
       "g.nsc:2:1: error: input value has type N but main expects [N]"},
      {"type: wrong argument type",
       "fn f(a : nat, b : [nat]) = a + length(b)\n"
       "fn main(x : nat) = f(x, x)",
       "g.nsc:2:25: error: argument 2 of 'f' has type N but the function "
       "expects [N]"},
  };
  for (const auto& c : cases) {
    SCOPED_TRACE(c.name);
    EXPECT_EQ(diagnose(c.source), c.expect);
  }
}

TEST(Diagnostics, SnippetHasCaret) {
  const SourceFile src("g.nsc", "fn f(x : nat) =\n  x + yy\n");
  try {
    resolve(parse_module(src), src);
    FAIL() << "expected FrontError";
  } catch (const FrontError& e) {
    EXPECT_EQ(std::string(e.what()),
              "g.nsc:2:7: error: unbound variable 'yy'\n"
              "    x + yy\n"
              "        ^");
    EXPECT_EQ(e.diag().loc.line, 2u);
    EXPECT_EQ(e.diag().loc.col, 7u);
    EXPECT_EQ(e.diag().source_line, "  x + yy");
  }
}

TEST(Diagnostics, ExpectedTokenSetIsStructured) {
  const SourceFile src("g.nsc", "fn f(x : ) = x");
  try {
    parse_module(src);
    FAIL() << "expected FrontError";
  } catch (const FrontError& e) {
    const auto& exp = e.diag().expected;
    ASSERT_EQ(exp.size(), 5u);
    EXPECT_EQ(exp[0], "'nat'");
    EXPECT_EQ(exp[4], "'('");
  }
}

// ---------------------------------------------------------------------------
// Resolver semantics spot checks
// ---------------------------------------------------------------------------

TEST(Resolve, ComprehensionMatchesMapFilter) {
  const char* text =
      "fn a(xs : [nat]) = [x * x | x <- xs, 0 < x]\n"
      "fn b(xs : [nat]) = map(\\x : nat. x * x, "
      "filter(\\x : nat. 0 < x, xs))\n";
  const SourceFile src("r.nsc", text);
  const ResolvedModule mod = resolve(parse_module(src), src);
  const auto in = Value::nat_seq({3, 0, 1, 4, 0, 2});
  const auto ra = lang::apply_fn(mod.find("a")->fn, in);
  const auto rb = lang::apply_fn(mod.find("b")->fn, in);
  EXPECT_TRUE(Value::equal(ra.value, rb.value));
  EXPECT_EQ(ra.cost.time, rb.cost.time);
  EXPECT_EQ(ra.cost.work, rb.cost.work);
}

TEST(Resolve, MultiParamFunctionsTupleRight) {
  const char* text =
      "fn f(a : nat, b : nat, c : [nat]) = a * 100 + b * 10 + length(c)\n"
      "fn main(x : nat) = f(x, x + 1, [x])\n";
  const SourceFile src("r.nsc", text);
  const ResolvedModule mod = resolve(parse_module(src), src);
  EXPECT_EQ(mod.find("f")->dom->show(), "(N x (N x [N]))");
  const auto r = lang::apply_fn(mod.main().fn, Value::nat(4));
  EXPECT_EQ(r.value->as_nat(), 4 * 100 + 5 * 10 + 1u);
}

TEST(Resolve, BuiltinNameInFunctionPosition) {
  // Eta-expansion: map(sum, db) == [sum(d) | d <- db].
  const char* text = "fn main(db : [[nat]]) = map(sum, db)\n";
  const SourceFile src("r.nsc", text);
  const ResolvedModule mod = resolve(parse_module(src), src);
  const auto db = Value::seq({Value::nat_seq({1, 2, 3}), Value::nat_seq({}),
                              Value::nat_seq({10, 20})});
  const auto r = lang::apply_fn(mod.main().fn, db);
  EXPECT_TRUE(Value::equal(r.value, Value::nat_seq({6, 0, 30})));
}

TEST(Resolve, ShadowingRestoresOuterBinding) {
  const char* text =
      "fn main(x : nat) = let y = x + 1 in (let y = [x] in length(y)) + y\n";
  const SourceFile src("r.nsc", text);
  const ResolvedModule mod = resolve(parse_module(src), src);
  const auto r = lang::apply_fn(mod.main().fn, Value::nat(5));
  EXPECT_EQ(r.value->as_nat(), 1 + 6u);
}

TEST(Resolve, BuiltinNamesAreReserved) {
  EXPECT_EQ(diagnose("fn sum(x : nat) = x"),
            "g.nsc:1:1: error: cannot define function 'sum': the name is a "
            "builtin");
  EXPECT_TRUE(is_builtin_function("sum"));
  EXPECT_FALSE(is_builtin_function("main"));
}

// ---------------------------------------------------------------------------
// Documentation drift
// ---------------------------------------------------------------------------

TEST(Docs, LanguageReferenceMatchesCheckedInFile) {
  const std::string path = std::string(NSCC_REPO_DIR) + "/docs/nsc-language.md";
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in) << "missing " << path
                  << " -- regenerate with: nscc doc > docs/nsc-language.md";
  std::ostringstream text;
  text << in.rdbuf();
  EXPECT_EQ(text.str(), language_reference())
      << "docs/nsc-language.md drifted from front::language_reference(); "
         "regenerate with: nscc doc > docs/nsc-language.md";
}

// ---------------------------------------------------------------------------
// Robustness: mutated token streams never crash the frontend
// ---------------------------------------------------------------------------

TEST(Robustness, MutatedCorpusNeverCrashes) {
  // Lex every corpus file, apply random token-stream mutations (drop,
  // duplicate, swap, replace), re-render as text, and push the result
  // through the full frontend.  Outcomes are binary: a clean parse+resolve
  // or a FrontError diagnostic.  Any other exception -- or a crash, which
  // ASan/UBSan in CI would turn into a hard failure -- fails the test.
  SplitMix64 rng(20260727);
  const char* extra_spellings[] = {
      "fn", "input", "let", "in", "if", "then", "else", "while", "case",
      "of", "inl", "inr", "(", ")", "[", "]", ",", ";", ":", ".", "|",
      "\\", "=>", "<-", "=", "+", "-", "*", "/", "%", ">>", "++", "==",
      "!=", "<", "<=", ">", ">=", "&&", "||", "!", "0",
      "18446744073709551615", "xyz", "empty", "omega", "nat", "bool",
      "unit", "true", "false", "map", "filter", "sum", "main",
  };
  std::size_t diagnostics = 0, clean = 0;
  for (const auto& path : corpus_files()) {
    const SourceFile orig = load_file(path);
    const std::vector<Token> toks = lex(orig);
    const std::size_t n = toks.size();  // includes Eof
    for (int trial = 0; trial < 250; ++trial) {
      std::vector<std::string> spellings;
      spellings.reserve(n);
      for (const auto& t : toks) {
        if (t.kind != Tok::Eof) spellings.push_back(t.spelling());
      }
      // 1-4 random mutations.
      const int mutations = 1 + static_cast<int>(rng.below(4));
      for (int mu = 0; mu < mutations && !spellings.empty(); ++mu) {
        const std::size_t at = rng.below(spellings.size());
        switch (rng.below(4)) {
          case 0:
            spellings.erase(spellings.begin() + static_cast<long>(at));
            break;
          case 1:
            spellings.insert(spellings.begin() + static_cast<long>(at),
                             spellings[at]);
            break;
          case 2:
            std::swap(spellings[at], spellings[rng.below(spellings.size())]);
            break;
          default:
            spellings[at] = extra_spellings[rng.below(
                sizeof(extra_spellings) / sizeof(extra_spellings[0]))];
            break;
        }
      }
      std::string text;
      for (const auto& s : spellings) {
        text += s;
        text += ' ';
      }
      const SourceFile src(path + "<mutated>", text);
      try {
        const Module m = parse_module(src);
        resolve(m, src);
        ++clean;
      } catch (const FrontError&) {
        ++diagnostics;
      }
      // Anything else propagates and fails the test.
    }
  }
  // The mutations overwhelmingly produce diagnostics; both outcomes occur.
  EXPECT_GT(diagnostics, 0u);
  SUCCEED() << diagnostics << " diagnostics, " << clean << " clean parses";
}

}  // namespace
}  // namespace nsc::front
