// Unit tests for the object model: the type grammar, S-objects, the
// Definition 3.1 size measure, conformance, and random generation.
#include <gtest/gtest.h>

#include "object/random.hpp"
#include "object/type.hpp"
#include "object/value.hpp"
#include "support/error.hpp"
#include "support/prng.hpp"

namespace nsc {
namespace {

TEST(Type, Show) {
  EXPECT_EQ(Type::unit()->show(), "unit");
  EXPECT_EQ(Type::nat()->show(), "N");
  EXPECT_EQ(Type::boolean()->show(), "B");
  EXPECT_EQ(Type::seq(Type::nat())->show(), "[N]");
  EXPECT_EQ(Type::prod(Type::nat(), Type::unit())->show(), "(N x unit)");
  EXPECT_EQ(Type::sum(Type::nat(), Type::nat())->show(), "(N + N)");
}

TEST(Type, StructuralEquality) {
  auto a = Type::seq(Type::prod(Type::nat(), Type::boolean()));
  auto b = Type::seq(Type::prod(Type::nat(), Type::boolean()));
  EXPECT_TRUE(Type::equal(a, b));
  EXPECT_FALSE(Type::equal(a, Type::seq(Type::nat())));
}

TEST(Type, ScalarPredicate) {
  EXPECT_TRUE(Type::unit()->is_scalar());
  EXPECT_TRUE(Type::nat()->is_scalar());
  EXPECT_TRUE(Type::boolean()->is_scalar());
  EXPECT_TRUE(Type::prod(Type::nat(), Type::boolean())->is_scalar());
  EXPECT_FALSE(Type::seq(Type::nat())->is_scalar());
  EXPECT_FALSE(Type::prod(Type::seq(Type::nat()), Type::nat())->is_scalar());
}

TEST(Type, FlatPredicate) {
  // Appendix D: t ::= unit | [s] | t x t | t + t with s scalar.
  EXPECT_TRUE(Type::unit()->is_flat());
  EXPECT_FALSE(Type::nat()->is_flat());
  EXPECT_TRUE(Type::seq(Type::nat())->is_flat());
  EXPECT_TRUE(Type::seq(Type::sum(Type::nat(), Type::unit()))->is_flat());
  EXPECT_TRUE(
      Type::prod(Type::seq(Type::nat()), Type::seq(Type::nat()))->is_flat());
  EXPECT_FALSE(Type::seq(Type::seq(Type::nat()))->is_flat());
}

TEST(Type, AccessorsThrowOnWrongKind) {
  EXPECT_THROW(Type::nat()->left(), TypeError);
  EXPECT_THROW(Type::nat()->elem(), TypeError);
  EXPECT_THROW(Type::prod(Type::nat(), Type::nat())->elem(), TypeError);
}

TEST(Value, SizesMatchDefinition31) {
  // size(()) = size(n) = 1
  EXPECT_EQ(Value::unit()->size(), 1u);
  EXPECT_EQ(Value::nat(123456)->size(), 1u);
  // size((C, D)) = 1 + size(C) + size(D)
  EXPECT_EQ(Value::pair(Value::nat(1), Value::nat(2))->size(), 3u);
  // size(in_i(C)) = 1 + size(C)
  EXPECT_EQ(Value::in1(Value::unit())->size(), 2u);
  EXPECT_EQ(Value::in2(Value::nat(9))->size(), 2u);
  // size([C...]) = 1 + sum size(C_i)
  EXPECT_EQ(Value::empty_seq()->size(), 1u);
  EXPECT_EQ(Value::nat_seq({1, 2, 3})->size(), 4u);
  auto nested = Value::seq({Value::nat_seq({1, 2}), Value::nat_seq({})});
  EXPECT_EQ(nested->size(), 1u + 3u + 1u);
}

TEST(Value, BooleanEncoding) {
  EXPECT_TRUE(Value::boolean(true)->as_bool());
  EXPECT_FALSE(Value::boolean(false)->as_bool());
  EXPECT_EQ(Value::boolean(true)->show(), "true");
  EXPECT_EQ(Value::boolean(false)->show(), "false");
  EXPECT_THROW(Value::nat(0)->as_bool(), EvalError);
}

TEST(Value, Equality) {
  auto a = Value::seq({Value::pair(Value::nat(1), Value::unit())});
  auto b = Value::seq({Value::pair(Value::nat(1), Value::unit())});
  auto c = Value::seq({Value::pair(Value::nat(2), Value::unit())});
  EXPECT_TRUE(Value::equal(a, b));
  EXPECT_FALSE(Value::equal(a, c));
  EXPECT_FALSE(Value::equal(a, Value::empty_seq()));
}

TEST(Value, AccessorsThrow) {
  EXPECT_THROW(Value::unit()->as_nat(), EvalError);
  EXPECT_THROW(Value::nat(1)->first(), EvalError);
  EXPECT_THROW(Value::nat(1)->elems(), EvalError);
  EXPECT_THROW(Value::unit()->injected(), EvalError);
}

TEST(Value, NatVectorRoundTrip) {
  std::vector<std::uint64_t> ns{5, 0, 7};
  EXPECT_EQ(Value::nat_seq(ns)->as_nat_vector(), ns);
  EXPECT_THROW(Value::seq({Value::unit()})->as_nat_vector(), EvalError);
}

TEST(Value, Conformance) {
  auto t = Type::seq(Type::sum(Type::nat(), Type::unit()));
  auto good = Value::seq({Value::in1(Value::nat(3)), Value::in2(Value::unit())});
  auto bad = Value::seq({Value::in1(Value::unit())});
  EXPECT_TRUE(Value::conforms(*good, *t));
  EXPECT_FALSE(Value::conforms(*bad, *t));
  EXPECT_TRUE(Value::conforms(*Value::boolean(true), *Type::boolean()));
}

TEST(RandomValue, ConformsToType) {
  SplitMix64 rng(123);
  auto t = Type::seq(Type::prod(
      Type::sum(Type::nat(), Type::seq(Type::nat())), Type::boolean()));
  for (int i = 0; i < 50; ++i) {
    auto v = random_value(*t, rng);
    EXPECT_TRUE(Value::conforms(*v, *t));
  }
}

TEST(RandomValue, Deterministic) {
  SplitMix64 a(5), b(5);
  auto t = Type::seq(Type::nat());
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(Value::equal(random_value(*t, a), random_value(*t, b)));
  }
}

}  // namespace
}  // namespace nsc
