// The lifted-while schedules (Lemma 7.2's while case, opt::WhileSchedule):
// differential tests that naive / eager / staged(eps) emissions agree
// exactly -- values AND traps -- on random well-typed inputs at every opt
// level, that the staged register file is independent of eps, and that on
// the straggler adversary the staged schedule does strictly less work than
// the naive one while the naive ratio keeps growing.
#include <gtest/gtest.h>

#include "nsc/build.hpp"
#include "nsc/prelude.hpp"
#include "nsc/typecheck.hpp"
#include "object/random.hpp"
#include "opt/opt.hpp"
#include "sa/compile.hpp"
#include "support/checked.hpp"
#include "support/prng.hpp"

namespace nsc::opt {
namespace {

namespace L = nsc::lang;
namespace P = nsc::lang::prelude;
using bvram::Program;
using nsc::SplitMix64;
using nsc::Type;
using nsc::Value;

const TypeRef N = Type::nat();
const TypeRef NSeq = Type::seq(Type::nat());
const TypeRef NN = Type::prod(N, N);

struct Outcome {
  bool trapped = false;
  ValueRef value;
  Cost cost;
};

Outcome run_one(const Program& p, const TypeRef& dom, const TypeRef& cod,
                const ValueRef& arg) {
  Outcome o;
  try {
    auto r = sa::run_compiled(p, dom, cod, arg);
    o.value = r.value;
    o.cost = r.cost;
  } catch (const Error&) {  // MachineError or EvalError: the program's Omega
    o.trapped = true;
  }
  return o;
}

/// Compile `f` under every schedule at O0/O1/O2 and check on random inputs
/// that all variants agree with the naive-O0 reference: identical values
/// and identical trap behavior.  (W is not compared here -- on tiny random
/// inputs the staged bookkeeping can legitimately cost more than the few
/// slots naive re-touches; the straggler tests below assert the W claim
/// where it is meant to hold.)
void differential(const L::FuncRef& f, std::uint64_t seed, int trials,
                  const RandomValueConfig& cfg = {}) {
  auto [dom, cod] = L::check_func(f);
  std::vector<std::pair<std::string, Program>> ps;
  for (auto lvl : {OptLevel::O0, OptLevel::O1, OptLevel::O2}) {
    const std::string at = "O" + std::to_string(static_cast<int>(lvl));
    ps.emplace_back("naive@" + at, sa::compile_nsc(f, lvl));
    ps.emplace_back("eager@" + at,
                    sa::compile_nsc(f, lvl, WhileSchedule::eager()));
    ps.emplace_back("staged(1/2)@" + at,
                    sa::compile_nsc(f, lvl, WhileSchedule::staged({1, 2})));
    ps.emplace_back("staged(1/4)@" + at,
                    sa::compile_nsc(f, lvl, WhileSchedule::staged({1, 4})));
  }
  SplitMix64 rng(seed);
  for (int t = 0; t < trials; ++t) {
    auto arg = random_value(*dom, rng, cfg);
    auto ref = run_one(ps[0].second, dom, cod, arg);
    for (std::size_t i = 1; i < ps.size(); ++i) {
      auto got = run_one(ps[i].second, dom, cod, arg);
      ASSERT_EQ(ref.trapped, got.trapped)
          << ps[i].first << " disagrees on trap; arg=" << arg->show();
      if (ref.trapped) continue;
      ASSERT_TRUE(Value::equal(ref.value, got.value))
          << ps[i].first << " disagrees; arg=" << arg->show()
          << "\nwant=" << ref.value->show() << "\ngot=" << got.value->show();
    }
  }
}

/// map(while (v, acc): v > 0 -> (v-1, acc+2)) seeded with acc = v: per-
/// element iteration counts differ, and the 3v result is distinct per
/// element, so any order-restoration bug shows up in the values.
L::FuncRef mapped_counter() {
  auto pred =
      L::lam(NN, [](L::TermRef z) { return L::lt(L::nat(0), L::proj1(z)); });
  auto step = L::lam(NN, [](L::TermRef z) {
    return L::pair(L::monus_t(L::proj1(z), L::nat(1)),
                   L::add(L::proj2(z), L::nat(2)));
  });
  auto body = L::lam(N, [&](L::TermRef v) {
    return L::proj2(L::apply(L::while_f(pred, step), L::pair(v, v)));
  });
  return L::lam(NSeq, [&](L::TermRef x) {
    return L::apply(L::map_f(body), x);
  });
}

/// The plain straggler shape: map(while v > 0 -> v - 1).
L::FuncRef mapped_decrement() {
  auto pred = L::lam(N, [](L::TermRef v) { return L::lt(L::nat(0), v); });
  auto step = L::lam(N, [](L::TermRef v) { return L::monus_t(v, L::nat(1)); });
  return L::lam(NSeq, [&](L::TermRef x) {
    return L::apply(L::map_f(L::lam(N,
                                    [&](L::TermRef v) {
                                      return L::apply(L::while_f(pred, step),
                                                      v);
                                    })),
                    x);
  });
}

// ---------------------------------------------------------------------------
// differential: values and traps identical across schedules and opt levels
// ---------------------------------------------------------------------------

TEST(ScheduleDifferential, MappedCounter) {
  differential(mapped_counter(), 41, 15);
}

TEST(ScheduleDifferential, NestedMapWhile) {
  auto pred =
      L::lam(NN, [](L::TermRef z) { return L::lt(L::nat(0), L::proj1(z)); });
  auto step = L::lam(NN, [](L::TermRef z) {
    return L::pair(L::monus_t(L::proj1(z), L::nat(1)),
                   L::add(L::proj2(z), L::nat(2)));
  });
  auto body = L::lam(N, [&](L::TermRef v) {
    return L::proj2(L::apply(L::while_f(pred, step), L::pair(v, v)));
  });
  differential(L::lam(Type::seq(NSeq),
                      [&](L::TermRef x) {
                        return L::apply(L::map_f(L::map_f(body)), x);
                      }),
               42, 12);
}

TEST(ScheduleDifferential, SequenceValuedState) {
  // Shrink each inner sequence to its last element: the while state is a
  // SEQREP with a lengths register, so pack/combine/replay run at depth 2.
  auto pred = L::lam(
      NSeq, [](L::TermRef xs) { return L::lt(L::nat(1), L::length(xs)); });
  auto step = P::tail(N);
  differential(L::lam(Type::seq(NSeq),
                      [&](L::TermRef x) {
                        return L::apply(
                            L::map_f(L::lam(NSeq,
                                            [&](L::TermRef xs) {
                                              return L::apply(
                                                  L::while_f(pred, step), xs);
                                            })),
                            x);
                      }),
               43, 12);
}

TEST(ScheduleDifferential, TrappingStep) {
  // v / (v - 3) traps once an element with v <= 3 is stepped; the round in
  // which that happens differs per element, so this locks down that the
  // buffered schedules trap on exactly the same inputs as naive.
  auto pred = L::lam(N, [](L::TermRef v) { return L::lt(L::nat(0), v); });
  auto step = L::lam(N, [](L::TermRef v) {
    return L::div_t(v, L::monus_t(v, L::nat(3)));
  });
  differential(L::lam(NSeq,
                      [&](L::TermRef x) {
                        return L::apply(
                            L::map_f(L::lam(N,
                                            [&](L::TermRef v) {
                                              return L::apply(
                                                  L::while_f(pred, step), v);
                                            })),
                            x);
                      }),
               44, 25);
}

TEST(ScheduleDifferential, FilterThenWhile) {
  auto keep = L::lam(N, [](L::TermRef v) { return L::lt(v, L::nat(40)); });
  auto pred = L::lam(N, [](L::TermRef v) { return L::lt(L::nat(0), v); });
  auto step = L::lam(N, [](L::TermRef v) { return L::monus_t(v, L::nat(2)); });
  differential(L::lam(NSeq,
                      [&](L::TermRef x) {
                        return L::apply(
                            L::map_f(L::lam(N,
                                            [&](L::TermRef v) {
                                              return L::apply(
                                                  L::while_f(pred, step), v);
                                            })),
                            L::apply(P::filter(keep, N), x));
                      }),
               45, 15);
}

TEST(ScheduleDifferential, PreludeSumNats) {
  // The log-depth halving reduction drives its while over a sequence
  // state; population shrinks every round.
  differential(P::sum_nats(), 46, 8);
}

TEST(ScheduleDifferential, ScalarWhileUnaffected) {
  // A depth-0 while has no active set to schedule; all knobs must emit the
  // same (working) loop.
  auto pred = L::lam(N, [](L::TermRef v) { return L::lt(L::nat(3), v); });
  auto step = L::lam(N, [](L::TermRef v) { return L::monus_t(v, L::nat(4)); });
  differential(L::lam(N,
                      [&](L::TermRef v) {
                        return L::apply(L::while_f(pred, step), v);
                      }),
               47, 15);
}

// ---------------------------------------------------------------------------
// explicit edge populations
// ---------------------------------------------------------------------------

TEST(ScheduleEdge, ExplicitPopulations) {
  auto f = mapped_counter();
  auto [dom, cod] = L::check_func(f);
  std::vector<std::vector<std::uint64_t>> cases = {
      {},                        // n = 0: loop body never runs
      {0},                       // finishes before the first step
      {4},                       // a single element, several rounds
      {0, 0, 0},                 // everything finishes in round one
      {3, 3, 3},                 // everything finishes together later
      {1, 2, 3, 4, 5, 6, 7, 8},  // one extraction every round
      {9, 1, 1, 1, 1, 1, 1, 1},  // single straggler
  };
  for (auto lvl : {OptLevel::O0, OptLevel::O2}) {
    auto pn = sa::compile_nsc(f, lvl);
    auto pe = sa::compile_nsc(f, lvl, WhileSchedule::eager());
    auto ps = sa::compile_nsc(f, lvl, WhileSchedule::staged({1, 2}));
    for (const auto& c : cases) {
      auto arg = Value::nat_seq(c);
      auto want = run_one(pn, dom, cod, arg);
      ASSERT_FALSE(want.trapped);
      for (const Program* p : {&pe, &ps}) {
        auto got = run_one(*p, dom, cod, arg);
        ASSERT_FALSE(got.trapped) << "n=" << c.size();
        EXPECT_TRUE(Value::equal(want.value, got.value))
            << "n=" << c.size() << " want=" << want.value->show()
            << " got=" << got.value->show();
      }
    }
  }
}

// ---------------------------------------------------------------------------
// registers: fixed file, independent of eps (Theorem 7.1's clause)
// ---------------------------------------------------------------------------

TEST(ScheduleRegisters, StagedRegisterCountIsEpsIndependent) {
  auto f = mapped_counter();
  for (auto lvl : {OptLevel::O0, OptLevel::O2}) {
    auto r2 = sa::compile_nsc(f, lvl, WhileSchedule::staged({1, 2}));
    auto r3 = sa::compile_nsc(f, lvl, WhileSchedule::staged({1, 3}));
    auto r4 = sa::compile_nsc(f, lvl, WhileSchedule::staged({1, 4}));
    auto r8 = sa::compile_nsc(f, lvl, WhileSchedule::staged({1, 8}));
    EXPECT_EQ(r2.num_regs, r3.num_regs);
    EXPECT_EQ(r2.num_regs, r4.num_regs);
    EXPECT_EQ(r2.num_regs, r8.num_regs);
    EXPECT_EQ(r2.code.size(), r4.code.size());  // same shape, new constants
  }
}

// ---------------------------------------------------------------------------
// work: the staged schedule wins on the straggler adversary
// ---------------------------------------------------------------------------

/// n - m elements finish in round one; m = sqrt(n) stragglers finish on
/// distinct later rounds.  W_ideal = sum t_i = O(n), but naive re-touches
/// all n slots on each of the ~sqrt(n) rounds.
ValueRef straggler_input(std::uint64_t n, std::uint64_t* ideal) {
  const std::uint64_t m = isqrt(n);
  std::vector<std::uint64_t> counts(n, 1);
  for (std::uint64_t j = 0; j < m; ++j) counts[n - m + j] = j + 2;
  if (ideal) {
    *ideal = 0;
    for (auto c : counts) *ideal += c;
  }
  return Value::nat_seq(counts);
}

TEST(ScheduleWork, StagedBeatsNaiveOnStragglers) {
  auto f = mapped_decrement();
  auto [dom, cod] = L::check_func(f);
  auto pn = sa::compile_nsc(f, OptLevel::O2);
  auto ps = sa::compile_nsc(f, OptLevel::O2, WhileSchedule::staged({1, 2}));
  double prev_gain = 0;
  for (std::uint64_t n : {256ull, 1024ull}) {
    std::uint64_t ideal = 0;
    auto arg = straggler_input(n, &ideal);
    auto rn = run_one(pn, dom, cod, arg);
    auto rs = run_one(ps, dom, cod, arg);
    ASSERT_FALSE(rn.trapped);
    ASSERT_FALSE(rs.trapped);
    EXPECT_TRUE(Value::equal(rn.value, rs.value));
    // Staged must do strictly less work, and by a widening margin.
    EXPECT_LT(rs.cost.work, rn.cost.work) << "n=" << n;
    const double gain = static_cast<double>(rn.cost.work) / rs.cost.work;
    EXPECT_GT(gain, prev_gain) << "n=" << n;
    prev_gain = gain;
  }
  EXPECT_GT(prev_gain, 2.0);  // measured ~5.4x at n=1024
}

TEST(ScheduleWork, NaiveRatioGrowsStagedStaysBounded) {
  auto f = mapped_decrement();
  auto [dom, cod] = L::check_func(f);
  auto pn = sa::compile_nsc(f, OptLevel::O2);
  auto ps = sa::compile_nsc(f, OptLevel::O2, WhileSchedule::staged({1, 2}));
  std::vector<double> naive_ratio, staged_ratio;
  for (std::uint64_t n : {64ull, 256ull, 1024ull}) {
    std::uint64_t ideal = 0;
    auto arg = straggler_input(n, &ideal);
    naive_ratio.push_back(
        static_cast<double>(run_one(pn, dom, cod, arg).cost.work) / ideal);
    staged_ratio.push_back(
        static_cast<double>(run_one(ps, dom, cod, arg).cost.work) / ideal);
  }
  // Across a 16x population growth the naive W/W_ideal ratio must grow by
  // more than 2x (it tracks sqrt(n)) while the staged ratio stays within
  // 2x of its small-n value (the ~n^eps bound with catalog constants).
  EXPECT_GT(naive_ratio[2], 2.0 * naive_ratio[0]);
  EXPECT_LT(staged_ratio[2], 2.0 * staged_ratio[0]);
}

TEST(ScheduleWork, StagedBeatsEagerOnStragglers) {
  // Eager re-touches its archive on every extraction round; staged flushes
  // at the ceil(n^(k*eps)) thresholds only.
  auto f = mapped_decrement();
  auto [dom, cod] = L::check_func(f);
  auto pe = sa::compile_nsc(f, OptLevel::O2, WhileSchedule::eager());
  auto ps = sa::compile_nsc(f, OptLevel::O2, WhileSchedule::staged({1, 2}));
  std::uint64_t ideal = 0;
  auto arg = straggler_input(1024, &ideal);
  auto re = run_one(pe, dom, cod, arg);
  auto rs = run_one(ps, dom, cod, arg);
  EXPECT_TRUE(Value::equal(re.value, rs.value));
  EXPECT_LT(rs.cost.work, re.cost.work);
}

}  // namespace
}  // namespace nsc::opt
