// Serve-layer tests (src/serve/: ProgramCache, ArenaPool, Service).
//
//   * the cross-run arena is a pure allocator swap: outputs, traps, T,
//     W, traces, and profiles are bit-identical with and without one,
//     and a warm arena makes steady-state execution allocation-free
//     (EngineProfile::pool_misses == 0 on the second run);
//   * one immutable compiled Program is safe to execute from many
//     threads at once (fused/unfused x serial/parallel backends), each
//     run bit-identical to the sequential baseline -- this test is the
//     target of the CI ThreadSanitizer job;
//   * segment-descriptor batching returns per-request values
//     bit-identical to solo runs, and a trapping or fuel-exhausted
//     request inside a batch is isolated by replay: the offender fails,
//     the neighbors still succeed with their solo-identical values;
//   * the cache compiles a key exactly once (hits never recompile),
//     LRU-evicts at capacity, and keys on the compile options;
//   * admission control rejects past max_queue and enforces per-request
//     fuel; the stats snapshot and JSON report stay coherent.
#include <gtest/gtest.h>

#include <algorithm>
#include <future>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bvram/machine.hpp"
#include "bvram/pool.hpp"
#include "front/front.hpp"
#include "object/value.hpp"
#include "obs/events.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "sa/compile.hpp"
#include "serve/arena.hpp"
#include "serve/cache.hpp"
#include "serve/service.hpp"
#include "support/error.hpp"
#include "pin_workers.hpp"

namespace nsc {
namespace {

namespace F = nsc::front;

// -- shared program sources ----------------------------------------------

// Small pipeline: filter / comprehension / zip, always terminates.
const char kQuery[] =
    "fn small(v : nat) : bool = v < 10\n"
    "fn main(xs : [nat]) : [nat * nat] =\n"
    "  let kept = filter(small, xs) in\n"
    "  zip(enumerate(kept), [v * v | v <- kept])\n";

// Segment means: an empty segment divides by zero -- the paper's Omega.
const char kMeans[] =
    "fn mean(seg : [nat]) : nat = sum(seg) / length(seg)\n"
    "fn main(db : [[nat]]) : [nat] = map(mean, db)\n";

const F::ResolvedFn& entry_of(const F::ResolvedModule& mod) {
  return mod.main();
}

std::shared_ptr<const serve::CompiledProgram> compile_source(
    const char* source, serve::CacheKey key = {}) {
  const F::SourceFile src("test.nsc", source);
  const F::ResolvedModule mod = F::compile_file(src);
  const F::ResolvedFn& fn = entry_of(mod);
  key.source_hash = serve::hash_source(source, fn.name);
  return serve::compile_program(fn.name, fn.fn, fn.dom, fn.cod, key);
}

ValueRef nat_seq(std::initializer_list<std::uint64_t> ns) {
  return Value::nat_seq(std::vector<std::uint64_t>(ns));
}

// -- BufferPool / ArenaPool ----------------------------------------------

TEST(Pool, AcquireRecycleReuse) {
  bvram::BufferPool pool;
  bvram::Buf a = pool.acquire(100);
  EXPECT_EQ(pool.misses(), 1u);
  EXPECT_GE(a.capacity(), 100u);
  pool.recycle(std::move(a));
  EXPECT_EQ(pool.spare_count(), 1u);
  bvram::Buf b = pool.acquire(50);  // served from the spare
  EXPECT_EQ(pool.hits(), 1u);
  EXPECT_EQ(pool.misses(), 1u);
  pool.recycle(std::move(b));
  pool.reset();
  EXPECT_EQ(pool.spare_count(), 0u);
  EXPECT_EQ(pool.hits(), 1u);  // counters survive reset
}

TEST(Arena, LeaseReturnsWarmArena) {
  serve::ArenaPool arenas;
  bvram::BufferPool* first = nullptr;
  {
    serve::ArenaLease lease = arenas.acquire();
    ASSERT_TRUE(lease);
    first = lease.get();
    lease->recycle(lease->acquire(64));
  }
  serve::ArenaPoolStats st = arenas.stats();
  EXPECT_EQ(st.leases, 1u);
  EXPECT_EQ(st.created, 1u);
  EXPECT_EQ(st.idle, 1u);
  EXPECT_GT(st.idle_bytes, 0u);
  {
    serve::ArenaLease lease = arenas.acquire();  // LIFO: same arena, warm
    EXPECT_EQ(lease.get(), first);
    EXPECT_EQ(lease->spare_count(), 1u);
  }
  EXPECT_EQ(arenas.stats().created, 1u);
  arenas.reset();
  EXPECT_EQ(arenas.stats().idle, 0u);
}

TEST(Arena, SteadyStateZeroAllocation) {
  const auto prog = compile_source(kQuery);
  const ValueRef arg = nat_seq({4, 25, 7, 1, 13, 9});
  bvram::BufferPool arena;
  bvram::RunConfig cfg;
  cfg.profile = true;
  cfg.arena = &arena;
  bvram::RunResult raw1, raw2;
  const sa::CompiledRun r1 =
      sa::run_compiled(prog->unit, prog->dom, prog->cod, arg, cfg, &raw1);
  EXPECT_GT(raw1.engine.pool_misses, 0u);  // cold arena must allocate
  const sa::CompiledRun r2 =
      sa::run_compiled(prog->unit, prog->dom, prog->cod, arg, cfg, &raw2);
  // Warm arena: the whole register file is served by recycled buffers.
  EXPECT_EQ(raw2.engine.pool_misses, 0u);
  EXPECT_TRUE(Value::equal(r1.value, r2.value));
  EXPECT_EQ(r1.cost, r2.cost);
}

TEST(Arena, BitIdenticalWithAndWithout) {
  const auto prog = compile_source(kQuery);
  const std::vector<ValueRef> args = {
      nat_seq({4, 25, 7, 1, 13, 9}), nat_seq({}), nat_seq({10, 10, 10})};
  bvram::BufferPool arena;
  for (const ValueRef& arg : args) {
    bvram::RunConfig plain;
    plain.record_trace = true;
    bvram::RunConfig arened = plain;
    arened.arena = &arena;
    bvram::RunResult raw_p, raw_a;
    const sa::CompiledRun rp = sa::run_compiled(prog->unit, prog->dom,
                                                prog->cod, arg, plain, &raw_p);
    const sa::CompiledRun ra = sa::run_compiled(prog->unit, prog->dom,
                                                prog->cod, arg, arened, &raw_a);
    EXPECT_TRUE(Value::equal(rp.value, ra.value));
    EXPECT_EQ(rp.cost, ra.cost);
    ASSERT_EQ(raw_p.trace.size(), raw_a.trace.size());
    for (std::size_t i = 0; i < raw_p.trace.size(); ++i) {
      EXPECT_EQ(raw_p.trace[i].work, raw_a.trace[i].work);
      EXPECT_EQ(raw_p.trace[i].instr, raw_a.trace[i].instr);
    }
  }
}

// -- ProgramCache --------------------------------------------------------

TEST(Cache, HitNeverRecompiles) {
  serve::ProgramCache cache(4);
  serve::CacheKey key;
  key.source_hash = serve::hash_source(kQuery, "main");
  int compiles = 0;
  const auto compile = [&] {
    ++compiles;
    return compile_source(kQuery, key);
  };
  const auto a = cache.get_or_compile(key, compile);
  const auto b = cache.get_or_compile(key, compile);
  EXPECT_EQ(compiles, 1);
  EXPECT_EQ(a.get(), b.get());  // the same shared artifact
  const serve::CacheStats st = cache.stats();
  EXPECT_EQ(st.misses, 1u);
  EXPECT_EQ(st.hits, 1u);
  EXPECT_GT(st.compile_wall_ns, 0u);
}

TEST(Cache, OptionsAreDistinctKeys) {
  serve::ProgramCache cache(4);
  serve::CacheKey o2;
  o2.source_hash = serve::hash_source(kQuery, "main");
  serve::CacheKey o0 = o2;
  o0.opt = opt::OptLevel::O0;
  int compiles = 0;
  const auto mk = [&](const serve::CacheKey& k) {
    return [&, k] {
      ++compiles;
      return compile_source(kQuery, k);
    };
  };
  cache.get_or_compile(o2, mk(o2));
  cache.get_or_compile(o0, mk(o0));
  cache.get_or_compile(o2, mk(o2));
  EXPECT_EQ(compiles, 2);
  EXPECT_EQ(cache.stats().size, 2u);
}

TEST(Cache, LruEvictsOldest) {
  serve::ProgramCache cache(2);
  serve::CacheKey base;
  base.source_hash = serve::hash_source(kQuery, "main");
  auto key_of = [&](std::uint64_t salt) {
    serve::CacheKey k = base;
    k.eps_num = salt;  // distinct keys without recompiling real variants
    return k;
  };
  const auto compile = [&] { return compile_source(kQuery, base); };
  const auto a = cache.get_or_compile(key_of(1), compile);
  cache.get_or_compile(key_of(2), compile);
  cache.get_or_compile(key_of(1), compile);  // bump 1 to MRU
  cache.get_or_compile(key_of(3), compile);  // evicts 2
  EXPECT_EQ(cache.peek(key_of(2)), nullptr);
  EXPECT_NE(cache.peek(key_of(1)), nullptr);
  EXPECT_NE(cache.peek(key_of(3)), nullptr);
  const serve::CacheStats st = cache.stats();
  EXPECT_EQ(st.evictions, 1u);
  EXPECT_EQ(st.size, 2u);
  // An evicted artifact stays alive while someone holds the ref.
  EXPECT_TRUE(a != nullptr);
}

// -- concurrent execution of one shared Program --------------------------

TEST(Serve, ConcurrentSharedProgram) {
  const auto prog = compile_source(kQuery);
  const std::vector<ValueRef> args = {
      nat_seq({4, 25, 7, 1, 13, 9}), nat_seq({}), nat_seq({10, 10, 10}),
      nat_seq({0, 9, 100, 3})};

  // Sequential baselines, one per (arg, fuse, backend) configuration.
  struct Cfg {
    bool fuse;
    bool parallel;
  };
  const Cfg cfgs[] = {{true, false}, {false, false}, {true, true},
                      {false, true}};
  std::vector<std::vector<ValueRef>> baseline(4);
  std::vector<std::vector<Cost>> baseline_cost(4);
  for (std::size_t c = 0; c < 4; ++c) {
    for (const ValueRef& arg : args) {
      bvram::RunConfig rc;
      rc.fuse = cfgs[c].fuse;
      rc.parallel_backend = cfgs[c].parallel;
      const sa::CompiledRun r =
          sa::run_compiled(prog->unit, prog->dom, prog->cod, arg, rc);
      baseline[c].push_back(r.value);
      baseline_cost[c].push_back(r.cost);
    }
  }

  // 8 threads hammer the SAME Program object concurrently, mixing all
  // four configurations, each with its own arena.  Any engine mutation
  // of shared Program state is a data race here (the TSan gate) and any
  // cross-talk shows up as a value/cost mismatch.
  constexpr int kThreads = 8;
  constexpr int kReps = 16;
  std::vector<std::future<bool>> oks;
  for (int t = 0; t < kThreads; ++t) {
    oks.push_back(std::async(std::launch::async, [&, t] {
      bvram::BufferPool arena;
      for (int rep = 0; rep < kReps; ++rep) {
        const std::size_t c = static_cast<std::size_t>(t + rep) % 4;
        const std::size_t a = static_cast<std::size_t>(rep) % args.size();
        bvram::RunConfig rc;
        rc.fuse = cfgs[c].fuse;
        rc.parallel_backend = cfgs[c].parallel;
        rc.arena = &arena;
        const sa::CompiledRun r =
            sa::run_compiled(prog->unit, prog->dom, prog->cod, args[a], rc);
        if (!Value::equal(r.value, baseline[c][a])) return false;
        if (!(r.cost == baseline_cost[c][a])) return false;
      }
      return true;
    }));
  }
  for (auto& ok : oks) EXPECT_TRUE(ok.get());
}

// -- Service: batching ---------------------------------------------------

TEST(Serve, BatchedMatchesIndividual) {
  const auto prog = compile_source(kQuery);
  std::vector<ValueRef> args;
  for (std::uint64_t i = 0; i < 24; ++i) {
    args.push_back(nat_seq({i, i + 3, 2 * i, 25, i % 11}));
  }
  // Solo baselines.
  std::vector<ValueRef> solo;
  for (const ValueRef& a : args) {
    solo.push_back(
        sa::run_compiled(prog->unit, prog->dom, prog->cod, a).value);
  }

  serve::ServeConfig cfg;
  cfg.workers = 2;
  cfg.max_batch = 8;
  serve::Service svc(cfg);
  svc.pause();
  std::vector<std::future<serve::Response>> futs;
  for (const ValueRef& a : args) futs.push_back(svc.submit(prog, a));
  svc.resume();
  bool any_batched = false;
  for (std::size_t i = 0; i < futs.size(); ++i) {
    const serve::Response r = futs[i].get();
    ASSERT_TRUE(r.ok()) << r.error;
    EXPECT_TRUE(Value::equal(r.value, solo[i])) << "request " << i;
    any_batched = any_batched || r.batched;
    EXPECT_LE(r.batch_size, cfg.max_batch);
  }
  EXPECT_TRUE(any_batched);
  svc.drain();
  const serve::ServeStats st = svc.stats();
  EXPECT_EQ(st.ok, args.size());
  EXPECT_GT(st.batch_runs, 0u);
  EXPECT_GT(st.batch_occupancy, 1.0);
  EXPECT_LT(st.runs, args.size());  // batching did amortize runs
}

TEST(Serve, TrapIsolatedInBatch) {
  const auto prog = compile_source(kMeans);
  // Request 2 contains an empty segment: mean() divides by zero (Omega).
  const std::vector<ValueRef> args = {
      Value::seq({nat_seq({1, 2, 3}), nat_seq({10, 20})}),
      Value::seq({nat_seq({4}), nat_seq({6})}),
      Value::seq({nat_seq({4}), nat_seq({}), nat_seq({6})}),
      Value::seq({nat_seq({8, 8})}),
  };
  std::vector<ValueRef> solo(args.size());
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (i == 2) continue;  // the trapping one
    solo[i] = sa::run_compiled(prog->unit, prog->dom, prog->cod, args[i]).value;
  }

  serve::ServeConfig cfg;
  cfg.workers = 1;
  cfg.max_batch = 8;
  serve::Service svc(cfg);
  svc.pause();
  std::vector<std::future<serve::Response>> futs;
  for (const ValueRef& a : args) futs.push_back(svc.submit(prog, a));
  svc.resume();
  for (std::size_t i = 0; i < futs.size(); ++i) {
    const serve::Response r = futs[i].get();
    if (i == 2) {
      EXPECT_EQ(r.outcome, serve::Outcome::Trap);
      EXPECT_NE(r.error.find("division by zero"), std::string::npos);
    } else {
      ASSERT_TRUE(r.ok()) << "neighbor " << i << " poisoned: " << r.error;
      EXPECT_TRUE(Value::equal(r.value, solo[i]));
    }
  }
  svc.drain();
  const serve::ServeStats st = svc.stats();
  EXPECT_EQ(st.trapped, 1u);
  EXPECT_EQ(st.ok, args.size() - 1);
  EXPECT_GT(st.replays, 0u);  // the batch fell back to per-request runs
}

TEST(Serve, FuelIsolatedInBatch) {
  const auto prog = compile_source(kMeans);
  // One expensive request (big quotients drive the division loop) next
  // to cheap ones.  T is value-dependent here, so measure rather than
  // guess: pick a fuel that (a) the whole batch's k*fuel budget cannot
  // cover, (b) the cheap solo replays fit under, and (c) the expensive
  // solo replay exceeds.
  const std::vector<ValueRef> args = {
      Value::seq({nat_seq({0})}),
      Value::seq({nat_seq({5000, 5000}), nat_seq({9000, 9000, 9000})}),
      Value::seq({nat_seq({1})}),
  };
  const std::uint64_t cheap_t = std::max(
      sa::run_compiled(prog->unit, prog->dom, prog->cod, args[0]).cost.time,
      sa::run_compiled(prog->unit, prog->dom, prog->cod, args[2]).cost.time);
  const std::uint64_t big_t =
      sa::run_compiled(prog->unit, prog->dom, prog->cod, args[1]).cost.time;
  const std::uint64_t batch_t =
      sa::run_compiled(prog->batch, Type::seq(prog->dom), Type::seq(prog->cod),
                       Value::seq(args))
          .cost.time;
  const std::uint64_t fuel = std::min(batch_t / args.size(), big_t) - 1;
  ASSERT_LT(cheap_t, fuel);  // cheap replays must fit

  serve::ServeConfig cfg;
  cfg.workers = 1;
  cfg.max_batch = 8;
  cfg.fuel = fuel;
  serve::Service svc(cfg);
  svc.pause();
  std::vector<std::future<serve::Response>> futs;
  for (const ValueRef& a : args) futs.push_back(svc.submit(prog, a));
  svc.resume();
  const serve::Response r0 = futs[0].get();
  const serve::Response r1 = futs[1].get();
  const serve::Response r2 = futs[2].get();
  EXPECT_TRUE(r0.ok()) << r0.error;
  EXPECT_EQ(r1.outcome, serve::Outcome::FuelExhausted);
  EXPECT_TRUE(r2.ok()) << r2.error;
}

// -- Service: admission, shutdown, stats ---------------------------------

TEST(Serve, AdmissionQueueLimit) {
  const auto prog = compile_source(kQuery);
  serve::ServeConfig cfg;
  cfg.workers = 1;
  cfg.max_queue = 2;
  serve::Service svc(cfg);
  svc.pause();  // nothing drains: the queue must hit the limit
  std::vector<std::future<serve::Response>> futs;
  for (int i = 0; i < 5; ++i) {
    futs.push_back(svc.submit(prog, nat_seq({1, 2, 3})));
  }
  svc.resume();
  std::size_t ok = 0, rejected = 0;
  for (auto& f : futs) {
    const serve::Response r = f.get();
    if (r.ok()) {
      ++ok;
    } else {
      EXPECT_EQ(r.outcome, serve::Outcome::Rejected);
      ++rejected;
    }
  }
  EXPECT_EQ(ok, 2u);
  EXPECT_EQ(rejected, 3u);
}

TEST(Serve, DestructorFailsPendingCleanly) {
  const auto prog = compile_source(kQuery);
  std::future<serve::Response> orphan;
  {
    serve::ServeConfig cfg;
    cfg.workers = 1;
    serve::Service svc(cfg);
    svc.pause();
    orphan = svc.submit(prog, nat_seq({1}));
  }  // destructor: never ran, must still resolve
  const serve::Response r = orphan.get();
  EXPECT_EQ(r.outcome, serve::Outcome::Rejected);
}

TEST(Serve, LoadCachesBySourceAndOptions) {
  serve::Service svc;
  const auto a = svc.load("q.nsc", kQuery);
  const auto b = svc.load("q.nsc", kQuery);
  EXPECT_EQ(a.get(), b.get());
  const auto c = svc.load("q.nsc", kQuery, "", opt::OptLevel::O0);
  EXPECT_NE(a.get(), c.get());
  const serve::CacheStats st = svc.cache().stats();
  EXPECT_EQ(st.misses, 2u);
  EXPECT_EQ(st.hits, 1u);
}

TEST(Serve, StatsJsonCoherent) {
  const auto prog = compile_source(kQuery);
  serve::ServeConfig cfg;
  cfg.workers = 2;
  serve::Service svc(cfg);
  std::vector<std::future<serve::Response>> futs;
  for (int i = 0; i < 12; ++i) {
    futs.push_back(svc.submit(prog, nat_seq({static_cast<std::uint64_t>(i)})));
  }
  for (auto& f : futs) EXPECT_TRUE(f.get().ok());
  svc.drain();
  const serve::ServeStats st = svc.stats();
  EXPECT_EQ(st.submitted, 12u);
  EXPECT_EQ(st.completed, 12u);
  EXPECT_EQ(st.ok, 12u);
  EXPECT_GT(st.total_cost.time, 0u);
  EXPECT_GE(st.latency_p95_ns, st.latency_p50_ns);
  EXPECT_GE(st.latency_p99_ns, st.latency_p95_ns);
  const std::string json = svc.stats_json();
  EXPECT_NE(json.find("\"schema\": \"nscc-serve-stats/v2\""),
            std::string::npos);
  EXPECT_NE(json.find("\"latency_ns\""), std::string::npos);
  EXPECT_NE(json.find("\"source\": \"log2-histogram\""), std::string::npos);
  EXPECT_NE(json.find("\"parallel\""), std::string::npos);
  EXPECT_NE(json.find("\"cache\""), std::string::npos);
  EXPECT_NE(json.find("\"batch_occupancy\""), std::string::npos);
}

// The profiling / tracing contract survives the serve path: a batched
// run of map(f) under profile produces the same per-request values as
// unprofiled solo runs (profiling never perturbs machine state, PR 6's
// invariant, now exercised one segment-descriptor level up).
TEST(Serve, ProfiledBatchBitIdentical) {
  const auto prog = compile_source(kQuery);
  std::vector<ValueRef> args;
  for (std::uint64_t i = 0; i < 6; ++i) args.push_back(nat_seq({i, 25, i + 7}));
  const ValueRef batch_arg = Value::seq(args);
  const TypeRef bdom = Type::seq(prog->dom);
  const TypeRef bcod = Type::seq(prog->cod);
  bvram::RunConfig plain;
  bvram::RunConfig profiled;
  profiled.profile = true;
  profiled.record_trace = true;
  const sa::CompiledRun rp =
      sa::run_compiled(prog->batch, bdom, bcod, batch_arg, plain);
  const sa::CompiledRun rq =
      sa::run_compiled(prog->batch, bdom, bcod, batch_arg, profiled);
  EXPECT_TRUE(Value::equal(rp.value, rq.value));
  EXPECT_EQ(rp.cost, rq.cost);
  for (std::size_t i = 0; i < args.size(); ++i) {
    const sa::CompiledRun solo =
        sa::run_compiled(prog->unit, prog->dom, prog->cod, args[i]);
    EXPECT_TRUE(Value::equal(rp.value->elems()[i], solo.value));
  }
}

// -- Service: telemetry --------------------------------------------------

// The invisibility contract: with EVERY telemetry sink wired (events,
// spans, slow threshold, engine profiling), responses are bit-identical
// to a dark service -- outcomes, values, T/W, batching decisions --
// including across the trap-in-batch replay cascade.
TEST(Serve, TelemetryInvisible) {
  const auto prog = compile_source(kMeans);
  // Request 2 traps (empty segment): the batch run aborts and replays,
  // so the comparison covers batch, replay, and trap paths at once.
  const std::vector<ValueRef> args = {
      Value::seq({nat_seq({1, 2, 3}), nat_seq({10, 20})}),
      Value::seq({nat_seq({4}), nat_seq({6})}),
      Value::seq({nat_seq({4}), nat_seq({}), nat_seq({6})}),
      Value::seq({nat_seq({8, 8})}),
  };

  const auto run_all = [&](serve::Service& svc) {
    svc.pause();
    std::vector<std::future<serve::Response>> futs;
    for (const ValueRef& a : args) futs.push_back(svc.submit(prog, a));
    svc.resume();
    std::vector<serve::Response> out;
    for (auto& f : futs) out.push_back(f.get());
    svc.drain();
    return out;
  };

  serve::ServeConfig dark;
  dark.workers = 1;
  dark.max_batch = 8;
  serve::Service dark_svc(dark);
  const std::vector<serve::Response> want = run_all(dark_svc);

  obs::EventLog events;
  obs::SpanLog spans;
  serve::ServeConfig lit = dark;
  lit.events = &events;
  lit.spans = &spans;
  lit.slow_ms = 1;  // latency-dependent events must not affect responses
  lit.profile_runs = true;
  serve::Service lit_svc(lit);
  const std::vector<serve::Response> got = run_all(lit_svc);

  ASSERT_EQ(want.size(), got.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(want[i].outcome, got[i].outcome) << "request " << i;
    EXPECT_EQ(want[i].error, got[i].error) << "request " << i;
    if (want[i].ok()) {
      EXPECT_TRUE(Value::equal(want[i].value, got[i].value))
          << "request " << i;
    }
    EXPECT_EQ(want[i].cost, got[i].cost) << "request " << i;
    EXPECT_EQ(want[i].batched, got[i].batched) << "request " << i;
    EXPECT_EQ(want[i].batch_size, got[i].batch_size) << "request " << i;
  }
  const serve::ServeStats a = dark_svc.stats();
  const serve::ServeStats b = lit_svc.stats();
  EXPECT_EQ(a.ok, b.ok);
  EXPECT_EQ(a.trapped, b.trapped);
  EXPECT_EQ(a.runs, b.runs);
  EXPECT_EQ(a.replays, b.replays);
  EXPECT_EQ(a.total_cost, b.total_cost);

  // The telemetry side actually observed the cascade.
  bool saw_trap = false, saw_replay = false;
  for (const obs::Event& e : events.drain()) {
    saw_trap = saw_trap || e.name == "serve.trap";
    saw_replay = saw_replay || e.name == "serve.replay";
  }
  EXPECT_TRUE(saw_trap);
  EXPECT_TRUE(saw_replay);
  bool saw_execute = false, saw_replay_span = false, saw_wait = false;
  for (const obs::ServeSpan& s : spans.drain()) {
    saw_execute = saw_execute || s.phase == "execute";
    saw_replay_span = saw_replay_span || s.phase == "replay";
    saw_wait = saw_wait || s.phase == "queue-wait";
  }
  EXPECT_TRUE(saw_execute);
  EXPECT_TRUE(saw_replay_span);
  EXPECT_TRUE(saw_wait);
}

// A saturated event queue degrades telemetry, never the request path:
// events beyond capacity are dropped and counted, and every request
// still completes correctly.
TEST(Serve, EventDropAccountingUnderSaturation) {
  const auto prog = compile_source(kMeans);
  obs::EventLog events(2);  // tiny on purpose
  serve::ServeConfig cfg;
  cfg.workers = 1;
  cfg.max_batch = 8;
  cfg.events = &events;
  serve::Service svc(cfg);
  svc.pause();
  std::vector<std::future<serve::Response>> futs;
  // Every request traps solo (all-empty segments), and the batch replay
  // cascade emits replay + trap events well past the capacity of 2.
  for (int i = 0; i < 8; ++i) {
    futs.push_back(
        svc.submit(prog, Value::seq({nat_seq({}), nat_seq({})})));
  }
  svc.resume();
  for (auto& f : futs) {
    EXPECT_EQ(f.get().outcome, serve::Outcome::Trap);
  }
  svc.drain();
  const obs::EventLogStats es = events.stats();
  EXPECT_EQ(es.emitted, 2u);
  EXPECT_GT(es.dropped, 0u);
  EXPECT_EQ(es.queued, 2u);
  EXPECT_EQ(events.drain().size(), 2u);
}

// Registry-backed stats must match the responses the service actually
// delivered (the counters are relaxed atomics, but after drain() every
// update is complete).
TEST(Serve, MetricsRegistryCoherent) {
  const auto prog = compile_source(kQuery);
  serve::ServeConfig cfg;
  cfg.workers = 2;
  serve::Service svc(cfg);
  std::vector<std::future<serve::Response>> futs;
  for (int i = 0; i < 10; ++i) {
    futs.push_back(svc.submit(prog, nat_seq({static_cast<std::uint64_t>(i)})));
  }
  for (auto& f : futs) EXPECT_TRUE(f.get().ok());
  svc.drain();
  std::ostringstream prom;
  svc.metrics().write_prometheus(prom);
  const std::string text = prom.str();
  EXPECT_NE(text.find("nscc_serve_requests_ok_total 10"), std::string::npos);
  EXPECT_NE(text.find("nscc_serve_latency_ns_count 10"), std::string::npos);
  EXPECT_NE(text.find("nscc_serve_cache_hits"), std::string::npos);
  EXPECT_NE(text.find("nscc_serve_arena_leases"), std::string::npos);
  EXPECT_NE(text.find("nscc_parallel_calls"), std::string::npos);
}

}  // namespace
}  // namespace nsc
