// Tests for NSA (appendix C): combinator evaluation, the NSC -> NSA
// variable-elimination translation, and Proposition C.1 (same values, same
// T/W up to constants) via differential testing on a corpus of programs.
#include <gtest/gtest.h>

#include "nsa/ast.hpp"
#include "nsa/eval.hpp"
#include "nsa/from_nsc.hpp"
#include "nsc/build.hpp"
#include "nsc/eval.hpp"
#include "nsc/prelude.hpp"
#include "object/random.hpp"
#include "support/error.hpp"
#include "support/prng.hpp"

namespace nsc::nsa {
namespace {

namespace L = nsc::lang;
using nsc::SplitMix64;
using nsc::Type;
using nsc::Value;

const TypeRef N = Type::nat();

TEST(NsaEval, Combinators) {
  auto x = Value::pair(Value::nat(3), Value::nat(4));
  EXPECT_EQ(eval(pi1(N, N), x).value->as_nat(), 3u);
  EXPECT_EQ(eval(pi2(N, N), x).value->as_nat(), 4u);
  EXPECT_EQ(eval(arith(L::ArithOp::Add), x).value->as_nat(), 7u);
  EXPECT_TRUE(eval(eqf(), Value::pair(Value::nat(5), Value::nat(5)))
                  .value->as_bool());
  EXPECT_EQ(eval(compose(arith(L::ArithOp::Mul), pairf(pi2(N, N), pi1(N, N))),
                 x)
                .value->as_nat(),
            12u);
}

TEST(NsaEval, SumsAndDist) {
  auto inl = Value::in1(Value::nat(7));
  auto f = sum_case(arith(L::ArithOp::Add),  // on N x N
                    pi1(N, N));
  auto lhs = Value::in1(Value::pair(Value::nat(1), Value::nat(2)));
  auto rhs = Value::in2(Value::pair(Value::nat(9), Value::nat(5)));
  EXPECT_EQ(eval(f, lhs).value->as_nat(), 3u);
  EXPECT_EQ(eval(f, rhs).value->as_nat(), 9u);

  auto d = dist(N, N, N);
  auto r = eval(d, Value::pair(inl, Value::nat(42))).value;
  ASSERT_TRUE(r->is(ValueKind::In1));
  EXPECT_EQ(r->injected()->second()->as_nat(), 42u);
}

TEST(NsaEval, Sequences) {
  auto xs = Value::nat_seq({5, 6, 7});
  EXPECT_EQ(eval(lengthf(N), xs).value->as_nat(), 3u);
  EXPECT_EQ(eval(enumeratef(N), xs).value->as_nat_vector(),
            (std::vector<std::uint64_t>{0, 1, 2}));
  auto app = eval(appendf(N), Value::pair(xs, xs)).value;
  EXPECT_EQ(app->length(), 6u);
  auto p2r = eval(p2f(N, N), Value::pair(Value::nat(1), xs)).value;
  ASSERT_EQ(p2r->length(), 3u);
  EXPECT_EQ(p2r->elems()[2]->first()->as_nat(), 1u);
  EXPECT_THROW(eval(getf(N), xs), EvalError);
  EXPECT_EQ(eval(getf(N), Value::seq({Value::nat(9)})).value->as_nat(), 9u);
}

TEST(NsaEval, MapIsParallel) {
  auto body = compose(arith(L::ArithOp::Add),
                      pairf(id(N), compose(const_nat(1), bang(N))));
  auto r = eval(mapf(body), Value::nat_seq({1, 2, 3}));
  EXPECT_EQ(r.value->as_nat_vector(), (std::vector<std::uint64_t>{2, 3, 4}));
}

TEST(NsaEval, While) {
  // while(x < 100, x * 2) from 3 -> 192
  auto lt100 = compose(
      eqf(), pairf(compose(arith(L::ArithOp::Monus),
                           pairf(id(N), compose(const_nat(99), bang(N)))),
                   compose(const_nat(0), bang(N))));
  auto dbl = compose(arith(L::ArithOp::Mul),
                     pairf(id(N), compose(const_nat(2), bang(N))));
  auto r = eval(whilef(lt100, dbl), Value::nat(3));
  EXPECT_EQ(r.value->as_nat(), 192u);
}

TEST(NsaEval, TypeErrorsAtConstruction) {
  EXPECT_THROW(compose(pi1(N, N), id(N)), TypeError);
  EXPECT_THROW(sum_case(id(N), bang(N)), TypeError);
  EXPECT_THROW(whilef(id(N), id(N)), TypeError);
}

// ---------------------------------------------------------------------------
// NSC -> NSA translation (Proposition C.1)
// ---------------------------------------------------------------------------

/// Differentially check a closed NSC function against its NSA translation.
void check_translation(const L::FuncRef& f, const std::vector<ValueRef>& args,
                       double cost_slack = 20.0) {
  NsaRef g = from_closed_func(f);
  for (const auto& arg : args) {
    auto want = L::apply_fn(f, arg);
    auto got = eval(g, arg);
    EXPECT_TRUE(Value::equal(want.value, got.value))
        << "arg=" << arg->show() << "\nwant=" << want.value->show()
        << "\ngot=" << got.value->show();
    // Proposition C.1: same T and W up to constants.
    EXPECT_LE(got.cost.time, want.cost.time * cost_slack + 200);
    EXPECT_LE(got.cost.work, want.cost.work * cost_slack + 200);
  }
}

TEST(FromNsc, ClosedArithmetic) {
  auto f = L::lam(N, [](L::TermRef x) {
    return L::add(L::mul(x, x), L::nat(1));
  });
  check_translation(f, {Value::nat(0), Value::nat(5), Value::nat(9)});
}

TEST(FromNsc, PairsCaseAndBooleans) {
  auto f = L::lam(Type::prod(N, N), [](L::TermRef z) {
    return L::ite(L::leq(L::proj1(z), L::proj2(z)), L::proj2(z),
                  L::proj1(z));
  });
  check_translation(f, {Value::pair(Value::nat(2), Value::nat(7)),
                        Value::pair(Value::nat(7), Value::nat(2)),
                        Value::pair(Value::nat(4), Value::nat(4))});
}

TEST(FromNsc, LetAndShadowing) {
  auto f = L::lam(N, [](L::TermRef x) {
    return L::let_in(N, L::add(x, L::nat(1)), [&](L::TermRef y) {
      return L::let_in(N, L::mul(y, y),
                       [&](L::TermRef z) { return L::add(z, x); });
    });
  });
  check_translation(f, {Value::nat(0), Value::nat(3)});
}

TEST(FromNsc, MapWithFreeVariables) {
  // \x:(N x [N]). map(\v. v + pi1 x)(pi2 x): context broadcast via p2.
  auto f = L::lam(Type::prod(N, Type::seq(N)), [](L::TermRef x) {
    auto body =
        L::lam(N, [&](L::TermRef v) { return L::add(v, L::proj1(x)); });
    return L::apply(L::map_f(body), L::proj2(x));
  });
  check_translation(
      f, {Value::pair(Value::nat(10), Value::nat_seq({1, 2, 3})),
          Value::pair(Value::nat(0), Value::nat_seq({})),
          Value::pair(Value::nat(5), Value::nat_seq({5}))});
}

TEST(FromNsc, NestedMap) {
  // map(map(+1)) over [[N]].
  auto inc = L::lam(N, [](L::TermRef v) { return L::add(v, L::nat(1)); });
  auto f = L::lam(Type::seq(Type::seq(N)), [&](L::TermRef x) {
    return L::apply(L::map_f(L::map_f(inc)), x);
  });
  auto nested = Value::seq({Value::nat_seq({1, 2}), Value::nat_seq({}),
                            Value::nat_seq({3})});
  check_translation(f, {nested});
}

TEST(FromNsc, WhileWithContext) {
  // \x:(N x N). while(\s. s < pi2 x, \s. s + pi1 x)(0):
  // counts up by pi1 until reaching pi2 (both free in the loop).
  auto f = L::lam(Type::prod(N, N), [](L::TermRef x) {
    auto pred =
        L::lam(N, [&](L::TermRef s) { return L::lt(s, L::proj2(x)); });
    auto step =
        L::lam(N, [&](L::TermRef s) { return L::add(s, L::proj1(x)); });
    return L::apply(L::while_f(pred, step), L::nat(0));
  });
  check_translation(f, {Value::pair(Value::nat(3), Value::nat(10)),
                        Value::pair(Value::nat(1), Value::nat(0))});
}

TEST(FromNsc, SequencePrimitives) {
  auto f = L::lam(Type::seq(N), [](L::TermRef x) {
    return L::append(L::flatten(L::split(x, L::singleton(L::length(x)))),
                     L::enumerate(x));
  });
  check_translation(f, {Value::nat_seq({4, 5, 6}), Value::nat_seq({})});
}

TEST(FromNsc, PreludeFunctionsTranslate) {
  namespace P = L::prelude;
  check_translation(P::first(N), {Value::nat_seq({7, 8, 9})});
  check_translation(P::tail(N), {Value::nat_seq({7, 8, 9}),
                                 Value::nat_seq({})});
  check_translation(
      P::index(N),
      {Value::pair(Value::nat_seq({10, 11, 12, 13}), Value::nat_seq({1, 3}))});
  check_translation(
      P::direct_merge(),
      {Value::pair(Value::nat_seq({1, 3, 5}), Value::nat_seq({2, 4}))});
  check_translation(P::sum_nats(), {Value::nat_seq({1, 2, 3, 4, 5})});
}

TEST(FromNsc, RandomizedDifferential) {
  // Random inputs through a filter-even + double pipeline.
  namespace P = L::prelude;
  auto even =
      L::lam(N, [](L::TermRef v) { return L::eq(L::mod_t(v, L::nat(2)), L::nat(0)); });
  auto dbl = L::lam(N, [](L::TermRef v) { return L::mul(v, L::nat(2)); });
  auto f = L::lam(Type::seq(N), [&](L::TermRef x) {
    return L::apply(L::map_f(dbl), L::apply(P::filter(even, N), x));
  });
  NsaRef g = from_closed_func(f);
  SplitMix64 rng(2024);
  for (int trial = 0; trial < 25; ++trial) {
    auto arg = Value::nat_seq(rng.vec(rng.below(12), 100));
    auto want = L::apply_fn(f, arg);
    auto got = eval(g, arg);
    EXPECT_TRUE(Value::equal(want.value, got.value)) << arg->show();
  }
}

TEST(FromNsc, CostRatioStableAcrossSizes) {
  // Prop C.1's "same complexity": the NSA/NSC work ratio should not grow
  // with input size.
  namespace P = L::prelude;
  auto f = P::index(N);
  NsaRef g = from_closed_func(f);
  auto mk = [](std::size_t n) {
    std::vector<std::uint64_t> c(n);
    for (std::size_t i = 0; i < n; ++i) c[i] = i;
    return Value::pair(Value::nat_seq(c),
                       Value::nat_seq({0, n / 3, n / 2, n - 1}));
  };
  auto nsc64 = L::apply_fn(f, mk(64)).cost;
  auto nsa64 = eval(g, mk(64)).cost;
  auto nsc1k = L::apply_fn(f, mk(1024)).cost;
  auto nsa1k = eval(g, mk(1024)).cost;
  const double r64 =
      static_cast<double>(nsa64.work) / static_cast<double>(nsc64.work);
  const double r1k =
      static_cast<double>(nsa1k.work) / static_cast<double>(nsc1k.work);
  EXPECT_LT(r1k, r64 * 2.0 + 1.0);
}

TEST(FromNsc, OpenTermsViaContext) {
  // Translate the open term x + y under context [x:N, y:N].
  Context ctx{{"x", N}, {"y", N}};
  auto m = L::add(L::var("x"), L::var("y"));
  NsaRef g = from_nsc(m, ctx);
  auto env_val = encode_context({Value::nat(30), Value::nat(12)});
  EXPECT_EQ(eval(g, env_val).value->as_nat(), 42u);
}

}  // namespace
}  // namespace nsc::nsa
