#include "butterfly/butterfly.hpp"

#include <algorithm>
#include <unordered_map>

#include "support/checked.hpp"
#include "support/error.hpp"

namespace nsc::net {

Butterfly::Butterfly(unsigned q) : q_(q) {
  if (q > 24) throw Error("butterfly: q too large to simulate");
}

RouteStats Butterfly::monotone_route(const std::vector<std::uint32_t>& src,
                                     const std::vector<std::uint32_t>& dst) const {
  if (src.size() != dst.size()) {
    throw Error("monotone_route: src/dst size mismatch");
  }
  RouteStats stats;
  stats.packets = src.size();
  stats.steps = q_;
  if (src.empty()) return stats;

  for (std::size_t i = 0; i + 1 < src.size(); ++i) {
    if (src[i] > src[i + 1] || dst[i] > dst[i + 1]) {
      throw Error("monotone_route: route is not monotone");
    }
  }
  const std::uint32_t row_mask = static_cast<std::uint32_t>(rows() - 1);
  for (auto r : src) {
    if ((r & row_mask) != r) throw Error("monotone_route: src row overflow");
  }
  for (auto r : dst) {
    if ((r & row_mask) != r) throw Error("monotone_route: dst row overflow");
  }

  // Greedy bit-fixing, highest dimension first.  At the transition into
  // level l (1-based), bit (q - l) of the row is set to the destination's.
  std::vector<std::uint32_t> at(src);
  std::unordered_map<std::uint64_t, std::uint64_t> edge_load;
  for (unsigned level = 1; level <= q_; ++level) {
    edge_load.clear();
    const unsigned bit = q_ - level;
    for (std::size_t i = 0; i < at.size(); ++i) {
      const std::uint32_t from = at[i];
      const std::uint32_t to =
          (from & ~(std::uint32_t{1} << bit)) | (dst[i] & (std::uint32_t{1} << bit));
      const std::uint64_t edge =
          (static_cast<std::uint64_t>(from) << 32) | to;
      const std::uint64_t load = ++edge_load[edge];
      if (load > stats.max_edge_load) stats.max_edge_load = load;
      at[i] = to;
    }
  }
  // Greedy bit-fixing of a monotone route has constant edge congestion
  // (at most 2 packets per edge; see the header note), so delivery with
  // queuing takes q * max_load = O(log n) steps.
  stats.oblivious_ok = stats.max_edge_load <= 2;
  stats.steps = sat_mul(q_, std::max<std::uint64_t>(1, stats.max_edge_load));
  for (std::size_t i = 0; i < at.size(); ++i) {
    if (at[i] != dst[i]) throw Error("monotone_route: routing failed");
  }
  return stats;
}

RouteStats Butterfly::replicate(const std::vector<std::uint64_t>& seg_lens,
                                const std::vector<std::uint64_t>& counts) const {
  if (seg_lens.size() != counts.size()) {
    throw Error("replicate: seg/count size mismatch");
  }
  RouteStats stats;
  // Pad each subsequence to a power of two and place it at an address
  // divisible by its padded length (one monotone routing pass), then
  // broadcast over the remaining dimensions, higher dimension first
  // (the proof of Prop 2.1).  Both phases are edge-disjoint, so the step
  // count is 2q per full wave, with ceil(total / rows) waves when the
  // padded output exceeds the machine width.
  std::uint64_t total_padded = 0;
  std::uint64_t packets = 0;
  for (std::size_t t = 0; t < seg_lens.size(); ++t) {
    const std::uint64_t padded =
        seg_lens[t] == 0 ? 0 : ceil_pow2(seg_lens[t]);
    total_padded = sat_add(total_padded, sat_mul(padded, counts[t]));
    packets = sat_add(packets, sat_mul(seg_lens[t], counts[t]));
  }
  const std::uint64_t waves =
      total_padded == 0 ? 1 : (total_padded + rows() - 1) / rows();
  stats.packets = packets;
  stats.steps = sat_mul(waves, 2 * static_cast<std::uint64_t>(q_));
  stats.max_edge_load = 1;
  return stats;
}

RouteStats Butterfly::scan(std::size_t n) const {
  RouteStats stats;
  const std::uint64_t waves =
      n == 0 ? 1 : (static_cast<std::uint64_t>(n) + rows() - 1) / rows();
  stats.packets = n;
  stats.steps = sat_mul(waves, 2 * static_cast<std::uint64_t>(q_));
  stats.max_edge_load = 1;
  return stats;
}

std::uint64_t butterfly_steps(const bvram::TraceEntry& entry, unsigned q) {
  const std::uint64_t width = std::uint64_t{1} << q;
  const std::uint64_t waves =
      entry.work == 0 ? 1 : (entry.work + width - 1) / width;
  const std::uint64_t logn = q == 0 ? 1 : q;
  switch (entry.op) {
    // Local elementwise work: no communication at all (Prop 2.1 proof).
    case bvram::Op::Arith:
    case bvram::Op::Move:
    case bvram::Op::LoadConst:
    case bvram::Op::LoadEmpty:
    case bvram::Op::Enumerate:
    case bvram::Op::Goto:
    case bvram::Op::GotoIfEmpty:
    case bvram::Op::Halt:
      return waves;
    // One monotone routing pass.
    case bvram::Op::Append:
    case bvram::Op::BmRoute:
      return sat_mul(waves, logn);
    // Replication: padding route + broadcast stages.
    case bvram::Op::SbmRoute:
      return sat_mul(waves, 2 * logn);
    // Compaction: scan for destinations + a monotone route.
    case bvram::Op::Select:
      return sat_mul(waves, 3 * logn);
    // Up-sweep + down-sweep.
    case bvram::Op::ScanPlus:
      return sat_mul(waves, 2 * logn);
    // length is a reduction: an up-sweep.
    case bvram::Op::Length:
      return sat_mul(waves, logn);
  }
  return waves;
}

std::uint64_t butterfly_steps_for_trace(
    const std::vector<bvram::TraceEntry>& trace, unsigned q) {
  std::uint64_t total = 0;
  for (const auto& e : trace) total = sat_add(total, butterfly_steps(e, q));
  return total;
}

}  // namespace nsc::net
