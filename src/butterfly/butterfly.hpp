// Butterfly-network implementation of BVRAM instructions (Prop 2.1):
// "Any BVRAM instruction of work complexity W can be implemented in time
//  O(log n) on a butterfly network with n log n nodes, where n = O(W),
//  using only oblivious routing algorithms."
//
// The simulator models a butterfly with 2^q rows and q+1 levels (so
// (q+1) * 2^q nodes).  Packets move level by level in lockstep; one step
// advances every packet one level.  The routing algorithms are the ones
// from the proof:
//
//  * monotone routing (append, bm-route, select-compaction): greedy
//    bit-fixing (Leighton 1992, p. 534).  For monotone routes (sorted
//    sources to sorted, duplicate-free destinations) greedy bit-fixing has
//    *constant* edge congestion -- at most two packets ever share a
//    directed edge in a step (two packets collide at level l only if their
//    source suffixes above l and destination prefixes through l agree,
//    which pins a unique partner) -- so queued delivery completes in
//    q * max_load = O(log n) steps.  The simulator measures the actual
//    congestion and reports `oblivious_ok = (max_edge_load <= 2)`.
//  * replication (sbm-route): round the subsequences up to powers of two,
//    place each at an aligned address, and broadcast over the remaining
//    dimensions, higher dimension first (the proof's q-stage scheme);
//    each level at most doubles the packet population, edge-disjointly.
//  * scan (the ScanPlus extension): an up-sweep and a down-sweep across
//    the q dimensions, 2q steps, one value per row-wire.
//
// The grouped mode models p < W ("group adjacent elements of the array in
// the same processor"): an instruction of work W on an n-row butterfly
// takes O((W/n) log n) steps.
#pragma once

#include <cstdint>
#include <vector>

#include "bvram/machine.hpp"

namespace nsc::net {

struct RouteStats {
  std::uint64_t steps = 0;         ///< lockstep network steps
  std::uint64_t packets = 0;       ///< packets injected
  std::uint64_t max_edge_load = 0; ///< max packets over one edge in one step
  bool oblivious_ok = true;        ///< no greedy-routing contention observed
};

class Butterfly {
 public:
  /// A butterfly with 2^q rows (q >= 0) and q+1 levels.
  explicit Butterfly(unsigned q);

  unsigned q() const { return q_; }
  std::size_t rows() const { return std::size_t{1} << q_; }
  /// (q+1) * 2^q nodes -- the "n log n nodes" of Prop 2.1.
  std::size_t nodes() const { return (q_ + 1) * rows(); }

  /// Route packet i from row src[i] to row dst[i] by greedy bit-fixing.
  /// Requires the route to be monotone (src and dst both ascending);
  /// verifies edge-disjointness.
  RouteStats monotone_route(const std::vector<std::uint32_t>& src,
                            const std::vector<std::uint32_t>& dst) const;

  /// The proof's sbm-route scheme: seg_lens[t] items, replicated counts[t]
  /// times.  Returns the stats of the padding move plus the broadcast
  /// stages.
  RouteStats replicate(const std::vector<std::uint64_t>& seg_lens,
                       const std::vector<std::uint64_t>& counts) const;

  /// Up-sweep/down-sweep prefix scan over the first n rows: 2q steps.
  RouteStats scan(std::size_t n) const;

 private:
  unsigned q_;
};

/// Butterfly step count for one executed BVRAM instruction (from its trace
/// entry), on a machine with 2^q rows.  Arithmetic with <= 2^q elements is
/// local (1 step); longer vectors are grouped (ceil(len / 2^q) steps);
/// data-movement instructions cost O(ceil(W / 2^q) * q) steps.
std::uint64_t butterfly_steps(const bvram::TraceEntry& entry, unsigned q);

/// Total butterfly steps for a whole BVRAM trace.
std::uint64_t butterfly_steps_for_trace(
    const std::vector<bvram::TraceEntry>& trace, unsigned q);

}  // namespace nsc::net
