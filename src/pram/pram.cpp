#include "pram/pram.hpp"

#include <unordered_set>

#include "support/checked.hpp"

namespace nsc::pram {

CrewPram::CrewPram(std::size_t memory_words, std::size_t processors)
    : mem_(memory_words, 0), procs_(processors) {
  if (processors == 0) throw Error("CREW PRAM needs at least one processor");
}

std::uint64_t& CrewPram::mem(std::size_t i) { return mem_.at(i); }
std::uint64_t CrewPram::mem(std::size_t i) const { return mem_.at(i); }

void CrewPram::step(const std::vector<ProcOp>& ops) {
  if (ops.size() > procs_) {
    throw Error("more ops than processors in one step");
  }
  // Gather writes first (lockstep semantics: all reads before all writes),
  // detecting write conflicts.
  std::unordered_set<std::size_t> written;
  std::vector<std::pair<std::size_t, std::uint64_t>> writes;
  for (const auto& op : ops) {
    switch (op.kind) {
      case ProcOpKind::Nop:
        break;
      case ProcOpKind::CopyAdd: {
        const std::uint64_t a = mem_.at(op.a);
        const std::uint64_t b =
            op.b == std::size_t(-1) ? 0 : mem_.at(op.b);
        if (!written.insert(op.dst).second) {
          throw Error("CREW violation: concurrent write to cell " +
                      std::to_string(op.dst));
        }
        writes.emplace_back(op.dst, sat_add(a, b));
        break;
      }
      case ProcOpKind::Scan: {
        // One scan primitive call; cells in range count as written.
        for (std::size_t i = op.range_begin; i < op.range_end; ++i) {
          if (!written.insert(i).second) {
            throw Error("CREW violation: scan overlaps another write");
          }
        }
        std::uint64_t acc = 0;
        for (std::size_t i = op.range_begin; i < op.range_end; ++i) {
          const std::uint64_t v = mem_.at(i);
          writes.emplace_back(i, acc);
          acc = sat_add(acc, v);
        }
        break;
      }
    }
  }
  for (const auto& [dst, v] : writes) mem_.at(dst) = v;
  ++steps_;
}

std::uint64_t scheduled_time(const std::vector<bvram::TraceEntry>& trace,
                             std::size_t p) {
  if (p == 0) throw Error("scheduled_time: p must be positive");
  std::uint64_t total = 0;
  for (const auto& e : trace) {
    total = sat_add(total, 1 + (e.work + p - 1) / p);
  }
  return total;
}

std::uint64_t brent_bound(std::uint64_t time, std::uint64_t work,
                          std::size_t p) {
  return sat_add(time, work / p);
}

}  // namespace nsc::pram
