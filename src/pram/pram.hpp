// CREW PRAM with scan primitives and Brent-style work-time scheduling
// (Proposition 3.2): any NSC function of time T and work W runs on a
// p-processor CREW PRAM with scans in O(T + W/p) steps.
//
// Two pieces:
//  * a small *genuine* CREW PRAM core (shared memory, lockstep processor
//    steps, concurrent reads allowed, concurrent writes detected as errors,
//    unit-cost scan over a memory range), used by tests to validate the
//    machine model itself; and
//  * the scheduler: given the per-instruction work trace of a BVRAM run
//    (which has the same T/W as the NSC source by Theorem 7.1 / Remark
//    7.3), each vector instruction of work w is simulated by ceil(w/p)
//    lockstep PRAM steps (elementwise ops directly; routing and scans via
//    the scan primitive), giving  sum_i (1 + ceil(w_i / p)) = O(T + W/p).
#pragma once

#include <cstdint>
#include <vector>

#include "bvram/machine.hpp"
#include "support/error.hpp"

namespace nsc::pram {

// -- the CREW core -----------------------------------------------------------

enum class ProcOpKind { Nop, CopyAdd, Scan };

/// One processor's action in a lockstep step: out[dst] = mem[a] + mem[b]
/// (CopyAdd with b == dst sentinel -1 meaning 0), or a scan over a range.
struct ProcOp {
  ProcOpKind kind = ProcOpKind::Nop;
  std::size_t dst = 0;
  std::size_t a = 0;
  std::size_t b = std::size_t(-1);  // -1: treat as 0 (pure copy)
  std::size_t range_begin = 0, range_end = 0;  // Scan: [begin, end)
};

class CrewPram {
 public:
  explicit CrewPram(std::size_t memory_words, std::size_t processors);

  std::uint64_t& mem(std::size_t i);
  std::uint64_t mem(std::size_t i) const;
  std::size_t processors() const { return procs_; }
  std::uint64_t steps() const { return steps_; }

  /// Execute one lockstep step: each entry is one processor's op (at most
  /// `processors()` of them).  Concurrent reads are fine; two writes to
  /// the same cell in one step throw (CREW violation).  A Scan op counts
  /// as one step (the "with scan primitives" model) and exclusively
  /// prefix-sums the range in place.
  void step(const std::vector<ProcOp>& ops);

 private:
  std::vector<std::uint64_t> mem_;
  std::size_t procs_;
  std::uint64_t steps_ = 0;
};

// -- Brent scheduling of BVRAM traces ----------------------------------------

/// Simulated CREW-with-scan parallel time for a BVRAM trace on p
/// processors: sum over instructions of (1 + ceil(work / p)).
std::uint64_t scheduled_time(const std::vector<bvram::TraceEntry>& trace,
                             std::size_t p);

/// The Prop 3.2 bound for comparison: c1 * T + c2 * W / p with c1=c2=1.
std::uint64_t brent_bound(std::uint64_t time, std::uint64_t work,
                          std::size_t p);

}  // namespace nsc::pram
