// Elementwise fusion planning: group maximal runs of adjacent
// elementwise instructions into bvram::FusedGroup super-instructions
// that the execution engine runs as one pass over the lanes.
//
// This is an *annotation* pass, not a rewrite: the instruction sequence
// is untouched (disassembly, traces, and run_reference never see the
// plan), so it runs after the whole O2 pipeline, on the final code --
// sa::compile_nsa / compile_nsc attach the plan right after the
// last-use masks.  Group formation is purely static:
//
//   * eligible ops: Move, Arith, Enumerate, ScanPlus (mid-group; forces
//     the serial fused loop) and Select (terminal only -- its output
//     extent is data-dependent, so nothing may consume it in-lane);
//   * a group is a contiguous straight-line run: no eligible
//     instruction is a jump, and no jump elsewhere targets the group's
//     interior (targeting the first instruction is fine -- the engine
//     only enters groups at their head);
//   * every value is classified as group input (read from the register
//     file), intermediate (dies inside the group: overwritten by a
//     later in-group def, or liveness-dead -- Program::last_use -- after
//     its last in-group read; its buffer is elided), or output
//     (committed to the register file when the group ends);
//   * a committed Move of an in-group value sinks its commit onto the
//     ultimate producer, so the copy never happens;
//   * groups that elide nothing (or whose only effect would be to turn
//     the engine's O(1) move-swaps into copies) are not worth a plan
//     and are skipped.
//
// Everything dynamic -- the common extent check, trap reproduction, the
// instruction budget -- is the executor's job (see bvram::FusedGroup and
// docs/fusion.md).
#pragma once

#include <vector>

#include "bvram/machine.hpp"

namespace nsc::opt {

/// Compute the fusion plan for `p` as it stands.  Returns disjoint
/// groups in increasing `begin` order; may be empty.
std::vector<bvram::FusedGroup> compute_fusion(const bvram::Program& p);

/// Compute and attach the plan: p.fusion = compute_fusion(p).  Uses
/// p.last_use when present (better elision), so run it after
/// opt::annotate_last_use.  Must be re-run after any mutation of p.code
/// (the optimizer's PassManager clears stale plans).
void annotate_fusion(bvram::Program& p);

}  // namespace nsc::opt
