// Global value numbering, scoped by the dominator tree.
//
// PR 1's peephole ran value-numbering CSE over extended basic blocks
// only: facts flowed along unique-predecessor chains and died at every
// join point, so the identical scan/route subgraphs the flattening
// compiler re-emits per segment-descriptor level (seg_sum /
// gather_sorted inside FlattenF, SplitF, the Sum cases) stayed
// redundant whenever a combine_vec branch diamond sat between two
// copies.  This pass walks the *dominator tree* instead: everything
// established in a block holds in every block it dominates, so a
// recomputation after a join fuses with the original before the branch.
//
// Non-SSA soundness: a table entry (expression -> {reg, vn}) is usable
// only while `reg` still holds that value.  Within the dominator-tree
// DFS the table tracks the state at the end of the dominating block;
// registers that may be redefined on some idom(c) -> c path that avoids
// re-entering idom(c) are invalidated ("killed" to a fresh value
// number) at c's entry.  For a block whose only CFG predecessor is its
// dominator-tree parent the kill set is empty (the EBB case); for a
// loop header dominated by the preheader it is exactly the loop body's
// definitions, which is what makes header facts sound on every
// iteration without iterating the analysis.
//
// The rewrite catalog is the peephole's original CSE logic, unchanged:
//   * a recomputation whose operands are value-identical to an earlier
//     eligible instruction becomes a Move from the earlier result
//     (trap-safe: re-executing a trapping instruction on identical
//     operand values cannot trap if the first execution did not), and
//     every eligible op's executed work is >= the Move's on any input
//     EXCEPT LoadConst (work 1 < the Move's 2), Length (1 < 2 when the
//     source is empty at run time), and SbmRoute (the only expanding
//     op); those are kept in place but their destination is aliased to
//     the earlier value number so downstream expressions still fuse;
//   * the all-ones route algebra (PR 3): an executed bm-route whose
//     data is the known singleton [1] is the catalog's ones_like
//     broadcast -- its result is all-ones with the bound register's
//     length.  Select of such a register is a copy, a bm-route whose
//     counts/bound/data align with the ones fact replicates every
//     element exactly once (a Move at half the W, both certificates
//     discharged by value equality), and Length/Enumerate of an
//     all-ones register canonicalize to the broadcast source.
#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

#include "opt/cfg.hpp"
#include "opt/opt.hpp"
#include "opt/valuetable.hpp"

namespace nsc::opt {
namespace {

using bvram::Instr;
using bvram::Op;
using bvram::Program;
using lang::ArithOp;

/// Computes the registers that may be redefined on some path
/// idom(c) ->* c that does not pass through idom(c) again: the forward
/// reach of idom(c)'s successors intersected with the backward reach of
/// c's predecessors, both computed with idom(c) removed from the graph.
/// Empty when c's only predecessor is idom(c).  The forward reach is
/// shared by every dominator-tree child of the same idom, so it is
/// memoized per idom across the DFS.
class KillSets {
 public:
  KillSets(const Program& p, const Cfg& cfg) : p_(p), cfg_(cfg) {}

  std::vector<std::uint32_t> of(std::size_t c, std::size_t idom) {
    const auto& preds = cfg_.blocks[c].preds;
    if (preds.size() == 1 && preds[0] == idom) return {};

    const std::size_t nb = cfg_.blocks.size();
    auto cached = fwd_cache_.find(idom);
    if (cached == fwd_cache_.end()) {
      std::vector<bool> fwd(nb, false);
      std::vector<std::size_t> stack;
      for (std::size_t s : cfg_.blocks[idom].succs) {
        if (s != idom && !fwd[s]) {
          fwd[s] = true;
          stack.push_back(s);
        }
      }
      while (!stack.empty()) {
        const std::size_t b = stack.back();
        stack.pop_back();
        for (std::size_t s : cfg_.blocks[b].succs) {
          if (s != idom && !fwd[s]) {
            fwd[s] = true;
            stack.push_back(s);
          }
        }
      }
      cached = fwd_cache_.emplace(idom, std::move(fwd)).first;
    }
    const std::vector<bool>& fwd = cached->second;

    std::vector<bool> bwd(nb, false);
    std::vector<std::size_t> stack;
    for (std::size_t q : preds) {
      if (q != idom && !bwd[q]) {
        bwd[q] = true;
        stack.push_back(q);
      }
    }
    while (!stack.empty()) {
      const std::size_t b = stack.back();
      stack.pop_back();
      for (std::size_t q : cfg_.blocks[b].preds) {
        if (q != idom && !bwd[q]) {
          bwd[q] = true;
          stack.push_back(q);
        }
      }
    }

    std::vector<bool> killed(p_.num_regs, false);
    std::vector<std::uint32_t> out;
    for (std::size_t b = 0; b < nb; ++b) {
      if (!fwd[b] || !bwd[b]) continue;
      for (std::size_t i = cfg_.blocks[b].begin; i < cfg_.blocks[b].end;
           ++i) {
        const Instr& in = p_.code[i];
        if (in.has_dst() && !killed[in.dst]) {
          killed[in.dst] = true;
          out.push_back(in.dst);
        }
      }
    }
    return out;
  }

 private:
  const Program& p_;
  const Cfg& cfg_;
  // idom -> forward reach of its successors with the idom removed; one
  // bit-vector per dominator-tree node that has a merge child, shared
  // by all of that node's children.
  std::unordered_map<std::size_t, std::vector<bool>> fwd_cache_;
};

class Gvn final : public Pass {
 public:
  const char* name() const override { return "gvn"; }

  bool run(Program& p) override {
    if (p.code.empty() || p.num_regs == 0) return false;
    const Cfg cfg = Cfg::build(p);
    const DomTree dom = DomTree::build(cfg);
    const SlotMap m = build_av_slots(p);
    AvDomain avdom{&p, &m};
    const ForwardDataflow<AvState, AvDomain> flow(p, cfg, avdom);

    bool changed = false;
    std::vector<bool> keep(p.code.size(), true);
    VnTable vn(p.num_regs);
    // vn of an all-ones vector -> vn of the register it was broadcast
    // over (same length by the route certificate).  Keyed by value
    // number, so no undo log is needed: value numbers are never reused,
    // and a rolled-back subtree's numbers are unreachable from sibling
    // scopes.  A fact is only derived from an executed (kept) bm-route,
    // so everything downstream of it in the dominated region may rely
    // on its certificates having held.
    std::map<std::uint64_t, std::uint64_t> ones_of;

    auto process_block = [&](std::size_t b) {
      AvState s = flow.in_state_of(b);
      for (std::size_t i = cfg.blocks[b].begin; i < cfg.blocks[b].end; ++i) {
        Instr& in = p.code[i];

        auto drop = [&] {
          keep[i] = false;
          changed = true;
        };
        auto replace = [&](Instr ni) {
          in = ni;
          changed = true;
        };

        // Route algebra over the ones facts (see the header comment).
        if (in.op == Op::Select && ones_of.count(vn.reg_vn[in.a]) > 0) {
          // sigma of an all-ones vector drops nothing: a copy.  W is
          // unchanged (|in| + |out| = 2n either way), and Select never
          // traps.
          replace({Op::Move, ArithOp::Add, in.dst, in.a, 0, 0, 0, 0});
        } else if (in.op == Op::BmRoute) {
          const auto it = ones_of.find(vn.reg_vn[in.b]);
          if (it != ones_of.end() && vn.reg_vn[in.a] == vn.reg_vn[in.b] &&
              vn.reg_vn[in.c] == it->second) {
            // All-ones counts replicate each element once, and both
            // certificates are discharged statically: |counts| =
            // |broadcast source| = |data| (value-equal registers), and
            // sum(counts) = |counts| = |bound| (bound value-equal to
            // counts).  The Move charges 2n against the route's 4n.
            replace({Op::Move, ArithOp::Add, in.dst, in.c, 0, 0, 0, 0});
          }
        }

        // Length and Enumerate depend only on their operand's *length*,
        // and an all-ones vector has its broadcast source's length: key
        // them under the source's value number so e.g. enumerate(ones(x))
        // fuses with enumerate(x) via ordinary CSE.
        auto canon_key = [&](const Instr& ins) {
          VnKey key = vn.key_of(ins);
          if (ins.op == Op::Length || ins.op == Op::Enumerate) {
            const auto it = ones_of.find(vn.reg_vn[ins.a]);
            if (it != ones_of.end()) std::get<3>(key) = it->second + 1;
          }
          return key;
        };

        // CSE on whatever the instruction now is.  A hit normally
        // becomes a Move from the earlier result; LoadConst, Length and
        // SbmRoute are kept as-is but aliased (see the header comment).
        std::uint64_t alias_vn = 0;
        bool aliased = false;
        if (keep[i] && cse_eligible(p.code[i])) {
          const Instr& cur = p.code[i];
          const VnKey key = canon_key(cur);
          auto it = vn.exprs.find(key);
          if (it != vn.exprs.end() &&
              vn.reg_vn[it->second.reg] == it->second.vn) {
            const std::uint32_t e = it->second.reg;
            if (e == cur.dst) {
              drop();  // recomputes the value dst already holds
            } else if (cur.op == Op::LoadConst || cur.op == Op::Length ||
                       cur.op == Op::SbmRoute) {
              alias_vn = it->second.vn;
              aliased = true;
            } else {
              replace({Op::Move, ArithOp::Add, cur.dst, e, 0, 0, 0, 0});
            }
          }
        }

        // Value-number and abstract-state bookkeeping for the (possibly
        // rewritten) instruction.
        const Instr& fin = p.code[i];
        // An executed bm-route whose data is the known singleton [1] is
        // the catalog's ones_like broadcast: its result is all-ones with
        // the bound register's length.  Capture the bound's vn before the
        // dst assignment below possibly renumbers it.
        const bool broadcasts_ones = keep[i] && fin.op == Op::BmRoute &&
                                     m.get(s, fin.c) == AV::konst(1);
        const std::uint64_t broadcast_like_vn =
            broadcasts_ones ? vn.reg_vn[fin.a] : 0;
        if (fin.has_dst()) {
          if (keep[i]) {
            if (fin.op == Op::Move) {
              vn.set_reg_vn(fin.dst, vn.reg_vn[fin.a]);
            } else if (aliased) {
              // Same value as the recorded expression; keep its entry.
              vn.set_reg_vn(fin.dst, alias_vn);
            } else if (cse_eligible(fin)) {
              const VnKey key = canon_key(fin);
              const std::uint64_t v = vn.next_vn++;
              vn.set_reg_vn(fin.dst, v);
              vn.set_expr(key, {fin.dst, v});
            } else {
              vn.set_reg_vn(fin.dst, vn.next_vn++);
            }
            if (broadcasts_ones) {
              ones_of[vn.reg_vn[fin.dst]] = broadcast_like_vn;
            }
            avdom.transfer(fin, s);
          }
          // Dropped instructions leave dst's value (and number) unchanged.
        }
      }
    };

    // Depth-first over the dominator tree: facts flow into dominated
    // subtrees, sibling subtrees roll back, and each block first kills
    // the registers that intervening (non-dominating) code may redefine.
    KillSets kills(p, cfg);
    struct Frame {
      std::size_t block;
      std::size_t mark;
      std::size_t next_child;
    };
    std::vector<Frame> stack{{0, vn.mark(), 0}};
    process_block(0);
    while (!stack.empty()) {
      Frame& f = stack.back();
      if (f.next_child < dom.children[f.block].size()) {
        const std::size_t c = dom.children[f.block][f.next_child++];
        const std::size_t mark = vn.mark();
        for (std::uint32_t r : kills.of(c, f.block)) {
          vn.set_reg_vn(r, vn.next_vn++);
        }
        stack.push_back({c, mark, 0});
        process_block(c);
      } else {
        vn.rollback(f.mark);
        stack.pop_back();
      }
    }

    const bool erased = erase_unkept(p, keep);
    return changed || erased;
  }
};

}  // namespace

std::unique_ptr<Pass> make_gvn() { return std::make_unique<Gvn>(); }

}  // namespace nsc::opt
