// Global copy propagation + move coalescing.
//
// Forward must-dataflow over the CFG (the shared ForwardDataflow
// driver).  Only registers that are the destination of some Move can
// ever carry a copy fact, so the dataflow state is a vector over those
// "slots" only (naive compiled programs are huge but move-sparse, and
// this keeps the pass linear-ish instead of O(instructions x
// registers)).  Each slot holds the register its value is currently a
// verbatim copy of (resolved to the ultimate source, so move chains
// collapse in one rewrite), or NONE.  Meet is elementwise agreement.
//
// Rewriting a use of a copy to its original register never changes any
// executed value or length, so T, W, and trap behavior are untouched;
// the payoff is that the compiler's staging moves lose their last use
// and die in the following DCE pass, and moves rewritten into
// `V_i <- V_i` are dropped by the peephole pass.
#include <cstdint>
#include <vector>

#include "opt/cfg.hpp"
#include "opt/opt.hpp"

namespace nsc::opt {
namespace {

using bvram::Instr;
using bvram::Op;
using bvram::Program;

constexpr std::uint32_t kNone = 0xffffffff;
constexpr std::uint32_t kNoSlot = 0xffffffff;

using State = std::vector<std::uint32_t>;  // slot -> copy-of reg, or kNone

struct CopyDomain {
  const std::vector<std::uint32_t>* slot_of = nullptr;
  std::uint32_t num_slots = 0;

  State entry() const { return State(num_slots, kNone); }
  State unreached() const { return State(num_slots, kNone); }

  void meet_into(State& a, const State& b) const {
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (a[i] != b[i]) a[i] = kNone;
    }
  }

  std::uint32_t resolve(const State& s, std::uint32_t r) const {
    const std::uint32_t slot = (*slot_of)[r];
    if (slot == kNoSlot || s[slot] == kNone) return r;
    return s[slot];
  }

  /// Apply one instruction's effect to the copy state.
  void transfer(const Instr& in, State& s) const {
    if (!in.has_dst()) return;
    if (in.op == Op::Move) {
      const std::uint32_t src = resolve(s, in.a);
      if (src == in.dst) return;  // re-writing dst with its own value: no-op
      kill(s, in.dst);
      s[(*slot_of)[in.dst]] = src;  // Move dsts always have a slot
      return;
    }
    kill(s, in.dst);
  }

  /// Invalidate every fact involving register `r` (it is being redefined).
  void kill(State& s, std::uint32_t r) const {
    for (auto& e : s) {
      if (e == r) e = kNone;
    }
    const std::uint32_t slot = (*slot_of)[r];
    if (slot != kNoSlot) s[slot] = kNone;
  }
};

class CopyProp final : public Pass {
 public:
  const char* name() const override { return "copy-prop"; }

  bool run(Program& p) override {
    if (p.code.empty() || p.num_regs == 0) return false;

    // Slot assignment: one dataflow cell per Move destination.
    std::vector<std::uint32_t> slot_of(p.num_regs, kNoSlot);
    CopyDomain dom;
    dom.slot_of = &slot_of;
    for (const Instr& in : p.code) {
      if (in.op == Op::Move && slot_of[in.dst] == kNoSlot) {
        slot_of[in.dst] = dom.num_slots++;
      }
    }
    if (dom.num_slots == 0) return false;

    const Cfg cfg = Cfg::build(p);
    const ForwardDataflow<State, CopyDomain> flow(p, cfg, dom);

    // Rewrite every use to its resolved source under the block's in-state.
    bool changed = false;
    for (std::size_t b = 0; b < cfg.blocks.size(); ++b) {
      State s = flow.in_state_of(b);
      for (std::size_t i = cfg.blocks[b].begin; i < cfg.blocks[b].end; ++i) {
        Instr& in = p.code[i];
        in.map_srcs([&](std::uint32_t r) {
          const std::uint32_t nr = dom.resolve(s, r);
          if (nr != r) changed = true;
          return nr;
        });
        dom.transfer(in, s);
      }
    }
    return changed;
  }
};

}  // namespace

std::unique_ptr<Pass> make_copy_prop() { return std::make_unique<CopyProp>(); }

}  // namespace nsc::opt
