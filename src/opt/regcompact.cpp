// Dead-register elimination: renumber the register file so registers
// that no instruction touches disappear from the machine shape.  The
// I/O convention pins V_0 .. V_{max(num_inputs, num_outputs)-1} in
// place (inputs arrive there, outputs are read from there) whether or
// not they are otherwise used.
#include <algorithm>
#include <cstdint>
#include <vector>

#include "opt/opt.hpp"

namespace nsc::opt {
namespace {

using bvram::Program;

class RegCompact final : public Pass {
 public:
  const char* name() const override { return "reg-compact"; }

  bool run(Program& p) override {
    const std::size_t pinned = std::max(p.num_inputs, p.num_outputs);
    if (p.num_regs <= pinned) return false;
    std::vector<bool> used(p.num_regs, false);
    for (const auto& in : p.code) {
      if (in.has_dst()) used[in.dst] = true;
      for (std::uint32_t r : in.srcs()) used[r] = true;
    }
    std::vector<std::uint32_t> map(p.num_regs);
    std::uint32_t next = 0;
    for (std::size_t r = 0; r < p.num_regs; ++r) {
      if (r < pinned || used[r]) {
        map[r] = next++;
      } else {
        map[r] = 0xffffffff;  // never referenced; no operand maps here
      }
    }
    if (next == p.num_regs) return false;  // no gaps: identity
    for (auto& in : p.code) {
      if (in.has_dst()) in.dst = map[in.dst];
      in.map_srcs([&](std::uint32_t r) { return map[r]; });
    }
    p.num_regs = next;
    return true;
  }
};

}  // namespace

std::unique_ptr<Pass> make_reg_compact() {
  return std::make_unique<RegCompact>();
}

}  // namespace nsc::opt
