// Dead-code elimination: unreachable blocks, plus liveness-based removal
// of instructions whose destination register is never read again.
//
// Liveness (opt/liveness.hpp, shared with the engine's last-use export)
// is a backward may-dataflow on the fixed register file; the boundary
// condition is that V_0 .. V_{num_outputs-1} are live wherever control
// can leave the program (Halt, a jump to code.size(), or falling off
// the end).  An instruction is removed only if it defines a dead
// register AND cannot trap: Arith and the routing instructions double
// as the compiler's runtime certificates (zip length checks, the Omega
// trap is literally an Arith of [1] with []), so they survive even when
// their result is dead.
#include <cstdint>
#include <vector>

#include "opt/cfg.hpp"
#include "opt/liveness.hpp"
#include "opt/opt.hpp"

namespace nsc::opt {
namespace {

using bvram::Instr;
using bvram::Program;

class Dce final : public Pass {
 public:
  const char* name() const override { return "dce"; }

  bool run(Program& p) override {
    if (p.code.empty()) return false;
    const Cfg cfg = Cfg::build(p);
    const std::size_t nb = cfg.blocks.size();
    const std::vector<bool> reachable = cfg.reachable();
    const Liveness lv = Liveness::compute(p, cfg);

    // Removal walk: backward per block with the precise local live set
    // (uses of instructions removed in this very walk generate no
    // liveness).
    std::vector<bool> keep(p.code.size(), true);
    bool changed = false;
    for (std::size_t b = 0; b < nb; ++b) {
      if (!reachable[b]) {
        for (std::size_t i = cfg.blocks[b].begin; i < cfg.blocks[b].end; ++i) {
          keep[i] = false;
          changed = true;
        }
        continue;
      }
      std::vector<bool> live = lv.live_out_of(p, cfg, b);
      for (std::size_t i = cfg.blocks[b].end; i-- > cfg.blocks[b].begin;) {
        const Instr& in = p.code[i];
        if (in.has_dst() && !live[in.dst] && !in.can_trap()) {
          keep[i] = false;
          changed = true;
          continue;
        }
        if (in.has_dst()) live[in.dst] = false;
        for (std::uint32_t r : in.srcs()) live[r] = true;
      }
    }

    const bool erased = erase_unkept(p, keep);
    return changed || erased;
  }
};

}  // namespace

std::unique_ptr<Pass> make_dce() { return std::make_unique<Dce>(); }

}  // namespace nsc::opt
