#include "opt/liveness.hpp"

namespace nsc::opt {

using bvram::Instr;
using bvram::Program;

Liveness Liveness::compute(const Program& p, const Cfg& cfg) {
  const std::size_t nb = cfg.blocks.size();
  Liveness lv;
  lv.live_in.assign(nb, std::vector<bool>(p.num_regs, false));

  auto transfer_block = [&](std::size_t b, std::vector<bool> live) {
    for (std::size_t i = cfg.blocks[b].end; i-- > cfg.blocks[b].begin;) {
      const Instr& in = p.code[i];
      if (in.has_dst()) live[in.dst] = false;
      for (std::uint32_t r : in.srcs()) live[r] = true;
    }
    return live;
  };

  std::vector<bool> in_worklist(nb, true);
  std::vector<std::size_t> worklist;
  for (std::size_t b = 0; b < nb; ++b) worklist.push_back(b);
  while (!worklist.empty()) {
    const std::size_t b = worklist.back();
    worklist.pop_back();
    in_worklist[b] = false;
    auto li = transfer_block(b, lv.live_out_of(p, cfg, b));
    if (li != lv.live_in[b]) {
      lv.live_in[b] = std::move(li);
      for (std::size_t pred : cfg.blocks[b].preds) {
        if (!in_worklist[pred]) {
          in_worklist[pred] = true;
          worklist.push_back(pred);
        }
      }
    }
  }
  return lv;
}

std::vector<bool> Liveness::live_out_of(const Program& p, const Cfg& cfg,
                                        std::size_t b) const {
  std::vector<bool> live(p.num_regs, false);
  if (cfg.blocks[b].falls_to_exit) {
    for (std::size_t r = 0; r < p.num_outputs && r < p.num_regs; ++r) {
      live[r] = true;
    }
  }
  for (std::size_t succ : cfg.blocks[b].succs) {
    for (std::size_t r = 0; r < p.num_regs; ++r) {
      if (live_in[succ][r]) live[r] = true;
    }
  }
  return live;
}

std::vector<std::uint8_t> compute_last_use(const Program& p) {
  std::vector<std::uint8_t> mask(p.code.size(), 0);
  if (p.code.empty() || p.num_regs == 0) return mask;
  const Cfg cfg = Cfg::build(p);
  const Liveness lv = Liveness::compute(p, cfg);
  const std::vector<bool> reachable = cfg.reachable();

  for (std::size_t b = 0; b < cfg.blocks.size(); ++b) {
    if (!reachable[b]) continue;  // never executed; leave all-clear
    std::vector<bool> live = lv.live_out_of(p, cfg, b);
    for (std::size_t i = cfg.blocks[b].end; i-- > cfg.blocks[b].begin;) {
      const Instr& in = p.code[i];
      // `live` is the live-after set of instruction i.  A source register
      // that is dead here (note: if it doubles as dst, liveness of the
      // *new* value keeps the bit clear) may be recycled by the engine.
      const auto srcs = in.srcs();
      std::uint8_t m = 0;
      for (std::size_t k = 0; k < srcs.n; ++k) {
        if (!live[srcs.regs[k]]) m |= static_cast<std::uint8_t>(1u << k);
      }
      mask[i] = m;
      if (in.has_dst()) live[in.dst] = false;
      for (std::uint32_t r : in.srcs()) live[r] = true;
    }
  }
  return mask;
}

void annotate_last_use(Program& p) { p.last_use = compute_last_use(p); }

}  // namespace nsc::opt
