// Constant folding, branch simplification, and local CSE ("peephole
// fusion").
//
// A forward dataflow over the CFG tracks, per register, an abstract
// value from the lattice {UNKNOWN, EMPTY, CONST(n)} (EMPTY = the empty
// vector, CONST(n) = the singleton [n]).  The entry state knows that
// every non-input register starts empty -- the machine zero-initializes
// the register file -- which seeds a surprising amount of folding.
//
// The rewrite walk then applies, per basic block:
//   * constant folds: LoadConst+Arith -> folded LoadConst, Length /
//     Enumerate / ScanPlus / Select of a known-shape register, Append
//     with a known-empty side -> Move;
//   * branch folds: GotoIfEmpty on a known-empty register -> Goto, on a
//     known-singleton -> deleted; Goto-to-next and trailing Halt
//     deleted;
//   * self-moves (V_i <- V_i, typically produced by copy propagation)
//     and re-loads of a value a register already holds, deleted;
//   * local common-subexpression elimination by value numbering: a
//     recomputation of Length/Enumerate/ScanPlus/Select/Arith/Append/
//     routes with operands whose values are unchanged becomes a Move
//     from the earlier result (copy propagation then forwards it and
//     DCE deletes the Move).  Re-executing a trapping instruction on
//     identical operand values cannot trap if the first execution did
//     not, so CSE of Arith/routes is trap-safe.
//   * route algebra (ROADMAP): a `bm-route` whose data register is a
//     known singleton [1] is the catalog's broadcast of 1 -- its result
//     is an all-ones vector the length of the bound register.  These
//     "ones" facts (tracked per value number, alongside the VN table)
//     discharge the route certificates statically: select of an
//     all-ones register is a copy (sigma drops nothing, same W), and
//     `bm-route(bound, counts, data)` with counts all-ones-of-X,
//     data value-equal to X, and bound value-equal to counts
//     replicates every element exactly once -- a Move at half the W.
//     Length/Enumerate of an all-ones register canonicalize to the
//     broadcast source, so `enumerate`-of-`bm-route` chains fuse with
//     the source's own enumerate via ordinary CSE.
//
// Every rewrite here is chosen so that the *executed* T and W never
// increase on any input (e.g. Arith of two known-empties becomes a Move
// of an empty register, work 0, rather than a LoadEmpty, work 1).
#include <cstdint>
#include <map>
#include <tuple>
#include <vector>

#include "opt/cfg.hpp"
#include "opt/opt.hpp"

namespace nsc::opt {
namespace {

using bvram::Instr;
using bvram::Op;
using bvram::Program;
using lang::ArithOp;

// ---------------------------------------------------------------------------
// abstract values
// ---------------------------------------------------------------------------

struct AV {
  enum Kind : std::uint8_t { Unknown, Empty, Const } kind = Unknown;
  std::uint64_t n = 0;

  bool operator==(const AV&) const = default;
  static AV unknown() { return {Unknown, 0}; }
  static AV empty() { return {Empty, 0}; }
  static AV konst(std::uint64_t n) { return {Const, n}; }
};

// The dataflow state is a vector over "slots": only registers that can
// ever hold a statically-known value get one (the closure of LoadConst /
// LoadEmpty / never-written registers under the foldable operations).
// Registers without a slot are Unknown everywhere, which is exactly what
// a dense analysis would compute for them -- naive compiled programs are
// large, and this keeps the per-block state small.
constexpr std::uint32_t kNoSlot = 0xffffffff;

using State = std::vector<AV>;  // indexed by slot

struct SlotMap {
  std::vector<std::uint32_t> slot_of;  // reg -> slot or kNoSlot
  std::uint32_t num_slots = 0;

  AV get(const State& s, std::uint32_t r) const {
    const std::uint32_t slot = slot_of[r];
    return slot == kNoSlot ? AV::unknown() : s[slot];
  }
  void set(State& s, std::uint32_t r, AV v) const {
    const std::uint32_t slot = slot_of[r];
    if (slot != kNoSlot) s[slot] = v;
  }
};

AV meet(AV a, AV b) { return a == b ? a : AV::unknown(); }

bool foldable_op(Op op) {
  switch (op) {
    case Op::LoadEmpty:
    case Op::LoadConst:
    case Op::Move:
    case Op::Arith:
    case Op::Append:
    case Op::Length:
    case Op::Enumerate:
    case Op::Select:
    case Op::ScanPlus:
      return true;
    default:
      return false;
  }
}

/// Registers whose abstract value can ever be non-Unknown: never-written
/// non-input registers (they stay empty), LoadConst/LoadEmpty targets,
/// closed under the foldable operations applied to tracked sources.
SlotMap build_slots(const Program& p) {
  std::vector<bool> written(p.num_regs, false);
  for (const Instr& in : p.code) {
    if (in.has_dst()) written[in.dst] = true;
  }
  std::vector<bool> tracked(p.num_regs, false);
  for (std::size_t r = p.num_inputs; r < p.num_regs; ++r) {
    if (!written[r]) tracked[r] = true;
  }
  bool grew = true;
  while (grew) {
    grew = false;
    for (const Instr& in : p.code) {
      if (!in.has_dst() || tracked[in.dst] || !foldable_op(in.op)) continue;
      bool all_tracked = true;
      for (std::uint32_t r : in.srcs()) all_tracked &= tracked[r];
      if (all_tracked) {
        tracked[in.dst] = true;
        grew = true;
      }
    }
  }
  SlotMap m;
  m.slot_of.assign(p.num_regs, kNoSlot);
  for (std::size_t r = 0; r < p.num_regs; ++r) {
    if (tracked[r]) m.slot_of[r] = m.num_slots++;
  }
  return m;
}

/// Abstract result of an instruction given the pre-state (has_dst only).
AV eval(const Instr& in, const State& s, const SlotMap& m) {
  auto A = [&] { return m.get(s, in.a); };
  auto B = [&] { return m.get(s, in.b); };
  switch (in.op) {
    case Op::LoadEmpty:
      return AV::empty();
    case Op::LoadConst:
      return AV::konst(in.imm);
    case Op::Move:
      return A();
    case Op::Arith: {
      if (A().kind == AV::Empty && B().kind == AV::Empty) return AV::empty();
      if (A().kind == AV::Const && B().kind == AV::Const) {
        try {
          return AV::konst(lang::arith_apply(in.aop, A().n, B().n));
        } catch (const Error&) {
          return AV::unknown();  // would trap at run time: leave it be
        }
      }
      return AV::unknown();
    }
    case Op::Append: {
      if (A().kind == AV::Empty) return B();
      if (B().kind == AV::Empty) return A();
      return AV::unknown();  // two non-empties: length >= 2
    }
    case Op::Length: {
      if (A().kind == AV::Empty) return AV::konst(0);
      if (A().kind == AV::Const) return AV::konst(1);
      return AV::unknown();
    }
    case Op::Enumerate: {
      if (A().kind == AV::Empty) return AV::empty();
      if (A().kind == AV::Const) return AV::konst(0);
      return AV::unknown();
    }
    case Op::Select: {
      if (A().kind == AV::Empty) return AV::empty();
      if (A().kind == AV::Const) {
        return A().n == 0 ? AV::empty() : AV::konst(A().n);
      }
      return AV::unknown();
    }
    case Op::ScanPlus: {
      if (A().kind == AV::Empty) return AV::empty();
      if (A().kind == AV::Const) return AV::konst(0);
      return AV::unknown();
    }
    default:
      return AV::unknown();  // routes: not tracked
  }
}

/// Domain for the shared ForwardDataflow driver.
struct AvDomain {
  const Program* p = nullptr;
  const SlotMap* m = nullptr;

  State entry() const {
    State s(m->num_slots, AV::empty());  // non-input registers start empty
    for (std::size_t r = 0; r < p->num_inputs && r < p->num_regs; ++r) {
      m->set(s, r, AV::unknown());
    }
    return s;
  }
  State unreached() const { return State(m->num_slots, AV::unknown()); }
  void meet_into(State& a, const State& b) const {
    for (std::size_t i = 0; i < a.size(); ++i) a[i] = meet(a[i], b[i]);
  }
  void transfer(const Instr& in, State& s) const {
    if (in.has_dst()) m->set(s, in.dst, eval(in, s, *m));
  }
};

// ---------------------------------------------------------------------------
// local value numbering (per basic block)
// ---------------------------------------------------------------------------

// Key: (op, aop, imm-for-LoadConst, value numbers of the source regs).
using VnKey = std::tuple<std::uint8_t, std::uint8_t, std::uint64_t,
                         std::uint64_t, std::uint64_t, std::uint64_t,
                         std::uint64_t>;

// The table is shared by every block and scoped with an undo log: the
// rewrite walk visits blocks depth-first over the unique-predecessor
// tree (extended basic blocks), pushing each block's mutations onto the
// log and rolling them back on the way out.  Everything known at the
// end of the only way into a block still holds at its top; join points
// and loop heads start from the nearest tree ancestor.
struct VnEntry {
  std::uint32_t reg = 0;
  std::uint64_t vn = 0;
};

struct VnTable {
  std::vector<std::uint64_t> reg_vn;  // register -> current value number
  std::uint64_t next_vn;
  std::map<VnKey, VnEntry> exprs;

  struct UndoRecord {
    enum Kind : std::uint8_t { Reg, ExprSet, ExprNew } kind;
    std::uint32_t reg = 0;
    std::uint64_t old_vn = 0;
    VnKey key{};
    VnEntry old_entry{};
  };
  std::vector<UndoRecord> undo;

  explicit VnTable(std::size_t num_regs)
      : reg_vn(num_regs), next_vn(num_regs) {
    for (std::size_t r = 0; r < num_regs; ++r) reg_vn[r] = r;
  }

  std::size_t mark() const { return undo.size(); }

  void set_reg_vn(std::uint32_t r, std::uint64_t v) {
    if (reg_vn[r] == v) return;
    undo.push_back({UndoRecord::Reg, r, reg_vn[r], {}, {}});
    reg_vn[r] = v;
  }

  void set_expr(const VnKey& key, VnEntry e) {
    auto [it, inserted] = exprs.emplace(key, e);
    if (inserted) {
      undo.push_back({UndoRecord::ExprNew, 0, 0, key, {}});
    } else {
      undo.push_back({UndoRecord::ExprSet, 0, 0, key, it->second});
      it->second = e;
    }
  }

  void rollback(std::size_t to_mark) {
    while (undo.size() > to_mark) {
      const UndoRecord& u = undo.back();
      switch (u.kind) {
        case UndoRecord::Reg:
          reg_vn[u.reg] = u.old_vn;
          break;
        case UndoRecord::ExprSet:
          exprs[u.key] = u.old_entry;
          break;
        case UndoRecord::ExprNew:
          exprs.erase(u.key);
          break;
      }
      undo.pop_back();
    }
  }

  VnKey key_of(const Instr& in) const {
    const auto srcs = in.srcs();
    std::uint64_t vn[4] = {0, 0, 0, 0};
    for (std::size_t i = 0; i < srcs.n; ++i) vn[i] = reg_vn[srcs.regs[i]] + 1;
    const std::uint64_t imm = in.op == Op::LoadConst ? in.imm : 0;
    return {static_cast<std::uint8_t>(in.op),
            static_cast<std::uint8_t>(in.aop),
            imm,
            vn[0],
            vn[1],
            vn[2],
            vn[3]};
  }
};

bool cse_eligible(const Instr& in) {
  switch (in.op) {
    case Op::LoadEmpty:
    case Op::LoadConst:
    case Op::Arith:
    case Op::Append:
    case Op::Length:
    case Op::Enumerate:
    case Op::BmRoute:
    case Op::SbmRoute:
    case Op::Select:
    case Op::ScanPlus:
      return true;
    default:
      return false;
  }
}

// ---------------------------------------------------------------------------
// the pass
// ---------------------------------------------------------------------------

class Peephole final : public Pass {
 public:
  const char* name() const override { return "peephole"; }

  bool run(Program& p) override {
    if (p.code.empty() || p.num_regs == 0) return false;
    const Cfg cfg = Cfg::build(p);
    const std::size_t nb = cfg.blocks.size();
    const SlotMap m = build_slots(p);

    // Forward abstract-value analysis over the shared dataflow driver.
    AvDomain dom{&p, &m};
    const ForwardDataflow<State, AvDomain> flow(p, cfg, dom);

    // Rewrite walk.
    bool changed = false;
    std::vector<bool> keep(p.code.size(), true);
    VnTable vn(p.num_regs);
    // vn of an all-ones vector -> vn of the register it was broadcast
    // over (same length by the route certificate).  Keyed by value
    // number, so no undo log is needed: value numbers are never reused,
    // and a rolled-back subtree's numbers are unreachable from sibling
    // scopes.  A fact is only derived from an executed (kept) bm-route,
    // so everything downstream of it in the EBB may rely on its
    // certificates having held.
    std::map<std::uint64_t, std::uint64_t> ones_of;
    auto process_block = [&](std::size_t b) {
      State s = flow.in_state_of(b);
      for (std::size_t i = cfg.blocks[b].begin; i < cfg.blocks[b].end; ++i) {
        Instr& in = p.code[i];
        const AV result = in.has_dst() ? eval(in, s, m) : AV::unknown();

        auto drop = [&] {
          keep[i] = false;
          changed = true;
        };
        auto replace = [&](Instr ni) {
          in = ni;
          changed = true;
        };

        switch (in.op) {
          case Op::Goto:
            if (in.target == i + 1) drop();
            continue;  // no dst, no state change
          case Op::GotoIfEmpty:
            if (m.get(s, in.a).kind == AV::Empty) {
              if (in.target == i + 1) {
                drop();
              } else {
                replace({Op::Goto, ArithOp::Add, 0, 0, 0, 0, 0, in.target});
              }
            } else if (m.get(s, in.a).kind == AV::Const) {
              drop();  // a singleton is never empty: branch never taken
            }
            continue;
          case Op::Halt:
            if (i + 1 == p.code.size()) drop();  // falling off the end halts
            continue;
          case Op::Move:
            if (in.dst == in.a) {
              drop();
              continue;
            }
            break;
          case Op::LoadEmpty:
            if (m.get(s, in.dst).kind == AV::Empty) {
              drop();  // already empty
              continue;
            }
            break;
          case Op::LoadConst:
            if (m.get(s, in.dst) == AV::konst(in.imm)) {
              drop();  // already holds [imm]
              continue;
            }
            break;
          case Op::Arith:
            if (result.kind == AV::Const) {
              replace({Op::LoadConst, ArithOp::Add, in.dst, 0, 0, 0, result.n,
                       0});
            } else if (m.get(s, in.a).kind == AV::Empty &&
                       m.get(s, in.b).kind == AV::Empty) {
              // Both empty: provably no trap, and a Move of an empty
              // register costs 0 work (a LoadEmpty would cost 1).
              replace({Op::Move, ArithOp::Add, in.dst, in.a, 0, 0, 0, 0});
            }
            break;
          case Op::Append:
            if (m.get(s, in.a).kind == AV::Empty) {
              replace({Op::Move, ArithOp::Add, in.dst, in.b, 0, 0, 0, 0});
            } else if (m.get(s, in.b).kind == AV::Empty) {
              replace({Op::Move, ArithOp::Add, in.dst, in.a, 0, 0, 0, 0});
            }
            break;
          case Op::Length:
          case Op::Enumerate:
          case Op::Select:
          case Op::ScanPlus:
            if (result.kind == AV::Const) {
              replace({Op::LoadConst, ArithOp::Add, in.dst, 0, 0, 0, result.n,
                       0});
            } else if (result.kind == AV::Empty &&
                       m.get(s, in.a).kind != AV::Unknown) {
              if (m.get(s, in.a).kind == AV::Empty) {
                // Input is empty, result is empty: forward the input.
                replace({Op::Move, ArithOp::Add, in.dst, in.a, 0, 0, 0, 0});
              } else {
                // select([0]) = []: LoadEmpty costs the same 1 work.
                replace({Op::LoadEmpty, ArithOp::Add, in.dst, 0, 0, 0, 0, 0});
              }
            }
            // (Select of a known nonzero singleton is covered by the
            // Const branch above: eval returns konst(n).)
            break;
          default:
            break;
        }

        // Route algebra over the ones facts (see the header comment).
        if (keep[i]) {
          const Instr& cur = p.code[i];
          if (cur.op == Op::Select && ones_of.count(vn.reg_vn[cur.a]) > 0) {
            // sigma of an all-ones vector drops nothing: a copy.  W is
            // unchanged (|in| + |out| = 2n either way), and Select never
            // traps.
            replace({Op::Move, ArithOp::Add, cur.dst, cur.a, 0, 0, 0, 0});
          } else if (cur.op == Op::BmRoute) {
            const auto it = ones_of.find(vn.reg_vn[cur.b]);
            if (it != ones_of.end() &&
                vn.reg_vn[cur.a] == vn.reg_vn[cur.b] &&
                vn.reg_vn[cur.c] == it->second) {
              // All-ones counts replicate each element once, and both
              // certificates are discharged statically: |counts| =
              // |broadcast source| = |data| (value-equal registers), and
              // sum(counts) = |counts| = |bound| (bound value-equal to
              // counts).  The Move charges 2n against the route's 4n.
              replace({Op::Move, ArithOp::Add, cur.dst, cur.c, 0, 0, 0, 0});
            }
          }
        }

        // Length and Enumerate depend only on their operand's *length*,
        // and an all-ones vector has its broadcast source's length: key
        // them under the source's value number so e.g. enumerate(ones(x))
        // fuses with enumerate(x) via ordinary CSE.
        auto canon_key = [&](const Instr& ins) {
          VnKey key = vn.key_of(ins);
          if (ins.op == Op::Length || ins.op == Op::Enumerate) {
            const auto it = ones_of.find(vn.reg_vn[ins.a]);
            if (it != ones_of.end()) std::get<3>(key) = it->second + 1;
          }
          return key;
        };

        // Local CSE on whatever the instruction now is.  A hit normally
        // becomes a Move from the earlier result -- every eligible op's
        // executed work is >= the Move's on any input, EXCEPT: LoadConst
        // (work 1 < the Move's 2), Length (work |src|+1, which is 1 < 2
        // when the source is empty at run time), and SbmRoute (the only
        // expanding op: |out| = sum counts*segs can exceed the combined
        // operand lengths, which only certify sum counts and sum segs).
        // Those are kept as-is but their destination is given the same
        // value number as the earlier result, so downstream expressions
        // over either register still fuse.
        std::uint64_t alias_vn = 0;
        bool aliased = false;
        if (keep[i] && cse_eligible(p.code[i])) {
          const Instr& cur = p.code[i];
          const VnKey key = canon_key(cur);
          auto it = vn.exprs.find(key);
          if (it != vn.exprs.end() &&
              vn.reg_vn[it->second.reg] == it->second.vn) {
            const std::uint32_t e = it->second.reg;
            if (e == cur.dst) {
              drop();  // recomputes the value dst already holds
            } else if (cur.op == Op::LoadConst || cur.op == Op::Length ||
                       cur.op == Op::SbmRoute) {
              alias_vn = it->second.vn;
              aliased = true;
            } else {
              replace({Op::Move, ArithOp::Add, cur.dst, e, 0, 0, 0, 0});
            }
          }
        }

        // Value-number and abstract-state bookkeeping for the (possibly
        // rewritten) instruction.
        const Instr& fin = p.code[i];
        // An executed bm-route whose data is the known singleton [1] is
        // the catalog's ones_like broadcast: its result is all-ones with
        // the bound register's length.  Capture the bound's vn before the
        // dst assignment below possibly renumbers it.
        const bool broadcasts_ones =
            keep[i] && fin.op == Op::BmRoute &&
            m.get(s, fin.c) == AV::konst(1);
        const std::uint64_t broadcast_like_vn =
            broadcasts_ones ? vn.reg_vn[fin.a] : 0;
        if (fin.has_dst()) {
          if (keep[i]) {
            if (fin.op == Op::Move) {
              vn.set_reg_vn(fin.dst, vn.reg_vn[fin.a]);
            } else if (aliased) {
              // Same value as the recorded expression; keep its entry.
              vn.set_reg_vn(fin.dst, alias_vn);
            } else if (cse_eligible(fin)) {
              const VnKey key = canon_key(fin);
              const std::uint64_t v = vn.next_vn++;
              vn.set_reg_vn(fin.dst, v);
              vn.set_expr(key, {fin.dst, v});
            } else {
              vn.set_reg_vn(fin.dst, vn.next_vn++);
            }
            if (broadcasts_ones) {
              ones_of[vn.reg_vn[fin.dst]] = broadcast_like_vn;
            }
          }
          // Dropped instructions leave dst's value (and number) unchanged.
          if (keep[i]) m.set(s, fin.dst, eval(fin, s, m));
        }
      }
    };

    // Visit blocks depth-first over the unique-predecessor tree so the
    // shared VN table carries over into extended basic blocks; rollback
    // restores the parent's scope.  Join points and loop heads are tree
    // roots and start from the base table.
    std::vector<std::vector<std::size_t>> children(nb);
    std::vector<bool> has_parent(nb, false);
    for (std::size_t b = 0; b < nb; ++b) {
      const auto& preds = cfg.blocks[b].preds;
      // Block 0 never gets a parent: it always has the implicit
      // program-entry edge in addition to any CFG predecessors.
      if (b != 0 && preds.size() == 1 && preds[0] != b) {
        children[preds[0]].push_back(b);
        has_parent[b] = true;
      }
    }
    std::vector<bool> visited(nb, false);
    struct Frame {
      std::size_t block;
      std::size_t mark;
      std::size_t next_child;
    };
    auto visit_tree = [&](std::size_t root) {
      std::vector<Frame> stack{{root, vn.mark(), 0}};
      visited[root] = true;
      process_block(root);
      while (!stack.empty()) {
        Frame& f = stack.back();
        if (f.next_child < children[f.block].size()) {
          const std::size_t c = children[f.block][f.next_child++];
          if (visited[c]) continue;
          stack.push_back({c, vn.mark(), 0});
          visited[c] = true;
          process_block(c);
        } else {
          vn.rollback(f.mark);
          stack.pop_back();
        }
      }
    };
    for (std::size_t b = 0; b < nb; ++b) {
      if (!has_parent[b]) visit_tree(b);
    }
    for (std::size_t b = 0; b < nb; ++b) {
      // Single-predecessor cycles of unreachable code never hang off a
      // root; give them a fresh scope of their own.
      if (!visited[b]) visit_tree(b);
    }

    const bool erased = erase_unkept(p, keep);
    return changed || erased;
  }
};

}  // namespace

std::unique_ptr<Pass> make_peephole() { return std::make_unique<Peephole>(); }

}  // namespace nsc::opt
