// Constant folding and branch simplification.
//
// A forward dataflow over the CFG tracks, per register, an abstract
// value from the lattice {UNKNOWN, EMPTY, CONST(n)} (EMPTY = the empty
// vector, CONST(n) = the singleton [n]) -- the shared AvDomain of
// opt/valuetable.hpp.  The entry state knows that every non-input
// register starts empty (the machine zero-initializes the register
// file), and the dataflow is *branch-sensitive*: on the taken edge of a
// GotoIfEmpty the tested register is known empty, so code downstream of
// an emptiness test folds even when nothing else is known about the
// register (AvDomain::edge_refine).
//
// The rewrite walk then applies, per basic block:
//   * constant folds: LoadConst+Arith -> folded LoadConst, Length /
//     Enumerate / ScanPlus / Select of a known-shape register, Append
//     with a known-empty side -> Move;
//   * branch folds: GotoIfEmpty on a known-empty register -> Goto, on a
//     known-singleton -> deleted; Goto-to-next and trailing Halt
//     deleted;
//   * self-moves (V_i <- V_i, typically produced by copy propagation)
//     and re-loads of a value a register already holds, deleted.
//
// Common-subexpression elimination and the all-ones route algebra,
// which lived here through PR 3, moved to the dominator-tree-scoped
// opt/gvn.cpp; this pass is purely local again.
//
// Every rewrite here is chosen so that the *executed* T and W never
// increase on any input (e.g. Arith of two known-empties becomes a Move
// of an empty register, work 0, rather than a LoadEmpty, work 1).
#include <cstdint>
#include <vector>

#include "opt/cfg.hpp"
#include "opt/opt.hpp"
#include "opt/valuetable.hpp"

namespace nsc::opt {
namespace {

using bvram::Instr;
using bvram::Op;
using bvram::Program;
using lang::ArithOp;

class Peephole final : public Pass {
 public:
  const char* name() const override { return "peephole"; }

  bool run(Program& p) override {
    if (p.code.empty() || p.num_regs == 0) return false;
    const Cfg cfg = Cfg::build(p);
    const SlotMap m = build_av_slots(p);

    // Forward abstract-value analysis over the shared dataflow driver.
    AvDomain dom{&p, &m};
    const ForwardDataflow<AvState, AvDomain> flow(p, cfg, dom);

    // Rewrite walk.
    bool changed = false;
    std::vector<bool> keep(p.code.size(), true);
    for (std::size_t b = 0; b < cfg.blocks.size(); ++b) {
      AvState s = flow.in_state_of(b);
      for (std::size_t i = cfg.blocks[b].begin; i < cfg.blocks[b].end; ++i) {
        Instr& in = p.code[i];
        const AV result = in.has_dst() ? av_eval(in, s, m) : AV::unknown();

        auto drop = [&] {
          keep[i] = false;
          changed = true;
        };
        auto replace = [&](Instr ni) {
          in = ni;
          changed = true;
        };

        switch (in.op) {
          case Op::Goto:
            if (in.target == i + 1) drop();
            continue;  // no dst, no state change
          case Op::GotoIfEmpty:
            if (m.get(s, in.a).kind == AV::Empty) {
              if (in.target == i + 1) {
                drop();
              } else {
                replace({Op::Goto, ArithOp::Add, 0, 0, 0, 0, 0, in.target});
              }
            } else if (m.get(s, in.a).kind == AV::Const) {
              drop();  // a singleton is never empty: branch never taken
            }
            continue;
          case Op::Halt:
            if (i + 1 == p.code.size()) drop();  // falling off the end halts
            continue;
          case Op::Move:
            if (in.dst == in.a) {
              drop();
              continue;
            }
            break;
          case Op::LoadEmpty:
            if (m.get(s, in.dst).kind == AV::Empty) {
              drop();  // already empty
              continue;
            }
            break;
          case Op::LoadConst:
            if (m.get(s, in.dst) == AV::konst(in.imm)) {
              drop();  // already holds [imm]
              continue;
            }
            break;
          case Op::Arith:
            if (result.kind == AV::Const) {
              replace({Op::LoadConst, ArithOp::Add, in.dst, 0, 0, 0, result.n,
                       0});
            } else if (m.get(s, in.a).kind == AV::Empty &&
                       m.get(s, in.b).kind == AV::Empty) {
              // Both empty: provably no trap, and a Move of an empty
              // register costs 0 work (a LoadEmpty would cost 1).
              replace({Op::Move, ArithOp::Add, in.dst, in.a, 0, 0, 0, 0});
            }
            break;
          case Op::Append:
            if (m.get(s, in.a).kind == AV::Empty) {
              replace({Op::Move, ArithOp::Add, in.dst, in.b, 0, 0, 0, 0});
            } else if (m.get(s, in.b).kind == AV::Empty) {
              replace({Op::Move, ArithOp::Add, in.dst, in.a, 0, 0, 0, 0});
            }
            break;
          case Op::Length:
          case Op::Enumerate:
          case Op::Select:
          case Op::ScanPlus:
            if (result.kind == AV::Const) {
              replace({Op::LoadConst, ArithOp::Add, in.dst, 0, 0, 0, result.n,
                       0});
            } else if (result.kind == AV::Empty &&
                       m.get(s, in.a).kind != AV::Unknown) {
              if (m.get(s, in.a).kind == AV::Empty) {
                // Input is empty, result is empty: forward the input.
                replace({Op::Move, ArithOp::Add, in.dst, in.a, 0, 0, 0, 0});
              } else {
                // select([0]) = []: LoadEmpty costs the same 1 work.
                replace({Op::LoadEmpty, ArithOp::Add, in.dst, 0, 0, 0, 0, 0});
              }
            }
            // (Select of a known nonzero singleton is covered by the
            // Const branch above: av_eval returns konst(n).)
            break;
          default:
            break;
        }

        // Abstract-state bookkeeping for the (possibly rewritten)
        // instruction; dropped instructions leave dst's value unchanged.
        const Instr& fin = p.code[i];
        if (fin.has_dst() && keep[i]) m.set(s, fin.dst, av_eval(fin, s, m));
      }
    }

    const bool erased = erase_unkept(p, keep);
    return changed || erased;
  }
};

}  // namespace

std::unique_ptr<Pass> make_peephole() { return std::make_unique<Peephole>(); }

}  // namespace nsc::opt
