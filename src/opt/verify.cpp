// Structural verifier (opt.hpp).  Everything checked here used to be
// caught only when the machine reached the offending instruction at run
// time; the compile pipeline now rejects ill-formed programs up front,
// and the PassManager re-checks after every pass so a buggy rewrite
// fails loudly at the pass that introduced it.
#include <string>

#include "opt/opt.hpp"

namespace nsc::opt {

using bvram::Instr;
using bvram::Program;

void verify(const Program& p) {
  auto die = [](const std::string& what) {
    throw MachineError("verifier: " + what);
  };
  if (p.num_inputs > p.num_regs) {
    die("num_inputs " + std::to_string(p.num_inputs) +
        " exceeds register count " + std::to_string(p.num_regs));
  }
  if (p.num_outputs > p.num_regs) {
    die("num_outputs " + std::to_string(p.num_outputs) +
        " exceeds register count " + std::to_string(p.num_regs));
  }
  if (!p.last_use.empty() && p.last_use.size() != p.code.size()) {
    die("last_use annotation covers " + std::to_string(p.last_use.size()) +
        " instructions but the program has " + std::to_string(p.code.size()));
  }
  for (std::size_t i = 0; i < p.code.size(); ++i) {
    const Instr& in = p.code[i];
    auto at = [&](const std::string& what) {
      die(what + " at instruction " + std::to_string(i) + " `" + in.show() +
          "`");
    };
    auto check_reg = [&](std::uint32_t r) {
      if (r >= p.num_regs) at("register V" + std::to_string(r) +
                              " out of range (num_regs=" +
                              std::to_string(p.num_regs) + ")");
    };
    if (in.has_dst()) check_reg(in.dst);
    if (in.op == bvram::Op::SbmRoute &&
        in.imm > std::uint64_t{0xffffffff}) {
      at("sbm-route segment operand does not fit a register index");
    }
    for (std::uint32_t r : in.srcs()) check_reg(r);
    if (in.is_jump() && in.target > p.code.size()) {
      at("jump target " + std::to_string(in.target) + " out of range (" +
         std::to_string(p.code.size()) + " instructions)");
    }
  }
}

}  // namespace nsc::opt
