// Basic-block control-flow graph over a bvram::Program, shared by the
// dataflow passes.  Control flow in the BVRAM is Goto / GotoIfEmpty /
// Halt; "instruction index == code.size()" is a legal jump destination
// meaning "exit", which the CFG models as the virtual exit block.
#pragma once

#include <cstdint>
#include <vector>

#include "bvram/machine.hpp"

namespace nsc::opt {

struct Block {
  std::size_t begin = 0;  ///< first instruction index
  std::size_t end = 0;    ///< one past the last instruction
  std::vector<std::size_t> succs;  ///< successor block ids (no exit entry)
  std::vector<std::size_t> preds;
  bool falls_to_exit = false;  ///< control can leave the program here
};

struct Cfg {
  std::vector<Block> blocks;           // blocks[0] is the entry block
  std::vector<std::size_t> block_of;   // instruction index -> block id

  static Cfg build(const bvram::Program& p);

  /// Block ids reachable from the entry block.
  std::vector<bool> reachable() const;
};

/// Drop the instructions with keep[i] == false, remapping every jump
/// target (a target pointing at a dropped instruction moves to the next
/// kept one; code.size() stays the exit).  Returns true if anything was
/// dropped.
bool erase_unkept(bvram::Program& p, const std::vector<bool>& keep);

/// Generic forward dataflow fixpoint over the CFG, shared by copy-prop
/// and the peephole constant analysis.  Block out-states start at TOP
/// ("uncomputed", the identity of the meet), so must-problems converge
/// to their maximal fixpoint on loops.
///
/// `Domain` provides:
///   State entry() const;                        // in-state of block 0
///   State unreached() const;                    // all-bottom fallback
///   void meet_into(State&, const State&) const;
///   void transfer(const bvram::Instr&, State&) const;
template <typename State, typename Domain>
class ForwardDataflow {
 public:
  ForwardDataflow(const bvram::Program& p, const Cfg& cfg, const Domain& dom)
      : cfg_(cfg),
        dom_(dom),
        out_(cfg.blocks.size()),
        have_out_(cfg.blocks.size(), false) {
    if (cfg.blocks.empty()) return;
    std::vector<bool> queued(cfg.blocks.size(), false);
    std::vector<std::size_t> worklist{0};
    queued[0] = true;
    while (!worklist.empty()) {
      const std::size_t b = worklist.back();
      worklist.pop_back();
      queued[b] = false;
      State s = in_state_of(b);
      for (std::size_t i = cfg.blocks[b].begin; i < cfg.blocks[b].end; ++i) {
        dom_.transfer(p.code[i], s);
      }
      if (!have_out_[b] || s != out_[b]) {
        out_[b] = std::move(s);
        have_out_[b] = true;
        for (std::size_t succ : cfg.blocks[b].succs) {
          if (!queued[succ]) {
            queued[succ] = true;
            worklist.push_back(succ);
          }
        }
      }
    }
  }

  /// Meet of the computed predecessor out-states (TOP preds skipped).
  /// Block 0 additionally meets the implicit program-entry edge: a loop
  /// headed at instruction 0 re-enters block 0 from its back edge, so
  /// entry facts alone would be unsound there.
  State in_state_of(std::size_t b) const {
    State s{};
    bool first = true;
    if (b == 0) {
      s = dom_.entry();
      first = false;
    }
    for (std::size_t pred : cfg_.blocks[b].preds) {
      if (!have_out_[pred]) continue;  // TOP: identity for the meet
      if (first) {
        s = out_[pred];
        first = false;
      } else {
        dom_.meet_into(s, out_[pred]);
      }
    }
    if (first) s = dom_.unreached();  // only TOP preds (unreached block)
    return s;
  }

 private:
  const Cfg& cfg_;
  const Domain& dom_;
  std::vector<State> out_;
  std::vector<bool> have_out_;
};

}  // namespace nsc::opt
