// Basic-block control-flow graph over a bvram::Program, shared by the
// dataflow passes, plus the loop-aware analyses layered on top of it:
// dominator tree, natural-loop forest, and the preheader insertion
// utility that LICM uses to place hoisted code.  Control flow in the
// BVRAM is Goto / GotoIfEmpty / Halt; "instruction index == code.size()"
// is a legal jump destination meaning "exit", which the CFG models as
// the virtual exit block.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "bvram/machine.hpp"

namespace nsc::opt {

inline constexpr std::size_t kNoBlock = static_cast<std::size_t>(-1);

struct Block {
  std::size_t begin = 0;  ///< first instruction index
  std::size_t end = 0;    ///< one past the last instruction
  std::vector<std::size_t> succs;  ///< successor block ids (no exit entry)
  std::vector<std::size_t> preds;
  bool falls_to_exit = false;  ///< control can leave the program here
};

struct Cfg {
  std::vector<Block> blocks;           // blocks[0] is the entry block
  std::vector<std::size_t> block_of;   // instruction index -> block id

  static Cfg build(const bvram::Program& p);

  /// Block ids reachable from the entry block.
  std::vector<bool> reachable() const;
};

/// Drop the instructions with keep[i] == false, remapping every jump
/// target (a target pointing at a dropped instruction moves to the next
/// kept one; code.size() stays the exit).  Returns true if anything was
/// dropped.
bool erase_unkept(bvram::Program& p, const std::vector<bool>& keep);

/// Insert ins[i] (possibly empty) immediately before instruction i,
/// remapping every jump target of the *original* code: the jump at old
/// index j lands *after* the run inserted at its target iff
/// land_after[j] (back edges into a loop header skip the preheader
/// code), and at the start of the run otherwise (entry edges flow
/// through it).  code.size() stays the exit.  The inserted instructions
/// must not be jumps (their targets are not remapped).  If `new_index`
/// is non-null it receives, for every original instruction, its
/// position in the rewritten code.  Returns true if anything was
/// inserted.
bool insert_before(bvram::Program& p,
                   const std::vector<std::vector<bvram::Instr>>& ins,
                   const std::vector<bool>& land_after,
                   std::vector<std::size_t>* new_index = nullptr);

/// Dominator tree (iterative Cooper–Harvey–Kennedy over a reverse
/// postorder of the CFG).  Blocks unreachable from the entry have
/// idom == kNoBlock and do not appear in the tree.
struct DomTree {
  std::vector<std::size_t> idom;  ///< immediate dominator; entry -> itself
  std::vector<std::vector<std::size_t>> children;  ///< dom-tree edges
  /// DFS entry/exit stamps over the dominator tree, for O(1) queries.
  std::vector<std::size_t> pre, post;

  static DomTree build(const Cfg& cfg);

  bool reached(std::size_t b) const { return idom[b] != kNoBlock; }

  /// a dominates b (reflexively).  False if either block is unreachable.
  bool dominates(std::size_t a, std::size_t b) const {
    return reached(a) && reached(b) && pre[a] <= pre[b] && post[b] <= post[a];
  }
};

/// One natural loop: the target of one or more back edges (edges b -> h
/// where h dominates b), with all back edges sharing a header merged.
struct Loop {
  std::size_t header = kNoBlock;
  std::vector<std::size_t> blocks;   ///< member blocks, header included
  std::vector<std::size_t> latches;  ///< back-edge source blocks
  /// Blocks with an edge leaving the loop (incl. falling to the exit).
  std::vector<std::size_t> exits;
  std::size_t parent = kNoBlock;  ///< innermost enclosing loop, if any
  std::size_t depth = 1;          ///< nesting depth; outermost = 1
};

/// The natural-loop forest of a CFG (reducible or not: loops whose
/// header does not dominate the back-edge source are simply absent).
struct LoopForest {
  std::vector<Loop> loops;
  /// block -> innermost containing loop id, or kNoBlock.
  std::vector<std::size_t> loop_of;

  static LoopForest build(const Cfg& cfg, const DomTree& dom);

  bool contains(std::size_t loop, std::size_t block) const {
    for (std::size_t l = loop_of[block]; l != kNoBlock; l = loops[l].parent) {
      if (l == loop) return true;
    }
    return false;
  }
};

/// Generic forward dataflow fixpoint over the CFG, shared by copy-prop
/// and the peephole constant analysis.  Block out-states start at TOP
/// ("uncomputed", the identity of the meet), so must-problems converge
/// to their maximal fixpoint on loops.
///
/// `Domain` provides:
///   State entry() const;                        // in-state of block 0
///   State unreached() const;                    // all-bottom fallback
///   void meet_into(State&, const State&) const;
///   void transfer(const bvram::Instr&, State&) const;
/// and optionally (detected by a requires-expression, both required
/// together)
///   bool edge_refines(const bvram::Program&, const Cfg&, std::size_t pred,
///                     std::size_t succ) const;
///   void edge_refine(const bvram::Program&, const Cfg&, std::size_t pred,
///                    std::size_t succ, State&) const;
/// which sharpen a predecessor's out-state along one specific CFG edge
/// before the meet -- the hook behind branch-sensitive constant
/// propagation (on the taken edge of a GotoIfEmpty the tested register
/// is known empty).  edge_refines is the cheap guard: only edges it
/// accepts pay for the out-state copy that refinement needs.
template <typename State, typename Domain>
class ForwardDataflow {
 public:
  ForwardDataflow(const bvram::Program& p, const Cfg& cfg, const Domain& dom)
      : p_(p),
        cfg_(cfg),
        dom_(dom),
        out_(cfg.blocks.size()),
        have_out_(cfg.blocks.size(), false) {
    if (cfg.blocks.empty()) return;
    std::vector<bool> queued(cfg.blocks.size(), false);
    std::vector<std::size_t> worklist{0};
    queued[0] = true;
    while (!worklist.empty()) {
      const std::size_t b = worklist.back();
      worklist.pop_back();
      queued[b] = false;
      State s = in_state_of(b);
      for (std::size_t i = cfg.blocks[b].begin; i < cfg.blocks[b].end; ++i) {
        dom_.transfer(p.code[i], s);
      }
      if (!have_out_[b] || s != out_[b]) {
        out_[b] = std::move(s);
        have_out_[b] = true;
        for (std::size_t succ : cfg.blocks[b].succs) {
          if (!queued[succ]) {
            queued[succ] = true;
            worklist.push_back(succ);
          }
        }
      }
    }
  }

  /// Meet of the computed predecessor out-states (TOP preds skipped).
  /// Block 0 additionally meets the implicit program-entry edge: a loop
  /// headed at instruction 0 re-enters block 0 from its back edge, so
  /// entry facts alone would be unsound there.
  State in_state_of(std::size_t b) const {
    State s{};
    bool first = true;
    if (b == 0) {
      s = dom_.entry();
      first = false;
    }
    for (std::size_t pred : cfg_.blocks[b].preds) {
      if (!have_out_[pred]) continue;  // TOP: identity for the meet
      bool refined = false;
      if constexpr (requires(State& ps) {
                      dom_.edge_refine(p_, cfg_, pred, b, ps);
                    }) {
        if (dom_.edge_refines(p_, cfg_, pred, b)) {
          State ps = out_[pred];
          dom_.edge_refine(p_, cfg_, pred, b, ps);
          if (first) {
            s = std::move(ps);
            first = false;
          } else {
            dom_.meet_into(s, ps);
          }
          refined = true;
        }
      }
      if (!refined) {
        // No refinement on this edge: meet straight from the stored
        // out-state, no copy.
        if (first) {
          s = out_[pred];
          first = false;
        } else {
          dom_.meet_into(s, out_[pred]);
        }
      }
    }
    if (first) s = dom_.unreached();  // only TOP preds (unreached block)
    return s;
  }

 private:
  const bvram::Program& p_;
  const Cfg& cfg_;
  const Domain& dom_;
  std::vector<State> out_;
  std::vector<bool> have_out_;
};

}  // namespace nsc::opt
