// Backward liveness over the fixed BVRAM register file, shared by
// dead-code elimination and the execution engine's last-use export.
//
// The boundary condition is the machine's I/O convention: registers
// V_0 .. V_{num_outputs-1} are live wherever control can leave the
// program (Halt, a jump to code.size(), or falling off the end).
#pragma once

#include <cstdint>
#include <vector>

#include "bvram/machine.hpp"
#include "opt/cfg.hpp"

namespace nsc::opt {

struct Liveness {
  /// live_in[b][r]: r may be read before being written on some path from
  /// the top of block b.
  std::vector<std::vector<bool>> live_in;

  static Liveness compute(const bvram::Program& p, const Cfg& cfg);

  /// Registers live at the bottom of block b (the meet over successors
  /// plus the output registers when control can exit here).
  std::vector<bool> live_out_of(const bvram::Program& p, const Cfg& cfg,
                                std::size_t b) const;
};

/// Per-instruction source-operand death masks for the execution engine
/// (bvram::Program::last_use): bit k of mask[i] is set iff the register
/// read by source operand k of instruction i is dead immediately after i
/// on every path -- its value can never be observed again -- so the
/// engine may recycle that operand's buffer (Move-as-swap, in-place
/// Arith/Enumerate/ScanPlus) without the rewrite being visible in
/// outputs, traps, or the T/W cost accounting.  Instructions in
/// unreachable code get an all-clear (conservative) mask.
std::vector<std::uint8_t> compute_last_use(const bvram::Program& p);

/// Compute and attach the masks: p.last_use = compute_last_use(p).
/// Must be (re-)run after any mutation of p.code -- the optimizer's
/// PassManager clears stale annotations, and sa::compile_nsa /
/// compile_nsc annotate as their final step.
void annotate_last_use(bvram::Program& p);

}  // namespace nsc::opt
