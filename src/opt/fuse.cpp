#include "opt/fuse.hpp"

#include <cstdint>

namespace nsc::opt {

namespace {

using bvram::FusedGroup;
using bvram::Instr;
using bvram::Op;
using bvram::Program;

bool eligible_op(Op op) {
  switch (op) {
    case Op::Move:
    case Op::Arith:
    case Op::Enumerate:
    case Op::ScanPlus:
    case Op::Select:
      return true;
    default:
      return false;
  }
}

/// Eligible for membership: elementwise op with all register operands in
/// range.  An out-of-range operand must keep trapping through the
/// per-instruction path, so it never enters a group.
bool eligible(const Program& p, std::size_t i) {
  const Instr& in = p.code[i];
  if (!eligible_op(in.op)) return false;
  if (in.dst >= p.num_regs) return false;
  for (std::uint32_t r : in.srcs()) {
    if (r >= p.num_regs) return false;
  }
  return true;
}

/// Build the group for the run [b, e), classify its values, and decide
/// whether it is worth a plan.  Returns false to skip the run.
bool build_group(const Program& p, std::size_t b, std::size_t e,
                 FusedGroup& g) {
  const std::size_t G = e - b;
  const bool masks = p.last_use.size() == p.code.size();
  g.begin = b;
  g.end = e;
  g.bind_base.resize(G);
  g.commit.assign(G, -1);

  // Pass 1: bindings.  last_def[r] = group-relative index of the latest
  // in-group def of register r, or -1 (the value enters from outside).
  std::vector<std::int32_t> last_def(p.num_regs, -1);
  std::vector<std::int32_t> input_of(p.num_regs, -1);
  for (std::size_t k = 0; k < G; ++k) {
    const Instr& in = p.code[b + k];
    g.bind_base[k] = static_cast<std::uint32_t>(g.binds.size());
    for (std::uint32_t r : in.srcs()) {
      FusedGroup::Bind bind;
      if (last_def[r] >= 0) {
        bind.from_def = true;
        bind.index = static_cast<std::uint32_t>(last_def[r]);
      } else {
        if (input_of[r] < 0) {
          input_of[r] = static_cast<std::int32_t>(g.inputs.size());
          g.inputs.push_back(r);
        }
        bind.index = static_cast<std::uint32_t>(input_of[r]);
      }
      g.binds.push_back(bind);
    }
    if (in.op == Op::ScanPlus || in.op == Op::Select) g.serial_only = true;
    if (in.op == Op::Select) g.has_select = true;
    last_def[in.dst] = static_cast<std::int32_t>(k);
  }

  // Pass 2: a def dies inside the group if liveness kills its register at
  // one of its in-group reads (the masks are global truth, so a set bit
  // at read m means no later read exists anywhere -- in or out of group).
  std::vector<bool> dead_by_read(G, false);
  if (masks) {
    for (std::size_t k = 0; k < G; ++k) {
      const Instr& in = p.code[b + k];
      const std::size_t nsrc = Instr::src_count(in.op);
      const std::uint8_t mask = p.last_use[b + k];
      for (std::size_t j = 0; j < nsrc; ++j) {
        const FusedGroup::Bind& bind = g.binds[g.bind_base[k] + j];
        if (bind.from_def && ((mask >> j) & 1u) != 0) {
          dead_by_read[bind.index] = true;
        }
      }
    }
  }

  // Commit the final def of each register unless it provably dies.
  for (std::size_t k = 0; k < G; ++k) {
    const Instr& in = p.code[b + k];
    if (last_def[in.dst] == static_cast<std::int32_t>(k) &&
        !dead_by_read[k]) {
      g.commit[k] = static_cast<std::int32_t>(in.dst);
    }
  }

  // Commit sinking: a committed Move whose value is produced in-group
  // copies a scratch value it could have been handed directly.  Follow
  // the Move chain to the ultimate producer; if that def is elided, move
  // the commit onto it -- the Moves along the chain become pure aliases.
  for (std::size_t k = 0; k < G; ++k) {
    if (g.commit[k] < 0 || p.code[b + k].op != Op::Move) continue;
    std::size_t t = k;
    while (p.code[b + t].op == Op::Move && g.binds[g.bind_base[t]].from_def) {
      t = g.binds[g.bind_base[t]].index;
    }
    if (t != k && g.commit[t] < 0) {
      g.commit[t] = g.commit[k];
      g.commit[k] = -1;
    }
  }

  // Worth fusing?  Count register-sized streams the fused pass avoids
  // against ones it adds.  An elided non-Move def is a buffer write that
  // never leaves L1: +1.  Moves are special because the per-instruction
  // engine already runs them for free when the source dies (an O(1)
  // buffer swap) or when dst == src: an elided Move only counts when the
  // engine would have copied it, and a *committed* Move the engine would
  // have swapped is an outright regression (the fused path must
  // materialize the copy): -1.  Skip runs that don't come out ahead.
  std::ptrdiff_t benefit = 0;
  for (std::size_t k = 0; k < G; ++k) {
    const Instr& in = p.code[b + k];
    if (in.op != Op::Move) {
      if (g.commit[k] < 0) ++benefit;
      continue;
    }
    const bool unfused_free =
        in.dst == in.a || (masks && (p.last_use[b + k] & 1u) != 0);
    if (g.commit[k] < 0) {
      if (!unfused_free) ++benefit;
    } else if (unfused_free) {
      --benefit;
    }
  }
  return benefit > 0;
}

}  // namespace

std::vector<FusedGroup> compute_fusion(const Program& p) {
  std::vector<FusedGroup> plan;
  const std::size_t n = p.code.size();
  std::vector<bool> jump_target(n, false);
  for (const Instr& in : p.code) {
    if (in.is_jump() && in.target < n) jump_target[in.target] = true;
  }

  std::size_t i = 0;
  while (i < n) {
    if (!eligible(p, i)) {
      ++i;
      continue;
    }
    // Extend the run: stop before a non-eligible instruction, a jump
    // target (control may enter there mid-group), or the size cap; a
    // Select closes the run (terminal only).
    std::size_t j = i;
    while (j < n && j - i < FusedGroup::kMaxFusedGroup && eligible(p, j) &&
           (j == i || !jump_target[j])) {
      const bool is_select = p.code[j].op == Op::Select;
      ++j;
      if (is_select) break;
    }
    if (j - i >= 2) {
      FusedGroup g;
      if (build_group(p, i, j, g)) plan.push_back(std::move(g));
    }
    i = j > i ? j : i + 1;
  }
  return plan;
}

void annotate_fusion(Program& p) { p.fusion = compute_fusion(p); }

}  // namespace nsc::opt
