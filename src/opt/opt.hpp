// BVRAM optimizer: a pass framework over bvram::Program.
//
// The flattening compiler (sa/compile.cpp, Theorem 7.1) emits each NSA
// combinator from a fixed catalog, so compiled programs carry pure
// overhead in the paper's T/W cost model: redundant Moves (the catalog
// routines stage everything through fresh registers), re-computed
// Lengths/Enumerates of the same register, constant chains, and
// registers that are written but never read.  The passes here remove
// that overhead while preserving the observable semantics *including
// traps*: an instruction that can raise a machine error (Arith length
// mismatch / division by zero, the routing certificates) is never
// deleted, and every rewrite is chosen so that the executed T and W
// never increase on any input.
//
// Pass suite (the loop-aware global pipeline; O2 runs copy-prop -> gvn
// -> licm -> peephole -> dce -> reg-compact to a fixpoint):
//   verify      structural well-formedness (register bounds incl. the
//               SbmRoute imm operand, jump targets, I/O arity) -- run
//               before and between passes, so an ill-formed program is a
//               compiler bug caught at compile time, not run time.
//   copy-prop   global copy propagation over the CFG (forward must-
//               dataflow); uses of a copied register are rewritten to
//               the original, which turns the compiler's staging moves
//               into dead code and exposes move coalescing.
//   gvn         dominator-tree-scoped global value numbering: redundant
//               recomputations (Length / Enumerate / ScanPlus / Arith /
//               Append / the routes) fuse with the dominating original
//               even across branch diamonds -- the repeated scan/route
//               subgraphs the flattening compiler emits per segment-
//               descriptor level collapse here -- and the all-ones route
//               algebra discharges bm-route certificates by value
//               equality (select of ones is a copy, an all-ones route
//               is a Move at half the W).
//   licm        loop-invariant code motion over the natural-loop forest
//               (opt/cfg.hpp): invariant, provably-non-trapping
//               instructions -- including the catalog's ones_like /
//               broadcast masks, whose route certificate is discharged
//               through the value table -- move to a preheader that
//               entry edges flow through and back edges skip.
//   peephole    constant folding (LoadConst/LoadEmpty algebra over a
//               per-register {unknown, empty, [n]} lattice, seeded with
//               "non-input registers start empty" and branch-sensitive:
//               the taken edge of a GotoIfEmpty knows the tested
//               register is empty) and branch simplification.
//   dce         unreachable-code elimination plus liveness-based dead
//               code elimination on the fixed register file.
//   reg-compact dead-register elimination: renumber the register file so
//               unused registers disappear (the I/O convention pins
//               V_0 .. V_{max(in,out)-1}).
//
// The liveness analysis behind dce is shared (opt/liveness.hpp) and also
// exports per-instruction last-use masks (opt::annotate_last_use) that the
// execution engine in bvram/machine.cpp consumes to recycle dead operand
// buffers; sa::compile_nsa / compile_nsc annotate compiled programs as
// their final step.  The abstract-value lattice and the value-numbering
// table shared by gvn / licm / peephole live in opt/valuetable.hpp; the
// dominator tree and natural-loop forest in opt/cfg.hpp.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "bvram/machine.hpp"
#include "support/checked.hpp"

namespace nsc::opt {

/// How hard the pipeline works.  O0 = naive emission untouched (for tests
/// that assert exact instruction sequences); O1 = one cleanup round
/// (GVN + peephole + DCE); O2 = full suite to fixpoint + register
/// compaction (the default in sa::compile_nsa / compile_nsc).
enum class OptLevel { O0, O1, O2 };

/// Scheduling policy for the compiler's *lifted* while loop (the while
/// case of the Map Lemma 7.2), threaded through sa::compile_nsa /
/// compile_nsc alongside OptLevel.  All three schedules compute
/// bit-identical outputs and traps; they differ only in how much work the
/// loop spends re-touching elements that have already terminated:
///
///   Naive   every iteration packs the unfinished elements out of the full
///           population and interleaves the stepped results back, so each
///           of the n slots is touched once per iteration: W can reach
///           Theta(n * rounds) even when almost all elements finished in
///           round one (the straggler adversary of bench_seqwhile).
///   Eager   finished elements are extracted once and appended to a single
///           archive, which is itself re-touched on every extraction round
///           (the ablation baseline: Theta(n * extraction-rounds) worst
///           case on the same adversary).
///   Staged  the Lemma 7.2 schedule: extractions append to a small V1
///           buffer that is flushed into the V2 archive only when the
///           total extracted count crosses the thresholds ceil(n^(k*eps)),
///           k = 1, 2, ...; V2 is touched only ~1/eps times.  The emitted
///           register file is identical for every eps (only threshold
///           constants change) -- Theorem 7.1's "registers independent of
///           eps" clause.
///
/// Eager/staged loops log the per-round pack flags and at exit restore the
/// original element order by replaying the packs backwards, so the final
/// state is bit-identical to the naive schedule at every SEQREP width
/// (nested maps included).
enum class WhileScheduleKind { Naive, Eager, Staged };

struct WhileSchedule {
  WhileScheduleKind kind = WhileScheduleKind::Naive;
  /// Threshold exponent for Staged (ignored otherwise): flushes happen at
  /// extracted-count thresholds ~n^(k*eps), computed at run time from the
  /// population with pow_eps-style integer arithmetic.
  Rational eps{1, 2};

  static WhileSchedule naive() { return {}; }
  static WhileSchedule eager() { return {WhileScheduleKind::Eager, {1, 2}}; }
  static WhileSchedule staged(Rational eps = {1, 2}) {
    return {WhileScheduleKind::Staged, eps};
  }
};

/// Structural verifier: register bounds (including SbmRoute's segment
/// operand carried in `imm`), jump targets, and I/O arity.  Throws
/// MachineError on the first violation.
void verify(const bvram::Program& p);

/// A rewrite over a whole program.  Passes may delete and replace
/// instructions (jump targets are kept consistent) but must preserve the
/// program's observable behavior: outputs, traps, and an executed T and W
/// no larger than before, on every input.
class Pass {
 public:
  virtual ~Pass() = default;
  virtual const char* name() const = 0;
  /// Rewrite `p` in place; returns true if anything changed.
  virtual bool run(bvram::Program& p) = 0;
};

std::unique_ptr<Pass> make_copy_prop();
std::unique_ptr<Pass> make_gvn();
std::unique_ptr<Pass> make_licm();
std::unique_ptr<Pass> make_peephole();
std::unique_ptr<Pass> make_dce();
std::unique_ptr<Pass> make_reg_compact();

struct PassStats {
  std::string name;
  std::size_t applications = 0;    ///< runs that changed the program
  std::size_t instrs_removed = 0;  ///< net instruction-count reduction
  std::uint64_t wall_ns = 0;       ///< total wall time across all rounds
};

struct PipelineStats {
  std::size_t instrs_before = 0;
  std::size_t instrs_after = 0;
  std::size_t regs_before = 0;
  std::size_t regs_after = 0;
  std::size_t rounds = 0;
  std::uint64_t wall_ns = 0;  ///< whole-pipeline wall time (incl. verify)
  std::vector<PassStats> passes;

  std::string show() const;
};

/// Runs a pass list to a fixpoint (bounded by `max_rounds`), verifying
/// between passes, and collects per-pass instruction-count stats.
class PassManager {
 public:
  /// `verify_between`: re-run the structural verifier after every pass
  /// (cheap, and turns a miscompiling pass into an immediate error).
  explicit PassManager(bool verify_between = true)
      : verify_between_(verify_between) {}

  void add(std::unique_ptr<Pass> pass);

  PipelineStats run(bvram::Program& p, std::size_t max_rounds = 8);

 private:
  std::vector<std::unique_ptr<Pass>> passes_;
  bool verify_between_ = true;
};

/// Verify + run the standard pipeline for `level` on `p` in place.
PipelineStats optimize(bvram::Program& p, OptLevel level = OptLevel::O2);

}  // namespace nsc::opt
