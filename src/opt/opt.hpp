// BVRAM optimizer: a pass framework over bvram::Program.
//
// The flattening compiler (sa/compile.cpp, Theorem 7.1) emits each NSA
// combinator from a fixed catalog, so compiled programs carry pure
// overhead in the paper's T/W cost model: redundant Moves (the catalog
// routines stage everything through fresh registers), re-computed
// Lengths/Enumerates of the same register, constant chains, and
// registers that are written but never read.  The passes here remove
// that overhead while preserving the observable semantics *including
// traps*: an instruction that can raise a machine error (Arith length
// mismatch / division by zero, the routing certificates) is never
// deleted, and every rewrite is chosen so that the executed T and W
// never increase on any input.
//
// Pass suite:
//   verify      structural well-formedness (register bounds incl. the
//               SbmRoute imm operand, jump targets, I/O arity) -- run
//               before and between passes, so an ill-formed program is a
//               compiler bug caught at compile time, not run time.
//   copy-prop   global copy propagation over the CFG (forward must-
//               dataflow); uses of a copied register are rewritten to
//               the original, which turns the compiler's staging moves
//               into dead code and exposes move coalescing.
//   peephole    constant folding (LoadConst/LoadEmpty algebra over a
//               per-register {unknown, empty, [n]} lattice, seeded with
//               "non-input registers start empty"), branch
//               simplification, and local common-subexpression
//               elimination per basic block (redundant Length /
//               Enumerate / ScanPlus / Arith recomputations become
//               Moves).
//   dce         unreachable-code elimination plus liveness-based dead
//               code elimination on the fixed register file.
//   reg-compact dead-register elimination: renumber the register file so
//               unused registers disappear (the I/O convention pins
//               V_0 .. V_{max(in,out)-1}).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "bvram/machine.hpp"

namespace nsc::opt {

/// How hard the pipeline works.  O0 = naive emission untouched (for tests
/// that assert exact instruction sequences); O1 = one round of local
/// cleanup (peephole + DCE); O2 = full suite to fixpoint + register
/// compaction (the default in sa::compile_nsa / compile_nsc).
enum class OptLevel { O0, O1, O2 };

/// Structural verifier: register bounds (including SbmRoute's segment
/// operand carried in `imm`), jump targets, and I/O arity.  Throws
/// MachineError on the first violation.
void verify(const bvram::Program& p);

/// A rewrite over a whole program.  Passes may delete and replace
/// instructions (jump targets are kept consistent) but must preserve the
/// program's observable behavior: outputs, traps, and an executed T and W
/// no larger than before, on every input.
class Pass {
 public:
  virtual ~Pass() = default;
  virtual const char* name() const = 0;
  /// Rewrite `p` in place; returns true if anything changed.
  virtual bool run(bvram::Program& p) = 0;
};

std::unique_ptr<Pass> make_copy_prop();
std::unique_ptr<Pass> make_peephole();
std::unique_ptr<Pass> make_dce();
std::unique_ptr<Pass> make_reg_compact();

struct PassStats {
  std::string name;
  std::size_t applications = 0;    ///< runs that changed the program
  std::size_t instrs_removed = 0;  ///< net instruction-count reduction
};

struct PipelineStats {
  std::size_t instrs_before = 0;
  std::size_t instrs_after = 0;
  std::size_t regs_before = 0;
  std::size_t regs_after = 0;
  std::size_t rounds = 0;
  std::vector<PassStats> passes;

  std::string show() const;
};

/// Runs a pass list to a fixpoint (bounded by `max_rounds`), verifying
/// between passes, and collects per-pass instruction-count stats.
class PassManager {
 public:
  /// `verify_between`: re-run the structural verifier after every pass
  /// (cheap, and turns a miscompiling pass into an immediate error).
  explicit PassManager(bool verify_between = true)
      : verify_between_(verify_between) {}

  void add(std::unique_ptr<Pass> pass);

  PipelineStats run(bvram::Program& p, std::size_t max_rounds = 8);

 private:
  std::vector<std::unique_ptr<Pass>> passes_;
  bool verify_between_ = true;
};

/// Verify + run the standard pipeline for `level` on `p` in place.
PipelineStats optimize(bvram::Program& p, OptLevel level = OptLevel::O2);

}  // namespace nsc::opt
