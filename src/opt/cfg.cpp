#include "opt/cfg.hpp"

#include <algorithm>

namespace nsc::opt {

using bvram::Instr;
using bvram::Op;
using bvram::Program;

Cfg Cfg::build(const Program& p) {
  const std::size_t n = p.code.size();
  Cfg cfg;
  if (n == 0) return cfg;

  // Leaders: instruction 0, every jump target, every instruction after a
  // control-flow instruction.
  std::vector<bool> leader(n, false);
  leader[0] = true;
  for (std::size_t i = 0; i < n; ++i) {
    const Instr& in = p.code[i];
    if (in.is_jump()) {
      if (in.target < n) leader[in.target] = true;
      if (i + 1 < n) leader[i + 1] = true;
    } else if (in.op == Op::Halt && i + 1 < n) {
      leader[i + 1] = true;
    }
  }

  cfg.block_of.assign(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    if (leader[i]) {
      cfg.blocks.push_back(Block{i, i, {}, {}, false});
    }
    cfg.block_of[i] = cfg.blocks.size() - 1;
    cfg.blocks.back().end = i + 1;
  }

  auto link = [&](std::size_t from, std::size_t to_instr) {
    if (to_instr >= n) {
      cfg.blocks[from].falls_to_exit = true;
      return;
    }
    cfg.blocks[from].succs.push_back(cfg.block_of[to_instr]);
  };
  for (std::size_t b = 0; b < cfg.blocks.size(); ++b) {
    const Instr& last = p.code[cfg.blocks[b].end - 1];
    switch (last.op) {
      case Op::Goto:
        link(b, last.target);
        break;
      case Op::GotoIfEmpty:
        link(b, last.target);
        link(b, cfg.blocks[b].end);
        break;
      case Op::Halt:
        cfg.blocks[b].falls_to_exit = true;
        break;
      default:
        link(b, cfg.blocks[b].end);
        break;
    }
    auto& succs = cfg.blocks[b].succs;
    std::sort(succs.begin(), succs.end());
    succs.erase(std::unique(succs.begin(), succs.end()), succs.end());
  }
  for (std::size_t b = 0; b < cfg.blocks.size(); ++b) {
    for (std::size_t s : cfg.blocks[b].succs) cfg.blocks[s].preds.push_back(b);
  }
  return cfg;
}

std::vector<bool> Cfg::reachable() const {
  std::vector<bool> seen(blocks.size(), false);
  if (blocks.empty()) return seen;
  std::vector<std::size_t> stack{0};
  seen[0] = true;
  while (!stack.empty()) {
    const std::size_t b = stack.back();
    stack.pop_back();
    for (std::size_t s : blocks[b].succs) {
      if (!seen[s]) {
        seen[s] = true;
        stack.push_back(s);
      }
    }
  }
  return seen;
}

bool erase_unkept(Program& p, const std::vector<bool>& keep) {
  const std::size_t n = p.code.size();
  // new_pos[i] = number of kept instructions before i; new_pos[n] = total.
  std::vector<std::size_t> new_pos(n + 1, 0);
  for (std::size_t i = 0; i < n; ++i) {
    new_pos[i + 1] = new_pos[i] + (keep[i] ? 1 : 0);
  }
  if (new_pos[n] == n) return false;

  std::vector<Instr> out;
  out.reserve(new_pos[n]);
  for (std::size_t i = 0; i < n; ++i) {
    if (!keep[i]) continue;
    Instr in = p.code[i];
    if (in.is_jump()) in.target = new_pos[std::min(in.target, n)];
    out.push_back(in);
  }
  p.code = std::move(out);
  return true;
}

}  // namespace nsc::opt
