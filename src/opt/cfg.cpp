#include "opt/cfg.hpp"

#include <algorithm>

namespace nsc::opt {

using bvram::Instr;
using bvram::Op;
using bvram::Program;

Cfg Cfg::build(const Program& p) {
  const std::size_t n = p.code.size();
  Cfg cfg;
  if (n == 0) return cfg;

  // Leaders: instruction 0, every jump target, every instruction after a
  // control-flow instruction.
  std::vector<bool> leader(n, false);
  leader[0] = true;
  for (std::size_t i = 0; i < n; ++i) {
    const Instr& in = p.code[i];
    if (in.is_jump()) {
      if (in.target < n) leader[in.target] = true;
      if (i + 1 < n) leader[i + 1] = true;
    } else if (in.op == Op::Halt && i + 1 < n) {
      leader[i + 1] = true;
    }
  }

  cfg.block_of.assign(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    if (leader[i]) {
      cfg.blocks.push_back(Block{i, i, {}, {}, false});
    }
    cfg.block_of[i] = cfg.blocks.size() - 1;
    cfg.blocks.back().end = i + 1;
  }

  auto link = [&](std::size_t from, std::size_t to_instr) {
    if (to_instr >= n) {
      cfg.blocks[from].falls_to_exit = true;
      return;
    }
    cfg.blocks[from].succs.push_back(cfg.block_of[to_instr]);
  };
  for (std::size_t b = 0; b < cfg.blocks.size(); ++b) {
    const Instr& last = p.code[cfg.blocks[b].end - 1];
    switch (last.op) {
      case Op::Goto:
        link(b, last.target);
        break;
      case Op::GotoIfEmpty:
        link(b, last.target);
        link(b, cfg.blocks[b].end);
        break;
      case Op::Halt:
        cfg.blocks[b].falls_to_exit = true;
        break;
      default:
        link(b, cfg.blocks[b].end);
        break;
    }
    auto& succs = cfg.blocks[b].succs;
    std::sort(succs.begin(), succs.end());
    succs.erase(std::unique(succs.begin(), succs.end()), succs.end());
  }
  for (std::size_t b = 0; b < cfg.blocks.size(); ++b) {
    for (std::size_t s : cfg.blocks[b].succs) cfg.blocks[s].preds.push_back(b);
  }
  return cfg;
}

std::vector<bool> Cfg::reachable() const {
  std::vector<bool> seen(blocks.size(), false);
  if (blocks.empty()) return seen;
  std::vector<std::size_t> stack{0};
  seen[0] = true;
  while (!stack.empty()) {
    const std::size_t b = stack.back();
    stack.pop_back();
    for (std::size_t s : blocks[b].succs) {
      if (!seen[s]) {
        seen[s] = true;
        stack.push_back(s);
      }
    }
  }
  return seen;
}

DomTree DomTree::build(const Cfg& cfg) {
  const std::size_t nb = cfg.blocks.size();
  DomTree dt;
  dt.idom.assign(nb, kNoBlock);
  dt.children.assign(nb, {});
  dt.pre.assign(nb, 0);
  dt.post.assign(nb, 0);
  if (nb == 0) return dt;

  // Reverse postorder over the CFG from the entry block.
  std::vector<std::size_t> rpo_num(nb, kNoBlock);
  std::vector<std::size_t> order;  // postorder
  {
    std::vector<bool> seen(nb, false);
    struct Frame {
      std::size_t block;
      std::size_t next_succ;
    };
    std::vector<Frame> stack{{0, 0}};
    seen[0] = true;
    while (!stack.empty()) {
      Frame& f = stack.back();
      const auto& succs = cfg.blocks[f.block].succs;
      if (f.next_succ < succs.size()) {
        const std::size_t s = succs[f.next_succ++];
        if (!seen[s]) {
          seen[s] = true;
          stack.push_back({s, 0});
        }
      } else {
        order.push_back(f.block);
        stack.pop_back();
      }
    }
  }
  std::reverse(order.begin(), order.end());  // now reverse postorder
  for (std::size_t i = 0; i < order.size(); ++i) rpo_num[order[i]] = i;

  // Cooper–Harvey–Kennedy: intersect walks both fingers up to the common
  // dominator, comparing RPO numbers.
  auto intersect = [&](std::size_t a, std::size_t b) {
    while (a != b) {
      while (rpo_num[a] > rpo_num[b]) a = dt.idom[a];
      while (rpo_num[b] > rpo_num[a]) b = dt.idom[b];
    }
    return a;
  };
  dt.idom[0] = 0;
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 1; i < order.size(); ++i) {
      const std::size_t b = order[i];
      std::size_t new_idom = kNoBlock;
      for (std::size_t p : cfg.blocks[b].preds) {
        if (dt.idom[p] == kNoBlock) continue;  // not processed yet
        new_idom = new_idom == kNoBlock ? p : intersect(p, new_idom);
      }
      if (new_idom != kNoBlock && dt.idom[b] != new_idom) {
        dt.idom[b] = new_idom;
        changed = true;
      }
    }
  }

  for (std::size_t i = 1; i < order.size(); ++i) {
    const std::size_t b = order[i];
    if (dt.idom[b] != kNoBlock) dt.children[dt.idom[b]].push_back(b);
  }

  // Entry/exit stamps over the dominator tree for O(1) dominates().
  std::size_t clock = 0;
  struct Frame {
    std::size_t block;
    std::size_t next_child;
  };
  std::vector<Frame> stack{{0, 0}};
  dt.pre[0] = clock++;
  while (!stack.empty()) {
    Frame& f = stack.back();
    if (f.next_child < dt.children[f.block].size()) {
      const std::size_t c = dt.children[f.block][f.next_child++];
      dt.pre[c] = clock++;
      stack.push_back({c, 0});
    } else {
      dt.post[f.block] = clock++;
      stack.pop_back();
    }
  }
  return dt;
}

LoopForest LoopForest::build(const Cfg& cfg, const DomTree& dom) {
  const std::size_t nb = cfg.blocks.size();
  LoopForest f;
  f.loop_of.assign(nb, kNoBlock);

  // Back edges b -> h with h dominating b, grouped by header.
  std::vector<std::size_t> loop_of_header(nb, kNoBlock);
  for (std::size_t b = 0; b < nb; ++b) {
    for (std::size_t h : cfg.blocks[b].succs) {
      if (!dom.dominates(h, b)) continue;
      if (loop_of_header[h] == kNoBlock) {
        loop_of_header[h] = f.loops.size();
        f.loops.push_back(Loop{h, {}, {}, {}, kNoBlock, 1});
      }
      f.loops[loop_of_header[h]].latches.push_back(b);
    }
  }

  // Loop bodies: backward walk from the latches, stopping at the header.
  // The header is seeded as visited but never pushed: a latch equal to
  // the header (single-block self-loop) must not have its predecessors
  // walked, or the "body" would absorb everything upstream of the loop.
  for (Loop& l : f.loops) {
    std::vector<bool> in(nb, false);
    in[l.header] = true;
    std::vector<std::size_t> stack;
    for (std::size_t b : l.latches) {
      if (!in[b]) {
        in[b] = true;
        stack.push_back(b);
      }
    }
    while (!stack.empty()) {
      const std::size_t b = stack.back();
      stack.pop_back();
      for (std::size_t p : cfg.blocks[b].preds) {
        if (!in[p] && dom.reached(p)) {
          in[p] = true;
          stack.push_back(p);
        }
      }
    }
    for (std::size_t b = 0; b < nb; ++b) {
      if (!in[b]) continue;
      l.blocks.push_back(b);
      bool leaves = cfg.blocks[b].falls_to_exit;
      for (std::size_t s : cfg.blocks[b].succs) leaves |= !in[s];
      if (leaves) l.exits.push_back(b);
    }
  }

  // Nesting: the innermost containing loop is the smallest loop (by
  // block count) other than the loop itself that includes its header.
  std::vector<std::vector<bool>> member(f.loops.size(),
                                        std::vector<bool>(nb, false));
  for (std::size_t i = 0; i < f.loops.size(); ++i) {
    for (std::size_t b : f.loops[i].blocks) member[i][b] = true;
  }
  for (std::size_t i = 0; i < f.loops.size(); ++i) {
    for (std::size_t j = 0; j < f.loops.size(); ++j) {
      if (i == j || !member[j][f.loops[i].header]) continue;
      if (f.loops[i].parent == kNoBlock ||
          f.loops[j].blocks.size() <
              f.loops[f.loops[i].parent].blocks.size()) {
        f.loops[i].parent = j;
      }
    }
  }
  for (std::size_t i = 0; i < f.loops.size(); ++i) {
    std::size_t d = 1;
    for (std::size_t l = f.loops[i].parent; l != kNoBlock;
         l = f.loops[l].parent) {
      ++d;
    }
    f.loops[i].depth = d;
  }
  // block -> innermost loop: the smallest loop containing it.
  for (std::size_t b = 0; b < nb; ++b) {
    for (std::size_t i = 0; i < f.loops.size(); ++i) {
      if (!member[i][b]) continue;
      if (f.loop_of[b] == kNoBlock ||
          f.loops[i].blocks.size() < f.loops[f.loop_of[b]].blocks.size()) {
        f.loop_of[b] = i;
      }
    }
  }
  return f;
}

bool insert_before(Program& p, const std::vector<std::vector<Instr>>& ins,
                   const std::vector<bool>& land_after,
                   std::vector<std::size_t>* new_index) {
  const std::size_t n = p.code.size();
  // pre[t]: new position of the run inserted before t; post[t]: new
  // position of original instruction t.  pre[n] == the exit.
  std::vector<std::size_t> pre(n + 1), post(n + 1);
  std::size_t added = 0;
  for (std::size_t i = 0; i < n; ++i) {
    pre[i] = i + added;
    added += i < ins.size() ? ins[i].size() : 0;
    post[i] = i + added;
  }
  pre[n] = post[n] = n + added;
  if (new_index != nullptr) {
    new_index->assign(post.begin(), post.begin() + n);
  }
  if (added == 0) return false;

  std::vector<Instr> out;
  out.reserve(n + added);
  for (std::size_t i = 0; i < n; ++i) {
    if (i < ins.size()) {
      for (const Instr& extra : ins[i]) out.push_back(extra);
    }
    Instr in = p.code[i];
    if (in.is_jump()) {
      const std::size_t t = std::min(in.target, n);
      in.target = land_after[i] ? post[t] : pre[t];
    }
    out.push_back(in);
  }
  p.code = std::move(out);
  return true;
}

bool erase_unkept(Program& p, const std::vector<bool>& keep) {
  const std::size_t n = p.code.size();
  // new_pos[i] = number of kept instructions before i; new_pos[n] = total.
  std::vector<std::size_t> new_pos(n + 1, 0);
  for (std::size_t i = 0; i < n; ++i) {
    new_pos[i + 1] = new_pos[i] + (keep[i] ? 1 : 0);
  }
  if (new_pos[n] == n) return false;

  std::vector<Instr> out;
  out.reserve(new_pos[n]);
  for (std::size_t i = 0; i < n; ++i) {
    if (!keep[i]) continue;
    Instr in = p.code[i];
    if (in.is_jump()) in.target = new_pos[std::min(in.target, n)];
    out.push_back(in);
  }
  p.code = std::move(out);
  return true;
}

}  // namespace nsc::opt
