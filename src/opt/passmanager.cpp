#include <chrono>
#include <sstream>
#include <utility>

#include "opt/opt.hpp"

namespace nsc::opt {

void PassManager::add(std::unique_ptr<Pass> pass) {
  passes_.push_back(std::move(pass));
}

PipelineStats PassManager::run(bvram::Program& p, std::size_t max_rounds) {
  PipelineStats stats;
  stats.instrs_before = p.code.size();
  stats.regs_before = p.num_regs;
  for (const auto& pass : passes_) {
    stats.passes.push_back(PassStats{pass->name(), 0, 0});
  }

  // Passes rewrite code, so any existing last-use annotation or fusion
  // plan is about to go stale; drop them here rather than asking every
  // pass to.  Callers re-annotate after the pipeline (sa::compile_nsa
  // does).
  p.last_use.clear();
  p.fusion.clear();

  using Clock = std::chrono::steady_clock;
  const auto ns_since = [](Clock::time_point t0) {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             t0)
            .count());
  };
  const Clock::time_point pipeline_start = Clock::now();

  verify(p);
  bool changed = true;
  while (changed && stats.rounds < max_rounds) {
    changed = false;
    ++stats.rounds;
    for (std::size_t i = 0; i < passes_.size(); ++i) {
      const std::size_t before = p.code.size();
      const Clock::time_point pass_start = Clock::now();
      const bool ran = passes_[i]->run(p);
      stats.passes[i].wall_ns += ns_since(pass_start);
      if (!ran) continue;
      if (verify_between_) verify(p);
      stats.passes[i].applications += 1;
      stats.passes[i].instrs_removed += before - p.code.size();
      changed = true;
    }
  }

  stats.instrs_after = p.code.size();
  stats.regs_after = p.num_regs;
  stats.wall_ns = ns_since(pipeline_start);
  return stats;
}

std::string PipelineStats::show() const {
  std::ostringstream out;
  out << "instrs " << instrs_before << " -> " << instrs_after << ", regs "
      << regs_before << " -> " << regs_after << " (" << rounds << " rounds";
  for (const auto& ps : passes) {
    if (ps.applications == 0) continue;
    out << "; " << ps.name << " x" << ps.applications << " -"
        << ps.instrs_removed;
  }
  out << ")";
  return out.str();
}

PipelineStats optimize(bvram::Program& p, OptLevel level) {
  if (level == OptLevel::O0) {
    verify(p);
    PipelineStats stats;
    stats.instrs_before = stats.instrs_after = p.code.size();
    stats.regs_before = stats.regs_after = p.num_regs;
    return stats;
  }
  PassManager pm;
  if (level == OptLevel::O1) {
    // One cleanup round.  GVN rides along because the peephole's local
    // CSE moved there: without it O1 would have lost the redundant-
    // recomputation folding it always had.
    pm.add(make_gvn());
    pm.add(make_peephole());
    pm.add(make_dce());
    return pm.run(p, /*max_rounds=*/1);
  }
  pm.add(make_copy_prop());
  pm.add(make_gvn());
  pm.add(make_licm());
  pm.add(make_peephole());
  pm.add(make_dce());
  pm.add(make_reg_compact());
  return pm.run(p);
}

}  // namespace nsc::opt
