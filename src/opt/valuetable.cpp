#include "opt/valuetable.hpp"

namespace nsc::opt {

using bvram::Instr;
using bvram::Op;
using bvram::Program;

namespace {

bool foldable_op(Op op) {
  switch (op) {
    case Op::LoadEmpty:
    case Op::LoadConst:
    case Op::Move:
    case Op::Arith:
    case Op::Append:
    case Op::Length:
    case Op::Enumerate:
    case Op::Select:
    case Op::ScanPlus:
      return true;
    default:
      return false;
  }
}

}  // namespace

SlotMap build_av_slots(const Program& p) {
  std::vector<bool> written(p.num_regs, false);
  for (const Instr& in : p.code) {
    if (in.has_dst()) written[in.dst] = true;
  }
  std::vector<bool> tracked(p.num_regs, false);
  for (std::size_t r = p.num_inputs; r < p.num_regs; ++r) {
    if (!written[r]) tracked[r] = true;
  }
  // Branch-tested registers gain an Empty fact on the taken edge even
  // when nothing else is known about them.
  for (const Instr& in : p.code) {
    if (in.op == Op::GotoIfEmpty) tracked[in.a] = true;
  }
  bool grew = true;
  while (grew) {
    grew = false;
    for (const Instr& in : p.code) {
      if (!in.has_dst() || tracked[in.dst] || !foldable_op(in.op)) continue;
      bool all_tracked = true;
      for (std::uint32_t r : in.srcs()) all_tracked &= tracked[r];
      if (all_tracked) {
        tracked[in.dst] = true;
        grew = true;
      }
    }
  }
  SlotMap m;
  m.slot_of.assign(p.num_regs, kNoSlot);
  for (std::size_t r = 0; r < p.num_regs; ++r) {
    if (tracked[r]) m.slot_of[r] = m.num_slots++;
  }
  return m;
}

AV av_eval(const Instr& in, const AvState& s, const SlotMap& m) {
  auto A = [&] { return m.get(s, in.a); };
  auto B = [&] { return m.get(s, in.b); };
  switch (in.op) {
    case Op::LoadEmpty:
      return AV::empty();
    case Op::LoadConst:
      return AV::konst(in.imm);
    case Op::Move:
      return A();
    case Op::Arith: {
      if (A().kind == AV::Empty && B().kind == AV::Empty) return AV::empty();
      if (A().kind == AV::Const && B().kind == AV::Const) {
        try {
          return AV::konst(lang::arith_apply(in.aop, A().n, B().n));
        } catch (const Error&) {
          return AV::unknown();  // would trap at run time: leave it be
        }
      }
      return AV::unknown();
    }
    case Op::Append: {
      if (A().kind == AV::Empty) return B();
      if (B().kind == AV::Empty) return A();
      return AV::unknown();  // two non-empties: length >= 2
    }
    case Op::Length: {
      if (A().kind == AV::Empty) return AV::konst(0);
      if (A().kind == AV::Const) return AV::konst(1);
      return AV::unknown();
    }
    case Op::Enumerate: {
      if (A().kind == AV::Empty) return AV::empty();
      if (A().kind == AV::Const) return AV::konst(0);
      return AV::unknown();
    }
    case Op::Select: {
      if (A().kind == AV::Empty) return AV::empty();
      if (A().kind == AV::Const) {
        return A().n == 0 ? AV::empty() : AV::konst(A().n);
      }
      return AV::unknown();
    }
    case Op::ScanPlus: {
      if (A().kind == AV::Empty) return AV::empty();
      if (A().kind == AV::Const) return AV::konst(0);
      return AV::unknown();
    }
    default:
      return AV::unknown();  // routes: not tracked
  }
}

bool AvDomain::edge_refines(const Program& prog, const Cfg& cfg,
                            std::size_t pred, std::size_t succ) const {
  const Instr& last = prog.code[cfg.blocks[pred].end - 1];
  if (last.op != Op::GotoIfEmpty) return false;
  const std::size_t n = prog.code.size();
  const std::size_t taken =
      last.target < n ? cfg.block_of[last.target] : kNoBlock;
  const std::size_t fall =
      cfg.blocks[pred].end < n ? cfg.block_of[cfg.blocks[pred].end]
                               : kNoBlock;
  // Only the unambiguously-taken edge carries a fact (if both edges
  // land on the same block, nothing is known).
  return taken == succ && fall != succ;
}

void AvDomain::edge_refine(const Program& prog, const Cfg& cfg,
                           std::size_t pred, std::size_t succ,
                           AvState& s) const {
  if (!edge_refines(prog, cfg, pred, succ)) return;
  m->set(s, prog.code[cfg.blocks[pred].end - 1].a, AV::empty());
}

void VnTable::rollback(std::size_t to_mark) {
  while (undo.size() > to_mark) {
    const UndoRecord& u = undo.back();
    switch (u.kind) {
      case UndoRecord::Reg:
        reg_vn[u.reg] = u.old_vn;
        break;
      case UndoRecord::ExprSet:
        exprs[u.key] = u.old_entry;
        break;
      case UndoRecord::ExprNew:
        exprs.erase(u.key);
        break;
    }
    undo.pop_back();
  }
}

VnKey VnTable::key_of(const Instr& in) const {
  const auto srcs = in.srcs();
  std::uint64_t vn[4] = {0, 0, 0, 0};
  for (std::size_t i = 0; i < srcs.n; ++i) vn[i] = reg_vn[srcs.regs[i]] + 1;
  const std::uint64_t imm = in.op == Op::LoadConst ? in.imm : 0;
  return {static_cast<std::uint8_t>(in.op),
          static_cast<std::uint8_t>(in.aop),
          imm,
          vn[0],
          vn[1],
          vn[2],
          vn[3]};
}

bool cse_eligible(const Instr& in) {
  switch (in.op) {
    case Op::LoadEmpty:
    case Op::LoadConst:
    case Op::Arith:
    case Op::Append:
    case Op::Length:
    case Op::Enumerate:
    case Op::BmRoute:
    case Op::SbmRoute:
    case Op::Select:
    case Op::ScanPlus:
      return true;
    default:
      return false;
  }
}

}  // namespace nsc::opt
