// Loop-invariant code motion over the natural-loop forest.
//
// The flattening compiler's while loops re-derive per-iteration values
// that only depend on registers the loop never writes: the LoadConsts
// feeding every catalog helper, and -- the headline case from the
// ROADMAP -- the ones_like/broadcast masks (bm-route of a constant
// singleton over an invariant register) that eq_bits / inv_bits /
// ConstNat emit inside the loop body of every WhileSchedule.  This pass
// hoists such instructions into the loop preheader: the code inserted
// immediately before the loop header, which entry edges flow through
// and back edges skip (cfg.hpp's insert_before).
//
// An instruction i (defining d, in loop L) is hoisted when:
//   * every source register has no definition inside L, or only
//     definitions that are themselves hoisted this round (the closure
//     is computed iteratively; the preheader emits hoisted rounds in
//     order, so dependencies execute first);
//   * d has exactly one definition inside L (i itself) and is not
//     live into the header: no path from the header reads d before
//     writing it, so neither the zero-trip exit nor any in-loop use can
//     observe the pre-loop value the preheader definition replaces;
//   * i's block dominates every loop exit, so every terminating entry
//     into the loop executed i at least once before -- the hoisted copy
//     executes exactly once per entry, and the executed T and W can
//     only shrink (no speculation: an instruction that might not have
//     run is never moved to where it always runs);
//   * every back edge is an explicit jump (a fall-through back edge
//     would re-run the preheader each iteration);
//   * i provably cannot trap (below).
//
// Trap proofs.  Trap-free opcodes (LoadConst, LoadEmpty, Append,
// Length, Enumerate, Select, ScanPlus) hoist as-is.  Trap-capable ones
// hoist only when the value table discharges the certificate -- and
// every certifying definition must have executed by the *preheader*
// (it dominates the loop header from outside, or was hoisted there in
// an earlier round), because that is where the hoisted copy runs:
//   * Arith: lengths match when both operands are the same register, or
//     when each is provably a singleton (its unique program-wide
//     definition is a LoadConst or Length that dominates i); Div
//     additionally needs the divisor's unique definition to be a
//     LoadConst of a nonzero constant.
//   * BmRoute (the broadcast pattern): sum(counts) == |bound| holds
//     when counts' unique definition is Length(bound) dominating i with
//     no definition of bound possibly executing between the Length and
//     i; |counts| == |data| holds when data's unique definition is a
//     LoadConst (both singletons).  This is exactly the catalog's
//     ones_like / zeros_like / broadcast(konst, x) shape.
//   * SbmRoute is never hoisted.
// Because hoisted instructions cannot trap, moving them earlier cannot
// introduce a trap or reorder one, and invariance makes the preheader
// execution produce bit-identical values to every in-loop execution.
#include <algorithm>
#include <cstdint>
#include <vector>

#include "opt/cfg.hpp"
#include "opt/liveness.hpp"
#include "opt/opt.hpp"
#include "opt/valuetable.hpp"

namespace nsc::opt {
namespace {

using bvram::Instr;
using bvram::Op;
using bvram::Program;

constexpr std::size_t kNoInstr = static_cast<std::size_t>(-1);

class Licm final : public Pass {
 public:
  const char* name() const override { return "licm"; }

  bool run(Program& p) override {
    if (p.code.empty() || p.num_regs == 0) return false;
    const Cfg cfg = Cfg::build(p);
    const DomTree dom = DomTree::build(cfg);
    const LoopForest loops = LoopForest::build(cfg, dom);
    if (loops.loops.empty()) return false;
    const Liveness lv = Liveness::compute(p, cfg);

    const std::size_t n = p.code.size();

    // Program-wide definition census, for the singleton/certificate
    // proofs: defs_of[r] lists every instruction defining r, and
    // unique_def[r] is the index of r's only defining instruction
    // (kNoInstr when r has zero or several).
    std::vector<std::vector<std::size_t>> defs_of(p.num_regs);
    std::vector<std::size_t> unique_def(p.num_regs, kNoInstr);
    for (std::size_t i = 0; i < n; ++i) {
      if (p.code[i].has_dst()) defs_of[p.code[i].dst].push_back(i);
    }
    for (std::size_t r = 0; r < p.num_regs; ++r) {
      if (defs_of[r].size() == 1) unique_def[r] = defs_of[r][0];
    }

    // Block-to-block reachability (successor closure, so a block inside
    // a cycle reaches itself), for the "no definition in between" check.
    // Only the BmRoute certificate consults it, so rows are computed on
    // first use rather than filling an nb x nb matrix up front.
    const std::size_t nb = cfg.blocks.size();
    std::vector<std::vector<bool>> reach_rows(nb);
    auto reaches = [&](std::size_t from, std::size_t to) {
      auto& row = reach_rows[from];
      if (row.empty()) {
        row.assign(nb, false);
        std::vector<std::size_t> stack{from};
        while (!stack.empty()) {
          const std::size_t q = stack.back();
          stack.pop_back();
          for (std::size_t s : cfg.blocks[q].succs) {
            if (!row[s]) {
              row[s] = true;
              stack.push_back(s);
            }
          }
        }
      }
      return row[to];
    };
    // Instruction a may execute strictly before instruction b on some
    // path (block-level over-approximation).
    auto may_precede = [&](std::size_t a, std::size_t b) {
      const std::size_t ba = cfg.block_of[a], bb = cfg.block_of[b];
      return (ba == bb && a < b) || reaches(ba, bb);
    };
    // i's block dominates j's block and, within a shared block, comes
    // first: i executes on every path reaching j.
    auto dominates_instr = [&](std::size_t i, std::size_t j) {
      const std::size_t bi = cfg.block_of[i], bj = cfg.block_of[j];
      return bi == bj ? i < j : dom.dominates(bi, bj);
    };

    // reg r is a provable singleton at instruction i: its one and only
    // definition is a LoadConst or Length executing on every path to i.
    auto singleton_at = [&](std::uint32_t r, std::size_t i) {
      const std::size_t d = unique_def[r];
      if (d == kNoInstr) return false;
      const Op op = p.code[d].op;
      return (op == Op::LoadConst || op == Op::Length) &&
             dominates_instr(d, i);
    };

    std::vector<bool> hoisted(n, false);  // global, across all loops
    // For each instruction index: the instructions to insert before it
    // (preheader runs keyed by the header's begin index).
    std::vector<std::vector<Instr>> ins(n);
    std::vector<bool> land_after(n, false);
    bool any = false;

    // Process loops outermost-first so an instruction invariant in an
    // outer loop leaves it entirely in one pass; whatever is only
    // invariant deeper hoists to the inner preheader (still inside the
    // outer loop) and may bubble further out on the next pipeline round.
    std::vector<std::size_t> order(loops.loops.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return loops.loops[a].depth < loops.loops[b].depth;
    });

    for (std::size_t li : order) {
      const Loop& loop = loops.loops[li];
      hoist_loop(p, cfg, dom, lv, loop, singleton_at, may_precede,
                 dominates_instr, unique_def, defs_of, hoisted, ins,
                 land_after, any);
    }
    if (!any) return false;

    std::vector<std::size_t> new_index;
    insert_before(p, ins, land_after, &new_index);
    std::vector<bool> keep(p.code.size(), true);
    for (std::size_t i = 0; i < n; ++i) {
      if (hoisted[i]) keep[new_index[i]] = false;
    }
    erase_unkept(p, keep);
    return true;
  }

 private:
  template <typename SingletonAt, typename MayPrecede, typename DominatesInstr>
  void hoist_loop(const Program& p, const Cfg& cfg, const DomTree& dom,
                  const Liveness& lv, const Loop& loop,
                  const SingletonAt& singleton_at,
                  const MayPrecede& may_precede,
                  const DominatesInstr& dominates_instr,
                  const std::vector<std::size_t>& unique_def,
                  const std::vector<std::vector<std::size_t>>& defs_of,
                  std::vector<bool>& hoisted,
                  std::vector<std::vector<Instr>>& ins,
                  std::vector<bool>& land_after, bool& any) {
    const std::size_t header_begin = cfg.blocks[loop.header].begin;

    // Every back edge must be an explicit jump onto the header; collect
    // the jump indices so insert_before can route them past the
    // preheader code.
    std::vector<std::size_t> back_jumps;
    for (std::size_t latch : loop.latches) {
      const std::size_t last = cfg.blocks[latch].end - 1;
      const Instr& j = p.code[last];
      if (j.is_jump() && j.target == header_begin) {
        back_jumps.push_back(last);
        // A conditional back edge's fall-through leaves the loop or
        // stays inside it; either way it does not re-enter the header,
        // so routing only the jump target is enough.
        continue;
      }
      return;  // fall-through back edge: preheader would run per iteration
    }

    std::vector<bool> in_loop(cfg.blocks.size(), false);
    for (std::size_t b : loop.blocks) in_loop[b] = true;

    // Irreducibility guard: every in-loop edge onto the header must be a
    // back edge (its source a latch).  A non-dominated jump back to the
    // header would traverse the preheader once per pass, which could
    // re-execute hoisted code more often than the loop body did.
    std::vector<bool> is_latch(cfg.blocks.size(), false);
    for (std::size_t l : loop.latches) is_latch[l] = true;
    for (std::size_t b : loop.blocks) {
      for (std::size_t s : cfg.blocks[b].succs) {
        if (s == loop.header && !is_latch[b]) return;
      }
    }

    // Definition counts within the loop, and membership of instructions.
    std::vector<std::size_t> defs_in_loop(p.num_regs, 0);
    std::vector<std::size_t> loop_instrs;
    for (std::size_t b : loop.blocks) {
      for (std::size_t i = cfg.blocks[b].begin; i < cfg.blocks[b].end; ++i) {
        if (hoisted[i]) continue;  // already moved out by an outer loop
        loop_instrs.push_back(i);
        if (p.code[i].has_dst()) ++defs_in_loop[p.code[i].dst];
      }
    }

    // Iterative closure: each round admits instructions whose loop-side
    // source definitions were all hoisted in earlier rounds, and emits
    // them in that round order so preheader dependencies run first.
    std::vector<bool> local(p.code.size(), false);  // hoisted from THIS loop

    // A trap certificate is discharged at the *preheader*, where the
    // hoisted copy runs -- so the certifying definition must have
    // executed by then on every path: either it lies outside the loop
    // in a block dominating the header, or it was itself hoisted into
    // this very preheader in an earlier round.  (Proving it merely at
    // the original in-loop site is not enough: a path that enters the
    // loop without ever reaching the instruction -- say, spinning on an
    // exit-free cycle -- would run the hoisted copy on uncertified
    // values and could newly trap.)
    auto available_at_preheader = [&](std::size_t d) {
      return local[d] || (!in_loop[cfg.block_of[d]] &&
                          dom.dominates(cfg.block_of[d], loop.header));
    };
    auto certified_singleton = [&](std::uint32_t r, std::size_t i) {
      return singleton_at(r, i) && available_at_preheader(unique_def[r]);
    };

    auto provably_no_trap = [&](std::size_t i) {
      const Instr& in = p.code[i];
      switch (in.op) {
        case Op::Arith: {
          const bool len_ok =
              in.a == in.b ||
              (certified_singleton(in.a, i) && certified_singleton(in.b, i));
          if (!len_ok) return false;
          if (in.aop != lang::ArithOp::Div) return true;
          const std::size_t d = unique_def[in.b];
          return d != kNoInstr && p.code[d].op == Op::LoadConst &&
                 p.code[d].imm != 0 && dominates_instr(d, i) &&
                 available_at_preheader(d);
        }
        case Op::BmRoute: {
          // The catalog broadcast: counts := Length(bound) dominating i,
          // bound not possibly redefined between the Length and i, and
          // data a LoadConst singleton.  counts == bound is rejected
          // outright: Length(y, y) clobbers its own source, so the
          // measured length no longer describes the bound register.
          const std::size_t dc = unique_def[in.b];
          if (in.b == in.a || dc == kNoInstr || p.code[dc].op != Op::Length ||
              p.code[dc].a != in.a || !dominates_instr(dc, i) ||
              !available_at_preheader(dc)) {
            return false;
          }
          for (std::size_t j : defs_of[in.a]) {
            if (j == dc) continue;
            if (may_precede(dc, j) && may_precede(j, i)) return false;
          }
          const std::size_t dd = unique_def[in.c];
          return dd != kNoInstr && p.code[dd].op == Op::LoadConst &&
                 dominates_instr(dd, i) && available_at_preheader(dd);
        }
        case Op::SbmRoute:
          return false;
        default:
          return !in.can_trap();
      }
    };
    bool grew = true;
    while (grew) {
      grew = false;
      for (std::size_t i : loop_instrs) {
        const Instr& in = p.code[i];
        if (local[i] || hoisted[i] || !in.has_dst() || in.op == Op::Move) {
          continue;
        }
        if (defs_in_loop[in.dst] != 1) continue;
        if (lv.live_in[loop.header][in.dst]) continue;
        bool src_ok = true;
        for (std::uint32_t r : in.srcs()) {
          if (defs_in_loop[r] != 0) src_ok = false;
        }
        if (!src_ok) continue;
        // The instruction must have run on every terminating entry: its
        // block dominates every exit block (an exit edge sits at its
        // block's end, after every instruction in it).
        bool dominates_exits = true;
        for (std::size_t e : loop.exits) {
          dominates_exits &= dom.dominates(cfg.block_of[i], e);
        }
        if (!dominates_exits) continue;
        if (!provably_no_trap(i)) continue;

        local[i] = true;
        hoisted[i] = true;
        --defs_in_loop[in.dst];  // its sources become invariant for later
        ins[header_begin].push_back(in);
        any = true;
        grew = true;
      }
    }
    if (ins[header_begin].empty()) return;
    for (std::size_t j : back_jumps) land_after[j] = true;
  }
};

}  // namespace

std::unique_ptr<Pass> make_licm() { return std::make_unique<Licm>(); }

}  // namespace nsc::opt
