// The optimizer's shared value catalog: the abstract-value lattice
// {UNKNOWN, EMPTY, CONST(n)} with its dataflow domain, and the value-
// numbering table (expression keys, register numbering, undo log).
//
// Both were born inside peephole.cpp; they are shared here because three
// passes now reason about BVRAM values:
//   * peephole   constant folding and branch simplification over the
//                abstract values;
//   * gvn        dominator-tree-scoped value numbering (global CSE and
//                the all-ones route algebra);
//   * licm       invariant hoisting, which discharges route/arith trap
//                certificates with the same value facts (a bm-route
//                whose counts are Length of its bound register provably
//                satisfies sum(counts) == |bound|).
//
// The AvDomain additionally implements the edge_refine hook of the
// shared ForwardDataflow driver: on the *taken* edge of a GotoIfEmpty
// the tested register is known empty, so downstream Length / Append /
// Select of it fold even though the fact holds on one edge only
// (branch-sensitive constant propagation).
#pragma once

#include <cstdint>
#include <map>
#include <tuple>
#include <vector>

#include "bvram/machine.hpp"
#include "opt/cfg.hpp"

namespace nsc::opt {

// ---------------------------------------------------------------------------
// abstract values
// ---------------------------------------------------------------------------

struct AV {
  enum Kind : std::uint8_t { Unknown, Empty, Const } kind = Unknown;
  std::uint64_t n = 0;

  bool operator==(const AV&) const = default;
  static AV unknown() { return {Unknown, 0}; }
  static AV empty() { return {Empty, 0}; }
  static AV konst(std::uint64_t n) { return {Const, n}; }
};

inline AV av_meet(AV a, AV b) { return a == b ? a : AV::unknown(); }

// The dataflow state is a vector over "slots": only registers that can
// ever hold a statically-known value get one (the closure of LoadConst /
// LoadEmpty / never-written / branch-tested registers under the foldable
// operations).  Registers without a slot are Unknown everywhere, which
// is exactly what a dense analysis would compute for them -- naive
// compiled programs are large, and this keeps the per-block state small.
inline constexpr std::uint32_t kNoSlot = 0xffffffff;

using AvState = std::vector<AV>;  // indexed by slot

struct SlotMap {
  std::vector<std::uint32_t> slot_of;  // reg -> slot or kNoSlot
  std::uint32_t num_slots = 0;

  AV get(const AvState& s, std::uint32_t r) const {
    const std::uint32_t slot = slot_of[r];
    return slot == kNoSlot ? AV::unknown() : s[slot];
  }
  void set(AvState& s, std::uint32_t r, AV v) const {
    const std::uint32_t slot = slot_of[r];
    if (slot != kNoSlot) s[slot] = v;
  }
};

/// Registers whose abstract value can ever be non-Unknown: never-written
/// non-input registers (they stay empty), LoadConst/LoadEmpty targets,
/// registers tested by a GotoIfEmpty (empty on the taken edge), closed
/// under the foldable operations applied to tracked sources.
SlotMap build_av_slots(const bvram::Program& p);

/// Abstract result of an instruction given the pre-state (has_dst only).
AV av_eval(const bvram::Instr& in, const AvState& s, const SlotMap& m);

/// Domain for the shared ForwardDataflow driver.
struct AvDomain {
  const bvram::Program* p = nullptr;
  const SlotMap* m = nullptr;

  AvState entry() const {
    AvState s(m->num_slots, AV::empty());  // non-inputs start empty
    for (std::size_t r = 0; r < p->num_inputs && r < p->num_regs; ++r) {
      m->set(s, static_cast<std::uint32_t>(r), AV::unknown());
    }
    return s;
  }
  AvState unreached() const { return AvState(m->num_slots, AV::unknown()); }
  void meet_into(AvState& a, const AvState& b) const {
    for (std::size_t i = 0; i < a.size(); ++i) a[i] = av_meet(a[i], b[i]);
  }
  void transfer(const bvram::Instr& in, AvState& s) const {
    if (in.has_dst()) m->set(s, in.dst, av_eval(in, s, *m));
  }
  /// Branch sensitivity: along the taken edge of a GotoIfEmpty the
  /// tested register is empty.  (The fall-through edge only certifies
  /// non-emptiness, which the lattice cannot represent.)  edge_refines
  /// is the copy-avoidance guard the dataflow driver consults first.
  bool edge_refines(const bvram::Program& prog, const Cfg& cfg,
                    std::size_t pred, std::size_t succ) const;
  void edge_refine(const bvram::Program& prog, const Cfg& cfg,
                   std::size_t pred, std::size_t succ, AvState& s) const;
};

// ---------------------------------------------------------------------------
// value numbering
// ---------------------------------------------------------------------------

// Key: (op, aop, imm-for-LoadConst, value numbers of the source regs).
using VnKey = std::tuple<std::uint8_t, std::uint8_t, std::uint64_t,
                         std::uint64_t, std::uint64_t, std::uint64_t,
                         std::uint64_t>;

struct VnEntry {
  std::uint32_t reg = 0;
  std::uint64_t vn = 0;
};

/// The numbering table, scoped with an undo log: a tree-structured
/// rewrite walk (extended basic blocks before, the dominator tree now)
/// pushes each block's mutations onto the log and rolls them back on
/// the way out, so facts flow into subtrees but never across siblings.
struct VnTable {
  std::vector<std::uint64_t> reg_vn;  // register -> current value number
  std::uint64_t next_vn;
  std::map<VnKey, VnEntry> exprs;

  struct UndoRecord {
    enum Kind : std::uint8_t { Reg, ExprSet, ExprNew } kind;
    std::uint32_t reg = 0;
    std::uint64_t old_vn = 0;
    VnKey key{};
    VnEntry old_entry{};
  };
  std::vector<UndoRecord> undo;

  explicit VnTable(std::size_t num_regs)
      : reg_vn(num_regs), next_vn(num_regs) {
    for (std::size_t r = 0; r < num_regs; ++r) reg_vn[r] = r;
  }

  std::size_t mark() const { return undo.size(); }

  void set_reg_vn(std::uint32_t r, std::uint64_t v) {
    if (reg_vn[r] == v) return;
    undo.push_back({UndoRecord::Reg, r, reg_vn[r], {}, {}});
    reg_vn[r] = v;
  }

  void set_expr(const VnKey& key, VnEntry e) {
    auto [it, inserted] = exprs.emplace(key, e);
    if (inserted) {
      undo.push_back({UndoRecord::ExprNew, 0, 0, key, {}});
    } else {
      undo.push_back({UndoRecord::ExprSet, 0, 0, key, it->second});
      it->second = e;
    }
  }

  void rollback(std::size_t to_mark);

  VnKey key_of(const bvram::Instr& in) const;
};

/// Ops whose recomputation on value-identical operands may be replaced
/// (or aliased) by the earlier result.
bool cse_eligible(const bvram::Instr& in);

}  // namespace nsc::opt
