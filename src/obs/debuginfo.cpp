#include "obs/debuginfo.hpp"

namespace nsc::obs {

std::string DebugSite::show() const {
  if (!has_loc() && nsa.empty()) return "?";
  std::string out = nsa.empty() ? "?" : nsa;
  if (has_loc()) {
    out += "@" + std::to_string(line) + ":" + std::to_string(col);
  }
  return out;
}

std::uint32_t DebugTable::intern(const std::string& nsa, std::uint32_t line,
                                 std::uint32_t col) {
  const auto key = std::make_tuple(nsa, line, col);
  const auto it = index_.find(key);
  if (it != index_.end()) return it->second;
  const auto idx = static_cast<std::uint32_t>(sites_.size());
  sites_.push_back(DebugSite{nsa, line, col});
  index_.emplace(key, idx);
  return idx;
}

const DebugSite& DebugTable::site(std::uint32_t idx) const {
  return idx < sites_.size() ? sites_[idx] : sites_[0];
}

}  // namespace nsc::obs
