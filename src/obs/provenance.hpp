// Host/build provenance for benchmark emitters: perf numbers without the
// machine and configuration that produced them are noise in a trajectory,
// so every BENCH_*.json run object embeds one of these.
#pragma once

#include <cstddef>
#include <string>

namespace nsc::obs {

struct Provenance {
  std::size_t host_cores = 0;  ///< std::thread::hardware_concurrency
  std::size_t workers = 0;     ///< the pool's effective worker count
  std::string workers_env;     ///< raw NSCC_WORKERS value ("" if unset)
  std::string compiler;        ///< compiler id, e.g. "gcc 13.2.0"
  std::string git_sha;         ///< NSCC_GIT_SHA / GITHUB_SHA, else "unknown"

  /// Collect from the running process and environment.
  static Provenance collect();

  /// One flat JSON object (no trailing newline), e.g.
  /// {"host_cores":8,"workers":4,...} -- for embedding in bench reports.
  std::string to_json() const;
};

}  // namespace nsc::obs
