#include "obs/benchjson.hpp"

#include "obs/provenance.hpp"

namespace nsc::obs {

BenchReport::BenchReport(const std::string& path, const std::string& schema)
    : path_(path) {
  f_ = std::fopen(path.c_str(), "w");
  if (f_ == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f_, "{\n  \"schema\": \"%s\",\n", escape(schema).c_str());
  std::fprintf(f_, "  \"provenance\": %s,\n",
               Provenance::collect().to_json().c_str());
}

BenchReport::~BenchReport() { close(); }

void BenchReport::close() {
  if (f_ == nullptr) return;
  std::fprintf(f_, "}\n");
  std::fclose(f_);
  f_ = nullptr;
  std::printf("wrote %s\n", path_.c_str());
}

std::string BenchReport::escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else if (static_cast<unsigned char>(c) >= 0x20) {
      out += c;
    }
  }
  return out;
}

}  // namespace nsc::obs
