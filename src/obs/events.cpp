#include "obs/events.hpp"

#include <chrono>
#include <cstdio>
#include <ostream>

namespace nsc::obs {

namespace {

std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::uint64_t wall_now_us() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

}  // namespace

const char* severity_name(Severity s) {
  switch (s) {
    case Severity::Debug: return "debug";
    case Severity::Info: return "info";
    case Severity::Warn: return "warn";
    case Severity::Error: return "error";
  }
  return "?";
}

Event&& Event::num(const std::string& key, std::uint64_t value) && {
  fields.push_back({key, std::to_string(value), true});
  return std::move(*this);
}

Event&& Event::str(const std::string& key, const std::string& value) && {
  fields.push_back({key, value, false});
  return std::move(*this);
}

EventLog::EventLog(std::size_t capacity)
    : capacity_(capacity),
      mono_origin_ns_(steady_now_ns()),
      prov_(Provenance::collect()) {}

void EventLog::emit(Event e) {
  e.mono_ns = steady_now_ns() - mono_origin_ns_;
  e.wall_us = wall_now_us();
  std::lock_guard<std::mutex> lock(mu_);
  if (queue_.size() >= capacity_) {
    ++dropped_;
    return;
  }
  ++emitted_;
  queue_.push_back(std::move(e));
}

std::vector<Event> EventLog::drain() {
  std::deque<Event> taken;
  {
    std::lock_guard<std::mutex> lock(mu_);
    taken.swap(queue_);
  }
  return std::vector<Event>(std::make_move_iterator(taken.begin()),
                            std::make_move_iterator(taken.end()));
}

EventLogStats EventLog::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  EventLogStats s;
  s.emitted = emitted_;
  s.dropped = dropped_;
  s.queued = queue_.size();
  s.capacity = capacity_;
  return s;
}

std::string EventLog::json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void EventLog::write_header(std::ostream& out) const {
  std::uint64_t dropped;
  {
    std::lock_guard<std::mutex> lock(mu_);
    dropped = dropped_;
  }
  out << "{\"schema\":\"nscc-serve-events/v1\",\"provenance\":"
      << prov_.to_json() << ",\"capacity\":" << capacity_
      << ",\"dropped\":" << dropped << "}\n";
}

void EventLog::write_event(std::ostream& out, const Event& e) {
  out << "{\"event\":\"" << json_escape(e.name) << "\",\"sev\":\""
      << severity_name(e.sev) << "\",\"mono_ns\":" << e.mono_ns
      << ",\"wall_us\":" << e.wall_us;
  for (const Event::Field& f : e.fields) {
    out << ",\"" << json_escape(f.key) << "\":";
    if (f.raw) {
      out << f.value;
    } else {
      out << "\"" << json_escape(f.value) << "\"";
    }
  }
  out << "}\n";
}

}  // namespace nsc::obs
