#include "obs/profile.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <iomanip>
#include <map>
#include <ostream>
#include <sstream>
#include <unordered_map>

#include "obs/provenance.hpp"
#include "support/checked.hpp"

namespace nsc::obs {

namespace {

bool hotter(const ProfileRow& a, const ProfileRow& b) {
  if (a.wall_ns != b.wall_ns) return a.wall_ns > b.wall_ns;
  if (a.work != b.work) return a.work > b.work;
  return a.key < b.key;
}

std::vector<ProfileRow> sorted_rows(std::map<std::string, ProfileRow>&& m) {
  std::vector<ProfileRow> rows;
  rows.reserve(m.size());
  for (auto& [key, row] : m) rows.push_back(std::move(row));
  std::sort(rows.begin(), rows.end(), hotter);
  return rows;
}

void accumulate(ProfileRow& row, const bvram::InstrProfile& ip) {
  row.count += ip.count;
  row.wall_ns += ip.wall_ns;
  row.work = sat_add(row.work, ip.work);
  row.bytes = sat_add(row.bytes, ip.bytes);
  row.chunks += ip.chunks;
}

std::string ms(std::uint64_t ns) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(3)
      << static_cast<double>(ns) / 1e6;
  return out.str();
}

std::string render_rows(const char* key_header,
                        const std::vector<ProfileRow>& rows,
                        std::uint64_t total_wall) {
  std::ostringstream out;
  out << std::left << std::setw(24) << key_header << std::right
      << std::setw(10) << "count" << std::setw(14) << "work"
      << std::setw(14) << "bytes" << std::setw(10) << "chunks"
      << std::setw(12) << "wall(ms)" << std::setw(8) << "wall%" << "\n";
  for (const auto& r : rows) {
    const double pct =
        total_wall == 0
            ? 0.0
            : 100.0 * static_cast<double>(r.wall_ns) /
                  static_cast<double>(total_wall);
    out << std::left << std::setw(24) << r.key << std::right << std::setw(10)
        << r.count << std::setw(14) << r.work << std::setw(14) << r.bytes
        << std::setw(10) << r.chunks << std::setw(12) << ms(r.wall_ns)
        << std::setw(7) << std::fixed << std::setprecision(1) << pct << "%"
        << "\n";
  }
  return out.str();
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Label for an instruction on the timeline: "arith (map@12:7)" when
/// attributed, bare opcode otherwise.
std::string event_name(const bvram::Program& p, std::size_t pc) {
  const DebugSite& site = p.debug.site(p.code[pc].dbg);
  std::string name = bvram::op_name(p.code[pc].op);
  if (site.has_loc() || !site.nsa.empty()) {
    name += " (" + site.show() + ")";
  }
  return name;
}

}  // namespace

Profile Profile::build(const bvram::Program& p, const bvram::RunResult& r) {
  Profile out;
  out.engine = r.engine;
  const std::size_t n = std::min(p.code.size(), r.profile.size());

  std::map<std::string, ProfileRow> by_op;
  std::map<std::string, ProfileRow> by_line;
  std::uint64_t attributed = 0;
  for (std::size_t pc = 0; pc < n; ++pc) {
    const bvram::InstrProfile& ip = r.profile[pc];
    if (ip.count == 0) continue;
    out.total_count += ip.count;
    out.total_wall_ns += ip.wall_ns;
    out.total_work = sat_add(out.total_work, ip.work);
    out.total_bytes = sat_add(out.total_bytes, ip.bytes);

    ProfileRow& op_row = by_op[bvram::op_name(p.code[pc].op)];
    if (op_row.key.empty()) op_row.key = bvram::op_name(p.code[pc].op);
    accumulate(op_row, ip);

    const DebugSite& site = p.debug.site(p.code[pc].dbg);
    std::string line_key = "?";
    if (site.has_loc()) {
      line_key = "line " + std::to_string(site.line) + ":" +
                 std::to_string(site.col);
      attributed += ip.count;
    }
    ProfileRow& line_row = by_line[line_key];
    if (line_row.key.empty()) line_row.key = line_key;
    accumulate(line_row, ip);
  }
  out.attributed_frac =
      out.total_count == 0 ? 1.0
                           : static_cast<double>(attributed) /
                                 static_cast<double>(out.total_count);
  out.by_opcode = sorted_rows(std::move(by_op));
  out.by_line = sorted_rows(std::move(by_line));

  // Natural back-edge loops: a Goto/GotoIfEmpty at `back` targeting
  // head <= back brackets the loop body [head, back].
  for (std::size_t back = 0; back < n; ++back) {
    const bvram::Instr& in = p.code[back];
    if (!in.is_jump() || in.target > back) continue;
    if (back >= r.profile.size() || r.profile[back].count == 0) continue;
    LoopRow loop;
    loop.head = in.target;
    loop.back = back;
    loop.site = p.debug.site(in.dbg).show();
    loop.trips = r.profile[back].count;
    for (std::size_t pc = loop.head; pc <= back; ++pc) {
      loop.wall_ns += r.profile[pc].wall_ns;
      loop.work = sat_add(loop.work, r.profile[pc].work);
    }
    out.by_loop.push_back(std::move(loop));
  }
  std::sort(out.by_loop.begin(), out.by_loop.end(),
            [](const LoopRow& a, const LoopRow& b) {
              if (a.wall_ns != b.wall_ns) return a.wall_ns > b.wall_ns;
              if (a.work != b.work) return a.work > b.work;
              return a.head < b.head;
            });
  return out;
}

std::string Profile::render_by_opcode() const {
  return render_rows("opcode", by_opcode, total_wall_ns);
}

std::string Profile::render_by_line() const {
  return render_rows("source line", by_line, total_wall_ns);
}

std::string Profile::render_loops() const {
  std::ostringstream out;
  out << std::left << std::setw(16) << "loop (pc range)" << std::setw(24)
      << "site" << std::right << std::setw(10) << "trips" << std::setw(14)
      << "work" << std::setw(12) << "wall(ms)" << "\n";
  for (const auto& l : by_loop) {
    out << std::left << std::setw(16)
        << (std::to_string(l.head) + ".." + std::to_string(l.back))
        << std::setw(24) << l.site << std::right << std::setw(10) << l.trips
        << std::setw(14) << l.work << std::setw(12) << ms(l.wall_ns) << "\n";
  }
  return out.str();
}

std::string Profile::render_engine() const {
  std::ostringstream out;
  out << "wall " << ms(engine.wall_ns) << "ms"
      << "; pool " << engine.pool_hits << " hits / " << engine.pool_misses
      << " misses; in-place " << engine.inplace_hits << "; move-swaps "
      << engine.move_swaps << "; parallel " << engine.par_kernels
      << " kernels (" << engine.par_serial << " serial, "
      << engine.par_chunks << " chunks)"
      << "; fused " << engine.fused_groups << " groups / "
      << engine.fused_instrs << " instrs (" << engine.fused_elided
      << " buffers elided, " << engine.fused_fallbacks << " fallbacks)";
  return out.str();
}

void write_chrome_trace(std::ostream& out, const bvram::Program& p,
                        const bvram::RunResult& r,
                        const opt::PipelineStats* compile) {
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  const auto emit = [&](const std::string& name, int tid, double ts_us,
                        double dur_us, const std::string& args) {
    if (!first) out << ",";
    first = false;
    out << "{\"name\":\"" << json_escape(name)
        << "\",\"ph\":\"X\",\"pid\":1,\"tid\":" << tid << ",\"ts\":"
        << std::fixed << std::setprecision(3) << ts_us << ",\"dur\":"
        << dur_us << ",\"args\":{" << args << "}}";
  };

  double ts = 0.0;
  if (compile != nullptr) {
    for (const auto& ps : compile->passes) {
      const double dur =
          static_cast<double>(ps.wall_ns) / 1e3;  // ns -> us
      emit("opt:" + ps.name, 2, ts, dur,
           "\"applications\":" + std::to_string(ps.applications) +
               ",\"instrs_removed\":" + std::to_string(ps.instrs_removed));
      ts += dur;
    }
    ts = 0.0;  // execution gets its own timeline origin
  }

  // Synthetic execution timeline: each executed instruction gets its pc's
  // average wall time as its duration, so the layout is faithful in the
  // aggregate even when a single sample is below clock resolution.
  for (const auto& te : r.trace) {
    const std::size_t pc = static_cast<std::size_t>(te.instr);
    double dur = 0.001;  // floor: keep zero-cost events visible (1ns)
    if (pc < r.profile.size() && r.profile[pc].count > 0) {
      const double avg_ns = static_cast<double>(r.profile[pc].wall_ns) /
                            static_cast<double>(r.profile[pc].count);
      if (avg_ns / 1e3 > dur) dur = avg_ns / 1e3;
    }
    std::string args = "\"pc\":" + std::to_string(pc) +
                       ",\"work\":" + std::to_string(te.work) +
                       ",\"max_len\":" + std::to_string(te.max_len);
    if (pc < p.code.size()) {
      const DebugSite& site = p.debug.site(p.code[pc].dbg);
      if (site.has_loc()) {
        args += ",\"line\":" + std::to_string(site.line) +
                ",\"col\":" + std::to_string(site.col);
      }
      emit(event_name(p, pc), 1, ts, dur, args);
    } else {
      emit(bvram::op_name(te.op), 1, ts, dur, args);
    }
    ts += dur;
  }
  out << "],\"otherData\":{\"total_work\":" << r.cost.work
      << ",\"total_time_T\":" << r.cost.time << ",\"engine_wall_ns\":"
      << r.engine.wall_ns << "}}";
}

// -- serve-path span tracing ---------------------------------------------

SpanLog::SpanLog(std::size_t capacity)
    : origin_ns_(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now().time_since_epoch())
              .count())),
      capacity_(capacity) {}

std::uint64_t SpanLog::now_ns() const {
  return static_cast<std::uint64_t>(
             std::chrono::duration_cast<std::chrono::nanoseconds>(
                 std::chrono::steady_clock::now().time_since_epoch())
                 .count()) -
         origin_ns_;
}

void SpanLog::record(ServeSpan s) {
  std::lock_guard<std::mutex> lock(mu_);
  if (spans_.size() >= capacity_) {
    ++dropped_;
    return;
  }
  ++recorded_;
  spans_.push_back(std::move(s));
}

std::vector<ServeSpan> SpanLog::drain() {
  std::vector<ServeSpan> out;
  std::lock_guard<std::mutex> lock(mu_);
  out.swap(spans_);
  return out;
}

SpanLogStats SpanLog::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  SpanLogStats s;
  s.recorded = recorded_;
  s.dropped = dropped_;
  s.queued = spans_.size();
  s.capacity = capacity_;
  return s;
}

void write_serve_trace(std::ostream& out, const std::vector<ServeSpan>& spans,
                       std::size_t workers, const Provenance* prov) {
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  const auto comma = [&] {
    if (!first) out << ",";
    first = false;
  };

  // Thread rows: tid 0 is the queue (submitted-but-unclaimed requests as
  // async events), tid 1..workers are the service workers, and compile /
  // cache spans from caller threads keep tid 0 too (they run before any
  // request is in flight on that program).
  const auto thread_name = [&](std::size_t tid, const std::string& name) {
    comma();
    out << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" << tid
        << ",\"args\":{\"name\":\"" << json_escape(name) << "\"}}";
  };
  thread_name(0, "queue");
  for (std::size_t w = 1; w <= workers; ++w) {
    thread_name(w, "worker " + std::to_string(w));
  }

  // Index: batch id -> the earliest worker-side span of that machine run,
  // the landing point for every member request's flow arrow.
  struct Landing {
    std::uint64_t t0_ns = 0;
    std::size_t worker = 0;
    bool set = false;
  };
  std::unordered_map<std::uint64_t, Landing> landing;
  for (const ServeSpan& s : spans) {
    if (s.batch_id == 0 || s.phase == "queue-wait") continue;
    Landing& l = landing[s.batch_id];
    if (!l.set || s.t0_ns < l.t0_ns) {
      l.t0_ns = s.t0_ns;
      l.worker = s.worker;
      l.set = true;
    }
  }

  const auto span_args = [&](const ServeSpan& s) {
    std::string args;
    if (s.request_id != 0) {
      args += "\"request\":" + std::to_string(s.request_id);
    }
    if (s.batch_id != 0) {
      if (!args.empty()) args += ",";
      args += "\"run\":" + std::to_string(s.batch_id);
    }
    if (s.size != 0) {
      if (!args.empty()) args += ",";
      args += "\"size\":" + std::to_string(s.size);
    }
    if (!s.note.empty()) {
      if (!args.empty()) args += ",";
      args += "\"note\":\"" + json_escape(s.note) + "\"";
    }
    return args;
  };

  out << std::fixed << std::setprecision(3);
  for (const ServeSpan& s : spans) {
    const double t0_us = static_cast<double>(s.t0_ns) / 1e3;
    const double dur_us = static_cast<double>(s.dur_ns) / 1e3;
    if (s.phase == "queue-wait") {
      // Queued requests overlap arbitrarily, so they live on the queue
      // row as async begin/end pairs (ids keep concurrent waits apart).
      comma();
      out << "{\"name\":\"queue-wait\",\"cat\":\"queue\",\"ph\":\"b\","
             "\"id\":" << s.request_id
          << ",\"pid\":1,\"tid\":0,\"ts\":" << t0_us << ",\"args\":{"
          << span_args(s) << "}}";
      comma();
      out << "{\"name\":\"queue-wait\",\"cat\":\"queue\",\"ph\":\"e\","
             "\"id\":" << s.request_id
          << ",\"pid\":1,\"tid\":0,\"ts\":" << t0_us + dur_us << "}";
      // Flow arrow: this request's wait flows into the machine run
      // (batch or solo) that answered it.
      const auto l = landing.find(s.batch_id);
      if (s.batch_id != 0 && l != landing.end() && l->second.set) {
        comma();
        out << "{\"name\":\"batch\",\"cat\":\"flow\",\"ph\":\"s\",\"id\":"
            << s.request_id << ",\"pid\":1,\"tid\":0,\"ts\":"
            << t0_us + dur_us << "}";
        comma();
        out << "{\"name\":\"batch\",\"cat\":\"flow\",\"ph\":\"f\","
               "\"bp\":\"e\",\"id\":" << s.request_id
            << ",\"pid\":1,\"tid\":" << l->second.worker << ",\"ts\":"
            << static_cast<double>(l->second.t0_ns) / 1e3 << "}";
      }
      continue;
    }
    comma();
    out << "{\"name\":\"" << json_escape(s.phase)
        << "\",\"cat\":\"serve\",\"ph\":\"X\",\"pid\":1,\"tid\":" << s.worker
        << ",\"ts\":" << t0_us << ",\"dur\":" << dur_us << ",\"args\":{"
        << span_args(s) << "}}";
  }
  out << "],\"otherData\":{\"spans\":" << spans.size();
  if (prov != nullptr) out << ",\"provenance\":" << prov->to_json();
  out << "}}";
}

}  // namespace nsc::obs
