// Shared emitter for the committed BENCH_*.json reports.
//
// Every bench harness (bench_machine, bench_compile, bench_serve) writes
// the same envelope -- a schema tag plus the host/build provenance object
// (obs/provenance.hpp) -- around a harness-specific body.  BenchReport
// dedupes that boilerplate: it opens the file, emits the envelope header,
// hands the harness a FILE* for the body (the harnesses are fprintf-
// style), and closes the envelope and the file in the destructor.
//
//   obs::BenchReport report(path, "bvram-bench-serve/v1");
//   if (!report.ok()) { ... }                       // could not open
//   std::fprintf(report.out(), "  \"entries\": [...]");
//   report.close();                                 // or let ~BenchReport
//
// The emitted document is always
//
//   {
//     "schema": "<schema>",
//     "provenance": {...},
//     <body written by the harness>
//   }
//
// so the body must start with a key (the header ends with a comma).
#pragma once

#include <cstdio>
#include <string>

namespace nsc::obs {

class BenchReport {
 public:
  /// Opens `path` and writes the envelope header (schema + provenance).
  /// On failure ok() is false, a one-line error went to stderr, and every
  /// other member is a no-op.
  BenchReport(const std::string& path, const std::string& schema);
  ~BenchReport();
  BenchReport(const BenchReport&) = delete;
  BenchReport& operator=(const BenchReport&) = delete;

  bool ok() const { return f_ != nullptr; }
  /// The body stream; nullptr when !ok().
  std::FILE* out() { return f_; }

  /// Close the envelope ("}") and the file; prints "wrote <path>".
  /// Idempotent; the destructor calls it.
  void close();

  /// Escape a string for embedding inside a JSON string literal
  /// (backslash, quote; newlines become \n; other control bytes are
  /// dropped).
  static std::string escape(const std::string& s);

 private:
  std::FILE* f_ = nullptr;
  std::string path_;
};

}  // namespace nsc::obs
