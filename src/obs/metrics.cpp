#include "obs/metrics.hpp"

#include <bit>
#include <limits>
#include <ostream>
#include <sstream>

#include "support/checked.hpp"
#include "support/error.hpp"

namespace nsc::obs {

// -- Histogram -----------------------------------------------------------

std::size_t Histogram::bucket_of(std::uint64_t v) {
  return v == 0 ? 0 : static_cast<std::size_t>(std::bit_width(v));
}

void Histogram::observe(std::uint64_t v) {
  buckets_[bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
  // Saturating sum: a sum that wrapped would make mean() garbage forever.
  std::uint64_t cur = sum_.load(std::memory_order_relaxed);
  std::uint64_t next;
  do {
    next = sat_add(cur, v);
  } while (next != cur &&
           !sum_.compare_exchange_weak(cur, next, std::memory_order_relaxed));
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot s;
  for (std::size_t b = 0; b < HistogramSnapshot::kBuckets; ++b) {
    s.buckets[b] = buckets_[b].load(std::memory_order_relaxed);
    s.count += s.buckets[b];
  }
  s.sum = sum_.load(std::memory_order_relaxed);
  return s;
}

std::uint64_t HistogramSnapshot::bucket_upper(std::size_t b) {
  if (b == 0) return 0;
  if (b >= 64) return std::numeric_limits<std::uint64_t>::max();
  return (std::uint64_t{1} << b) - 1;
}

std::uint64_t HistogramSnapshot::quantile(double q) const {
  if (count == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Nearest rank: the smallest r in [1, count] with r >= q * count.
  std::uint64_t rank = static_cast<std::uint64_t>(
      q * static_cast<double>(count) + 0.999999999999);
  if (rank == 0) rank = 1;
  if (rank > count) rank = count;
  std::uint64_t cum = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    if (buckets[b] == 0) continue;
    if (cum + buckets[b] < rank) {
      cum += buckets[b];
      continue;
    }
    // The rank-th sample lies in bucket b: interpolate linearly between
    // the bucket's lower and upper edge by the rank's position inside it.
    const std::uint64_t lower = b == 0 ? 0 : (std::uint64_t{1} << (b - 1));
    const std::uint64_t upper = bucket_upper(b);
    const double frac = buckets[b] <= 1
                            ? 1.0
                            : static_cast<double>(rank - cum - 1) /
                                  static_cast<double>(buckets[b] - 1);
    return lower + static_cast<std::uint64_t>(
                       static_cast<double>(upper - lower) * frac);
  }
  return bucket_upper(kBuckets - 1);  // unreachable when counts add up
}

// -- Registry ------------------------------------------------------------

Registry::Entry& Registry::find_or_add(const std::string& name,
                                       const std::string& help, Kind kind) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& e : entries_) {
    if (e->name == name) {
      if (e->kind != kind) {
        throw Error("metrics: '" + name + "' re-registered as a different "
                    "metric kind");
      }
      return *e;
    }
  }
  auto e = std::make_unique<Entry>();
  e->name = name;
  e->help = help;
  e->kind = kind;
  switch (kind) {
    case Kind::Counter: e->counter = std::make_unique<Counter>(); break;
    case Kind::Gauge: e->gauge = std::make_unique<Gauge>(); break;
    case Kind::Histogram: e->histogram = std::make_unique<Histogram>(); break;
  }
  entries_.push_back(std::move(e));
  return *entries_.back();
}

Counter& Registry::counter(const std::string& name, const std::string& help) {
  return *find_or_add(name, help, Kind::Counter).counter;
}

Gauge& Registry::gauge(const std::string& name, const std::string& help) {
  return *find_or_add(name, help, Kind::Gauge).gauge;
}

Histogram& Registry::histogram(const std::string& name,
                               const std::string& help) {
  return *find_or_add(name, help, Kind::Histogram).histogram;
}

std::string Registry::escape_help(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

std::string Registry::escape_label(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '"') {
      out += "\\\"";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

namespace {

void write_info_metric(std::ostream& out, const Provenance& prov) {
  out << "# HELP nscc_build_info Build and host provenance of this "
         "process (value is always 1).\n";
  out << "# TYPE nscc_build_info gauge\n";
  out << "nscc_build_info{compiler=\"" << Registry::escape_label(prov.compiler)
      << "\",git_sha=\"" << Registry::escape_label(prov.git_sha)
      << "\",host_cores=\"" << prov.host_cores << "\",workers=\""
      << prov.workers << "\",workers_env=\""
      << Registry::escape_label(prov.workers_env) << "\"} 1\n";
}

}  // namespace

void Registry::write_prometheus(std::ostream& out,
                                const Provenance* prov) const {
  if (prov != nullptr) write_info_metric(out, *prov);
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& e : entries_) {
    out << "# HELP " << e->name << " " << escape_help(e->help) << "\n";
    switch (e->kind) {
      case Kind::Counter:
        out << "# TYPE " << e->name << " counter\n";
        out << e->name << " " << e->counter->value() << "\n";
        break;
      case Kind::Gauge:
        out << "# TYPE " << e->name << " gauge\n";
        out << e->name << " " << e->gauge->value() << "\n";
        break;
      case Kind::Histogram: {
        out << "# TYPE " << e->name << " histogram\n";
        const HistogramSnapshot s = e->histogram->snapshot();
        std::uint64_t cum = 0;
        for (std::size_t b = 0; b < HistogramSnapshot::kBuckets; ++b) {
          if (s.buckets[b] == 0) continue;  // sparse: skip empty buckets
          cum += s.buckets[b];
          out << e->name << "_bucket{le=\""
              << HistogramSnapshot::bucket_upper(b) << "\"} " << cum << "\n";
        }
        out << e->name << "_bucket{le=\"+Inf\"} " << s.count << "\n";
        out << e->name << "_sum " << s.sum << "\n";
        out << e->name << "_count " << s.count << "\n";
        break;
      }
    }
  }
}

void Registry::write_json(std::ostream& out, const Provenance* prov) const {
  out << "{\n  \"schema\": \"nscc-metrics/v1\"";
  if (prov != nullptr) {
    out << ",\n  \"provenance\": " << prov->to_json();
  }
  out << ",\n  \"metrics\": {";
  std::lock_guard<std::mutex> lock(mu_);
  bool first = true;
  for (const auto& e : entries_) {
    if (!first) out << ",";
    first = false;
    out << "\n    \"" << e->name << "\": ";
    switch (e->kind) {
      case Kind::Counter:
        out << "{\"type\": \"counter\", \"value\": " << e->counter->value()
            << "}";
        break;
      case Kind::Gauge:
        out << "{\"type\": \"gauge\", \"value\": " << e->gauge->value() << "}";
        break;
      case Kind::Histogram: {
        const HistogramSnapshot s = e->histogram->snapshot();
        out << "{\"type\": \"histogram\", \"count\": " << s.count
            << ", \"sum\": " << s.sum << ", \"mean\": " << s.mean()
            << ", \"p50\": " << s.quantile(0.50)
            << ", \"p95\": " << s.quantile(0.95)
            << ", \"p99\": " << s.quantile(0.99) << ", \"buckets\": [";
        bool fb = true;
        for (std::size_t b = 0; b < HistogramSnapshot::kBuckets; ++b) {
          if (s.buckets[b] == 0) continue;
          if (!fb) out << ", ";
          fb = false;
          out << "[" << HistogramSnapshot::bucket_upper(b) << ", "
              << s.buckets[b] << "]";
        }
        out << "]}";
        break;
      }
    }
  }
  out << "\n  }\n}\n";
}

}  // namespace nsc::obs
