// Serve-path metrics: a registry of counters, gauges, and fixed-bucket
// log2-scale latency histograms, with a Prometheus text-exposition writer
// and a JSON snapshot writer.
//
// The design center is the hot path of src/serve/service.cpp: a worker
// finishing a request must be able to record its outcome and latency
// without taking a lock or allocating.  So every metric is a fixed block
// of relaxed atomics -- Counter::inc is one fetch_add, Histogram::observe
// is two fetch_adds plus a bit_width -- and the Registry's mutex guards
// only registration and enumeration (cold paths: construction and
// export).  References returned by counter()/gauge()/histogram() stay
// valid for the Registry's lifetime; metrics are never unregistered.
//
// Histogram buckets are powers of two: bucket 0 holds the value 0,
// bucket b (1..64) holds [2^(b-1), 2^b).  Quantiles come from
// nearest-rank over the bucket counts with linear interpolation inside
// the landing bucket, so a reported quantile is always within its
// bucket's bounds -- at most a 2x relative error, in exchange for an
// O(1) lock-free observe and an O(65) export (the lock-held
// copy-and-sort of a 64Ki latency ring this replaced was O(n log n)
// per snapshot *and* stalled the request path while it ran).
//
// Naming follows the Prometheus convention the exposition writer
// expects: snake_case metric names, a `_total` suffix on monotonic
// counters, base units in the name (`_ns`, `_bytes`).  See
// docs/observability.md ("Serving telemetry") for the full scheme.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/provenance.hpp"

namespace nsc::obs {

/// Monotonic counter.  Relaxed atomics: cross-thread increments are never
/// lost, but a reader may see counter A's update before counter B's even
/// if some thread wrote B first -- snapshots are eventually-exact, not
/// cut-point-consistent (fine for telemetry, documented in the docs).
class Counter {
 public:
  void inc(std::uint64_t d = 1) { v_.fetch_add(d, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-write-wins instantaneous value (queue depth, cache size, ...).
class Gauge {
 public:
  void set(std::uint64_t v) { v_.store(v, std::memory_order_relaxed); }
  void add(std::uint64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
  void sub(std::uint64_t d) { v_.fetch_sub(d, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// A coherent copy of one histogram, taken bucket by bucket (relaxed, so
/// concurrent observes may straddle the copy; counts never go backwards).
struct HistogramSnapshot {
  static constexpr std::size_t kBuckets = 65;
  std::array<std::uint64_t, kBuckets> buckets{};  ///< per-bucket counts
  std::uint64_t count = 0;  ///< sum of buckets
  std::uint64_t sum = 0;    ///< sum of observed values (saturating)

  /// Inclusive upper edge of bucket b: 0 for b = 0, 2^b - 1 for b >= 1
  /// (UINT64_MAX for the last).
  static std::uint64_t bucket_upper(std::size_t b);

  /// Nearest-rank quantile (q in [0, 1]) with linear interpolation inside
  /// the landing bucket.  Exact for q over bucket boundaries; otherwise
  /// within the bucket's [lower, upper] bounds (<= 2x relative error).
  std::uint64_t quantile(double q) const;
  std::uint64_t mean() const { return count == 0 ? 0 : sum / count; }
};

/// Fixed-bucket log2 histogram of uint64 samples (latencies in ns, batch
/// sizes, ...).  observe() is lock-free: one bit_width, two relaxed
/// fetch_adds.
class Histogram {
 public:
  void observe(std::uint64_t v);
  /// Bucket index for a value: 0 for 0, else std::bit_width(v) (1..64).
  static std::size_t bucket_of(std::uint64_t v);
  HistogramSnapshot snapshot() const;

 private:
  std::array<std::atomic<std::uint64_t>, HistogramSnapshot::kBuckets>
      buckets_{};
  std::atomic<std::uint64_t> sum_{0};
};

/// A registry of named metrics.  Registration (counter/gauge/histogram)
/// and export (write_prometheus/write_json) take the registry mutex;
/// updates through the returned references are lock-free.  Registering a
/// name twice returns the existing metric (the kinds must match; a
/// mismatch throws).  Output order is registration order, so exports are
/// deterministic for a fixed registration sequence.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter& counter(const std::string& name, const std::string& help);
  Gauge& gauge(const std::string& name, const std::string& help);
  Histogram& histogram(const std::string& name, const std::string& help);

  /// Prometheus text exposition format (version 0.0.4): # HELP / # TYPE
  /// per metric, cumulative `_bucket{le="..."}` series plus `_sum` and
  /// `_count` for histograms.  When `prov` is non-null, an info-style
  /// `nscc_build_info{...} 1` gauge carrying the provenance as labels is
  /// emitted first, so scraped telemetry is self-describing like the
  /// committed BENCH_*.json files.
  void write_prometheus(std::ostream& out,
                        const Provenance* prov = nullptr) const;

  /// One JSON object (schema nscc-metrics/v1): {"schema", "provenance"?,
  /// "metrics": {name: {...}}}.  Histograms carry count/sum/mean,
  /// p50/p95/p99, and the non-empty buckets as [upper_edge, count] pairs.
  /// Deterministic: two exports with no updates in between are
  /// byte-identical (no timestamps, no pointers, fixed order).
  void write_json(std::ostream& out, const Provenance* prov = nullptr) const;

  /// Escape a HELP text for the exposition format (backslash, newline).
  static std::string escape_help(const std::string& s);
  /// Escape a label value (backslash, double-quote, newline).
  static std::string escape_label(const std::string& s);

 private:
  enum class Kind { Counter, Gauge, Histogram };
  struct Entry {
    std::string name;
    std::string help;
    Kind kind;
    // Exactly one of these is non-null, matching `kind`.  unique_ptr so
    // the atomics never move when entries_ grows.
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry& find_or_add(const std::string& name, const std::string& help,
                     Kind kind);

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Entry>> entries_;  ///< registration order
};

}  // namespace nsc::obs
