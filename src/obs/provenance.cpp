#include "obs/provenance.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <thread>

#include "support/parallel.hpp"

namespace nsc::obs {

namespace {

std::string compiler_id() {
#if defined(__clang__)
  return std::string("clang ") + std::to_string(__clang_major__) + "." +
         std::to_string(__clang_minor__) + "." +
         std::to_string(__clang_patchlevel__);
#elif defined(__GNUC__)
  return std::string("gcc ") + std::to_string(__GNUC__) + "." +
         std::to_string(__GNUC_MINOR__) + "." +
         std::to_string(__GNUC_PATCHLEVEL__);
#else
  return "unknown";
#endif
}

/// Ask git for the short head sha, for bench runs outside CI (where the
/// env vars below are unset).  Returns "" on any failure -- no repo, no
/// git binary, sandboxed popen -- so the caller can keep its fallback.
std::string git_head_sha() {
#if defined(_WIN32)
  return "";
#else
  FILE* pipe = popen("git rev-parse --short HEAD 2>/dev/null", "r");
  if (pipe == nullptr) return "";
  char buf[64];
  std::string out;
  while (std::fgets(buf, sizeof(buf), pipe) != nullptr) out += buf;
  const int rc = pclose(pipe);
  if (rc != 0) return "";
  while (!out.empty() && (out.back() == '\n' || out.back() == '\r')) {
    out.pop_back();
  }
  for (char c : out) {
    if (!std::isxdigit(static_cast<unsigned char>(c))) return "";
  }
  return out;
#endif
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) >= 0x20) {
      out += c;
    }
  }
  return out;
}

}  // namespace

Provenance Provenance::collect() {
  Provenance p;
  p.host_cores = static_cast<std::size_t>(std::thread::hardware_concurrency());
  p.workers = parallel_workers();
  const char* env = std::getenv("NSCC_WORKERS");
  p.workers_env = env != nullptr ? env : "";
  p.compiler = compiler_id();
  const char* sha = std::getenv("NSCC_GIT_SHA");
  if (sha == nullptr || *sha == '\0') sha = std::getenv("GITHUB_SHA");
  if (sha != nullptr && *sha != '\0') {
    p.git_sha = sha;
  } else {
    // Outside CI, ask the working tree itself (committed BENCH_*.json
    // files should never say "unknown" when produced from a checkout).
    const std::string head = git_head_sha();
    p.git_sha = !head.empty() ? head : "unknown";
  }
  return p;
}

std::string Provenance::to_json() const {
  std::ostringstream out;
  out << "{\"host_cores\":" << host_cores << ",\"workers\":" << workers
      << ",\"workers_env\":\"" << json_escape(workers_env)
      << "\",\"compiler\":\"" << json_escape(compiler) << "\",\"git_sha\":\""
      << json_escape(git_sha) << "\"}";
  return out.str();
}

}  // namespace nsc::obs
