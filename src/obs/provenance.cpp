#include "obs/provenance.hpp"

#include <cstdlib>
#include <sstream>
#include <thread>

#include "support/parallel.hpp"

namespace nsc::obs {

namespace {

std::string compiler_id() {
#if defined(__clang__)
  return std::string("clang ") + std::to_string(__clang_major__) + "." +
         std::to_string(__clang_minor__) + "." +
         std::to_string(__clang_patchlevel__);
#elif defined(__GNUC__)
  return std::string("gcc ") + std::to_string(__GNUC__) + "." +
         std::to_string(__GNUC_MINOR__) + "." +
         std::to_string(__GNUC_PATCHLEVEL__);
#else
  return "unknown";
#endif
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) >= 0x20) {
      out += c;
    }
  }
  return out;
}

}  // namespace

Provenance Provenance::collect() {
  Provenance p;
  p.host_cores = static_cast<std::size_t>(std::thread::hardware_concurrency());
  p.workers = parallel_workers();
  const char* env = std::getenv("NSCC_WORKERS");
  p.workers_env = env != nullptr ? env : "";
  p.compiler = compiler_id();
  const char* sha = std::getenv("NSCC_GIT_SHA");
  if (sha == nullptr || *sha == '\0') sha = std::getenv("GITHUB_SHA");
  p.git_sha = sha != nullptr && *sha != '\0' ? sha : "unknown";
  return p;
}

std::string Provenance::to_json() const {
  std::ostringstream out;
  out << "{\"host_cores\":" << host_cores << ",\"workers\":" << workers
      << ",\"workers_env\":\"" << json_escape(workers_env)
      << "\",\"compiler\":\"" << json_escape(compiler) << "\",\"git_sha\":\""
      << json_escape(git_sha) << "\"}";
  return out.str();
}

}  // namespace nsc::obs
