// Structured event log for the serve path: a bounded in-memory queue of
// discrete happenings (a trap, a replay cascade, a cache eviction, a slow
// request) that a consumer drains to a JSONL stream.
//
// Two invariants shape the design:
//
//   * The producer never blocks and never allocates unboundedly.  The
//     queue holds at most `capacity` events; an emit into a full queue
//     DROPS the new event and counts the drop (visible as
//     `dropped_total`), so a saturated service degrades its telemetry,
//     never its request path.  Event construction does allocate (names
//     and field strings) -- events are for *exceptional* happenings at
//     request rate, not per-instruction rate; the per-request steady
//     state is covered by the lock-free metrics registry instead.
//
//   * The log is self-describing.  The first line of a drained JSONL
//     stream is a header object carrying the schema tag, the host/build
//     provenance (obs/provenance.hpp), and the log's capacity; every
//     subsequent line is one event with both a monotonic timestamp
//     (nanoseconds since the log's construction -- subtraction-safe) and
//     a wall-clock timestamp (microseconds since the Unix epoch -- joins
//     against external logs).
//
// Thread safety: emit/drain/counters may be called from any thread; one
// mutex guards the deque (held for a push or a splice, never for IO).
#pragma once

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/provenance.hpp"

namespace nsc::obs {

enum class Severity { Debug, Info, Warn, Error };

const char* severity_name(Severity s);

/// One structured event.  Build with the fluent helpers:
///
///   Event("serve.trap", Severity::Warn)
///       .num("request", id).str("error", what)
///
/// Field order is preserved into the JSONL output.
struct Event {
  Event() = default;
  Event(std::string name_, Severity sev_) : name(std::move(name_)), sev(sev_) {}

  Event&& num(const std::string& key, std::uint64_t value) &&;
  Event&& str(const std::string& key, const std::string& value) &&;

  struct Field {
    std::string key;
    std::string value;  ///< pre-rendered; printed raw or escaped+quoted
    bool raw = false;   ///< true for numbers (printed unquoted)
  };

  std::string name;               ///< dotted event type, e.g. "serve.trap"
  Severity sev = Severity::Info;
  std::uint64_t mono_ns = 0;      ///< stamped by EventLog::emit
  std::uint64_t wall_us = 0;      ///< stamped by EventLog::emit
  std::vector<Field> fields;      ///< emission order preserved
};

struct EventLogStats {
  std::uint64_t emitted = 0;  ///< accepted into the queue
  std::uint64_t dropped = 0;  ///< rejected because the queue was full
  std::size_t queued = 0;     ///< currently waiting for a drain
  std::size_t capacity = 0;
};

/// The bounded queue.  Construction pins the monotonic origin; capacity 0
/// means "drop everything" (a cheap way to disable a wired-up log).
class EventLog {
 public:
  explicit EventLog(std::size_t capacity = 4096);
  EventLog(const EventLog&) = delete;
  EventLog& operator=(const EventLog&) = delete;

  /// Stamp timestamps and enqueue; drops (and counts) when full.
  void emit(Event e);

  /// Remove and return every queued event, in emission order.
  std::vector<Event> drain();

  EventLogStats stats() const;

  /// The JSONL header line (schema nscc-serve-events/v1 + provenance +
  /// capacity + the current drop count), newline-terminated.
  void write_header(std::ostream& out) const;

  /// One event as a single JSONL line, newline-terminated.
  static void write_event(std::ostream& out, const Event& e);

  /// JSON string escaping shared by the event and span writers
  /// (backslash, quote, \n, \t, control bytes as \u00xx).
  static std::string json_escape(const std::string& s);

 private:
  const std::size_t capacity_;
  const std::uint64_t mono_origin_ns_;  ///< steady_clock at construction
  mutable std::mutex mu_;
  std::deque<Event> queue_;
  std::uint64_t emitted_ = 0;
  std::uint64_t dropped_ = 0;
  Provenance prov_;
};

}  // namespace nsc::obs
