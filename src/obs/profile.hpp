// Report layer over the execution engine's profiler (bvram::RunConfig::
// profile): aggregates the per-instruction samples in bvram::RunResult
// into the views the `nscc profile` subcommand renders --
//
//   by_opcode   flat profile per BVRAM opcode
//   by_line     per surface source line, through the Program's debug
//               table (instruction -> NSA combinator -> front::SrcLoc)
//   by_loop     natural back-edge loops (a backwards Goto/GotoIfEmpty),
//               with trip counts and the cost of the loop body range
//
// plus a Chrome trace_event exporter (chrome://tracing / Perfetto): the
// recorded instruction trace becomes one complete event per executed
// instruction, laid out on a synthetic timeline built from the per-pc
// average wall time, so the relative widths are faithful even though
// individual samples are too short for the clock.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "bvram/machine.hpp"
#include "opt/opt.hpp"

namespace nsc::obs {

struct ProfileRow {
  std::string key;  ///< opcode name, or "line:col", or a site label
  std::uint64_t count = 0;    ///< instructions executed
  std::uint64_t wall_ns = 0;  ///< total wall time
  std::uint64_t work = 0;     ///< paper W charged
  std::uint64_t bytes = 0;    ///< cost-model traffic (8 bytes per W unit)
  std::uint64_t chunks = 0;   ///< pool chunks dispatched
};

struct LoopRow {
  std::size_t head = 0;  ///< loop entry pc (the back edge's target)
  std::size_t back = 0;  ///< pc of the backwards jump
  std::string site;      ///< debug site of the back edge
  std::uint64_t trips = 0;    ///< times the back-edge instruction ran
  std::uint64_t wall_ns = 0;  ///< total time spent in [head, back]
  std::uint64_t work = 0;     ///< total W charged in [head, back]
};

struct Profile {
  std::uint64_t total_count = 0;
  std::uint64_t total_wall_ns = 0;
  std::uint64_t total_work = 0;
  std::uint64_t total_bytes = 0;
  /// Fraction of *executed* instructions carrying surface attribution
  /// (count-weighted, the CI gate's number).
  double attributed_frac = 0.0;
  std::vector<ProfileRow> by_opcode;  ///< sorted hottest-first
  std::vector<ProfileRow> by_line;    ///< sorted hottest-first
  std::vector<LoopRow> by_loop;       ///< sorted hottest-first
  bvram::EngineProfile engine;

  /// Aggregate a profiled run (requires cfg.profile; result.profile must
  /// be sized to p.code).  Rows are sorted by wall time, work breaking
  /// ties (so the ordering is deterministic when wall times are zero).
  static Profile build(const bvram::Program& p, const bvram::RunResult& r);

  std::string render_by_opcode() const;
  std::string render_by_line() const;
  std::string render_loops() const;
  std::string render_engine() const;
};

/// Emit Chrome trace_event JSON for a profiled run.  Requires both
/// cfg.profile and cfg.record_trace.  When `compile` is non-null, the
/// optimizer's per-pass timings are emitted as a second thread of events
/// ahead of the execution timeline.
void write_chrome_trace(std::ostream& out, const bvram::Program& p,
                        const bvram::RunResult& r,
                        const opt::PipelineStats* compile = nullptr);

}  // namespace nsc::obs
