// Report layer over the execution engine's profiler (bvram::RunConfig::
// profile): aggregates the per-instruction samples in bvram::RunResult
// into the views the `nscc profile` subcommand renders --
//
//   by_opcode   flat profile per BVRAM opcode
//   by_line     per surface source line, through the Program's debug
//               table (instruction -> NSA combinator -> front::SrcLoc)
//   by_loop     natural back-edge loops (a backwards Goto/GotoIfEmpty),
//               with trip counts and the cost of the loop body range
//
// plus a Chrome trace_event exporter (chrome://tracing / Perfetto): the
// recorded instruction trace becomes one complete event per executed
// instruction, laid out on a synthetic timeline built from the per-pc
// average wall time, so the relative widths are faithful even though
// individual samples are too short for the clock.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <vector>

#include "bvram/machine.hpp"
#include "opt/opt.hpp"

namespace nsc::obs {

struct Provenance;  // obs/provenance.hpp

struct ProfileRow {
  std::string key;  ///< opcode name, or "line:col", or a site label
  std::uint64_t count = 0;    ///< instructions executed
  std::uint64_t wall_ns = 0;  ///< total wall time
  std::uint64_t work = 0;     ///< paper W charged
  std::uint64_t bytes = 0;    ///< cost-model traffic (8 bytes per W unit)
  std::uint64_t chunks = 0;   ///< pool chunks dispatched
};

struct LoopRow {
  std::size_t head = 0;  ///< loop entry pc (the back edge's target)
  std::size_t back = 0;  ///< pc of the backwards jump
  std::string site;      ///< debug site of the back edge
  std::uint64_t trips = 0;    ///< times the back-edge instruction ran
  std::uint64_t wall_ns = 0;  ///< total time spent in [head, back]
  std::uint64_t work = 0;     ///< total W charged in [head, back]
};

struct Profile {
  std::uint64_t total_count = 0;
  std::uint64_t total_wall_ns = 0;
  std::uint64_t total_work = 0;
  std::uint64_t total_bytes = 0;
  /// Fraction of *executed* instructions carrying surface attribution
  /// (count-weighted, the CI gate's number).
  double attributed_frac = 0.0;
  std::vector<ProfileRow> by_opcode;  ///< sorted hottest-first
  std::vector<ProfileRow> by_line;    ///< sorted hottest-first
  std::vector<LoopRow> by_loop;       ///< sorted hottest-first
  bvram::EngineProfile engine;

  /// Aggregate a profiled run (requires cfg.profile; result.profile must
  /// be sized to p.code).  Rows are sorted by wall time, work breaking
  /// ties (so the ordering is deterministic when wall times are zero).
  static Profile build(const bvram::Program& p, const bvram::RunResult& r);

  std::string render_by_opcode() const;
  std::string render_by_line() const;
  std::string render_loops() const;
  std::string render_engine() const;
};

/// Emit Chrome trace_event JSON for a profiled run.  Requires both
/// cfg.profile and cfg.record_trace.  When `compile` is non-null, the
/// optimizer's per-pass timings are emitted as a second thread of events
/// ahead of the execution timeline.
void write_chrome_trace(std::ostream& out, const bvram::Program& p,
                        const bvram::RunResult& r,
                        const opt::PipelineStats* compile = nullptr);

// -- serve-path span tracing ---------------------------------------------
//
// The request-path counterpart of the per-instruction profiler: the
// Service records one ServeSpan per request phase (queue-wait, compile,
// batch-assembly, execute, replay, split) into a SpanLog, and
// write_serve_trace lays them out as a Chrome trace_event timeline --
// each service worker is a trace thread, queued requests live on a
// "queue" thread as async events, and flow arrows connect every request's
// queue-wait to the machine run (batch or solo) that answered it.

struct ServeSpan {
  /// Phase names are stable strings (they become trace event names):
  /// "queue-wait", "compile", "cache-hit", "batch-assembly", "execute",
  /// "replay", "split".
  std::string phase;
  std::uint64_t request_id = 0;  ///< 0 for batch-level / service-level spans
  std::uint64_t batch_id = 0;    ///< machine-run id; 0 = none (e.g. compile)
  std::size_t worker = 0;        ///< 0 = caller thread, 1.. = worker threads
  std::uint64_t t0_ns = 0;       ///< monotonic, since the SpanLog's origin
  std::uint64_t dur_ns = 0;
  std::uint64_t size = 0;        ///< payload: batch size, queue depth, ...
  std::string note;              ///< outcome or diagnostic ("" = none)
};

struct SpanLogStats {
  std::uint64_t recorded = 0;
  std::uint64_t dropped = 0;  ///< record() calls refused at capacity
  std::size_t queued = 0;
  std::size_t capacity = 0;
};

/// Bounded, thread-safe span sink (same degradation contract as the
/// event log: a full log drops new spans and counts the drops, it never
/// blocks the request path).  now_ns() gives producers a shared
/// monotonic origin so spans from different threads align.
class SpanLog {
 public:
  explicit SpanLog(std::size_t capacity = std::size_t{1} << 16);
  SpanLog(const SpanLog&) = delete;
  SpanLog& operator=(const SpanLog&) = delete;

  std::uint64_t now_ns() const;  ///< nanoseconds since construction
  void record(ServeSpan s);
  std::vector<ServeSpan> drain();
  SpanLogStats stats() const;

 private:
  const std::uint64_t origin_ns_;
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::vector<ServeSpan> spans_;
  std::uint64_t recorded_ = 0;
  std::uint64_t dropped_ = 0;
};

/// Chrome trace_event JSON for a set of serve spans.  `workers` names the
/// worker-thread rows up front (metadata events); spans index into them
/// via ServeSpan::worker.  When `prov` is non-null the provenance is
/// embedded in otherData so the trace is self-describing.
void write_serve_trace(std::ostream& out, const std::vector<ServeSpan>& spans,
                       std::size_t workers, const Provenance* prov = nullptr);

}  // namespace nsc::obs
