// Debug-information substrate for the observability layer (src/obs/).
//
// A compiled bvram::Program carries a DebugTable: an interned list of
// DebugSites, each naming the NSA combinator a run of instructions was
// emitted for and the surface .nsc position (1-based line:col) that
// combinator was translated from.  Every bvram::Instr holds a site index
// (`dbg`; 0 is the reserved "unknown" site), so any executed instruction
// can be blamed on a source line -- the empirical mirror of the paper's
// per-combinator work accounting.
//
// Invariants for pass authors (enforced by tests/test_profile.cpp and the
// CI profile-smoke attribution gate):
//   * The site index travels INSIDE Instr.  A pass that deletes, moves,
//     or copies whole instructions (erase_unkept / insert_before / in-place
//     field rewrites) preserves attribution for free.
//   * A pass that REPLACES an instruction's operation in place (peephole
//     folds, GVN's fuse-to-Move) must keep the slot's existing `dbg` --
//     the rewritten instruction still does that source line's job.
//   * A pass that synthesizes a genuinely new instruction should copy
//     `dbg` from the instruction it was derived from; only when there is
//     no such instruction may it use site 0.
//
// This header is a dependency leaf (strings and vectors only) so that
// bvram/machine.hpp can include it without entangling the machine model
// with the frontend.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <tuple>
#include <vector>

namespace nsc::obs {

/// One attribution target: an NSA combinator (by name) at a surface
/// source position.  line == 0 means "no surface attribution".
struct DebugSite {
  std::string nsa;         ///< originating NSA combinator, e.g. "map", "while"
  std::uint32_t line = 0;  ///< 1-based surface line (0 = unknown)
  std::uint32_t col = 0;   ///< 1-based surface column

  bool has_loc() const { return line != 0; }
  /// "map@12:7", or "?" for the unknown site.
  std::string show() const;
};

/// The interned site list attached to a compiled program.  Index 0 is
/// always the reserved unknown site, so a default-initialized Instr::dbg
/// is valid against any table (including the default-constructed empty
/// one, whose lone entry is the unknown site).
class DebugTable {
 public:
  DebugTable() : sites_(1) {}

  /// Intern (nsa, line, col); returns the site index.  Idempotent.
  std::uint32_t intern(const std::string& nsa, std::uint32_t line,
                       std::uint32_t col);

  /// Site by index; out-of-range indices resolve to the unknown site
  /// (robust against tables detached from their program).
  const DebugSite& site(std::uint32_t idx) const;

  std::size_t size() const { return sites_.size(); }
  const std::vector<DebugSite>& sites() const { return sites_; }

 private:
  std::vector<DebugSite> sites_;
  std::map<std::tuple<std::string, std::uint32_t, std::uint32_t>,
           std::uint32_t>
      index_;
};

}  // namespace nsc::obs
