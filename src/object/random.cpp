#include "object/random.hpp"

namespace nsc {

ValueRef random_value(const Type& t, SplitMix64& rng,
                      const RandomValueConfig& cfg) {
  switch (t.kind()) {
    case TypeKind::Unit:
      return Value::unit();
    case TypeKind::Nat:
      return Value::nat(rng.below(cfg.nat_bound));
    case TypeKind::Prod:
      return Value::pair(random_value(*t.left(), rng, cfg),
                         random_value(*t.right(), rng, cfg));
    case TypeKind::Sum:
      if (rng.coin()) return Value::in1(random_value(*t.left(), rng, cfg));
      return Value::in2(random_value(*t.right(), rng, cfg));
    case TypeKind::Seq: {
      const std::size_t n = rng.below(cfg.max_seq_len + 1);
      std::vector<ValueRef> elems;
      elems.reserve(n);
      for (std::size_t i = 0; i < n; ++i) {
        elems.push_back(random_value(*t.elem(), rng, cfg));
      }
      return Value::seq(std::move(elems));
    }
  }
  return Value::unit();
}

}  // namespace nsc
