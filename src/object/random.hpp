// Random S-object generation for property-based tests: given a Type and a
// size budget, produce a value that conforms to the type.  Deterministic in
// the PRNG seed.
#pragma once

#include "object/type.hpp"
#include "object/value.hpp"
#include "support/prng.hpp"

namespace nsc {

struct RandomValueConfig {
  /// Maximum length of generated sequences at each level.
  std::size_t max_seq_len = 6;
  /// Upper bound (exclusive) on generated naturals.
  std::uint64_t nat_bound = 100;
};

/// Generate a random value of type `t`.
ValueRef random_value(const Type& t, SplitMix64& rng,
                      const RandomValueConfig& cfg = {});

}  // namespace nsc
