#include "object/type.hpp"

#include "support/error.hpp"

namespace nsc {

Type::Type(TypeKind kind, TypeRef a, TypeRef b)
    : kind_(kind), a_(std::move(a)), b_(std::move(b)) {}

namespace {
TypeRef make(TypeKind k, TypeRef a = nullptr, TypeRef b = nullptr) {
  struct Access : Type {
    Access(TypeKind kind, TypeRef x, TypeRef y)
        : Type(kind, std::move(x), std::move(y)) {}
  };
  return std::make_shared<Access>(k, std::move(a), std::move(b));
}
}  // namespace

TypeRef Type::unit() {
  static const TypeRef t = make(TypeKind::Unit);
  return t;
}

TypeRef Type::nat() {
  static const TypeRef t = make(TypeKind::Nat);
  return t;
}

TypeRef Type::prod(TypeRef left, TypeRef right) {
  return make(TypeKind::Prod, std::move(left), std::move(right));
}

TypeRef Type::sum(TypeRef left, TypeRef right) {
  return make(TypeKind::Sum, std::move(left), std::move(right));
}

TypeRef Type::seq(TypeRef elem) {
  return make(TypeKind::Seq, std::move(elem));
}

TypeRef Type::boolean() {
  static const TypeRef t = sum(unit(), unit());
  return t;
}

const TypeRef& Type::left() const {
  if (kind_ != TypeKind::Prod && kind_ != TypeKind::Sum) {
    throw TypeError("left() on " + show());
  }
  return a_;
}

const TypeRef& Type::right() const {
  if (kind_ != TypeKind::Prod && kind_ != TypeKind::Sum) {
    throw TypeError("right() on " + show());
  }
  return b_;
}

const TypeRef& Type::elem() const {
  if (kind_ != TypeKind::Seq) throw TypeError("elem() on " + show());
  return a_;
}

bool Type::equal(const Type& a, const Type& b) {
  if (&a == &b) return true;
  if (a.kind_ != b.kind_) return false;
  switch (a.kind_) {
    case TypeKind::Unit:
    case TypeKind::Nat:
      return true;
    case TypeKind::Seq:
      return equal(*a.a_, *b.a_);
    case TypeKind::Prod:
    case TypeKind::Sum:
      return equal(*a.a_, *b.a_) && equal(*a.b_, *b.b_);
  }
  return false;
}

bool Type::equal(const TypeRef& a, const TypeRef& b) {
  if (a == b) return true;
  if (!a || !b) return false;
  return equal(*a, *b);
}

bool Type::is_scalar() const {
  switch (kind_) {
    case TypeKind::Unit:
    case TypeKind::Nat:
      return true;
    case TypeKind::Prod:
    case TypeKind::Sum:
      return a_->is_scalar() && b_->is_scalar();
    case TypeKind::Seq:
      return false;
  }
  return false;
}

bool Type::is_flat() const {
  switch (kind_) {
    case TypeKind::Unit:
      return true;
    case TypeKind::Nat:
      return false;  // a bare scalar N is not a flat type; [N] is
    case TypeKind::Seq:
      return a_->is_scalar();
    case TypeKind::Prod:
    case TypeKind::Sum:
      return a_->is_flat() && b_->is_flat();
  }
  return false;
}

bool Type::is_boolean() const {
  return kind_ == TypeKind::Sum && a_->is(TypeKind::Unit) &&
         b_->is(TypeKind::Unit);
}

std::string Type::show() const {
  switch (kind_) {
    case TypeKind::Unit:
      return "unit";
    case TypeKind::Nat:
      return "N";
    case TypeKind::Prod:
      return "(" + a_->show() + " x " + b_->show() + ")";
    case TypeKind::Sum:
      if (is_boolean()) return "B";
      return "(" + a_->show() + " + " + b_->show() + ")";
    case TypeKind::Seq:
      return "[" + a_->show() + "]";
  }
  return "?";
}

}  // namespace nsc
