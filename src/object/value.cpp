#include "object/value.hpp"

#include <sstream>

#include "support/checked.hpp"
#include "support/error.hpp"

namespace nsc {

Value::Value(ValueKind kind, std::uint64_t nat, ValueRef a, ValueRef b,
             std::vector<ValueRef> elems, std::uint64_t size)
    : kind_(kind),
      nat_(nat),
      a_(std::move(a)),
      b_(std::move(b)),
      elems_(std::move(elems)),
      size_(size) {}

namespace {
ValueRef make(ValueKind k, std::uint64_t nat, ValueRef a, ValueRef b,
              std::vector<ValueRef> elems, std::uint64_t size) {
  struct Access : Value {
    Access(ValueKind kind, std::uint64_t n, ValueRef x, ValueRef y,
           std::vector<ValueRef> es, std::uint64_t s)
        : Value(kind, n, std::move(x), std::move(y), std::move(es), s) {}
  };
  return std::make_shared<Access>(k, nat, std::move(a), std::move(b),
                                  std::move(elems), size);
}
}  // namespace

ValueRef Value::unit() {
  static const ValueRef v = make(ValueKind::Unit, 0, nullptr, nullptr, {}, 1);
  return v;
}

ValueRef Value::nat(std::uint64_t n) {
  return make(ValueKind::Nat, n, nullptr, nullptr, {}, 1);
}

ValueRef Value::pair(ValueRef first, ValueRef second) {
  const std::uint64_t s = sat_add(1, sat_add(first->size(), second->size()));
  return make(ValueKind::Pair, 0, std::move(first), std::move(second), {}, s);
}

ValueRef Value::in1(ValueRef v) {
  const std::uint64_t s = sat_add(1, v->size());
  return make(ValueKind::In1, 0, std::move(v), nullptr, {}, s);
}

ValueRef Value::in2(ValueRef v) {
  const std::uint64_t s = sat_add(1, v->size());
  return make(ValueKind::In2, 0, std::move(v), nullptr, {}, s);
}

ValueRef Value::seq(std::vector<ValueRef> elems) {
  std::uint64_t s = 1;
  for (const auto& e : elems) s = sat_add(s, e->size());
  return make(ValueKind::Seq, 0, nullptr, nullptr, std::move(elems), s);
}

ValueRef Value::empty_seq() {
  static const ValueRef v = make(ValueKind::Seq, 0, nullptr, nullptr, {}, 1);
  return v;
}

ValueRef Value::boolean(bool b) {
  static const ValueRef t = in1(unit());
  static const ValueRef f = in2(unit());
  return b ? t : f;
}

ValueRef Value::nat_seq(const std::vector<std::uint64_t>& ns) {
  std::vector<ValueRef> elems;
  elems.reserve(ns.size());
  for (auto n : ns) elems.push_back(nat(n));
  return seq(std::move(elems));
}

std::uint64_t Value::as_nat() const {
  if (kind_ != ValueKind::Nat) throw EvalError("expected N, got " + show());
  return nat_;
}

const ValueRef& Value::first() const {
  if (kind_ != ValueKind::Pair) throw EvalError("pi1 of non-pair " + show());
  return a_;
}

const ValueRef& Value::second() const {
  if (kind_ != ValueKind::Pair) throw EvalError("pi2 of non-pair " + show());
  return b_;
}

const ValueRef& Value::injected() const {
  if (kind_ != ValueKind::In1 && kind_ != ValueKind::In2) {
    throw EvalError("injected() of " + show());
  }
  return a_;
}

const std::vector<ValueRef>& Value::elems() const {
  if (kind_ != ValueKind::Seq) throw EvalError("elems() of " + show());
  return elems_;
}

std::size_t Value::length() const { return elems().size(); }

bool Value::as_bool() const {
  if (kind_ == ValueKind::In1 && a_->is(ValueKind::Unit)) return true;
  if (kind_ == ValueKind::In2 && a_->is(ValueKind::Unit)) return false;
  throw EvalError("expected B, got " + show());
}

std::vector<std::uint64_t> Value::as_nat_vector() const {
  std::vector<std::uint64_t> out;
  out.reserve(elems().size());
  for (const auto& e : elems()) out.push_back(e->as_nat());
  return out;
}

bool Value::equal(const Value& a, const Value& b) {
  if (&a == &b) return true;
  if (a.kind_ != b.kind_) return false;
  switch (a.kind_) {
    case ValueKind::Unit:
      return true;
    case ValueKind::Nat:
      return a.nat_ == b.nat_;
    case ValueKind::Pair:
      return equal(*a.a_, *b.a_) && equal(*a.b_, *b.b_);
    case ValueKind::In1:
    case ValueKind::In2:
      return equal(*a.a_, *b.a_);
    case ValueKind::Seq: {
      if (a.elems_.size() != b.elems_.size()) return false;
      for (std::size_t i = 0; i < a.elems_.size(); ++i) {
        if (!equal(*a.elems_[i], *b.elems_[i])) return false;
      }
      return true;
    }
  }
  return false;
}

bool Value::equal(const ValueRef& a, const ValueRef& b) {
  if (a == b) return true;
  if (!a || !b) return false;
  return equal(*a, *b);
}

bool Value::conforms(const Value& v, const Type& t) {
  switch (t.kind()) {
    case TypeKind::Unit:
      return v.is(ValueKind::Unit);
    case TypeKind::Nat:
      return v.is(ValueKind::Nat);
    case TypeKind::Prod:
      return v.is(ValueKind::Pair) && conforms(*v.a_, *t.left()) &&
             conforms(*v.b_, *t.right());
    case TypeKind::Sum:
      if (v.is(ValueKind::In1)) return conforms(*v.a_, *t.left());
      if (v.is(ValueKind::In2)) return conforms(*v.a_, *t.right());
      return false;
    case TypeKind::Seq: {
      if (!v.is(ValueKind::Seq)) return false;
      for (const auto& e : v.elems_) {
        if (!conforms(*e, *t.elem())) return false;
      }
      return true;
    }
  }
  return false;
}

std::string Value::show() const {
  switch (kind_) {
    case ValueKind::Unit:
      return "()";
    case ValueKind::Nat:
      return std::to_string(nat_);
    case ValueKind::Pair:
      return "(" + a_->show() + ", " + b_->show() + ")";
    case ValueKind::In1:
      if (a_->is(ValueKind::Unit)) return "true";
      return "in1(" + a_->show() + ")";
    case ValueKind::In2:
      if (a_->is(ValueKind::Unit)) return "false";
      return "in2(" + a_->show() + ")";
    case ValueKind::Seq: {
      std::ostringstream out;
      out << "[";
      for (std::size_t i = 0; i < elems_.size(); ++i) {
        if (i) out << ", ";
        out << elems_[i]->show();
      }
      out << "]";
      return out.str();
    }
  }
  return "?";
}

}  // namespace nsc
