// The paper's type grammar (section 3):
//
//   t ::= unit | N | t x t | t + t | [t]
//
// with the boolean type defined as B = unit + unit.  The same Type objects
// describe NSC terms, NSA/SA functions and BVRAM register tuples; the SA
// layer additionally distinguishes the *scalar* and *flat* sub-grammars
// (appendix D), exposed here as predicates.
#pragma once

#include <memory>
#include <string>

namespace nsc {

enum class TypeKind { Unit, Nat, Prod, Sum, Seq };

class Type;
using TypeRef = std::shared_ptr<const Type>;

class Type {
 public:
  // -- constructors -------------------------------------------------------
  static TypeRef unit();
  static TypeRef nat();
  static TypeRef prod(TypeRef left, TypeRef right);
  static TypeRef sum(TypeRef left, TypeRef right);
  static TypeRef seq(TypeRef elem);
  /// B = unit + unit (section 3).
  static TypeRef boolean();

  // -- observers ----------------------------------------------------------
  TypeKind kind() const { return kind_; }
  bool is(TypeKind k) const { return kind_ == k; }

  /// Left/right components of a product or sum (throws otherwise).
  const TypeRef& left() const;
  const TypeRef& right() const;
  /// Element type of a sequence (throws otherwise).
  const TypeRef& elem() const;

  /// Structural equality.
  static bool equal(const Type& a, const Type& b);
  static bool equal(const TypeRef& a, const TypeRef& b);

  /// SA scalar types (appendix D): s ::= unit | N | s x s | s + s.
  bool is_scalar() const;
  /// SA flat types (appendix D): t ::= unit | [s] | t x t | t + t
  /// with s scalar.
  bool is_flat() const;
  /// True iff this type is B = unit + unit.
  bool is_boolean() const;

  std::string show() const;

 protected:
  Type(TypeKind kind, TypeRef a, TypeRef b);

 private:
  TypeKind kind_;
  TypeRef a_;  // left / elem
  TypeRef b_;  // right
};

}  // namespace nsc
