// S-objects (section 3):
//
//   C ::= () | n | (C, C) | in1(C) | in2(C) | [C, ..., C]
//
// with the unit-size complexity measure of Definition 3.1:
//
//   size(()) = size(n) = 1
//   size((C, D)) = 1 + size(C) + size(D)
//   size(in_i(C)) = 1 + size(C)
//   size([C_0, ..., C_{n-1}]) = 1 + sum_i size(C_i)
//
// Values are immutable and shared (structural sharing keeps the evaluators
// fast); `size()` is cached at construction so that the cost accounting --
// which charges SIZE on every rule instance -- is O(1) per charge.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "object/type.hpp"

namespace nsc {

enum class ValueKind { Unit, Nat, Pair, In1, In2, Seq };

class Value;
using ValueRef = std::shared_ptr<const Value>;

class Value {
 public:
  // -- constructors -------------------------------------------------------
  static ValueRef unit();
  static ValueRef nat(std::uint64_t n);
  static ValueRef pair(ValueRef first, ValueRef second);
  static ValueRef in1(ValueRef v);
  static ValueRef in2(ValueRef v);
  static ValueRef seq(std::vector<ValueRef> elems);
  static ValueRef empty_seq();
  /// true = in1(()), false = in2(()) (section 3).
  static ValueRef boolean(bool b);
  /// [nat(n0), nat(n1), ...] convenience.
  static ValueRef nat_seq(const std::vector<std::uint64_t>& ns);

  // -- observers ----------------------------------------------------------
  ValueKind kind() const { return kind_; }
  bool is(ValueKind k) const { return kind_ == k; }

  std::uint64_t as_nat() const;
  const ValueRef& first() const;    // of a pair
  const ValueRef& second() const;   // of a pair
  const ValueRef& injected() const; // of in1/in2
  const std::vector<ValueRef>& elems() const;  // of a seq
  std::size_t length() const;                  // of a seq
  /// true iff this is in1(()); throws unless the value is a boolean.
  bool as_bool() const;
  /// Extract [n0, n1, ...] from a sequence of nats.
  std::vector<std::uint64_t> as_nat_vector() const;

  /// Definition 3.1 unit-size.
  std::uint64_t size() const { return size_; }

  static bool equal(const Value& a, const Value& b);
  static bool equal(const ValueRef& a, const ValueRef& b);

  /// True iff the value inhabits the type.
  static bool conforms(const Value& v, const Type& t);

  std::string show() const;

 protected:
  Value(ValueKind kind, std::uint64_t nat, ValueRef a, ValueRef b,
        std::vector<ValueRef> elems, std::uint64_t size);

 private:
  ValueKind kind_;
  std::uint64_t nat_ = 0;
  ValueRef a_;
  ValueRef b_;
  std::vector<ValueRef> elems_;
  std::uint64_t size_;
};

}  // namespace nsc
