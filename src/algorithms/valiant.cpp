#include "algorithms/valiant.hpp"

#include "nsc/build.hpp"
#include "nsc/prelude.hpp"

namespace nsc::alg {

namespace {

namespace L = nsc::lang;
namespace P = nsc::lang::prelude;
using L::TermRef;
using nsc::Type;
using nsc::TypeRef;
using nsc::Value;
using nsc::ValueRef;

const TypeRef N = Type::nat();
const TypeRef NSeq = Type::seq(Type::nat());
const TypeRef NSeqSeq = Type::seq(Type::seq(Type::nat()));
const TypeRef MergeDom = Type::prod(Type::seq(Type::nat()),
                                    Type::seq(Type::nat()));

/// Figure 1's divide: sample, two-round rank, split, align.
L::FuncRef merge_divide() {
  return L::lam(
      MergeDom,
      [&](TermRef z) {
        return L::let_in(NSeq, L::proj1(z), [&](TermRef A) {
          return L::let_in(NSeq, L::proj2(z), [&](TermRef B) {
            // A' and B': every ~sqrt-th element.
            return L::let_in(
                NSeq, L::apply(P::sqrt_positions(N), A), [&](TermRef Ap) {
                  TermRef Bp = L::apply(P::sqrt_positions(N), B);
                  // R' = rank of each sample of A among B's samples.
                  return L::let_in(
                      NSeq, L::apply(P::direct_rank(), L::pair(Ap, Bp)),
                      [&](TermRef Rp) {
                        // Candidate block of B for each sample.
                        TermRef BBp = L::apply(P::sqrt_split(N), B);
                        TermRef blocks =
                            L::apply(P::index(NSeq), L::pair(BBp, Rp));
                        TermRef aB = L::zip(Ap, blocks);
                        // RR' = rank of each sample inside its block.
                        TermRef RRp =
                            L::apply(L::map_f(P::rank_one()), aB);
                        // Global ranks R = (R' - 1) * sqrt(n) + RR'.
                        return L::let_in(
                            N, P::sqrt_block(L::length(B)), [&](TermRef bB) {
                              L::FuncRef mk_rank = L::lam(
                                  Type::prod(N, N),
                                  [&](TermRef q) {
                                    return L::add(
                                        L::mul(L::monus_t(L::proj1(q),
                                                          L::nat(1)),
                                               bB),
                                        L::proj2(q));
                                  },
                                  "q");
                              TermRef R = L::apply(L::map_f(mk_rank),
                                                   L::zip(Rp, RRp));
                              TermRef AA = L::apply(P::sqrt_split(N), A);
                              TermRef BB = L::apply(P::index_split(N),
                                                    L::pair(B, R));
                              return L::zip(AA, BB);
                            },
                            "bB");
                      },
                      "Rp");
                },
                "Ap");
          });
        });
      },
      "z");
}

}  // namespace

MapRec valiant_merge() {
  MapRec f;
  f.dom = MergeDom;
  f.cod = NSeq;
  f.max_arity = ~std::uint64_t{0};  // sqrt(m)-way divide: unbounded arity
  f.p = L::lam(
      MergeDom,
      [&](TermRef z) { return L::leq(L::length(L::proj1(z)), L::nat(2)); },
      "z");
  f.s = P::direct_merge();
  f.d = merge_divide();
  // Combine is just flatten: the recursive merges return aligned sorted
  // blocks (Figure 1's flatten(map(merge)(zip(AA, BB)))).
  f.c = L::lam(NSeqSeq, [&](TermRef ys) { return L::flatten(ys); }, "ys");
  return f;
}

Evaluated eval_valiant_merge(const ValueRef& a_and_b) {
  static const MapRec merge = valiant_merge();
  return eval_maprec(merge, a_and_b);
}

namespace {

MapRec mergesort_rec() {
  MapRec f;
  f.dom = NSeq;
  f.cod = NSeq;
  f.max_arity = 2;
  f.p = L::lam(
      NSeq, [&](TermRef A) { return L::leq(L::length(A), L::nat(1)); }, "A");
  f.s = P::identity(NSeq);
  // split(A, [n - n/2, n/2])  (Figure 1).
  f.d = L::lam(
      NSeq,
      [&](TermRef A) {
        return L::let_in(
            N, L::length(A),
            [&](TermRef n) {
              TermRef half = L::div_t(n, L::nat(2));
              TermRef sizes = L::append(L::singleton(L::monus_t(n, half)),
                                        L::singleton(half));
              return L::split(A, sizes);
            },
            "n");
      },
      "A");
  // NSC-level combine (used if c_native is cleared): direct_merge of the
  // two halves.  The section 5 algorithm plugs in Valiant's merge below.
  f.c = L::lam(
      NSeqSeq,
      [&](TermRef ys) {
        return L::apply(P::direct_merge(),
                        L::pair(L::apply(P::first(NSeq), ys),
                                L::apply(P::last(NSeq), ys)));
      },
      "ys");
  f.c_native = [](const ValueRef& ys) {
    return eval_valiant_merge(
        Value::pair(ys->elems().at(0), ys->elems().at(1)));
  };
  return f;
}

}  // namespace

Evaluated eval_valiant_mergesort(const ValueRef& xs) {
  static const MapRec sorter = mergesort_rec();
  return eval_maprec(sorter, xs);
}

MapRec quicksort() {
  auto p = L::lam(
      NSeq, [&](TermRef x) { return L::leq(L::length(x), L::nat(1)); }, "x");
  auto s = P::identity(NSeq);
  // d1: strictly-smaller elements, pivot appended (sorted ends with pivot);
  // d2: the rest (>= pivot, duplicates included) -- shrinks by at least the
  // pivot each level, so the recursion terminates on duplicate-heavy input.
  auto d1 = L::lam(
      NSeq,
      [&](TermRef x) {
        return L::let_in(
            N, L::apply(P::first(N), x),
            [&](TermRef pvt) {
              auto less = L::lam(
                  N, [&](TermRef v) { return L::lt(v, pvt); }, "v");
              return L::append(
                  L::apply(P::filter(less, N), L::apply(P::tail(N), x)),
                  L::singleton(pvt));
            },
            "p");
      },
      "x");
  auto d2 = L::lam(
      NSeq,
      [&](TermRef x) {
        return L::let_in(
            N, L::apply(P::first(N), x),
            [&](TermRef pvt) {
              auto ge = L::lam(
                  N, [&](TermRef v) { return L::leq(pvt, v); }, "v");
              return L::apply(P::filter(ge, N), L::apply(P::tail(N), x));
            },
            "p");
      },
      "x");
  auto c2 = L::lam(
      Type::prod(NSeq, NSeq),
      [&](TermRef q) { return L::append(L::proj1(q), L::proj2(q)); }, "q");
  return L::schema_g(NSeq, NSeq, p, s, d1, d2, c2);
}

}  // namespace nsc::alg
