// Section 5: Valiant's O(log n log log n) mergesort, transcribed from
// Figures 1-3 as map-recursive NSC definitions.
//
//  * merge(A, B): if |A| <= 2, direct_merge; otherwise sample every
//    ~sqrt|A|-th element of A, rank the samples in B (two rank rounds:
//    against B's samples, then inside the located block), split both
//    sequences at the resulting ranks, and recurse on the sqrt(m)+1 aligned
//    block pairs in parallel.  The divide arity is ~sqrt(m) -- Definition
//    4.1 allows this (d : s -> [s] is unbounded), and the reference
//    evaluator eval_maprec runs it; the Theorem 4.2 *translation* requires
//    a static arity bound, which merge does not have.
//  * mergesort(A): binary schema-g recursion whose combine is merge --
//    composed via MapRec::c_native, since the combine of one map-recursion
//    is another map-recursion (exactly the section 5 structure).
//
// Claimed complexities (validated by bench_mergesort, experiment E1):
//    merge:     T = O(log log m), W = O((m + n) log log m)
//    mergesort: T = O(log n log log n), W = O(n log n log log n)
// (the paper notes W can be made optimal with the [Jaj92] refinement; we
// reproduce the as-written Figure 1 algorithm).
#pragma once

#include "nsc/maprec.hpp"

namespace nsc::alg {

using lang::Evaluated;
using lang::MapRec;

/// Figure 1's merge as a map-recursive definition over ([N] x [N]) -> [N].
/// Both inputs must be sorted.
MapRec valiant_merge();

/// Evaluate merge(A, B) with reference costs.
Evaluated eval_valiant_merge(const ValueRef& a_and_b);

/// Evaluate mergesort(A) (Figure 1) with reference costs.
Evaluated eval_valiant_mergesort(const ValueRef& xs);

/// Quicksort as the paper's schema-g example ("Quicksort has this form",
/// section 4): pivot-partition divide, append combine.  Bounded arity 2,
/// so it also exercises the Theorem 4.2 translation.
MapRec quicksort();

}  // namespace nsc::alg
