#include "nsc/prelude.hpp"

#include "object/type.hpp"

namespace nsc::lang::prelude {

namespace {

const TypeRef& nat_t() {
  static const TypeRef t = Type::nat();
  return t;
}

/// map(\q:(N x N). pi1 q - pi2 q) -- Figure 3's map(-).
FuncRef map_monus() {
  return map_f(lam(Type::prod(nat_t(), nat_t()),
                   [](TermRef q) { return monus_t(proj1(q), proj2(q)); },
                   "q"));
}

}  // namespace

FuncRef identity(TypeRef t) {
  return lam(std::move(t), [](TermRef x) { return x; }, "id");
}

FuncRef compose(FuncRef f, FuncRef g, TypeRef g_dom) {
  return lam(
      std::move(g_dom),
      [&](TermRef x) { return apply(f, apply(g, std::move(x))); }, "c");
}

FuncRef p2(TypeRef s, TypeRef t) {
  // let x = pi1 z in map(\v. (x, v))(pi2 z): binding x (not the whole pair)
  // makes each parallel branch re-read only the broadcast element, which is
  // the intended p2 cost of |y| * size(x).
  return lam(
      Type::prod(s, Type::seq(t)),
      [&](TermRef z) {
        return let_in(
            s, proj1(z),
            [&](TermRef x) {
              FuncRef attach =
                  lam(t, [&](TermRef v) { return pair(x, std::move(v)); },
                      "v");
              return apply(map_f(attach), proj2(z));
            },
            "bx");
      },
      "z");
}

FuncRef bm_route(TypeRef s, TypeRef t) {
  // Pi1(flatten(map(p2)(zip(x, split(u, d)))))   [section 3]
  const TypeRef dom =
      Type::prod(Type::prod(Type::seq(s), Type::seq(nat_t())), Type::seq(t));
  return lam(
      dom,
      [&](TermRef w) {
        TermRef u = proj1(proj1(w));
        TermRef d = proj2(proj1(w));
        TermRef x = proj2(w);
        TermRef zipped = zip(x, split(u, d));       // [t x [s]]
        TermRef routed = flatten(apply(map_f(p2(t, s)), zipped));  // [t x s]
        FuncRef pi1_f = lam(Type::prod(t, s),
                            [](TermRef q) { return proj1(q); }, "q");
        return apply(map_f(pi1_f), routed);
      },
      "w");
}

FuncRef sigma1(TypeRef s, TypeRef t) {
  const TypeRef sum_t = Type::sum(s, t);
  return lam(
      Type::seq(sum_t),
      [&](TermRef x) {
        const std::string u = gensym("u");
        const std::string a = gensym("a");
        const std::string b = gensym("b");
        FuncRef f = lambda(
            u, sum_t, case_of(var(u), a, singleton(var(a)), b, empty(s)));
        return flatten(apply(map_f(f), x));
      },
      "x");
}

FuncRef sigma2(TypeRef s, TypeRef t) {
  const TypeRef sum_t = Type::sum(s, t);
  return lam(
      Type::seq(sum_t),
      [&](TermRef x) {
        const std::string u = gensym("u");
        const std::string a = gensym("a");
        const std::string b = gensym("b");
        FuncRef f = lambda(
            u, sum_t, case_of(var(u), a, empty(t), b, singleton(var(b))));
        return flatten(apply(map_f(f), x));
      },
      "x");
}

FuncRef filter(FuncRef p, TypeRef t) {
  return lam(
      Type::seq(t),
      [&](TermRef x) {
        FuncRef keep = lam(
            t,
            [&](TermRef u) {
              return ite(apply(p, u), singleton(u), empty(t));
            },
            "u");
        return flatten(apply(map_f(keep), x));
      },
      "x");
}

FuncRef first(TypeRef t) {
  return lam(
      Type::seq(t),
      [&](TermRef x) {
        FuncRef head_count = lam(
            nat_t(),
            [](TermRef i) { return ite(eq(i, nat(0)), nat(1), nat(0)); },
            "i");
        TermRef counts = apply(map_f(head_count), enumerate(x));
        TermRef bound = singleton(unit_v());
        return get(apply(bm_route(Type::unit(), t),
                         pair(pair(bound, counts), x)));
      },
      "x");
}

FuncRef tail(TypeRef t) {
  return lam(
      Type::seq(t),
      [&](TermRef x) {
        FuncRef not_head = lam(
            nat_t(),
            [](TermRef i) { return ite(eq(i, nat(0)), nat(0), nat(1)); },
            "i");
        FuncRef bound_unit = lam(
            nat_t(),
            [](TermRef i) {
              return ite(eq(i, nat(0)), empty(Type::unit()),
                         singleton(unit_v()));
            },
            "i");
        TermRef counts = apply(map_f(not_head), enumerate(x));
        TermRef bound = flatten(apply(map_f(bound_unit), enumerate(x)));
        return apply(bm_route(Type::unit(), t), pair(pair(bound, counts), x));
      },
      "x");
}

FuncRef last(TypeRef t) {
  return lam(
      Type::seq(t),
      [&](TermRef x) {
        return let_in(
            nat_t(), length(x),
            [&](TermRef n) {
              FuncRef last_count = lam(
                  nat_t(),
                  [&](TermRef i) {
                    return ite(eq(add(i, nat(1)), n), nat(1), nat(0));
                  },
                  "i");
              TermRef counts = apply(map_f(last_count), enumerate(x));
              return get(apply(bm_route(Type::unit(), t),
                               pair(pair(singleton(unit_v()), counts), x)));
            },
            "n");
      },
      "x");
}

FuncRef remove_last(TypeRef t) {
  return lam(
      Type::seq(t),
      [&](TermRef x) {
        return let_in(
            nat_t(), length(x),
            [&](TermRef n) {
              FuncRef not_last = lam(
                  nat_t(),
                  [&](TermRef i) {
                    return ite(eq(add(i, nat(1)), n), nat(0), nat(1));
                  },
                  "i");
              FuncRef bound_unit = lam(
                  nat_t(),
                  [&](TermRef i) {
                    return ite(eq(add(i, nat(1)), n), empty(Type::unit()),
                               singleton(unit_v()));
                  },
                  "i");
              TermRef counts = apply(map_f(not_last), enumerate(x));
              TermRef bound = flatten(apply(map_f(bound_unit), enumerate(x)));
              return apply(bm_route(Type::unit(), t),
                           pair(pair(bound, counts), x));
            },
            "n");
      },
      "x");
}

FuncRef index(TypeRef t) {
  // Figure 3, verbatim (with lets for sharing).
  const TypeRef dom = Type::prod(Type::seq(t), Type::seq(nat_t()));
  return lam(
      dom,
      [&](TermRef z) {
        return let_in(Type::seq(t), proj1(z), [&](TermRef C) {
          return let_in(Type::seq(nat_t()), proj2(z), [&](TermRef I) {
            return let_in(nat_t(), length(C), [&](TermRef n) {
              return let_in(nat_t(), length(I), [&](TermRef k) {
                TermRef zero_to_k = append(enumerate(I), singleton(k));
                TermRef delta_I = apply(
                    map_monus(),
                    zip(append(I, singleton(n)),
                        append(singleton(nat(0)), I)));
                TermRef P0 = apply(bm_route(t, nat_t()),
                                   pair(pair(C, delta_I), zero_to_k));
                return let_in(Type::seq(nat_t()), P0, [&](TermRef P) {
                  TermRef delta_P = apply(
                      map_monus(),
                      zip(P, apply(remove_last(nat_t()),
                                   append(singleton(nat(0)), P))));
                  return apply(bm_route(nat_t(), t),
                               pair(pair(I, delta_P), C));
                });
              });
            });
          });
        });
      },
      "z");
}

FuncRef index_split(TypeRef t) {
  const TypeRef dom = Type::prod(Type::seq(t), Type::seq(nat_t()));
  return lam(
      dom,
      [&](TermRef z) {
        return let_in(Type::seq(t), proj1(z), [&](TermRef C) {
          return let_in(Type::seq(nat_t()), proj2(z), [&](TermRef I) {
            TermRef n = length(C);
            TermRef delta_I = apply(
                map_monus(),
                zip(append(I, singleton(n)), append(singleton(nat(0)), I)));
            return split(C, delta_I);
          });
        });
      },
      "z");
}

TermRef sqrt_block(TermRef n) {
  // max(1, n >> ((log2 n + 1) / 2)); within a factor 2 of sqrt(n).
  TermRef shifted = rsh(n, div_t(add(log2_t(n), nat(1)), nat(2)));
  return ite(eq(shifted, nat(0)), nat(1), shifted);
}

FuncRef sqrt_positions(TypeRef t) {
  return lam(
      Type::seq(t),
      [&](TermRef C) {
        return let_in(
            nat_t(), length(C),
            [&](TermRef n) {
              return let_in(
                  nat_t(), sqrt_block(n),
                  [&](TermRef b) {
                    FuncRef on_block = lam(
                        nat_t(),
                        [&](TermRef i) { return eq(mod_t(i, b), nat(0)); },
                        "i");
                    TermRef I =
                        apply(filter(on_block, nat_t()), enumerate(C));
                    return apply(index(t), pair(C, I));
                  },
                  "b");
            },
            "n");
      },
      "C");
}

FuncRef sqrt_split(TypeRef t) {
  return lam(
      Type::seq(t),
      [&](TermRef C) {
        TermRef I = apply(sqrt_positions(nat_t()), enumerate(C));
        return apply(index_split(t), pair(C, I));
      },
      "C");
}

FuncRef rank_one() {
  const TypeRef dom = Type::prod(nat_t(), Type::seq(nat_t()));
  return lam(
      dom,
      [&](TermRef z) {
        // Bind the pivot a so that each parallel comparison re-reads a unit-
        // size value, not the whole (a, B) pair: W = O(|B|).
        return let_in(
            nat_t(), proj1(z),
            [&](TermRef a) {
              FuncRef le =
                  lam(nat_t(), [&](TermRef b) { return leq(b, a); }, "b");
              return length(apply(filter(le, nat_t()), proj2(z)));
            },
            "a");
      },
      "z");
}

FuncRef direct_rank() {
  const TypeRef dom = Type::prod(Type::seq(nat_t()), Type::seq(nat_t()));
  return lam(
      dom,
      [&](TermRef z) {
        // B is re-read by each of the |A| parallel rank_one's: the intended
        // broadcast cost W = O(|A| * |B|) of Figure 2's direct_rank.
        return let_in(
            Type::seq(nat_t()), proj2(z),
            [&](TermRef B) {
              FuncRef rank = lam(
                  nat_t(),
                  [&](TermRef a) { return apply(rank_one(), pair(a, B)); },
                  "a");
              return apply(map_f(rank), proj1(z));
            },
            "B");
      },
      "z");
}

FuncRef direct_merge() {
  const TypeRef nseq = Type::seq(nat_t());
  const TypeRef dom = Type::prod(nseq, nseq);
  return lam(
      dom,
      [&](TermRef z) {
        return let_in(nseq, proj1(z), [&](TermRef A) {
          return let_in(nseq, proj2(z), [&](TermRef B) {
            return let_in(
                nseq, apply(direct_rank(), pair(A, B)), [&](TermRef R) {
                  return let_in(
                      Type::seq(nseq), apply(index_split(nat_t()), pair(B, R)),
                      [&](TermRef BB) {
                        FuncRef weave = lam(
                            Type::prod(nat_t(), nseq),
                            [&](TermRef q) {
                              return append(singleton(proj1(q)), proj2(q));
                            },
                            "q");
                        TermRef rest = flatten(apply(
                            map_f(weave),
                            zip(A, apply(tail(nseq), BB))));
                        return append(apply(first(nseq), BB), rest);
                      });
                });
          });
        });
      },
      "z");
}

namespace {

/// Shared skeleton for log-depth pairwise reduction over [N].
/// combine(g) must reduce a group of length 1 or 2 to a single N.
FuncRef halving_reduce(const std::function<TermRef(TermRef)>& combine_group,
                       TermRef base) {
  const TypeRef nseq = Type::seq(nat_t());
  FuncRef pred =
      lam(nseq, [](TermRef y) { return lt(nat(1), length(y)); }, "y");
  FuncRef step = lam(
      nseq,
      [&](TermRef y) {
        return let_in(
            nat_t(), length(y),
            [&](TermRef n) {
              FuncRef is_even = lam(
                  nat_t(),
                  [](TermRef i) { return eq(mod_t(i, nat(2)), nat(0)); },
                  "i");
              TermRef evens = apply(filter(is_even, nat_t()), enumerate(y));
              FuncRef group_size = lam(
                  nat_t(),
                  [&](TermRef i) {
                    return ite(eq(add(i, nat(1)), n), nat(1), nat(2));
                  },
                  "i");
              TermRef sizes = apply(map_f(group_size), evens);
              TermRef groups = split(y, sizes);
              FuncRef red = lam(nseq, combine_group, "g");
              return apply(map_f(red), groups);
            },
            "n");
      },
      "y");
  return lam(
      nseq,
      [&](TermRef x) {
        return ite(eq(length(x), nat(0)), base,
                   get(apply(while_f(pred, step), x)));
      },
      "x");
}

}  // namespace

FuncRef sum_nats() {
  return halving_reduce(
      [&](TermRef g) {
        return ite(eq(length(g), nat(1)), get(g),
                   add(apply(first(nat_t()), g), apply(last(nat_t()), g)));
      },
      nat(0));
}

FuncRef max_nats() {
  return halving_reduce(
      [&](TermRef g) {
        TermRef a = apply(first(nat_t()), g);
        TermRef b = apply(last(nat_t()), g);
        return ite(eq(length(g), nat(1)), get(g), ite(leq(a, b), b, a));
      },
      nat(0));
}

}  // namespace nsc::lang::prelude
