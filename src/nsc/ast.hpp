// Abstract syntax of the Nested Sequence Calculus (paper appendix A).
//
// NSC has two syntactic categories:
//   * terms M, N, ... which have a type t, and
//   * functions F, G, ... which have a domain and codomain s -> t
//     (s -> t is *not* a type: NSC is deliberately first-order).
//
// Terms:    x | Omega | n | M op N | M = N
//         | () | (M, N) | pi1 M | pi2 M
//         | in1 M | in2 M | case M of in1 x => N | in2 y => P
//         | F(M)
//         | [] | [M] | M @ N | flatten M | length M | get M
//         | zip(M, N) | enumerate M | split(M, N)
// Functions: \x:s. M | map(F) | while(P, F)
//
// Nodes are immutable and shared; the builder DSL in build.hpp is the
// intended construction interface.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "object/type.hpp"

namespace nsc::lang {

using nsc::Type;
using nsc::TypeRef;

class Term;
class Func;
using TermRef = std::shared_ptr<const Term>;
using FuncRef = std::shared_ptr<const Func>;

enum class TermKind {
  Var,        // x
  Omega,      // error (annotated with its type)
  NatConst,   // n
  Arith,      // M op N   (op in Sigma; Log2 ignores its second operand)
  Eq,         // M = N    (on naturals, yields B)
  UnitVal,    // ()
  MkPair,     // (M, N)
  Proj1,      // pi1 M
  Proj2,      // pi2 M
  Inj1,       // in1 M    (annotated with the right summand type)
  Inj2,       // in2 M    (annotated with the left summand type)
  Case,       // case M of in1 x => N | in2 y => P
  Apply,      // F(M)
  Empty,      // []       (annotated with the element type)
  Singleton,  // [M]
  Append,     // M @ N
  Flatten,    // flatten M
  Length,     // length M
  Get,        // get M
  Zip,        // zip(M, N)
  Enumerate,  // enumerate M
  Split,      // split(M, N)
};

enum class FuncKind {
  Lambda,  // \x:s. M
  Map,     // map(F)
  While,   // while(P, F)
};

/// The arithmetic operation set Sigma (section 2): {+, -, *, /, >>, log2}.
/// `-` is monus.  Log2 is morally unary; as a binary node it ignores its
/// second operand (the DSL always passes a zero literal there).
enum class ArithOp { Add, Monus, Mul, Div, Rsh, Log2 };

const char* arith_op_name(ArithOp op);

/// Apply an arithmetic op to concrete naturals (shared by every layer:
/// NSC/NSA/SA evaluators and the BVRAM interpreter).  Division by zero
/// raises EvalError (Omega).
std::uint64_t arith_apply(ArithOp op, std::uint64_t a, std::uint64_t b);

class Term {
 public:
  TermKind kind() const { return kind_; }

  // Accessors; each asserts the node kind in debug sense (throws on misuse).
  const std::string& var_name() const;         // Var
  std::uint64_t nat_value() const;             // NatConst
  ArithOp op() const;                          // Arith
  const TermRef& child0() const;               // unary/binary first child
  const TermRef& child1() const;               // binary second child
  const TypeRef& annotation() const;           // Omega/Empty/Inj1/Inj2
  const std::string& binder1() const;          // Case
  const std::string& binder2() const;          // Case
  const TermRef& branch1() const;              // Case
  const TermRef& branch2() const;              // Case
  const FuncRef& fn() const;                   // Apply

  /// Number of AST nodes (for reporting / sanity limits).
  std::size_t node_count() const;

  std::string show() const;

  /// Surface-source provenance, stamped post-hoc by the front end's
  /// lowering (the core calculus itself has no locations).  Pure metadata:
  /// never read by evaluation or translation, only threaded into BVRAM
  /// debug info.  First write wins -- shared subtrees (the prelude) keep
  /// their declaration-site stamp -- and line 0 means "unstamped".
  /// Mutation of a const shared node is safe because compilation is
  /// single-threaded.
  void set_src(std::uint32_t line, std::uint32_t col) const {
    if (src_line_ == 0) {
      src_line_ = line;
      src_col_ = col;
    }
  }
  std::uint32_t src_line() const { return src_line_; }
  std::uint32_t src_col() const { return src_col_; }

  // Raw constructor used by build.hpp.
  struct Init {
    TermKind kind;
    std::string var;
    std::uint64_t nat = 0;
    ArithOp op = ArithOp::Add;
    TermRef a;
    TermRef b;
    TypeRef ann;
    std::string binder1, binder2;
    TermRef branch1, branch2;
    FuncRef fn;
  };
  static TermRef make(Init init);

 private:
  explicit Term(Init init);

  mutable std::uint32_t src_line_ = 0;
  mutable std::uint32_t src_col_ = 0;
  TermKind kind_;
  std::string var_;
  std::uint64_t nat_;
  ArithOp op_;
  TermRef a_, b_;
  TypeRef ann_;
  std::string binder1_, binder2_;
  TermRef branch1_, branch2_;
  FuncRef fn_;
};

class Func {
 public:
  FuncKind kind() const { return kind_; }

  const std::string& param() const;      // Lambda
  const TypeRef& param_type() const;     // Lambda
  const TermRef& body() const;           // Lambda
  const FuncRef& inner() const;          // Map body / While body F
  const FuncRef& pred() const;           // While predicate P

  std::size_t node_count() const;
  std::string show() const;

  /// Source provenance; same contract as Term::set_src.
  void set_src(std::uint32_t line, std::uint32_t col) const {
    if (src_line_ == 0) {
      src_line_ = line;
      src_col_ = col;
    }
  }
  std::uint32_t src_line() const { return src_line_; }
  std::uint32_t src_col() const { return src_col_; }

  struct Init {
    FuncKind kind;
    std::string param;
    TypeRef param_type;
    TermRef body;
    FuncRef inner;
    FuncRef pred;
  };
  static FuncRef make(Init init);

 private:
  explicit Func(Init init);

  mutable std::uint32_t src_line_ = 0;
  mutable std::uint32_t src_col_ = 0;
  FuncKind kind_;
  std::string param_;
  TypeRef param_type_;
  TermRef body_;
  FuncRef inner_;
  FuncRef pred_;
};

}  // namespace nsc::lang
