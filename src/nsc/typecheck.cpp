#include "nsc/typecheck.hpp"

#include "support/error.hpp"

namespace nsc::lang {

namespace {

[[noreturn]] void fail(const std::string& what, const Term& at) {
  throw TypeError(what + " in `" + at.show() + "`");
}

TypeRef expect_seq(const TypeRef& t, const Term& at, const char* what) {
  if (!t->is(TypeKind::Seq)) {
    fail(std::string(what) + ": expected a sequence, got " + t->show(), at);
  }
  return t->elem();
}

void expect_nat(const TypeRef& t, const Term& at, const char* what) {
  if (!t->is(TypeKind::Nat)) {
    fail(std::string(what) + ": expected N, got " + t->show(), at);
  }
}

}  // namespace

TypeRef check_term(const TermRef& m, const TypeEnv& env) {
  switch (m->kind()) {
    case TermKind::Var: {
      auto it = env.find(m->var_name());
      if (it == env.end()) fail("unbound variable " + m->var_name(), *m);
      return it->second;
    }
    case TermKind::Omega:
      return m->annotation();
    case TermKind::NatConst:
      return Type::nat();
    case TermKind::Arith: {
      expect_nat(check_term(m->child0(), env), *m, "arith lhs");
      expect_nat(check_term(m->child1(), env), *m, "arith rhs");
      return Type::nat();
    }
    case TermKind::Eq: {
      expect_nat(check_term(m->child0(), env), *m, "= lhs");
      expect_nat(check_term(m->child1(), env), *m, "= rhs");
      return Type::boolean();
    }
    case TermKind::UnitVal:
      return Type::unit();
    case TermKind::MkPair:
      return Type::prod(check_term(m->child0(), env),
                        check_term(m->child1(), env));
    case TermKind::Proj1: {
      TypeRef t = check_term(m->child0(), env);
      if (!t->is(TypeKind::Prod)) fail("pi1 of non-product " + t->show(), *m);
      return t->left();
    }
    case TermKind::Proj2: {
      TypeRef t = check_term(m->child0(), env);
      if (!t->is(TypeKind::Prod)) fail("pi2 of non-product " + t->show(), *m);
      return t->right();
    }
    case TermKind::Inj1:
      return Type::sum(check_term(m->child0(), env), m->annotation());
    case TermKind::Inj2:
      return Type::sum(m->annotation(), check_term(m->child0(), env));
    case TermKind::Case: {
      TypeRef t = check_term(m->child0(), env);
      if (!t->is(TypeKind::Sum)) fail("case of non-sum " + t->show(), *m);
      TypeEnv env1 = env;
      env1[m->binder1()] = t->left();
      TypeRef t1 = check_term(m->branch1(), env1);
      TypeEnv env2 = env;
      env2[m->binder2()] = t->right();
      TypeRef t2 = check_term(m->branch2(), env2);
      if (!Type::equal(t1, t2)) {
        fail("case branches disagree: " + t1->show() + " vs " + t2->show(),
             *m);
      }
      return t1;
    }
    case TermKind::Apply: {
      auto [dom, cod] = check_func(m->fn(), env);
      TypeRef arg = check_term(m->child0(), env);
      if (!Type::equal(dom, arg)) {
        fail("application: expected " + dom->show() + ", got " + arg->show(),
             *m);
      }
      return cod;
    }
    case TermKind::Empty:
      return Type::seq(m->annotation());
    case TermKind::Singleton:
      return Type::seq(check_term(m->child0(), env));
    case TermKind::Append: {
      TypeRef a = check_term(m->child0(), env);
      TypeRef b = check_term(m->child1(), env);
      expect_seq(a, *m, "@ lhs");
      if (!Type::equal(a, b)) {
        fail("@: mismatched " + a->show() + " vs " + b->show(), *m);
      }
      return a;
    }
    case TermKind::Flatten: {
      TypeRef t = check_term(m->child0(), env);
      TypeRef inner = expect_seq(t, *m, "flatten");
      expect_seq(inner, *m, "flatten (inner)");
      return inner;
    }
    case TermKind::Length:
      expect_seq(check_term(m->child0(), env), *m, "length");
      return Type::nat();
    case TermKind::Get:
      return expect_seq(check_term(m->child0(), env), *m, "get");
    case TermKind::Zip: {
      TypeRef a = check_term(m->child0(), env);
      TypeRef b = check_term(m->child1(), env);
      return Type::seq(Type::prod(expect_seq(a, *m, "zip lhs"),
                                  expect_seq(b, *m, "zip rhs")));
    }
    case TermKind::Enumerate:
      expect_seq(check_term(m->child0(), env), *m, "enumerate");
      return Type::seq(Type::nat());
    case TermKind::Split: {
      TypeRef a = check_term(m->child0(), env);
      TypeRef b = check_term(m->child1(), env);
      expect_seq(a, *m, "split data");
      TypeRef be = expect_seq(b, *m, "split sizes");
      expect_nat(be, *m, "split sizes element");
      return Type::seq(a);
    }
  }
  throw TypeError("unknown term kind");
}

std::pair<TypeRef, TypeRef> check_func(const FuncRef& f, const TypeEnv& env) {
  switch (f->kind()) {
    case FuncKind::Lambda: {
      TypeEnv inner = env;
      inner[f->param()] = f->param_type();
      TypeRef cod = check_term(f->body(), inner);
      return {f->param_type(), cod};
    }
    case FuncKind::Map: {
      auto [dom, cod] = check_func(f->inner(), env);
      return {Type::seq(dom), Type::seq(cod)};
    }
    case FuncKind::While: {
      auto [pdom, pcod] = check_func(f->pred(), env);
      auto [fdom, fcod] = check_func(f->inner(), env);
      if (!pcod->is_boolean()) {
        throw TypeError("while predicate must return B, got " + pcod->show());
      }
      if (!Type::equal(pdom, fdom) || !Type::equal(fdom, fcod)) {
        throw TypeError("while: predicate " + pdom->show() + " and body " +
                        fdom->show() + " -> " + fcod->show() +
                        " must agree on one type t");
      }
      return {fdom, fcod};
    }
  }
  throw TypeError("unknown function kind");
}

}  // namespace nsc::lang
