#include "nsc/eval.hpp"

#include <algorithm>

#include "support/checked.hpp"

namespace nsc::lang {

// ---------------------------------------------------------------------------
// Env
// ---------------------------------------------------------------------------

Env Env::extend(const std::string& name, ValueRef v) const {
  Env out = *this;
  for (auto& b : out.bindings_) {
    if (b.first == name) {
      out.size_ = sat_add(monus(out.size_, b.second->size()), v->size());
      b.second = std::move(v);
      return out;
    }
  }
  out.size_ = sat_add(out.size_, v->size());
  out.bindings_.emplace_back(name, std::move(v));
  return out;
}

const ValueRef& Env::lookup(const std::string& name) const {
  for (const auto& b : bindings_) {
    if (b.first == name) return b.second;
  }
  throw EvalError("unbound variable " + name);
}

// ---------------------------------------------------------------------------
// Evaluator
// ---------------------------------------------------------------------------

void Evaluator::tick() {
  if (++steps_ > cfg_.max_steps) {
    throw FuelExhausted("NSC evaluation exceeded " +
                        std::to_string(cfg_.max_steps) + " rule instances");
  }
}

Evaluated Evaluator::eval(const TermRef& m, const Env& env) {
  steps_ = 0;
  return eval_term(m, env);
}

Evaluated Evaluator::apply(const FuncRef& f, const ValueRef& arg,
                           const Env& env) {
  steps_ = 0;
  return apply_func(f, arg, env);
}

namespace {

/// Charge for a term judgment: the result flowing out of the rule.
/// (Environment values are charged at their Var lookups; see eval.hpp.)
std::uint64_t judgment_size(const Env& env, const ValueRef& result) {
  (void)env;
  return result->size();
}

}  // namespace

Evaluated Evaluator::eval_term(const TermRef& m, const Env& env) {
  tick();
  switch (m->kind()) {
    case TermKind::Var: {
      ValueRef v = env.lookup(m->var_name());
      const std::uint64_t size = judgment_size(env, v);
      return {std::move(v), {1, size}};
    }
    case TermKind::Omega:
      throw EvalError("omega evaluated");
    case TermKind::NatConst: {
      ValueRef v = Value::nat(m->nat_value());
      Cost c{1, judgment_size(env, v)};
      return {std::move(v), c};
    }
    case TermKind::Arith: {
      Evaluated a = eval_term(m->child0(), env);
      Evaluated b = eval_term(m->child1(), env);
      ValueRef v =
          Value::nat(arith_apply(m->op(), a.value->as_nat(), b.value->as_nat()));
      Cost c{1, judgment_size(env, v)};
      c += a.cost;
      c += b.cost;
      return {std::move(v), c};
    }
    case TermKind::Eq: {
      Evaluated a = eval_term(m->child0(), env);
      Evaluated b = eval_term(m->child1(), env);
      ValueRef v = Value::boolean(a.value->as_nat() == b.value->as_nat());
      Cost c{1, judgment_size(env, v)};
      c += a.cost;
      c += b.cost;
      return {std::move(v), c};
    }
    case TermKind::UnitVal: {
      ValueRef v = Value::unit();
      return {v, {1, judgment_size(env, v)}};
    }
    case TermKind::MkPair: {
      Evaluated a = eval_term(m->child0(), env);
      Evaluated b = eval_term(m->child1(), env);
      ValueRef v = Value::pair(a.value, b.value);
      Cost c{1, judgment_size(env, v)};
      c += a.cost;
      c += b.cost;
      return {std::move(v), c};
    }
    case TermKind::Proj1: {
      Evaluated a = eval_term(m->child0(), env);
      ValueRef v = a.value->first();
      Cost c{1, judgment_size(env, v)};
      c += a.cost;
      return {std::move(v), c};
    }
    case TermKind::Proj2: {
      Evaluated a = eval_term(m->child0(), env);
      ValueRef v = a.value->second();
      Cost c{1, judgment_size(env, v)};
      c += a.cost;
      return {std::move(v), c};
    }
    case TermKind::Inj1: {
      Evaluated a = eval_term(m->child0(), env);
      ValueRef v = Value::in1(a.value);
      Cost c{1, judgment_size(env, v)};
      c += a.cost;
      return {std::move(v), c};
    }
    case TermKind::Inj2: {
      Evaluated a = eval_term(m->child0(), env);
      ValueRef v = Value::in2(a.value);
      Cost c{1, judgment_size(env, v)};
      c += a.cost;
      return {std::move(v), c};
    }
    case TermKind::Case: {
      Evaluated scrut = eval_term(m->child0(), env);
      const bool left = scrut.value->is(ValueKind::In1);
      if (!left && !scrut.value->is(ValueKind::In2)) {
        throw EvalError("case of non-sum " + scrut.value->show());
      }
      const std::string& binder = left ? m->binder1() : m->binder2();
      const TermRef& branch = left ? m->branch1() : m->branch2();
      Env inner = env.extend(binder, scrut.value->injected());
      Evaluated r = eval_term(branch, inner);
      Cost c{1, judgment_size(env, r.value)};
      c += scrut.cost;
      c += r.cost;
      return {std::move(r.value), c};
    }
    case TermKind::Apply: {
      Evaluated a = eval_term(m->child0(), env);
      Evaluated r = apply_func(m->fn(), a.value, env);
      Cost c{1, judgment_size(env, r.value)};
      c += a.cost;
      c += r.cost;
      return {std::move(r.value), c};
    }
    case TermKind::Empty: {
      ValueRef v = Value::empty_seq();
      return {v, {1, judgment_size(env, v)}};
    }
    case TermKind::Singleton: {
      Evaluated a = eval_term(m->child0(), env);
      ValueRef v = Value::seq({a.value});
      Cost c{1, judgment_size(env, v)};
      c += a.cost;
      return {std::move(v), c};
    }
    case TermKind::Append: {
      Evaluated a = eval_term(m->child0(), env);
      Evaluated b = eval_term(m->child1(), env);
      std::vector<ValueRef> elems = a.value->elems();
      const auto& more = b.value->elems();
      elems.insert(elems.end(), more.begin(), more.end());
      ValueRef v = Value::seq(std::move(elems));
      Cost c{1, judgment_size(env, v)};
      c += a.cost;
      c += b.cost;
      return {std::move(v), c};
    }
    case TermKind::Flatten: {
      Evaluated a = eval_term(m->child0(), env);
      std::vector<ValueRef> elems;
      for (const auto& inner : a.value->elems()) {
        const auto& es = inner->elems();
        elems.insert(elems.end(), es.begin(), es.end());
      }
      ValueRef v = Value::seq(std::move(elems));
      Cost c{1, judgment_size(env, v)};
      c += a.cost;
      return {std::move(v), c};
    }
    case TermKind::Length: {
      Evaluated a = eval_term(m->child0(), env);
      ValueRef v = Value::nat(a.value->length());
      Cost c{1, judgment_size(env, v)};
      c += a.cost;
      return {std::move(v), c};
    }
    case TermKind::Get: {
      Evaluated a = eval_term(m->child0(), env);
      if (a.value->length() != 1) {
        throw EvalError("get of non-singleton " + a.value->show());
      }
      ValueRef v = a.value->elems()[0];
      Cost c{1, judgment_size(env, v)};
      c += a.cost;
      return {std::move(v), c};
    }
    case TermKind::Zip: {
      Evaluated a = eval_term(m->child0(), env);
      Evaluated b = eval_term(m->child1(), env);
      const auto& xs = a.value->elems();
      const auto& ys = b.value->elems();
      if (xs.size() != ys.size()) {
        throw EvalError("zip of lengths " + std::to_string(xs.size()) +
                        " and " + std::to_string(ys.size()));
      }
      std::vector<ValueRef> elems;
      elems.reserve(xs.size());
      for (std::size_t i = 0; i < xs.size(); ++i) {
        elems.push_back(Value::pair(xs[i], ys[i]));
      }
      ValueRef v = Value::seq(std::move(elems));
      Cost c{1, judgment_size(env, v)};
      c += a.cost;
      c += b.cost;
      return {std::move(v), c};
    }
    case TermKind::Enumerate: {
      Evaluated a = eval_term(m->child0(), env);
      std::vector<ValueRef> elems;
      elems.reserve(a.value->length());
      for (std::size_t i = 0; i < a.value->length(); ++i) {
        elems.push_back(Value::nat(i));
      }
      ValueRef v = Value::seq(std::move(elems));
      Cost c{1, judgment_size(env, v)};
      c += a.cost;
      return {std::move(v), c};
    }
    case TermKind::Split: {
      Evaluated a = eval_term(m->child0(), env);
      Evaluated b = eval_term(m->child1(), env);
      const auto& xs = a.value->elems();
      std::vector<ValueRef> groups;
      std::size_t at = 0;
      for (const auto& sz : b.value->elems()) {
        const std::uint64_t n = sz->as_nat();
        if (at + n > xs.size()) {
          throw EvalError("split: sizes sum past the data length");
        }
        groups.push_back(Value::seq(
            std::vector<ValueRef>(xs.begin() + at, xs.begin() + at + n)));
        at += n;
      }
      if (at != xs.size()) {
        throw EvalError("split: sizes sum to " + std::to_string(at) +
                        " but data has length " + std::to_string(xs.size()));
      }
      ValueRef v = Value::seq(std::move(groups));
      Cost c{1, judgment_size(env, v)};
      c += a.cost;
      c += b.cost;
      return {std::move(v), c};
    }
  }
  throw EvalError("unknown term kind");
}

Evaluated Evaluator::apply_func(const FuncRef& f, const ValueRef& arg,
                                const Env& env) {
  tick();
  switch (f->kind()) {
    case FuncKind::Lambda: {
      Env inner = env.extend(f->param(), arg);
      Evaluated r = eval_term(f->body(), inner);
      // Judgment rho . F(C) | D mentions rho, C and D.
      Cost c{1, sat_add(judgment_size(env, r.value), arg->size())};
      c += r.cost;
      return {std::move(r.value), c};
    }
    case FuncKind::Map: {
      const auto& xs = arg->elems();
      std::vector<ValueRef> out;
      out.reserve(xs.size());
      Cost c{1, 0};
      std::uint64_t tmax = 0;
      std::uint64_t out_size = 1;
      for (const auto& x : xs) {
        Evaluated r = apply_func(f->inner(), x, env);
        tmax = std::max(tmax, r.cost.time);
        c.work = sat_add(c.work, r.cost.work);
        out_size = sat_add(out_size, r.value->size());
        out.push_back(std::move(r.value));
      }
      // T = 1 + max_i T(F, C_i); SIZE charges the conclusion judgment
      // (input sequence + output sequence).
      c.time = sat_add(c.time, tmax);
      c.work = sat_add(c.work, sat_add(arg->size(), out_size));
      return {Value::seq(std::move(out)), c};
    }
    case FuncKind::While: {
      // Iterative transcription of the two while rules; each iteration
      // charges size(C_k) + size(C_{k+1}) + env, and the final output is
      // never re-charged (Definition 3.1's while exception).
      ValueRef cur = arg;
      Cost total{0, 0};
      for (;;) {
        tick();
        Evaluated p = apply_func(f->pred(), cur, env);
        if (!p.value->as_bool()) {
          total.time = sat_add(total.time, sat_add(1, p.cost.time));
          total.work =
              sat_add(total.work, sat_add(p.cost.work, cur->size()));
          return {std::move(cur), total};
        }
        Evaluated step = apply_func(f->inner(), cur, env);
        total.time =
            sat_add(total.time, sat_add(1, sat_add(p.cost.time, step.cost.time)));
        total.work = sat_add(
            total.work,
            sat_add(sat_add(p.cost.work, step.cost.work),
                    sat_add(cur->size(), step.value->size())));
        cur = std::move(step.value);
      }
    }
  }
  throw EvalError("unknown function kind");
}

Evaluated eval(const TermRef& m, const Env& env) {
  Evaluator ev;
  return ev.eval(m, env);
}

Evaluated apply_fn(const FuncRef& f, const ValueRef& arg, const Env& env) {
  Evaluator ev;
  return ev.apply(f, arg, env);
}

}  // namespace nsc::lang
