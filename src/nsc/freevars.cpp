#include "nsc/freevars.hpp"

namespace nsc::lang {

namespace {

void collect_term(const TermRef& m, std::set<std::string>& out);
void collect_func(const FuncRef& f, std::set<std::string>& out);

void collect_term(const TermRef& m, std::set<std::string>& out) {
  if (!m) return;
  switch (m->kind()) {
    case TermKind::Var:
      out.insert(m->var_name());
      return;
    case TermKind::Case: {
      collect_term(m->child0(), out);
      std::set<std::string> b1;
      collect_term(m->branch1(), b1);
      b1.erase(m->binder1());
      out.insert(b1.begin(), b1.end());
      std::set<std::string> b2;
      collect_term(m->branch2(), b2);
      b2.erase(m->binder2());
      out.insert(b2.begin(), b2.end());
      return;
    }
    case TermKind::Apply:
      collect_func(m->fn(), out);
      collect_term(m->child0(), out);
      return;
    default:
      collect_term(m->child0(), out);
      collect_term(m->child1(), out);
      return;
  }
}

void collect_func(const FuncRef& f, std::set<std::string>& out) {
  if (!f) return;
  switch (f->kind()) {
    case FuncKind::Lambda: {
      std::set<std::string> body;
      collect_term(f->body(), body);
      body.erase(f->param());
      out.insert(body.begin(), body.end());
      return;
    }
    case FuncKind::Map:
      collect_func(f->inner(), out);
      return;
    case FuncKind::While:
      collect_func(f->pred(), out);
      collect_func(f->inner(), out);
      return;
  }
}

}  // namespace

std::set<std::string> free_vars(const TermRef& m) {
  std::set<std::string> out;
  collect_term(m, out);
  return out;
}

std::set<std::string> free_vars(const FuncRef& f) {
  std::set<std::string> out;
  collect_func(f, out);
  return out;
}

}  // namespace nsc::lang
