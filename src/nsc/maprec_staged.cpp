// Staged variant of the Theorem 4.2 translation.
//
// Structure (see maprec.hpp for the overview):
//
//  * Items are bare values of type s + unit (real subproblem / padding
//    dummy).  No (depth, key) tags are needed: the divide phase pads every
//    expansion to exactly A = max_arity children, so level L of the
//    recursion tree is a complete A-ary level and positions alone identify
//    siblings.  This also removes the 64-bit path-key depth limit of the
//    non-staged translation.
//
//  * Divide: each round applies p to the active items once, extracts the
//    finished ones (solved with s on the way out) into a *chunk* together
//    with their positions in this round's sequence, and divides the
//    survivors.  One chunk per level is pushed onto a stack of chunks.
//
//  * The chunk stack is held in a cascade of tiers z_0 .. z_R (R =
//    ceil(1/eps)), where tier z_j lives in the state of the j-th of a nest
//    of while loops.  Because Definition 3.1 charges a while iteration with
//    the size of its own loop state only, z_j is charged only once per
//    iteration of loop j -- i.e. once per ~u^j divide rounds, u = v^eps
//    (v = number of leaf-bearing levels, measured by a dry run, as in the
//    paper).  This is exactly the paper's "z_i may only be touched v^eps
//    times" schedule, realized with loop nesting instead of mutation.
//
//  * Combine: mirror image.  Loop 0 pops the newest chunk, re-interleaves
//    it with the parents carried up from the previous level using the
//    positional Example D.1-style merge (index_split + weave, O(1) time),
//    and folds each block of A adjacent items with c.  Outer loop j refills
//    z_{j-1} with the newest u^j chunks of z_j after draining the inner
//    loops.
#include <functional>
#include <vector>

#include "nsc/build.hpp"
#include "nsc/maprec.hpp"
#include "nsc/prelude.hpp"
#include "support/error.hpp"

namespace nsc::lang {

namespace {

const TypeRef& nat_t() {
  static const TypeRef t = Type::nat();
  return t;
}

struct StagedShapes {
  TypeRef s, t;
  TypeRef sval;     // s + unit
  TypeRef tval;     // t + unit
  TypeRef pitem;    // N x tval  (position, solved value)
  TypeRef chunk;    // [pitem]
  TypeRef stack;    // [[pitem]]
  std::uint64_t arity;
  std::size_t tiers;  // number of buffer tiers z_0 .. z_{tiers-1}
};

StagedShapes make_staged_shapes(const MapRec& f, nsc::Rational eps) {
  StagedShapes sh;
  sh.s = f.dom;
  sh.t = f.cod;
  sh.sval = Type::sum(f.dom, Type::unit());
  sh.tval = Type::sum(f.cod, Type::unit());
  sh.pitem = Type::prod(nat_t(), sh.tval);
  sh.chunk = Type::seq(sh.pitem);
  sh.stack = Type::seq(sh.chunk);
  // At least 2 (unary recursions get a dummy sibling) so that the root
  // level -- the only level of length 1 -- is the only unfoldable one.
  sh.arity = f.max_arity < 2 ? 2 : f.max_arity;
  std::size_t r = static_cast<std::size_t>(nsc::stage_count(eps));
  if (r < 1) r = 1;
  if (r > 8) r = 8;  // eps below 1/8 changes only constants here
  sh.tiers = r + 1;
  return sh;
}

/// is_finished : sval -> B -- dummies are finished; reals ask p.
FuncRef make_is_finished(const MapRec& f, const StagedShapes& sh) {
  return lam(
      sh.sval,
      [&](TermRef v) {
        const std::string xv = gensym("xv");
        const std::string uv = gensym("uv");
        return case_of(v, xv, apply(f.p, var(xv)), uv, tru());
      },
      "v");
}

/// solve : sval -> tval -- apply s to reals, keep dummies.
FuncRef make_solve(const MapRec& f, const StagedShapes& sh) {
  return lam(
      sh.sval,
      [&](TermRef v) {
        const std::string xv = gensym("xv");
        const std::string uv = gensym("uv");
        return case_of(v, xv, inj1(apply(f.s, var(xv)), Type::unit()), uv,
                       inj2(unit_v(), sh.t));
      },
      "v");
}

/// expand : sval -> [sval] -- divide a surviving (real, non-leaf) item into
/// its children, padded with dummies to exactly A items.
FuncRef make_expand(const MapRec& f, const StagedShapes& sh) {
  return lam(
      sh.sval,
      [&](TermRef v) {
        const std::string xv = gensym("xv");
        const std::string uv = gensym("uv");
        TermRef divide = let_in(
            Type::seq(sh.s), apply(f.d, var(xv)), [&](TermRef kids) {
              return let_in(nat_t(), length(kids), [&](TermRef m) {
                FuncRef wrap = lam(
                    sh.s,
                    [&](TermRef k) { return inj1(k, Type::unit()); }, "k");
                TermRef reals = apply(map_f(wrap), kids);
                std::vector<std::uint64_t> all_idx(sh.arity);
                for (std::uint64_t j = 0; j < sh.arity; ++j) all_idx[j] = j;
                FuncRef is_pad =
                    lam(nat_t(), [&](TermRef j) { return leq(m, j); }, "j");
                FuncRef mk_dummy = lam(
                    nat_t(),
                    [&](TermRef) { return inj2(unit_v(), sh.s); }, "j");
                TermRef dummies =
                    apply(map_f(mk_dummy),
                          apply(prelude::filter(is_pad, nat_t()),
                                nat_list(all_idx)));
                TermRef ok = land(leq(nat(1), m), leq(m, nat(sh.arity)));
                return ite(ok, append(reals, dummies),
                           omega(Type::seq(sh.sval)));
              });
            });
        return case_of(v, xv, divide, uv, omega(Type::seq(sh.sval)));
      },
      "v");
}

/// interleave(w : [tval], chunk : [pitem]) -> [tval]: positional merge.
/// Chunk item i carries its position p_i within the target sequence; the
/// cut points in w are q_i = p_i - i (Example D.1 / index_split weave).
TermRef interleave(const StagedShapes& sh, TermRef w, TermRef chunk) {
  return let_in(
      sh.chunk, std::move(chunk),
      [&, w](TermRef ch) {
        FuncRef pos_of =
            lam(sh.pitem, [](TermRef q) { return proj1(q); }, "q");
        TermRef P = apply(map_f(pos_of), ch);
        FuncRef cut = lam(
            Type::prod(nat_t(), nat_t()),
            [](TermRef q) { return monus_t(proj2(q), proj1(q)); }, "q");
        TermRef Q = apply(map_f(cut), zip(enumerate(ch), P));
        return let_in(
            Type::seq(Type::seq(sh.tval)),
            apply(prelude::index_split(sh.tval), pair(w, Q)),
            [&](TermRef blocks) {
              FuncRef weave = lam(
                  Type::prod(Type::seq(sh.tval), sh.pitem),
                  [&](TermRef q) {
                    return append(proj1(q), singleton(proj2(proj2(q))));
                  },
                  "q");
              TermRef body = flatten(apply(
                  map_f(weave),
                  zip(apply(prelude::remove_last(Type::seq(sh.tval)), blocks),
                      ch)));
              return append(body,
                            apply(prelude::last(Type::seq(sh.tval)), blocks));
            },
            "blocks");
      },
      "ch");
}

/// fold_level(wf : [tval]) -> [tval]: fold each block of A adjacent items
/// with c (dummies dropped by sigma1).  Only called when length(wf) > 1.
TermRef fold_level(const MapRec& f, const StagedShapes& sh, TermRef wf) {
  return let_in(
      Type::seq(sh.tval), std::move(wf),
      [&](TermRef w) {
        FuncRef at_start = lam(
            nat_t(),
            [&](TermRef i) {
              return eq(mod_t(i, nat(sh.arity)), nat(0));
            },
            "i");
        TermRef starts =
            apply(prelude::filter(at_start, nat_t()), enumerate(w));
        FuncRef const_a =
            lam(nat_t(), [&](TermRef) { return nat(sh.arity); }, "i");
        TermRef sizes = apply(map_f(const_a), starts);
        TermRef groups = split(w, sizes);
        FuncRef fold = lam(
            Type::seq(sh.tval),
            [&](TermRef g) {
              TermRef reals =
                  apply(prelude::sigma1(sh.t, Type::unit()), g);
              return inj1(apply(f.c, reals), Type::unit());
            },
            "g");
        return apply(map_f(fold), groups);
      },
      "w");
}

/// u^(j+1) as a term over the captured threshold variable u.
TermRef upow(TermRef u, std::size_t exp) {
  TermRef acc = u;
  for (std::size_t i = 1; i < exp; ++i) acc = mul(acc, u);
  return acc;
}

/// Divide state types: st_0 = [sval] x stack; st_j = stack x st_{j-1}.
std::vector<TypeRef> divide_state_types(const StagedShapes& sh) {
  std::vector<TypeRef> ts(sh.tiers);
  ts[0] = Type::prod(Type::seq(sh.sval), sh.stack);
  for (std::size_t j = 1; j < sh.tiers; ++j) {
    ts[j] = Type::prod(sh.stack, ts[j - 1]);
  }
  return ts;
}

/// Combine state types: cst_0 = [tval] x stack; cst_j = stack x cst_{j-1}.
std::vector<TypeRef> combine_state_types(const StagedShapes& sh) {
  std::vector<TypeRef> ts(sh.tiers);
  ts[0] = Type::prod(Type::seq(sh.tval), sh.stack);
  for (std::size_t j = 1; j < sh.tiers; ++j) {
    ts[j] = Type::prod(sh.stack, ts[j - 1]);
  }
  return ts;
}

/// Project the innermost core (st_0 / cst_0) out of a tier-j state term.
TermRef core_of(TermRef st, std::size_t j) {
  TermRef cur = std::move(st);
  for (std::size_t i = 0; i < j; ++i) cur = proj2(cur);
  return cur;
}

/// active (or w) component of a tier-j state term.
TermRef head_of(TermRef st, std::size_t j) { return proj1(core_of(std::move(st), j)); }

/// "Some tier z_0..z_j of this state is non-empty" predicate term.
TermRef any_stack_nonempty(TermRef st, std::size_t j) {
  // z_j is proj1 at each level except level 0 where it's proj2 of the core.
  TermRef cond = lt(nat(0), length(proj2(core_of(st, j))));  // z_0
  TermRef cur = st;
  for (std::size_t lvl = j; lvl >= 1; --lvl) {
    cond = lor(lt(nat(0), length(proj1(cur))), cond);  // z_lvl
    cur = proj2(cur);
  }
  return cond;
}

}  // namespace

FuncRef translate_maprec_staged(const MapRec& f,
                                const MapRecTranslateOptions& opts) {
  const StagedShapes sh = make_staged_shapes(f, opts.eps);
  const std::vector<TypeRef> dst = divide_state_types(sh);
  const std::vector<TypeRef> cst = combine_state_types(sh);

  FuncRef is_finished = make_is_finished(f, sh);
  FuncRef solve = make_solve(f, sh);
  FuncRef expand = make_expand(f, sh);

  const TypeRef marked_t = Type::prod(sh.sval, Type::boolean());
  const TypeRef tagged_t = Type::prod(nat_t(), marked_t);

  // One divide round over (active, z_0); shared by the dry run (which
  // discards chunks) and the real loop.
  auto divide_round = [&](TermRef active,
                          const std::function<TermRef(TermRef, TermRef)>&
                              finish) {
    // finish(children, chunk) assembles the new state.
    return let_in(
        Type::seq(sh.sval), std::move(active), [&](TermRef act) {
          return let_in(
              Type::seq(tagged_t),
              zip(enumerate(act), zip(act, apply(map_f(is_finished), act))),
              [&](TermRef tagged) {
                FuncRef flag_of = lam(
                    tagged_t,
                    [](TermRef q) { return proj2(proj2(q)); }, "q");
                FuncRef not_flag = lam(
                    tagged_t,
                    [](TermRef q) { return lnot(proj2(proj2(q))); }, "q");
                FuncRef to_pitem = lam(
                    tagged_t,
                    [&](TermRef q) {
                      return pair(proj1(q),
                                  apply(solve, proj1(proj2(q))));
                    },
                    "q");
                FuncRef to_sval = lam(
                    tagged_t,
                    [](TermRef q) { return proj1(proj2(q)); }, "q");
                TermRef chunk = apply(
                    map_f(to_pitem),
                    apply(prelude::filter(flag_of, tagged_t), tagged));
                TermRef survivors = apply(
                    map_f(to_sval),
                    apply(prelude::filter(not_flag, tagged_t), tagged));
                TermRef children =
                    flatten(apply(map_f(expand), survivors));
                return finish(children, chunk);
              },
              "tagged");
        },
        "act");
  };

  // -- dry run: count leaf-bearing levels v ------------------------------
  const TypeRef dry_t = Type::prod(Type::seq(sh.sval), nat_t());
  FuncRef dry_pred = lam(
      dry_t, [&](TermRef st) { return lt(nat(0), length(proj1(st))); }, "st");
  FuncRef dry_body = lam(
      dry_t,
      [&](TermRef st) {
        return divide_round(proj1(st), [&](TermRef children, TermRef chunk) {
          TermRef bump = ite(lt(nat(0), length(chunk)), nat(1), nat(0));
          return pair(children, add(proj2(st), bump));
        });
      },
      "st");

  // -- u = 2^ceil(eps * log2 v), computed by a doubling loop --------------
  const TypeRef dbl_t = Type::prod(nat_t(), nat_t());
  FuncRef dbl_pred = lam(
      dbl_t, [](TermRef st) { return lt(nat(0), proj1(st)); }, "st");
  FuncRef dbl_body = lam(
      dbl_t,
      [](TermRef st) {
        return pair(monus_t(proj1(st), nat(1)), mul(proj2(st), nat(2)));
      },
      "st");

  return lam(
      sh.s,
      [&](TermRef x) {
        TermRef active0 = singleton(inj1(x, Type::unit()));
        TermRef v_term = proj2(apply(while_f(dry_pred, dry_body),
                                     pair(active0, nat(0))));
        return let_in(nat_t(), v_term, [&](TermRef v) {
          TermRef exp = div_t(
              add(mul(nat(opts.eps.num), log2_t(v)), nat(opts.eps.den - 1)),
              nat(opts.eps.den));
          TermRef u_raw =
              proj2(apply(while_f(dbl_pred, dbl_body), pair(exp, nat(1))));
          return let_in(nat_t(), ite(lt(u_raw, nat(2)), nat(2), u_raw),
                        [&](TermRef u) {
            // -- divide loop nest (captures u) --------------------------
            // Loop 0: run rounds until quota (|z_0| >= u) or active empty.
            FuncRef d_pred0 = lam(
                dst[0],
                [&](TermRef st) {
                  return land(lt(nat(0), length(proj1(st))),
                              lt(length(proj2(st)), u));
                },
                "st");
            FuncRef d_body0 = lam(
                dst[0],
                [&](TermRef st) {
                  return divide_round(
                      proj1(st), [&](TermRef children, TermRef chunk) {
                        return pair(children,
                                    append(proj2(st), singleton(chunk)));
                      });
                },
                "st");
            FuncRef d_loop = while_f(d_pred0, d_body0);

            // Loop j: drain loop j-1, then flush z_{j-1} into z_j; stop
            // when |z_j| reaches u^{j+1} or the active set is empty.
            for (std::size_t j = 1; j < sh.tiers; ++j) {
              FuncRef inner = d_loop;
              const bool top = (j == sh.tiers - 1);
              FuncRef pred = lam(
                  dst[j],
                  [&](TermRef st) {
                    TermRef nonempty = lt(nat(0), length(head_of(st, j)));
                    if (top) return nonempty;
                    return land(nonempty,
                                lt(length(proj1(st)), upow(u, j + 1)));
                  },
                  "st");
              FuncRef body = lam(
                  dst[j],
                  [&](TermRef st) {
                    return let_in(
                        dst[j - 1], apply(inner, proj2(st)),
                        [&](TermRef drained) {
                          // z_{j-1} is proj2 of the core for j-1 == 0,
                          // else proj1.
                          TermRef zlow = (j - 1 == 0) ? proj2(drained)
                                                      : proj1(drained);
                          TermRef znew = append(proj1(st), zlow);
                          TermRef cleared =
                              (j - 1 == 0)
                                  ? pair(proj1(drained), empty(sh.chunk))
                                  : pair(empty(sh.chunk), proj2(drained));
                          return pair(znew, cleared);
                        },
                        "dr");
                  },
                  "st");
              d_loop = while_f(pred, body);
            }

            // Initial divide state: active = [in1 x], all tiers empty.
            TermRef d_init = pair(active0, empty(sh.chunk));
            for (std::size_t j = 1; j < sh.tiers; ++j) {
              d_init = pair(empty(sh.chunk), d_init);
            }

            return let_in(dst[sh.tiers - 1], apply(d_loop, d_init),
                          [&](TermRef dfin) {
              // -- combine loop nest -----------------------------------
              FuncRef c_pred0 = lam(
                  cst[0],
                  [&](TermRef st) {
                    return lt(nat(0), length(proj2(st)));
                  },
                  "st");
              FuncRef c_body0 = lam(
                  cst[0],
                  [&](TermRef st) {
                    return let_in(
                        sh.chunk,
                        apply(prelude::last(sh.chunk), proj2(st)),
                        [&](TermRef chunk) {
                          TermRef rest = apply(
                              prelude::remove_last(sh.chunk), proj2(st));
                          return let_in(
                              Type::seq(sh.tval),
                              interleave(sh, proj1(st), chunk),
                              [&](TermRef wf) {
                                TermRef w2 =
                                    ite(eq(length(wf), nat(1)), wf,
                                        fold_level(f, sh, wf));
                                return pair(w2, rest);
                              },
                              "wf");
                        },
                        "chunk");
                  },
                  "st");
              FuncRef c_loop = while_f(c_pred0, c_body0);

              for (std::size_t j = 1; j < sh.tiers; ++j) {
                FuncRef inner = c_loop;
                FuncRef pred = lam(
                    cst[j],
                    [&](TermRef st) { return any_stack_nonempty(st, j); },
                    "st");
                FuncRef body = lam(
                    cst[j],
                    [&](TermRef st) {
                      return let_in(
                          cst[j - 1], apply(inner, proj2(st)),
                          [&](TermRef drained) {
                            // Pull the newest min(u^j, |z_j|) chunks of
                            // z_j down into z_{j-1}.
                            return let_in(
                                nat_t(), length(proj1(st)), [&](TermRef len) {
                                  TermRef k0 = upow(u, j);
                                  TermRef k =
                                      ite(leq(k0, len), k0, len);
                                  TermRef sizes = append(
                                      singleton(monus_t(len, k)),
                                      singleton(k));
                                  return let_in(
                                      Type::seq(sh.stack),
                                      split(proj1(st), sizes),
                                      [&](TermRef parts) {
                                        TermRef older = apply(
                                            prelude::first(sh.stack), parts);
                                        TermRef newer = apply(
                                            prelude::last(sh.stack), parts);
                                        TermRef refilled =
                                            (j - 1 == 0)
                                                ? pair(proj1(drained), newer)
                                                : pair(newer, proj2(drained));
                                        return pair(older, refilled);
                                      },
                                      "parts");
                                });
                          },
                          "dr");
                    },
                    "st");
                c_loop = while_f(pred, body);
              }

              // Rewrap the final divide state into the initial combine
              // state: same tiers, active replaced by w = [].
              std::function<TermRef(TermRef, std::size_t)> rewrap =
                  [&](TermRef st, std::size_t j) -> TermRef {
                if (j == 0) {
                  return pair(empty(sh.tval), proj2(st));
                }
                return pair(proj1(st), rewrap(proj2(st), j - 1));
              };
              TermRef c_init = rewrap(dfin, sh.tiers - 1);

              TermRef cfin = apply(c_loop, c_init);
              TermRef w = head_of(cfin, sh.tiers - 1);
              const std::string r = gensym("r");
              const std::string uu = gensym("u");
              return case_of(get(w), r, var(r), uu, omega(sh.t));
            },
                          "dfin");
          },
                        "u");
        },
                      "v");
      },
      "x");
}

}  // namespace nsc::lang
