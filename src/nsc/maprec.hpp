// Map-recursion (Definition 4.1) and its translation into NSC
// (Theorem 4.2, the paper's first main result).
//
// A map-recursive definition has the shape
//
//     fun f(x) = if p(x) then s(x) else c(map(f)(d(x)))
//
// with p : s -> B, s : s -> t, d : s -> [s] (the divide step, producing at
// most `max_arity` subproblems) and c : [t] -> t (the combine step).  The
// section 4 schemas g (binary divide and conquer), h (unary / tail
// recursion) and k (2-or-3-way) all fit this shape.
//
// The translation realizes the proof of Theorem 4.2:
//
//  * Divide phase: iterate  flatten . map(expand)  on a work sequence of
//    tagged items until every item is a leaf.  Items carry (depth, path key)
//    tags; expanding a node creates its children with keys key*A + i, padded
//    with dummy items up to arity A so that sibling groups always have
//    exactly A adjacent members (this padding replaces the paper's "some
//    additional bookkeeping" with a locally decidable grouping rule and only
//    costs a constant factor A in work).
//  * Combine phase: apply s to every leaf in parallel, then walk levels
//    L = D .. 1; at each level, adjacent complete sibling groups (recognized
//    locally by depth = L and key mod A = 0) are split out and combined with
//    c in one parallel step.
//
// Both phases take O(1) NSC steps per level plus the costs of p/s/d/c, so
// the translated program preserves T up to constants.  For balanced
// divide-and-conquer trees it also preserves W; for unbalanced trees the
// non-staged translation re-touches early leaves at every later round (the
// overhead Theorem 4.2 removes with the staged z_i buffers -- implemented
// as the `staged` option, see translate notes and bench_maprec).
#pragma once

#include <cstdint>
#include <functional>

#include "nsc/ast.hpp"
#include "nsc/eval.hpp"
#include "support/checked.hpp"

namespace nsc::lang {

/// Definition 4.1.  All four pieces are closed NSC functions.
struct MapRec {
  TypeRef dom;  ///< s
  TypeRef cod;  ///< t
  FuncRef p;    ///< s -> B : "is this a leaf problem?"
  FuncRef s;    ///< s -> t : solve a leaf directly
  FuncRef d;    ///< s -> [s] : divide into <= max_arity subproblems
  FuncRef c;    ///< [t] -> t : combine the children's results
  std::uint64_t max_arity = 2;  ///< A; length(d(x)) must be in [1, A]

  /// Optional native combine: when set, eval_maprec uses this instead of
  /// applying `c`, and charges the Cost it reports.  This is how section 5
  /// composes map-recursions (mergesort's combine *is* the map-recursive
  /// merge): the inner recursion's reference evaluator plugs in here.
  std::function<Evaluated(const ValueRef&)> c_native;
};

/// Binary divide-and-conquer (the paper's schema g):
///   fun g(x) = if p(x) then s(x) else c2(g(d1(x)), g(d2(x))).
MapRec schema_g(TypeRef dom, TypeRef cod, FuncRef p, FuncRef s, FuncRef d1,
                FuncRef d2, FuncRef c2);

/// Unary recursion (the paper's schema h):
///   fun h(x) = if p(x) then s(x) else c1(h(d(x))).
MapRec schema_h(TypeRef dom, TypeRef cod, FuncRef p, FuncRef s, FuncRef d1,
                FuncRef c1);

/// Tail recursion, the special case of schema h with c1 = identity; this
/// translates directly to  \x. s(while(not . p, d1)(x))  with no tree
/// bookkeeping at all (and no depth limit).
FuncRef translate_tail_recursion(TypeRef dom, FuncRef p, FuncRef s,
                                 FuncRef d1);

/// Reference semantics: evaluate f(x) by direct recursion, with the
/// Definition 3.1 costs of the recursive definition read as the derived
/// if/map form (map's n recursive calls count in parallel time as their
/// max).  This is the baseline the translation is compared against.
Evaluated eval_maprec(const MapRec& f, const ValueRef& x);

struct MapRecTranslateOptions {
  /// Use the staged leaf-buffer schedule of the Theorem 4.2 proof (the z_i
  /// buffers): finished leaves are moved out of the active sequence and
  /// flushed through exponentially-lazier buffers, bounding the re-touch
  /// overhead by O(v^eps * W).  When false, leaves stay in place (exact for
  /// balanced trees, simpler, and T-preserving in all cases).
  bool staged = false;
  nsc::Rational eps{1, 2};
};

/// Theorem 4.2: produce an equivalent while-based NSC function.
FuncRef translate_maprec(const MapRec& f, const MapRecTranslateOptions& opts = {});

/// The staged variant of the Theorem 4.2 translation (normally reached via
/// translate_maprec with opts.staged = true).
///
/// Finished leaves are *extracted* from the active sequence each divide
/// round (so later rounds never re-touch them) together with their position
/// in that round's sequence; one chunk is pushed per level onto a chunk
/// stack.  Because the expansion pads every divide to exactly `max_arity`
/// children, level L of the recursion tree is a complete A-ary level, and
/// the combine phase can reconstruct it *positionally*: pop the level's
/// chunk, interleave it with the parents carried up from level L+1 (an
/// Example D.1-style O(1)-time merge using index_split), then fold each
/// block of A adjacent items with c.  No comparison-based merging and no
/// (depth, key) tags are needed.
///
/// The chunk stack is managed through a cascade of ceil(1/eps) lazy buffers
/// (the proof's z_i): pushes go to buffer 0 and each buffer flushes into the
/// next only every u^eps operations, which bounds the re-touch overhead of
/// buffered chunks by O(u^eps * W) where u is the number of leaf-bearing
/// levels (measured by a dry run, as in the paper).
FuncRef translate_maprec_staged(const MapRec& f,
                                const MapRecTranslateOptions& opts);

}  // namespace nsc::lang
