#include "nsc/ast.hpp"

#include <sstream>

#include "support/checked.hpp"
#include "support/error.hpp"

namespace nsc::lang {

const char* arith_op_name(ArithOp op) {
  switch (op) {
    case ArithOp::Add:
      return "+";
    case ArithOp::Monus:
      return "-";
    case ArithOp::Mul:
      return "*";
    case ArithOp::Div:
      return "/";
    case ArithOp::Rsh:
      return ">>";
    case ArithOp::Log2:
      return "log2";
  }
  return "?";
}

std::uint64_t arith_apply(ArithOp op, std::uint64_t a, std::uint64_t b) {
  switch (op) {
    case ArithOp::Add:
      return sat_add(a, b);
    case ArithOp::Monus:
      return monus(a, b);
    case ArithOp::Mul:
      return sat_mul(a, b);
    case ArithOp::Div:
      if (b == 0) throw EvalError("division by zero");
      return a / b;
    case ArithOp::Rsh:
      return b >= 64 ? 0 : a >> b;
    case ArithOp::Log2:
      return ilog2(a);
  }
  throw EvalError("unknown arithmetic op");
}

// ---------------------------------------------------------------------------
// Term
// ---------------------------------------------------------------------------

Term::Term(Init init)
    : kind_(init.kind),
      var_(std::move(init.var)),
      nat_(init.nat),
      op_(init.op),
      a_(std::move(init.a)),
      b_(std::move(init.b)),
      ann_(std::move(init.ann)),
      binder1_(std::move(init.binder1)),
      binder2_(std::move(init.binder2)),
      branch1_(std::move(init.branch1)),
      branch2_(std::move(init.branch2)),
      fn_(std::move(init.fn)) {}

TermRef Term::make(Init init) {
  struct Access : Term {
    explicit Access(Init i) : Term(std::move(i)) {}
  };
  return std::make_shared<Access>(std::move(init));
}

namespace {
[[noreturn]] void bad_access(const char* what, TermKind k) {
  throw Error(std::string("internal: term accessor ") + what + " on kind " +
              std::to_string(static_cast<int>(k)));
}
}  // namespace

const std::string& Term::var_name() const {
  if (kind_ != TermKind::Var) bad_access("var_name", kind_);
  return var_;
}

std::uint64_t Term::nat_value() const {
  if (kind_ != TermKind::NatConst) bad_access("nat_value", kind_);
  return nat_;
}

ArithOp Term::op() const {
  if (kind_ != TermKind::Arith) bad_access("op", kind_);
  return op_;
}

const TermRef& Term::child0() const { return a_; }
const TermRef& Term::child1() const { return b_; }
const TypeRef& Term::annotation() const { return ann_; }

const std::string& Term::binder1() const {
  if (kind_ != TermKind::Case) bad_access("binder1", kind_);
  return binder1_;
}
const std::string& Term::binder2() const {
  if (kind_ != TermKind::Case) bad_access("binder2", kind_);
  return binder2_;
}
const TermRef& Term::branch1() const {
  if (kind_ != TermKind::Case) bad_access("branch1", kind_);
  return branch1_;
}
const TermRef& Term::branch2() const {
  if (kind_ != TermKind::Case) bad_access("branch2", kind_);
  return branch2_;
}
const FuncRef& Term::fn() const {
  if (kind_ != TermKind::Apply) bad_access("fn", kind_);
  return fn_;
}

std::size_t Term::node_count() const {
  std::size_t n = 1;
  if (a_) n += a_->node_count();
  if (b_) n += b_->node_count();
  if (branch1_) n += branch1_->node_count();
  if (branch2_) n += branch2_->node_count();
  if (fn_) n += fn_->node_count();
  return n;
}

std::string Term::show() const {
  std::ostringstream out;
  switch (kind_) {
    case TermKind::Var:
      out << var_;
      break;
    case TermKind::Omega:
      out << "omega";
      break;
    case TermKind::NatConst:
      out << nat_;
      break;
    case TermKind::Arith:
      if (op_ == ArithOp::Log2) {
        out << "log2(" << a_->show() << ")";
      } else {
        out << "(" << a_->show() << " " << arith_op_name(op_) << " "
            << b_->show() << ")";
      }
      break;
    case TermKind::Eq:
      out << "(" << a_->show() << " = " << b_->show() << ")";
      break;
    case TermKind::UnitVal:
      out << "()";
      break;
    case TermKind::MkPair:
      out << "(" << a_->show() << ", " << b_->show() << ")";
      break;
    case TermKind::Proj1:
      out << "pi1(" << a_->show() << ")";
      break;
    case TermKind::Proj2:
      out << "pi2(" << a_->show() << ")";
      break;
    case TermKind::Inj1:
      out << "in1(" << a_->show() << ")";
      break;
    case TermKind::Inj2:
      out << "in2(" << a_->show() << ")";
      break;
    case TermKind::Case:
      out << "case " << a_->show() << " of in1 " << binder1_ << " => "
          << branch1_->show() << " | in2 " << binder2_ << " => "
          << branch2_->show();
      break;
    case TermKind::Apply:
      out << fn_->show() << "(" << a_->show() << ")";
      break;
    case TermKind::Empty:
      out << "[]";
      break;
    case TermKind::Singleton:
      out << "[" << a_->show() << "]";
      break;
    case TermKind::Append:
      out << "(" << a_->show() << " @ " << b_->show() << ")";
      break;
    case TermKind::Flatten:
      out << "flatten(" << a_->show() << ")";
      break;
    case TermKind::Length:
      out << "length(" << a_->show() << ")";
      break;
    case TermKind::Get:
      out << "get(" << a_->show() << ")";
      break;
    case TermKind::Zip:
      out << "zip(" << a_->show() << ", " << b_->show() << ")";
      break;
    case TermKind::Enumerate:
      out << "enumerate(" << a_->show() << ")";
      break;
    case TermKind::Split:
      out << "split(" << a_->show() << ", " << b_->show() << ")";
      break;
  }
  return out.str();
}

// ---------------------------------------------------------------------------
// Func
// ---------------------------------------------------------------------------

Func::Func(Init init)
    : kind_(init.kind),
      param_(std::move(init.param)),
      param_type_(std::move(init.param_type)),
      body_(std::move(init.body)),
      inner_(std::move(init.inner)),
      pred_(std::move(init.pred)) {}

FuncRef Func::make(Init init) {
  struct Access : Func {
    explicit Access(Init i) : Func(std::move(i)) {}
  };
  return std::make_shared<Access>(std::move(init));
}

const std::string& Func::param() const {
  if (kind_ != FuncKind::Lambda) throw Error("internal: param() on non-lambda");
  return param_;
}
const TypeRef& Func::param_type() const {
  if (kind_ != FuncKind::Lambda) {
    throw Error("internal: param_type() on non-lambda");
  }
  return param_type_;
}
const TermRef& Func::body() const {
  if (kind_ != FuncKind::Lambda) throw Error("internal: body() on non-lambda");
  return body_;
}
const FuncRef& Func::inner() const {
  if (kind_ == FuncKind::Lambda) throw Error("internal: inner() on lambda");
  return inner_;
}
const FuncRef& Func::pred() const {
  if (kind_ != FuncKind::While) throw Error("internal: pred() on non-while");
  return pred_;
}

std::size_t Func::node_count() const {
  std::size_t n = 1;
  if (body_) n += body_->node_count();
  if (inner_) n += inner_->node_count();
  if (pred_) n += pred_->node_count();
  return n;
}

std::string Func::show() const {
  std::ostringstream out;
  switch (kind_) {
    case FuncKind::Lambda:
      out << "(\\" << param_ << ":" << param_type_->show() << ". "
          << body_->show() << ")";
      break;
    case FuncKind::Map:
      out << "map(" << inner_->show() << ")";
      break;
    case FuncKind::While:
      out << "while(" << pred_->show() << ", " << inner_->show() << ")";
      break;
  }
  return out.str();
}

}  // namespace nsc::lang
