// Derived NSC functions from section 3 and Figures 2-3 of the paper.
// Everything here is *pure NSC source*: the builders below return plain
// ASTs composed from the primitives of appendix A, so their costs are
// whatever Definition 3.1 assigns to the expanded programs -- no C++
// shortcuts.
//
// Claimed complexities (validated by bench_primitives / tests):
//   p2 (broadcast)    T = O(1), W = O(|x| * |y|-ish)   [section 3]
//   bm_route          T = O(1), W = O(output + input)  [section 3]
//   sigma1/sigma2     T = O(1), W = O(n)
//   first/tail/last   T = O(1), W = O(n)
//   index(C, I)       T = O(1), W = O(n + k)           [Figure 3]
//   index_split(C, I) T = O(1), W = O(n + k)           [Figure 3]
//   filter(P)         T = O(1 + T_P), W = O(n + sum W_P)
#pragma once

#include "nsc/ast.hpp"
#include "nsc/build.hpp"

namespace nsc::lang::prelude {

/// \x:t. x
FuncRef identity(TypeRef t);

/// compose(F, G, s) = \x:s. F(G(x))  where G : s -> _.
FuncRef compose(FuncRef f, FuncRef g, TypeRef g_dom);

/// p2 : s x [t] -> [s x t],  p2(x, y) = [(x, y0), ..., (x, y_{n-1})].
FuncRef p2(TypeRef s, TypeRef t);

/// bm_route : ([s] x [N]) x [t] -> [t]  (section 3's derived routing):
/// element x_i of the data sequence is replicated d_i times; the "bound"
/// sequence u must satisfy length(u) = sum(d), enforcing that the output
/// size is pre-allocated.  Defined as
///   Pi1(flatten(map(p2)(zip(x, split(u, d))))).
FuncRef bm_route(TypeRef s, TypeRef t);

/// sigma1 : [s + t] -> [s], sigma2 : [s + t] -> [t] (section 3 selections).
FuncRef sigma1(TypeRef s, TypeRef t);
FuncRef sigma2(TypeRef s, TypeRef t);

/// filter(P) : [t] -> [t] = flatten . map(\u. if P(u) then [u] else []).
FuncRef filter(FuncRef p, TypeRef t);

/// first/last : [t] -> t; tail/remove_last : [t] -> [t] (section 3).
/// first/last error (Omega) on the empty sequence, like the paper's split-
/// based definitions.
FuncRef first(TypeRef t);
FuncRef tail(TypeRef t);
FuncRef last(TypeRef t);
FuncRef remove_last(TypeRef t);

/// index : [t] x [N] -> [t] (Figure 3).  index(C, I) = [C_{i0}, ...] for a
/// sorted index sequence I; T = O(1), W = O(n + k).
FuncRef index(TypeRef t);

/// index_split : [t] x [N] -> [[t]] (Figure 3): splits C *at* the sorted
/// positions I, yielding k+1 blocks.
FuncRef index_split(TypeRef t);

/// Power-of-two approximate square root of a term (used for sqrt-blocking):
/// max(1, n >> ((log2 n + 1) / 2)), computable within Sigma.
/// Any Theta(sqrt n) block size preserves the section 5 bounds.
TermRef sqrt_block(TermRef n);

/// sqrt_positions : [t] -> [t]: the elements at positions 0, b, 2b, ...
/// where b = sqrt_block(length) (Figure 2).
FuncRef sqrt_positions(TypeRef t);

/// sqrt_split : [t] -> [[t]]: split into blocks of size b (Figure 2; the
/// leading block is empty because position 0 is a split point).
FuncRef sqrt_split(TypeRef t);

/// rank_one : N x [N] -> N = length(filter(\b. b <= a)(B)) (Figure 2).
FuncRef rank_one();

/// direct_rank : [N] x [N] -> [N] = map(\a. rank_one(a, B))(A) (Figure 2).
FuncRef direct_rank();

/// direct_merge : [N] x [N] -> [N] (Figure 2): merge by ranking every
/// element of A in B.  Requires both inputs sorted.
FuncRef direct_merge();

/// Sum of a sequence of naturals via log-depth pairwise halving:
/// T = O(log n), W = O(n).  Used by tests and by the NC experiment.
FuncRef sum_nats();

/// Maximum of a sequence of naturals, same shape as sum_nats.
FuncRef max_nats();

}  // namespace nsc::lang::prelude
