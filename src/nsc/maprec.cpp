#include "nsc/maprec.hpp"

#include <algorithm>

#include "nsc/build.hpp"
#include "nsc/prelude.hpp"
#include "support/error.hpp"

namespace nsc::lang {

namespace {

const TypeRef& nat_t() {
  static const TypeRef t = Type::nat();
  return t;
}

}  // namespace

MapRec schema_g(TypeRef dom, TypeRef cod, FuncRef p, FuncRef s, FuncRef d1,
                FuncRef d2, FuncRef c2) {
  MapRec f;
  f.dom = dom;
  f.cod = cod;
  f.p = std::move(p);
  f.s = std::move(s);
  f.max_arity = 2;
  f.d = lam(
      dom,
      [&](TermRef x) {
        return append(singleton(apply(d1, x)), singleton(apply(d2, x)));
      },
      "x");
  f.c = lam(
      Type::seq(cod),
      [&](TermRef ys) {
        return apply(c2, pair(apply(prelude::first(cod), ys),
                              apply(prelude::last(cod), ys)));
      },
      "ys");
  return f;
}

MapRec schema_h(TypeRef dom, TypeRef cod, FuncRef p, FuncRef s, FuncRef d1,
                FuncRef c1) {
  MapRec f;
  f.dom = dom;
  f.cod = cod;
  f.p = std::move(p);
  f.s = std::move(s);
  f.max_arity = 1;
  f.d = lam(dom, [&](TermRef x) { return singleton(apply(d1, x)); }, "x");
  f.c = lam(Type::seq(cod), [&](TermRef ys) { return apply(c1, get(ys)); },
            "ys");
  return f;
}

FuncRef translate_tail_recursion(TypeRef dom, FuncRef p, FuncRef s,
                                 FuncRef d1) {
  FuncRef not_p =
      lam(dom, [&](TermRef y) { return lnot(apply(p, y)); }, "y");
  return lam(
      dom,
      [&](TermRef x) { return apply(s, apply(while_f(not_p, d1), x)); }, "x");
}

Evaluated eval_maprec(const MapRec& f, const ValueRef& x) {
  Evaluated pr = apply_fn(f.p, x);
  if (pr.value->as_bool()) {
    Evaluated sr = apply_fn(f.s, x);
    Cost cost;
    cost.time = sat_add(2, sat_add(pr.cost.time, sr.cost.time));
    cost.work = sat_add(sat_add(pr.cost.work, sr.cost.work),
                        sat_add(x->size(), sr.value->size()));
    return {std::move(sr.value), cost};
  }
  Evaluated dr = apply_fn(f.d, x);
  const auto& kids = dr.value->elems();
  if (kids.empty() || kids.size() > f.max_arity) {
    throw EvalError("map-recursion: divide produced " +
                    std::to_string(kids.size()) + " subproblems (arity bound " +
                    std::to_string(f.max_arity) + ")");
  }
  std::uint64_t tmax = 0;
  std::uint64_t wsum = 0;
  std::vector<ValueRef> results;
  results.reserve(kids.size());
  for (const auto& kid : kids) {
    Evaluated r = eval_maprec(f, kid);
    tmax = std::max(tmax, r.cost.time);
    wsum = sat_add(wsum, r.cost.work);
    results.push_back(std::move(r.value));
  }
  ValueRef ys = Value::seq(std::move(results));
  Evaluated cr = f.c_native ? f.c_native(ys) : apply_fn(f.c, ys);
  Cost cost;
  cost.time = sat_add(
      3, sat_add(sat_add(pr.cost.time, dr.cost.time),
                 sat_add(sat_add(1, tmax), cr.cost.time)));
  cost.work = sat_add(
      sat_add(sat_add(pr.cost.work, dr.cost.work), sat_add(wsum, cr.cost.work)),
      sat_add(x->size(), sat_add(ys->size(), cr.value->size())));
  return {std::move(cr.value), cost};
}

// ---------------------------------------------------------------------------
// Theorem 4.2 translation (non-staged variant)
// ---------------------------------------------------------------------------

namespace {

/// Shared shape information for the translation.
struct Shapes {
  TypeRef s, t;
  TypeRef item;   // ((N x N) x (B x (s + unit)))   divide-phase items
  TypeRef jtem;   // ((N x N) x (t + unit))         combine-phase items
  std::uint64_t arity;
  std::uint64_t key_limit;
};

Shapes make_shapes(const MapRec& f) {
  Shapes sh;
  sh.s = f.dom;
  sh.t = f.cod;
  sh.item = Type::prod(Type::prod(nat_t(), nat_t()),
                       Type::prod(Type::boolean(),
                                  Type::sum(f.dom, Type::unit())));
  sh.jtem = Type::prod(Type::prod(nat_t(), nat_t()),
                       Type::sum(f.cod, Type::unit()));
  // Effective arity is at least 2: unary recursions are padded with one
  // dummy sibling so that "a complete sibling group" (length A) is
  // distinguishable from a passthrough item (length 1) during combine.
  sh.arity = std::max<std::uint64_t>(2, f.max_arity);
  sh.key_limit = (std::uint64_t{1} << 62) / sh.arity;
  return sh;
}

// Accessors for items (depth, key, done, val are positional projections).
TermRef item_depth(TermRef it) { return proj1(proj1(std::move(it))); }
TermRef item_key(TermRef it) { return proj2(proj1(std::move(it))); }
TermRef item_done(TermRef it) { return proj1(proj2(std::move(it))); }
TermRef item_val(TermRef it) { return proj2(proj2(std::move(it))); }

/// expand : item -> [item]; one divide step for a single tagged item.
FuncRef make_expand(const MapRec& f, const Shapes& sh) {
  return lam(
      sh.item,
      [&](TermRef it) {
        const std::string xv = gensym("xv");
        const std::string uv = gensym("uv");

        // Divide xv into children, tagging each with (depth+1, key*A + i)
        // and padding with dummy items up to arity A.
        TermRef divide_branch = let_in(
            Type::seq(sh.s), apply(f.d, var(xv)), [&](TermRef kids) {
              return let_in(nat_t(), length(kids), [&](TermRef m) {
                FuncRef make_child = lam(
                    Type::prod(nat_t(), sh.s),
                    [&](TermRef q) {
                      return pair(
                          pair(add(item_depth(it), nat(1)),
                               add(mul(item_key(it), nat(sh.arity)),
                                   proj1(q))),
                          pair(fls(), inj1(proj2(q), Type::unit())));
                    },
                    "q");
                TermRef reals = apply(map_f(make_child),
                                      zip(enumerate(kids), kids));
                // Indices m .. A-1 become dummies.
                std::vector<std::uint64_t> all_idx(sh.arity);
                for (std::uint64_t j = 0; j < sh.arity; ++j) all_idx[j] = j;
                FuncRef is_pad = lam(
                    nat_t(), [&](TermRef j) { return leq(m, j); }, "j");
                TermRef pad_idx =
                    apply(prelude::filter(is_pad, nat_t()), nat_list(all_idx));
                FuncRef make_dummy = lam(
                    nat_t(),
                    [&](TermRef j) {
                      return pair(
                          pair(add(item_depth(it), nat(1)),
                               add(mul(item_key(it), nat(sh.arity)), j)),
                          pair(tru(), inj2(unit_v(), sh.s)));
                    },
                    "j");
                TermRef dummies = apply(map_f(make_dummy), pad_idx);
                TermRef ok = land(
                    land(leq(nat(1), m), leq(m, nat(sh.arity))),
                    leq(item_key(it), nat(sh.key_limit)));
                return ite(ok, append(reals, dummies),
                           omega(Type::seq(sh.item)));
              });
            });

        TermRef on_real = ite(
            apply(f.p, var(xv)),
            singleton(pair(proj1(it),
                           pair(tru(), inj1(var(xv), Type::unit())))),
            divide_branch);

        return ite(item_done(it), singleton(it),
                   case_of(item_val(it), xv, on_real, uv, singleton(it)));
      },
      "it");
}

}  // namespace

FuncRef translate_maprec(const MapRec& f, const MapRecTranslateOptions& opts) {
  if (f.max_arity > 16) {
    throw Error(
        "translate_maprec: the Theorem 4.2 translation requires a static "
        "arity bound (the paper's schemas are constant-arity); unbounded "
        "divide arity (e.g. Valiant's sqrt-way merge) is evaluated by "
        "eval_maprec instead");
  }
  if (opts.staged) return translate_maprec_staged(f, opts);

  const Shapes sh = make_shapes(f);
  const TypeRef d_state = Type::prod(nat_t(), Type::seq(sh.item));
  const TypeRef c_state = Type::prod(nat_t(), Type::seq(sh.jtem));

  // -- divide phase ----------------------------------------------------
  FuncRef not_done = lam(
      sh.item, [&](TermRef it) { return lnot(item_done(it)); }, "it");
  FuncRef divide_pred = lam(
      d_state,
      [&](TermRef st) {
        return lt(nat(0),
                  length(apply(prelude::filter(not_done, sh.item),
                               proj2(st))));
      },
      "st");
  FuncRef expand = make_expand(f, sh);
  FuncRef divide_body = lam(
      d_state,
      [&](TermRef st) {
        return pair(add(proj1(st), nat(1)),
                    flatten(apply(map_f(expand), proj2(st))));
      },
      "st");

  // -- leaf solving ------------------------------------------------------
  FuncRef leafify = lam(
      sh.item,
      [&](TermRef it) {
        const std::string xv = gensym("xv");
        const std::string uv = gensym("uv");
        return pair(proj1(it),
                    case_of(item_val(it), xv,
                            inj1(apply(f.s, var(xv)), Type::unit()), uv,
                            inj2(unit_v(), sh.t)));
      },
      "it");

  // -- combine phase -----------------------------------------------------
  FuncRef combine_pred =
      lam(c_state, [&](TermRef st) { return lt(nat(0), proj1(st)); }, "st");

  FuncRef combine_body = lam(
      c_state,
      [&](TermRef st) {
        return let_in(nat_t(), proj1(st), [&](TermRef L) {
          return let_in(Type::seq(sh.jtem), proj2(st), [&](TermRef ys) {
            FuncRef size_of = lam(
                sh.jtem,
                [&](TermRef jt) {
                  TermRef at_level = eq(item_depth(jt), L);
                  TermRef leads =
                      eq(mod_t(item_key(jt), nat(sh.arity)), nat(0));
                  return ite(at_level,
                             ite(leads, nat(sh.arity), nat(0)), nat(1));
                },
                "jt");
            TermRef sizes = apply(map_f(size_of), ys);
            TermRef groups = split(ys, sizes);

            FuncRef fold_group = lam(
                Type::seq(sh.jtem),
                [&](TermRef g) {
                  FuncRef val_of = lam(
                      sh.jtem, [&](TermRef jt) { return proj2(jt); }, "jt");
                  TermRef vals = apply(map_f(val_of), g);
                  TermRef reals =
                      apply(prelude::sigma1(sh.t, Type::unit()), vals);
                  TermRef head = apply(prelude::first(sh.jtem), g);
                  TermRef parent = pair(
                      pair(monus_t(item_depth(head), nat(1)),
                           div_t(item_key(head), nat(sh.arity))),
                      inj1(apply(f.c, reals), Type::unit()));
                  return ite(
                      eq(length(g), nat(0)), empty(sh.jtem),
                      ite(eq(length(g), nat(1)), g, singleton(parent)));
                },
                "g");
            TermRef next = flatten(apply(map_f(fold_group), groups));
            return pair(monus_t(L, nat(1)), next);
          });
        });
      },
      "st");

  // -- assembly ------------------------------------------------------------
  return lam(
      sh.s,
      [&](TermRef x) {
        TermRef root = pair(pair(nat(0), nat(0)),
                            pair(fls(), inj1(x, Type::unit())));
        TermRef st0 = pair(nat(0), singleton(root));
        return let_in(
            d_state, apply(while_f(divide_pred, divide_body), st0),
            [&](TermRef stD) {
              TermRef ys0 = apply(map_f(leafify), proj2(stD));
              TermRef done = apply(while_f(combine_pred, combine_body),
                                   pair(proj1(stD), ys0));
              const std::string r = gensym("r");
              const std::string u = gensym("u");
              return case_of(proj2(get(proj2(done))), r, var(r), u,
                             omega(sh.t));
            },
            "stD");
      },
      "x");
}

}  // namespace nsc::lang
