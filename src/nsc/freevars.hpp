// Free-variable analysis for NSC terms and functions.  Used by the NSA
// translation to trim contexts before broadcasting them with p2 (map) or
// threading them through loop states (while): only the variables actually
// used by a body are replicated, which is what makes the translated
// program's work match NSC's per-use variable charging (Prop C.1).
#pragma once

#include <set>
#include <string>

#include "nsc/ast.hpp"

namespace nsc::lang {

std::set<std::string> free_vars(const TermRef& m);
std::set<std::string> free_vars(const FuncRef& f);

}  // namespace nsc::lang
