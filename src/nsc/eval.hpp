// Natural-semantics evaluator for NSC (paper appendix B) with the
// machine-independent cost accounting of Definition 3.1.
//
// Cost model.  For every instance of a rule
//
//      J_1  ...  J_k
//      -------------
//            J
//
// we charge  T = 1 + sum_i T(J_i)   and   W = SIZE + sum_i W(J_i),
// where SIZE is the total size of the S-objects *flowing through* the rule
// instance: the conclusion's result, plus (for application/while/map
// judgments) the argument/state being consumed.  Environment values are
// charged at their Var-lookup rule (whose result *is* the bound value), not
// as ambient context on every rule.  This is the reading of Definition
// 3.1's "including the environments" under which the paper's own
// constructions are meaningful: a value parked in a variable or carried in
// an enclosing scope costs nothing until used, while a free variable used
// inside a map body is re-charged once per parallel application -- exactly
// the broadcast cost that NSA realizes with p2 and the BVRAM with routing.
// (Charging the whole environment on every rule instance would make the
// z_i-buffer schedule of Theorem 4.2 and the V1/V2 staging of Lemma 7.2
// pointless, since untouched buffers would be billed at every step.)
//
// Two exceptions, exactly as in the paper:
//
//  * map:    T = 1 + max_i T(F, C_i)   (the n applications run in parallel);
//  * while:  each iteration charges size(C_k) (current state) and
//            size(C_{k+1}); the final result D is *not* re-charged per
//            iteration (Definition 3.1's explicit exclusion).
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "nsc/ast.hpp"
#include "object/value.hpp"
#include "support/cost.hpp"
#include "support/error.hpp"

namespace nsc::lang {

using nsc::Cost;
using nsc::Value;
using nsc::ValueRef;

/// Immutable evaluation environment rho = {x1 = C1, ...}.  Extension with an
/// existing name replaces the binding (the paper's environments are sets).
/// The total size of all bound S-objects is cached so that charging
/// size(rho) on every rule instance is O(1).
class Env {
 public:
  Env() = default;

  Env extend(const std::string& name, ValueRef v) const;
  /// Lookup; throws EvalError on unbound names (the typechecker prevents
  /// this for checked programs).
  const ValueRef& lookup(const std::string& name) const;

  /// Sum of sizes of all bound values (Definition 3.1 charges this).
  std::uint64_t size() const { return size_; }
  bool empty_env() const { return bindings_.empty(); }

 private:
  std::vector<std::pair<std::string, ValueRef>> bindings_;
  std::uint64_t size_ = 0;
};

struct Evaluated {
  ValueRef value;
  Cost cost;
};

struct EvalConfig {
  /// Upper bound on the number of rule instances before FuelExhausted.
  std::uint64_t max_steps = std::uint64_t{1} << 36;
};

/// The evaluator.  Stateless between calls except for the step counter,
/// which is reset by each top-level eval/apply.
class Evaluator {
 public:
  explicit Evaluator(EvalConfig cfg = {}) : cfg_(cfg) {}

  /// rho . M  |  C with Definition 3.1 costs.
  Evaluated eval(const TermRef& m, const Env& env = {});

  /// rho . F(C)  |  D with Definition 3.1 costs.
  Evaluated apply(const FuncRef& f, const ValueRef& arg, const Env& env = {});

 private:
  Evaluated eval_term(const TermRef& m, const Env& env);
  Evaluated apply_func(const FuncRef& f, const ValueRef& arg, const Env& env);
  void tick();

  EvalConfig cfg_;
  std::uint64_t steps_ = 0;
};

/// One-shot helpers.  (The value-level application helper is named
/// apply_fn to avoid unqualified-call collisions with std::apply, which ADL
/// drags in via std::shared_ptr.)
Evaluated eval(const TermRef& m, const Env& env = {});
Evaluated apply_fn(const FuncRef& f, const ValueRef& arg, const Env& env = {});

}  // namespace nsc::lang
