#include "nsc/build.hpp"

#include <atomic>

namespace nsc::lang {

std::string gensym(const std::string& hint) {
  static std::atomic<std::uint64_t> counter{0};
  return "_" + hint + std::to_string(counter.fetch_add(1));
}

// -- terms -------------------------------------------------------------------

TermRef var(const std::string& name) {
  Term::Init i;
  i.kind = TermKind::Var;
  i.var = name;
  return Term::make(std::move(i));
}

TermRef omega(TypeRef type) {
  Term::Init i;
  i.kind = TermKind::Omega;
  i.ann = std::move(type);
  return Term::make(std::move(i));
}

TermRef nat(std::uint64_t n) {
  Term::Init i;
  i.kind = TermKind::NatConst;
  i.nat = n;
  return Term::make(std::move(i));
}

TermRef arith(ArithOp op, TermRef a, TermRef b) {
  Term::Init i;
  i.kind = TermKind::Arith;
  i.op = op;
  i.a = std::move(a);
  i.b = std::move(b);
  return Term::make(std::move(i));
}

TermRef add(TermRef a, TermRef b) {
  return arith(ArithOp::Add, std::move(a), std::move(b));
}
TermRef monus_t(TermRef a, TermRef b) {
  return arith(ArithOp::Monus, std::move(a), std::move(b));
}
TermRef mul(TermRef a, TermRef b) {
  return arith(ArithOp::Mul, std::move(a), std::move(b));
}
TermRef div_t(TermRef a, TermRef b) {
  return arith(ArithOp::Div, std::move(a), std::move(b));
}
TermRef rsh(TermRef a, TermRef b) {
  return arith(ArithOp::Rsh, std::move(a), std::move(b));
}
TermRef log2_t(TermRef a) { return arith(ArithOp::Log2, std::move(a), nat(0)); }

TermRef eq(TermRef a, TermRef b) {
  Term::Init i;
  i.kind = TermKind::Eq;
  i.a = std::move(a);
  i.b = std::move(b);
  return Term::make(std::move(i));
}

TermRef unit_v() {
  Term::Init i;
  i.kind = TermKind::UnitVal;
  return Term::make(std::move(i));
}

TermRef pair(TermRef a, TermRef b) {
  Term::Init i;
  i.kind = TermKind::MkPair;
  i.a = std::move(a);
  i.b = std::move(b);
  return Term::make(std::move(i));
}

TermRef proj1(TermRef m) {
  Term::Init i;
  i.kind = TermKind::Proj1;
  i.a = std::move(m);
  return Term::make(std::move(i));
}

TermRef proj2(TermRef m) {
  Term::Init i;
  i.kind = TermKind::Proj2;
  i.a = std::move(m);
  return Term::make(std::move(i));
}

TermRef inj1(TermRef m, TypeRef right) {
  Term::Init i;
  i.kind = TermKind::Inj1;
  i.a = std::move(m);
  i.ann = std::move(right);
  return Term::make(std::move(i));
}

TermRef inj2(TermRef m, TypeRef left) {
  Term::Init i;
  i.kind = TermKind::Inj2;
  i.a = std::move(m);
  i.ann = std::move(left);
  return Term::make(std::move(i));
}

TermRef case_of(TermRef scrutinee, const std::string& x, TermRef left_branch,
                const std::string& y, TermRef right_branch) {
  Term::Init i;
  i.kind = TermKind::Case;
  i.a = std::move(scrutinee);
  i.binder1 = x;
  i.binder2 = y;
  i.branch1 = std::move(left_branch);
  i.branch2 = std::move(right_branch);
  return Term::make(std::move(i));
}

TermRef apply(FuncRef f, TermRef m) {
  Term::Init i;
  i.kind = TermKind::Apply;
  i.fn = std::move(f);
  i.a = std::move(m);
  return Term::make(std::move(i));
}

TermRef empty(TypeRef elem_type) {
  Term::Init i;
  i.kind = TermKind::Empty;
  i.ann = std::move(elem_type);
  return Term::make(std::move(i));
}

TermRef singleton(TermRef m) {
  Term::Init i;
  i.kind = TermKind::Singleton;
  i.a = std::move(m);
  return Term::make(std::move(i));
}

TermRef append(TermRef a, TermRef b) {
  Term::Init i;
  i.kind = TermKind::Append;
  i.a = std::move(a);
  i.b = std::move(b);
  return Term::make(std::move(i));
}

TermRef flatten(TermRef m) {
  Term::Init i;
  i.kind = TermKind::Flatten;
  i.a = std::move(m);
  return Term::make(std::move(i));
}

TermRef length(TermRef m) {
  Term::Init i;
  i.kind = TermKind::Length;
  i.a = std::move(m);
  return Term::make(std::move(i));
}

TermRef get(TermRef m) {
  Term::Init i;
  i.kind = TermKind::Get;
  i.a = std::move(m);
  return Term::make(std::move(i));
}

TermRef zip(TermRef a, TermRef b) {
  Term::Init i;
  i.kind = TermKind::Zip;
  i.a = std::move(a);
  i.b = std::move(b);
  return Term::make(std::move(i));
}

TermRef enumerate(TermRef m) {
  Term::Init i;
  i.kind = TermKind::Enumerate;
  i.a = std::move(m);
  return Term::make(std::move(i));
}

TermRef split(TermRef m, TermRef sizes) {
  Term::Init i;
  i.kind = TermKind::Split;
  i.a = std::move(m);
  i.b = std::move(sizes);
  return Term::make(std::move(i));
}

// -- functions ---------------------------------------------------------------

FuncRef lambda(const std::string& param, TypeRef param_type, TermRef body) {
  Func::Init i;
  i.kind = FuncKind::Lambda;
  i.param = param;
  i.param_type = std::move(param_type);
  i.body = std::move(body);
  return Func::make(std::move(i));
}

FuncRef lam(TypeRef param_type, const std::function<TermRef(TermRef)>& body,
            const std::string& hint) {
  const std::string name = gensym(hint);
  return lambda(name, std::move(param_type), body(var(name)));
}

FuncRef map_f(FuncRef f) {
  Func::Init i;
  i.kind = FuncKind::Map;
  i.inner = std::move(f);
  return Func::make(std::move(i));
}

FuncRef while_f(FuncRef pred, FuncRef body) {
  Func::Init i;
  i.kind = FuncKind::While;
  i.pred = std::move(pred);
  i.inner = std::move(body);
  return Func::make(std::move(i));
}

// -- derived sugar -----------------------------------------------------------

TermRef tru() { return inj1(unit_v(), Type::unit()); }
TermRef fls() { return inj2(unit_v(), Type::unit()); }

TermRef ite(TermRef cond, TermRef then_term, TermRef else_term) {
  return case_of(std::move(cond), gensym("u"), std::move(then_term),
                 gensym("u"), std::move(else_term));
}

TermRef let_in(TypeRef type, TermRef m,
               const std::function<TermRef(TermRef)>& body,
               const std::string& hint) {
  const std::string name = gensym(hint);
  return apply(lambda(name, std::move(type), body(var(name))), std::move(m));
}

TermRef land(TermRef a, TermRef b) { return ite(std::move(a), std::move(b), fls()); }
TermRef lor(TermRef a, TermRef b) { return ite(std::move(a), tru(), std::move(b)); }
TermRef lnot(TermRef a) { return ite(std::move(a), fls(), tru()); }

TermRef leq(TermRef a, TermRef b) {
  return eq(monus_t(std::move(a), std::move(b)), nat(0));
}

TermRef lt(TermRef a, TermRef b) {
  return leq(add(std::move(a), nat(1)), std::move(b));
}

TermRef neq(TermRef a, TermRef b) { return lnot(eq(std::move(a), std::move(b))); }

TermRef mod_t(TermRef a, TermRef b) {
  // a mod b = a - (a/b)*b; requires a, b to be duplicable terms (variables
  // or literals) because they appear twice.
  return monus_t(a, mul(div_t(a, b), b));
}

TermRef nat_list(std::initializer_list<std::uint64_t> ns) {
  return nat_list(std::vector<std::uint64_t>(ns));
}

TermRef nat_list(const std::vector<std::uint64_t>& ns) {
  TermRef acc = empty(Type::nat());
  for (auto n : ns) acc = append(std::move(acc), singleton(nat(n)));
  return acc;
}

}  // namespace nsc::lang
