// Builder DSL for constructing NSC terms and functions from C++.
//
// This plays the role of the "user-friendly language with block structure"
// the paper sketches at the start of section 4: the combinators below are a
// thin construction layer that produces plain NSC ASTs (nothing here adds
// expressive power).  The *textual* construction interface is the surface
// language in src/front/ (see docs/nsc-language.md), whose resolver lowers
// onto these same builders.  `let_` is the standard sugar
//   let x = M in N  ==  (\x. N)(M)
// and named function definitions are simply C++ variables holding FuncRefs.
#pragma once

#include <cstdint>
#include <functional>
#include <initializer_list>
#include <string>
#include <vector>

#include "nsc/ast.hpp"

namespace nsc::lang {

// -- names -----------------------------------------------------------------

/// Fresh variable name (process-unique); used by derived-form builders so
/// that nested uses never capture.
std::string gensym(const std::string& hint = "v");

// -- terms -------------------------------------------------------------------

TermRef var(const std::string& name);
TermRef omega(TypeRef type);
TermRef nat(std::uint64_t n);

TermRef arith(ArithOp op, TermRef a, TermRef b);
TermRef add(TermRef a, TermRef b);
TermRef monus_t(TermRef a, TermRef b);
TermRef mul(TermRef a, TermRef b);
TermRef div_t(TermRef a, TermRef b);
TermRef rsh(TermRef a, TermRef b);
TermRef log2_t(TermRef a);
TermRef eq(TermRef a, TermRef b);

TermRef unit_v();
TermRef pair(TermRef a, TermRef b);
TermRef proj1(TermRef m);
TermRef proj2(TermRef m);

/// in1(M) : s + t  where M : s and `right` = t.
TermRef inj1(TermRef m, TypeRef right);
/// in2(M) : s + t  where M : t and `left` = s.
TermRef inj2(TermRef m, TypeRef left);
TermRef case_of(TermRef scrutinee, const std::string& x, TermRef left_branch,
                const std::string& y, TermRef right_branch);

TermRef apply(FuncRef f, TermRef m);

TermRef empty(TypeRef elem_type);
TermRef singleton(TermRef m);
TermRef append(TermRef a, TermRef b);
TermRef flatten(TermRef m);
TermRef length(TermRef m);
TermRef get(TermRef m);
TermRef zip(TermRef a, TermRef b);
TermRef enumerate(TermRef m);
TermRef split(TermRef m, TermRef sizes);

// -- functions ---------------------------------------------------------------

FuncRef lambda(const std::string& param, TypeRef param_type, TermRef body);
/// lambda with a machine-generated parameter name; `body` receives the
/// parameter as a Var term.
FuncRef lam(TypeRef param_type, const std::function<TermRef(TermRef)>& body,
            const std::string& hint = "x");
FuncRef map_f(FuncRef f);
FuncRef while_f(FuncRef pred, FuncRef body);

// -- derived sugar -----------------------------------------------------------

/// true / false as terms (in1 () / in2 ()).
TermRef tru();
TermRef fls();

/// if C then T else E  ==  case C of in1 _ => T | in2 _ => E  (section 3).
TermRef ite(TermRef cond, TermRef then_term, TermRef else_term);

/// let x = M in body(x)  ==  (\x:t. body)(M).  `t` is the type of M.
TermRef let_in(TypeRef type, TermRef m,
               const std::function<TermRef(TermRef)>& body,
               const std::string& hint = "l");

/// Boolean connectives on B-typed terms (derived via case).
TermRef land(TermRef a, TermRef b);
TermRef lor(TermRef a, TermRef b);
TermRef lnot(TermRef a);

/// Comparisons on naturals, derived from monus and equality (section 3
/// mentions these are definable): a <= b iff a - b = 0; a < b iff a+1 <= b.
TermRef leq(TermRef a, TermRef b);
TermRef lt(TermRef a, TermRef b);
TermRef neq(TermRef a, TermRef b);

/// a mod b = a - (a/b)*b (errors when b = 0, like /).
TermRef mod_t(TermRef a, TermRef b);

/// Literal sequence of naturals [n0, n1, ...].
TermRef nat_list(std::initializer_list<std::uint64_t> ns);
TermRef nat_list(const std::vector<std::uint64_t>& ns);

}  // namespace nsc::lang
