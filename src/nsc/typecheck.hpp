// Static type system of NSC (paper appendix A).
//
// Implements the judgment  Gamma |- M : t  for terms and
// Gamma |- F : s -> t  for functions, where Gamma is a type context
// {x1 : s1, ..., xn : sn}.  The checker is total: it either returns the
// type or throws TypeError with a path through the term.
#pragma once

#include <map>
#include <string>
#include <utility>

#include "nsc/ast.hpp"

namespace nsc::lang {

/// A type context Gamma.
using TypeEnv = std::map<std::string, TypeRef>;

/// Gamma |- M : t.  Returns t or throws TypeError.
TypeRef check_term(const TermRef& m, const TypeEnv& env = {});

/// Gamma |- F : s -> t.  Returns {s, t} or throws TypeError.
/// The domain s is read off the lambda binder / inferred for map and while
/// from their bodies.
std::pair<TypeRef, TypeRef> check_func(const FuncRef& f,
                                       const TypeEnv& env = {});

}  // namespace nsc::lang
