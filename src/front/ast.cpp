#include "front/ast.hpp"

namespace nsc::front {

TypeExprPtr TypeExpr::make(TypeKind kind, SrcLoc loc, TypeExprPtr a,
                           TypeExprPtr b) {
  auto t = std::make_shared<TypeExpr>();
  t->kind = kind;
  t->loc = loc;
  t->a = std::move(a);
  t->b = std::move(b);
  return t;
}

const char* binop_spelling(BinOp op) {
  switch (op) {
    case BinOp::Add: return "+";
    case BinOp::Monus: return "-";
    case BinOp::Mul: return "*";
    case BinOp::Div: return "/";
    case BinOp::Mod: return "%";
    case BinOp::Shr: return ">>";
    case BinOp::Append: return "++";
    case BinOp::Eq: return "==";
    case BinOp::Ne: return "!=";
    case BinOp::Lt: return "<";
    case BinOp::Le: return "<=";
    case BinOp::Gt: return ">";
    case BinOp::Ge: return ">=";
    case BinOp::And: return "&&";
    case BinOp::Or: return "||";
  }
  return "?";
}

ExprPtr Expr::make(Init init) {
  auto e = std::make_shared<Expr>();
  e->kind = init.kind;
  e->loc = init.loc;
  e->nat = init.nat;
  e->bval = init.bval;
  e->bop = init.bop;
  e->name = std::move(init.name);
  e->name2 = std::move(init.name2);
  e->type = std::move(init.type);
  e->a = std::move(init.a);
  e->b = std::move(init.b);
  e->c = std::move(init.c);
  e->elems = std::move(init.elems);
  return e;
}

bool equal(const TypeExprPtr& a, const TypeExprPtr& b) {
  if (a == b) return true;
  if (a == nullptr || b == nullptr) return false;
  return a->kind == b->kind && equal(a->a, b->a) && equal(a->b, b->b);
}

bool equal(const ExprPtr& a, const ExprPtr& b) {
  if (a == b) return true;
  if (a == nullptr || b == nullptr) return false;
  if (a->kind != b->kind || a->nat != b->nat || a->bval != b->bval ||
      a->bop != b->bop || a->name != b->name || a->name2 != b->name2) {
    return false;
  }
  if (!equal(a->type, b->type)) return false;
  if (!equal(a->a, b->a) || !equal(a->b, b->b) || !equal(a->c, b->c)) {
    return false;
  }
  if (a->elems.size() != b->elems.size()) return false;
  for (std::size_t i = 0; i < a->elems.size(); ++i) {
    if (!equal(a->elems[i], b->elems[i])) return false;
  }
  return true;
}

bool equal(const Decl& a, const Decl& b) {
  if (a.kind != b.kind || a.name != b.name ||
      a.params.size() != b.params.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.params.size(); ++i) {
    if (a.params[i].name != b.params[i].name ||
        !equal(a.params[i].type, b.params[i].type)) {
      return false;
    }
  }
  return equal(a.ret, b.ret) && equal(a.body, b.body);
}

bool equal(const Module& a, const Module& b) {
  if (a.decls.size() != b.decls.size()) return false;
  for (std::size_t i = 0; i < a.decls.size(); ++i) {
    if (!equal(a.decls[i], b.decls[i])) return false;
  }
  return true;
}

}  // namespace nsc::front
