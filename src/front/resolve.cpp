#include "front/resolve.hpp"

#include <map>
#include <set>
#include <utility>

#include "nsc/build.hpp"
#include "nsc/prelude.hpp"
#include "nsc/typecheck.hpp"

namespace nsc::front {

namespace L = nsc::lang;
namespace P = nsc::lang::prelude;

const ResolvedFn* ResolvedModule::find(const std::string& name) const {
  for (const auto& f : fns) {
    if (f.name == name) return &f;
  }
  return nullptr;
}

const ResolvedFn& ResolvedModule::main() const {
  const ResolvedFn* m = find("main");
  if (m == nullptr) {
    Diagnostic d;
    d.kind = DiagKind::Type;
    d.file = file;
    d.message = "module defines no 'main' function";
    throw FrontError(std::move(d));
  }
  return *m;
}

TypeRef resolve_type(const TypeExprPtr& t) {
  switch (t->kind) {
    case TypeKind::Unit: return Type::unit();
    case TypeKind::Nat: return Type::nat();
    case TypeKind::Bool: return Type::boolean();
    case TypeKind::Seq: return Type::seq(resolve_type(t->a));
    case TypeKind::Prod:
      return Type::prod(resolve_type(t->a), resolve_type(t->b));
    case TypeKind::Sum:
      return Type::sum(resolve_type(t->a), resolve_type(t->b));
  }
  return Type::unit();
}

namespace {

/// Builtin functions callable as `name(args...)` (and, for the unary ones,
/// usable in function-argument position, e.g. map(sum, db)).  Declared
/// functions may not take these names.
const std::set<std::string>& builtin_set() {
  static const std::set<std::string> names = {
      "length", "flatten", "get", "zip", "enumerate", "split",
      "fst", "snd", "log2",
      "sum", "max", "first", "last", "tail", "init",
      "filter", "map", "index", "index_split",
      "merge", "ranks", "sqrt_positions", "sqrt_split",
  };
  return names;
}

class Resolver {
 public:
  explicit Resolver(const SourceFile& src) : src_(src) {}

  ResolvedModule run(const Module& m) {
    ResolvedModule out;
    out.file = m.file;
    // Collect all declared names up front for better "defined later"
    // diagnostics (resolution itself is strictly top-down).
    std::size_t fn_count = 0;
    for (const auto& d : m.decls) {
      if (d.kind == DeclKind::Fn) {
        declared_anywhere_.insert(d.name);
        ++fn_count;
      }
    }
    // The name table stores pointers into this vector; reserve up front so
    // push_back never reallocates under them.
    out.fns.reserve(fn_count);
    for (const auto& d : m.decls) {
      if (d.kind == DeclKind::Fn) {
        out.fns.push_back(resolve_fn(d));
        fns_[out.fns.back().name] = &out.fns.back();
      } else {
        out.inputs.push_back(resolve_input(d));
      }
    }
    if (const ResolvedFn* mn = out.find("main")) {
      for (const auto& in : out.inputs) {
        if (!Type::equal(in.type, mn->dom)) {
          error(in.loc, "input value has type " + in.type->show() +
                            " but main expects " + mn->dom->show());
        }
      }
    }
    return out;
  }

  ResolvedInput resolve_closed_expr(const ExprPtr& e) {
    L::TypeEnv env;
    ResolvedInput in;
    in.loc = e->loc;
    in.term = lower(e, env);
    in.type = infer(in.term, env, e->loc);
    return in;
  }

 private:
  // -- diagnostics ----------------------------------------------------------

  [[noreturn]] void error(SrcLoc loc, const std::string& message) {
    Diagnostic d;
    d.kind = DiagKind::Type;
    d.loc = loc;
    d.file = src_.name();
    d.message = message;
    d.source_line = src_.line_text(loc.line);
    throw FrontError(std::move(d));
  }

  /// Type of a lowered term, with core TypeErrors re-reported at `loc`.
  TypeRef infer(const L::TermRef& t, const L::TypeEnv& env, SrcLoc loc) {
    try {
      return L::check_term(t, env);
    } catch (const TypeError& e) {
      error(loc, e.what());
    }
  }

  // -- declarations ---------------------------------------------------------

  ResolvedFn resolve_fn(const Decl& d) {
    if (builtin_set().count(d.name) != 0) {
      error(d.loc, "cannot define function '" + d.name +
                       "': the name is a builtin");
    }
    if (fns_.count(d.name) != 0) {
      error(d.loc, "function '" + d.name + "' is defined twice");
    }
    if (d.params.empty()) {
      error(d.loc, "function '" + d.name +
                       "' needs at least one parameter (NSC functions are "
                       "unary; use a unit parameter for constants)");
    }
    std::vector<TypeRef> ptypes;
    L::TypeEnv env;
    std::set<std::string> seen;
    for (const auto& p : d.params) {
      if (!seen.insert(p.name).second) {
        error(p.loc, "duplicate parameter name '" + p.name + "'");
      }
      ptypes.push_back(resolve_type(p.type));
      env[p.name] = ptypes.back();
    }
    L::TermRef body = lower(d.body, env);
    const TypeRef cod = infer(body, env, d.body->loc);
    if (d.ret != nullptr) {
      const TypeRef want = resolve_type(d.ret);
      if (!Type::equal(cod, want)) {
        error(d.body->loc, "body of '" + d.name + "' has type " +
                               cod->show() + " but the declaration says " +
                               want->show());
      }
    }
    ResolvedFn out;
    out.name = d.name;
    out.loc = d.loc;
    out.cod = cod;
    if (d.params.size() == 1) {
      out.dom = ptypes[0];
      out.fn = L::lambda(d.params[0].name, ptypes[0], body);
    } else {
      // Multi-parameter sugar: dom = t0 * (t1 * (... * tk)), and the body
      // is wrapped in lets projecting each component out of the tuple.
      const std::size_t k = ptypes.size();
      TypeRef dom = ptypes[k - 1];
      for (std::size_t i = k - 1; i-- > 0;) dom = Type::prod(ptypes[i], dom);
      const std::string arg = L::gensym("arg");
      L::TermRef wrapped = body;
      for (std::size_t i = k; i-- > 0;) {
        L::TermRef proj = L::var(arg);
        for (std::size_t j = 0; j < i; ++j) proj = L::proj2(proj);
        if (i + 1 < k) proj = L::proj1(proj);
        wrapped = L::apply(L::lambda(d.params[i].name, ptypes[i], wrapped),
                           proj);
      }
      out.dom = dom;
      out.fn = L::lambda(arg, dom, wrapped);
    }
    out.fn->set_src(d.loc.line, d.loc.col);
    // Belt and braces: the incremental checks above should make this
    // unfailing, but a resolver bug must surface as a diagnostic, not as
    // an exception from deeper in the pipeline.
    try {
      L::check_func(out.fn);
    } catch (const TypeError& e) {
      error(d.loc, std::string("internal: lowered function fails to "
                               "typecheck: ") +
                       e.what());
    }
    return out;
  }

  ResolvedInput resolve_input(const Decl& d) {
    L::TypeEnv env;
    ResolvedInput in;
    in.loc = d.loc;
    in.term = lower(d.body, env);
    in.type = infer(in.term, env, d.body->loc);
    return in;
  }

  // -- expression lowering --------------------------------------------------

  /// Every lowering goes through here so the produced core term is stamped
  /// with the surface location it came from.  The stamp is first-write-wins
  /// (Term::set_src), so a node lowered once and shared (prelude helpers)
  /// keeps its original site; nested calls stamp their own subterms first,
  /// which is exactly the nearest-enclosing-expression attribution the
  /// profiler wants.
  L::TermRef lower(const ExprPtr& e, L::TypeEnv& env) {
    L::TermRef t = lower_node(e, env);
    if (t != nullptr) {
      t->set_src(e->loc.line, e->loc.col);
      if (t->kind() == L::TermKind::Apply && t->fn() != nullptr) {
        t->fn()->set_src(e->loc.line, e->loc.col);
      }
    }
    return t;
  }

  L::TermRef lower_node(const ExprPtr& e, L::TypeEnv& env) {
    switch (e->kind) {
      case ExprKind::Var: {
        if (env.count(e->name) != 0) return L::var(e->name);
        if (fns_.count(e->name) != 0 || declared_anywhere_.count(e->name)) {
          error(e->loc, "function '" + e->name +
                            "' used as a value (NSC is first-order; call "
                            "it, or pass it to map/filter)");
        }
        error(e->loc, "unbound variable '" + e->name + "'");
      }
      case ExprKind::NatLit:
        return L::nat(e->nat);
      case ExprKind::UnitLit:
        return L::unit_v();
      case ExprKind::BoolLit:
        return e->bval ? L::tru() : L::fls();
      case ExprKind::PairLit:
        return L::pair(lower(e->a, env), lower(e->b, env));
      case ExprKind::SeqLit: {
        L::TermRef out = L::singleton(lower(e->elems[0], env));
        for (std::size_t i = 1; i < e->elems.size(); ++i) {
          out = L::append(out, L::singleton(lower(e->elems[i], env)));
        }
        return out;
      }
      case ExprKind::EmptyLit:
        return L::empty(resolve_type(e->type));
      case ExprKind::OmegaLit:
        return L::omega(resolve_type(e->type));
      case ExprKind::Inl:
        return L::inj1(lower(e->a, env), resolve_type(e->type));
      case ExprKind::Inr:
        return L::inj2(lower(e->a, env), resolve_type(e->type));
      case ExprKind::Unary: {
        L::TermRef a = lower(e->a, env);
        require_bool(a, env, e->a->loc, "operand of '!'");
        return L::lnot(a);
      }
      case ExprKind::Binary:
        return lower_binary(e, env);
      case ExprKind::Call:
        return lower_call(e, env);
      case ExprKind::Lambda:
        error(e->loc,
              "a lambda may only appear as a function argument "
              "(NSC is first-order)");
      case ExprKind::Let: {
        L::TermRef bound = lower(e->a, env);
        TypeRef t = infer(bound, env, e->a->loc);
        if (e->type != nullptr) {
          const TypeRef want = resolve_type(e->type);
          if (!Type::equal(t, want)) {
            error(e->a->loc, "let binding '" + e->name + "' has type " +
                                 t->show() + " but is ascribed " +
                                 want->show());
          }
        }
        L::TermRef body = with_binding(env, e->name, t,
                                       [&](L::TypeEnv& inner) {
                                         return lower(e->b, inner);
                                       });
        return L::apply(L::lambda(e->name, t, body), bound);
      }
      case ExprKind::If: {
        L::TermRef cond = lower(e->a, env);
        require_bool(cond, env, e->a->loc, "if condition");
        L::TermRef then_t = lower(e->b, env);
        L::TermRef else_t = lower(e->c, env);
        const TypeRef tt = infer(then_t, env, e->b->loc);
        const TypeRef et = infer(else_t, env, e->c->loc);
        if (!Type::equal(tt, et)) {
          error(e->loc, "if branches have different types: " + tt->show() +
                            " vs " + et->show());
        }
        return L::ite(cond, then_t, else_t);
      }
      case ExprKind::While: {
        L::TermRef init = lower(e->a, env);
        const TypeRef state = infer(init, env, e->a->loc);
        L::TermRef cond, step;
        with_binding(env, e->name, state, [&](L::TypeEnv& inner) {
          cond = lower(e->b, inner);
          require_bool(cond, inner, e->b->loc, "while condition");
          step = lower(e->c, inner);
          const TypeRef st = infer(step, inner, e->c->loc);
          if (!Type::equal(st, state)) {
            error(e->c->loc, "while step has type " + st->show() +
                                 " but the state '" + e->name + "' has type " +
                                 state->show());
          }
          return L::TermRef{};
        });
        return L::apply(L::while_f(L::lambda(e->name, state, cond),
                                   L::lambda(e->name, state, step)),
                        init);
      }
      case ExprKind::Case: {
        L::TermRef scrut = lower(e->a, env);
        const TypeRef st = infer(scrut, env, e->a->loc);
        if (!st->is(TypeKind2::Sum)) {
          error(e->a->loc,
                "case scrutinee must have a sum type, got " + st->show());
        }
        L::TermRef left = with_binding(env, e->name, st->left(),
                                       [&](L::TypeEnv& inner) {
                                         return lower(e->b, inner);
                                       });
        L::TermRef right = with_binding(env, e->name2, st->right(),
                                        [&](L::TypeEnv& inner) {
                                          return lower(e->c, inner);
                                        });
        L::TypeEnv lenv = env;
        lenv[e->name] = st->left();
        const TypeRef lt = infer(left, lenv, e->b->loc);
        L::TypeEnv renv = env;
        renv[e->name2] = st->right();
        const TypeRef rt = infer(right, renv, e->c->loc);
        if (!Type::equal(lt, rt)) {
          error(e->loc, "case alternatives have different types: " +
                            lt->show() + " vs " + rt->show());
        }
        return L::case_of(scrut, e->name, left, e->name2, right);
      }
      case ExprKind::Comprehension: {
        L::TermRef source = lower(e->b, env);
        const TypeRef st = infer(source, env, e->b->loc);
        if (!st->is(TypeKind2::Seq)) {
          error(e->b->loc, "comprehension source must be a sequence, got " +
                               st->show());
        }
        const TypeRef elem = st->elem();
        if (e->c != nullptr) {
          L::TermRef cond;
          with_binding(env, e->name, elem, [&](L::TypeEnv& inner) {
            cond = lower(e->c, inner);
            require_bool(cond, inner, e->c->loc, "comprehension filter");
            return L::TermRef{};
          });
          source = L::apply(
              P::filter(L::lambda(e->name, elem, cond), elem), source);
        }
        L::TermRef body = with_binding(env, e->name, elem,
                                       [&](L::TypeEnv& inner) {
                                         return lower(e->a, inner);
                                       });
        return L::apply(L::map_f(L::lambda(e->name, elem, body)), source);
      }
    }
    error(e->loc, "internal: unhandled expression kind");
  }

  // std::map-based TypeEnv: extend, run, restore (supports shadowing).
  template <typename F>
  L::TermRef with_binding(L::TypeEnv& env, const std::string& name,
                          const TypeRef& t, F body) {
    auto it = env.find(name);
    const bool had = it != env.end();
    const TypeRef saved = had ? it->second : TypeRef{};
    env[name] = t;
    L::TermRef out = body(env);
    if (had) {
      env[name] = saved;
    } else {
      env.erase(name);
    }
    return out;
  }

  void require_bool(const L::TermRef& t, const L::TypeEnv& env, SrcLoc loc,
                    const std::string& what) {
    const TypeRef ty = infer(t, env, loc);
    if (!ty->is_boolean()) {
      error(loc, what + " must be bool, got " + ty->show());
    }
  }

  void require_nat(const TypeRef& t, SrcLoc loc, const std::string& what) {
    if (!t->is(TypeKind2::Nat)) {
      error(loc, what + " must be nat, got " + t->show());
    }
  }

  L::TermRef lower_binary(const ExprPtr& e, L::TypeEnv& env) {
    L::TermRef a = lower(e->a, env);
    L::TermRef b = lower(e->b, env);
    const TypeRef ta = infer(a, env, e->a->loc);
    const TypeRef tb = infer(b, env, e->b->loc);
    const char* spell = binop_spelling(e->bop);
    switch (e->bop) {
      case BinOp::Add:
      case BinOp::Monus:
      case BinOp::Mul:
      case BinOp::Div:
      case BinOp::Mod:
      case BinOp::Shr:
      case BinOp::Eq:
      case BinOp::Ne:
      case BinOp::Lt:
      case BinOp::Le:
      case BinOp::Gt:
      case BinOp::Ge:
        require_nat(ta, e->a->loc,
                    "left operand of '" + std::string(spell) + "'");
        require_nat(tb, e->b->loc,
                    "right operand of '" + std::string(spell) + "'");
        break;
      case BinOp::And:
      case BinOp::Or:
        require_bool(a, env, e->a->loc,
                     "left operand of '" + std::string(spell) + "'");
        require_bool(b, env, e->b->loc,
                     "right operand of '" + std::string(spell) + "'");
        break;
      case BinOp::Append:
        if (!ta->is(TypeKind2::Seq)) {
          error(e->a->loc,
                "left operand of '++' must be a sequence, got " + ta->show());
        }
        if (!Type::equal(ta, tb)) {
          error(e->b->loc, "'++' operands have different types: " +
                               ta->show() + " vs " + tb->show());
        }
        break;
    }
    switch (e->bop) {
      case BinOp::Add: return L::add(a, b);
      case BinOp::Monus: return L::monus_t(a, b);
      case BinOp::Mul: return L::mul(a, b);
      case BinOp::Div: return L::div_t(a, b);
      case BinOp::Mod: return L::mod_t(a, b);
      case BinOp::Shr: return L::rsh(a, b);
      case BinOp::Append: return L::append(a, b);
      case BinOp::Eq: return L::eq(a, b);
      case BinOp::Ne: return L::neq(a, b);
      case BinOp::Lt: return L::lt(a, b);
      case BinOp::Le: return L::leq(a, b);
      case BinOp::Gt: return L::lt(b, a);
      case BinOp::Ge: return L::leq(b, a);
      case BinOp::And: return L::land(a, b);
      case BinOp::Or: return L::lor(a, b);
    }
    error(e->loc, "internal: unhandled binary operator");
  }

  // -- calls ----------------------------------------------------------------

  struct Arg {
    L::TermRef term;
    TypeRef type;
    SrcLoc loc;
  };

  L::TermRef lower_call(const ExprPtr& e, L::TypeEnv& env) {
    if (builtin_set().count(e->name) != 0) {
      return lower_builtin(e, env);
    }
    auto it = fns_.find(e->name);
    if (it == fns_.end()) {
      if (env.count(e->name) != 0) {
        error(e->loc, "variable '" + e->name + "' is not a function");
      }
      if (declared_anywhere_.count(e->name) != 0) {
        error(e->loc, "function '" + e->name +
                          "' is defined later in the file (NSC surface "
                          "modules resolve top-down)");
      }
      error(e->loc, "unknown function '" + e->name + "'");
    }
    const ResolvedFn& f = *it->second;
    // Re-derive the per-parameter types from the tupled domain.
    std::vector<TypeRef> ptypes;
    TypeRef rest = f.dom;
    // The declaration's parameter count is not stored; recover it from the
    // call arity when it matches the tuple shape, preferring the exact
    // arity the caller used so single-pair-parameter functions stay
    // callable with one pair argument.
    const std::size_t arity = e->elems.size();
    for (std::size_t i = 0; i + 1 < arity && rest->is(TypeKind2::Prod); ++i) {
      ptypes.push_back(rest->left());
      rest = rest->right();
    }
    ptypes.push_back(rest);
    if (ptypes.size() != arity) {
      error(e->loc, "function '" + e->name + "' expects an argument of type " +
                        f.dom->show() + "; it cannot take " +
                        std::to_string(arity) + " arguments");
    }
    std::vector<Arg> args;
    for (std::size_t i = 0; i < arity; ++i) {
      Arg a;
      a.loc = e->elems[i]->loc;
      a.term = lower(e->elems[i], env);
      a.type = infer(a.term, env, a.loc);
      args.push_back(std::move(a));
    }
    for (std::size_t i = 0; i < arity; ++i) {
      if (!Type::equal(args[i].type, ptypes[i])) {
        error(args[i].loc, "argument " + std::to_string(i + 1) + " of '" +
                               e->name + "' has type " +
                               args[i].type->show() + " but the function "
                               "expects " + ptypes[i]->show());
      }
    }
    L::TermRef tuple = args[arity - 1].term;
    for (std::size_t i = arity - 1; i-- > 0;) {
      tuple = L::pair(args[i].term, tuple);
    }
    return L::apply(f.fn, tuple);
  }

  /// Resolve an expression in function-argument position (map/filter and
  /// friends): a typed lambda, the name of a declared function, or one of
  /// the unary builtins (eta-expanded at the expected domain).
  L::FuncRef lower_fn_arg(const ExprPtr& e, const TypeRef& dom,
                          L::TypeEnv& env, const std::string& what) {
    if (e->kind == ExprKind::Lambda) {
      const TypeRef pt = resolve_type(e->type);
      if (!Type::equal(pt, dom)) {
        error(e->loc, "lambda parameter has type " + pt->show() + " but " +
                          what + " needs a function on " + dom->show());
      }
      L::TermRef body = with_binding(env, e->name, pt,
                                     [&](L::TypeEnv& inner) {
                                       return lower(e->a, inner);
                                     });
      return L::lambda(e->name, pt, body);
    }
    if (e->kind == ExprKind::Var) {
      auto it = fns_.find(e->name);
      if (it != fns_.end()) {
        const ResolvedFn& f = *it->second;
        if (!Type::equal(f.dom, dom)) {
          error(e->loc, "function '" + e->name + "' has domain " +
                            f.dom->show() + " but " + what +
                            " needs a function on " + dom->show());
        }
        return f.fn;
      }
      if (builtin_set().count(e->name) != 0) {
        // Eta-expand a unary builtin at the expected domain.
        const std::string x = L::gensym("x");
        Expr::Init var;
        var.kind = ExprKind::Var;
        var.loc = e->loc;
        var.name = x;
        Expr::Init call;
        call.kind = ExprKind::Call;
        call.loc = e->loc;
        call.name = e->name;
        call.elems.push_back(Expr::make(std::move(var)));
        const ExprPtr call_e = Expr::make(std::move(call));
        L::TermRef body = with_binding(env, x, dom, [&](L::TypeEnv& inner) {
          return lower(call_e, inner);
        });
        return L::lambda(x, dom, body);
      }
      if (env.count(e->name) != 0) {
        error(e->loc, "variable '" + e->name + "' used where " + what +
                          " needs a function");
      }
      error(e->loc, "unknown function '" + e->name + "'");
    }
    error(e->loc, what + " needs a function argument: a lambda "
                      "(\\x : t. e) or a function name");
  }

  void need_args(const ExprPtr& e, std::size_t n) {
    if (e->elems.size() != n) {
      error(e->loc, "builtin '" + e->name + "' takes " + std::to_string(n) +
                        (n == 1 ? " argument" : " arguments") + ", got " +
                        std::to_string(e->elems.size()));
    }
  }

  Arg lower_arg(const ExprPtr& e, L::TypeEnv& env) {
    Arg a;
    a.loc = e->loc;
    a.term = lower(e, env);
    a.type = infer(a.term, env, e->loc);
    return a;
  }

  TypeRef require_seq(const Arg& a, const std::string& what) {
    if (!a.type->is(TypeKind2::Seq)) {
      error(a.loc, what + " must be a sequence, got " + a.type->show());
    }
    return a.type->elem();
  }

  void require_nat_seq(const Arg& a, const std::string& what) {
    if (!a.type->is(TypeKind2::Seq) || !a.type->elem()->is(TypeKind2::Nat)) {
      error(a.loc, what + " must be a sequence of nat, got " + a.type->show());
    }
  }

  L::TermRef lower_builtin(const ExprPtr& e, L::TypeEnv& env) {
    const std::string& n = e->name;
    // Function-argument builtins first (their first argument is special).
    if (n == "map" || n == "filter") {
      need_args(e, 2);
      Arg seq = lower_arg(e->elems[1], env);
      const TypeRef elem =
          require_seq(seq, "second argument of '" + n + "'");
      L::FuncRef f = lower_fn_arg(e->elems[0], elem, env, "'" + n + "'");
      if (n == "filter") {
        // check_func under the ambient env: the predicate may capture
        // enclosing variables (the broadcast pattern).
        TypeRef cod;
        try {
          cod = L::check_func(f, env).second;
        } catch (const TypeError& err) {
          error(e->elems[0]->loc, err.what());
        }
        if (!cod->is_boolean()) {
          error(e->elems[0]->loc,
                "'filter' needs a bool-valued predicate, got codomain " +
                    cod->show());
        }
        return L::apply(P::filter(f, elem), seq.term);
      }
      return L::apply(L::map_f(f), seq.term);
    }
    if (n == "length" || n == "flatten" || n == "get" || n == "enumerate" ||
        n == "first" || n == "last" || n == "tail" || n == "init" ||
        n == "sum" || n == "max" || n == "sqrt_positions" ||
        n == "sqrt_split" || n == "fst" || n == "snd" || n == "log2") {
      need_args(e, 1);
      Arg a = lower_arg(e->elems[0], env);
      if (n == "length") {
        require_seq(a, "argument of 'length'");
        return L::length(a.term);
      }
      if (n == "flatten") {
        const TypeRef elem = require_seq(a, "argument of 'flatten'");
        if (!elem->is(TypeKind2::Seq)) {
          error(a.loc, "argument of 'flatten' must be a sequence of "
                       "sequences, got " + a.type->show());
        }
        return L::flatten(a.term);
      }
      if (n == "get") {
        require_seq(a, "argument of 'get'");
        return L::get(a.term);
      }
      if (n == "enumerate") {
        require_seq(a, "argument of 'enumerate'");
        return L::enumerate(a.term);
      }
      if (n == "fst" || n == "snd") {
        if (!a.type->is(TypeKind2::Prod)) {
          error(a.loc, "argument of '" + n + "' must be a pair, got " +
                           a.type->show());
        }
        return n == "fst" ? L::proj1(a.term) : L::proj2(a.term);
      }
      if (n == "log2") {
        require_nat(a.type, a.loc, "argument of 'log2'");
        return L::log2_t(a.term);
      }
      if (n == "sum" || n == "max") {
        require_nat_seq(a, "argument of '" + n + "'");
        return L::apply(n == "sum" ? P::sum_nats() : P::max_nats(), a.term);
      }
      // first / last / tail / init / sqrt_positions / sqrt_split
      const TypeRef elem = require_seq(a, "argument of '" + n + "'");
      if (n == "first") return L::apply(P::first(elem), a.term);
      if (n == "last") return L::apply(P::last(elem), a.term);
      if (n == "tail") return L::apply(P::tail(elem), a.term);
      if (n == "init") return L::apply(P::remove_last(elem), a.term);
      if (n == "sqrt_positions") {
        return L::apply(P::sqrt_positions(elem), a.term);
      }
      return L::apply(P::sqrt_split(elem), a.term);
    }
    if (n == "zip" || n == "split" || n == "index" || n == "index_split" ||
        n == "merge" || n == "ranks") {
      need_args(e, 2);
      Arg a = lower_arg(e->elems[0], env);
      Arg b = lower_arg(e->elems[1], env);
      if (n == "zip") {
        require_seq(a, "first argument of 'zip'");
        require_seq(b, "second argument of 'zip'");
        return L::zip(a.term, b.term);
      }
      if (n == "split") {
        require_seq(a, "first argument of 'split'");
        require_nat_seq(b, "second argument of 'split'");
        return L::split(a.term, b.term);
      }
      if (n == "index" || n == "index_split") {
        const TypeRef elem =
            require_seq(a, "first argument of '" + n + "'");
        require_nat_seq(b, "second argument of '" + n + "'");
        const L::FuncRef f =
            n == "index" ? P::index(elem) : P::index_split(elem);
        return L::apply(f, L::pair(a.term, b.term));
      }
      // merge / ranks
      require_nat_seq(a, "first argument of '" + n + "'");
      require_nat_seq(b, "second argument of '" + n + "'");
      const L::FuncRef f = n == "merge" ? P::direct_merge() : P::direct_rank();
      return L::apply(f, L::pair(a.term, b.term));
    }
    error(e->loc, "internal: builtin '" + n + "' has no lowering");
  }

  using TypeKind2 = nsc::TypeKind;

  const SourceFile& src_;
  std::map<std::string, const ResolvedFn*> fns_;
  std::set<std::string> declared_anywhere_;
};

}  // namespace

ResolvedModule resolve(const Module& m, const SourceFile& src) {
  return Resolver(src).run(m);
}

ResolvedInput resolve_expression(const ExprPtr& e, const SourceFile& src) {
  return Resolver(src).resolve_closed_expr(e);
}

bool is_builtin_function(const std::string& name) {
  return builtin_set().count(name) != 0;
}

const std::vector<std::string>& builtin_function_names() {
  static const std::vector<std::string> names(builtin_set().begin(),
                                              builtin_set().end());
  return names;
}

}  // namespace nsc::front
