// Surface abstract syntax for the NSC textual frontend.
//
// This tree mirrors what the user wrote (comprehensions, operators, named
// function calls, type ascriptions) rather than the core calculus; the
// resolver (front/resolve.hpp) lowers it onto the nsc::lang AST.  Every
// node carries a SrcLoc so resolver-stage type errors can point into the
// source.  Structural equality (`equal`) ignores locations -- it is the
// relation under which the pretty-printer round-trips:
// parse(print(m)) == m.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "front/source.hpp"

namespace nsc::front {

// -- types -------------------------------------------------------------------

enum class TypeKind { Unit, Nat, Bool, Seq, Prod, Sum };

struct TypeExpr;
using TypeExprPtr = std::shared_ptr<const TypeExpr>;

/// Surface type: t ::= unit | nat | bool | [t] | t * t | t + t.
/// `bool` is kept distinct from `unit + unit` in the surface tree (so the
/// printer reproduces what was written) and collapses during resolution.
struct TypeExpr {
  TypeKind kind = TypeKind::Unit;
  SrcLoc loc;
  TypeExprPtr a;  // Seq element / Prod-Sum left
  TypeExprPtr b;  // Prod/Sum right

  static TypeExprPtr make(TypeKind kind, SrcLoc loc, TypeExprPtr a = nullptr,
                          TypeExprPtr b = nullptr);
};

// -- expressions -------------------------------------------------------------

enum class ExprKind {
  Var,            // x
  NatLit,         // 42
  UnitLit,        // ()
  BoolLit,        // true / false
  PairLit,        // (a, b)
  SeqLit,         // [e0, e1, ...]  (one or more elements)
  EmptyLit,       // empty[t]
  OmegaLit,       // omega[t]
  Inl,            // inl[t](e): t is the *right* summand
  Inr,            // inr[t](e): t is the *left* summand
  Unary,          // !e
  Binary,         // a op b
  Call,           // f(e0, ..., ek)  -- builtin or declared function
  Lambda,         // \x : t. e   (function-argument position only)
  Let,            // let x (: t)? = a in b
  If,             // if a then b else c
  While,          // while x = a; b; c
  Case,           // case a of inl x => b | inr y => c
  Comprehension,  // [a | x <- b] or [a | x <- b, c]
};

enum class BinOp {
  Add, Monus, Mul, Div, Mod, Shr, Append,
  Eq, Ne, Lt, Le, Gt, Ge, And, Or,
};

const char* binop_spelling(BinOp op);

struct Expr;
using ExprPtr = std::shared_ptr<const Expr>;

struct Expr {
  ExprKind kind = ExprKind::Var;
  SrcLoc loc;
  std::uint64_t nat = 0;       // NatLit
  bool bval = false;           // BoolLit
  BinOp bop = BinOp::Add;      // Binary
  std::string name;            // Var / Call callee / binder (Let, Lambda,
                               // While, Comprehension, Case-inl)
  std::string name2;           // Case-inr binder
  TypeExprPtr type;            // Empty/Omega/Inl/Inr annotation, Lambda
                               // param type, optional Let ascription
  ExprPtr a, b, c;             // children, by position (see ExprKind)
  std::vector<ExprPtr> elems;  // SeqLit elements / Call arguments

  struct Init {
    ExprKind kind = ExprKind::Var;
    SrcLoc loc;
    std::uint64_t nat = 0;
    bool bval = false;
    BinOp bop = BinOp::Add;
    std::string name, name2;
    TypeExprPtr type;
    ExprPtr a, b, c;
    std::vector<ExprPtr> elems;
  };
  static ExprPtr make(Init init);
};

// -- declarations ------------------------------------------------------------

struct Param {
  std::string name;
  TypeExprPtr type;
  SrcLoc loc;
};

enum class DeclKind {
  Fn,     // fn name(x : t, ...) (: t)? = body
  Input,  // input expr   (a sample argument for main; used by run/bench)
};

struct Decl {
  DeclKind kind = DeclKind::Fn;
  SrcLoc loc;
  std::string name;           // Fn
  std::vector<Param> params;  // Fn
  TypeExprPtr ret;            // optional result ascription
  ExprPtr body;               // Fn body / Input expression
};

struct Module {
  std::string file;
  std::vector<Decl> decls;
};

// -- structural equality (ignores SrcLoc) ------------------------------------

bool equal(const TypeExprPtr& a, const TypeExprPtr& b);
bool equal(const ExprPtr& a, const ExprPtr& b);
bool equal(const Decl& a, const Decl& b);
bool equal(const Module& a, const Module& b);

}  // namespace nsc::front
