// Pretty-printer for the NSC surface AST.
//
// Produces canonical, precedence-aware source text (minimal parentheses)
// that parses back to a structurally identical tree:
//     parse(print(m)) == m   (front::equal, which ignores locations)
// -- the round-trip property tested over the whole corpus in
// tests/test_front.cpp.  `nscc fmt` is a thin wrapper over print_module.
#pragma once

#include <string>

#include "front/ast.hpp"

namespace nsc::front {

std::string print_type(const TypeExprPtr& t);
std::string print_expr(const ExprPtr& e);
std::string print_decl(const Decl& d);
std::string print_module(const Module& m);

}  // namespace nsc::front
