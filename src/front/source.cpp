#include "front/source.hpp"

#include <sstream>

namespace nsc::front {

SourceFile::SourceFile(std::string name, std::string text)
    : name_(std::move(name)), text_(std::move(text)) {
  line_starts_.push_back(0);
  for (std::uint32_t i = 0; i < text_.size(); ++i) {
    if (text_[i] == '\n') line_starts_.push_back(i + 1);
  }
}

std::string SourceFile::line_text(std::uint32_t line) const {
  if (line == 0 || line > line_starts_.size()) return "";
  const std::uint32_t start = line_starts_[line - 1];
  std::uint32_t end = start;
  while (end < text_.size() && text_[end] != '\n') ++end;
  return text_.substr(start, end - start);
}

std::string Diagnostic::render() const {
  std::ostringstream out;
  out << file << ":" << loc.line << ":" << loc.col << ": error: " << message;
  if (!expected.empty()) {
    out << "; expected ";
    for (std::size_t i = 0; i < expected.size(); ++i) {
      if (i != 0) out << (i + 1 == expected.size() ? " or " : ", ");
      out << expected[i];
    }
  }
  if (!source_line.empty()) {
    out << "\n  " << source_line << "\n  ";
    // Tabs keep their width in the caret line so it stays aligned.
    for (std::uint32_t i = 1; i < loc.col && i <= source_line.size(); ++i) {
      out << (source_line[i - 1] == '\t' ? '\t' : ' ');
    }
    out << "^";
  }
  return out.str();
}

}  // namespace nsc::front
