// Recursive-descent parser for the NSC surface language.
//
// Grammar (authoritative reference: front/doc.cpp, surfaced as
// docs/nsc-language.md and `nscc doc`):
//
//   module  := { decl }
//   decl    := 'fn' name '(' param {',' param} ')' [':' type] '=' expr
//            | 'input' expr
//   param   := name ':' type
//   type    := tprod ['+' type]                       -- sum, right-assoc
//   tprod   := tatom ['*' tprod]                      -- product, right-assoc
//   tatom   := 'nat' | 'unit' | 'bool' | '[' type ']' | '(' type ')'
//   expr    := 'let' name [':' type] '=' expr 'in' expr
//            | 'if' expr 'then' expr 'else' expr
//            | 'while' name '=' expr ';' expr ';' expr
//            | 'case' expr 'of' 'inl' name '=>' expr '|' 'inr' name '=>' expr
//            | '\' name ':' type '.' expr
//            | binary-operator expression over unary/primary
//   primary := number | 'true' | 'false' | '(' ')' | '(' expr [',' expr] ')'
//            | name [ '(' expr {',' expr} ')' ]
//            | 'empty' '[' type ']' | 'omega' '[' type ']'
//            | ('inl' | 'inr') '[' type ']' '(' expr ')'
//            | '[' expr {',' expr} ']'
//            | '[' expr '|' name '<-' expr [',' expr] ']'
//
// All failures are FrontError diagnostics with line:col, a source snippet
// and an expected-token set; the parser never asserts and guards its
// recursion depth, so arbitrarily malformed input cannot crash it.
#pragma once

#include "front/ast.hpp"
#include "front/source.hpp"

namespace nsc::front {

/// Parse a whole module (sequence of declarations up to end of input).
Module parse_module(const SourceFile& src);

/// Parse a single expression spanning the whole input (the nscc driver
/// uses this for --input values).
ExprPtr parse_expression(const SourceFile& src);

}  // namespace nsc::front
