// Lexer for the NSC surface language.
//
// Produces a complete token stream (terminated by an Eof token) with a
// SrcLoc on every token.  `--` starts a line comment.  The only failure
// mode is FrontError (unknown character, malformed/overflowing number):
// the lexer never asserts.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "front/source.hpp"

namespace nsc::front {

enum class Tok {
  Eof,
  Ident,     // variable / function / builtin names
  Number,    // natural literal (value in Token::nat)
  // keywords
  KwFn, KwInput, KwLet, KwIn, KwIf, KwThen, KwElse, KwWhile, KwCase, KwOf,
  KwInl, KwInr, KwTrue, KwFalse, KwOmega, KwEmpty,
  KwNat, KwUnit, KwBool,
  // punctuation
  LParen, RParen, LBracket, RBracket, Comma, Semi, Colon, Dot, Pipe,
  Backslash, FatArrow, LeftArrow, Assign,
  // operators
  Plus, Minus, Star, Slash, Percent, Shr, PlusPlus,
  EqEq, BangEq, Lt, Le, Gt, Ge, AmpAmp, PipePipe, Bang,
};

/// Display name used in diagnostics and expected-token sets, e.g. "'let'",
/// "identifier", "'=>'".
const char* tok_name(Tok t);

struct Token {
  Tok kind = Tok::Eof;
  SrcLoc loc;
  std::string text;       // identifier spelling (Ident) / literal spelling
  std::uint64_t nat = 0;  // value of a Number token

  /// Canonical source spelling (used by the mutation smoke test to
  /// re-render mutated token streams as text).
  std::string spelling() const;
};

/// Tokenize the whole file.  Throws FrontError on the first lexical error.
std::vector<Token> lex(const SourceFile& src);

}  // namespace nsc::front
