#include "front/lexer.hpp"

#include <cctype>
#include <limits>
#include <utility>

namespace nsc::front {

const char* tok_name(Tok t) {
  switch (t) {
    case Tok::Eof: return "end of input";
    case Tok::Ident: return "identifier";
    case Tok::Number: return "number";
    case Tok::KwFn: return "'fn'";
    case Tok::KwInput: return "'input'";
    case Tok::KwLet: return "'let'";
    case Tok::KwIn: return "'in'";
    case Tok::KwIf: return "'if'";
    case Tok::KwThen: return "'then'";
    case Tok::KwElse: return "'else'";
    case Tok::KwWhile: return "'while'";
    case Tok::KwCase: return "'case'";
    case Tok::KwOf: return "'of'";
    case Tok::KwInl: return "'inl'";
    case Tok::KwInr: return "'inr'";
    case Tok::KwTrue: return "'true'";
    case Tok::KwFalse: return "'false'";
    case Tok::KwOmega: return "'omega'";
    case Tok::KwEmpty: return "'empty'";
    case Tok::KwNat: return "'nat'";
    case Tok::KwUnit: return "'unit'";
    case Tok::KwBool: return "'bool'";
    case Tok::LParen: return "'('";
    case Tok::RParen: return "')'";
    case Tok::LBracket: return "'['";
    case Tok::RBracket: return "']'";
    case Tok::Comma: return "','";
    case Tok::Semi: return "';'";
    case Tok::Colon: return "':'";
    case Tok::Dot: return "'.'";
    case Tok::Pipe: return "'|'";
    case Tok::Backslash: return "'\\'";
    case Tok::FatArrow: return "'=>'";
    case Tok::LeftArrow: return "'<-'";
    case Tok::Assign: return "'='";
    case Tok::Plus: return "'+'";
    case Tok::Minus: return "'-'";
    case Tok::Star: return "'*'";
    case Tok::Slash: return "'/'";
    case Tok::Percent: return "'%'";
    case Tok::Shr: return "'>>'";
    case Tok::PlusPlus: return "'++'";
    case Tok::EqEq: return "'=='";
    case Tok::BangEq: return "'!='";
    case Tok::Lt: return "'<'";
    case Tok::Le: return "'<='";
    case Tok::Gt: return "'>'";
    case Tok::Ge: return "'>='";
    case Tok::AmpAmp: return "'&&'";
    case Tok::PipePipe: return "'||'";
    case Tok::Bang: return "'!'";
  }
  return "?";
}

std::string Token::spelling() const {
  switch (kind) {
    case Tok::Eof: return "";
    case Tok::Ident:
    case Tok::Number: return text;
    case Tok::KwFn: return "fn";
    case Tok::KwInput: return "input";
    case Tok::KwLet: return "let";
    case Tok::KwIn: return "in";
    case Tok::KwIf: return "if";
    case Tok::KwThen: return "then";
    case Tok::KwElse: return "else";
    case Tok::KwWhile: return "while";
    case Tok::KwCase: return "case";
    case Tok::KwOf: return "of";
    case Tok::KwInl: return "inl";
    case Tok::KwInr: return "inr";
    case Tok::KwTrue: return "true";
    case Tok::KwFalse: return "false";
    case Tok::KwOmega: return "omega";
    case Tok::KwEmpty: return "empty";
    case Tok::KwNat: return "nat";
    case Tok::KwUnit: return "unit";
    case Tok::KwBool: return "bool";
    case Tok::LParen: return "(";
    case Tok::RParen: return ")";
    case Tok::LBracket: return "[";
    case Tok::RBracket: return "]";
    case Tok::Comma: return ",";
    case Tok::Semi: return ";";
    case Tok::Colon: return ":";
    case Tok::Dot: return ".";
    case Tok::Pipe: return "|";
    case Tok::Backslash: return "\\";
    case Tok::FatArrow: return "=>";
    case Tok::LeftArrow: return "<-";
    case Tok::Assign: return "=";
    case Tok::Plus: return "+";
    case Tok::Minus: return "-";
    case Tok::Star: return "*";
    case Tok::Slash: return "/";
    case Tok::Percent: return "%";
    case Tok::Shr: return ">>";
    case Tok::PlusPlus: return "++";
    case Tok::EqEq: return "==";
    case Tok::BangEq: return "!=";
    case Tok::Lt: return "<";
    case Tok::Le: return "<=";
    case Tok::Gt: return ">";
    case Tok::Ge: return ">=";
    case Tok::AmpAmp: return "&&";
    case Tok::PipePipe: return "||";
    case Tok::Bang: return "!";
  }
  return "";
}

namespace {

struct Keyword {
  const char* name;
  Tok tok;
};

constexpr Keyword kKeywords[] = {
    {"fn", Tok::KwFn},       {"input", Tok::KwInput}, {"let", Tok::KwLet},
    {"in", Tok::KwIn},       {"if", Tok::KwIf},       {"then", Tok::KwThen},
    {"else", Tok::KwElse},   {"while", Tok::KwWhile}, {"case", Tok::KwCase},
    {"of", Tok::KwOf},       {"inl", Tok::KwInl},     {"inr", Tok::KwInr},
    {"true", Tok::KwTrue},   {"false", Tok::KwFalse}, {"omega", Tok::KwOmega},
    {"empty", Tok::KwEmpty}, {"nat", Tok::KwNat},     {"unit", Tok::KwUnit},
    {"bool", Tok::KwBool},
};

class Lexer {
 public:
  explicit Lexer(const SourceFile& src) : src_(src), text_(src.text()) {}

  std::vector<Token> run() {
    std::vector<Token> out;
    for (;;) {
      skip_trivia();
      Token t = next_token();
      const bool done = t.kind == Tok::Eof;
      out.push_back(std::move(t));
      if (done) return out;
    }
  }

 private:
  [[noreturn]] void error(SrcLoc loc, const std::string& message) {
    Diagnostic d;
    d.kind = DiagKind::Lex;
    d.loc = loc;
    d.file = src_.name();
    d.message = message;
    d.source_line = src_.line_text(loc.line);
    throw FrontError(std::move(d));
  }

  bool at_end() const { return pos_ >= text_.size(); }
  char peek(std::size_t ahead = 0) const {
    return pos_ + ahead < text_.size() ? text_[pos_ + ahead] : '\0';
  }
  char advance() {
    const char c = text_[pos_++];
    if (c == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    return c;
  }

  SrcLoc here() const {
    return SrcLoc{line_, col_, static_cast<std::uint32_t>(pos_)};
  }

  void skip_trivia() {
    for (;;) {
      if (at_end()) return;
      const char c = peek();
      if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
        advance();
      } else if (c == '-' && peek(1) == '-') {
        while (!at_end() && peek() != '\n') advance();
      } else {
        return;
      }
    }
  }

  Token make(Tok kind, SrcLoc loc) {
    Token t;
    t.kind = kind;
    t.loc = loc;
    return t;
  }

  Token next_token() {
    const SrcLoc loc = here();
    if (at_end()) return make(Tok::Eof, loc);
    const char c = peek();
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::string name;
      while (!at_end() && (std::isalnum(static_cast<unsigned char>(peek())) ||
                           peek() == '_')) {
        name.push_back(advance());
      }
      for (const auto& kw : kKeywords) {
        if (name == kw.name) return make(kw.tok, loc);
      }
      Token t = make(Tok::Ident, loc);
      t.text = std::move(name);
      return t;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::string digits;
      while (!at_end() && std::isdigit(static_cast<unsigned char>(peek()))) {
        digits.push_back(advance());
      }
      std::uint64_t value = 0;
      for (const char d : digits) {
        const std::uint64_t digit = static_cast<std::uint64_t>(d - '0');
        if (value > (std::numeric_limits<std::uint64_t>::max() - digit) / 10) {
          error(loc, "natural literal '" + digits + "' does not fit in 64 bits");
        }
        value = value * 10 + digit;
      }
      Token t = make(Tok::Number, loc);
      t.text = std::move(digits);
      t.nat = value;
      return t;
    }
    advance();
    switch (c) {
      case '(': return make(Tok::LParen, loc);
      case ')': return make(Tok::RParen, loc);
      case '[': return make(Tok::LBracket, loc);
      case ']': return make(Tok::RBracket, loc);
      case ',': return make(Tok::Comma, loc);
      case ';': return make(Tok::Semi, loc);
      case ':': return make(Tok::Colon, loc);
      case '.': return make(Tok::Dot, loc);
      case '\\': return make(Tok::Backslash, loc);
      case '%': return make(Tok::Percent, loc);
      case '/': return make(Tok::Slash, loc);
      case '*': return make(Tok::Star, loc);
      case '+':
        if (peek() == '+') {
          advance();
          return make(Tok::PlusPlus, loc);
        }
        return make(Tok::Plus, loc);
      case '-':  // "--" was consumed as a comment by skip_trivia
        return make(Tok::Minus, loc);
      case '=':
        if (peek() == '=') {
          advance();
          return make(Tok::EqEq, loc);
        }
        if (peek() == '>') {
          advance();
          return make(Tok::FatArrow, loc);
        }
        return make(Tok::Assign, loc);
      case '!':
        if (peek() == '=') {
          advance();
          return make(Tok::BangEq, loc);
        }
        return make(Tok::Bang, loc);
      case '<':
        if (peek() == '=') {
          advance();
          return make(Tok::Le, loc);
        }
        if (peek() == '-') {
          advance();
          return make(Tok::LeftArrow, loc);
        }
        return make(Tok::Lt, loc);
      case '>':
        if (peek() == '=') {
          advance();
          return make(Tok::Ge, loc);
        }
        if (peek() == '>') {
          advance();
          return make(Tok::Shr, loc);
        }
        return make(Tok::Gt, loc);
      case '&':
        if (peek() == '&') {
          advance();
          return make(Tok::AmpAmp, loc);
        }
        error(loc, "stray '&' (use '&&' for boolean and)");
      case '|':
        if (peek() == '|') {
          advance();
          return make(Tok::PipePipe, loc);
        }
        return make(Tok::Pipe, loc);
      default:
        error(loc, std::string("unexpected character '") + c + "'");
    }
  }

  const SourceFile& src_;
  const std::string& text_;
  std::size_t pos_ = 0;
  std::uint32_t line_ = 1;
  std::uint32_t col_ = 1;
};

}  // namespace

std::vector<Token> lex(const SourceFile& src) { return Lexer(src).run(); }

}  // namespace nsc::front
