#include "front/parser.hpp"

#include <initializer_list>
#include <utility>

#include "front/lexer.hpp"

namespace nsc::front {
namespace {

/// Recursion guard: deeper nesting than any real program needs, shallow
/// enough that adversarial input (the mutation smoke test) cannot blow the
/// stack even under sanitizers.
constexpr std::size_t kMaxDepth = 400;

class Parser {
 public:
  Parser(const SourceFile& src, std::vector<Token> tokens)
      : src_(src), toks_(std::move(tokens)) {}

  Module parse_module() {
    Module m;
    m.file = src_.name();
    while (!at(Tok::Eof)) {
      m.decls.push_back(parse_decl());
    }
    return m;
  }

  ExprPtr parse_expression_only() {
    ExprPtr e = parse_expr();
    if (!at(Tok::Eof)) {
      error("unexpected " + std::string(tok_name(peek().kind)) +
                " after expression",
            {tok_name(Tok::Eof)});
    }
    return e;
  }

 private:
  // -- token plumbing -------------------------------------------------------

  const Token& peek(std::size_t ahead = 0) const {
    const std::size_t i = pos_ + ahead;
    return toks_[i < toks_.size() ? i : toks_.size() - 1];
  }
  bool at(Tok k) const { return peek().kind == k; }
  const Token& advance() { return toks_[pos_ < toks_.size() - 1 ? pos_++ : pos_]; }
  bool eat(Tok k) {
    if (!at(k)) return false;
    advance();
    return true;
  }

  [[noreturn]] void error(const std::string& message,
                          std::vector<std::string> expected = {}) {
    const Token& t = peek();
    Diagnostic d;
    d.kind = DiagKind::Parse;
    d.loc = t.loc;
    d.file = src_.name();
    d.message = message;
    d.expected = std::move(expected);
    d.source_line = src_.line_text(t.loc.line);
    throw FrontError(std::move(d));
  }

  const Token& expect(Tok k, const std::string& context) {
    if (!at(k)) {
      error("unexpected " + std::string(tok_name(peek().kind)) + " " + context,
            {tok_name(k)});
    }
    return advance();
  }

  std::string expect_name(const std::string& context) {
    if (!at(Tok::Ident)) {
      error("unexpected " + std::string(tok_name(peek().kind)) + " " + context,
            {tok_name(Tok::Ident)});
    }
    return advance().text;
  }

  struct DepthGuard {
    explicit DepthGuard(Parser& p) : p_(p) {
      if (++p_.depth_ > kMaxDepth) {
        p_.error("expression nesting deeper than " +
                 std::to_string(kMaxDepth) + " levels");
      }
    }
    ~DepthGuard() { --p_.depth_; }
    Parser& p_;
  };

  // -- declarations ---------------------------------------------------------

  Decl parse_decl() {
    Decl d;
    d.loc = peek().loc;
    if (eat(Tok::KwInput)) {
      d.kind = DeclKind::Input;
      d.body = parse_expr();
      return d;
    }
    if (!at(Tok::KwFn)) {
      error("unexpected " + std::string(tok_name(peek().kind)) +
                " at top level",
            {tok_name(Tok::KwFn), tok_name(Tok::KwInput)});
    }
    advance();
    d.kind = DeclKind::Fn;
    d.name = expect_name("where a function name should be");
    expect(Tok::LParen, "in function definition (parameter list)");
    do {
      Param p;
      p.loc = peek().loc;
      p.name = expect_name("where a parameter name should be");
      expect(Tok::Colon, "after parameter name");
      p.type = parse_type();
      d.params.push_back(std::move(p));
    } while (eat(Tok::Comma));
    expect(Tok::RParen, "after parameter list");
    if (eat(Tok::Colon)) d.ret = parse_type();
    expect(Tok::Assign, "before function body");
    d.body = parse_expr();
    return d;
  }

  // -- types ----------------------------------------------------------------

  TypeExprPtr parse_type() {
    DepthGuard guard(*this);
    TypeExprPtr left = parse_type_prod();
    if (eat(Tok::Plus)) {
      TypeExprPtr right = parse_type();  // right-assoc
      return TypeExpr::make(TypeKind::Sum, left->loc, left, right);
    }
    return left;
  }

  TypeExprPtr parse_type_prod() {
    DepthGuard guard(*this);
    TypeExprPtr left = parse_type_atom();
    if (eat(Tok::Star)) {
      TypeExprPtr right = parse_type_prod();  // right-assoc
      return TypeExpr::make(TypeKind::Prod, left->loc, left, right);
    }
    return left;
  }

  TypeExprPtr parse_type_atom() {
    DepthGuard guard(*this);
    const SrcLoc loc = peek().loc;
    if (eat(Tok::KwNat)) return TypeExpr::make(TypeKind::Nat, loc);
    if (eat(Tok::KwUnit)) return TypeExpr::make(TypeKind::Unit, loc);
    if (eat(Tok::KwBool)) return TypeExpr::make(TypeKind::Bool, loc);
    if (eat(Tok::LBracket)) {
      TypeExprPtr elem = parse_type();
      expect(Tok::RBracket, "after sequence element type");
      return TypeExpr::make(TypeKind::Seq, loc, elem);
    }
    if (eat(Tok::LParen)) {
      TypeExprPtr t = parse_type();
      expect(Tok::RParen, "after parenthesized type");
      return t;
    }
    error("unexpected " + std::string(tok_name(peek().kind)) +
              " where a type should be",
          {tok_name(Tok::KwNat), tok_name(Tok::KwUnit), tok_name(Tok::KwBool),
           tok_name(Tok::LBracket), tok_name(Tok::LParen)});
  }

  // -- expressions ----------------------------------------------------------

  ExprPtr parse_expr() {
    DepthGuard guard(*this);
    const SrcLoc loc = peek().loc;
    switch (peek().kind) {
      case Tok::KwLet: {
        advance();
        Expr::Init init;
        init.kind = ExprKind::Let;
        init.loc = loc;
        init.name = expect_name("where a let binder should be");
        if (eat(Tok::Colon)) init.type = parse_type();
        expect(Tok::Assign, "in let binding");
        init.a = parse_expr();
        expect(Tok::KwIn, "after let binding");
        init.b = parse_expr();
        return Expr::make(std::move(init));
      }
      case Tok::KwIf: {
        advance();
        Expr::Init init;
        init.kind = ExprKind::If;
        init.loc = loc;
        init.a = parse_expr();
        expect(Tok::KwThen, "in if expression");
        init.b = parse_expr();
        expect(Tok::KwElse, "in if expression");
        init.c = parse_expr();
        return Expr::make(std::move(init));
      }
      case Tok::KwWhile: {
        advance();
        Expr::Init init;
        init.kind = ExprKind::While;
        init.loc = loc;
        init.name = expect_name("where the while state binder should be");
        expect(Tok::Assign, "in while (initial state)");
        init.a = parse_expr();
        expect(Tok::Semi, "after while initial state");
        init.b = parse_expr();
        expect(Tok::Semi, "after while condition");
        init.c = parse_expr();
        return Expr::make(std::move(init));
      }
      case Tok::KwCase: {
        advance();
        Expr::Init init;
        init.kind = ExprKind::Case;
        init.loc = loc;
        init.a = parse_expr();
        expect(Tok::KwOf, "in case expression");
        expect(Tok::KwInl, "at the first case alternative");
        init.name = expect_name("where the inl binder should be");
        expect(Tok::FatArrow, "after inl binder");
        init.b = parse_expr();
        expect(Tok::Pipe, "between case alternatives");
        expect(Tok::KwInr, "at the second case alternative");
        init.name2 = expect_name("where the inr binder should be");
        expect(Tok::FatArrow, "after inr binder");
        init.c = parse_expr();
        return Expr::make(std::move(init));
      }
      case Tok::Backslash: {
        advance();
        Expr::Init init;
        init.kind = ExprKind::Lambda;
        init.loc = loc;
        init.name = expect_name("where the lambda parameter should be");
        expect(Tok::Colon, "after lambda parameter (NSC lambdas are typed)");
        init.type = parse_type();
        expect(Tok::Dot, "after lambda parameter type");
        init.a = parse_expr();
        return Expr::make(std::move(init));
      }
      default:
        return parse_or();
    }
  }

  ExprPtr parse_or() {
    DepthGuard guard(*this);
    ExprPtr left = parse_and();
    while (at(Tok::PipePipe)) {
      const SrcLoc loc = advance().loc;
      left = binary(BinOp::Or, loc, left, parse_and());
    }
    return left;
  }

  ExprPtr parse_and() {
    DepthGuard guard(*this);
    ExprPtr left = parse_cmp();
    while (at(Tok::AmpAmp)) {
      const SrcLoc loc = advance().loc;
      left = binary(BinOp::And, loc, left, parse_cmp());
    }
    return left;
  }

  bool cmp_op(Tok t, BinOp* op) const {
    switch (t) {
      case Tok::EqEq: *op = BinOp::Eq; return true;
      case Tok::BangEq: *op = BinOp::Ne; return true;
      case Tok::Lt: *op = BinOp::Lt; return true;
      case Tok::Le: *op = BinOp::Le; return true;
      case Tok::Gt: *op = BinOp::Gt; return true;
      case Tok::Ge: *op = BinOp::Ge; return true;
      default: return false;
    }
  }

  ExprPtr parse_cmp() {
    DepthGuard guard(*this);
    ExprPtr left = parse_append();
    BinOp op;
    if (!cmp_op(peek().kind, &op)) return left;
    const SrcLoc loc = advance().loc;
    ExprPtr right = parse_append();
    BinOp trailing;
    if (cmp_op(peek().kind, &trailing)) {
      error("comparison operators do not chain; parenthesize the comparison");
    }
    return binary(op, loc, left, right);
  }

  ExprPtr parse_append() {
    DepthGuard guard(*this);
    ExprPtr left = parse_add();
    while (at(Tok::PlusPlus)) {
      const SrcLoc loc = advance().loc;
      left = binary(BinOp::Append, loc, left, parse_add());
    }
    return left;
  }

  ExprPtr parse_add() {
    DepthGuard guard(*this);
    ExprPtr left = parse_mul();
    for (;;) {
      if (at(Tok::Plus)) {
        const SrcLoc loc = advance().loc;
        left = binary(BinOp::Add, loc, left, parse_mul());
      } else if (at(Tok::Minus)) {
        const SrcLoc loc = advance().loc;
        left = binary(BinOp::Monus, loc, left, parse_mul());
      } else {
        return left;
      }
    }
  }

  ExprPtr parse_mul() {
    DepthGuard guard(*this);
    ExprPtr left = parse_unary();
    for (;;) {
      BinOp op;
      if (at(Tok::Star)) {
        op = BinOp::Mul;
      } else if (at(Tok::Slash)) {
        op = BinOp::Div;
      } else if (at(Tok::Percent)) {
        op = BinOp::Mod;
      } else if (at(Tok::Shr)) {
        op = BinOp::Shr;
      } else {
        return left;
      }
      const SrcLoc loc = advance().loc;
      left = binary(op, loc, left, parse_unary());
    }
  }

  ExprPtr parse_unary() {
    DepthGuard guard(*this);
    if (at(Tok::Bang)) {
      const SrcLoc loc = advance().loc;
      Expr::Init init;
      init.kind = ExprKind::Unary;
      init.loc = loc;
      init.a = parse_unary();
      return Expr::make(std::move(init));
    }
    return parse_primary();
  }

  ExprPtr parse_primary() {
    DepthGuard guard(*this);
    const SrcLoc loc = peek().loc;
    switch (peek().kind) {
      case Tok::Number: {
        Expr::Init init;
        init.kind = ExprKind::NatLit;
        init.loc = loc;
        init.nat = advance().nat;
        return Expr::make(std::move(init));
      }
      case Tok::KwTrue:
      case Tok::KwFalse: {
        Expr::Init init;
        init.kind = ExprKind::BoolLit;
        init.loc = loc;
        init.bval = advance().kind == Tok::KwTrue;
        return Expr::make(std::move(init));
      }
      case Tok::Ident: {
        Expr::Init init;
        init.loc = loc;
        init.name = advance().text;
        if (at(Tok::LParen)) {
          advance();
          init.kind = ExprKind::Call;
          if (!at(Tok::RParen)) {
            do {
              init.elems.push_back(parse_expr());
            } while (eat(Tok::Comma));
          }
          expect(Tok::RParen, "after call arguments");
        } else {
          init.kind = ExprKind::Var;
        }
        return Expr::make(std::move(init));
      }
      case Tok::KwEmpty:
      case Tok::KwOmega: {
        Expr::Init init;
        init.kind =
            peek().kind == Tok::KwEmpty ? ExprKind::EmptyLit : ExprKind::OmegaLit;
        init.loc = loc;
        const char* what =
            peek().kind == Tok::KwEmpty ? "'empty'" : "'omega'";
        advance();
        expect(Tok::LBracket,
               std::string("after ") + what + " (its type argument)");
        init.type = parse_type();
        expect(Tok::RBracket, std::string("after the ") + what +
                                  " type argument");
        return Expr::make(std::move(init));
      }
      case Tok::KwInl:
      case Tok::KwInr: {
        Expr::Init init;
        init.kind = peek().kind == Tok::KwInl ? ExprKind::Inl : ExprKind::Inr;
        const bool left = peek().kind == Tok::KwInl;
        init.loc = loc;
        advance();
        expect(Tok::LBracket, left ? "after 'inl' (the right-summand type)"
                                   : "after 'inr' (the left-summand type)");
        init.type = parse_type();
        expect(Tok::RBracket, "after the injection type argument");
        expect(Tok::LParen, "before the injected value");
        init.a = parse_expr();
        expect(Tok::RParen, "after the injected value");
        return Expr::make(std::move(init));
      }
      case Tok::LParen: {
        advance();
        if (eat(Tok::RParen)) {
          Expr::Init init;
          init.kind = ExprKind::UnitLit;
          init.loc = loc;
          return Expr::make(std::move(init));
        }
        ExprPtr first = parse_expr();
        if (eat(Tok::Comma)) {
          Expr::Init init;
          init.kind = ExprKind::PairLit;
          init.loc = loc;
          init.a = first;
          init.b = parse_expr();
          expect(Tok::RParen, "after pair components");
          return Expr::make(std::move(init));
        }
        expect(Tok::RParen, "after parenthesized expression");
        return first;
      }
      case Tok::LBracket: {
        advance();
        if (at(Tok::RBracket)) {
          error(
              "an empty sequence literal has no element type; "
              "write empty[t] instead of []");
        }
        ExprPtr first = parse_expr();
        if (eat(Tok::Pipe)) {
          Expr::Init init;
          init.kind = ExprKind::Comprehension;
          init.loc = loc;
          init.a = first;
          init.name = expect_name("where the comprehension binder should be");
          expect(Tok::LeftArrow, "after comprehension binder");
          init.b = parse_expr();
          if (eat(Tok::Comma)) init.c = parse_expr();
          expect(Tok::RBracket, "after comprehension");
          return Expr::make(std::move(init));
        }
        Expr::Init init;
        init.kind = ExprKind::SeqLit;
        init.loc = loc;
        init.elems.push_back(first);
        while (eat(Tok::Comma)) init.elems.push_back(parse_expr());
        expect(Tok::RBracket, "after sequence literal");
        return Expr::make(std::move(init));
      }
      default:
        error("unexpected " + std::string(tok_name(peek().kind)) +
                  " where an expression should be",
              {tok_name(Tok::Number), tok_name(Tok::Ident), tok_name(Tok::LParen),
               tok_name(Tok::LBracket), tok_name(Tok::KwLet), tok_name(Tok::KwIf),
               tok_name(Tok::KwWhile), tok_name(Tok::KwCase),
               tok_name(Tok::Backslash)});
    }
  }

  static ExprPtr binary(BinOp op, SrcLoc loc, ExprPtr a, ExprPtr b) {
    Expr::Init init;
    init.kind = ExprKind::Binary;
    init.loc = loc;
    init.bop = op;
    init.a = std::move(a);
    init.b = std::move(b);
    return Expr::make(std::move(init));
  }

  const SourceFile& src_;
  std::vector<Token> toks_;
  std::size_t pos_ = 0;
  std::size_t depth_ = 0;
};

}  // namespace

Module parse_module(const SourceFile& src) {
  return Parser(src, lex(src)).parse_module();
}

ExprPtr parse_expression(const SourceFile& src) {
  return Parser(src, lex(src)).parse_expression_only();
}

}  // namespace nsc::front
