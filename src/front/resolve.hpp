// Resolver: lowers a parsed surface Module onto the core nsc::lang AST.
//
// Each `fn` declaration becomes a *closed* lang::FuncRef (multi-parameter
// functions take a right-nested tuple; calls to earlier declarations are
// inlined, so the result needs no global environment and feeds directly
// into lang::check_func, lang::apply_fn and sa::compile_nsc).  Surface
// sugar -- comprehensions, boolean/comparison operators, the prelude
// builtins (filter/map/sum/index/...) -- expands to the section 3 derived
// forms of nsc/build.hpp and nsc/prelude.hpp.
//
// The resolver typechecks as it lowers (using lang::check_term on the
// lowered sub-terms), so every type error is reported as a FrontError
// with the line:col of the offending *surface* node, not an exception
// from deep inside the core typechecker.
#pragma once

#include <string>
#include <vector>

#include "front/ast.hpp"
#include "front/source.hpp"
#include "nsc/ast.hpp"
#include "object/type.hpp"

namespace nsc::front {

struct ResolvedFn {
  std::string name;
  SrcLoc loc;
  lang::FuncRef fn;  ///< closed core function
  TypeRef dom, cod;
};

struct ResolvedInput {
  SrcLoc loc;
  lang::TermRef term;  ///< closed core term
  TypeRef type;
};

struct ResolvedModule {
  std::string file;
  std::vector<ResolvedFn> fns;       // declaration order
  std::vector<ResolvedInput> inputs;

  /// nullptr when absent.
  const ResolvedFn* find(const std::string& name) const;
  /// The entry point; throws FrontError when the module defines no main.
  const ResolvedFn& main() const;
};

/// Lower + typecheck a whole module.  Throws FrontError on any semantic
/// error (unknown names, arity or type mismatches, first-order violations,
/// inputs not matching main's domain).
ResolvedModule resolve(const Module& m, const SourceFile& src);

/// Lower + typecheck a standalone closed expression (nscc --input values).
ResolvedInput resolve_expression(const ExprPtr& e, const SourceFile& src);

/// Lower a surface type.
TypeRef resolve_type(const TypeExprPtr& t);

/// True iff `name` is a reserved builtin function name (length, map,
/// filter, sum, ...).  Declared functions may not shadow these.
bool is_builtin_function(const std::string& name);

/// The builtin-function names, for documentation and diagnostics.
const std::vector<std::string>& builtin_function_names();

}  // namespace nsc::front
