// Facade for the NSC textual frontend: one include for the lexer, parser,
// resolver, printer and diagnostics, plus file-level conveniences shared
// by the nscc driver and the tests.
#pragma once

#include <string>

#include "front/ast.hpp"
#include "front/doc.hpp"
#include "front/lexer.hpp"
#include "front/parser.hpp"
#include "front/printer.hpp"
#include "front/resolve.hpp"
#include "front/source.hpp"

namespace nsc::front {

/// Read a file into a SourceFile.  Throws FrontError (with the file name
/// in the message) when it cannot be read.
SourceFile load_file(const std::string& path);

/// parse + resolve in one step.
ResolvedModule compile_file(const SourceFile& src);

}  // namespace nsc::front
