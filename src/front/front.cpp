#include "front/front.hpp"

#include <fstream>
#include <sstream>

namespace nsc::front {

SourceFile load_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    Diagnostic d;
    d.kind = DiagKind::Lex;
    d.file = path;
    d.message = "cannot read file";
    throw FrontError(std::move(d));
  }
  std::ostringstream text;
  text << in.rdbuf();
  return SourceFile(path, text.str());
}

ResolvedModule compile_file(const SourceFile& src) {
  return resolve(parse_module(src), src);
}

}  // namespace nsc::front
