#include "front/printer.hpp"

#include <sstream>

namespace nsc::front {
namespace {

// Expression precedence, mirroring the parser's ladder:
//   0 statement-like forms (let / if / while / case / lambda)
//   1 ||    2 &&    3 comparisons    4 ++    5 + -    6 * / % >>
//   7 unary !    8 primary
int prec_of(const ExprPtr& e) {
  switch (e->kind) {
    case ExprKind::Let:
    case ExprKind::If:
    case ExprKind::While:
    case ExprKind::Case:
    case ExprKind::Lambda:
      return 0;
    case ExprKind::Unary:
      return 7;
    case ExprKind::Binary:
      switch (e->bop) {
        case BinOp::Or: return 1;
        case BinOp::And: return 2;
        case BinOp::Eq:
        case BinOp::Ne:
        case BinOp::Lt:
        case BinOp::Le:
        case BinOp::Gt:
        case BinOp::Ge:
          return 3;
        case BinOp::Append: return 4;
        case BinOp::Add:
        case BinOp::Monus:
          return 5;
        case BinOp::Mul:
        case BinOp::Div:
        case BinOp::Mod:
        case BinOp::Shr:
          return 6;
      }
      return 8;
    default:
      return 8;
  }
}

class Printer {
 public:
  std::string type(const TypeExprPtr& t) {
    print_type(t, 0);
    return take();
  }

  std::string expr(const ExprPtr& e) {
    print(e, 0, 0);
    return take();
  }

  std::string decl(const Decl& d) {
    print_decl(d);
    return take();
  }

  std::string module(const Module& m) {
    for (std::size_t i = 0; i < m.decls.size(); ++i) {
      if (i != 0) out_ << "\n";
      print_decl(m.decls[i]);
      out_ << "\n";
    }
    return take();
  }

 private:
  std::string take() {
    std::string s = out_.str();
    out_.str("");
    return s;
  }

  void newline(int indent) {
    out_ << "\n";
    for (int i = 0; i < indent; ++i) out_ << "  ";
  }

  /// level: 0 = sum position, 1 = product position, 2 = atom position.
  void print_type(const TypeExprPtr& t, int level) {
    switch (t->kind) {
      case TypeKind::Unit: out_ << "unit"; return;
      case TypeKind::Nat: out_ << "nat"; return;
      case TypeKind::Bool: out_ << "bool"; return;
      case TypeKind::Seq:
        out_ << "[";
        print_type(t->a, 0);
        out_ << "]";
        return;
      case TypeKind::Prod:
        if (level > 1) out_ << "(";
        print_type(t->a, 2);
        out_ << " * ";
        print_type(t->b, 1);  // right-assoc
        if (level > 1) out_ << ")";
        return;
      case TypeKind::Sum:
        if (level > 0) out_ << "(";
        print_type(t->a, 1);
        out_ << " + ";
        print_type(t->b, 0);  // right-assoc
        if (level > 0) out_ << ")";
        return;
    }
  }

  void print(const ExprPtr& e, int min_prec, int indent) {
    const bool parens = prec_of(e) < min_prec;
    if (parens) out_ << "(";
    print_bare(e, indent);
    if (parens) out_ << ")";
  }

  void print_bare(const ExprPtr& e, int indent) {
    switch (e->kind) {
      case ExprKind::Var:
        out_ << e->name;
        return;
      case ExprKind::NatLit:
        out_ << e->nat;
        return;
      case ExprKind::UnitLit:
        out_ << "()";
        return;
      case ExprKind::BoolLit:
        out_ << (e->bval ? "true" : "false");
        return;
      case ExprKind::PairLit:
        out_ << "(";
        print(e->a, 0, indent);
        out_ << ", ";
        print(e->b, 0, indent);
        out_ << ")";
        return;
      case ExprKind::SeqLit:
        out_ << "[";
        for (std::size_t i = 0; i < e->elems.size(); ++i) {
          if (i != 0) out_ << ", ";
          print(e->elems[i], 0, indent);
        }
        out_ << "]";
        return;
      case ExprKind::EmptyLit:
        out_ << "empty[";
        print_type(e->type, 0);
        out_ << "]";
        return;
      case ExprKind::OmegaLit:
        out_ << "omega[";
        print_type(e->type, 0);
        out_ << "]";
        return;
      case ExprKind::Inl:
      case ExprKind::Inr:
        out_ << (e->kind == ExprKind::Inl ? "inl[" : "inr[");
        print_type(e->type, 0);
        out_ << "](";
        print(e->a, 0, indent);
        out_ << ")";
        return;
      case ExprKind::Unary:
        out_ << "!";
        print(e->a, 7, indent);
        return;
      case ExprKind::Binary: {
        const int p = prec_of(e);
        // Comparisons are non-associative: both operands print at the
        // next-tighter level.  Everything else is left-associative.
        const int left_min = p == 3 ? p + 1 : p;
        print(e->a, left_min, indent);
        out_ << " " << binop_spelling(e->bop) << " ";
        print(e->b, p + 1, indent);
        return;
      }
      case ExprKind::Call:
        out_ << e->name << "(";
        for (std::size_t i = 0; i < e->elems.size(); ++i) {
          if (i != 0) out_ << ", ";
          print(e->elems[i], 0, indent);
        }
        out_ << ")";
        return;
      case ExprKind::Lambda:
        out_ << "\\" << e->name << " : ";
        print_type(e->type, 0);
        out_ << ". ";
        print(e->a, 0, indent);
        return;
      case ExprKind::Let:
        out_ << "let " << e->name;
        if (e->type != nullptr) {
          out_ << " : ";
          print_type(e->type, 0);
        }
        out_ << " = ";
        print(e->a, 0, indent);
        out_ << " in";
        newline(indent);
        print(e->b, 0, indent);
        return;
      case ExprKind::If:
        out_ << "if ";
        print(e->a, 0, indent);
        out_ << " then ";
        print(e->b, 0, indent);
        out_ << " else ";
        print(e->c, 0, indent);
        return;
      case ExprKind::While:
        out_ << "while " << e->name << " = ";
        print(e->a, 0, indent);
        out_ << "; ";
        print(e->b, 0, indent);
        out_ << "; ";
        print(e->c, 0, indent);
        return;
      case ExprKind::Case:
        out_ << "case ";
        print(e->a, 0, indent);
        out_ << " of inl " << e->name << " => ";
        print(e->b, 0, indent);
        out_ << " | inr " << e->name2 << " => ";
        print(e->c, 0, indent);
        return;
      case ExprKind::Comprehension:
        out_ << "[";
        print(e->a, 0, indent);
        out_ << " | " << e->name << " <- ";
        print(e->b, 0, indent);
        if (e->c != nullptr) {
          out_ << ", ";
          print(e->c, 0, indent);
        }
        out_ << "]";
        return;
    }
  }

  void print_decl(const Decl& d) {
    if (d.kind == DeclKind::Input) {
      out_ << "input ";
      print(d.body, 0, 1);
      return;
    }
    out_ << "fn " << d.name << "(";
    for (std::size_t i = 0; i < d.params.size(); ++i) {
      if (i != 0) out_ << ", ";
      out_ << d.params[i].name << " : ";
      print_type(d.params[i].type, 0);
    }
    out_ << ")";
    if (d.ret != nullptr) {
      out_ << " : ";
      print_type(d.ret, 0);
    }
    out_ << " =";
    newline(1);
    print(d.body, 0, 1);
  }

  std::ostringstream out_;
};

}  // namespace

std::string print_type(const TypeExprPtr& t) { return Printer().type(t); }
std::string print_expr(const ExprPtr& e) { return Printer().expr(e); }
std::string print_decl(const Decl& d) { return Printer().decl(d); }
std::string print_module(const Module& m) { return Printer().module(m); }

}  // namespace nsc::front
