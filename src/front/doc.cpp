#include "front/doc.hpp"

namespace nsc::front {

std::string language_reference() {
  return R"DOC(# The NSC surface language

This file is generated from `front::language_reference()` (src/front/doc.cpp)
and checked against the parser in CI; regenerate it with `nscc doc > docs/nsc-language.md`.

NSC is the paper's Nested Sequence Calculus: a first-order, typed,
data-parallel language over naturals, pairs, sums, and nested sequences.
The surface syntax below parses to the core calculus of `src/nsc/ast.hpp`
(appendix A) and from there compiles through NSA to the BVRAM.

## Modules

A `.nsc` file is a sequence of declarations:

```
fn name(x : type, ...) : type = expr     -- the ': type' result ascription is optional
input expr                               -- a sample argument for main
```

* Functions resolve top-down; recursion is impossible (the core calculus
  has none -- iterate with `while`).
* NSC functions are unary: a multi-parameter `fn` takes a right-nested
  tuple, so `fn f(a : nat, b : [nat])` has domain `nat * [nat]` and
  `f(x, y)` passes `(x, y)`.
* The entry point is `main`.  `input` declarations are closed expressions
  evaluated to sample arguments; `nscc run`/`bench` and the corpus tests
  feed every input to `main`.
* `--` starts a line comment.

## Types

```
t ::= nat | unit | bool | [t] | t * t | t + t | (t)
```

`*` (product) and `+` (sum) are right-associative; `*` binds tighter.
`bool` abbreviates `unit + unit` with `true = inl ()`, `false = inr ()`.

## Expressions

```
e ::= x | 42 | () | true | false              -- atoms
    | (e1, e2)                                -- pair
    | [e1, ..., ek]                           -- sequence literal (k >= 1)
    | empty[t]                                -- [] : [t]
    | omega[t]                                -- the error value, at type t
    | inl[tr](e) | inr[tl](e)                 -- injections; the bracket names
                                              --   the *other* summand
    | f(e1, ..., ek)                          -- call (declared fn or builtin)
    | let x = e1 in e2                        -- let x : t = e1 in e2 also legal
    | if c then e1 else e2
    | while x = init; cond; step              -- iterate step while cond holds;
                                              --   value is the final state x
    | case e of inl x => e1 | inr y => e2
    | [body | x <- xs]                        -- map comprehension
    | [body | x <- xs, cond]                  -- filtered map comprehension
    | \x : t. body                            -- lambda: function-argument
                                              --   position only (first-order)
    | e1 op e2 | !e | (e)
```

### Operators

By loosening precedence:

| level | operators            | meaning                                   |
|-------|----------------------|-------------------------------------------|
| 1     | `\|\|`               | boolean or (derived `case`)                |
| 2     | `&&`                 | boolean and                                |
| 3     | `== != < <= > >=`    | on `nat`; non-associative (no chaining)    |
| 4     | `++`                 | sequence append                            |
| 5     | `+ -`                | add, monus (truncated subtraction)         |
| 6     | `* / % >>`           | mul, div, mod, right shift (`/ %` are Omega on 0) |
| 7     | `!`                  | boolean not                                |

Arithmetic is the paper's operation set Sigma on saturating 64-bit
naturals; comparisons are the section 3 derived forms (`a <= b` iff
`a - b == 0`).

## Builtin functions

Core primitives (appendix A):

| builtin            | type                        | notes                     |
|--------------------|-----------------------------|---------------------------|
| `length(s)`        | `[t] -> nat`                |                           |
| `flatten(s)`       | `[[t]] -> [t]`              |                           |
| `get(s)`           | `[t] -> t`                  | Omega unless `length == 1`|
| `zip(a, b)`        | `[s], [t] -> [s * t]`       | Omega on length mismatch  |
| `enumerate(s)`     | `[t] -> [nat]`              | `[0, ..., n-1]`           |
| `split(s, sizes)`  | `[t], [nat] -> [[t]]`       | Omega unless sum matches  |
| `fst(p)` `snd(p)`  | `s * t -> s` / `-> t`       |                           |
| `log2(n)`          | `nat -> nat`                | floor log2; `log2(0) = 0` |

Derived prelude (section 3 / Figures 2-3; costs as claimed there):

| builtin                 | type                          | notes                  |
|-------------------------|-------------------------------|------------------------|
| `map(f, s)`             | `(s -> t), [s] -> [t]`        | parallel map           |
| `filter(p, s)`          | `(t -> bool), [t] -> [t]`     |                        |
| `sum(s)` `max(s)`       | `[nat] -> nat`                | log-depth halving      |
| `first(s)` `last(s)`    | `[t] -> t`                    | Omega on empty         |
| `tail(s)` `init(s)`     | `[t] -> [t]`                  | Omega on empty         |
| `index(c, i)`           | `[t], [nat] -> [t]`           | gather at sorted `i`   |
| `index_split(c, i)`     | `[t], [nat] -> [[t]]`         | split *at* sorted `i`  |
| `merge(a, b)`           | `[nat], [nat] -> [nat]`       | both inputs sorted     |
| `ranks(a, b)`           | `[nat], [nat] -> [nat]`       | rank of each `a` in `b`|
| `sqrt_positions(s)`     | `[t] -> [t]`                  | every sqrt-th element  |
| `sqrt_split(s)`         | `[t] -> [[t]]`                | sqrt-size blocks       |

`map` and `filter` (and the eta-expandable unary builtins) accept a
declared function name, a builtin name, or a lambda as their function
argument; lambdas may capture enclosing variables (the broadcast cost the
paper realizes with `p2`).

## Example

```
-- Keep values below 10, square them, pair each with its position.
fn small(v : nat) : bool = v < 10

fn main(xs : [nat]) : [nat * nat] =
  let kept = filter(small, xs) in
  zip(enumerate(kept), [v * v | v <- kept])

input [4, 25, 7, 1, 13, 9]
```

`nscc run file.nsc` evaluates `main` on every `input` with the NSC
evaluator (Definition 3.1 costs) *and* through the compiled BVRAM, and
checks the results agree; `nscc dump` shows the NSA translation or the
BVRAM program at any `OptLevel` and while schedule; `nscc bench` emits
the T/W table as JSON.  See README section "Surface language & nscc".
)DOC";
}

}  // namespace nsc::front
