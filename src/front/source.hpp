// Source management and structured diagnostics for the NSC surface
// language (the textual frontend in src/front/).
//
// Every token and surface-AST node carries a SrcLoc; every frontend
// failure -- lexical, syntactic, or semantic (a type error located at a
// surface node) -- is reported as a FrontError carrying a structured
// Diagnostic: the 1-based line:col position, the offending source line,
// a caret snippet, and (for parse errors) the set of tokens that would
// have been accepted.  Nothing in the frontend asserts or aborts on bad
// input: malformed programs always surface as FrontError.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/error.hpp"

namespace nsc::front {

/// A position in a source file.  Lines and columns are 1-based (editor
/// convention); `offset` is the 0-based byte offset into the text.
struct SrcLoc {
  std::uint32_t line = 1;
  std::uint32_t col = 1;
  std::uint32_t offset = 0;
};

/// A source file: name (for diagnostics) plus full text.  Owns the line
/// index used to render snippets.
class SourceFile {
 public:
  SourceFile() = default;
  SourceFile(std::string name, std::string text);

  const std::string& name() const { return name_; }
  const std::string& text() const { return text_; }

  /// The full text of the (1-based) line containing `loc`, without the
  /// trailing newline.  Out-of-range lines yield "".
  std::string line_text(std::uint32_t line) const;

 private:
  std::string name_;
  std::string text_;
  std::vector<std::uint32_t> line_starts_;  // byte offset of each line
};

enum class DiagKind { Lex, Parse, Type };

/// A structured frontend diagnostic.
struct Diagnostic {
  DiagKind kind = DiagKind::Parse;
  SrcLoc loc;
  std::string file;             ///< source file name
  std::string message;          ///< what went wrong
  std::vector<std::string> expected;  ///< expected-token set (parse errors)
  std::string source_line;      ///< the offending line, for the snippet

  /// Render as "file:line:col: error: message" plus a caret snippet and,
  /// when non-empty, an "expected ..." list.
  std::string render() const;
};

/// The frontend's only failure mode.  Inherits nsc::Error so existing
/// catch sites (tests, the nscc driver) handle it uniformly.
class FrontError : public Error {
 public:
  explicit FrontError(Diagnostic diag)
      : Error(diag.render()), diag_(std::move(diag)) {}

  const Diagnostic& diag() const { return diag_; }

 private:
  Diagnostic diag_;
};

}  // namespace nsc::front
