// The NSC surface-language reference, generated alongside the parser so
// the documentation cannot drift from the implementation: the checked-in
// docs/nsc-language.md must equal language_reference() byte for byte
// (asserted by tests/test_front.cpp; regenerate with `nscc doc`).
#pragma once

#include <string>

namespace nsc::front {

/// The full grammar + prelude reference as markdown.
std::string language_reference();

}  // namespace nsc::front
