// The work/time cost pair used by every layer (Definition 3.1 for NSC/NSA,
// the appendix-D accounting for SA, and section 2's instruction counting for
// the BVRAM).  Counters saturate rather than overflow.
#pragma once

#include <cstdint>
#include <string>

#include "support/checked.hpp"

namespace nsc {

struct Cost {
  std::uint64_t time = 0;  ///< parallel time T
  std::uint64_t work = 0;  ///< work W

  Cost& operator+=(const Cost& o) {
    time = sat_add(time, o.time);
    work = sat_add(work, o.work);
    return *this;
  }

  friend Cost operator+(Cost a, const Cost& b) { return a += b; }

  bool operator==(const Cost&) const = default;

  std::string show() const {
    return "T=" + std::to_string(time) + " W=" + std::to_string(work);
  }
};

}  // namespace nsc
