// Minimal data-parallel execution helper for the "real hardware" backend of
// the BVRAM interpreter (experiment E10).  Deliberately tiny: a static
// thread pool plus a blocking parallel_for, following the structured
// fork-join idiom of the OpenMP examples (no detached work, no futures
// escaping the call).
#pragma once

#include <cstddef>
#include <functional>

namespace nsc {

/// Number of worker threads the pool was built with (hardware concurrency).
std::size_t parallel_workers();

/// Invoke fn(begin..end) over disjoint non-empty chunks of [0, n) on the
/// pool and wait for completion.  Falls back to a serial call when n is
/// small (the per-chunk closure cost would dominate) or when the pool has
/// one worker.  If any chunk throws, the first exception is rethrown on the
/// calling thread after all chunks finish (it never escapes into a worker).
void parallel_for(std::size_t n,
                  const std::function<void(std::size_t, std::size_t)>& fn,
                  std::size_t grain = 4096);

}  // namespace nsc
