// Data-parallel execution helpers for the BVRAM execution engine's "real
// hardware" backend (experiment E10).  A static thread pool plus blocking
// fork-join primitives, following the structured idiom of the OpenMP
// examples (no detached work, no futures escaping the call):
//
//   parallel_for     invoke fn over disjoint chunks of [0, n)
//   ChunkPlan        a deterministic chunking of [0, n) that several
//                    passes over the same index space can share
//   parallel_scan    exclusive prefix over per-chunk partial sums -- the
//                    first pass of every two-pass block-scan kernel
//                    (scan-plus, select, bm-route/sbm-route scatter)
//   for_each_chunk   the second pass: emit each chunk given its offset
//   parallel_reduce  saturating sum of per-chunk partial sums: the
//                    scan's degenerate sibling, for kernels that need a
//                    total without offsets (the engine's fused kernels
//                    currently fold their sums into for_each_chunk
//                    passes, so this one exists for kernel authors)
//
// Because saturating uint64 addition is associative (any partial sum that
// would overflow pins the whole sum at 2^64-1 regardless of association),
// reduce/scan results are bit-identical for every chunk decomposition --
// one chunk (the serial backend), or one per worker.  The kernels in
// bvram/machine.cpp rely on this to make the serial and parallel backends
// produce identical outputs, costs, and traps.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include <string>

namespace nsc {

/// Number of worker threads the pool was built with: the NSCC_WORKERS
/// environment variable if set (read once, at first use), else hardware
/// concurrency.
std::size_t parallel_workers();

/// Resolve an NSCC_WORKERS value (nullptr = unset) to an effective worker
/// count.  Strictly-digit values in [1, 256] are taken as-is; everything
/// else -- garbage, empty, 0, negative, out of range -- falls back to
/// hardware concurrency (clamping overlarge values to 256) and, when
/// `warning` is non-null, explains the rejection in one line including
/// the effective count.  Exposed separately from the pool so the
/// validation is unit-testable (the pool reads the env exactly once).
std::size_t effective_workers(const char* env_value,
                              std::string* warning = nullptr);

/// Process-wide monotonic counters for the pool's dispatch behavior,
/// maintained with relaxed atomics (a handful of increments per *kernel
/// call*, never per element -- cheap enough to keep always-on).  The
/// execution engine's profiler reports per-run deltas of these.
struct ParallelCounters {
  std::uint64_t calls = 0;         ///< parallel_for/scan/reduce/chunk calls
  std::uint64_t serial_calls = 0;  ///< of which collapsed to one chunk
  std::uint64_t chunks = 0;        ///< chunks dispatched to the pool
  std::vector<std::uint64_t> per_worker_tasks;  ///< tasks run by worker i
};
ParallelCounters parallel_counters();

/// The chunks counter alone (two relaxed loads cheaper than a full
/// ParallelCounters snapshot): the execution engine reads it around every
/// instruction when profiling to attribute chunk counts per opcode.
std::uint64_t parallel_chunk_count();

/// Invoke fn(begin..end) over disjoint non-empty chunks of [0, n) on the
/// pool and wait for completion.  Falls back to a serial call when n is
/// small (the per-chunk closure cost would dominate) or when the pool has
/// one worker.  If any chunk throws, the first exception is rethrown on the
/// calling thread after all chunks finish (it never escapes into a worker).
void parallel_for(std::size_t n,
                  const std::function<void(std::size_t, std::size_t)>& fn,
                  std::size_t grain = 4096);

/// A deterministic partition of [0, n) into equal `step`-sized chunks
/// (the last possibly shorter).  Multiple passes over the same index space
/// (count, then scatter) share one plan so their chunk boundaries agree.
struct ChunkPlan {
  std::size_t n = 0;
  std::size_t step = 0;
  std::size_t chunks = 0;

  /// One chunk covering all of [0, n) -- the serial backend's plan.
  static ChunkPlan serial(std::size_t n);
  /// Worker-count-many chunks of at least `grain` elements (collapses to
  /// a single chunk when n <= grain or the pool has one worker).
  static ChunkPlan make(std::size_t n, std::size_t grain = 4096);

  std::size_t begin(std::size_t c) const { return c * step; }
  std::size_t end(std::size_t c) const {
    const std::size_t e = begin(c) + step;
    return e < n ? e : n;
  }
};

/// Run fn(chunk, begin, end) for every chunk of the plan; on the pool when
/// the plan has more than one chunk, inline otherwise.  Exceptions are
/// rethrown on the calling thread (first one wins).
void for_each_chunk(
    const ChunkPlan& plan,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& fn);

/// Saturating sum over chunks: `partial(begin, end)` returns one chunk's
/// partial sum; the per-chunk sums are combined with sat_add in chunk
/// order.  Deterministic and chunking-independent (associativity).
std::uint64_t parallel_reduce(
    const ChunkPlan& plan,
    const std::function<std::uint64_t(std::size_t, std::size_t)>& partial);

/// Exclusive prefix over the per-chunk partial sums: offsets[c] is the
/// saturating sum of all chunks before c; returns the grand total.  This
/// is the first pass of a two-pass block scan -- follow with
/// for_each_chunk over the same plan to emit chunk c starting at
/// offsets[c].
std::uint64_t parallel_scan(
    const ChunkPlan& plan,
    const std::function<std::uint64_t(std::size_t, std::size_t)>& partial,
    std::vector<std::uint64_t>& offsets);

}  // namespace nsc
