// Console table printer used by the benchmark harness to emit the
// paper-vs-measured series (EXPERIMENTS.md rows) in a uniform format.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace nsc {

/// Accumulates rows of strings and prints them column-aligned.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Append a row; must have the same arity as the header.
  void row(std::vector<std::string> cells);

  /// Render to a string (header, rule, rows).
  std::string str() const;

  /// Print to stdout.
  void print() const;

  static std::string num(std::uint64_t v);
  static std::string fixed(double v, int digits = 3);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace nsc
