// Deterministic PRNG for workload generation and property tests.
// SplitMix64: tiny, fast, and good enough for test-data generation; fully
// reproducible across platforms (unlike std::mt19937 distributions).
#pragma once

#include <cstdint>
#include <vector>

namespace nsc {

class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed = 0x9e3779b97f4a7c15ULL)
      : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, bound); bound == 0 yields 0.
  std::uint64_t below(std::uint64_t bound) {
    return bound == 0 ? 0 : next() % bound;
  }

  /// Uniform in [lo, hi] inclusive.
  std::uint64_t between(std::uint64_t lo, std::uint64_t hi) {
    return lo + below(hi - lo + 1);
  }

  bool coin(double p = 0.5) {
    return static_cast<double>(next() >> 11) * 0x1.0p-53 < p;
  }

  /// n uniform draws below `bound`.
  std::vector<std::uint64_t> vec(std::size_t n, std::uint64_t bound) {
    std::vector<std::uint64_t> v(n);
    for (auto& x : v) x = below(bound);
    return v;
  }

 private:
  std::uint64_t state_;
};

}  // namespace nsc
