#include "support/parallel.hpp"

#include <condition_variable>
#include <exception>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace nsc {
namespace {

class Pool {
 public:
  Pool() {
    const unsigned hw = std::thread::hardware_concurrency();
    const std::size_t n = hw > 1 ? hw : 1;
    workers_.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      workers_.emplace_back([this] { run(); });
    }
  }

  ~Pool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    for (auto& w : workers_) w.join();
  }

  std::size_t size() const { return workers_.size(); }

  void submit(std::function<void()> task) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      tasks_.push(std::move(task));
    }
    cv_.notify_one();
  }

 private:
  void run() {
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
        if (stop_ && tasks_.empty()) return;
        task = std::move(tasks_.front());
        tasks_.pop();
      }
      task();
    }
  }

  std::mutex mu_;
  std::condition_variable cv_;
  std::queue<std::function<void()>> tasks_;
  std::vector<std::thread> workers_;
  bool stop_ = false;
};

Pool& pool() {
  static Pool p;
  return p;
}

}  // namespace

std::size_t parallel_workers() { return pool().size(); }

void parallel_for(std::size_t n,
                  const std::function<void(std::size_t, std::size_t)>& fn,
                  std::size_t grain) {
  if (n == 0) return;
  const std::size_t workers = pool().size();
  if (workers <= 1 || n <= grain) {
    fn(0, n);
    return;
  }
  std::size_t chunks = (n + grain - 1) / grain;
  if (chunks > workers) chunks = workers;
  const std::size_t step = (n + chunks - 1) / chunks;
  // With `step` rounded up, the last chunks of the c-loop can start at or
  // past n (e.g. n=5, chunks=4 -> step=2 covers n in 3 chunks); recompute
  // the chunk count from `step` so every dispatched range is non-empty and
  // begin <= end <= n.
  chunks = (n + step - 1) / step;

  std::mutex mu;
  std::condition_variable done_cv;
  std::size_t pending = chunks;
  std::exception_ptr first_error;
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t begin = c * step;
    const std::size_t end = begin + step < n ? begin + step : n;
    pool().submit([&, begin, end] {
      // Exceptions (EvalError from a trapping elementwise op, ...) must not
      // escape into the worker thread -- that is std::terminate.  Capture
      // the first one and rethrow it on the calling thread below.
      std::exception_ptr error;
      try {
        fn(begin, end);
      } catch (...) {
        error = std::current_exception();
      }
      std::lock_guard<std::mutex> lock(mu);
      if (error && !first_error) first_error = error;
      if (--pending == 0) done_cv.notify_one();
    });
  }
  std::unique_lock<std::mutex> lock(mu);
  done_cv.wait(lock, [&] { return pending == 0; });
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace nsc
