#include "support/parallel.hpp"

#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "support/checked.hpp"

namespace nsc {
namespace {

class Pool {
 public:
  Pool() {
    // NSCC_WORKERS overrides hardware_concurrency: tests pin it (so the
    // multi-chunk kernel paths are exercised even on single-core CI
    // boxes) and benchmarks can sweep it.
    std::size_t n = 0;
    if (const char* env = std::getenv("NSCC_WORKERS")) {
      n = static_cast<std::size_t>(std::strtoul(env, nullptr, 10));
      if (n > 256) n = 256;
    }
    if (n == 0) {
      const unsigned hw = std::thread::hardware_concurrency();
      n = hw > 1 ? hw : 1;
    }
    workers_.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      workers_.emplace_back([this] { run(); });
    }
  }

  ~Pool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    for (auto& w : workers_) w.join();
  }

  std::size_t size() const { return workers_.size(); }

  void submit(std::function<void()> task) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      tasks_.push(std::move(task));
    }
    cv_.notify_one();
  }

 private:
  void run() {
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
        if (stop_ && tasks_.empty()) return;
        task = std::move(tasks_.front());
        tasks_.pop();
      }
      task();
    }
  }

  std::mutex mu_;
  std::condition_variable cv_;
  std::queue<std::function<void()>> tasks_;
  std::vector<std::thread> workers_;
  bool stop_ = false;
};

Pool& pool() {
  static Pool p;
  return p;
}

/// Fork-join driver shared by parallel_for and for_each_chunk: run
/// task(0..count) on the pool, wait, and rethrow the first exception on
/// the calling thread.  Exceptions (EvalError from a trapping elementwise
/// op, ...) must never escape into a worker -- that is std::terminate.
void run_tasks(std::size_t count,
               const std::function<void(std::size_t)>& task) {
  std::mutex mu;
  std::condition_variable done_cv;
  std::size_t pending = count;
  std::exception_ptr first_error;
  for (std::size_t t = 0; t < count; ++t) {
    pool().submit([&, t] {
      std::exception_ptr error;
      try {
        task(t);
      } catch (...) {
        error = std::current_exception();
      }
      std::lock_guard<std::mutex> lock(mu);
      if (error && !first_error) first_error = error;
      if (--pending == 0) done_cv.notify_one();
    });
  }
  std::unique_lock<std::mutex> lock(mu);
  done_cv.wait(lock, [&] { return pending == 0; });
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace

std::size_t parallel_workers() { return pool().size(); }

ChunkPlan ChunkPlan::serial(std::size_t n) {
  ChunkPlan p;
  p.n = n;
  p.step = n;
  p.chunks = n > 0 ? 1 : 0;
  return p;
}

ChunkPlan ChunkPlan::make(std::size_t n, std::size_t grain) {
  const std::size_t workers = pool().size();
  if (n == 0 || workers <= 1 || n <= grain) return serial(n);
  std::size_t chunks = (n + grain - 1) / grain;
  if (chunks > workers) chunks = workers;
  const std::size_t step = (n + chunks - 1) / chunks;
  // With `step` rounded up, recompute the chunk count from `step` so every
  // chunk is non-empty and begin <= end <= n (e.g. n=5, chunks=4 -> step=2
  // covers n in 3 chunks).
  ChunkPlan p;
  p.n = n;
  p.step = step;
  p.chunks = (n + step - 1) / step;
  return p;
}

void for_each_chunk(
    const ChunkPlan& plan,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& fn) {
  if (plan.chunks == 0) return;
  if (plan.chunks == 1) {
    fn(0, 0, plan.n);
    return;
  }
  run_tasks(plan.chunks,
            [&](std::size_t c) { fn(c, plan.begin(c), plan.end(c)); });
}

std::uint64_t parallel_reduce(
    const ChunkPlan& plan,
    const std::function<std::uint64_t(std::size_t, std::size_t)>& partial) {
  if (plan.chunks == 0) return 0;
  if (plan.chunks == 1) return partial(0, plan.n);
  std::vector<std::uint64_t> sums(plan.chunks, 0);
  run_tasks(plan.chunks, [&](std::size_t c) {
    sums[c] = partial(plan.begin(c), plan.end(c));
  });
  std::uint64_t total = 0;
  for (std::uint64_t s : sums) total = sat_add(total, s);
  return total;
}

std::uint64_t parallel_scan(
    const ChunkPlan& plan,
    const std::function<std::uint64_t(std::size_t, std::size_t)>& partial,
    std::vector<std::uint64_t>& offsets) {
  offsets.assign(plan.chunks, 0);
  if (plan.chunks == 0) return 0;
  std::vector<std::uint64_t> sums(plan.chunks, 0);
  if (plan.chunks == 1) {
    sums[0] = partial(0, plan.n);
  } else {
    run_tasks(plan.chunks, [&](std::size_t c) {
      sums[c] = partial(plan.begin(c), plan.end(c));
    });
  }
  std::uint64_t total = 0;
  for (std::size_t c = 0; c < plan.chunks; ++c) {
    offsets[c] = total;
    total = sat_add(total, sums[c]);
  }
  return total;
}

void parallel_for(std::size_t n,
                  const std::function<void(std::size_t, std::size_t)>& fn,
                  std::size_t grain) {
  const ChunkPlan plan = ChunkPlan::make(n, grain);
  if (plan.chunks == 0) return;
  if (plan.chunks == 1) {
    fn(0, n);
    return;
  }
  run_tasks(plan.chunks,
            [&](std::size_t c) { fn(plan.begin(c), plan.end(c)); });
}

}  // namespace nsc
