#include "support/parallel.hpp"

#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "support/checked.hpp"

namespace nsc {
namespace {

// Dispatch counters behind parallel_counters(): relaxed increments on the
// kernel-call granularity (never per element), so keeping them always-on
// costs nothing measurable and the profiler can read deltas at any time.
std::atomic<std::uint64_t> g_calls{0};
std::atomic<std::uint64_t> g_serial_calls{0};
std::atomic<std::uint64_t> g_chunks{0};

void count_dispatch(std::size_t chunks) {
  g_calls.fetch_add(1, std::memory_order_relaxed);
  if (chunks <= 1) {
    g_serial_calls.fetch_add(1, std::memory_order_relaxed);
  } else {
    g_chunks.fetch_add(chunks, std::memory_order_relaxed);
  }
}

class Pool {
 public:
  Pool() {
    // NSCC_WORKERS overrides hardware_concurrency: tests pin it (so the
    // multi-chunk kernel paths are exercised even on single-core CI
    // boxes) and benchmarks can sweep it.  Validation lives in
    // effective_workers(); a rejected value is reported once, here, with
    // the count actually used.
    std::string warning;
    const std::size_t n =
        effective_workers(std::getenv("NSCC_WORKERS"), &warning);
    if (!warning.empty()) {
      std::fprintf(stderr, "nscc: %s\n", warning.c_str());
    }
    tasks_run_ = std::make_unique<std::atomic<std::uint64_t>[]>(n);
    for (std::size_t i = 0; i < n; ++i) tasks_run_[i] = 0;
    workers_.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      workers_.emplace_back([this, i] { run(i); });
    }
  }

  ~Pool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    for (auto& w : workers_) w.join();
  }

  std::size_t size() const { return workers_.size(); }

  void submit(std::function<void()> task) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      tasks_.push(std::move(task));
    }
    cv_.notify_one();
  }

  std::vector<std::uint64_t> tasks_per_worker() const {
    std::vector<std::uint64_t> out(workers_.size(), 0);
    for (std::size_t i = 0; i < out.size(); ++i) {
      out[i] = tasks_run_[i].load(std::memory_order_relaxed);
    }
    return out;
  }

 private:
  void run(std::size_t worker) {
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
        if (stop_ && tasks_.empty()) return;
        task = std::move(tasks_.front());
        tasks_.pop();
      }
      tasks_run_[worker].fetch_add(1, std::memory_order_relaxed);
      task();
    }
  }

  std::mutex mu_;
  std::condition_variable cv_;
  std::queue<std::function<void()>> tasks_;
  std::vector<std::thread> workers_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> tasks_run_;
  bool stop_ = false;
};

Pool& pool() {
  static Pool p;
  return p;
}

/// Fork-join driver shared by parallel_for and for_each_chunk: run
/// task(0..count) on the pool, wait, and rethrow the first exception on
/// the calling thread.  Exceptions (EvalError from a trapping elementwise
/// op, ...) must never escape into a worker -- that is std::terminate.
void run_tasks(std::size_t count,
               const std::function<void(std::size_t)>& task) {
  std::mutex mu;
  std::condition_variable done_cv;
  std::size_t pending = count;
  std::exception_ptr first_error;
  for (std::size_t t = 0; t < count; ++t) {
    pool().submit([&, t] {
      std::exception_ptr error;
      try {
        task(t);
      } catch (...) {
        error = std::current_exception();
      }
      std::lock_guard<std::mutex> lock(mu);
      if (error && !first_error) first_error = error;
      if (--pending == 0) done_cv.notify_one();
    });
  }
  std::unique_lock<std::mutex> lock(mu);
  done_cv.wait(lock, [&] { return pending == 0; });
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace

std::size_t parallel_workers() { return pool().size(); }

std::size_t effective_workers(const char* env_value, std::string* warning) {
  const auto hardware = [] {
    const unsigned hw = std::thread::hardware_concurrency();
    return static_cast<std::size_t>(hw > 1 ? hw : 1);
  };
  if (env_value == nullptr) return hardware();
  const std::string raw(env_value);
  // Strict digits-only parse: strtoul would silently accept "8 threads",
  // wrap "-2" to a huge positive, and read "" as 0.
  bool digits = !raw.empty() && raw.size() <= 9;
  for (const char c : raw) {
    if (c < '0' || c > '9') digits = false;
  }
  const unsigned long v = digits ? std::strtoul(raw.c_str(), nullptr, 10) : 0;
  if (digits && v >= 1 && v <= 256) return static_cast<std::size_t>(v);
  std::size_t n = hardware();
  const char* why = "is not a worker count";
  if (digits && v == 0) {
    why = "asks for zero workers";
  } else if (digits) {
    why = "exceeds the 256-worker cap";
    n = 256;
  }
  if (warning != nullptr) {
    *warning = "NSCC_WORKERS='" + raw + "' " + why + "; using " +
               std::to_string(n) + " worker thread" + (n == 1 ? "" : "s");
  }
  return n;
}

std::uint64_t parallel_chunk_count() {
  return g_chunks.load(std::memory_order_relaxed);
}

ParallelCounters parallel_counters() {
  ParallelCounters c;
  c.calls = g_calls.load(std::memory_order_relaxed);
  c.serial_calls = g_serial_calls.load(std::memory_order_relaxed);
  c.chunks = g_chunks.load(std::memory_order_relaxed);
  c.per_worker_tasks = pool().tasks_per_worker();
  return c;
}

ChunkPlan ChunkPlan::serial(std::size_t n) {
  ChunkPlan p;
  p.n = n;
  p.step = n;
  p.chunks = n > 0 ? 1 : 0;
  return p;
}

ChunkPlan ChunkPlan::make(std::size_t n, std::size_t grain) {
  const std::size_t workers = pool().size();
  if (n == 0 || workers <= 1 || n <= grain) return serial(n);
  std::size_t chunks = (n + grain - 1) / grain;
  if (chunks > workers) chunks = workers;
  const std::size_t step = (n + chunks - 1) / chunks;
  // With `step` rounded up, recompute the chunk count from `step` so every
  // chunk is non-empty and begin <= end <= n (e.g. n=5, chunks=4 -> step=2
  // covers n in 3 chunks).
  ChunkPlan p;
  p.n = n;
  p.step = step;
  p.chunks = (n + step - 1) / step;
  return p;
}

void for_each_chunk(
    const ChunkPlan& plan,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& fn) {
  if (plan.chunks == 0) return;
  count_dispatch(plan.chunks);
  if (plan.chunks == 1) {
    fn(0, 0, plan.n);
    return;
  }
  run_tasks(plan.chunks,
            [&](std::size_t c) { fn(c, plan.begin(c), plan.end(c)); });
}

std::uint64_t parallel_reduce(
    const ChunkPlan& plan,
    const std::function<std::uint64_t(std::size_t, std::size_t)>& partial) {
  if (plan.chunks == 0) return 0;
  count_dispatch(plan.chunks);
  if (plan.chunks == 1) return partial(0, plan.n);
  std::vector<std::uint64_t> sums(plan.chunks, 0);
  run_tasks(plan.chunks, [&](std::size_t c) {
    sums[c] = partial(plan.begin(c), plan.end(c));
  });
  std::uint64_t total = 0;
  for (std::uint64_t s : sums) total = sat_add(total, s);
  return total;
}

std::uint64_t parallel_scan(
    const ChunkPlan& plan,
    const std::function<std::uint64_t(std::size_t, std::size_t)>& partial,
    std::vector<std::uint64_t>& offsets) {
  offsets.assign(plan.chunks, 0);
  if (plan.chunks == 0) return 0;
  count_dispatch(plan.chunks);
  std::vector<std::uint64_t> sums(plan.chunks, 0);
  if (plan.chunks == 1) {
    sums[0] = partial(0, plan.n);
  } else {
    run_tasks(plan.chunks, [&](std::size_t c) {
      sums[c] = partial(plan.begin(c), plan.end(c));
    });
  }
  std::uint64_t total = 0;
  for (std::size_t c = 0; c < plan.chunks; ++c) {
    offsets[c] = total;
    total = sat_add(total, sums[c]);
  }
  return total;
}

void parallel_for(std::size_t n,
                  const std::function<void(std::size_t, std::size_t)>& fn,
                  std::size_t grain) {
  const ChunkPlan plan = ChunkPlan::make(n, grain);
  if (plan.chunks == 0) return;
  count_dispatch(plan.chunks);
  if (plan.chunks == 1) {
    fn(0, n);
    return;
  }
  run_tasks(plan.chunks,
            [&](std::size_t c) { fn(plan.begin(c), plan.end(c)); });
}

}  // namespace nsc
