#include "support/table.hpp"

#include <cstdio>
#include <sstream>

#include "support/error.hpp"

namespace nsc {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::row(std::vector<std::string> cells) {
  if (cells.size() != header_.size()) {
    throw Error("table row arity mismatch");
  }
  rows_.push_back(std::move(cells));
}

std::string Table::str() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      if (r[c].size() > width[c]) width[c] = r[c].size();
    }
  }
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out << (c ? "  " : "");
      out << cells[c];
      for (std::size_t pad = cells[c].size(); pad < width[c]; ++pad) out << ' ';
    }
    out << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) total += width[c] + (c ? 2 : 0);
  out << std::string(total, '-') << '\n';
  for (const auto& r : rows_) emit(r);
  return out.str();
}

void Table::print() const { std::fputs(str().c_str(), stdout); }

std::string Table::num(std::uint64_t v) { return std::to_string(v); }

std::string Table::fixed(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", digits, v);
  return buf;
}

}  // namespace nsc
