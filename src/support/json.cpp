#include "support/json.hpp"

#include <cstdlib>
#include <limits>

#include "support/error.hpp"

namespace nsc::json {

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Value parse_document() {
    skip_ws();
    Value v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) err("trailing characters after the document");
    return v;
  }

 private:
  [[noreturn]] void err(const std::string& what) const {
    std::size_t line = 1, col = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
    throw Error("json: " + what + " at " + std::to_string(line) + ":" +
                std::to_string(col));
  }

  bool done() const { return pos_ >= text_.size(); }
  char peek() const { return text_[pos_]; }

  void skip_ws() {
    while (!done()) {
      const char c = peek();
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  void expect(char c) {
    if (done() || peek() != c) {
      err(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool consume_word(const char* w) {
    std::size_t n = 0;
    while (w[n] != '\0') ++n;
    if (text_.compare(pos_, n, w) != 0) return false;
    pos_ += n;
    return true;
  }

  Value parse_value() {
    if (done()) err("unexpected end of input");
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') {
      Value v;
      v.kind = Value::Kind::String;
      v.text = parse_string();
      return v;
    }
    if (c == 't' || c == 'f') {
      Value v;
      v.kind = Value::Kind::Bool;
      if (consume_word("true")) {
        v.boolean = true;
      } else if (consume_word("false")) {
        v.boolean = false;
      } else {
        err("bad literal");
      }
      return v;
    }
    if (c == 'n') {
      if (!consume_word("null")) err("bad literal");
      return Value{};
    }
    if (c == '-' || (c >= '0' && c <= '9')) return parse_number();
    err("unexpected character");
  }

  Value parse_object() {
    expect('{');
    Value v;
    v.kind = Value::Kind::Object;
    skip_ws();
    if (!done() && peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      skip_ws();
      v.members.emplace_back(std::move(key), parse_value());
      skip_ws();
      if (done()) err("unterminated object");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  Value parse_array() {
    expect('[');
    Value v;
    v.kind = Value::Kind::Array;
    skip_ws();
    if (!done() && peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      v.items.push_back(parse_value());
      skip_ws();
      if (done()) err("unterminated array");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (done()) err("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) err("control byte in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (done()) err("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) err("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code += static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code += static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code += static_cast<unsigned>(h - 'A' + 10);
            } else {
              err("bad \\u escape");
            }
          }
          // UTF-8 encode the code point (surrogate pairs are passed
          // through as two 3-byte sequences -- good enough for the
          // ASCII-dominated artifacts this reader consumes).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: err("bad escape");
      }
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (!done() && peek() == '-') ++pos_;
    if (done() || peek() < '0' || peek() > '9') err("bad number");
    while (!done() && peek() >= '0' && peek() <= '9') ++pos_;
    if (!done() && peek() == '.') {
      ++pos_;
      if (done() || peek() < '0' || peek() > '9') err("bad fraction");
      while (!done() && peek() >= '0' && peek() <= '9') ++pos_;
    }
    if (!done() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!done() && (peek() == '+' || peek() == '-')) ++pos_;
      if (done() || peek() < '0' || peek() > '9') err("bad exponent");
      while (!done() && peek() >= '0' && peek() <= '9') ++pos_;
    }
    Value v;
    v.kind = Value::Kind::Number;
    v.text = text_.substr(start, pos_ - start);
    return v;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

const Value* Value::find(const std::string& key) const {
  if (kind != Kind::Object) return nullptr;
  for (const auto& [k, v] : members) {
    if (k == key) return &v;
  }
  return nullptr;
}

const Value& Value::at(const std::string& key) const {
  const Value* v = find(key);
  if (v == nullptr) throw Error("json: missing key '" + key + "'");
  return *v;
}

std::uint64_t Value::as_u64() const {
  if (kind != Kind::Number) throw Error("json: expected a number");
  std::uint64_t out = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') {
      throw Error("json: '" + text + "' is not an unsigned integer");
    }
    const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
    if (out > (std::numeric_limits<std::uint64_t>::max() - digit) / 10) {
      throw Error("json: '" + text + "' overflows uint64");
    }
    out = out * 10 + digit;
  }
  return out;
}

double Value::as_double() const {
  if (kind != Kind::Number) throw Error("json: expected a number");
  return std::strtod(text.c_str(), nullptr);
}

const std::string& Value::as_string() const {
  if (kind != Kind::String) throw Error("json: expected a string");
  return text;
}

bool Value::as_bool() const {
  if (kind != Kind::Bool) throw Error("json: expected a boolean");
  return boolean;
}

Value parse(const std::string& text) {
  return Parser(text).parse_document();
}

}  // namespace nsc::json
