// Small integer helpers used throughout the cost accounting and the
// machine models.  Cost counters saturate instead of wrapping so that a
// pathological benchmark cannot silently overflow `uint64_t`.
#pragma once

#include <cstdint>
#include <utility>

namespace nsc {

/// Saturating addition for cost counters.
constexpr std::uint64_t sat_add(std::uint64_t a, std::uint64_t b) {
  const std::uint64_t s = a + b;
  return s < a ? ~std::uint64_t{0} : s;
}

/// Saturating multiplication for cost counters.  The overflow probe uses
/// the compiler builtin where available: it compiles to a multiply plus
/// an overflow-flag test instead of the division the portable fallback
/// needs, which matters in the elementwise Mul kernels.
constexpr std::uint64_t sat_mul(std::uint64_t a, std::uint64_t b) {
#if defined(__GNUC__) || defined(__clang__)
  std::uint64_t p = 0;
  return __builtin_mul_overflow(a, b, &p) ? ~std::uint64_t{0} : p;
#else
  if (a == 0 || b == 0) return 0;
  const std::uint64_t p = a * b;
  return p / a != b ? ~std::uint64_t{0} : p;
#endif
}

/// The paper's monus: `m - n` when `m >= n`, else 0 (section 2).
constexpr std::uint64_t monus(std::uint64_t m, std::uint64_t n) {
  return m >= n ? m - n : 0;
}

/// floor(log2(n)) for n >= 1.  By convention (matching the BVRAM `log2`
/// arithmetic operation) log2(0) is defined as 0.
constexpr std::uint64_t ilog2(std::uint64_t n) {
  std::uint64_t r = 0;
  while (n >>= 1) ++r;
  return r;
}

/// ceil(log2(n)) for n >= 1; 0 for n <= 1.
constexpr std::uint64_t ceil_log2(std::uint64_t n) {
  if (n <= 1) return 0;
  return ilog2(n - 1) + 1;
}

/// Smallest power of two >= n (n >= 1).
constexpr std::uint64_t ceil_pow2(std::uint64_t n) {
  return std::uint64_t{1} << ceil_log2(n < 1 ? 1 : n);
}

/// Integer power with saturation.
constexpr std::uint64_t ipow(std::uint64_t base, std::uint64_t exp) {
  std::uint64_t r = 1;
  while (exp--) r = sat_mul(r, base);
  return r;
}

/// A rational epsilon = num/den, used everywhere the paper says
/// "for every eps > 0": staged-buffer thresholds (Lemma 7.2, Theorem 4.2)
/// and radix-sort bases.  Rational so that machine-level code can compute
/// thresholds with integer arithmetic only.
struct Rational {
  std::uint64_t num = 1;
  std::uint64_t den = 2;

  constexpr double as_double() const {
    return static_cast<double>(num) / static_cast<double>(den);
  }
};

/// 2^ceil((num/den) * log2(n)) -- an integer-arithmetic stand-in for
/// ceil(n^eps) that over-approximates by at most a factor of 2, which is
/// absorbed by every O() bound in the paper.  Defined as 1 for n <= 1.
constexpr std::uint64_t pow_eps(std::uint64_t n, Rational eps) {
  if (n <= 1) return 1;
  const std::uint64_t lg = ceil_log2(n);
  // ceil(lg * num / den)
  const std::uint64_t e = (sat_mul(lg, eps.num) + eps.den - 1) / eps.den;
  if (e >= 64) return ~std::uint64_t{0};
  return std::uint64_t{1} << e;
}

/// Number of stages r = ceil(den/num) = ceil(1/eps) used by the staged
/// while-loop schedule (Lemma 7.2) and the z_i buffers (Theorem 4.2).
constexpr std::uint64_t stage_count(Rational eps) {
  return (eps.den + eps.num - 1) / eps.num;
}

/// floor(sqrt(n)) rounded to the nearest power of two from above, computable
/// with the paper's arithmetic set {+, -, *, /, right-shift, log2}:
/// 2^ceil(log2(n)/2).  Used by the NSC mergesort's sqrt-blocking, where any
/// Theta(sqrt n) block size preserves the complexity bounds.
constexpr std::uint64_t sqrt_pow2(std::uint64_t n) {
  if (n <= 1) return 1;
  const std::uint64_t lg = ceil_log2(n);
  return std::uint64_t{1} << ((lg + 1) / 2);
}

/// Exact floor(sqrt(n)); used by tests to sanity-check sqrt_pow2's range.
constexpr std::uint64_t isqrt(std::uint64_t n) {
  if (n < 2) return n;
  std::uint64_t lo = 1, hi = std::uint64_t{1} << (ilog2(n) / 2 + 1);
  while (lo + 1 < hi) {
    const std::uint64_t mid = lo + (hi - lo) / 2;
    if (mid <= n / mid) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace nsc
