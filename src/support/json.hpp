// A minimal JSON reader for the CLI's own artifacts (bench reports,
// committed baselines): strict recursive descent over the full grammar,
// no dependencies, no streaming.
//
// Numbers keep their raw token text.  The bench comparator's quantities
// are exact uint64 T/W counts, and routing them through a double would
// silently lose precision past 2^53 -- as_u64() reparses the token
// exactly and throws on anything fractional, signed, or out of range;
// as_double() is there for the ratios.  Object member order is
// preserved (vector of pairs, not a map) so diagnostics can echo the
// document as written.
//
// parse() throws nsc::Error with a line:column position on malformed
// input; it never aborts.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace nsc::json {

class Value {
 public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Kind kind = Kind::Null;
  bool boolean = false;
  std::string text;  ///< decoded string contents, or the raw number token
  std::vector<Value> items;  ///< Array elements
  std::vector<std::pair<std::string, Value>> members;  ///< Object, in order

  bool is(Kind k) const { return kind == k; }

  /// Object member lookup; null when absent or not an object.
  const Value* find(const std::string& key) const;
  /// find() that throws Error("json: missing key '...'") instead.
  const Value& at(const std::string& key) const;

  /// Exact unsigned integer; throws on non-numbers, fractions, signs,
  /// exponents, and overflow.
  std::uint64_t as_u64() const;
  double as_double() const;  ///< throws on non-numbers
  const std::string& as_string() const;  ///< throws on non-strings
  bool as_bool() const;  ///< throws on non-booleans
};

/// Parse a complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected).
Value parse(const std::string& text);

}  // namespace nsc::json
