// Error taxonomy shared by every layer of the nscc pipeline.
//
// The paper's calculi have a single error value Omega that any evaluation may
// produce (ill-formed `zip`, `split` with mismatched sums, `get` on a
// non-singleton, arithmetic on the wrong shape...).  We realize Omega as a
// C++ exception so that it propagates through every evaluator exactly like
// the natural-semantics rules would propagate an error derivation.
#pragma once

#include <stdexcept>
#include <string>

namespace nsc {

/// Base class for all nscc errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Static (compile-time) type error: a term or function failed to typecheck.
class TypeError : public Error {
 public:
  explicit TypeError(const std::string& what) : Error("type error: " + what) {}
};

/// Dynamic evaluation error: the paper's Omega.  Raised by partial
/// primitives (zip length mismatch, split sum mismatch, get of non-singleton,
/// division by zero, ...), and by the explicit `Omega` term.
class EvalError : public Error {
 public:
  explicit EvalError(const std::string& what) : Error("omega: " + what) {}
};

/// Machine-level error: a BVRAM / butterfly / PRAM program performed an
/// illegal operation (bad register, mismatched lengths, jump out of range).
class MachineError : public Error {
 public:
  explicit MachineError(const std::string& what)
      : Error("machine error: " + what) {}
};

/// Resource-limit error: an evaluation exceeded its fuel (step budget).
/// Distinct from EvalError so tests can distinguish divergence from Omega.
class FuelExhausted : public Error {
 public:
  explicit FuelExhausted(const std::string& what)
      : Error("fuel exhausted: " + what) {}
};

}  // namespace nsc
