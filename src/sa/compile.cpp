#include "sa/compile.hpp"

#include "nsa/from_nsc.hpp"
#include "obs/debuginfo.hpp"
#include "opt/fuse.hpp"
#include "opt/liveness.hpp"

namespace nsc::sa {

namespace {

using bvram::Assembler;
using lang::ArithOp;
using nsa::NsaKind;
using nsa::NsaRef;
using R = std::uint32_t;
using Regs = std::vector<R>;

Regs slice(const Regs& regs, std::size_t from, std::size_t count) {
  return Regs(regs.begin() + from, regs.begin() + from + count);
}

Regs concat(Regs a, const Regs& b) {
  a.insert(a.end(), b.begin(), b.end());
  return a;
}

class Compiler {
 public:
  explicit Compiler(const opt::WhileSchedule& sched) : sched_(sched) {}

  bvram::Program compile(const NsaRef& f) {
    // Root site: prologue/epilogue instructions (output moves, halt) are
    // attributed to the program's top-level combinator, so whole-program
    // overhead still lands on a surface line when the root is stamped.
    a_.set_site(dbg_.intern(nsa::nsa_kind_name(f->kind()), f->src_line(),
                            f->src_col()));
    const std::size_t nin = rep_width(*f->dom());
    a_.reserve_regs(nin);
    Regs in(nin);
    for (std::size_t i = 0; i < nin; ++i) in[i] = static_cast<R>(i);
    Regs out = emit0(f, in);
    // Copy results into the output convention V_0..V_{m-1} via temps (the
    // low registers are also the inputs, so stage through fresh registers).
    Regs temps;
    for (R r : out) {
      R t = a_.reg();
      a_.move(t, r);
      temps.push_back(t);
    }
    for (std::size_t i = 0; i < temps.size(); ++i) {
      a_.move(static_cast<R>(i), temps[i]);
    }
    a_.halt();
    bvram::Program p = a_.finish(nin, out.size());
    p.debug = std::move(dbg_);
    return p;
  }

 private:
  /// RAII debug-site scope: while alive, every instruction the assembler
  /// emits is attributed to combinator `f`.  An unstamped node inherits
  /// the enclosing scope's surface location (nearest stamped ancestor),
  /// so attribution never degrades as the emitter recurses through the
  /// glue combinators the translation inserts.
  class SiteScope {
   public:
    SiteScope(Compiler& c, const NsaRef& f) : c_(c), saved_(c.a_.site()) {
      std::uint32_t line = f->src_line();
      std::uint32_t col = f->src_col();
      if (line == 0) {
        const obs::DebugSite& enclosing = c.dbg_.site(saved_);
        line = enclosing.line;
        col = enclosing.col;
      }
      c_.a_.set_site(
          c_.dbg_.intern(nsa::nsa_kind_name(f->kind()), line, col));
    }
    ~SiteScope() { c_.a_.set_site(saved_); }
    SiteScope(const SiteScope&) = delete;
    SiteScope& operator=(const SiteScope&) = delete;

   private:
    Compiler& c_;
    std::uint32_t saved_;
  };
  // ---------------------------------------------------------------------
  // small emission helpers
  // ---------------------------------------------------------------------
  R fresh() { return a_.reg(); }

  R konst(std::uint64_t n) {
    R r = fresh();
    a_.load_const(r, n);
    return r;
  }

  R emptyreg() {
    R r = fresh();
    a_.load_empty(r);
    return r;
  }

  R len_of(R v) {
    R r = fresh();
    a_.length(r, v);
    return r;
  }

  R enum_of(R v) {
    R r = fresh();
    a_.enumerate(r, v);
    return r;
  }

  R arith(ArithOp op, R x, R y) {
    R r = fresh();
    a_.arith(r, op, x, y);
    return r;
  }

  R append(R x, R y) {
    R r = fresh();
    a_.append(r, x, y);
    return r;
  }

  R scan(R v) {
    R r = fresh();
    a_.scan_plus(r, v);
    return r;
  }

  /// Replicate the singleton `scalar` to the length of `like`.
  R broadcast(R scalar, R like) {
    R r = fresh();
    a_.bm_route(r, like, len_of(like), scalar);
    return r;
  }

  R ones_like(R v) { return broadcast(konst(1), v); }
  R zeros_like(R v) { return broadcast(konst(0), v); }
  R inv_bits(R bits) { return arith(ArithOp::Monus, ones_like(bits), bits); }

  /// Elementwise x == y as 0/1 bits: 1 - ((x-y) + (y-x)) under monus.
  R eq_bits(R x, R y) {
    R d = arith(ArithOp::Add, arith(ArithOp::Monus, x, y),
                arith(ArithOp::Monus, y, x));
    return arith(ArithOp::Monus, ones_like(x), d);
  }

  /// Keep data[i] where bits[i] == 1 (order-preserving pack).
  R pack_vec(R data, R bits) {
    R bound = fresh();
    a_.select(bound, bits);  // the 1-entries; length = #selected
    R r = fresh();
    a_.bm_route(r, bound, bits, data);
    return r;
  }

  /// Abort the program (machine error) if `reg` is non-empty.
  void trap_if_nonempty(R reg) {
    auto ok = a_.fresh_label();
    a_.jump_if_empty(reg, ok);
    a_.arith(fresh(), ArithOp::Add, konst(1), emptyreg());  // length trap
    a_.bind(ok);
  }

  /// Abort if any bit set.
  void trap_if_any(R bits) {
    R sel = fresh();
    a_.select(sel, bits);
    trap_if_nonempty(sel);
  }

  void emit_unconditional_trap() {
    a_.arith(fresh(), ArithOp::Add, konst(1), emptyreg());
  }

  /// [sum v] as a singleton register.
  R vec_total(R v) {
    R ext = append(v, konst(0));
    R sc = scan(ext);  // sc[i] = sum v[0..i); sc[n] = total
    R e = enum_of(sc);
    R pos = broadcast(len_of(v), sc);
    return pack_vec(sc, eq_bits(e, pos));
  }

  /// Remove the last element of v.
  R drop_last(R v) {
    R e = enum_of(v);
    R last = broadcast(arith(ArithOp::Monus, len_of(v), konst(1)), v);
    return pack_vec(v, inv_bits(eq_bits(e, last)));
  }

  /// [v[len-1]] as a singleton (empty when v is empty).
  R last_of(R v) {
    R e = enum_of(v);
    R last = broadcast(arith(ArithOp::Monus, len_of(v), konst(1)), v);
    return pack_vec(v, eq_bits(e, last));
  }

  /// Elementwise "is nonzero" as 0/1 bits.
  R nonzero_bits(R v) {
    R ones = ones_like(v);
    return arith(ArithOp::Monus, ones, arith(ArithOp::Monus, ones, v));
  }

  /// 0/1 bits over v marking its last k slots (k a singleton <= [len v]).
  R tail_bits(R v, R k) {
    R e = enum_of(v);
    R cut = broadcast(arith(ArithOp::Monus, len_of(v), k), v);
    // slot i is in the tail iff i >= len-k iff (len-k) monus i == 0.
    return inv_bits(nonzero_bits(arith(ArithOp::Monus, cut, e)));
  }

  /// [#nonzero slots of bits] as a singleton.
  R ones_count(R bits) {
    R sel = fresh();
    a_.select(sel, bits);
    return len_of(sel);
  }

  /// Remove the first element of v.
  R drop_first(R v) {
    R e = enum_of(v);
    return pack_vec(v, inv_bits(eq_bits(e, zeros_like(v))));
  }

  /// Gather V at sorted positions P (duplicates allowed): Figure 3's
  /// double bm-route.
  R gather_sorted(R V, R P) {
    R n = len_of(V);
    R k = len_of(P);
    R ztk = append(enum_of(P), k);
    R dI = arith(ArithOp::Monus, append(P, n), append(konst(0), P));
    R Pv = fresh();
    a_.bm_route(Pv, V, dI, ztk);  // rank of each slot among P
    R shifted = drop_last(append(konst(0), Pv));
    R dP = arith(ArithOp::Monus, Pv, shifted);
    R out = fresh();
    a_.bm_route(out, P, dP, V);
    return out;
  }

  /// Per-segment sums of w; segments given by lens (sum lens = len w).
  R seg_sum(R lens, R w) {
    R starts = scan(lens);
    R ends = arith(ArithOp::Add, starts, lens);
    R ext = scan(append(w, konst(0)));
    return arith(ArithOp::Monus, gather_sorted(ext, ends),
                 gather_sorted(ext, starts));
  }

  /// Replicate v[i] lens[i] times; probe_inner has the output length.
  R expand_by(R v, R lens, R probe_inner) {
    R out = fresh();
    a_.bm_route(out, probe_inner, lens, v);
    return out;
  }

  /// Per-segment enumerate (0,1,.. within each segment).
  R seg_enum(R lens, R probe_inner) {
    R offs = expand_by(scan(lens), lens, probe_inner);
    return arith(ArithOp::Monus, enum_of(probe_inner), offs);
  }

  /// Example D.1: interleave A into the bits=1 slots and B into the bits=0
  /// slots of a len(bits)-long output.
  R combine_vec(R bits, R A, R B) {
    // Trivial sides first (pure jumps; the general path below needs both
    // sides non-empty).
    R out = fresh();
    auto general = a_.fresh_label();
    auto join = a_.fresh_label();
    auto b_empty = a_.fresh_label();
    a_.jump_if_empty(A, b_empty);
    a_.jump(general);
    a_.bind(b_empty);
    a_.move(out, B);
    a_.jump(join);
    a_.bind(general);
    {
      auto full = a_.fresh_label();
      auto a_only = a_.fresh_label();
      a_.jump_if_empty(B, a_only);
      a_.jump(full);
      a_.bind(a_only);
      a_.move(out, A);
      a_.jump(join);
      a_.bind(full);
      R inv = inv_bits(bits);
      R e = enum_of(bits);
      R n = len_of(bits);
      auto gap_counts = [&](R pos) {
        // counts_i = next_i - pos_i, with the first stretched back to 0.
        R nexts = append(drop_first(pos), n);
        R efirst = enum_of(pos);
        R first_bit = eq_bits(efirst, zeros_like(pos));
        R masked = arith(ArithOp::Mul, pos, inv_bits(first_bit));
        return arith(ArithOp::Monus, nexts, masked);
      };
      R posA = pack_vec(e, bits);
      R posB = pack_vec(e, inv);
      R xx = fresh();
      a_.bm_route(xx, bits, gap_counts(posA), A);
      R yy = fresh();
      a_.bm_route(yy, bits, gap_counts(posB), B);
      R mixed = arith(ArithOp::Add, arith(ArithOp::Mul, xx, bits),
                      arith(ArithOp::Mul, yy, inv));
      a_.move(out, mixed);
    }
    a_.bind(join);
    return out;
  }

  // ---------------------------------------------------------------------
  // shape-recursive routines over SEQREP(t)
  // ---------------------------------------------------------------------

  R probe(const Regs& regs) { return regs.at(0); }

  Regs empty_seqrep(const Type& t) {
    Regs out;
    for (std::size_t i = 0; i < seqrep_width(t); ++i) out.push_back(emptyreg());
    return out;
  }

  /// Keep the elements whose bit is 1.
  Regs pack_seq(const Type& t, const Regs& in, R bits) {
    switch (t.kind()) {
      case TypeKind::Unit:
      case TypeKind::Nat:
        return {pack_vec(in[0], bits)};
      case TypeKind::Prod: {
        const std::size_t lw = seqrep_width(*t.left());
        Regs l = pack_seq(*t.left(), slice(in, 0, lw), bits);
        Regs r = pack_seq(*t.right(), slice(in, lw, in.size() - lw), bits);
        return concat(std::move(l), r);
      }
      case TypeKind::Sum: {
        R flags = in[0];
        const std::size_t lw = seqrep_width(*t.left());
        R b1 = pack_vec(bits, flags);
        R b2 = pack_vec(bits, inv_bits(flags));
        R nf = pack_vec(flags, bits);
        Regs l = pack_seq(*t.left(), slice(in, 1, lw), b1);
        Regs r = pack_seq(*t.right(), slice(in, 1 + lw, in.size() - 1 - lw),
                          b2);
        return concat(concat({nf}, l), r);
      }
      case TypeKind::Seq: {
        R lens = in[0];
        Regs inner = slice(in, 1, in.size() - 1);
        R nl = pack_vec(lens, bits);
        R ebits = expand_by(bits, lens, probe(inner));
        Regs ni = pack_seq(*t.elem(), inner, ebits);
        return concat({nl}, ni);
      }
    }
    throw CompileError("pack_seq: bad type");
  }

  /// Interleave A's elements into the bits=1 slots, B's into the rest.
  Regs combine_seq(const Type& t, R bits, const Regs& A, const Regs& B) {
    switch (t.kind()) {
      case TypeKind::Unit:
      case TypeKind::Nat:
        return {combine_vec(bits, A[0], B[0])};
      case TypeKind::Prod: {
        const std::size_t lw = seqrep_width(*t.left());
        Regs l = combine_seq(*t.left(), bits, slice(A, 0, lw),
                             slice(B, 0, lw));
        Regs r = combine_seq(*t.right(), bits, slice(A, lw, A.size() - lw),
                             slice(B, lw, B.size() - lw));
        return concat(std::move(l), r);
      }
      case TypeKind::Sum: {
        const std::size_t lw = seqrep_width(*t.left());
        R nf = combine_vec(bits, A[0], B[0]);
        R b1 = pack_vec(bits, nf);             // origin of combined lefts
        R b2 = pack_vec(bits, inv_bits(nf));   // origin of combined rights
        Regs l = combine_seq(*t.left(), b1, slice(A, 1, lw), slice(B, 1, lw));
        Regs r = combine_seq(*t.right(), b2,
                             slice(A, 1 + lw, A.size() - 1 - lw),
                             slice(B, 1 + lw, B.size() - 1 - lw));
        return concat(concat({nf}, l), r);
      }
      case TypeKind::Seq: {
        R nl = combine_vec(bits, A[0], B[0]);
        Regs ia = slice(A, 1, A.size() - 1);
        Regs ib = slice(B, 1, B.size() - 1);
        R pr = append(probe(ia), probe(ib));
        R ebits = fresh();
        a_.bm_route(ebits, pr, nl, bits);
        Regs ni = combine_seq(*t.elem(), ebits, ia, ib);
        return concat({nl}, ni);
      }
    }
    throw CompileError("combine_seq: bad type");
  }

  /// Replicate element blocks: element i of the sequence is replicated
  /// times[i] times.  `segs` gives the number of items of the *current*
  /// register level per (top) element; `bound` certifies sum(times).
  Regs replicate_seq(const Type& t, const Regs& in, R times, R bound,
                     R segs) {
    auto sbm = [&](R data) {
      R out = fresh();
      a_.sbm_route(out, bound, times, data, segs);
      return out;
    };
    switch (t.kind()) {
      case TypeKind::Unit:
      case TypeKind::Nat:
        return {sbm(in[0])};
      case TypeKind::Prod: {
        const std::size_t lw = seqrep_width(*t.left());
        Regs l = replicate_seq(*t.left(), slice(in, 0, lw), times, bound,
                               segs);
        Regs r = replicate_seq(*t.right(), slice(in, lw, in.size() - lw),
                               times, bound, segs);
        return concat(std::move(l), r);
      }
      case TypeKind::Sum: {
        R flags = in[0];
        const std::size_t lw = seqrep_width(*t.left());
        R nf = sbm(flags);
        // Per-top-element item counts on each side.
        R segs1 = seg_sum(segs, flags);
        R segs2 = seg_sum(segs, inv_bits(flags));
        Regs l = replicate_seq(*t.left(), slice(in, 1, lw), times, bound,
                               segs1);
        Regs r = replicate_seq(*t.right(),
                               slice(in, 1 + lw, in.size() - 1 - lw), times,
                               bound, segs2);
        return concat(concat({nf}, l), r);
      }
      case TypeKind::Seq: {
        R lens = in[0];
        Regs inner = slice(in, 1, in.size() - 1);
        R nl = sbm(lens);
        R segs_inner = seg_sum(segs, lens);
        Regs ni = replicate_seq(*t.elem(), inner, times, bound, segs_inner);
        return concat({nl}, ni);
      }
    }
    throw CompileError("replicate_seq: bad type");
  }

  /// Convert a depth-0 REP(t) into the SEQREP(t) of the one-element
  /// sequence [v].
  Regs rep_to_single(const Type& t, const Regs& in) {
    switch (t.kind()) {
      case TypeKind::Unit:
        return {konst(0)};
      case TypeKind::Nat:
        return {in[0]};  // a singleton vector either way
      case TypeKind::Prod: {
        const std::size_t lw = rep_width(*t.left());
        Regs l = rep_to_single(*t.left(), slice(in, 0, lw));
        Regs r = rep_to_single(*t.right(), slice(in, lw, in.size() - lw));
        return concat(std::move(l), r);
      }
      case TypeKind::Sum: {
        R tag = in[0];
        const std::size_t lw = rep_width(*t.left());
        R flags = len_of(tag);  // [1] if in1, [0] if in2
        // Conditionally build each side as a 0- or 1-element SEQREP.
        const std::size_t w1 = seqrep_width(*t.left());
        const std::size_t w2 = seqrep_width(*t.right());
        Regs side1(w1), side2(w2);
        for (auto& r : side1) r = fresh();
        for (auto& r : side2) r = fresh();
        auto is_in2 = a_.fresh_label();
        auto join = a_.fresh_label();
        a_.jump_if_empty(tag, is_in2);
        {
          Regs s1 = rep_to_single(*t.left(), slice(in, 1, lw));
          Regs s2 = empty_seqrep(*t.right());
          for (std::size_t i = 0; i < w1; ++i) a_.move(side1[i], s1[i]);
          for (std::size_t i = 0; i < w2; ++i) a_.move(side2[i], s2[i]);
        }
        a_.jump(join);
        a_.bind(is_in2);
        {
          Regs s1 = empty_seqrep(*t.left());
          Regs s2 = rep_to_single(*t.right(),
                                  slice(in, 1 + lw, in.size() - 1 - lw));
          for (std::size_t i = 0; i < w1; ++i) a_.move(side1[i], s1[i]);
          for (std::size_t i = 0; i < w2; ++i) a_.move(side2[i], s2[i]);
        }
        a_.bind(join);
        return concat(concat({flags}, side1), side2);
      }
      case TypeKind::Seq: {
        // REP([u]) = SEQREP(u); as one element: lens = [count].
        Regs inner = in;
        R lens = len_of(probe(inner));
        return concat({lens}, inner);
      }
    }
    throw CompileError("rep_to_single: bad type");
  }

  /// Convert the SEQREP(t) of a one-element sequence back to REP(t)
  /// (traps if the sequence is not a singleton) -- the compiled `get`.
  Regs single_to_rep(const Type& t, const Regs& in) {
    switch (t.kind()) {
      case TypeKind::Unit:
        return {};
      case TypeKind::Nat:
        return {in[0]};
      case TypeKind::Prod: {
        const std::size_t lw = seqrep_width(*t.left());
        Regs l = single_to_rep(*t.left(), slice(in, 0, lw));
        Regs r = single_to_rep(*t.right(), slice(in, lw, in.size() - lw));
        return concat(std::move(l), r);
      }
      case TypeKind::Sum: {
        R flags = in[0];  // [1] or [0]
        const std::size_t lw = seqrep_width(*t.left());
        R tag = fresh();
        a_.select(tag, flags);  // [1] or []
        const std::size_t w1 = rep_width(*t.left());
        const std::size_t w2 = rep_width(*t.right());
        Regs out1(w1), out2(w2);
        for (auto& r : out1) r = fresh();
        for (auto& r : out2) r = fresh();
        auto is_in2 = a_.fresh_label();
        auto join = a_.fresh_label();
        a_.jump_if_empty(tag, is_in2);
        {
          Regs v = single_to_rep(*t.left(), slice(in, 1, lw));
          for (std::size_t i = 0; i < w1; ++i) a_.move(out1[i], v[i]);
          for (std::size_t i = 0; i < w2; ++i) a_.load_empty(out2[i]);
        }
        a_.jump(join);
        a_.bind(is_in2);
        {
          Regs v = single_to_rep(*t.right(),
                                 slice(in, 1 + lw, in.size() - 1 - lw));
          for (std::size_t i = 0; i < w1; ++i) a_.load_empty(out1[i]);
          for (std::size_t i = 0; i < w2; ++i) a_.move(out2[i], v[i]);
        }
        a_.bind(join);
        return concat(concat({tag}, out1), out2);
      }
      case TypeKind::Seq:
        // REP([u]) = SEQREP(u): drop the (checked) singleton lens.
        return slice(in, 1, in.size() - 1);
    }
    throw CompileError("single_to_rep: bad type");
  }

  // ---------------------------------------------------------------------
  // depth-0 emitter
  // ---------------------------------------------------------------------
  Regs emit0(const NsaRef& f, const Regs& in) {
    SiteScope site_scope(*this, f);
    switch (f->kind()) {
      case NsaKind::Id:
        return in;
      case NsaKind::Compose:
        return emit0(f->g(), emit0(f->f(), in));
      case NsaKind::Bang:
        return {};
      case NsaKind::PairF:
        return concat(emit0(f->f(), in), emit0(f->g(), in));
      case NsaKind::Pi1:
        return slice(in, 0, rep_width(*f->cod()));
      case NsaKind::Pi2:
        return slice(in, in.size() - rep_width(*f->cod()),
                     rep_width(*f->cod()));
      case NsaKind::In1F: {
        Regs out{konst(1)};
        out = concat(std::move(out), in);
        for (std::size_t i = 0; i < rep_width(*f->cod()->right()); ++i) {
          out.push_back(emptyreg());
        }
        return out;
      }
      case NsaKind::In2F: {
        Regs out{emptyreg()};
        for (std::size_t i = 0; i < rep_width(*f->cod()->left()); ++i) {
          out.push_back(emptyreg());
        }
        return concat(std::move(out), in);
      }
      case NsaKind::SumCase: {
        R tag = in[0];
        const std::size_t lw = rep_width(*f->f()->dom());
        Regs side1 = slice(in, 1, lw);
        Regs side2 = slice(in, 1 + lw, in.size() - 1 - lw);
        const std::size_t ow = rep_width(*f->cod());
        Regs out(ow);
        for (auto& r : out) r = fresh();
        auto is_in2 = a_.fresh_label();
        auto join = a_.fresh_label();
        a_.jump_if_empty(tag, is_in2);
        {
          Regs r1 = emit0(f->f(), side1);
          for (std::size_t i = 0; i < ow; ++i) a_.move(out[i], r1[i]);
        }
        a_.jump(join);
        a_.bind(is_in2);
        {
          Regs r2 = emit0(f->g(), side2);
          for (std::size_t i = 0; i < ow; ++i) a_.move(out[i], r2[i]);
        }
        a_.bind(join);
        return out;
      }
      case NsaKind::Dist: {
        // ((t1+t2) x u)  ->  (t1 x u) + (t2 x u): pure register shuffling;
        // the u registers are shared by both (read-only) sides.
        const Type& sum_t = *f->dom()->left();
        const std::size_t w1 = rep_width(*sum_t.left());
        const std::size_t w2 = rep_width(*sum_t.right());
        const std::size_t wu = rep_width(*f->dom()->right());
        R tag = in[0];
        Regs s1 = slice(in, 1, w1);
        Regs s2 = slice(in, 1 + w1, w2);
        Regs u = slice(in, 1 + w1 + w2, wu);
        return concat(concat(concat({tag}, s1), u), concat(s2, u));
      }
      case NsaKind::Omega: {
        emit_unconditional_trap();
        Regs out(rep_width(*f->cod()));
        for (auto& r : out) r = emptyreg();
        return out;
      }
      case NsaKind::ConstNat:
        return {konst(f->imm())};
      case NsaKind::Arith:
        return {arith(f->aop(), in[0], in[1])};
      case NsaKind::EqF: {
        R tag = fresh();
        a_.select(tag, eq_bits(in[0], in[1]));
        return {tag};
      }
      case NsaKind::EmptySeq:
        return empty_seqrep(*f->cod()->elem());
      case NsaKind::SingletonF:
        return rep_to_single(*f->dom(), in);
      case NsaKind::AppendF: {
        // Whole-sequence concatenation is register-wise append.
        const std::size_t w = seqrep_width(*f->cod()->elem());
        Regs out;
        for (std::size_t i = 0; i < w; ++i) {
          out.push_back(append(in[i], in[w + i]));
        }
        return out;
      }
      case NsaKind::FlattenF:
        return slice(in, 1, in.size() - 1);  // drop the outer lengths
      case NsaKind::LengthF:
        return {len_of(probe(in))};
      case NsaKind::GetF: {
        R cnt = len_of(probe(in));
        trap_if_any(inv_bits(eq_bits(cnt, konst(1))));
        return single_to_rep(*f->cod(), in);
      }
      case NsaKind::MapF: {
        return emitL(f->f(), in);
      }
      case NsaKind::ZipF: {
        const std::size_t lw = seqrep_width(*f->dom()->left()->elem());
        Regs aregs = slice(in, 0, lw);
        Regs bregs = slice(in, lw, in.size() - lw);
        trap_if_any(
            inv_bits(eq_bits(len_of(probe(aregs)), len_of(probe(bregs)))));
        return concat(std::move(aregs), bregs);
      }
      case NsaKind::EnumerateF:
        return {enum_of(probe(in))};
      case NsaKind::SplitF: {
        const std::size_t tw = seqrep_width(*f->dom()->left()->elem());
        Regs data = slice(in, 0, tw);
        R sizes = in[tw];
        trap_if_any(inv_bits(
            eq_bits(vec_total(sizes), len_of(probe(data)))));
        return concat({sizes}, data);
      }
      case NsaKind::P2: {
        const Type& s = *f->dom()->left();
        const std::size_t sw = rep_width(s);
        Regs sregs = slice(in, 0, sw);
        Regs tregs = slice(in, sw, in.size() - sw);
        Regs single = rep_to_single(s, sregs);
        R n = len_of(probe(tregs));
        R times = n;  // one entry: replicate the single element n times
        R segs = ones_like(single[0]);  // [1]
        Regs sexp = replicate_seq(s, single, times, probe(tregs), segs);
        return concat(std::move(sexp), tregs);
      }
      case NsaKind::WhileF: {
        const std::size_t w = rep_width(*f->cod());
        Regs state(w);
        for (auto& r : state) r = fresh();
        for (std::size_t i = 0; i < w; ++i) a_.move(state[i], in[i]);
        auto top = a_.fresh_label();
        auto exit = a_.fresh_label();
        a_.bind(top);
        Regs tag = emit0(f->f(), state);  // REP(B) = one [1]/[] register
        a_.jump_if_empty(tag[0], exit);
        Regs next = emit0(f->g(), state);
        for (std::size_t i = 0; i < w; ++i) a_.move(state[i], next[i]);
        a_.jump(top);
        a_.bind(exit);
        return state;
      }
    }
    throw CompileError("emit0: unknown combinator");
  }

  // ---------------------------------------------------------------------
  // lifted emitter (the Map Lemma)
  // ---------------------------------------------------------------------
  Regs emitL(const NsaRef& f, const Regs& in) {
    SiteScope site_scope(*this, f);
    switch (f->kind()) {
      case NsaKind::Id:
        return in;
      case NsaKind::Compose:
        return emitL(f->g(), emitL(f->f(), in));
      case NsaKind::Bang:
        return {zeros_like(probe(in))};
      case NsaKind::PairF:
        return concat(emitL(f->f(), in), emitL(f->g(), in));
      case NsaKind::Pi1:
        return slice(in, 0, seqrep_width(*f->cod()));
      case NsaKind::Pi2:
        return slice(in, in.size() - seqrep_width(*f->cod()),
                     seqrep_width(*f->cod()));
      case NsaKind::In1F: {
        Regs out{ones_like(probe(in))};
        out = concat(std::move(out), in);
        return concat(std::move(out), empty_seqrep(*f->cod()->right()));
      }
      case NsaKind::In2F: {
        Regs out{zeros_like(probe(in))};
        out = concat(std::move(out), empty_seqrep(*f->cod()->left()));
        return concat(std::move(out), in);
      }
      case NsaKind::SumCase: {
        // Both sides arrive packed; run both branches, then re-interleave.
        R flags = in[0];
        const std::size_t lw = seqrep_width(*f->f()->dom());
        Regs r1 = emitL(f->f(), slice(in, 1, lw));
        Regs r2 = emitL(f->g(), slice(in, 1 + lw, in.size() - 1 - lw));
        return combine_seq(*f->cod(), flags, r1, r2);
      }
      case NsaKind::Dist: {
        const Type& sum_t = *f->dom()->left();
        const Type& u = *f->dom()->right();
        const std::size_t w1 = seqrep_width(*sum_t.left());
        const std::size_t w2 = seqrep_width(*sum_t.right());
        const std::size_t wu = seqrep_width(u);
        R flags = in[0];
        Regs s1 = slice(in, 1, w1);
        Regs s2 = slice(in, 1 + w1, w2);
        Regs uregs = slice(in, 1 + w1 + w2, wu);
        Regs u1 = pack_seq(u, uregs, flags);
        Regs u2 = pack_seq(u, uregs, inv_bits(flags));
        return concat(concat(concat({flags}, s1), u1), concat(s2, u2));
      }
      case NsaKind::Omega: {
        trap_if_nonempty(probe(in));  // map(omega)([]) = [] is fine
        Regs out(seqrep_width(*f->cod()));
        for (auto& r : out) r = emptyreg();
        return out;
      }
      case NsaKind::ConstNat:
        return {broadcast(konst(f->imm()), probe(in))};
      case NsaKind::Arith:
        return {arith(f->aop(), in[0], in[1])};
      case NsaKind::EqF: {
        R bits = eq_bits(in[0], in[1]);
        R inv = inv_bits(bits);
        // SEQREP(B): flags ++ zeros-per-true ++ zeros-per-false.
        R lz = pack_vec(zeros_like(bits), bits);
        R rz = pack_vec(zeros_like(bits), inv);
        return {bits, lz, rz};
      }
      case NsaKind::EmptySeq:
        // n elements, each the empty sequence: lengths = the unit zeros.
        return concat({in[0]}, empty_seqrep(*f->cod()->elem()));
      case NsaKind::SingletonF:
        return concat({ones_like(probe(in))}, in);
      case NsaKind::AppendF: {
        const Type& elem = *f->cod()->elem();
        const std::size_t w = 1 + seqrep_width(elem);
        R l1 = in[0];
        Regs i1 = slice(in, 1, w - 1);
        R l2 = in[w];
        Regs i2 = slice(in, w + 1, w - 1);
        R nl = arith(ArithOp::Add, l1, l2);
        // Alternating flags [1,0,1,0,...] over 2n slots select l1/l2.
        R two_n = append(l1, l2);
        R e = enum_of(two_n);
        R half = arith(ArithOp::Rsh, e, ones_like(e));
        R m2 = arith(ArithOp::Monus, e,
                     arith(ArithOp::Mul, half, broadcast(konst(2), e)));
        R evenbits = inv_bits(m2);
        R il = combine_vec(evenbits, l1, l2);
        R pr = append(probe(i1), probe(i2));
        R eflags = fresh();
        a_.bm_route(eflags, pr, il, evenbits);
        Regs ni = combine_seq(elem, eflags, i1, i2);
        return concat({nl}, ni);
      }
      case NsaKind::FlattenF: {
        R l1 = in[0];
        R l2 = in[1];
        Regs inner = slice(in, 2, in.size() - 2);
        return concat({seg_sum(l1, l2)}, inner);
      }
      case NsaKind::LengthF:
        return {in[0]};
      case NsaKind::GetF: {
        R lens = in[0];
        trap_if_any(inv_bits(eq_bits(lens, ones_like(lens))));
        return slice(in, 1, in.size() - 1);
      }
      case NsaKind::MapF: {
        // One descriptor level deeper; the lengths pass through.
        Regs inner = slice(in, 1, in.size() - 1);
        return concat({in[0]}, emitL(f->f(), inner));
      }
      case NsaKind::ZipF: {
        const std::size_t lw = 1 + seqrep_width(*f->dom()->left()->elem());
        R l1 = in[0];
        Regs i1 = slice(in, 1, lw - 1);
        R l2 = in[lw];
        Regs i2 = slice(in, lw + 1, in.size() - lw - 1);
        trap_if_any(inv_bits(eq_bits(l1, l2)));
        return concat(concat({l1}, i1), i2);
      }
      case NsaKind::EnumerateF: {
        R lens = in[0];
        Regs inner = slice(in, 1, in.size() - 1);
        return {lens, seg_enum(lens, probe(inner))};
      }
      case NsaKind::SplitF: {
        const std::size_t tw = 1 + seqrep_width(*f->dom()->left()->elem());
        R lt = in[0];
        Regs it = slice(in, 1, tw - 1);
        R ln = in[tw];
        R dn = in[tw + 1];
        trap_if_any(inv_bits(eq_bits(seg_sum(ln, dn), lt)));
        return concat({ln, dn}, it);
      }
      case NsaKind::P2: {
        const Type& s = *f->dom()->left();
        const std::size_t sw = seqrep_width(s);
        Regs sregs = slice(in, 0, sw);
        R lens = in[sw];
        Regs tregs = slice(in, sw + 1, in.size() - sw - 1);
        Regs sexp = replicate_seq(s, sregs, lens, probe(tregs),
                                  ones_like(probe(sregs)));
        return concat(concat({lens}, sexp), tregs);
      }
      case NsaKind::WhileF: {
        switch (sched_.kind) {
          case opt::WhileScheduleKind::Naive:
            return emit_while_naive(f, in);
          case opt::WhileScheduleKind::Eager:
            return emit_while_buffered(f, in, /*staged=*/false);
          case opt::WhileScheduleKind::Staged:
            return emit_while_buffered(f, in, /*staged=*/true);
        }
        throw CompileError("emitL: bad while schedule");
      }
    }
    throw CompileError("emitL: unknown combinator");
  }

  // ---------------------------------------------------------------------
  // lifted while schedules (Lemma 7.2's while case)
  // ---------------------------------------------------------------------

  /// Naive schedule: pack the still-running elements, step them,
  /// interleave back -- every iteration touches all n slots once.
  Regs emit_while_naive(const NsaRef& f, const Regs& in) {
    const Type& t = *f->cod();
    const std::size_t w = seqrep_width(t);
    Regs state(w);
    for (auto& r : state) r = fresh();
    for (std::size_t i = 0; i < w; ++i) a_.move(state[i], in[i]);
    auto top = a_.fresh_label();
    auto exit = a_.fresh_label();
    a_.bind(top);
    Regs pflags = emitL(f->f(), state);  // SEQREP(B): bits first
    R bits = pflags[0];
    R sel = fresh();
    a_.select(sel, bits);
    a_.jump_if_empty(sel, exit);
    Regs active = pack_seq(t, state, bits);
    Regs idle = pack_seq(t, state, inv_bits(bits));
    Regs stepped = emitL(f->g(), active);
    Regs merged = combine_seq(t, bits, stepped, idle);
    for (std::size_t i = 0; i < w; ++i) a_.move(state[i], merged[i]);
    a_.jump(top);
    a_.bind(exit);
    return state;
  }

  /// Emit code computing [2^ceil((num/den) * ceil_log2(n))] into dst --
  /// the integer pow_eps of support/checked.hpp, evaluated at run time
  /// from the singleton [n] in nr ([1] when n <= 1).  Uses only the
  /// machine's arithmetic set; 2^e is a doubling loop since the BVRAM has
  /// no left shift.
  void emit_pow_eps(R dst, R nr, Rational eps) {
    R e = fresh();
    auto small = a_.fresh_label();
    auto have_e = a_.fresh_label();
    R nm1 = arith(ArithOp::Monus, nr, konst(1));
    R nsel = fresh();
    a_.select(nsel, nm1);
    a_.jump_if_empty(nsel, small);
    {
      // ceil_log2(n) = log2(n-1) + 1 for n >= 2 (machine log2 = floor).
      R lg = arith(ArithOp::Add, arith(ArithOp::Log2, nm1, nm1), konst(1));
      R num = konst(eps.num);
      R den = konst(eps.den);
      R up = arith(ArithOp::Add, arith(ArithOp::Mul, lg, num),
                   arith(ArithOp::Monus, den, konst(1)));
      a_.move(e, arith(ArithOp::Div, up, den));
      a_.jump(have_e);
    }
    a_.bind(small);
    a_.load_const(e, 0);
    a_.bind(have_e);
    a_.load_const(dst, 1);
    R two = konst(2);
    R one = konst(1);
    R esel = fresh();
    auto ptop = a_.fresh_label();
    auto pdone = a_.fresh_label();
    a_.bind(ptop);
    a_.select(esel, e);
    a_.jump_if_empty(esel, pdone);
    a_.arith(dst, ArithOp::Mul, dst, two);
    a_.arith(e, ArithOp::Monus, e, one);
    a_.jump(ptop);
    a_.bind(pdone);
  }

  /// Eager / staged schedule.  The loop keeps only the still-running
  /// elements in `act`; a round in which something finishes is *logged*:
  /// the finished elements are packed out and appended to the V1 archive
  /// a1 (flushed into the V2 archive a2 at the staged thresholds), and the
  /// round's pack flags / active count are appended to the parallel V1/V2
  /// logs bl*/ll* (fb records how many logged rounds each flush moved).
  /// Rounds in which nothing finishes touch nothing but the active set.
  ///
  /// On exit the original element order is restored by replaying the
  /// logged packs backwards: popping the most recent round's flags and
  /// extracted elements off the archive tails and interleaving with
  /// combine_seq exactly inverts that round's pack_seq, so the final state
  /// is bit-identical to the naive schedule's.  The replay consumes the
  /// buffers in the same staged pattern the forward pass filled them (tail
  /// pops from V1; one V2 tail split per flush), so restoration costs no
  /// more than the forward staging did.
  ///
  /// Eager is the same machine with thr = stepf = [1]: V1 flushes into the
  /// V2 archive on every extraction round (the accumulator-touching
  /// ablation baseline of bench_seqwhile).  For a given schedule the
  /// register file is identical across eps values; only threshold
  /// constants change (eager skips the threshold computation, so its file
  /// is slightly smaller than staged's).
  Regs emit_while_buffered(const NsaRef& f, const Regs& in, bool staged) {
    const Type& t = *f->cod();
    const std::size_t w = seqrep_width(t);

    // Fixed (loop-carried) registers.
    Regs act(w), a1(w), a2(w), S(w);
    for (auto& r : act) r = fresh();
    for (auto& r : a1) r = fresh();
    for (auto& r : a2) r = fresh();
    for (auto& r : S) r = fresh();
    R bl1 = fresh(), bl2 = fresh();  // pack-flag logs (V1 / V2)
    R ll1 = fresh(), ll2 = fresh();  // per-logged-round active-count logs
    R fb = fresh();                  // per-flush logged-round counts
    R cnt = fresh(), thr = fresh(), stepf = fresh();

    for (std::size_t i = 0; i < w; ++i) a_.move(act[i], in[i]);
    for (std::size_t i = 0; i < w; ++i) a_.load_empty(a1[i]);
    for (std::size_t i = 0; i < w; ++i) a_.load_empty(a2[i]);
    a_.load_empty(bl1);
    a_.load_empty(bl2);
    a_.load_empty(ll1);
    a_.load_empty(ll2);
    a_.load_empty(fb);
    a_.load_const(cnt, 0);
    if (staged) {
      emit_pow_eps(stepf, len_of(probe(act)), sched_.eps);
    } else {
      a_.load_const(stepf, 1);
    }
    a_.move(thr, stepf);

    auto top = a_.fresh_label();
    auto step_l = a_.fresh_label();
    auto restore = a_.fresh_label();

    // Rotated entry guard: the emptiness test runs once, *outside* the
    // loop.  It would be redundant on later iterations anyway -- the
    // step preserves the active count and the extraction path re-checks
    // before looping -- and keeping it out of the body makes the
    // predicate block the loop header, so the optimizer's LICM can move
    // the per-iteration invariant code of the predicate into a
    // preheader that empty-population entries never execute.
    a_.jump_if_empty(probe(act), restore);
    a_.bind(top);
    Regs pflags = emitL(f->f(), act);  // SEQREP(B): bits first
    R bits = pflags[0];
    R fin = inv_bits(bits);
    R fsel = fresh();
    a_.select(fsel, fin);
    a_.jump_if_empty(fsel, step_l);  // nothing finished this round
    {
      // Extract the finished elements and log the round.
      Regs extr = pack_seq(t, act, fin);
      Regs surv = pack_seq(t, act, bits);
      a_.append(ll1, ll1, len_of(bits));
      a_.append(bl1, bl1, bits);
      a_.arith(cnt, ArithOp::Add, cnt, len_of(probe(extr)));
      for (std::size_t i = 0; i < w; ++i) a_.append(a1[i], a1[i], extr[i]);
      for (std::size_t i = 0; i < w; ++i) a_.move(act[i], surv[i]);
      // Flush V1 -> V2 once the extracted total reaches the threshold.
      R below = arith(ArithOp::Monus, thr, cnt);
      R bsel = fresh();
      a_.select(bsel, below);
      auto flush_l = a_.fresh_label();
      auto no_flush = a_.fresh_label();
      a_.jump_if_empty(bsel, flush_l);
      a_.jump(no_flush);
      a_.bind(flush_l);
      a_.append(fb, fb, len_of(ll1));
      a_.append(bl2, bl2, bl1);
      a_.load_empty(bl1);
      a_.append(ll2, ll2, ll1);
      a_.load_empty(ll1);
      for (std::size_t i = 0; i < w; ++i) {
        a_.append(a2[i], a2[i], a1[i]);
        a_.load_empty(a1[i]);
      }
      a_.arith(thr, ArithOp::Mul, thr, stepf);
      a_.bind(no_flush);
      a_.jump_if_empty(probe(act), restore);  // everything finished
    }
    a_.bind(step_l);
    Regs next = emitL(f->g(), act);
    for (std::size_t i = 0; i < w; ++i) a_.move(act[i], next[i]);
    a_.jump(top);

    // -- exit: replay the logged packs backwards to restore the order --
    a_.bind(restore);
    for (std::size_t i = 0; i < w; ++i) a_.load_empty(S[i]);
    auto replay_top = a_.fresh_label();
    auto refill = a_.fresh_label();
    auto replay_done = a_.fresh_label();

    a_.bind(replay_top);
    a_.jump_if_empty(ll1, refill);
    {
      // Pop the most recent logged round off the V1 logs and archive.
      R ak = last_of(ll1);
      a_.move(ll1, drop_last(ll1));
      R tb = tail_bits(bl1, ak);
      R bits_k = pack_vec(bl1, tb);
      a_.move(bl1, pack_vec(bl1, inv_bits(tb)));
      // The round extracted one element per zero flag.
      R ek = ones_count(inv_bits(bits_k));
      R etb = tail_bits(probe(a1), ek);
      Regs extr = pack_seq(t, a1, etb);
      Regs head = pack_seq(t, a1, inv_bits(etb));
      for (std::size_t i = 0; i < w; ++i) a_.move(a1[i], head[i]);
      // Invert the round's pack: the already-restored suffix state S holds
      // the round's survivors (flag 1), extr its finished (flag 0).
      Regs merged = combine_seq(t, bits_k, S, extr);
      for (std::size_t i = 0; i < w; ++i) a_.move(S[i], merged[i]);
    }
    a_.jump(replay_top);

    a_.bind(refill);
    a_.jump_if_empty(fb, replay_done);
    {
      // Pull the most recent flush chunk from the V2 logs into the (now
      // empty) V1 registers.
      R nr = last_of(fb);
      a_.move(fb, drop_last(fb));
      R ltb = tail_bits(ll2, nr);
      a_.move(ll1, pack_vec(ll2, ltb));
      a_.move(ll2, pack_vec(ll2, inv_bits(ltb)));
      R sb = vec_total(ll1);  // total flags logged in the chunk
      R btb = tail_bits(bl2, sb);
      a_.move(bl1, pack_vec(bl2, btb));
      a_.move(bl2, pack_vec(bl2, inv_bits(btb)));
      R ec = arith(ArithOp::Monus, sb, ones_count(bl1));
      R atb = tail_bits(probe(a2), ec);
      Regs chunk = pack_seq(t, a2, atb);
      Regs rest = pack_seq(t, a2, inv_bits(atb));
      for (std::size_t i = 0; i < w; ++i) a_.move(a1[i], chunk[i]);
      for (std::size_t i = 0; i < w; ++i) a_.move(a2[i], rest[i]);
    }
    a_.jump(replay_top);

    a_.bind(replay_done);
    return S;
  }

  Assembler a_;
  opt::WhileSchedule sched_;
  obs::DebugTable dbg_;
};

}  // namespace

bvram::Program compile_nsa(const nsa::NsaRef& f, opt::OptLevel opt,
                           const opt::WhileSchedule& sched,
                           opt::PipelineStats* stats) {
  Compiler c(sched);
  bvram::Program p = c.compile(f);
  opt::PipelineStats s = opt::optimize(p, opt);
  if (stats != nullptr) *stats = std::move(s);
  // Attach the per-instruction last-use masks as the final step: the
  // execution engine uses them to recycle dead operand buffers
  // (Move-as-swap, in-place kernels) without touching the T/W accounting.
  opt::annotate_last_use(p);
  // Then the fusion plan, which reuses the masks to prove intermediates
  // dead (run at every OptLevel: naive emission is the most fusable code
  // of all, and the plan is pure annotation either way).
  opt::annotate_fusion(p);
  return p;
}

bvram::Program compile_nsc(const lang::FuncRef& f, opt::OptLevel opt,
                           const opt::WhileSchedule& sched,
                           opt::PipelineStats* stats) {
  return compile_nsa(nsa::from_closed_func(f), opt, sched, stats);
}

CompiledRun run_compiled(const bvram::Program& program, const TypeRef& dom,
                         const TypeRef& cod, const ValueRef& arg,
                         const bvram::RunConfig& cfg, bvram::RunResult* raw) {
  auto inputs = encode_value(arg, dom);
  auto result = bvram::run(program, inputs, cfg);
  CompiledRun out;
  out.value = decode_value(cod, result.outputs);
  out.cost = result.cost;
  if (raw != nullptr) *raw = std::move(result);
  return out;
}

}  // namespace nsc::sa
