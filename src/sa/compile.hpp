// The flattening compiler (Theorem 7.1): NSA -> BVRAM.
//
// This realizes section 7's pipeline with the SEQ(t) segment-descriptor
// encoding (sa/layout.hpp) as the register discipline.  Each NSA combinator
// is emitted either
//   * at depth 0 ("scalar world"): values are register tuples, sums carry a
//     [1]/[] tag register, and control flow uses real jumps; or
//   * lifted ("vector world", the Map Lemma 7.2): one element per vector
//     slot, sums carry 0/1 flag vectors with packed sides, case becomes
//     pack / both-branches / Example-D.1 combine, and while becomes an
//     active-set loop (pack the unfinished elements, step them, merge
//     back).  map(g) simply recurses one segment-descriptor level deeper --
//     the descriptor registers of outer levels pass through untouched,
//     which is precisely why flattening works.
//
// Entering map from either world switches to the lifted emitter; nested
// maps lift recursively to any depth.  Scalar operations collapse: a
// k-deep mapped arithmetic op is a single vector instruction regardless of
// k.  The segment bookkeeping (per-segment sums, packing, interleaving,
// gathers) is emitted from a small catalog of routines built only from
// BVRAM primitives: bm-route/sbm-route, select, scan-plus, enumerate and
// elementwise arithmetic -- each O(1) instructions, i.e. O(1) parallel
// time and work linear in the registers touched, as Lemma 7.2 requires.
//
// The lifted while below is the *naive* schedule (every iteration touches
// finished elements once during pack/merge).  The staged V0/V1/V2 schedule
// that gives Lemma 7.2's O(W^(1+eps)) bound is implemented and measured
// separately at the machine level (bench/bench_seqwhile.cpp), since it is a
// scheduling change only -- the code shape and register count are fixed.
#pragma once

#include "bvram/machine.hpp"
#include "nsa/ast.hpp"
#include "object/value.hpp"
#include "opt/opt.hpp"
#include "sa/layout.hpp"
#include "support/cost.hpp"
#include "support/error.hpp"

namespace nsc::sa {

class CompileError : public Error {
 public:
  explicit CompileError(const std::string& what)
      : Error("compile error: " + what) {}
};

/// Compile an NSA function f : s -> t into a BVRAM program whose inputs
/// are REP(s) and outputs REP(t).  The emitted program is verified and
/// optimized by the src/opt/ pass pipeline; pass OptLevel::O0 to get the
/// naive catalog emission (exact instruction sequences, for tests).
bvram::Program compile_nsa(const nsa::NsaRef& f,
                           opt::OptLevel opt = opt::OptLevel::O2);

/// Full pipeline: closed NSC function -> NSA (variable elimination) ->
/// BVRAM (flattening) -> optimizer.
bvram::Program compile_nsc(const lang::FuncRef& f,
                           opt::OptLevel opt = opt::OptLevel::O2);

struct CompiledRun {
  ValueRef value;
  Cost cost;  ///< the BVRAM's T (instructions) and W (register lengths)
};

/// Encode the argument, run the program, decode the result.
CompiledRun run_compiled(const bvram::Program& program, const TypeRef& dom,
                         const TypeRef& cod, const ValueRef& arg,
                         const bvram::RunConfig& cfg = {});

}  // namespace nsc::sa
