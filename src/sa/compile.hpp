// The flattening compiler (Theorem 7.1): NSA -> BVRAM.
//
// This realizes section 7's pipeline with the SEQ(t) segment-descriptor
// encoding (sa/layout.hpp) as the register discipline.  Each NSA combinator
// is emitted either
//   * at depth 0 ("scalar world"): values are register tuples, sums carry a
//     [1]/[] tag register, and control flow uses real jumps; or
//   * lifted ("vector world", the Map Lemma 7.2): one element per vector
//     slot, sums carry 0/1 flag vectors with packed sides, case becomes
//     pack / both-branches / Example-D.1 combine, and while becomes an
//     active-set loop (pack the unfinished elements, step them, merge
//     back).  map(g) simply recurses one segment-descriptor level deeper --
//     the descriptor registers of outer levels pass through untouched,
//     which is precisely why flattening works.
//
// Entering map from either world switches to the lifted emitter; nested
// maps lift recursively to any depth.  Scalar operations collapse: a
// k-deep mapped arithmetic op is a single vector instruction regardless of
// k.  The segment bookkeeping (per-segment sums, packing, interleaving,
// gathers) is emitted from a small catalog of routines built only from
// BVRAM primitives: bm-route/sbm-route, select, scan-plus, enumerate and
// elementwise arithmetic -- each O(1) instructions, i.e. O(1) parallel
// time and work linear in the registers touched, as Lemma 7.2 requires.
//
// The lifted while supports three schedules behind opt::WhileSchedule
// (default: naive).  Naive touches every element once per iteration during
// pack/merge.  Eager and staged extract finished elements into archive
// buffers instead -- staged with the Lemma 7.2 V0/V1/V2 thresholds
// ceil(n^(k*eps)) that give the O(W^(1+eps)) bound -- and log the per-round
// pack flags so that one exit-time backwards replay of the packs restores
// the original element order exactly.  All schedules produce bit-identical
// outputs and traps; the register file is fixed and independent of eps.
// The machine-level ablation lives in bench/bench_seqwhile.cpp.
#pragma once

#include "bvram/machine.hpp"
#include "nsa/ast.hpp"
#include "object/value.hpp"
#include "opt/opt.hpp"
#include "sa/layout.hpp"
#include "support/cost.hpp"
#include "support/error.hpp"

namespace nsc::sa {

class CompileError : public Error {
 public:
  explicit CompileError(const std::string& what)
      : Error("compile error: " + what) {}
};

/// Compile an NSA function f : s -> t into a BVRAM program whose inputs
/// are REP(s) and outputs REP(t).  The emitted program is verified and
/// optimized by the src/opt/ pass pipeline; pass OptLevel::O0 to get the
/// naive catalog emission (exact instruction sequences, for tests).
/// `sched` picks the lifted-while schedule (Lemma 7.2); the default naive
/// schedule matches the historical emission exactly.  A non-null `stats`
/// receives the optimizer pipeline's per-pass statistics (bench_compile
/// reports them alongside the T/W measurements).
bvram::Program compile_nsa(const nsa::NsaRef& f,
                           opt::OptLevel opt = opt::OptLevel::O2,
                           const opt::WhileSchedule& sched = {},
                           opt::PipelineStats* stats = nullptr);

/// Full pipeline: closed NSC function -> NSA (variable elimination) ->
/// BVRAM (flattening) -> optimizer.
bvram::Program compile_nsc(const lang::FuncRef& f,
                           opt::OptLevel opt = opt::OptLevel::O2,
                           const opt::WhileSchedule& sched = {},
                           opt::PipelineStats* stats = nullptr);

struct CompiledRun {
  ValueRef value;
  Cost cost;  ///< the BVRAM's T (instructions) and W (register lengths)
};

/// Encode the argument, run the program, decode the result.  A non-null
/// `raw` receives the full machine-level RunResult (per-instruction
/// profile, engine counters, trace) for the observability layer.
CompiledRun run_compiled(const bvram::Program& program, const TypeRef& dom,
                         const TypeRef& cod, const ValueRef& arg,
                         const bvram::RunConfig& cfg = {},
                         bvram::RunResult* raw = nullptr);

}  // namespace nsc::sa
