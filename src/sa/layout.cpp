#include "sa/layout.hpp"

#include "support/error.hpp"

namespace nsc::sa {

std::size_t rep_width(const Type& t) {
  switch (t.kind()) {
    case TypeKind::Unit:
      return 0;
    case TypeKind::Nat:
      return 1;
    case TypeKind::Prod:
      return rep_width(*t.left()) + rep_width(*t.right());
    case TypeKind::Sum:
      return 1 + rep_width(*t.left()) + rep_width(*t.right());
    case TypeKind::Seq:
      return seqrep_width(*t.elem());
  }
  return 0;
}

std::size_t seqrep_width(const Type& t) {
  switch (t.kind()) {
    case TypeKind::Unit:
      return 1;
    case TypeKind::Nat:
      return 1;
    case TypeKind::Prod:
      return seqrep_width(*t.left()) + seqrep_width(*t.right());
    case TypeKind::Sum:
      return 1 + seqrep_width(*t.left()) + seqrep_width(*t.right());
    case TypeKind::Seq:
      return 1 + seqrep_width(*t.elem());
  }
  return 0;
}

void encode_rep(const Value& v, const Type& t, std::vector<Vec>& out) {
  switch (t.kind()) {
    case TypeKind::Unit:
      return;
    case TypeKind::Nat:
      out.push_back({v.as_nat()});
      return;
    case TypeKind::Prod:
      encode_rep(*v.first(), *t.left(), out);
      encode_rep(*v.second(), *t.right(), out);
      return;
    case TypeKind::Sum: {
      const bool left = v.is(ValueKind::In1);
      out.push_back(left ? Vec{1} : Vec{});
      if (left) {
        encode_rep(*v.injected(), *t.left(), out);
        out.resize(out.size() + rep_width(*t.right()));
      } else {
        out.resize(out.size() + rep_width(*t.left()));
        encode_rep(*v.injected(), *t.right(), out);
      }
      return;
    }
    case TypeKind::Seq:
      encode_seqrep(v.elems(), *t.elem(), out);
      return;
  }
}

void encode_seqrep(const std::vector<ValueRef>& elems, const Type& t,
                   std::vector<Vec>& out) {
  switch (t.kind()) {
    case TypeKind::Unit: {
      out.push_back(Vec(elems.size(), 0));
      return;
    }
    case TypeKind::Nat: {
      Vec v;
      v.reserve(elems.size());
      for (const auto& e : elems) v.push_back(e->as_nat());
      out.push_back(std::move(v));
      return;
    }
    case TypeKind::Prod: {
      std::vector<ValueRef> lefts, rights;
      lefts.reserve(elems.size());
      rights.reserve(elems.size());
      for (const auto& e : elems) {
        lefts.push_back(e->first());
        rights.push_back(e->second());
      }
      encode_seqrep(lefts, *t.left(), out);
      encode_seqrep(rights, *t.right(), out);
      return;
    }
    case TypeKind::Sum: {
      Vec flags;
      flags.reserve(elems.size());
      std::vector<ValueRef> lefts, rights;
      for (const auto& e : elems) {
        if (e->is(ValueKind::In1)) {
          flags.push_back(1);
          lefts.push_back(e->injected());
        } else {
          flags.push_back(0);
          rights.push_back(e->injected());
        }
      }
      out.push_back(std::move(flags));
      encode_seqrep(lefts, *t.left(), out);
      encode_seqrep(rights, *t.right(), out);
      return;
    }
    case TypeKind::Seq: {
      Vec lens;
      lens.reserve(elems.size());
      std::vector<ValueRef> inner;
      for (const auto& e : elems) {
        lens.push_back(e->length());
        const auto& es = e->elems();
        inner.insert(inner.end(), es.begin(), es.end());
      }
      out.push_back(std::move(lens));
      encode_seqrep(inner, *t.elem(), out);
      return;
    }
  }
}

ValueRef decode_rep(const Type& t, const std::vector<Vec>& regs,
                    std::size_t& at) {
  switch (t.kind()) {
    case TypeKind::Unit:
      return Value::unit();
    case TypeKind::Nat: {
      const Vec& v = regs.at(at++);
      if (v.size() != 1) throw Error("decode: N register not a singleton");
      return Value::nat(v[0]);
    }
    case TypeKind::Prod: {
      ValueRef a = decode_rep(*t.left(), regs, at);
      ValueRef b = decode_rep(*t.right(), regs, at);
      return Value::pair(std::move(a), std::move(b));
    }
    case TypeKind::Sum: {
      const bool left = !regs.at(at++).empty();
      if (left) {
        ValueRef v = decode_rep(*t.left(), regs, at);
        at += rep_width(*t.right());
        return Value::in1(std::move(v));
      }
      at += rep_width(*t.left());
      ValueRef v = decode_rep(*t.right(), regs, at);
      return Value::in2(std::move(v));
    }
    case TypeKind::Seq: {
      auto elems = decode_seqrep(*t.elem(), regs, at);
      return Value::seq(std::move(elems));
    }
  }
  throw Error("decode: unknown type");
}

std::vector<ValueRef> decode_seqrep(const Type& t,
                                    const std::vector<Vec>& regs,
                                    std::size_t& at) {
  switch (t.kind()) {
    case TypeKind::Unit: {
      const Vec& z = regs.at(at++);
      return std::vector<ValueRef>(z.size(), Value::unit());
    }
    case TypeKind::Nat: {
      const Vec& v = regs.at(at++);
      std::vector<ValueRef> out;
      out.reserve(v.size());
      for (auto x : v) out.push_back(Value::nat(x));
      return out;
    }
    case TypeKind::Prod: {
      auto lefts = decode_seqrep(*t.left(), regs, at);
      auto rights = decode_seqrep(*t.right(), regs, at);
      if (lefts.size() != rights.size()) {
        throw Error("decode: product component counts differ");
      }
      std::vector<ValueRef> out;
      out.reserve(lefts.size());
      for (std::size_t i = 0; i < lefts.size(); ++i) {
        out.push_back(Value::pair(lefts[i], rights[i]));
      }
      return out;
    }
    case TypeKind::Sum: {
      const Vec flags = regs.at(at++);
      auto lefts = decode_seqrep(*t.left(), regs, at);
      auto rights = decode_seqrep(*t.right(), regs, at);
      std::vector<ValueRef> out;
      out.reserve(flags.size());
      std::size_t li = 0, ri = 0;
      for (auto f : flags) {
        if (f) {
          out.push_back(Value::in1(lefts.at(li++)));
        } else {
          out.push_back(Value::in2(rights.at(ri++)));
        }
      }
      if (li != lefts.size() || ri != rights.size()) {
        throw Error("decode: sum side counts disagree with flags");
      }
      return out;
    }
    case TypeKind::Seq: {
      const Vec lens = regs.at(at++);
      auto inner = decode_seqrep(*t.elem(), regs, at);
      std::vector<ValueRef> out;
      out.reserve(lens.size());
      std::size_t i = 0;
      for (auto len : lens) {
        if (i + len > inner.size()) {
          throw Error("decode: segment lengths exceed data");
        }
        out.push_back(Value::seq(std::vector<ValueRef>(
            inner.begin() + i, inner.begin() + i + len)));
        i += len;
      }
      if (i != inner.size()) throw Error("decode: segment data left over");
      return out;
    }
  }
  throw Error("decode: unknown type");
}

std::vector<Vec> encode_value(const ValueRef& v, const TypeRef& t) {
  std::vector<Vec> out;
  encode_rep(*v, *t, out);
  return out;
}

ValueRef decode_value(const TypeRef& t, const std::vector<Vec>& regs) {
  std::size_t at = 0;
  ValueRef v = decode_rep(*t, regs, at);
  if (at != regs.size()) throw Error("decode: extra registers");
  return v;
}

}  // namespace nsc::sa
