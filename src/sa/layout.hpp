// Flat register layouts for the flattening compiler (paper section 7).
//
// A value of NSA type t is laid out as a tuple of BVRAM vector registers:
//
//   REP(unit)      = ()                      -- nothing to store
//   REP(N)         = (v)                     -- singleton vector [n]
//   REP(t1 x t2)   = REP(t1) ++ REP(t2)
//   REP(t1 + t2)   = (tag) ++ REP(t1) ++ REP(t2)
//                    tag = [1] for in1, [] for in2 (so the machine's
//                    `if empty? goto` is exactly boolean branching); the
//                    inactive side's registers are empty.
//   REP([t])       = SEQREP(t)               -- the sequence's elements
//
// and a *sequence* of n elements of type t is laid out segment-descriptor
// style (the paper's SEQ(t), section 7.1):
//
//   SEQREP(unit)    = (z)                    -- n zeros      (SEQ(unit)=[N])
//   SEQREP(N)       = (v)                    -- n values
//   SEQREP(t1 x t2) = SEQREP(t1) ++ SEQREP(t2)
//   SEQREP(t1 + t2) = (flags) ++ SEQREP(t1) ++ SEQREP(t2)
//                    flags = n 0/1 bits; the sides hold the packed in1 /
//                    in2 elements in order                  (SEQ(t+t'))
//   SEQREP([t])     = (lengths) ++ SEQREP(t) -- n segment lengths, then the
//                    concatenated elements                  (SEQ([s]))
//
// Invariant: the *first* register of any SEQREP has length exactly n (the
// element count), so it doubles as a "probe" for the population.
#pragma once

#include <cstdint>
#include <vector>

#include "object/type.hpp"
#include "object/value.hpp"

namespace nsc::sa {

using Vec = std::vector<std::uint64_t>;

/// Number of registers in REP(t) / SEQREP(t).
std::size_t rep_width(const Type& t);
std::size_t seqrep_width(const Type& t);

/// Encode a value of type t into REP(t) vectors (appended to `out`).
void encode_rep(const Value& v, const Type& t, std::vector<Vec>& out);

/// Encode a sequence of elements of type t into SEQREP(t) vectors.
void encode_seqrep(const std::vector<ValueRef>& elems, const Type& t,
                   std::vector<Vec>& out);

/// Decode REP(t) / SEQREP(t) back into values.  `at` is advanced past the
/// consumed registers.
ValueRef decode_rep(const Type& t, const std::vector<Vec>& regs,
                    std::size_t& at);
std::vector<ValueRef> decode_seqrep(const Type& t, const std::vector<Vec>& regs,
                                    std::size_t& at);

/// Convenience wrappers.
std::vector<Vec> encode_value(const ValueRef& v, const TypeRef& t);
ValueRef decode_value(const TypeRef& t, const std::vector<Vec>& regs);

}  // namespace nsc::sa
