#include "serve/arena.hpp"

namespace nsc::serve {

void ArenaLease::release() {
  if (pool_ != nullptr && arena_ != nullptr) {
    pool_->park(std::move(arena_));
  }
  pool_ = nullptr;
  arena_.reset();
}

ArenaLease ArenaPool::acquire() {
  std::unique_ptr<bvram::BufferPool> arena;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++leases_;
    if (!idle_.empty()) {
      arena = std::move(idle_.back());
      idle_.pop_back();
    } else {
      ++created_;
    }
  }
  if (arena == nullptr) arena = std::make_unique<bvram::BufferPool>();
  return ArenaLease(this, std::move(arena));
}

void ArenaPool::park(std::unique_ptr<bvram::BufferPool> arena) {
  std::lock_guard<std::mutex> lock(mu_);
  idle_.push_back(std::move(arena));
}

void ArenaPool::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  idle_.clear();
}

ArenaPoolStats ArenaPool::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  ArenaPoolStats s;
  s.leases = leases_;
  s.created = created_;
  s.idle = idle_.size();
  for (const auto& a : idle_) s.idle_bytes += a->spare_bytes();
  return s;
}

}  // namespace nsc::serve
