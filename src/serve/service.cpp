#include "serve/service.hpp"

#include <algorithm>
#include <limits>
#include <sstream>
#include <utility>

#include "front/front.hpp"
#include "sa/compile.hpp"
#include "support/error.hpp"
#include "support/parallel.hpp"

namespace nsc::serve {

namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t ns_between(Clock::time_point a, Clock::time_point b) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(b - a).count());
}

std::uint64_t sat_mul_u64(std::uint64_t a, std::uint64_t b) {
  if (a != 0 && b > std::numeric_limits<std::uint64_t>::max() / a) {
    return std::numeric_limits<std::uint64_t>::max();
  }
  return a * b;
}

}  // namespace

const char* outcome_name(Outcome o) {
  switch (o) {
    case Outcome::Ok: return "ok";
    case Outcome::Trap: return "trap";
    case Outcome::FuelExhausted: return "fuel_exhausted";
    case Outcome::Rejected: return "rejected";
    case Outcome::Error: return "error";
  }
  return "?";
}

void Service::register_metrics() {
  m_.submitted = &registry_.counter(
      "nscc_serve_requests_submitted_total",
      "Requests submitted to the service (accepted or rejected).");
  m_.completed = &registry_.counter(
      "nscc_serve_requests_completed_total",
      "Responses delivered, any outcome.");
  m_.ok = &registry_.counter("nscc_serve_requests_ok_total",
                             "Responses with outcome ok.");
  m_.rejected = &registry_.counter(
      "nscc_serve_requests_rejected_total",
      "Requests refused by admission control (queue full or stopping).");
  m_.trapped = &registry_.counter(
      "nscc_serve_requests_trapped_total",
      "Responses that trapped (the paper's Omega / EvalError).");
  m_.fuel_exhausted = &registry_.counter(
      "nscc_serve_requests_fuel_exhausted_total",
      "Responses that exceeded the per-request instruction budget.");
  m_.errors = &registry_.counter(
      "nscc_serve_requests_error_total",
      "Responses that failed with an internal MachineError.");
  m_.runs = &registry_.counter(
      "nscc_serve_runs_total", "Machine runs issued (including replays).");
  m_.batch_runs = &registry_.counter(
      "nscc_serve_batch_runs_total",
      "Successful runs of a lifted batch program with k >= 2 members.");
  m_.batched_requests = &registry_.counter(
      "nscc_serve_batched_requests_total",
      "Requests answered by a successful batch run.");
  m_.replays = &registry_.counter(
      "nscc_serve_replays_total",
      "Solo re-runs after a trapped or fuel-exhausted batch.");
  m_.cost_time = &registry_.counter(
      "nscc_serve_cost_time_total",
      "Paper T (machine steps) summed over successful runs.");
  m_.cost_work = &registry_.counter(
      "nscc_serve_cost_work_total",
      "Paper W (register lengths) summed over successful runs.");
  m_.exec_wall_ns = &registry_.counter(
      "nscc_serve_exec_wall_ns_total",
      "Wall time spent inside bvram::run, nanoseconds.");
  m_.latency_ns = &registry_.histogram(
      "nscc_serve_latency_ns",
      "Submit-to-completion request latency, nanoseconds (log2 buckets).");
  m_.batch_size = &registry_.histogram(
      "nscc_serve_batch_size",
      "Members per claimed batch (including solo runs).");
  m_.queue_depth = &registry_.gauge(
      "nscc_serve_queue_depth", "Requests queued and not yet claimed.");
  m_.in_flight = &registry_.gauge(
      "nscc_serve_in_flight", "Requests claimed but not yet finished.");
  registry_.gauge("nscc_serve_workers", "Worker threads serving requests.")
      .set(cfg_.workers);

  m_.eng_pool_hits = &registry_.counter(
      "nscc_engine_pool_hits_total",
      "Engine buffer acquires served from the pool (profile_runs only).");
  m_.eng_pool_misses = &registry_.counter(
      "nscc_engine_pool_misses_total",
      "Engine buffer acquires that touched the allocator (profile_runs "
      "only).");
  m_.eng_inplace_hits = &registry_.counter(
      "nscc_engine_inplace_hits_total",
      "Kernels that wrote over a dying operand (profile_runs only).");
  m_.eng_move_swaps = &registry_.counter(
      "nscc_engine_move_swaps_total",
      "Moves executed as O(1) buffer swaps (profile_runs only).");
  m_.eng_par_kernels = &registry_.counter(
      "nscc_engine_par_kernels_total",
      "Kernel invocations split into parallel chunks (profile_runs only).");
  m_.eng_par_chunks = &registry_.counter(
      "nscc_engine_par_chunks_total",
      "Chunks dispatched to the worker pool (profile_runs only).");
  m_.eng_fused_groups = &registry_.counter(
      "nscc_engine_fused_groups_total",
      "Instruction groups executed via the fused path (profile_runs "
      "only).");
  m_.eng_fused_elided = &registry_.counter(
      "nscc_engine_fused_elided_total",
      "Intermediate buffers elided by fused groups (profile_runs only).");
}

Service::Service(ServeConfig cfg)
    : cfg_(cfg), cache_(cfg.cache_capacity), started_(Clock::now()) {
  if (cfg_.workers == 0) {
    const unsigned hc = std::thread::hardware_concurrency();
    cfg_.workers = std::min<std::size_t>(hc == 0 ? 1 : hc, 4);
  }
  if (cfg_.max_batch == 0) cfg_.max_batch = 1;
  register_metrics();
  threads_.reserve(cfg_.workers);
  for (std::size_t i = 0; i < cfg_.workers; ++i) {
    // Worker ids are 1-based: 0 is the caller-thread row in span traces.
    threads_.emplace_back([this, i] { worker_loop(i + 1); });
  }
}

Service::~Service() {
  std::vector<Pending> orphans;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
    while (!queue_.empty()) {
      orphans.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
    m_.queue_depth->set(0);
  }
  cv_.notify_all();
  idle_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
  for (Pending& p : orphans) {
    Response r;
    r.outcome = Outcome::Rejected;
    r.error = "service stopped before the request ran";
    r.latency_ns = ns_between(p.enqueued, Clock::now());
    m_.completed->inc();
    m_.rejected->inc();
    p.promise.set_value(std::move(r));
  }
}

std::shared_ptr<const CompiledProgram> Service::load(
    const std::string& name, const std::string& source_text,
    const std::string& entry, opt::OptLevel opt,
    const opt::WhileSchedule& sched) {
  const front::SourceFile src(name, source_text);
  const front::ResolvedModule mod = front::compile_file(src);
  const front::ResolvedFn* fn = entry.empty() ? &mod.main() : mod.find(entry);
  if (fn == nullptr) {
    throw Error("serve: no function '" + entry + "' in " + name);
  }
  CacheKey key;
  key.source_hash = hash_source(source_text, fn->name);
  key.opt = opt;
  key.sched = sched.kind;
  key.eps_num = sched.eps.num;
  key.eps_den = sched.eps.den;
  key.fuse = cfg_.fuse;

  const std::uint64_t evictions_before =
      cfg_.events != nullptr ? cache_.stats().evictions : 0;
  const std::uint64_t t0 =
      cfg_.spans != nullptr ? cfg_.spans->now_ns() : 0;
  bool compiled = false;
  auto prog = cache_.get_or_compile(key, [&] {
    compiled = true;
    return compile_program(name + ":" + fn->name, fn->fn, fn->dom, fn->cod,
                           key);
  });
  if (cfg_.spans != nullptr) {
    obs::ServeSpan s;
    s.phase = compiled ? "compile" : "cache-hit";
    s.worker = 0;
    s.t0_ns = t0;
    s.dur_ns = cfg_.spans->now_ns() - t0;
    s.note = name;
    cfg_.spans->record(std::move(s));
  }
  if (cfg_.events != nullptr) {
    if (compiled) {
      cfg_.events->emit(obs::Event("serve.compile", obs::Severity::Info)
                            .str("program", name)
                            .num("cache_size", cache_.stats().size));
    }
    const std::uint64_t evicted =
        cache_.stats().evictions - evictions_before;
    if (evicted > 0) {
      cfg_.events->emit(obs::Event("serve.cache_evict", obs::Severity::Info)
                            .num("evicted", evicted)
                            .str("trigger", name));
    }
  }
  return prog;
}

std::future<Response> Service::submit(
    std::shared_ptr<const CompiledProgram> program, ValueRef arg) {
  Pending p;
  p.id = next_request_id_.fetch_add(1, std::memory_order_relaxed);
  p.program = std::move(program);
  p.arg = std::move(arg);
  p.enqueued = Clock::now();
  if (cfg_.spans != nullptr) p.span_t0 = cfg_.spans->now_ns();
  const std::uint64_t id = p.id;
  const std::uint64_t span_t0 = p.span_t0;
  std::future<Response> fut = p.promise.get_future();
  m_.submitted->inc();
  bool rejected = false;
  std::size_t depth = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_ || queue_.size() >= cfg_.max_queue) {
      rejected = true;
      depth = queue_.size();
      m_.completed->inc();
      m_.rejected->inc();
      Response r;
      r.outcome = Outcome::Rejected;
      r.error = stopping_ ? "service stopped" : "queue full";
      p.promise.set_value(std::move(r));
    } else {
      queue_.push_back(std::move(p));
      depth = queue_.size();
      m_.queue_depth->set(depth);
    }
  }
  if (cfg_.spans != nullptr) {
    obs::ServeSpan s;
    s.phase = "admission";
    s.request_id = id;
    s.worker = 0;
    s.t0_ns = span_t0;
    s.dur_ns = cfg_.spans->now_ns() - span_t0;
    s.size = depth;
    if (rejected) s.note = "rejected";
    cfg_.spans->record(std::move(s));
  }
  if (rejected && cfg_.events != nullptr) {
    cfg_.events->emit(obs::Event("serve.rejected", obs::Severity::Warn)
                          .num("request", id)
                          .num("queue_depth", depth));
  }
  if (!rejected) cv_.notify_one();
  return fut;
}

Response Service::call(const std::shared_ptr<const CompiledProgram>& program,
                       const ValueRef& arg) {
  return submit(program, arg).get();
}

void Service::drain() {
  std::unique_lock<std::mutex> lk(mu_);
  idle_cv_.wait(lk, [this] {
    return stopping_ || (queue_.empty() && in_flight_ == 0);
  });
}

void Service::pause() {
  std::lock_guard<std::mutex> lock(mu_);
  paused_ = true;
}

void Service::resume() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    paused_ = false;
  }
  cv_.notify_all();
}

void Service::worker_loop(std::size_t worker) {
  // One warm arena per worker, held for the thread's lifetime: the
  // cross-run generalization of the engine's per-run buffer pool.
  ArenaLease lease = arenas_.acquire();
  for (;;) {
    std::vector<Pending> batch = next_batch();
    if (batch.empty()) return;
    execute(std::move(batch), lease.get(), worker);
  }
}

std::vector<Service::Pending> Service::next_batch() {
  std::unique_lock<std::mutex> lk(mu_);
  cv_.wait(lk, [this] {
    return stopping_ || (!paused_ && !queue_.empty());
  });
  std::vector<Pending> batch;
  if (stopping_) return batch;
  batch.push_back(std::move(queue_.front()));
  queue_.pop_front();
  if (cfg_.batching && cfg_.max_batch > 1) {
    const CompiledProgram* same = batch.front().program.get();
    for (auto it = queue_.begin();
         it != queue_.end() && batch.size() < cfg_.max_batch;) {
      if (it->program.get() == same) {
        batch.push_back(std::move(*it));
        it = queue_.erase(it);
      } else {
        ++it;
      }
    }
  }
  in_flight_ += batch.size();
  m_.queue_depth->set(queue_.size());
  m_.in_flight->set(in_flight_);
  return batch;
}

void Service::note_engine(const bvram::EngineProfile& e) {
  m_.eng_pool_hits->inc(e.pool_hits);
  m_.eng_pool_misses->inc(e.pool_misses);
  m_.eng_inplace_hits->inc(e.inplace_hits);
  m_.eng_move_swaps->inc(e.move_swaps);
  m_.eng_par_kernels->inc(e.par_kernels);
  m_.eng_par_chunks->inc(e.par_chunks);
  m_.eng_fused_groups->inc(e.fused_groups);
  m_.eng_fused_elided->inc(e.fused_elided);
}

void Service::execute(std::vector<Pending> batch, bvram::BufferPool* arena,
                      std::size_t worker) {
  const std::shared_ptr<const CompiledProgram> prog = batch.front().program;
  const std::size_t k = batch.size();
  const std::uint64_t run_id =
      next_run_id_.fetch_add(1, std::memory_order_relaxed);
  obs::SpanLog* spans = cfg_.spans;

  m_.batch_size->observe(k);
  if (spans != nullptr) {
    // Close each member's queue-wait now that a worker has claimed it;
    // the batch_id links the wait to the machine run that answers it.
    const std::uint64_t now = spans->now_ns();
    for (const Pending& p : batch) {
      obs::ServeSpan s;
      s.phase = "queue-wait";
      s.request_id = p.id;
      s.batch_id = run_id;
      s.worker = 0;
      s.t0_ns = p.span_t0;
      s.dur_ns = now - p.span_t0;
      s.size = k;
      spans->record(std::move(s));
    }
  }

  const auto record = [&](const char* phase, std::uint64_t t0,
                          std::uint64_t request, const std::string& note) {
    if (spans == nullptr) return;
    obs::ServeSpan s;
    s.phase = phase;
    s.request_id = request;
    s.batch_id = run_id;
    s.worker = worker;
    s.t0_ns = t0;
    s.dur_ns = spans->now_ns() - t0;
    s.size = k;
    s.note = note;
    spans->record(std::move(s));
  };

  if (k >= 2) {
    // One segment-descriptor level up: Value::seq of the arguments is
    // exactly the SEQREP concatenation of the per-request encodings, so
    // the whole batch is one run of the cached lifted program.
    const std::uint64_t asm_t0 = spans != nullptr ? spans->now_ns() : 0;
    std::vector<ValueRef> args;
    args.reserve(k);
    for (const Pending& p : batch) args.push_back(p.arg);
    record("batch-assembly", asm_t0, 0, "");

    bvram::RunConfig rc;
    rc.max_instructions = sat_mul_u64(cfg_.fuel, k);
    rc.parallel_backend = cfg_.parallel_backend;
    rc.fuse = cfg_.fuse;
    rc.arena = arena;
    rc.profile = cfg_.profile_runs;

    const std::uint64_t exec_t0 = spans != nullptr ? spans->now_ns() : 0;
    const auto t0 = Clock::now();
    bool batch_ok = false;
    std::string batch_err;
    sa::CompiledRun out;
    bvram::RunResult raw;
    try {
      out = sa::run_compiled(prog->batch, Type::seq(prog->dom),
                             Type::seq(prog->cod), Value::seq(args), rc,
                             cfg_.profile_runs ? &raw : nullptr);
      batch_ok = true;
    } catch (const Error& e) {
      // A trap (Omega) or fuel exhaustion anywhere in the batch aborts
      // the whole run -- the machine has no per-segment error state.
      // Fall through to per-request replay: each request re-runs solo
      // under its own fuel, so only the offender fails.
      batch_err = e.what();
    }
    const std::uint64_t wall = ns_between(t0, Clock::now());
    record("execute", exec_t0, 0, batch_ok ? "" : batch_err);

    m_.runs->inc();
    m_.exec_wall_ns->inc(wall);
    if (batch_ok) {
      m_.batch_runs->inc();
      m_.batched_requests->inc(k);
      m_.cost_time->inc(out.cost.time);
      m_.cost_work->inc(out.cost.work);
      if (cfg_.profile_runs) note_engine(raw.engine);
    }

    if (batch_ok) {
      const std::uint64_t split_t0 = spans != nullptr ? spans->now_ns() : 0;
      const std::vector<ValueRef>& elems = out.value->elems();
      for (std::size_t i = 0; i < k; ++i) {
        Response r;
        r.outcome = Outcome::Ok;
        r.value = elems[i];
        r.cost = out.cost;
        r.batched = true;
        r.batch_size = k;
        finish(batch[i], std::move(r));
      }
      record("split", split_t0, 0, "");
      return;
    }
    if (cfg_.events != nullptr) {
      cfg_.events->emit(obs::Event("serve.replay", obs::Severity::Warn)
                            .num("run", run_id)
                            .num("batch_size", k)
                            .str("error", batch_err));
    }
    for (Pending& p : batch) {
      m_.replays->inc();
      finish(p, run_one(*prog, p.arg, arena, worker, p.id, run_id,
                        "replay"));
    }
    return;
  }

  finish(batch.front(),
         run_one(*prog, batch.front().arg, arena, worker,
                 batch.front().id, run_id, "execute"));
}

Response Service::run_one(const CompiledProgram& prog, const ValueRef& arg,
                          bvram::BufferPool* arena, std::size_t worker,
                          std::uint64_t request_id, std::uint64_t run_id,
                          const char* phase) {
  bvram::RunConfig rc;
  rc.max_instructions = cfg_.fuel;
  rc.parallel_backend = cfg_.parallel_backend;
  rc.fuse = cfg_.fuse;
  rc.arena = arena;
  rc.profile = cfg_.profile_runs;

  Response r;
  const std::uint64_t span_t0 =
      cfg_.spans != nullptr ? cfg_.spans->now_ns() : 0;
  const auto t0 = Clock::now();
  bvram::RunResult raw;
  try {
    const sa::CompiledRun out =
        sa::run_compiled(prog.unit, prog.dom, prog.cod, arg, rc,
                         cfg_.profile_runs ? &raw : nullptr);
    r.outcome = Outcome::Ok;
    r.value = out.value;
    r.cost = out.cost;
  } catch (const nsc::FuelExhausted& e) {
    r.outcome = Outcome::FuelExhausted;
    r.error = e.what();
  } catch (const EvalError& e) {
    r.outcome = Outcome::Trap;
    r.error = e.what();
  } catch (const Error& e) {
    r.outcome = Outcome::Error;
    r.error = e.what();
  }
  const std::uint64_t wall = ns_between(t0, Clock::now());

  if (cfg_.spans != nullptr) {
    obs::ServeSpan s;
    s.phase = phase;
    s.request_id = request_id;
    s.batch_id = run_id;
    s.worker = worker;
    s.t0_ns = span_t0;
    s.dur_ns = cfg_.spans->now_ns() - span_t0;
    s.size = 1;
    if (!r.ok()) s.note = outcome_name(r.outcome);
    cfg_.spans->record(std::move(s));
  }
  if (cfg_.events != nullptr && !r.ok()) {
    const char* name = r.outcome == Outcome::Trap ? "serve.trap"
                       : r.outcome == Outcome::FuelExhausted
                           ? "serve.fuel_exhausted"
                           : "serve.error";
    const obs::Severity sev = r.outcome == Outcome::Error
                                  ? obs::Severity::Error
                                  : obs::Severity::Warn;
    cfg_.events->emit(obs::Event(name, sev)
                          .num("request", request_id)
                          .num("run", run_id)
                          .str("error", r.error));
  }

  m_.runs->inc();
  m_.exec_wall_ns->inc(wall);
  if (r.ok()) {
    m_.cost_time->inc(r.cost.time);
    m_.cost_work->inc(r.cost.work);
  }
  if (cfg_.profile_runs && r.ok()) note_engine(raw.engine);
  return r;
}

void Service::finish(Pending& p, Response r) {
  r.latency_ns = ns_between(p.enqueued, Clock::now());
  m_.completed->inc();
  switch (r.outcome) {
    case Outcome::Ok: m_.ok->inc(); break;
    case Outcome::Trap: m_.trapped->inc(); break;
    case Outcome::FuelExhausted: m_.fuel_exhausted->inc(); break;
    case Outcome::Rejected: m_.rejected->inc(); break;
    case Outcome::Error: m_.errors->inc(); break;
  }
  m_.latency_ns->observe(r.latency_ns);
  if (cfg_.events != nullptr && cfg_.slow_ms > 0 &&
      r.latency_ns > cfg_.slow_ms * 1000000ull) {
    cfg_.events->emit(obs::Event("serve.slow", obs::Severity::Warn)
                          .num("request", p.id)
                          .num("latency_ns", r.latency_ns)
                          .str("outcome", outcome_name(r.outcome)));
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    --in_flight_;
    m_.in_flight->set(in_flight_);
    if (queue_.empty() && in_flight_ == 0) idle_cv_.notify_all();
  }
  p.promise.set_value(std::move(r));
}

obs::Registry& Service::metrics() {
  const CacheStats c = cache_.stats();
  registry_.gauge("nscc_serve_cache_hits", "Program cache hits.").set(c.hits);
  registry_.gauge("nscc_serve_cache_misses",
                  "Program cache misses (compiles).")
      .set(c.misses);
  registry_.gauge("nscc_serve_cache_evictions", "Program cache evictions.")
      .set(c.evictions);
  registry_
      .gauge("nscc_serve_cache_compile_wall_ns",
             "Wall time spent compiling, nanoseconds.")
      .set(c.compile_wall_ns);
  registry_.gauge("nscc_serve_cache_size", "Compiled artifacts cached.")
      .set(c.size);
  registry_.gauge("nscc_serve_cache_capacity", "Program cache capacity.")
      .set(c.capacity);
  const ArenaPoolStats a = arenas_.stats();
  registry_.gauge("nscc_serve_arena_leases", "Register-file arena leases.")
      .set(a.leases);
  registry_
      .gauge("nscc_serve_arena_created", "Leases that built a cold arena.")
      .set(a.created);
  registry_.gauge("nscc_serve_arena_idle", "Warm arenas currently parked.")
      .set(a.idle);
  registry_
      .gauge("nscc_serve_arena_idle_bytes",
             "Spare capacity held by parked arenas.")
      .set(a.idle_bytes);
  const ParallelCounters pc = parallel_counters();
  registry_
      .gauge("nscc_parallel_calls",
             "Process-wide parallel_for/scan/reduce calls.")
      .set(pc.calls);
  registry_
      .gauge("nscc_parallel_serial_calls",
             "Parallel calls collapsed to one chunk.")
      .set(pc.serial_calls);
  registry_
      .gauge("nscc_parallel_chunks",
             "Chunks dispatched to the process-wide worker pool.")
      .set(pc.chunks);
  registry_
      .gauge("nscc_serve_uptime_ns", "Nanoseconds since Service start.")
      .set(ns_between(started_, Clock::now()));
  return registry_;
}

ServeStats Service::stats() const {
  ServeStats s;
  s.submitted = m_.submitted->value();
  s.completed = m_.completed->value();
  s.ok = m_.ok->value();
  s.rejected = m_.rejected->value();
  s.trapped = m_.trapped->value();
  s.fuel_exhausted = m_.fuel_exhausted->value();
  s.errors = m_.errors->value();
  s.runs = m_.runs->value();
  s.batch_runs = m_.batch_runs->value();
  s.batched_requests = m_.batched_requests->value();
  s.replays = m_.replays->value();
  s.total_cost.time = m_.cost_time->value();
  s.total_cost.work = m_.cost_work->value();
  s.exec_wall_ns = m_.exec_wall_ns->value();
  s.uptime_ns = ns_between(started_, Clock::now());
  if (s.batch_runs > 0) {
    s.batch_occupancy = static_cast<double>(s.batched_requests) /
                        static_cast<double>(s.batch_runs);
  }
  const obs::HistogramSnapshot lat = m_.latency_ns->snapshot();
  if (lat.count > 0) {
    s.latency_p50_ns = lat.quantile(0.50);
    s.latency_p95_ns = lat.quantile(0.95);
    s.latency_p99_ns = lat.quantile(0.99);
    s.latency_mean_ns = lat.mean();
  }
  s.cache = cache_.stats();
  s.arena = arenas_.stats();
  return s;
}

std::string Service::stats_json() const {
  const ServeStats s = stats();
  const ParallelCounters pc = parallel_counters();
  std::ostringstream os;
  os << "{\n";
  os << "  \"schema\": \"nscc-serve-stats/v2\",\n";
  os << "  \"config\": {\"workers\": " << cfg_.workers
     << ", \"max_queue\": " << cfg_.max_queue
     << ", \"max_batch\": " << cfg_.max_batch << ", \"fuel\": " << cfg_.fuel
     << ", \"batching\": " << (cfg_.batching ? "true" : "false")
     << ", \"parallel_backend\": " << (cfg_.parallel_backend ? "true" : "false")
     << ", \"fuse\": " << (cfg_.fuse ? "true" : "false")
     << ", \"profile_runs\": " << (cfg_.profile_runs ? "true" : "false")
     << "},\n";
  os << "  \"requests\": {\"submitted\": " << s.submitted
     << ", \"completed\": " << s.completed << ", \"ok\": " << s.ok
     << ", \"rejected\": " << s.rejected << ", \"trapped\": " << s.trapped
     << ", \"fuel_exhausted\": " << s.fuel_exhausted
     << ", \"errors\": " << s.errors << "},\n";
  os << "  \"execution\": {\"runs\": " << s.runs
     << ", \"batch_runs\": " << s.batch_runs
     << ", \"batched_requests\": " << s.batched_requests
     << ", \"replays\": " << s.replays
     << ", \"batch_occupancy\": " << s.batch_occupancy
     << ", \"T\": " << s.total_cost.time << ", \"W\": " << s.total_cost.work
     << ", \"exec_wall_ns\": " << s.exec_wall_ns << "},\n";
  os << "  \"latency_ns\": {\"p50\": " << s.latency_p50_ns
     << ", \"p95\": " << s.latency_p95_ns << ", \"p99\": " << s.latency_p99_ns
     << ", \"mean\": " << s.latency_mean_ns
     << ", \"source\": \"log2-histogram\"},\n";
  os << "  \"parallel\": {\"calls\": " << pc.calls
     << ", \"serial_calls\": " << pc.serial_calls
     << ", \"chunks\": " << pc.chunks << "},\n";
  os << "  \"throughput_rps\": "
     << (s.uptime_ns > 0
             ? static_cast<double>(s.completed) * 1e9 /
                   static_cast<double>(s.uptime_ns)
             : 0.0)
     << ",\n";
  os << "  \"uptime_ns\": " << s.uptime_ns << ",\n";
  os << "  \"cache\": {\"hits\": " << s.cache.hits
     << ", \"misses\": " << s.cache.misses
     << ", \"evictions\": " << s.cache.evictions
     << ", \"compile_wall_ns\": " << s.cache.compile_wall_ns
     << ", \"size\": " << s.cache.size
     << ", \"capacity\": " << s.cache.capacity << "},\n";
  os << "  \"arena\": {\"leases\": " << s.arena.leases
     << ", \"created\": " << s.arena.created << ", \"idle\": " << s.arena.idle
     << ", \"idle_bytes\": " << s.arena.idle_bytes << "}\n";
  os << "}";
  return os.str();
}

}  // namespace nsc::serve
