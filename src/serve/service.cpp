#include "serve/service.hpp"

#include <algorithm>
#include <limits>
#include <sstream>
#include <utility>

#include "front/front.hpp"
#include "sa/compile.hpp"
#include "support/error.hpp"

namespace nsc::serve {

namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t ns_between(Clock::time_point a, Clock::time_point b) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(b - a).count());
}

std::uint64_t sat_mul_u64(std::uint64_t a, std::uint64_t b) {
  if (a != 0 && b > std::numeric_limits<std::uint64_t>::max() / a) {
    return std::numeric_limits<std::uint64_t>::max();
  }
  return a * b;
}

/// Nearest-rank percentile of an already-sorted sample.
std::uint64_t percentile(const std::vector<std::uint64_t>& sorted, int p) {
  if (sorted.empty()) return 0;
  std::size_t rank = (sorted.size() * static_cast<std::size_t>(p) + 99) / 100;
  if (rank == 0) rank = 1;
  return sorted[std::min(rank - 1, sorted.size() - 1)];
}

}  // namespace

const char* outcome_name(Outcome o) {
  switch (o) {
    case Outcome::Ok: return "ok";
    case Outcome::Trap: return "trap";
    case Outcome::FuelExhausted: return "fuel_exhausted";
    case Outcome::Rejected: return "rejected";
    case Outcome::Error: return "error";
  }
  return "?";
}

Service::Service(ServeConfig cfg)
    : cfg_(cfg), cache_(cfg.cache_capacity), started_(Clock::now()) {
  if (cfg_.workers == 0) {
    const unsigned hc = std::thread::hardware_concurrency();
    cfg_.workers = std::min<std::size_t>(hc == 0 ? 1 : hc, 4);
  }
  if (cfg_.max_batch == 0) cfg_.max_batch = 1;
  threads_.reserve(cfg_.workers);
  for (std::size_t i = 0; i < cfg_.workers; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

Service::~Service() {
  std::vector<Pending> orphans;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
    while (!queue_.empty()) {
      orphans.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
  }
  cv_.notify_all();
  idle_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
  for (Pending& p : orphans) {
    Response r;
    r.outcome = Outcome::Rejected;
    r.error = "service stopped before the request ran";
    r.latency_ns = ns_between(p.enqueued, Clock::now());
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.completed;
      ++stats_.rejected;
    }
    p.promise.set_value(std::move(r));
  }
}

std::shared_ptr<const CompiledProgram> Service::load(
    const std::string& name, const std::string& source_text,
    const std::string& entry, opt::OptLevel opt,
    const opt::WhileSchedule& sched) {
  const front::SourceFile src(name, source_text);
  const front::ResolvedModule mod = front::compile_file(src);
  const front::ResolvedFn* fn = entry.empty() ? &mod.main() : mod.find(entry);
  if (fn == nullptr) {
    throw Error("serve: no function '" + entry + "' in " + name);
  }
  CacheKey key;
  key.source_hash = hash_source(source_text, fn->name);
  key.opt = opt;
  key.sched = sched.kind;
  key.eps_num = sched.eps.num;
  key.eps_den = sched.eps.den;
  key.fuse = cfg_.fuse;
  return cache_.get_or_compile(key, [&] {
    return compile_program(name + ":" + fn->name, fn->fn, fn->dom, fn->cod,
                           key);
  });
}

std::future<Response> Service::submit(
    std::shared_ptr<const CompiledProgram> program, ValueRef arg) {
  Pending p;
  p.program = std::move(program);
  p.arg = std::move(arg);
  p.enqueued = Clock::now();
  std::future<Response> fut = p.promise.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.submitted;
    if (stopping_ || queue_.size() >= cfg_.max_queue) {
      ++stats_.completed;
      ++stats_.rejected;
      Response r;
      r.outcome = Outcome::Rejected;
      r.error = stopping_ ? "service stopped" : "queue full";
      p.promise.set_value(std::move(r));
      return fut;
    }
    queue_.push_back(std::move(p));
  }
  cv_.notify_one();
  return fut;
}

Response Service::call(const std::shared_ptr<const CompiledProgram>& program,
                       const ValueRef& arg) {
  return submit(program, arg).get();
}

void Service::drain() {
  std::unique_lock<std::mutex> lk(mu_);
  idle_cv_.wait(lk, [this] {
    return stopping_ || (queue_.empty() && in_flight_ == 0);
  });
}

void Service::pause() {
  std::lock_guard<std::mutex> lock(mu_);
  paused_ = true;
}

void Service::resume() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    paused_ = false;
  }
  cv_.notify_all();
}

void Service::worker_loop() {
  // One warm arena per worker, held for the thread's lifetime: the
  // cross-run generalization of the engine's per-run buffer pool.
  ArenaLease lease = arenas_.acquire();
  for (;;) {
    std::vector<Pending> batch = next_batch();
    if (batch.empty()) return;
    execute(std::move(batch), lease.get());
  }
}

std::vector<Service::Pending> Service::next_batch() {
  std::unique_lock<std::mutex> lk(mu_);
  cv_.wait(lk, [this] {
    return stopping_ || (!paused_ && !queue_.empty());
  });
  std::vector<Pending> batch;
  if (stopping_) return batch;
  batch.push_back(std::move(queue_.front()));
  queue_.pop_front();
  if (cfg_.batching && cfg_.max_batch > 1) {
    const CompiledProgram* same = batch.front().program.get();
    for (auto it = queue_.begin();
         it != queue_.end() && batch.size() < cfg_.max_batch;) {
      if (it->program.get() == same) {
        batch.push_back(std::move(*it));
        it = queue_.erase(it);
      } else {
        ++it;
      }
    }
  }
  in_flight_ += batch.size();
  return batch;
}

void Service::execute(std::vector<Pending> batch, bvram::BufferPool* arena) {
  const std::shared_ptr<const CompiledProgram> prog = batch.front().program;
  const std::size_t k = batch.size();

  if (k >= 2) {
    // One segment-descriptor level up: Value::seq of the arguments is
    // exactly the SEQREP concatenation of the per-request encodings, so
    // the whole batch is one run of the cached lifted program.
    std::vector<ValueRef> args;
    args.reserve(k);
    for (const Pending& p : batch) args.push_back(p.arg);

    bvram::RunConfig rc;
    rc.max_instructions = sat_mul_u64(cfg_.fuel, k);
    rc.parallel_backend = cfg_.parallel_backend;
    rc.fuse = cfg_.fuse;
    rc.arena = arena;

    const auto t0 = Clock::now();
    bool batch_ok = false;
    sa::CompiledRun out;
    try {
      out = sa::run_compiled(prog->batch, Type::seq(prog->dom),
                             Type::seq(prog->cod), Value::seq(args), rc);
      batch_ok = true;
    } catch (const Error&) {
      // A trap (Omega) or fuel exhaustion anywhere in the batch aborts
      // the whole run -- the machine has no per-segment error state.
      // Fall through to per-request replay: each request re-runs solo
      // under its own fuel, so only the offender fails.
    }
    const std::uint64_t wall = ns_between(t0, Clock::now());

    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.runs;
      stats_.exec_wall_ns += wall;
      if (batch_ok) {
        ++stats_.batch_runs;
        stats_.batched_requests += k;
        stats_.total_cost += out.cost;
      }
    }

    if (batch_ok) {
      const std::vector<ValueRef>& elems = out.value->elems();
      for (std::size_t i = 0; i < k; ++i) {
        Response r;
        r.outcome = Outcome::Ok;
        r.value = elems[i];
        r.cost = out.cost;
        r.batched = true;
        r.batch_size = k;
        finish(batch[i], std::move(r));
      }
      return;
    }
    for (Pending& p : batch) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.replays;
      }
      finish(p, run_one(*prog, p.arg, arena));
    }
    return;
  }

  finish(batch.front(), run_one(*prog, batch.front().arg, arena));
}

Response Service::run_one(const CompiledProgram& prog, const ValueRef& arg,
                          bvram::BufferPool* arena) {
  bvram::RunConfig rc;
  rc.max_instructions = cfg_.fuel;
  rc.parallel_backend = cfg_.parallel_backend;
  rc.fuse = cfg_.fuse;
  rc.arena = arena;

  Response r;
  const auto t0 = Clock::now();
  try {
    const sa::CompiledRun out =
        sa::run_compiled(prog.unit, prog.dom, prog.cod, arg, rc);
    r.outcome = Outcome::Ok;
    r.value = out.value;
    r.cost = out.cost;
  } catch (const nsc::FuelExhausted& e) {
    r.outcome = Outcome::FuelExhausted;
    r.error = e.what();
  } catch (const EvalError& e) {
    r.outcome = Outcome::Trap;
    r.error = e.what();
  } catch (const Error& e) {
    r.outcome = Outcome::Error;
    r.error = e.what();
  }
  const std::uint64_t wall = ns_between(t0, Clock::now());

  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.runs;
  stats_.exec_wall_ns += wall;
  if (r.ok()) stats_.total_cost += r.cost;
  return r;
}

void Service::finish(Pending& p, Response r) {
  r.latency_ns = ns_between(p.enqueued, Clock::now());
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.completed;
    switch (r.outcome) {
      case Outcome::Ok: ++stats_.ok; break;
      case Outcome::Trap: ++stats_.trapped; break;
      case Outcome::FuelExhausted: ++stats_.fuel_exhausted; break;
      case Outcome::Rejected: ++stats_.rejected; break;
      case Outcome::Error: ++stats_.errors; break;
    }
    if (latencies_.size() < kLatencyWindow) {
      latencies_.push_back(r.latency_ns);
    } else {
      latencies_[latency_next_] = r.latency_ns;
      latency_next_ = (latency_next_ + 1) % kLatencyWindow;
    }
    --in_flight_;
    if (queue_.empty() && in_flight_ == 0) idle_cv_.notify_all();
  }
  p.promise.set_value(std::move(r));
}

ServeStats Service::stats() const {
  ServeStats s;
  std::vector<std::uint64_t> lat;
  {
    std::lock_guard<std::mutex> lock(mu_);
    s = stats_;
    lat = latencies_;
  }
  s.uptime_ns = ns_between(started_, Clock::now());
  if (s.batch_runs > 0) {
    s.batch_occupancy = static_cast<double>(s.batched_requests) /
                        static_cast<double>(s.batch_runs);
  }
  if (!lat.empty()) {
    std::sort(lat.begin(), lat.end());
    s.latency_p50_ns = percentile(lat, 50);
    s.latency_p95_ns = percentile(lat, 95);
    s.latency_p99_ns = percentile(lat, 99);
    std::uint64_t sum = 0;
    for (const std::uint64_t v : lat) sum += v;
    s.latency_mean_ns = sum / lat.size();
  }
  s.cache = cache_.stats();
  s.arena = arenas_.stats();
  return s;
}

std::string Service::stats_json() const {
  const ServeStats s = stats();
  std::ostringstream os;
  os << "{\n";
  os << "  \"schema\": \"nscc-serve-stats/v1\",\n";
  os << "  \"config\": {\"workers\": " << cfg_.workers
     << ", \"max_queue\": " << cfg_.max_queue
     << ", \"max_batch\": " << cfg_.max_batch << ", \"fuel\": " << cfg_.fuel
     << ", \"batching\": " << (cfg_.batching ? "true" : "false")
     << ", \"parallel_backend\": " << (cfg_.parallel_backend ? "true" : "false")
     << ", \"fuse\": " << (cfg_.fuse ? "true" : "false") << "},\n";
  os << "  \"requests\": {\"submitted\": " << s.submitted
     << ", \"completed\": " << s.completed << ", \"ok\": " << s.ok
     << ", \"rejected\": " << s.rejected << ", \"trapped\": " << s.trapped
     << ", \"fuel_exhausted\": " << s.fuel_exhausted
     << ", \"errors\": " << s.errors << "},\n";
  os << "  \"execution\": {\"runs\": " << s.runs
     << ", \"batch_runs\": " << s.batch_runs
     << ", \"batched_requests\": " << s.batched_requests
     << ", \"replays\": " << s.replays
     << ", \"batch_occupancy\": " << s.batch_occupancy
     << ", \"T\": " << s.total_cost.time << ", \"W\": " << s.total_cost.work
     << ", \"exec_wall_ns\": " << s.exec_wall_ns << "},\n";
  os << "  \"latency_ns\": {\"p50\": " << s.latency_p50_ns
     << ", \"p95\": " << s.latency_p95_ns << ", \"p99\": " << s.latency_p99_ns
     << ", \"mean\": " << s.latency_mean_ns << "},\n";
  os << "  \"throughput_rps\": "
     << (s.uptime_ns > 0
             ? static_cast<double>(s.completed) * 1e9 /
                   static_cast<double>(s.uptime_ns)
             : 0.0)
     << ",\n";
  os << "  \"uptime_ns\": " << s.uptime_ns << ",\n";
  os << "  \"cache\": {\"hits\": " << s.cache.hits
     << ", \"misses\": " << s.cache.misses
     << ", \"evictions\": " << s.cache.evictions
     << ", \"compile_wall_ns\": " << s.cache.compile_wall_ns
     << ", \"size\": " << s.cache.size
     << ", \"capacity\": " << s.cache.capacity << "},\n";
  os << "  \"arena\": {\"leases\": " << s.arena.leases
     << ", \"created\": " << s.arena.created << ", \"idle\": " << s.arena.idle
     << ", \"idle_bytes\": " << s.arena.idle_bytes << "}\n";
  os << "}";
  return os.str();
}

}  // namespace nsc::serve
