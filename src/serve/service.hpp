// Compile-once, run-many: the `nscc serve` query service.
//
// The pipeline's cost profile is lopsided: compiling an NSC program
// (frontend + variable elimination + flattening + optimizer) costs
// orders of magnitude more than executing it on the small inputs a
// query service sees.  The Service amortizes that compile across
// requests with three mechanisms, layered so each is independently
// testable:
//
//   1. ProgramCache (serve/cache.hpp): compile once per (source, opt,
//      schedule, fuse) key, share the immutable artifact across every
//      thread.  bvram::run takes the Program by const reference and
//      keeps all run state in a private Engine, so N workers executing
//      one Program concurrently need no synchronization.
//
//   2. ArenaPool (serve/arena.hpp): each worker thread leases one warm
//      register-file arena for its lifetime, so steady-state execution
//      allocates nothing (the within-run BufferPool generalized across
//      runs).
//
//   3. Request batching: queued requests against the same program are
//      appended into ONE segment-descriptor level -- Value::seq of the
//      arguments is exactly the SEQREP concatenation -- and executed by
//      the cached lifted program (map f, Lemma 7.2) in a single machine
//      run, then split back into per-request responses.  Batching is an
//      execution strategy, not a semantics change: each response's
//      value is bit-identical to what a solo run would produce, and a
//      trapping or fuel-exhausted batch falls back to per-request
//      replay so an Omega in one request never poisons its neighbors
//      (test Serve.TrapIsolatedInBatch).
//
// Admission control keeps the service honest under overload: requests
// past `max_queue` are rejected immediately (never silently dropped),
// a batch never exceeds `max_batch`, and every request carries a fuel
// budget (`fuel` instructions; a batch of k gets k*fuel, and on
// exhaustion the replay path re-runs each request under its own fuel,
// so a diverging request cannot starve a batched neighbor either).
//
// See docs/serve.md for the full semantics and the stats schema.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "object/value.hpp"
#include "obs/events.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "opt/opt.hpp"
#include "serve/arena.hpp"
#include "serve/cache.hpp"
#include "support/cost.hpp"

namespace nsc::serve {

struct ServeConfig {
  /// Worker threads; 0 picks min(hardware_concurrency, 4).
  std::size_t workers = 0;
  /// Admission limit: submits beyond this many queued requests are
  /// rejected immediately with Outcome::Rejected.
  std::size_t max_queue = 1024;
  /// Largest number of same-program requests fused into one batch run.
  std::size_t max_batch = 64;
  /// Per-request instruction budget (RunConfig::max_instructions); a
  /// batch of k runs under k * fuel.
  std::uint64_t fuel = std::uint64_t{1} << 32;
  /// Coalesce same-program requests into segment-descriptor batches.
  /// Off = every request runs the unit program individually.
  bool batching = true;
  /// RunConfig::parallel_backend for every run the service issues.
  bool parallel_backend = false;
  /// RunConfig::fuse for every run; also part of the cache key.
  bool fuse = true;
  /// ProgramCache capacity, in compiled artifacts.
  std::size_t cache_capacity = 64;

  // -- telemetry (pure observers; see docs/observability.md) -------------
  //
  // The invisibility contract from the profiling layer extends here:
  // with every sink wired and every flag on, responses, traps, T/W, and
  // traces are bit-identical to a dark service.  Telemetry may only cost
  // wall time, never change behavior (test Serve.TelemetryInvisible).

  /// Structured event sink (traps, replays, evictions, rejections, slow
  /// requests).  Null = no events.  Not owned.
  obs::EventLog* events = nullptr;
  /// Per-request span sink for the Chrome trace exporter.  Null = no
  /// spans.  Not owned.
  obs::SpanLog* spans = nullptr;
  /// Emit a `serve.slow` event for requests slower than this (ms);
  /// 0 disables the threshold.
  std::uint64_t slow_ms = 0;
  /// Run every machine run with RunConfig::profile and fold the engine's
  /// counters (pool hits, in-place writes, fused groups, ...) into the
  /// metrics registry.  Costs engine-side bookkeeping; off by default.
  bool profile_runs = false;
};

enum class Outcome {
  Ok,
  Trap,           ///< the paper's Omega (EvalError)
  FuelExhausted,  ///< exceeded the per-request instruction budget
  Rejected,       ///< admission control: queue full
  Error,          ///< internal MachineError (compiler bug surfaced)
};

const char* outcome_name(Outcome o);

struct Response {
  Outcome outcome = Outcome::Error;
  std::string error;  ///< diagnostic for every non-Ok outcome
  ValueRef value;     ///< Ok only
  /// T/W of the machine run that produced this response.  For a batched
  /// response this is the WHOLE batch run's cost, shared by all
  /// `batch_size` members (divide to amortize); a replayed or solo
  /// response carries its own run's cost.
  Cost cost;
  bool batched = false;       ///< served by the lifted batch program
  std::size_t batch_size = 1; ///< members of the run that served this
  std::uint64_t latency_ns = 0;  ///< submit-to-completion wall time

  bool ok() const { return outcome == Outcome::Ok; }
};

struct ServeStats {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;  ///< responses delivered, any outcome
  std::uint64_t ok = 0;
  std::uint64_t rejected = 0;
  std::uint64_t trapped = 0;
  std::uint64_t fuel_exhausted = 0;
  std::uint64_t errors = 0;

  std::uint64_t runs = 0;        ///< machine runs issued (incl. replays)
  std::uint64_t batch_runs = 0;  ///< runs of a lifted program with k >= 2
  std::uint64_t batched_requests = 0;  ///< requests answered by batch runs
  std::uint64_t replays = 0;  ///< solo re-runs after a failed batch
  /// Mean members per batch run (k >= 2 runs only); 0 when none ran.
  double batch_occupancy = 0.0;

  Cost total_cost;                 ///< T/W summed over machine runs
  std::uint64_t exec_wall_ns = 0;  ///< wall time inside bvram::run
  std::uint64_t uptime_ns = 0;     ///< since Service construction

  /// Latency distribution over ALL completions, derived from the
  /// registry's log2-bucket histogram: each quantile is nearest-rank
  /// with linear interpolation inside the landing bucket, so it is
  /// within its bucket's bounds (<= 2x relative error) rather than an
  /// exact order statistic.  See docs/serve.md for the tolerance note.
  std::uint64_t latency_p50_ns = 0;
  std::uint64_t latency_p95_ns = 0;
  std::uint64_t latency_p99_ns = 0;
  std::uint64_t latency_mean_ns = 0;

  CacheStats cache;
  ArenaPoolStats arena;
};

/// The query service.  Construction starts the worker threads; the
/// destructor drains nothing -- it fails pending requests with Rejected
/// and joins.  Call drain() first for a graceful shutdown.
class Service {
 public:
  explicit Service(ServeConfig cfg = {});
  ~Service();
  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  const ServeConfig& config() const { return cfg_; }
  ProgramCache& cache() { return cache_; }

  /// Frontend + cache in one step: parse/resolve `source_text`, pick
  /// entry `entry` (empty = main), and compile through the cache under
  /// this service's fuse flag.  Throws FrontError / CompileError.
  std::shared_ptr<const CompiledProgram> load(
      const std::string& name, const std::string& source_text,
      const std::string& entry = "",
      opt::OptLevel opt = opt::OptLevel::O2,
      const opt::WhileSchedule& sched = {});

  /// Enqueue one request.  The future resolves when a worker has
  /// executed it (or immediately with Rejected when the queue is full).
  std::future<Response> submit(
      std::shared_ptr<const CompiledProgram> program, ValueRef arg);

  /// submit + wait.
  Response call(const std::shared_ptr<const CompiledProgram>& program,
                const ValueRef& arg);

  /// Block until every request submitted so far has completed.
  void drain();

  /// Stop workers from dequeuing (submits still enqueue, admission
  /// still applies).  Lets tests and benchmarks build a queue of known
  /// shape so resume() forms deterministic batches.
  void pause();
  void resume();

  ServeStats stats() const;
  /// The stats snapshot as a JSON object (schema nscc-serve-stats/v2;
  /// v1's exact ring-buffer percentiles became histogram quantiles).
  std::string stats_json() const;

  /// The metrics registry, with the derived gauges (queue depth, cache,
  /// arena, parallel pool, uptime) refreshed to the current instant.
  /// Write with registry.write_prometheus() / write_json().
  obs::Registry& metrics();

 private:
  struct Pending {
    std::uint64_t id = 0;  ///< request id (1-based, service-unique)
    std::shared_ptr<const CompiledProgram> program;
    ValueRef arg;
    std::promise<Response> promise;
    std::chrono::steady_clock::time_point enqueued;
    std::uint64_t span_t0 = 0;  ///< SpanLog timestamp at submit (spans on)
  };

  /// Hot-path metric handles, registered once at construction; every
  /// update through these is a relaxed atomic op, no registry lock.
  struct Hot {
    obs::Counter* submitted = nullptr;
    obs::Counter* completed = nullptr;
    obs::Counter* ok = nullptr;
    obs::Counter* rejected = nullptr;
    obs::Counter* trapped = nullptr;
    obs::Counter* fuel_exhausted = nullptr;
    obs::Counter* errors = nullptr;
    obs::Counter* runs = nullptr;
    obs::Counter* batch_runs = nullptr;
    obs::Counter* batched_requests = nullptr;
    obs::Counter* replays = nullptr;
    obs::Counter* cost_time = nullptr;
    obs::Counter* cost_work = nullptr;
    obs::Counter* exec_wall_ns = nullptr;
    obs::Histogram* latency_ns = nullptr;
    obs::Histogram* batch_size = nullptr;
    obs::Gauge* queue_depth = nullptr;
    obs::Gauge* in_flight = nullptr;
    // Engine-profile accumulators (only advance under cfg.profile_runs).
    obs::Counter* eng_pool_hits = nullptr;
    obs::Counter* eng_pool_misses = nullptr;
    obs::Counter* eng_inplace_hits = nullptr;
    obs::Counter* eng_move_swaps = nullptr;
    obs::Counter* eng_par_kernels = nullptr;
    obs::Counter* eng_par_chunks = nullptr;
    obs::Counter* eng_fused_groups = nullptr;
    obs::Counter* eng_fused_elided = nullptr;
  };

  void register_metrics();
  void worker_loop(std::size_t worker);
  /// Claim the next batch: front of the queue plus up to max_batch-1
  /// later entries sharing its program.  Empty when paused / stopping.
  std::vector<Pending> next_batch();
  void execute(std::vector<Pending> batch, bvram::BufferPool* arena,
               std::size_t worker);
  Response run_one(const CompiledProgram& prog, const ValueRef& arg,
                   bvram::BufferPool* arena, std::size_t worker,
                   std::uint64_t request_id, std::uint64_t run_id,
                   const char* phase);
  void finish(Pending& p, Response r);
  void note_engine(const bvram::EngineProfile& e);

  ServeConfig cfg_;
  ProgramCache cache_;
  ArenaPool arenas_;
  std::chrono::steady_clock::time_point started_;

  obs::Registry registry_;
  Hot m_;
  std::atomic<std::uint64_t> next_request_id_{1};
  std::atomic<std::uint64_t> next_run_id_{1};

  mutable std::mutex mu_;
  std::condition_variable cv_;       ///< workers: queue non-empty / stop
  std::condition_variable idle_cv_;  ///< drain(): all work finished
  std::deque<Pending> queue_;
  std::size_t in_flight_ = 0;  ///< requests claimed but not yet finished
  bool paused_ = false;
  bool stopping_ = false;

  std::vector<std::thread> threads_;
};

}  // namespace nsc::serve
