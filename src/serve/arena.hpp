// Shared register-file arenas for the serve worker pool.
//
// bvram::BufferPool recycles register buffers across instructions inside
// one run but is deliberately single-threaded (bvram/pool.hpp).  A
// service runs many requests concurrently, and malloc on the request
// path is exactly the steady-state cost the engine's pooling removed
// within a run.  ArenaPool extends the same idea across runs: it keeps a
// stack of warm BufferPools and leases each to exactly one in-flight
// request at a time.  A request acquires a lease, passes the arena via
// RunConfig::arena (the engine then draws every register -- inputs
// included -- from it and parks the whole register file back on exit),
// and the lease's destructor returns the still-warm arena to the stack.
//
// After a few requests of a given shape the arenas hold enough spare
// capacity that steady-state execution performs zero allocations; the
// test Arena.SteadyStateZeroAllocation pins this via the engine's
// pool_misses counter.  The arena is an allocator swap only -- outputs,
// traps, T, W, traces, and profiles are bit-identical with or without
// one (cost-model invisibility, tests Serve.*BitIdentical*).
//
// Thread safety: ArenaPool's own members are mutex-protected and may be
// called from any thread; the leased BufferPool itself must only be
// touched by the lease holder, which the RAII handle makes structural.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "bvram/pool.hpp"

namespace nsc::serve {

class ArenaPool;

/// Exclusive RAII lease on one arena.  Move-only; returns the arena to
/// the pool on destruction.  A default-constructed (or moved-from) lease
/// is empty and get() is nullptr.
class ArenaLease {
 public:
  ArenaLease() = default;
  ArenaLease(ArenaLease&& o) noexcept
      : pool_(o.pool_), arena_(std::move(o.arena_)) {
    o.pool_ = nullptr;
  }
  ArenaLease& operator=(ArenaLease&& o) noexcept {
    if (this != &o) {
      release();
      pool_ = o.pool_;
      arena_ = std::move(o.arena_);
      o.pool_ = nullptr;
    }
    return *this;
  }
  ArenaLease(const ArenaLease&) = delete;
  ArenaLease& operator=(const ArenaLease&) = delete;
  ~ArenaLease() { release(); }

  bvram::BufferPool* get() const { return arena_.get(); }
  bvram::BufferPool* operator->() const { return arena_.get(); }
  explicit operator bool() const { return arena_ != nullptr; }

 private:
  friend class ArenaPool;
  ArenaLease(ArenaPool* pool, std::unique_ptr<bvram::BufferPool> arena)
      : pool_(pool), arena_(std::move(arena)) {}
  void release();

  ArenaPool* pool_ = nullptr;
  std::unique_ptr<bvram::BufferPool> arena_;
};

struct ArenaPoolStats {
  std::uint64_t leases = 0;   ///< total acquire() calls
  std::uint64_t created = 0;  ///< leases that had to build a cold arena
  std::size_t idle = 0;       ///< warm arenas currently parked
  std::size_t idle_bytes = 0; ///< spare capacity held by parked arenas
};

/// Thread-safe stack of warm BufferPools.  LIFO on purpose: the most
/// recently returned arena is the most likely to be cache- and
/// capacity-warm for the next request of the same shape.
class ArenaPool {
 public:
  ArenaPool() = default;
  ArenaPool(const ArenaPool&) = delete;
  ArenaPool& operator=(const ArenaPool&) = delete;

  /// Lease an arena (warm if one is parked, freshly built otherwise).
  ArenaLease acquire();

  /// Drop every arena parked right now (and their spare buffers).
  /// Outstanding leases are unaffected and still park on release; reset
  /// only empties what is idle at the moment of the call.
  void reset();

  ArenaPoolStats stats() const;

 private:
  friend class ArenaLease;
  void park(std::unique_ptr<bvram::BufferPool> arena);

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<bvram::BufferPool>> idle_;
  std::uint64_t leases_ = 0;
  std::uint64_t created_ = 0;
};

}  // namespace nsc::serve
