#include "serve/cache.hpp"

#include <chrono>
#include <stdexcept>
#include <utility>

#include "nsc/build.hpp"
#include "sa/compile.hpp"

namespace nsc::serve {

std::uint64_t hash_source(const std::string& source_text,
                          const std::string& entry_name) {
  // FNV-1a 64; the 0x1f separator keeps ("ab","c") and ("a","bc") apart.
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](const std::string& s) {
    for (const char c : s) {
      h ^= static_cast<unsigned char>(c);
      h *= 1099511628211ull;
    }
    h ^= 0x1f;
    h *= 1099511628211ull;
  };
  mix(source_text);
  mix(entry_name);
  return h;
}

std::size_t CacheKeyHash::operator()(const CacheKey& k) const {
  std::uint64_t h = k.source_hash;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  };
  mix(static_cast<std::uint64_t>(k.opt));
  mix(static_cast<std::uint64_t>(k.sched));
  mix(k.eps_num);
  mix(k.eps_den);
  mix(k.fuse ? 1u : 0u);
  return static_cast<std::size_t>(h);
}

std::shared_ptr<const CompiledProgram> compile_program(
    const std::string& name, const lang::FuncRef& fn, const TypeRef& dom,
    const TypeRef& cod, const CacheKey& key) {
  opt::WhileSchedule sched;
  sched.kind = key.sched;
  sched.eps = {key.eps_num, key.eps_den};

  auto out = std::make_shared<CompiledProgram>();
  out->key = key;
  out->name = name;
  out->dom = dom;
  out->cod = cod;

  const auto t0 = std::chrono::steady_clock::now();
  out->unit = sa::compile_nsc(fn, key.opt, sched);
  // The lifted program runs one segment-descriptor level above the unit
  // program: its input is the concatenation of the queued requests'
  // encodings, exactly sa/layout.hpp's SEQREP of a [dom] value.
  out->batch = sa::compile_nsc(lang::map_f(fn), key.opt, sched);
  const auto t1 = std::chrono::steady_clock::now();
  out->compile_wall_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
  return out;
}

ProgramCache::ProgramCache(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {
  stats_.capacity = capacity_;
}

std::shared_ptr<const CompiledProgram> ProgramCache::get_or_compile(
    const CacheKey& key, const CompileFn& compile) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(key);
  if (it != map_.end()) {
    ++stats_.hits;
    lru_.splice(lru_.begin(), lru_, it->second);  // bump to MRU
    return it->second->second;
  }
  ++stats_.misses;
  const auto t0 = std::chrono::steady_clock::now();
  std::shared_ptr<const CompiledProgram> prog = compile();
  const auto t1 = std::chrono::steady_clock::now();
  stats_.compile_wall_ns += static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
  if (prog == nullptr) throw std::logic_error("serve: compile returned null");
  while (lru_.size() >= capacity_) {
    map_.erase(lru_.back().first);
    lru_.pop_back();
    ++stats_.evictions;
  }
  lru_.emplace_front(key, prog);
  map_[key] = lru_.begin();
  stats_.size = lru_.size();
  return prog;
}

std::shared_ptr<const CompiledProgram> ProgramCache::peek(
    const CacheKey& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(key);
  return it == map_.end() ? nullptr : it->second->second;
}

void ProgramCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  map_.clear();
  stats_.size = 0;
}

CacheStats ProgramCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  CacheStats s = stats_;
  s.size = lru_.size();
  s.capacity = capacity_;
  return s;
}

}  // namespace nsc::serve
