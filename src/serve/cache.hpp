// Compiled-program cache for the `nscc serve` query service.
//
// `nscc run` pays the whole frontend + flattening + optimizer pipeline on
// every invocation; for the small requests a service handles, that
// compile dwarfs the execution the engine work made fast.  The cache
// turns compiled bvram::Programs into immutable, shareable artifacts:
// keyed on (source hash, OptLevel, WhileSchedule, fuse) -- everything
// that affects the emitted code -- and handed out as
// shared_ptr<const CompiledProgram>, so a hit costs one hash lookup and
// the artifact stays alive for exactly as long as some request still
// executes against it, even across an LRU eviction.
//
// Each artifact carries TWO programs compiled from the same source
// function f : dom -> cod:
//
//   unit    f itself -- the program a lone request runs; and
//   batch   map f : [dom] -> [cod] -- the lifted program (Lemma 7.2).
//           In the flattening representation a sequence of requests is a
//           segment descriptor over the concatenated per-request
//           registers (sa/layout.hpp SEQREP), so executing one batch of
//           k queued requests is the paper's own trick applied to
//           throughput: append the inputs, run once, split the outputs.
//
// Thread safety: every public ProgramCache member takes an internal
// mutex; a miss compiles while holding it, which serializes compiles of
// the same key (a program is never compiled twice concurrently) at the
// price of blocking other lookups for the compile's duration --
// acceptable because hits are the steady state by design.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "bvram/machine.hpp"
#include "nsc/ast.hpp"
#include "object/type.hpp"
#include "opt/opt.hpp"

namespace nsc::serve {

/// Everything that determines the compiled artifact.  Two sources that
/// hash equal share an entry; OptLevel / schedule / fusion variants of
/// one source are distinct entries (a serve process can hold several).
struct CacheKey {
  std::uint64_t source_hash = 0;  ///< hash_source() of text + entry name
  opt::OptLevel opt = opt::OptLevel::O2;
  opt::WhileScheduleKind sched = opt::WhileScheduleKind::Naive;
  std::uint64_t eps_num = 1, eps_den = 2;  ///< staged threshold exponent
  bool fuse = true;                        ///< RunConfig::fuse the service uses

  bool operator==(const CacheKey& o) const {
    return source_hash == o.source_hash && opt == o.opt && sched == o.sched &&
           eps_num == o.eps_num && eps_den == o.eps_den && fuse == o.fuse;
  }
};

struct CacheKeyHash {
  std::size_t operator()(const CacheKey& k) const;
};

/// FNV-1a 64 over the program source text and the entry-point name: the
/// cache key's identity component.  Whitespace-sensitive on purpose --
/// hashing a canonical form would mean re-running the formatter per
/// request, which is exactly the work the cache exists to avoid.
std::uint64_t hash_source(const std::string& source_text,
                          const std::string& entry_name);

/// An immutable compiled artifact.  Everything here is set once at
/// compile time and only ever read afterwards; bvram::run takes the
/// programs by const reference and never mutates them (the concurrency
/// audit gated by Serve.ConcurrentSharedProgram), so one instance may be
/// executed by any number of threads at once.
struct CompiledProgram {
  CacheKey key;
  std::string name;  ///< diagnostic label (file/entry), not part of the key
  TypeRef dom, cod;  ///< of the unit program; batch is [dom] -> [cod]
  bvram::Program unit;
  bvram::Program batch;
  std::uint64_t compile_wall_ns = 0;  ///< both compiles, end to end
};

/// Compile a closed core function into a CompiledProgram (unit + lifted
/// batch), timing the whole pipeline.  The cache calls this on a miss;
/// bench_serve calls it directly to price the cold path.
std::shared_ptr<const CompiledProgram> compile_program(
    const std::string& name, const lang::FuncRef& fn, const TypeRef& dom,
    const TypeRef& cod, const CacheKey& key);

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;    ///< == number of compiles
  std::uint64_t evictions = 0;
  std::uint64_t compile_wall_ns = 0;  ///< total wall time spent compiling
  std::size_t size = 0;
  std::size_t capacity = 0;
};

/// LRU cache of CompiledPrograms.  Capacity is in entries; an evicted
/// artifact dies only when its last in-flight request drops the ref.
class ProgramCache {
 public:
  explicit ProgramCache(std::size_t capacity);

  using CompileFn = std::function<std::shared_ptr<const CompiledProgram>()>;

  /// The cached artifact for `key`, compiling (and inserting) via
  /// `compile` on a miss.  Never returns nullptr (a throwing compile
  /// propagates and caches nothing).
  std::shared_ptr<const CompiledProgram> get_or_compile(
      const CacheKey& key, const CompileFn& compile);

  /// The cached artifact, or nullptr without compiling (stats untouched).
  std::shared_ptr<const CompiledProgram> peek(const CacheKey& key) const;

  /// Drop every entry (in-flight refs keep their artifacts alive).
  void clear();

  CacheStats stats() const;

 private:
  mutable std::mutex mu_;
  std::size_t capacity_;
  /// MRU-first list; the map points into it.
  std::list<std::pair<CacheKey, std::shared_ptr<const CompiledProgram>>> lru_;
  std::unordered_map<CacheKey, decltype(lru_)::iterator, CacheKeyHash> map_;
  CacheStats stats_;
};

}  // namespace nsc::serve
