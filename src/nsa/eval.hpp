// Evaluator for NSA with the same work/time accounting style as NSC
// (Proposition C.1: NSC and NSA have the same expressive power with the
// same T and W up to constants).  Each combinator application charges one
// time step and the size of the values flowing through it; map is a
// parallel max; while charges its state per iteration and never re-charges
// the final result.
#pragma once

#include "nsa/ast.hpp"
#include "object/value.hpp"
#include "support/cost.hpp"

namespace nsc::nsa {

using nsc::Cost;
using nsc::Value;
using nsc::ValueRef;

struct Evaluated {
  ValueRef value;
  Cost cost;
};

struct EvalConfig {
  std::uint64_t max_steps = std::uint64_t{1} << 36;
};

/// Apply an NSA function to a value.
Evaluated eval(const NsaRef& f, const ValueRef& arg, const EvalConfig& cfg = {});

}  // namespace nsc::nsa
