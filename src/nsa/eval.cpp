#include "nsa/eval.hpp"

#include <algorithm>

#include "support/checked.hpp"
#include "support/error.hpp"

namespace nsc::nsa {

namespace {

class Interp {
 public:
  explicit Interp(const EvalConfig& cfg) : cfg_(cfg) {}

  Evaluated apply(const NsaRef& f, const ValueRef& x) {
    if (++steps_ > cfg_.max_steps) {
      throw FuelExhausted("NSA evaluation exceeded " +
                          std::to_string(cfg_.max_steps) + " steps");
    }
    switch (f->kind()) {
      case NsaKind::Id:
        return unary(x);
      case NsaKind::Compose: {
        Evaluated inner = apply(f->f(), x);
        Evaluated outer = apply(f->g(), inner.value);
        Cost c{1, outer.value->size()};
        c += inner.cost;
        c += outer.cost;
        return {std::move(outer.value), c};
      }
      case NsaKind::Bang:
        return unary(Value::unit());
      case NsaKind::PairF: {
        Evaluated a = apply(f->f(), x);
        Evaluated b = apply(f->g(), x);
        ValueRef v = Value::pair(a.value, b.value);
        Cost c{1, v->size()};
        c += a.cost;
        c += b.cost;
        return {std::move(v), c};
      }
      case NsaKind::Pi1:
        return unary(x->first());
      case NsaKind::Pi2:
        return unary(x->second());
      case NsaKind::In1F:
        return unary(Value::in1(x));
      case NsaKind::In2F:
        return unary(Value::in2(x));
      case NsaKind::SumCase: {
        const bool left = x->is(ValueKind::In1);
        if (!left && !x->is(ValueKind::In2)) {
          throw EvalError("NSA sum: not an injection: " + x->show());
        }
        Evaluated r = apply(left ? f->f() : f->g(), x->injected());
        Cost c{1, r.value->size()};
        c += r.cost;
        return {std::move(r.value), c};
      }
      case NsaKind::Dist: {
        const ValueRef& u = x->first();
        const ValueRef& s = x->second();
        ValueRef out;
        if (u->is(ValueKind::In1)) {
          out = Value::in1(Value::pair(u->injected(), s));
        } else if (u->is(ValueKind::In2)) {
          out = Value::in2(Value::pair(u->injected(), s));
        } else {
          throw EvalError("NSA delta: not an injection: " + u->show());
        }
        return unary(std::move(out));
      }
      case NsaKind::Omega:
        throw EvalError("NSA omega applied");
      case NsaKind::ConstNat:
        return unary(Value::nat(f->imm()));
      case NsaKind::Arith:
        return unary(Value::nat(lang::arith_apply(
            f->aop(), x->first()->as_nat(), x->second()->as_nat())));
      case NsaKind::EqF:
        return unary(Value::boolean(x->first()->as_nat() ==
                                    x->second()->as_nat()));
      case NsaKind::EmptySeq:
        return unary(Value::empty_seq());
      case NsaKind::SingletonF:
        return unary(Value::seq({x}));
      case NsaKind::AppendF: {
        std::vector<ValueRef> out = x->first()->elems();
        const auto& more = x->second()->elems();
        out.insert(out.end(), more.begin(), more.end());
        return unary(Value::seq(std::move(out)), x->size());
      }
      case NsaKind::FlattenF: {
        std::vector<ValueRef> out;
        for (const auto& inner : x->elems()) {
          const auto& es = inner->elems();
          out.insert(out.end(), es.begin(), es.end());
        }
        return unary(Value::seq(std::move(out)), x->size());
      }
      case NsaKind::LengthF:
        return unary(Value::nat(x->length()), x->size());
      case NsaKind::GetF: {
        if (x->length() != 1) {
          throw EvalError("NSA get of non-singleton " + x->show());
        }
        return unary(x->elems()[0], x->size());
      }
      case NsaKind::MapF: {
        std::vector<ValueRef> out;
        out.reserve(x->length());
        Cost c{1, 0};
        std::uint64_t tmax = 0;
        std::uint64_t out_size = 1;
        for (const auto& e : x->elems()) {
          Evaluated r = apply(f->f(), e);
          tmax = std::max(tmax, r.cost.time);
          c.work = sat_add(c.work, r.cost.work);
          out_size = sat_add(out_size, r.value->size());
          out.push_back(std::move(r.value));
        }
        c.time = sat_add(c.time, tmax);
        c.work = sat_add(c.work, sat_add(x->size(), out_size));
        return {Value::seq(std::move(out)), c};
      }
      case NsaKind::ZipF: {
        const auto& xs = x->first()->elems();
        const auto& ys = x->second()->elems();
        if (xs.size() != ys.size()) {
          throw EvalError("NSA zip: length mismatch");
        }
        std::vector<ValueRef> out;
        out.reserve(xs.size());
        for (std::size_t i = 0; i < xs.size(); ++i) {
          out.push_back(Value::pair(xs[i], ys[i]));
        }
        return unary(Value::seq(std::move(out)), x->size());
      }
      case NsaKind::EnumerateF: {
        std::vector<ValueRef> out;
        out.reserve(x->length());
        for (std::size_t i = 0; i < x->length(); ++i) {
          out.push_back(Value::nat(i));
        }
        return unary(Value::seq(std::move(out)), x->size());
      }
      case NsaKind::SplitF: {
        const auto& xs = x->first()->elems();
        std::vector<ValueRef> groups;
        std::size_t at = 0;
        for (const auto& sz : x->second()->elems()) {
          const std::uint64_t n = sz->as_nat();
          if (at + n > xs.size()) {
            throw EvalError("NSA split: sizes exceed data");
          }
          groups.push_back(Value::seq(
              std::vector<ValueRef>(xs.begin() + at, xs.begin() + at + n)));
          at += n;
        }
        if (at != xs.size()) throw EvalError("NSA split: sizes don't cover");
        return unary(Value::seq(std::move(groups)), x->size());
      }
      case NsaKind::P2: {
        const ValueRef& a = x->first();
        std::vector<ValueRef> out;
        out.reserve(x->second()->length());
        for (const auto& e : x->second()->elems()) {
          out.push_back(Value::pair(a, e));
        }
        return unary(Value::seq(std::move(out)), x->size());
      }
      case NsaKind::WhileF: {
        ValueRef cur = x;
        Cost total{0, 0};
        for (;;) {
          if (++steps_ > cfg_.max_steps) {
            throw FuelExhausted("NSA while exceeded step budget");
          }
          Evaluated p = apply(f->f(), cur);
          if (!p.value->as_bool()) {
            total.time = sat_add(total.time, sat_add(1, p.cost.time));
            total.work = sat_add(total.work, sat_add(p.cost.work, cur->size()));
            return {std::move(cur), total};
          }
          Evaluated step = apply(f->g(), cur);
          total.time = sat_add(
              total.time, sat_add(1, sat_add(p.cost.time, step.cost.time)));
          total.work = sat_add(
              total.work, sat_add(sat_add(p.cost.work, step.cost.work),
                                  sat_add(cur->size(), step.value->size())));
          cur = std::move(step.value);
        }
      }
    }
    throw EvalError("NSA: unknown combinator");
  }

 private:
  /// Leaf combinator: T = 1, W = size of result (+ optionally input).
  static Evaluated unary(ValueRef v, std::uint64_t extra_in = 0) {
    Cost c{1, sat_add(v->size(), extra_in)};
    return {std::move(v), c};
  }

  const EvalConfig& cfg_;
  std::uint64_t steps_ = 0;
};

}  // namespace

Evaluated eval(const NsaRef& f, const ValueRef& arg, const EvalConfig& cfg) {
  Interp interp(cfg);
  return interp.apply(f, arg);
}

}  // namespace nsc::nsa
