#include "nsa/from_nsc.hpp"

#include <set>

#include "nsc/freevars.hpp"
#include "nsc/typecheck.hpp"
#include "support/error.hpp"

namespace nsc::nsa {

namespace {

using lang::FuncKind;
using lang::FuncRef;
using lang::TermKind;
using lang::TermRef;

/// Type environment view of the ordered context.
lang::TypeEnv type_env(const Context& ctx) {
  lang::TypeEnv env;
  // Innermost bindings shadow outer ones: iterate outermost-first.
  for (auto it = ctx.rbegin(); it != ctx.rend(); ++it) {
    env[it->first] = it->second;
  }
  return env;
}

/// Trim a context to the variables in `used`, returning the restricted
/// context and the restriction morphism <Gamma> -> <Gamma'>.  Inner
/// bindings shadow outer ones, so only the first (innermost) occurrence of
/// each name survives.
struct Trimmed {
  Context ctx;
  NsaRef restrict_fn;  // <Gamma> -> <Gamma'>
};

NsaRef project_var(const Context& ctx, std::size_t i);

Trimmed trim_context(const Context& ctx, const std::set<std::string>& used);

/// Projection chain extracting variable #i (0 = innermost) from <Gamma>.
NsaRef project_var(const Context& ctx, std::size_t i) {
  // <Gamma> = s0 x (s1 x (... x unit)); var i = pi1 . pi2^i.
  std::vector<TypeRef> tails(ctx.size() + 1);
  tails[ctx.size()] = Type::unit();
  for (std::size_t k = ctx.size(); k-- > 0;) {
    tails[k] = Type::prod(ctx[k].second, tails[k + 1]);
  }
  NsaRef acc = id(tails[0]);
  for (std::size_t k = 0; k < i; ++k) {
    acc = compose(pi2(ctx[k].second, tails[k + 1]), acc);
  }
  return compose(pi1(ctx[i].second, tails[i + 1]), acc);
}

Trimmed trim_context(const Context& ctx, const std::set<std::string>& used) {
  Trimmed out;
  std::set<std::string> seen;
  std::vector<std::size_t> keep;
  for (std::size_t i = 0; i < ctx.size(); ++i) {
    if (used.count(ctx[i].first) && !seen.count(ctx[i].first)) {
      keep.push_back(i);
      seen.insert(ctx[i].first);
      out.ctx.push_back(ctx[i]);
    }
  }
  // <Gamma'> = v_{k0} x (v_{k1} x (... x unit)), built by nested pairing of
  // projections out of <Gamma>.
  const TypeRef gamma = context_type(ctx);
  NsaRef acc = bang(gamma);  // unit tail
  for (std::size_t k = keep.size(); k-- > 0;) {
    acc = pairf(project_var(ctx, keep[k]), acc);
  }
  out.restrict_fn = acc;
  return out;
}

}  // namespace

TypeRef context_type(const Context& ctx) {
  TypeRef t = Type::unit();
  for (std::size_t k = ctx.size(); k-- > 0;) {
    t = Type::prod(ctx[k].second, t);
  }
  return t;
}

ValueRef encode_context(const std::vector<ValueRef>& values) {
  ValueRef v = Value::unit();
  for (std::size_t k = values.size(); k-- > 0;) {
    v = Value::pair(values[k], v);
  }
  return v;
}

namespace {

// The recursive translation proper.  The public from_nsc/from_nsc_func
// wrappers stamp each produced combinator root with the surface location
// of the NSC node it translates (recursive calls below go through the
// wrappers, so every subterm's root is stamped too); the interior nodes of
// a single term's translation stay unstamped and inherit the enclosing
// site downstream.
NsaRef translate_term(const TermRef& m, const Context& ctx);
NsaRef translate_func(const FuncRef& f, const Context& ctx);

NsaRef translate_term(const TermRef& m, const Context& ctx) {
  const TypeRef gamma = context_type(ctx);
  const lang::TypeEnv env = type_env(ctx);
  auto type_of = [&](const TermRef& t) { return lang::check_term(t, env); };

  switch (m->kind()) {
    case TermKind::Var: {
      for (std::size_t i = 0; i < ctx.size(); ++i) {
        if (ctx[i].first == m->var_name()) return project_var(ctx, i);
      }
      throw TypeError("from_nsc: unbound variable " + m->var_name());
    }
    case TermKind::Omega:
      return omega(gamma, m->annotation());
    case TermKind::NatConst:
      return compose(const_nat(m->nat_value()), bang(gamma));
    case TermKind::Arith:
      return compose(arith(m->op()),
                     pairf(from_nsc(m->child0(), ctx),
                           from_nsc(m->child1(), ctx)));
    case TermKind::Eq:
      return compose(eqf(), pairf(from_nsc(m->child0(), ctx),
                                  from_nsc(m->child1(), ctx)));
    case TermKind::UnitVal:
      return bang(gamma);
    case TermKind::MkPair:
      return pairf(from_nsc(m->child0(), ctx), from_nsc(m->child1(), ctx));
    case TermKind::Proj1: {
      TypeRef t = type_of(m->child0());
      return compose(pi1(t->left(), t->right()), from_nsc(m->child0(), ctx));
    }
    case TermKind::Proj2: {
      TypeRef t = type_of(m->child0());
      return compose(pi2(t->left(), t->right()), from_nsc(m->child0(), ctx));
    }
    case TermKind::Inj1: {
      TypeRef t = type_of(m->child0());
      return compose(in1f(t, m->annotation()), from_nsc(m->child0(), ctx));
    }
    case TermKind::Inj2: {
      TypeRef t = type_of(m->child0());
      return compose(in2f(m->annotation(), t), from_nsc(m->child0(), ctx));
    }
    case TermKind::Case: {
      // (f_N + f_P) . delta . <f_M, id>
      TypeRef st = type_of(m->child0());
      Context ctx1 = ctx;
      ctx1.insert(ctx1.begin(), {m->binder1(), st->left()});
      Context ctx2 = ctx;
      ctx2.insert(ctx2.begin(), {m->binder2(), st->right()});
      NsaRef branch1 = from_nsc(m->branch1(), ctx1);  // t1 x Gamma -> t
      NsaRef branch2 = from_nsc(m->branch2(), ctx2);  // t2 x Gamma -> t
      NsaRef scrut = from_nsc(m->child0(), ctx);      // Gamma -> t1 + t2
      return compose(
          sum_case(branch1, branch2),
          compose(dist(st->left(), st->right(), gamma),
                  pairf(scrut, id(gamma))));
    }
    case TermKind::Apply: {
      // f_F . <f_M, id>
      NsaRef arg = from_nsc(m->child0(), ctx);
      NsaRef fn = from_nsc_func(m->fn(), ctx);
      return compose(fn, pairf(arg, id(gamma)));
    }
    case TermKind::Empty:
      return compose(empty_seq(m->annotation()), bang(gamma));
    case TermKind::Singleton: {
      TypeRef t = type_of(m->child0());
      return compose(singletonf(t), from_nsc(m->child0(), ctx));
    }
    case TermKind::Append: {
      TypeRef t = type_of(m->child0());
      return compose(appendf(t->elem()),
                     pairf(from_nsc(m->child0(), ctx),
                           from_nsc(m->child1(), ctx)));
    }
    case TermKind::Flatten: {
      TypeRef t = type_of(m->child0());
      return compose(flattenf(t->elem()->elem()),
                     from_nsc(m->child0(), ctx));
    }
    case TermKind::Length: {
      TypeRef t = type_of(m->child0());
      return compose(lengthf(t->elem()), from_nsc(m->child0(), ctx));
    }
    case TermKind::Get: {
      TypeRef t = type_of(m->child0());
      return compose(getf(t->elem()), from_nsc(m->child0(), ctx));
    }
    case TermKind::Zip: {
      TypeRef a = type_of(m->child0());
      TypeRef b = type_of(m->child1());
      return compose(zipf(a->elem(), b->elem()),
                     pairf(from_nsc(m->child0(), ctx),
                           from_nsc(m->child1(), ctx)));
    }
    case TermKind::Enumerate: {
      TypeRef t = type_of(m->child0());
      return compose(enumeratef(t->elem()), from_nsc(m->child0(), ctx));
    }
    case TermKind::Split: {
      TypeRef t = type_of(m->child0());
      return compose(splitf(t->elem()),
                     pairf(from_nsc(m->child0(), ctx),
                           from_nsc(m->child1(), ctx)));
    }
  }
  throw TypeError("from_nsc: unknown term kind");
}

NsaRef translate_func(const FuncRef& f, const Context& ctx) {
  const TypeRef gamma = context_type(ctx);
  switch (f->kind()) {
    case FuncKind::Lambda: {
      Context inner = ctx;
      inner.insert(inner.begin(), {f->param(), f->param_type()});
      return from_nsc(f->body(), inner);  // s x Gamma -> t
    }
    case FuncKind::Map: {
      // Trim the context to the body's free variables before broadcasting:
      // p2 replicates the context once per element, so only what the body
      // actually reads may ride along (this is what keeps the translated
      // work within a constant of NSC's per-use variable charging).
      Trimmed tr = trim_context(ctx, lang::free_vars(f->inner()));
      const TypeRef gamma2 = context_type(tr.ctx);
      NsaRef inner = from_nsc_func(f->inner(), tr.ctx);  // s x Gamma' -> t
      TypeRef s = inner->dom()->left();
      NsaRef body = compose(inner, swapf(gamma2, s));    // Gamma' x s -> t
      // [s] x Gamma --<pi1, restrict.pi2>--> [s] x Gamma' --swap-->
      // Gamma' x [s] --p2--> [Gamma' x s] --map--> [t]
      NsaRef narrow = pairf(pi1(Type::seq(s), gamma),
                            compose(tr.restrict_fn, pi2(Type::seq(s), gamma)));
      return compose(
          mapf(body),
          compose(p2f(gamma2, s),
                  compose(swapf(Type::seq(s), gamma2), narrow)));
    }
    case FuncKind::While: {
      // Trim the context before threading it through the loop state: the
      // state is charged at every iteration (Definition 3.1).
      std::set<std::string> used = lang::free_vars(f->pred());
      std::set<std::string> used2 = lang::free_vars(f->inner());
      used.insert(used2.begin(), used2.end());
      Trimmed tr = trim_context(ctx, used);
      const TypeRef gamma2 = context_type(tr.ctx);
      NsaRef pred = from_nsc_func(f->pred(), tr.ctx);    // t x Gamma' -> B
      NsaRef body = from_nsc_func(f->inner(), tr.ctx);   // t x Gamma' -> t
      TypeRef t = body->dom()->left();
      NsaRef step = pairf(body, pi2(t, gamma2));
      NsaRef narrow =
          pairf(pi1(t, gamma), compose(tr.restrict_fn, pi2(t, gamma)));
      return compose(pi1(t, gamma2), compose(whilef(pred, step), narrow));
    }
  }
  throw TypeError("from_nsc_func: unknown function kind");
}

}  // namespace

NsaRef from_nsc(const TermRef& m, const Context& ctx) {
  NsaRef r = translate_term(m, ctx);
  if (m->src_line() != 0) r->set_src(m->src_line(), m->src_col());
  return r;
}

NsaRef from_nsc_func(const FuncRef& f, const Context& ctx) {
  NsaRef r = translate_func(f, ctx);
  if (f->src_line() != 0) r->set_src(f->src_line(), f->src_col());
  return r;
}

NsaRef from_closed_func(const FuncRef& f) {
  // f_F : s x unit -> t; pre-compose with <id, !> to get s -> t.
  NsaRef open = from_nsc_func(f, {});
  TypeRef s = open->dom()->left();
  return compose(open, pairf(id(s), bang(s)));
}

}  // namespace nsc::nsa
