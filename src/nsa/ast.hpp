// The Nested Sequence Algebra NSA (paper appendix C): a variable-free
// combinator form of NSC.  NSA contains only functions f : s -> t; terms
// with free variables x1:s1,...,xn:sn become functions out of the encoded
// context s1 x (s2 x (... x unit)).  The broadcast p2 "replaces the free
// variables present in NSC" (appendix C); we additionally include the
// distributivity delta : (s1+s2) x s -> s1 x s + s2 x s, which appendix D
// lists for SA's scalar fragment and which the case-translation needs at
// every type (the appendix-C table is abbreviated in the extended
// abstract).
//
// Every node carries its domain and codomain, so NSA programs are typed by
// construction.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "nsc/ast.hpp"
#include "object/type.hpp"

namespace nsc::nsa {

using lang::ArithOp;

enum class NsaKind {
  // function structure
  Id,        // id : t -> t
  Compose,   // g . f
  Bang,      // ! : t -> unit
  PairF,     // <f, g>
  Pi1,       // pi1 : t1 x t2 -> t1
  Pi2,
  In1F,      // in1 : t1 -> t1 + t2
  In2F,
  SumCase,   // f1 + f2 : t1 + t2 -> t
  Dist,      // delta : (t1 + t2) x s -> t1 x s + t2 x s
  // constants / arithmetic
  Omega,     // omega : s -> t
  ConstNat,  // n : unit -> N
  Arith,     // op : N x N -> N
  EqF,       // = : N x N -> B
  // collections
  EmptySeq,   // [] : unit -> [t]
  SingletonF, // t -> [t]
  AppendF,    // [t] x [t] -> [t]
  FlattenF,   // [[t]] -> [t]
  LengthF,    // [t] -> N
  GetF,       // [t] -> t
  MapF,       // map(f) : [s] -> [t]
  // sequences
  ZipF,        // [s] x [t] -> [s x t]
  EnumerateF,  // [t] -> [N]
  SplitF,      // [t] x [N] -> [[t]]
  P2,          // s x [t] -> [s x t]
  // iteration
  WhileF,  // while(p, f) : t -> t
};

/// Stable lower-case name of a combinator kind ("compose", "map", ...),
/// used by debug-info sites and diagnostics.
const char* nsa_kind_name(NsaKind kind);

class NsaFn;
using NsaRef = std::shared_ptr<const NsaFn>;

class NsaFn {
 public:
  NsaKind kind() const { return kind_; }
  const TypeRef& dom() const { return dom_; }
  const TypeRef& cod() const { return cod_; }
  const NsaRef& f() const { return f_; }  ///< first child (or only child)
  const NsaRef& g() const { return g_; }  ///< second child
  std::uint64_t imm() const { return imm_; }
  ArithOp aop() const { return aop_; }

  std::size_t node_count() const;
  std::string show() const;

  /// Surface-source provenance propagated from the NSC term this
  /// combinator translates (see lang::Term::set_src for the contract:
  /// metadata only, first write wins, line 0 = unstamped).
  void set_src(std::uint32_t line, std::uint32_t col) const {
    if (src_line_ == 0) {
      src_line_ = line;
      src_col_ = col;
    }
  }
  std::uint32_t src_line() const { return src_line_; }
  std::uint32_t src_col() const { return src_col_; }

  struct Init {
    NsaKind kind;
    TypeRef dom, cod;
    NsaRef f, g;
    std::uint64_t imm = 0;
    ArithOp aop = ArithOp::Add;
  };
  static NsaRef make(Init init);

 private:
  explicit NsaFn(Init init);

  mutable std::uint32_t src_line_ = 0;
  mutable std::uint32_t src_col_ = 0;
  NsaKind kind_;
  TypeRef dom_, cod_;
  NsaRef f_, g_;
  std::uint64_t imm_;
  ArithOp aop_;
};

// -- constructors (each checks its typing rule) ------------------------------

NsaRef id(TypeRef t);
NsaRef compose(NsaRef g, NsaRef f);  ///< g after f
NsaRef bang(TypeRef t);
NsaRef pairf(NsaRef f, NsaRef g);
NsaRef pi1(TypeRef t1, TypeRef t2);
NsaRef pi2(TypeRef t1, TypeRef t2);
NsaRef in1f(TypeRef t1, TypeRef t2);
NsaRef in2f(TypeRef t1, TypeRef t2);
NsaRef sum_case(NsaRef f1, NsaRef f2);
NsaRef dist(TypeRef t1, TypeRef t2, TypeRef s);
NsaRef omega(TypeRef dom, TypeRef cod);
NsaRef const_nat(std::uint64_t n);
NsaRef arith(ArithOp op);
NsaRef eqf();
NsaRef empty_seq(TypeRef elem);
NsaRef singletonf(TypeRef t);
NsaRef appendf(TypeRef t);
NsaRef flattenf(TypeRef t);
NsaRef lengthf(TypeRef t);
NsaRef getf(TypeRef t);
NsaRef mapf(NsaRef f);
NsaRef zipf(TypeRef s, TypeRef t);
NsaRef enumeratef(TypeRef t);
NsaRef splitf(TypeRef t);
NsaRef p2f(TypeRef s, TypeRef t);
NsaRef whilef(NsaRef p, NsaRef f);

/// swap : t1 x t2 -> t2 x t1 = <pi2, pi1> (derived; used heavily by the
/// NSC translation).
NsaRef swapf(TypeRef t1, TypeRef t2);

}  // namespace nsc::nsa
