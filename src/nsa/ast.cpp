#include "nsa/ast.hpp"

#include <sstream>

#include "support/error.hpp"

namespace nsc::nsa {

const char* nsa_kind_name(NsaKind kind) {
  switch (kind) {
    case NsaKind::Id:
      return "id";
    case NsaKind::Compose:
      return "compose";
    case NsaKind::Bang:
      return "bang";
    case NsaKind::PairF:
      return "pair";
    case NsaKind::Pi1:
      return "pi1";
    case NsaKind::Pi2:
      return "pi2";
    case NsaKind::In1F:
      return "in1";
    case NsaKind::In2F:
      return "in2";
    case NsaKind::SumCase:
      return "sum-case";
    case NsaKind::Dist:
      return "dist";
    case NsaKind::Omega:
      return "omega";
    case NsaKind::ConstNat:
      return "const";
    case NsaKind::Arith:
      return "arith";
    case NsaKind::EqF:
      return "eq";
    case NsaKind::EmptySeq:
      return "empty";
    case NsaKind::SingletonF:
      return "singleton";
    case NsaKind::AppendF:
      return "append";
    case NsaKind::FlattenF:
      return "flatten";
    case NsaKind::LengthF:
      return "length";
    case NsaKind::GetF:
      return "get";
    case NsaKind::MapF:
      return "map";
    case NsaKind::ZipF:
      return "zip";
    case NsaKind::EnumerateF:
      return "enumerate";
    case NsaKind::SplitF:
      return "split";
    case NsaKind::P2:
      return "p2";
    case NsaKind::WhileF:
      return "while";
  }
  return "?";
}

NsaFn::NsaFn(Init init)
    : kind_(init.kind),
      dom_(std::move(init.dom)),
      cod_(std::move(init.cod)),
      f_(std::move(init.f)),
      g_(std::move(init.g)),
      imm_(init.imm),
      aop_(init.aop) {}

NsaRef NsaFn::make(Init init) {
  struct Access : NsaFn {
    explicit Access(Init i) : NsaFn(std::move(i)) {}
  };
  return std::make_shared<Access>(std::move(init));
}

std::size_t NsaFn::node_count() const {
  std::size_t n = 1;
  if (f_) n += f_->node_count();
  if (g_) n += g_->node_count();
  return n;
}

std::string NsaFn::show() const {
  std::ostringstream out;
  switch (kind_) {
    case NsaKind::Id:
      out << "id";
      break;
    case NsaKind::Compose:
      out << "(" << g_->show() << " . " << f_->show() << ")";
      break;
    case NsaKind::Bang:
      out << "!";
      break;
    case NsaKind::PairF:
      out << "<" << f_->show() << ", " << g_->show() << ">";
      break;
    case NsaKind::Pi1:
      out << "pi1";
      break;
    case NsaKind::Pi2:
      out << "pi2";
      break;
    case NsaKind::In1F:
      out << "in1";
      break;
    case NsaKind::In2F:
      out << "in2";
      break;
    case NsaKind::SumCase:
      out << "[" << f_->show() << " + " << g_->show() << "]";
      break;
    case NsaKind::Dist:
      out << "delta";
      break;
    case NsaKind::Omega:
      out << "omega";
      break;
    case NsaKind::ConstNat:
      out << imm_;
      break;
    case NsaKind::Arith:
      out << lang::arith_op_name(aop_);
      break;
    case NsaKind::EqF:
      out << "=";
      break;
    case NsaKind::EmptySeq:
      out << "[]";
      break;
    case NsaKind::SingletonF:
      out << "single";
      break;
    case NsaKind::AppendF:
      out << "@";
      break;
    case NsaKind::FlattenF:
      out << "flatten";
      break;
    case NsaKind::LengthF:
      out << "length";
      break;
    case NsaKind::GetF:
      out << "get";
      break;
    case NsaKind::MapF:
      out << "map(" << f_->show() << ")";
      break;
    case NsaKind::ZipF:
      out << "zip";
      break;
    case NsaKind::EnumerateF:
      out << "enumerate";
      break;
    case NsaKind::SplitF:
      out << "split";
      break;
    case NsaKind::P2:
      out << "p2";
      break;
    case NsaKind::WhileF:
      out << "while(" << f_->show() << ", " << g_->show() << ")";
      break;
  }
  return out.str();
}

namespace {

[[noreturn]] void type_fail(const std::string& what) {
  throw TypeError("NSA: " + what);
}

NsaRef make(NsaKind k, TypeRef dom, TypeRef cod, NsaRef f = nullptr,
            NsaRef g = nullptr, std::uint64_t imm = 0,
            ArithOp aop = ArithOp::Add) {
  NsaFn::Init init;
  init.kind = k;
  init.dom = std::move(dom);
  init.cod = std::move(cod);
  init.f = std::move(f);
  init.g = std::move(g);
  init.imm = imm;
  init.aop = aop;
  return NsaFn::make(std::move(init));
}

}  // namespace

NsaRef id(TypeRef t) { return make(NsaKind::Id, t, t); }

NsaRef compose(NsaRef g, NsaRef f) {
  if (!Type::equal(f->cod(), g->dom())) {
    type_fail("compose: " + f->cod()->show() + " vs " + g->dom()->show());
  }
  TypeRef dom = f->dom();
  TypeRef cod = g->cod();
  return make(NsaKind::Compose, std::move(dom), std::move(cod), std::move(f),
              std::move(g));
}

NsaRef bang(TypeRef t) { return make(NsaKind::Bang, std::move(t), Type::unit()); }

NsaRef pairf(NsaRef f, NsaRef g) {
  if (!Type::equal(f->dom(), g->dom())) type_fail("pair: domains differ");
  TypeRef dom = f->dom();
  TypeRef cod = Type::prod(f->cod(), g->cod());
  return make(NsaKind::PairF, std::move(dom), std::move(cod), std::move(f),
              std::move(g));
}

NsaRef pi1(TypeRef t1, TypeRef t2) {
  return make(NsaKind::Pi1, Type::prod(t1, std::move(t2)), t1);
}

NsaRef pi2(TypeRef t1, TypeRef t2) {
  return make(NsaKind::Pi2, Type::prod(std::move(t1), t2), t2);
}

NsaRef in1f(TypeRef t1, TypeRef t2) {
  return make(NsaKind::In1F, t1, Type::sum(t1, std::move(t2)));
}

NsaRef in2f(TypeRef t1, TypeRef t2) {
  return make(NsaKind::In2F, t2, Type::sum(std::move(t1), t2));
}

NsaRef sum_case(NsaRef f1, NsaRef f2) {
  if (!Type::equal(f1->cod(), f2->cod())) type_fail("sum: codomains differ");
  TypeRef dom = Type::sum(f1->dom(), f2->dom());
  TypeRef cod = f1->cod();
  return make(NsaKind::SumCase, std::move(dom), std::move(cod), std::move(f1),
              std::move(f2));
}

NsaRef dist(TypeRef t1, TypeRef t2, TypeRef s) {
  TypeRef dom = Type::prod(Type::sum(t1, t2), s);
  TypeRef cod = Type::sum(Type::prod(t1, s), Type::prod(t2, s));
  return make(NsaKind::Dist, std::move(dom), std::move(cod));
}

NsaRef omega(TypeRef dom, TypeRef cod) {
  return make(NsaKind::Omega, std::move(dom), std::move(cod));
}

NsaRef const_nat(std::uint64_t n) {
  return make(NsaKind::ConstNat, Type::unit(), Type::nat(), nullptr, nullptr,
              n);
}

NsaRef arith(ArithOp op) {
  return make(NsaKind::Arith, Type::prod(Type::nat(), Type::nat()),
              Type::nat(), nullptr, nullptr, 0, op);
}

NsaRef eqf() {
  return make(NsaKind::EqF, Type::prod(Type::nat(), Type::nat()),
              Type::boolean());
}

NsaRef empty_seq(TypeRef elem) {
  return make(NsaKind::EmptySeq, Type::unit(), Type::seq(std::move(elem)));
}

NsaRef singletonf(TypeRef t) {
  return make(NsaKind::SingletonF, t, Type::seq(t));
}

NsaRef appendf(TypeRef t) {
  TypeRef st = Type::seq(std::move(t));
  return make(NsaKind::AppendF, Type::prod(st, st), st);
}

NsaRef flattenf(TypeRef t) {
  TypeRef st = Type::seq(std::move(t));
  return make(NsaKind::FlattenF, Type::seq(st), st);
}

NsaRef lengthf(TypeRef t) {
  return make(NsaKind::LengthF, Type::seq(std::move(t)), Type::nat());
}

NsaRef getf(TypeRef t) {
  return make(NsaKind::GetF, Type::seq(t), t);
}

NsaRef mapf(NsaRef f) {
  TypeRef dom = Type::seq(f->dom());
  TypeRef cod = Type::seq(f->cod());
  return make(NsaKind::MapF, std::move(dom), std::move(cod), std::move(f));
}

NsaRef zipf(TypeRef s, TypeRef t) {
  TypeRef dom = Type::prod(Type::seq(s), Type::seq(t));
  return make(NsaKind::ZipF, std::move(dom),
              Type::seq(Type::prod(std::move(s), std::move(t))));
}

NsaRef enumeratef(TypeRef t) {
  return make(NsaKind::EnumerateF, Type::seq(std::move(t)),
              Type::seq(Type::nat()));
}

NsaRef splitf(TypeRef t) {
  TypeRef st = Type::seq(t);
  return make(NsaKind::SplitF, Type::prod(st, Type::seq(Type::nat())),
              Type::seq(st));
}

NsaRef p2f(TypeRef s, TypeRef t) {
  TypeRef dom = Type::prod(s, Type::seq(t));
  return make(NsaKind::P2, std::move(dom),
              Type::seq(Type::prod(std::move(s), std::move(t))));
}

NsaRef whilef(NsaRef p, NsaRef f) {
  if (!p->cod()->is_boolean()) type_fail("while: predicate must return B");
  if (!Type::equal(p->dom(), f->dom()) || !Type::equal(f->dom(), f->cod())) {
    type_fail("while: p : t -> B and f : t -> t must agree");
  }
  TypeRef dom = f->dom();
  TypeRef cod = f->cod();
  return make(NsaKind::WhileF, std::move(dom), std::move(cod), std::move(p),
              std::move(f));
}

NsaRef swapf(TypeRef t1, TypeRef t2) {
  return pairf(pi2(t1, t2), pi1(t1, t2));
}

}  // namespace nsc::nsa
