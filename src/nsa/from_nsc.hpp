// Variable elimination: NSC -> NSA (paper section 7, "Variable
// Elimination", and appendix C / Proposition C.1).
//
// A term Gamma |- M : t with Gamma = x1:s1, ..., xn:sn becomes a function
//   f_M : <Gamma> -> t,     <Gamma> = s1 x (s2 x (... x unit))
// and a function expression Gamma |- F : s -> t becomes
//   f_F : s x <Gamma> -> t.
//
// Variables are projection chains; `case` pushes the context into the
// branches with delta; `map` broadcasts the context with p2 (the appendix-C
// note: "this replaces the free variables present in NSC"); `while` threads
// the context through the loop state as t x <Gamma>.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "nsa/ast.hpp"
#include "object/value.hpp"

namespace nsc::nsa {

using nsc::Value;
using nsc::ValueRef;

/// An ordered typing context; index 0 is the *innermost* (most recently
/// bound) variable, matching the right-nested product encoding.
using Context = std::vector<std::pair<std::string, TypeRef>>;

/// The encoded type <Gamma>.
TypeRef context_type(const Context& ctx);

/// Translate a term: f_M : <Gamma> -> t.
NsaRef from_nsc(const lang::TermRef& m, const Context& ctx = {});

/// Translate a function expression: f_F : s x <Gamma> -> t.
NsaRef from_nsc_func(const lang::FuncRef& f, const Context& ctx = {});

/// Translate a *closed* NSC function F : s -> t into an NSA function with
/// the same domain and codomain (the common entry point: wraps the context
/// plumbing so that f(x) = from_nsc of F(x)).
NsaRef from_closed_func(const lang::FuncRef& f);

/// Encode an argument list for a translated open term: values for the
/// context variables, innermost first, as the nested pair
/// (v1, (v2, (..., ()))).
ValueRef encode_context(const std::vector<ValueRef>& values);

}  // namespace nsc::nsa
