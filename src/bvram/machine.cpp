#include "bvram/machine.hpp"

#include <sstream>

#include "support/checked.hpp"
#include "support/parallel.hpp"

namespace nsc::bvram {

const char* op_name(Op op) {
  switch (op) {
    case Op::Move:
      return "move";
    case Op::Arith:
      return "arith";
    case Op::LoadEmpty:
      return "load-empty";
    case Op::LoadConst:
      return "load-const";
    case Op::Append:
      return "append";
    case Op::Length:
      return "length";
    case Op::Enumerate:
      return "enumerate";
    case Op::BmRoute:
      return "bm-route";
    case Op::SbmRoute:
      return "sbm-route";
    case Op::Select:
      return "select";
    case Op::ScanPlus:
      return "scan-plus";
    case Op::Goto:
      return "goto";
    case Op::GotoIfEmpty:
      return "goto-if-empty";
    case Op::Halt:
      return "halt";
  }
  return "?";
}

std::string Instr::show() const {
  std::ostringstream out;
  switch (op) {
    case Op::Move:
      out << "V" << dst << " <- V" << a;
      break;
    case Op::Arith:
      out << "V" << dst << " <- V" << a << " " << lang::arith_op_name(aop)
          << " V" << b;
      break;
    case Op::LoadEmpty:
      out << "V" << dst << " <- []";
      break;
    case Op::LoadConst:
      out << "V" << dst << " <- [" << imm << "]";
      break;
    case Op::Append:
      out << "V" << dst << " <- V" << a << " @ V" << b;
      break;
    case Op::Length:
      out << "V" << dst << " <- [length(V" << a << ")]";
      break;
    case Op::Enumerate:
      out << "V" << dst << " <- enumerate(V" << a << ")";
      break;
    case Op::BmRoute:
      out << "V" << dst << " <- bm-route(V" << a << ", V" << b << ", V" << c
          << ")";
      break;
    case Op::SbmRoute:
      out << "V" << dst << " <- sbm-route(V" << a << ", V" << b << ", V" << c
          << ", V" << imm << ")";
      break;
    case Op::Select:
      out << "V" << dst << " <- sigma(V" << a << ")";
      break;
    case Op::ScanPlus:
      out << "V" << dst << " <- scan+(V" << a << ")";
      break;
    case Op::Goto:
      out << "goto " << target;
      break;
    case Op::GotoIfEmpty:
      out << "if empty?(V" << a << ") goto " << target;
      break;
    case Op::Halt:
      out << "halt";
      break;
  }
  return out.str();
}

std::string Program::disassemble() const {
  std::ostringstream out;
  out << "; regs=" << num_regs << " in=" << num_inputs
      << " out=" << num_outputs << "\n";
  for (std::size_t i = 0; i < code.size(); ++i) {
    out << i << ":\t" << code[i].show() << "\n";
  }
  return out.str();
}

namespace {

using Vec = std::vector<std::uint64_t>;

[[noreturn]] void fail(const Instr& instr, const std::string& what) {
  throw MachineError(what + " in `" + instr.show() + "`");
}

std::uint64_t vec_sum(const Vec& v) {
  std::uint64_t s = 0;
  for (auto x : v) s = sat_add(s, x);
  return s;
}

}  // namespace

RunResult run(const Program& program, const std::vector<Vec>& inputs,
              const RunConfig& cfg) {
  if (inputs.size() != program.num_inputs) {
    throw MachineError("expected " + std::to_string(program.num_inputs) +
                       " inputs, got " + std::to_string(inputs.size()));
  }
  std::vector<Vec> regs(program.num_regs);
  for (std::size_t i = 0; i < inputs.size(); ++i) regs[i] = inputs[i];

  auto reg_of = [&](std::uint32_t r, const Instr& instr) -> Vec& {
    if (r >= regs.size()) fail(instr, "register out of range");
    return regs[r];
  };

  RunResult result;
  std::size_t pc = 0;
  std::uint64_t executed = 0;

  while (pc < program.code.size()) {
    const Instr& instr = program.code[pc];
    if (++executed > cfg.max_instructions) {
      throw FuelExhausted("BVRAM exceeded " +
                          std::to_string(cfg.max_instructions) +
                          " instructions");
    }
    std::uint64_t work = 0;
    std::uint64_t max_len = 0;
    auto charge = [&](const Vec& v) {
      work = sat_add(work, v.size());
      if (v.size() > max_len) max_len = v.size();
    };
    std::size_t next = pc + 1;

    switch (instr.op) {
      case Op::Move: {
        Vec out = reg_of(instr.a, instr);
        charge(out);
        charge(out);  // input + output
        reg_of(instr.dst, instr) = std::move(out);
        break;
      }
      case Op::Arith: {
        const Vec& a = reg_of(instr.a, instr);
        const Vec& b = reg_of(instr.b, instr);
        if (a.size() != b.size()) fail(instr, "length mismatch");
        Vec out(a.size());
        const auto op = instr.aop;
        auto body = [&](std::size_t lo, std::size_t hi) {
          for (std::size_t i = lo; i < hi; ++i) {
            out[i] = lang::arith_apply(op, a[i], b[i]);
          }
        };
        if (cfg.parallel_backend) {
          parallel_for(a.size(), body);
        } else {
          body(0, a.size());
        }
        charge(a);
        charge(b);
        charge(out);
        reg_of(instr.dst, instr) = std::move(out);
        break;
      }
      case Op::LoadEmpty: {
        reg_of(instr.dst, instr).clear();
        work = 1;
        break;
      }
      case Op::LoadConst: {
        reg_of(instr.dst, instr) = Vec{instr.imm};
        work = 1;
        max_len = 1;
        break;
      }
      case Op::Append: {
        const Vec& a = reg_of(instr.a, instr);
        const Vec& b = reg_of(instr.b, instr);
        Vec out;
        out.reserve(a.size() + b.size());
        out.insert(out.end(), a.begin(), a.end());
        out.insert(out.end(), b.begin(), b.end());
        charge(a);
        charge(b);
        charge(out);
        reg_of(instr.dst, instr) = std::move(out);
        break;
      }
      case Op::Length: {
        const Vec& a = reg_of(instr.a, instr);
        charge(a);
        reg_of(instr.dst, instr) = Vec{a.size()};
        work = sat_add(work, 1);
        break;
      }
      case Op::Enumerate: {
        const Vec& a = reg_of(instr.a, instr);
        Vec out(a.size());
        auto body = [&](std::size_t lo, std::size_t hi) {
          for (std::size_t i = lo; i < hi; ++i) out[i] = i;
        };
        if (cfg.parallel_backend) {
          parallel_for(a.size(), body);
        } else {
          body(0, a.size());
        }
        charge(a);
        charge(out);
        reg_of(instr.dst, instr) = std::move(out);
        break;
      }
      case Op::BmRoute: {
        const Vec& bound = reg_of(instr.a, instr);
        const Vec& counts = reg_of(instr.b, instr);
        const Vec& data = reg_of(instr.c, instr);
        if (counts.size() != data.size()) {
          fail(instr, "bm-route: counts/data length mismatch");
        }
        if (vec_sum(counts) != bound.size()) {
          fail(instr, "bm-route: bound length != sum of counts");
        }
        Vec out;
        out.reserve(bound.size());
        for (std::size_t t = 0; t < data.size(); ++t) {
          for (std::uint64_t r = 0; r < counts[t]; ++r) out.push_back(data[t]);
        }
        charge(bound);
        charge(counts);
        charge(data);
        charge(out);
        reg_of(instr.dst, instr) = std::move(out);
        break;
      }
      case Op::SbmRoute: {
        const Vec& bound = reg_of(instr.a, instr);
        const Vec& counts = reg_of(instr.b, instr);
        const Vec& data = reg_of(instr.c, instr);
        const Vec& segs =
            reg_of(static_cast<std::uint32_t>(instr.imm), instr);
        if (counts.size() != segs.size()) {
          fail(instr, "sbm-route: counts/segs length mismatch");
        }
        if (vec_sum(counts) != bound.size()) {
          fail(instr, "sbm-route: bound length != sum of counts");
        }
        if (vec_sum(segs) != data.size()) {
          fail(instr, "sbm-route: segment sizes don't cover the data");
        }
        Vec out;
        std::size_t at = 0;
        for (std::size_t t = 0; t < segs.size(); ++t) {
          const std::size_t len = segs[t];
          for (std::uint64_t r = 0; r < counts[t]; ++r) {
            out.insert(out.end(), data.begin() + at, data.begin() + at + len);
          }
          at += len;
        }
        charge(bound);
        charge(counts);
        charge(data);
        charge(segs);
        charge(out);
        reg_of(instr.dst, instr) = std::move(out);
        break;
      }
      case Op::Select: {
        const Vec& a = reg_of(instr.a, instr);
        Vec out;
        for (auto x : a) {
          if (x != 0) out.push_back(x);
        }
        charge(a);
        charge(out);
        reg_of(instr.dst, instr) = std::move(out);
        break;
      }
      case Op::ScanPlus: {
        const Vec& a = reg_of(instr.a, instr);
        Vec out(a.size());
        std::uint64_t acc = 0;
        for (std::size_t i = 0; i < a.size(); ++i) {
          out[i] = acc;
          acc = sat_add(acc, a[i]);
        }
        charge(a);
        charge(out);
        reg_of(instr.dst, instr) = std::move(out);
        break;
      }
      case Op::Goto: {
        if (instr.target > program.code.size()) fail(instr, "bad jump");
        next = instr.target;
        work = 1;
        break;
      }
      case Op::GotoIfEmpty: {
        const Vec& a = reg_of(instr.a, instr);
        charge(a);
        work = sat_add(work, 1);
        if (a.empty()) {
          if (instr.target > program.code.size()) fail(instr, "bad jump");
          next = instr.target;
        }
        break;
      }
      case Op::Halt: {
        work = 1;
        next = program.code.size();
        break;
      }
    }

    result.cost.time = sat_add(result.cost.time, 1);
    result.cost.work = sat_add(result.cost.work, work);
    if (cfg.record_trace) {
      result.trace.push_back({instr.op, work, max_len});
    }
    pc = next;
  }

  result.outputs.assign(regs.begin(), regs.begin() + program.num_outputs);
  return result;
}

// ---------------------------------------------------------------------------
// Assembler
// ---------------------------------------------------------------------------

std::uint32_t Assembler::reg() { return next_reg_++; }

void Assembler::reserve_regs(std::size_t n) {
  if (next_reg_ < n) next_reg_ = static_cast<std::uint32_t>(n);
}

void Assembler::move(std::uint32_t dst, std::uint32_t src) {
  code_.push_back({Op::Move, ArithOp::Add, dst, src, 0, 0, 0, 0});
}

void Assembler::arith(std::uint32_t dst, ArithOp op, std::uint32_t a,
                      std::uint32_t b) {
  code_.push_back({Op::Arith, op, dst, a, b, 0, 0, 0});
}

void Assembler::load_empty(std::uint32_t dst) {
  code_.push_back({Op::LoadEmpty, ArithOp::Add, dst, 0, 0, 0, 0, 0});
}

void Assembler::load_const(std::uint32_t dst, std::uint64_t n) {
  code_.push_back({Op::LoadConst, ArithOp::Add, dst, 0, 0, 0, n, 0});
}

void Assembler::append(std::uint32_t dst, std::uint32_t a, std::uint32_t b) {
  code_.push_back({Op::Append, ArithOp::Add, dst, a, b, 0, 0, 0});
}

void Assembler::length(std::uint32_t dst, std::uint32_t src) {
  code_.push_back({Op::Length, ArithOp::Add, dst, src, 0, 0, 0, 0});
}

void Assembler::enumerate(std::uint32_t dst, std::uint32_t src) {
  code_.push_back({Op::Enumerate, ArithOp::Add, dst, src, 0, 0, 0, 0});
}

void Assembler::bm_route(std::uint32_t dst, std::uint32_t bound,
                         std::uint32_t counts, std::uint32_t data) {
  code_.push_back({Op::BmRoute, ArithOp::Add, dst, bound, counts, data, 0, 0});
}

void Assembler::sbm_route(std::uint32_t dst, std::uint32_t bound,
                          std::uint32_t counts, std::uint32_t data,
                          std::uint32_t segs) {
  code_.push_back(
      {Op::SbmRoute, ArithOp::Add, dst, bound, counts, data, segs, 0});
}

void Assembler::select(std::uint32_t dst, std::uint32_t src) {
  code_.push_back({Op::Select, ArithOp::Add, dst, src, 0, 0, 0, 0});
}

void Assembler::scan_plus(std::uint32_t dst, std::uint32_t src) {
  code_.push_back({Op::ScanPlus, ArithOp::Add, dst, src, 0, 0, 0, 0});
}

void Assembler::halt() {
  code_.push_back({Op::Halt, ArithOp::Add, 0, 0, 0, 0, 0, 0});
}

Assembler::Label Assembler::fresh_label() {
  label_addr_.push_back(-1);
  return label_addr_.size() - 1;
}

void Assembler::bind(Label l) {
  check_label(l);
  if (label_addr_[l] >= 0) {
    throw MachineError("label L" + std::to_string(l) + " bound twice");
  }
  label_addr_[l] = static_cast<std::ptrdiff_t>(code_.size());
}

void Assembler::jump(Label l) {
  check_label(l);
  fixups_.emplace_back(code_.size(), l);
  code_.push_back({Op::Goto, ArithOp::Add, 0, 0, 0, 0, 0, 0});
}

void Assembler::jump_if_empty(std::uint32_t reg, Label l) {
  check_label(l);
  fixups_.emplace_back(code_.size(), l);
  code_.push_back({Op::GotoIfEmpty, ArithOp::Add, 0, reg, 0, 0, 0, 0});
}

void Assembler::check_label(Label l) const {
  if (l >= label_addr_.size()) {
    throw MachineError("unknown label L" + std::to_string(l) +
                       " (only " + std::to_string(label_addr_.size()) +
                       " labels allocated)");
  }
}

Program Assembler::finish(std::size_t num_inputs, std::size_t num_outputs) {
  for (const auto& [at, label] : fixups_) {
    const std::ptrdiff_t addr = label_addr_[label];
    if (addr < 0) {
      throw MachineError("unbound label L" + std::to_string(label) +
                         " referenced by instruction " + std::to_string(at) +
                         " `" + code_[at].show() + "`");
    }
    code_[at].target = static_cast<std::size_t>(addr);
  }
  Program p;
  p.num_regs = next_reg_;
  p.num_inputs = num_inputs;
  p.num_outputs = num_outputs;
  p.code = std::move(code_);
  return p;
}

}  // namespace nsc::bvram
