#include "bvram/machine.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <sstream>
#include <utility>

#include "support/checked.hpp"
#include "support/parallel.hpp"

namespace nsc::bvram {

const char* op_name(Op op) {
  switch (op) {
    case Op::Move:
      return "move";
    case Op::Arith:
      return "arith";
    case Op::LoadEmpty:
      return "load-empty";
    case Op::LoadConst:
      return "load-const";
    case Op::Append:
      return "append";
    case Op::Length:
      return "length";
    case Op::Enumerate:
      return "enumerate";
    case Op::BmRoute:
      return "bm-route";
    case Op::SbmRoute:
      return "sbm-route";
    case Op::Select:
      return "select";
    case Op::ScanPlus:
      return "scan-plus";
    case Op::Goto:
      return "goto";
    case Op::GotoIfEmpty:
      return "goto-if-empty";
    case Op::Halt:
      return "halt";
  }
  return "?";
}

std::string Instr::show() const {
  std::ostringstream out;
  switch (op) {
    case Op::Move:
      out << "V" << dst << " <- V" << a;
      break;
    case Op::Arith:
      out << "V" << dst << " <- V" << a << " " << lang::arith_op_name(aop)
          << " V" << b;
      break;
    case Op::LoadEmpty:
      out << "V" << dst << " <- []";
      break;
    case Op::LoadConst:
      out << "V" << dst << " <- [" << imm << "]";
      break;
    case Op::Append:
      out << "V" << dst << " <- V" << a << " @ V" << b;
      break;
    case Op::Length:
      out << "V" << dst << " <- [length(V" << a << ")]";
      break;
    case Op::Enumerate:
      out << "V" << dst << " <- enumerate(V" << a << ")";
      break;
    case Op::BmRoute:
      out << "V" << dst << " <- bm-route(V" << a << ", V" << b << ", V" << c
          << ")";
      break;
    case Op::SbmRoute:
      out << "V" << dst << " <- sbm-route(V" << a << ", V" << b << ", V" << c
          << ", V" << imm << ")";
      break;
    case Op::Select:
      out << "V" << dst << " <- sigma(V" << a << ")";
      break;
    case Op::ScanPlus:
      out << "V" << dst << " <- scan+(V" << a << ")";
      break;
    case Op::Goto:
      out << "goto " << target;
      break;
    case Op::GotoIfEmpty:
      out << "if empty?(V" << a << ") goto " << target;
      break;
    case Op::Halt:
      out << "halt";
      break;
  }
  return out.str();
}

std::string Program::disassemble() const {
  std::ostringstream out;
  out << "; regs=" << num_regs << " in=" << num_inputs
      << " out=" << num_outputs << "\n";
  for (std::size_t i = 0; i < code.size(); ++i) {
    out << i << ":\t" << code[i].show();
    const obs::DebugSite& site = debug.site(code[i].dbg);
    if (site.has_loc() || !site.nsa.empty()) {
      out << "\t; " << site.show();
    }
    out << "\n";
  }
  return out.str();
}

double Program::debug_coverage(
    const std::vector<std::uint64_t>* weight) const {
  std::uint64_t total = 0, attributed = 0;
  for (std::size_t i = 0; i < code.size(); ++i) {
    const std::uint64_t w =
        weight != nullptr ? (i < weight->size() ? (*weight)[i] : 0) : 1;
    total += w;
    if (debug.site(code[i].dbg).has_loc()) attributed += w;
  }
  return total == 0 ? 1.0
                    : static_cast<double>(attributed) /
                          static_cast<double>(total);
}

namespace {

using Vec = std::vector<std::uint64_t>;

[[noreturn]] void fail(const Instr& instr, const std::string& what) {
  throw MachineError(what + " in `" + instr.show() + "`");
}

std::uint64_t vec_sum(const Vec& v) {
  std::uint64_t s = 0;
  for (auto x : v) s = sat_add(s, x);
  return s;
}

void check_io_shape(const Program& program, const std::vector<Vec>& inputs) {
  if (inputs.size() != program.num_inputs) {
    throw MachineError("expected " + std::to_string(program.num_inputs) +
                       " inputs, got " + std::to_string(inputs.size()));
  }
  // The I/O convention pins V_0..V_{max(in,out)-1}; an arity beyond the
  // register file would read (or seed) past it.
  if (program.num_inputs > program.num_regs) {
    throw MachineError("program declares " +
                       std::to_string(program.num_inputs) +
                       " inputs but only " + std::to_string(program.num_regs) +
                       " registers");
  }
  if (program.num_outputs > program.num_regs) {
    throw MachineError("program declares " +
                       std::to_string(program.num_outputs) +
                       " outputs but only " + std::to_string(program.num_regs) +
                       " registers");
  }
}

// ---------------------------------------------------------------------------
// Elementwise arithmetic kernels
// ---------------------------------------------------------------------------

// The ArithOp dispatch hoisted out of the element loop: lang::arith_apply
// is an out-of-line call with a per-element switch, which dominates the
// cost of the actual operation.  Each loop below is semantically identical
// to calling arith_apply per element, including the EvalError on division
// by zero (same message, raised at the first offending element in index
// order within a chunk).
template <typename F>
void arith_loop(std::uint64_t* out, const std::uint64_t* a,
                const std::uint64_t* b, std::size_t lo, std::size_t hi, F f) {
  for (std::size_t i = lo; i < hi; ++i) out[i] = f(a[i], b[i]);
}

void arith_range(ArithOp op, std::uint64_t* out, const std::uint64_t* a,
                 const std::uint64_t* b, std::size_t lo, std::size_t hi) {
  using U = std::uint64_t;
  switch (op) {
    case ArithOp::Add:
      arith_loop(out, a, b, lo, hi, [](U x, U y) { return sat_add(x, y); });
      return;
    case ArithOp::Monus:
      arith_loop(out, a, b, lo, hi, [](U x, U y) { return monus(x, y); });
      return;
    case ArithOp::Mul:
      arith_loop(out, a, b, lo, hi, [](U x, U y) { return sat_mul(x, y); });
      return;
    case ArithOp::Div:
      arith_loop(out, a, b, lo, hi, [](U x, U y) {
        if (y == 0) throw EvalError("division by zero");
        return x / y;
      });
      return;
    case ArithOp::Rsh:
      arith_loop(out, a, b, lo, hi,
                 [](U x, U y) { return y >= 64 ? U{0} : x >> y; });
      return;
    case ArithOp::Log2:
      arith_loop(out, a, b, lo, hi, [](U x, U) { return ilog2(x); });
      return;
  }
  throw EvalError("unknown arithmetic op");
}

// ---------------------------------------------------------------------------
// The execution engine (v2)
// ---------------------------------------------------------------------------
// The register representation (Buf) and the recycling allocator
// (BufferPool) live in bvram/pool.hpp so the serve layer can keep a pool
// alive across runs (RunConfig::arena).

/// Structural sanity of a fusion plan against the program it claims to
/// describe: in-bounds disjoint ranges, eligible ops in legal positions,
/// consistent binding/commit tables, registers in range.  A plan that
/// fails is ignored wholesale (the program just runs per-instruction).
/// This guards against malformed hand-built plans; a *stale* plan --
/// structurally fine but describing rewritten code -- is the caller's
/// bug, same as stale last_use masks (the PassManager clears both).
bool fusion_plan_valid(const Program& p) {
  std::size_t prev_end = 0;
  for (const FusedGroup& g : p.fusion) {
    if (g.begin < prev_end || g.end <= g.begin || g.end > p.code.size()) {
      return false;
    }
    const std::size_t n = g.end - g.begin;
    if (n < 2 || n > FusedGroup::kMaxFusedGroup) return false;
    if (g.bind_base.size() != n || g.commit.size() != n) return false;
    if (g.inputs.empty()) return false;
    for (std::uint32_t r : g.inputs) {
      if (r >= p.num_regs) return false;
    }
    std::vector<bool> committed(p.num_regs, false);
    std::size_t at = 0;
    for (std::size_t k = 0; k < n; ++k) {
      const Instr& in = p.code[g.begin + k];
      switch (in.op) {
        case Op::Move:
        case Op::Arith:
        case Op::Enumerate:
          break;
        case Op::ScanPlus:
          if (!g.serial_only) return false;
          break;
        case Op::Select:
          if (k != n - 1 || !g.has_select || !g.serial_only) return false;
          if (g.commit[k] < 0) return false;
          break;
        default:
          return false;
      }
      if (g.bind_base[k] != at) return false;
      const std::size_t nsrc = Instr::src_count(in.op);
      if (at + nsrc > g.binds.size()) return false;
      for (std::size_t j = 0; j < nsrc; ++j) {
        const FusedGroup::Bind& bd = g.binds[at + j];
        if (bd.from_def) {
          if (bd.index >= k) return false;
          if (p.code[g.begin + bd.index].op == Op::Select) return false;
        } else if (bd.index >= g.inputs.size()) {
          return false;
        }
      }
      at += nsrc;
      if (g.commit[k] >= 0) {
        const auto r = static_cast<std::size_t>(g.commit[k]);
        if (r >= p.num_regs || committed[r]) return false;
        committed[r] = true;
      }
    }
    if (at != g.binds.size()) return false;
    prev_end = g.end;
  }
  return true;
}

class Engine {
 public:
  Engine(const Program& program, const std::vector<Vec>& inputs,
         const RunConfig& cfg)
      : p_(program),
        cfg_(cfg),
        // A one-worker pool makes every chunked kernel collapse to a
        // single chunk anyway; taking the serial fast paths outright
        // skips the two-pass scans' extra traversals.  Outputs are
        // identical either way (chunking-independence).
        par_(cfg.parallel_backend && parallel_workers() > 1),
        pool_(cfg.arena != nullptr ? cfg.arena : &own_pool_),
        pool_hits0_(pool_->hits()),
        pool_misses0_(pool_->misses()),
        regs_(program.num_regs) {
    if (cfg.arena != nullptr) {
      // Draw the input registers from the arena too, so a warmed-up arena
      // serves the whole run -- inputs included -- without allocating.
      for (std::size_t i = 0; i < inputs.size(); ++i) {
        Buf b = pool_->acquire(inputs[i].size());
        if (!inputs[i].empty()) {
          std::memcpy(b.data(), inputs[i].data(),
                      inputs[i].size() * sizeof(std::uint64_t));
        }
        regs_[i] = std::move(b);
      }
    } else {
      for (std::size_t i = 0; i < inputs.size(); ++i) {
        regs_[i].assign(inputs[i]);
      }
    }
    if (!p_.code.empty() && p_.last_use.size() == p_.code.size()) {
      last_use_ = p_.last_use.data();
    }
    if (cfg.fuse && !p_.fusion.empty() && fusion_plan_valid(p_)) {
      group_at_.assign(p_.code.size(), -1);
      for (std::size_t i = 0; i < p_.fusion.size(); ++i) {
        group_at_[p_.fusion[i].begin] = static_cast<std::int32_t>(i);
      }
    }
  }

  RunResult exec();

 private:
  /// Lanes are processed in cache-sized blocks: each grouped instruction
  /// runs its (dispatch-hoisted) kernel over one block before the next
  /// instruction touches it, so intermediates live in an L1-resident
  /// scratch instead of streaming through register-sized buffers.
  static constexpr std::size_t kFuseBlock = 128;

  /// Execute lanes [lo, hi) of a fused group.  `in_base[i]` is group
  /// input i's data, `out_base[k]` the committed output buffer of def k
  /// (nullptr: the value lives in scratch row scratch_row[k], or -- for a
  /// Move -- is a pure alias of its source).  `scan_acc[k]` carries the
  /// ScanPlus accumulators and `sel_out`/`sel_total` the terminal
  /// Select's pack buffer and cursor (serial-only groups).  Division by
  /// zero escapes as EvalError; the caller discards and falls back.
  void run_fused_range(const FusedGroup& g,
                       const std::uint64_t* const* in_base,
                       std::uint64_t* const* out_base,
                       const std::int32_t* scratch_row,
                       std::uint64_t* scratch, std::uint64_t* scan_acc,
                       std::uint64_t* sel_out, std::uint64_t& sel_total,
                       std::size_t lo, std::size_t hi) const {
    const Instr* gc = p_.code.data() + g.begin;
    const std::size_t n = g.end - g.begin;
    const std::uint64_t* span[FusedGroup::kMaxFusedGroup];
    for (std::size_t base = lo; base < hi; base += kFuseBlock) {
      const std::size_t bsz = std::min(kFuseBlock, hi - base);
      for (std::size_t k = 0; k < n; ++k) {
        const Instr& in = gc[k];
        const FusedGroup::Bind* bd = g.binds.data() + g.bind_base[k];
        const auto src = [&](std::size_t j) {
          return bd[j].from_def ? span[bd[j].index]
                                : in_base[bd[j].index] + base;
        };
        std::uint64_t* dst =
            out_base[k] != nullptr
                ? out_base[k] + base
                : (scratch_row[k] >= 0
                       ? scratch + static_cast<std::size_t>(scratch_row[k]) *
                                       kFuseBlock
                       : nullptr);
        switch (in.op) {
          case Op::Move: {
            const std::uint64_t* a = src(0);
            if (dst == nullptr) {
              span[k] = a;  // elided: the value already has a home
            } else {
              std::memcpy(dst, a, bsz * sizeof(std::uint64_t));
              span[k] = dst;
            }
            break;
          }
          case Op::Arith: {
            arith_range(in.aop, dst, src(0), src(1), 0, bsz);
            span[k] = dst;
            break;
          }
          case Op::Enumerate: {
            for (std::size_t t = 0; t < bsz; ++t) dst[t] = base + t;
            span[k] = dst;
            break;
          }
          case Op::ScanPlus: {
            const std::uint64_t* a = src(0);
            std::uint64_t acc = scan_acc[k];
            for (std::size_t t = 0; t < bsz; ++t) {
              const std::uint64_t x = a[t];
              dst[t] = acc;
              acc = sat_add(acc, x);
            }
            scan_acc[k] = acc;
            span[k] = dst;
            break;
          }
          case Op::Select: {
            // Terminal pack: the unconditional store lands in the slack
            // slot when the value is zero (same trick as the unfused
            // kernel), so the loop stays branchless.
            const std::uint64_t* a = src(0);
            std::uint64_t at = sel_total;
            for (std::size_t t = 0; t < bsz; ++t) {
              const std::uint64_t v = a[t];
              sel_out[at] = v;
              at += v != 0 ? 1 : 0;
            }
            sel_total = at;
            span[k] = nullptr;
            break;
          }
          default:
            break;  // excluded by plan validation
        }
      }
    }
  }

  bool try_fused(const FusedGroup& g, std::uint64_t& executed,
                 RunResult& result);

  Buf& reg_of(std::uint32_t r, const Instr& instr) {
    if (r >= regs_.size()) fail(instr, "register out of range");
    return regs_[r];
  }

  /// True iff source operand k of the instruction at `at` reads a register
  /// whose value is dead after the instruction on every path (so its
  /// buffer may be stolen or overwritten in place).
  bool operand_dies(std::size_t at, unsigned k) const {
    return last_use_ != nullptr && ((last_use_[at] >> k) & 1u) != 0;
  }

  /// Pooled allocation (BufferPool, bvram/pool.hpp): reuse the first
  /// spare buffer whose capacity suffices; failing that, sacrifice the
  /// largest spare (one realloc instead of a fresh heap block).  Without
  /// an external arena the pool only ever holds buffers displaced from
  /// the register file, so its footprint is bounded by the program's own
  /// peak register footprint; with one, a prior run's whole register
  /// file is available for reuse.
  Buf acquire(std::size_t n) { return pool_->acquire(n); }

  void recycle(Buf&& b) { pool_->recycle(std::move(b)); }

  /// Install `out` as dst's new contents, recycling the displaced buffer.
  /// Validates dst *after* the kernel ran, mirroring the v1 interpreter's
  /// error precedence (a trapping kernel beats a bad dst register).
  void set_reg(std::uint32_t dst, Buf&& out, const Instr& instr) {
    Buf& d = reg_of(dst, instr);
    recycle(std::move(d));
    d = std::move(out);
  }

  void copy_range(std::uint64_t* dst, const std::uint64_t* src,
                  std::size_t n) const {
    if (n == 0) return;
    if (!par_) {
      std::memcpy(dst, src, n * sizeof(std::uint64_t));
      return;
    }
    parallel_for(n, [&](std::size_t lo, std::size_t hi) {
      std::memcpy(dst + lo, src + lo, (hi - lo) * sizeof(std::uint64_t));
    });
  }

  const Program& p_;
  const RunConfig& cfg_;
  const bool par_;
  /// The run's buffer source: the caller's cross-run arena when
  /// RunConfig::arena is set, else a private per-run pool.
  BufferPool own_pool_;
  BufferPool* pool_;
  const std::uint64_t pool_hits0_;
  const std::uint64_t pool_misses0_;
  std::vector<Buf> regs_;
  const std::uint8_t* last_use_ = nullptr;
  /// group_at_[pc] = index into p_.fusion of the group starting at pc,
  /// -1 otherwise; empty when fusion is off or the plan didn't validate.
  std::vector<std::int32_t> group_at_;
  // Allocator/kernel event counters, maintained unconditionally (a handful
  // of O(1) increments per instruction, lost in the noise of the kernels
  // themselves) and surfaced in RunResult::engine only when profiling.
  EngineProfile eng_;
};

/// Attempt to run group `g` (whose head is the current pc) as one fused
/// pass.  On success: registers, T, W, trace, and per-slot profile are
/// left exactly as per-instruction execution would leave them, and the
/// caller jumps to g.end.  On failure (unequal input extents, budget
/// about to expire mid-group, or a lane trap): *nothing* is mutated --
/// the register file was never touched -- and the caller re-executes the
/// range per-instruction, which reproduces the unfused behavior
/// (including the exact trap instruction, element order, and message)
/// by construction.
bool Engine::try_fused(const FusedGroup& g, std::uint64_t& executed,
                       RunResult& result) {
  const std::size_t G = g.end - g.begin;
  if (executed + G > cfg_.max_instructions) {
    // The budget expires mid-group; the per-instruction path throws
    // FuelExhausted at the exact instruction it should.
    ++eng_.fused_fallbacks;
    return false;
  }
  const std::size_t n = regs_[g.inputs[0]].size();
  for (std::uint32_t r : g.inputs) {
    if (regs_[r].size() != n) {
      ++eng_.fused_fallbacks;
      return false;
    }
  }

  const bool prof = cfg_.profile;
  using Clock = std::chrono::steady_clock;
  Clock::time_point t0;
  std::uint64_t chunks_before = 0;
  if (prof) {
    chunks_before = parallel_chunk_count();
    t0 = Clock::now();
  }

  const Instr* gc = p_.code.data() + g.begin;

  // Stage storage: committed defs write straight into their (pooled)
  // output buffers, everything else into L1-sized scratch rows -- except
  // elided Moves, which need no storage at all, and the terminal Select,
  // which packs into its own slack-slotted buffer.
  //
  // Rows are recycled: a def's row is free once its last in-group reader
  // has run.  Reuse *at* the last reader (dst aliasing a source) is safe
  // because every kernel reads its source elements before writing the
  // destination element -- the same property the unfused engine's
  // in-place execution relies on.  A chain cycling two temporaries then
  // runs in two rows instead of one per def, keeping the working set in
  // L1 no matter the group length.
  std::vector<Buf> bufs(G);
  std::uint64_t* out_base[FusedGroup::kMaxFusedGroup];
  std::int32_t scratch_row[FusedGroup::kMaxFusedGroup];
  std::int32_t last_read[FusedGroup::kMaxFusedGroup];
  for (std::size_t k = 0; k < G; ++k) {
    // A def nobody reads (it only exists for trap fidelity) expires
    // immediately; its row frees for any later def.
    last_read[k] = static_cast<std::int32_t>(k);
    const std::size_t nsrc = Instr::src_count(gc[k].op);
    for (std::size_t j = 0; j < nsrc; ++j) {
      const FusedGroup::Bind& bd = g.binds[g.bind_base[k] + j];
      if (!bd.from_def) continue;
      // A read of an elided Move lands on its source's storage; it is
      // the underlying producer's lifetime that must stretch to here.
      std::uint32_t d = bd.index;
      while (gc[d].op == Op::Move && g.commit[d] < 0 &&
             g.binds[g.bind_base[d]].from_def) {
        d = g.binds[g.bind_base[d]].index;
      }
      last_read[d] = static_cast<std::int32_t>(k);
    }
  }
  Buf sel_buf;
  std::uint64_t* sel_out = nullptr;
  std::size_t rows = 0;
  std::int32_t free_rows[FusedGroup::kMaxFusedGroup];
  std::size_t num_free = 0;
  for (std::size_t k = 0; k < G; ++k) {
    out_base[k] = nullptr;
    scratch_row[k] = -1;
  }
  for (std::size_t k = 0; k < G; ++k) {
    for (std::size_t j = 0; j < k; ++j) {
      if (scratch_row[j] < 0) continue;
      // Freed exactly once: at the last reader (in-place handoff), or --
      // for a def nobody reads -- at the next instruction.
      const auto lr = static_cast<std::size_t>(last_read[j]);
      if ((lr == j ? j + 1 : lr) == k) {
        free_rows[num_free++] = scratch_row[j];
      }
    }
    if (gc[k].op == Op::Select) {
      sel_buf = acquire(n + 1);
      sel_out = sel_buf.data();
    } else if (g.commit[k] >= 0) {
      bufs[k] = acquire(n);
      out_base[k] = bufs[k].data();
    } else if (gc[k].op != Op::Move) {
      scratch_row[k] = num_free > 0 ? free_rows[--num_free]
                                    : static_cast<std::int32_t>(rows++);
    }
  }
  std::vector<const std::uint64_t*> in_base(g.inputs.size());
  for (std::size_t i = 0; i < g.inputs.size(); ++i) {
    in_base[i] = regs_[g.inputs[i]].data();
  }

  std::uint64_t scan_acc[FusedGroup::kMaxFusedGroup] = {};
  std::uint64_t sel_total = 0;
  bool trapped = false;
  try {
    if (par_ && !g.serial_only) {
      const ChunkPlan plan = ChunkPlan::make(n);
      if (plan.chunks > 1) {
        for_each_chunk(plan,
                       [&](std::size_t, std::size_t lo, std::size_t hi) {
          // Per-chunk scratch: chunks touch disjoint lanes of the
          // shared output buffers but need private intermediates.
          std::vector<std::uint64_t> scratch(rows * kFuseBlock);
          std::uint64_t unused = 0;
          run_fused_range(g, in_base.data(), out_base, scratch_row,
                          scratch.data(), nullptr, nullptr, unused, lo, hi);
        });
      } else {
        std::vector<std::uint64_t> scratch(rows * kFuseBlock);
        run_fused_range(g, in_base.data(), out_base, scratch_row,
                        scratch.data(), scan_acc, sel_out, sel_total, 0, n);
      }
    } else {
      std::vector<std::uint64_t> scratch(rows * kFuseBlock);
      run_fused_range(g, in_base.data(), out_base, scratch_row,
                      scratch.data(), scan_acc, sel_out, sel_total, 0, n);
    }
  } catch (const EvalError&) {
    trapped = true;  // division by zero somewhere in the group
  }
  if (trapped) {
    for (std::size_t k = 0; k < G; ++k) recycle(std::move(bufs[k]));
    recycle(std::move(sel_buf));
    ++eng_.fused_fallbacks;
    return false;
  }

  // Commit: install every surviving value, recycling displaced buffers.
  // Only now does the register file change, so the live state is exactly
  // what per-instruction execution produces.
  for (std::size_t k = 0; k < G; ++k) {
    if (g.commit[k] < 0) {
      ++eng_.fused_elided;
      continue;
    }
    const auto dst = static_cast<std::uint32_t>(g.commit[k]);
    if (gc[k].op == Op::Select) {
      sel_buf.reset_size(static_cast<std::size_t>(sel_total));
      set_reg(dst, std::move(sel_buf), gc[k]);
    } else {
      set_reg(dst, std::move(bufs[k]), gc[k]);
    }
  }
  ++eng_.fused_groups;
  eng_.fused_instrs += G;

  // Synthesize the per-instruction charges the unfused engine would have
  // made: every in-group value has the common extent n (the ops are all
  // length-preserving), except the Select output, whose true length the
  // pack cursor just measured.
  executed += G;
  result.cost.time = sat_add(result.cost.time, G);
  std::uint64_t wk[FusedGroup::kMaxFusedGroup];
  for (std::size_t k = 0; k < G; ++k) {
    std::uint64_t w = 0;
    std::uint64_t ml = n;
    switch (gc[k].op) {
      case Op::Move:
      case Op::Enumerate:
      case Op::ScanPlus:
        w = sat_add(n, n);  // input + output
        break;
      case Op::Arith:
        w = sat_add(sat_add(n, n), n);  // a, b, out
        break;
      case Op::Select:
        w = sat_add(n, sel_total);
        if (sel_total > ml) ml = sel_total;
        break;
      default:
        break;
    }
    wk[k] = w;
    result.cost.work = sat_add(result.cost.work, w);
    if (cfg_.record_trace) {
      result.trace.push_back(
          {gc[k].op, w, ml, static_cast<std::uint64_t>(g.begin + k)});
    }
  }
  if (prof) {
    // count/work/bytes are the deterministic contract and synthesized
    // exactly; wall time (one measurement for the whole group) is split
    // evenly and the chunk delta lands on the head slot -- both are
    // documented as run-to-run-variable.
    const auto total_ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             t0)
            .count());
    for (std::size_t k = 0; k < G; ++k) {
      InstrProfile& ip = result.profile[g.begin + k];
      ip.count += 1;
      ip.work = sat_add(ip.work, wk[k]);
      ip.bytes = sat_add(ip.bytes, sat_mul(wk[k], 8));
      ip.wall_ns += total_ns / G;
    }
    result.profile[g.begin].wall_ns += total_ns % G;
    result.profile[g.begin].chunks += parallel_chunk_count() - chunks_before;
  }
  return true;
}

RunResult Engine::exec() {
  RunResult result;
  std::size_t pc = 0;
  std::uint64_t executed = 0;
  const bool par = par_;
  const bool prof = cfg_.profile;
  using Clock = std::chrono::steady_clock;
  Clock::time_point run_start;
  ParallelCounters par_before;
  if (prof) {
    result.profile.assign(p_.code.size(), InstrProfile{});
    par_before = parallel_counters();
    run_start = Clock::now();
  }

  while (pc < p_.code.size()) {
    if (!group_at_.empty() && group_at_[pc] >= 0) {
      const FusedGroup& g =
          p_.fusion[static_cast<std::size_t>(group_at_[pc])];
      if (try_fused(g, executed, result)) {
        pc = g.end;
        continue;
      }
      // Fall through: the group's range executes per-instruction (the
      // plan only ever matches the group head, so no re-entry mid-group).
    }
    const Instr& instr = p_.code[pc];
    if (++executed > cfg_.max_instructions) {
      throw FuelExhausted("BVRAM exceeded " +
                          std::to_string(cfg_.max_instructions) +
                          " instructions");
    }
    std::uint64_t work = 0;
    std::uint64_t max_len = 0;
    auto charge = [&](std::size_t len) {
      work = sat_add(work, len);
      if (len > max_len) max_len = len;
    };
    std::size_t next = pc + 1;
    std::uint64_t chunks_before = 0;
    Clock::time_point instr_start;
    if (prof) {
      chunks_before = parallel_chunk_count();
      instr_start = Clock::now();
    }

    switch (instr.op) {
      case Op::Move: {
        Buf& a = reg_of(instr.a, instr);
        const std::size_t n = a.size();
        charge(n);
        charge(n);  // input + output
        if (instr.dst == instr.a) break;
        if (operand_dies(pc, 0)) {
          // The source is dead: dst takes its buffer, and the displaced
          // dst buffer parks in the (dead) source register until it is
          // next overwritten.  O(1), charged 2n all the same.
          ++eng_.move_swaps;
          reg_of(instr.dst, instr).swap(a);
        } else {
          Buf out = acquire(n);
          copy_range(out.data(), a.data(), n);
          set_reg(instr.dst, std::move(out), instr);
        }
        break;
      }
      case Op::Arith: {
        Buf& a = reg_of(instr.a, instr);
        Buf& b = reg_of(instr.b, instr);
        if (a.size() != b.size()) fail(instr, "length mismatch");
        const std::size_t n = a.size();
        const ArithOp op = instr.aop;
        const std::uint64_t* pa = a.data();
        const std::uint64_t* pb = b.data();
        auto compute_into = [&](std::uint64_t* out) {
          if (par) {
            parallel_for(n, [&](std::size_t lo, std::size_t hi) {
              arith_range(op, out, pa, pb, lo, hi);
            });
          } else {
            arith_range(op, out, pa, pb, 0, n);
          }
        };
        charge(n);
        charge(n);
        charge(n);  // a, b, out: all length n
        if (instr.dst == instr.a || instr.dst == instr.b) {
          // dst aliases a source: index-aligned in-place update.
          ++eng_.inplace_hits;
          compute_into(reg_of(instr.dst, instr).data());
        } else if (operand_dies(pc, 0)) {
          ++eng_.inplace_hits;
          compute_into(a.data());
          set_reg(instr.dst, std::move(a), instr);
        } else if (operand_dies(pc, 1)) {
          ++eng_.inplace_hits;
          compute_into(b.data());
          set_reg(instr.dst, std::move(b), instr);
        } else {
          Buf out = acquire(n);
          compute_into(out.data());
          set_reg(instr.dst, std::move(out), instr);
        }
        break;
      }
      case Op::LoadEmpty: {
        reg_of(instr.dst, instr).clear();  // keeps the buffer for reuse
        work = 1;
        break;
      }
      case Op::LoadConst: {
        Buf& d = reg_of(instr.dst, instr);
        d.reset_size(1);
        d[0] = instr.imm;
        work = 1;
        max_len = 1;
        break;
      }
      case Op::Append: {
        Buf& a = reg_of(instr.a, instr);
        Buf& b = reg_of(instr.b, instr);
        const std::size_t na = a.size();
        const std::size_t nb = b.size();
        charge(na);
        charge(nb);
        charge(na + nb);
        if ((instr.dst == instr.a || operand_dies(pc, 0)) &&
            a.capacity() >= na + nb) {
          // The left source dies here (or doubles as dst) and its buffer
          // already has room: keep the first na slots in place and copy
          // only the right source after them (the Select-in-place
          // pattern).  b's pointer is read before the size reset; within
          // capacity the reset never reallocates, so it stays valid even
          // when b aliases a, and when b aliases dst the displaced buffer
          // is recycled only after the copy.
          ++eng_.inplace_hits;
          const std::uint64_t* pb = b.data();
          a.reset_size(na + nb);
          copy_range(a.data() + na, pb, nb);
          if (instr.dst != instr.a) set_reg(instr.dst, std::move(a), instr);
          break;
        }
        Buf out = acquire(na + nb);
        copy_range(out.data(), a.data(), na);
        copy_range(out.data() + na, b.data(), nb);
        set_reg(instr.dst, std::move(out), instr);
        break;
      }
      case Op::Length: {
        Buf& a = reg_of(instr.a, instr);
        const std::uint64_t n = a.size();
        charge(a.size());
        work = sat_add(work, 1);
        Buf& d = reg_of(instr.dst, instr);
        d.reset_size(1);
        d[0] = n;
        break;
      }
      case Op::Enumerate: {
        Buf& a = reg_of(instr.a, instr);
        const std::size_t n = a.size();
        auto fill = [&](std::uint64_t* out) {
          if (par) {
            parallel_for(n, [&](std::size_t lo, std::size_t hi) {
              for (std::size_t i = lo; i < hi; ++i) out[i] = i;
            });
          } else {
            for (std::size_t i = 0; i < n; ++i) out[i] = i;
          }
        };
        charge(n);
        charge(n);  // input + output
        if (instr.dst == instr.a) {
          ++eng_.inplace_hits;
          fill(a.data());
        } else if (operand_dies(pc, 0)) {
          ++eng_.inplace_hits;
          fill(a.data());
          set_reg(instr.dst, std::move(a), instr);
        } else {
          Buf out = acquire(n);
          fill(out.data());
          set_reg(instr.dst, std::move(out), instr);
        }
        break;
      }
      case Op::BmRoute: {
        Buf& bound = reg_of(instr.a, instr);
        Buf& counts = reg_of(instr.b, instr);
        Buf& data = reg_of(instr.c, instr);
        if (counts.size() != data.size()) {
          fail(instr, "bm-route: counts/data length mismatch");
        }
        const std::size_t nt = counts.size();
        const std::uint64_t* cnt = counts.data();
        const std::uint64_t* dat = data.data();
        if (!par) {
          // Fused serial kernel: the certificate pins |out| to |bound|,
          // so allocate that up front and validate *while* scattering --
          // counts are read once instead of twice (sum pass + scatter
          // pass).  A trailing slack slot lets the count<=1 case (pack
          // bits, the catalog's dominant shape) store unconditionally;
          // the guard branches are never taken unless the certificate is
          // about to fail.
          const std::uint64_t bsize = bound.size();
          Buf out = acquire(static_cast<std::size_t>(bsize) + 2);
          out.reset_size(bsize);
          std::uint64_t* po = out.data();
          std::uint64_t at = 0;
          std::size_t t = 0;
          for (; t < nt; ++t) {
            if (at > bsize) break;  // sum already exceeds the bound
            const std::uint64_t c = cnt[t];
            if (c <= 1) {
              po[at] = dat[t];  // slack slot absorbs the at == bsize store
              at += c;
            } else if (c == 2 && at < bsize) {
              // Pairwise duplication (the seg-sum ladder): two
              // unconditional stores, the second into slack if need be.
              const std::uint64_t x = dat[t];
              po[at] = x;
              po[at + 1] = x;
              at += 2;
            } else if (c <= bsize - at) {
              const std::uint64_t x = dat[t];
              for (std::uint64_t r = 0; r < c; ++r) po[at++] = x;
            } else {
              break;  // this count alone overruns the bound
            }
          }
          if (t < nt || at != bsize) {
            fail(instr, "bm-route: bound length != sum of counts");
          }
          charge(bsize);
          charge(nt);
          charge(nt);
          charge(bsize);
          set_reg(instr.dst, std::move(out), instr);
          break;
        }
        // Parallel: one chunked pass over counts yields the certificate
        // sum *and* the per-chunk scatter offsets (the fused vec_sum
        // validation).
        const ChunkPlan plan = ChunkPlan::make(nt);
        std::vector<std::uint64_t> offs;
        const std::uint64_t total = parallel_scan(
            plan,
            [&](std::size_t lo, std::size_t hi) {
              std::uint64_t s = 0;
              for (std::size_t i = lo; i < hi; ++i) s = sat_add(s, cnt[i]);
              return s;
            },
            offs);
        if (total != bound.size()) {
          fail(instr, "bm-route: bound length != sum of counts");
        }
        Buf out = acquire(total);  // exact: total == |bound|
        std::uint64_t* po = out.data();
        if (total <= nt) {
          // Contraction-heavy: walk counts in order, chunked.
          for_each_chunk(plan, [&](std::size_t c, std::size_t lo,
                                   std::size_t hi) {
            std::uint64_t at = offs[c];
            for (std::size_t t = lo; t < hi; ++t) {
              const std::uint64_t x = dat[t];
              for (std::uint64_t r = 0; r < cnt[t]; ++r) po[at++] = x;
            }
          });
        } else {
          // Skew-robust parallel scatter (the Prop 2.1 balanced routing):
          // chunking over *counts* serializes skewed routes -- the
          // compiler's broadcast (a single count of n) being the extreme
          // case -- so materialize the per-element offsets and partition
          // the *output* space instead; each output chunk binary-searches
          // its starting element.
          Buf off = acquire(nt);
          std::uint64_t* poff = off.data();
          for_each_chunk(plan, [&](std::size_t c, std::size_t lo,
                                   std::size_t hi) {
            std::uint64_t at = offs[c];
            for (std::size_t t = lo; t < hi; ++t) {
              poff[t] = at;
              at = sat_add(at, cnt[t]);
            }
          });
          parallel_for(static_cast<std::size_t>(total),
                       [&](std::size_t lo, std::size_t hi) {
            std::size_t t = static_cast<std::size_t>(
                std::upper_bound(poff, poff + nt, lo) - poff) - 1;
            std::size_t pos = lo;
            while (pos < hi) {
              const std::size_t run_end = static_cast<std::size_t>(
                  std::min<std::uint64_t>(hi, poff[t] + cnt[t]));
              const std::uint64_t x = dat[t];
              for (; pos < run_end; ++pos) po[pos] = x;
              ++t;
            }
          });
          recycle(std::move(off));
        }
        charge(bound.size());
        charge(nt);
        charge(nt);
        charge(total);
        set_reg(instr.dst, std::move(out), instr);
        break;
      }
      case Op::SbmRoute: {
        Buf& bound = reg_of(instr.a, instr);
        Buf& counts = reg_of(instr.b, instr);
        Buf& data = reg_of(instr.c, instr);
        Buf& segs = reg_of(static_cast<std::uint32_t>(instr.imm), instr);
        if (counts.size() != segs.size()) {
          fail(instr, "sbm-route: counts/segs length mismatch");
        }
        const std::size_t nt = segs.size();
        const std::uint64_t* cnt = counts.data();
        const std::uint64_t* seg = segs.data();
        const std::uint64_t* dat = data.data();
        // One pass computes all three sums (both route certificates plus
        // the output size); in the parallel path it runs chunked and the
        // serial chunk-combine derives the scatter offsets.
        const ChunkPlan plan = par ? ChunkPlan::make(nt)
                                   : ChunkPlan::serial(nt);
        std::uint64_t csum = 0, ssum = 0, total = 0;
        std::vector<std::uint64_t> seg_off(plan.chunks, 0);
        std::vector<std::uint64_t> out_off(plan.chunks, 0);
        if (plan.chunks <= 1) {
          for (std::size_t t = 0; t < nt; ++t) {
            csum = sat_add(csum, cnt[t]);
            ssum = sat_add(ssum, seg[t]);
            total = sat_add(total, sat_mul(cnt[t], seg[t]));
          }
        } else {
          std::vector<std::uint64_t> csums(plan.chunks, 0);
          std::vector<std::uint64_t> ssums(plan.chunks, 0);
          std::vector<std::uint64_t> psums(plan.chunks, 0);
          for_each_chunk(plan, [&](std::size_t c, std::size_t lo,
                                   std::size_t hi) {
            std::uint64_t cs = 0, ss = 0, ps = 0;
            for (std::size_t t = lo; t < hi; ++t) {
              cs = sat_add(cs, cnt[t]);
              ss = sat_add(ss, seg[t]);
              ps = sat_add(ps, sat_mul(cnt[t], seg[t]));
            }
            csums[c] = cs;
            ssums[c] = ss;
            psums[c] = ps;
          });
          for (std::size_t c = 0; c < plan.chunks; ++c) {
            seg_off[c] = ssum;
            out_off[c] = total;
            csum = sat_add(csum, csums[c]);
            ssum = sat_add(ssum, ssums[c]);
            total = sat_add(total, psums[c]);
          }
        }
        if (csum != bound.size()) {
          fail(instr, "sbm-route: bound length != sum of counts");
        }
        if (ssum != data.size()) {
          fail(instr, "sbm-route: segment sizes don't cover the data");
        }
        Buf out = acquire(total);
        std::uint64_t* po = out.data();
        if (plan.chunks <= 1 && (!par || total <= nt)) {
          std::uint64_t at = 0;
          std::uint64_t dat_at = 0;
          for (std::size_t t = 0; t < nt; ++t) {
            const std::uint64_t len = seg[t];
            for (std::uint64_t r = 0; r < cnt[t]; ++r) {
              if (len != 0) {
                std::memcpy(po + at, dat + dat_at,
                            len * sizeof(std::uint64_t));
              }
              at += len;
            }
            dat_at += len;
          }
        } else if (!par || total <= nt) {
          for_each_chunk(plan, [&](std::size_t c, std::size_t lo,
                                   std::size_t hi) {
            std::uint64_t at = out_off[c];
            std::uint64_t dat_at = seg_off[c];
            for (std::size_t t = lo; t < hi; ++t) {
              const std::uint64_t len = seg[t];
              for (std::uint64_t r = 0; r < cnt[t]; ++r) {
                if (len != 0) {
                  std::memcpy(po + at, dat + dat_at,
                              len * sizeof(std::uint64_t));
                }
                at += len;
              }
              dat_at += len;
            }
          });
        } else {
          // Skew-robust parallel scatter over the *output* space (see
          // BmRoute): a single segment replicated n times -- the flattened
          // cartesian product -- would otherwise run on one chunk.
          Buf off = acquire(nt);       // output offset per segment t
          Buf doff = acquire(nt);      // data offset per segment t
          std::uint64_t* poff = off.data();
          std::uint64_t* pdoff = doff.data();
          for_each_chunk(plan, [&](std::size_t c, std::size_t lo,
                                   std::size_t hi) {
            std::uint64_t at = out_off[c];
            std::uint64_t dat_at = seg_off[c];
            for (std::size_t t = lo; t < hi; ++t) {
              poff[t] = at;
              pdoff[t] = dat_at;
              at = sat_add(at, sat_mul(cnt[t], seg[t]));
              dat_at = sat_add(dat_at, seg[t]);
            }
          });
          parallel_for(static_cast<std::size_t>(total),
                       [&](std::size_t lo, std::size_t hi) {
            std::size_t t = static_cast<std::size_t>(
                std::upper_bound(poff, poff + nt, lo) - poff) - 1;
            std::size_t pos = lo;
            while (pos < hi) {
              const std::uint64_t len = seg[t];
              const std::uint64_t block_end =
                  poff[t] + sat_mul(cnt[t], len);
              while (pos < hi && pos < block_end) {
                // Position inside segment t's replicated block: copy to
                // the end of the current repetition (or the chunk).
                const std::uint64_t rel = pos - poff[t];
                const std::uint64_t within = rel % len;
                const std::size_t stop = static_cast<std::size_t>(
                    std::min<std::uint64_t>({hi, block_end,
                                             pos + (len - within)}));
                std::memcpy(po + pos, dat + pdoff[t] + within,
                            (stop - pos) * sizeof(std::uint64_t));
                pos = stop;
              }
              ++t;
            }
          });
          recycle(std::move(off));
          recycle(std::move(doff));
        }
        charge(bound.size());
        charge(counts.size());
        charge(data.size());
        charge(segs.size());
        charge(total);
        set_reg(instr.dst, std::move(out), instr);
        break;
      }
      case Op::Select: {
        Buf& a = reg_of(instr.a, instr);
        const std::size_t n = a.size();
        const std::uint64_t* pa = a.data();
        const ChunkPlan plan =
            par ? ChunkPlan::make(n) : ChunkPlan::serial(n);
        Buf out;
        std::uint64_t total = 0;
        if (plan.chunks <= 1 &&
            (instr.dst == instr.a || operand_dies(pc, 0))) {
          // The source dies here (or doubles as dst): pack in place over
          // its own buffer.  The write index never passes the read index
          // (total <= i), so the unconditional store stays behind the
          // scan and inside the buffer -- no slack slot, no acquire.
          ++eng_.inplace_hits;
          std::uint64_t* po = a.data();
          for (std::size_t i = 0; i < n; ++i) {
            po[total] = pa[i];
            total += pa[i] != 0 ? 1 : 0;
          }
          a.reset_size(static_cast<std::size_t>(total));  // shrink: free
          charge(n);
          charge(total);
          if (instr.dst != instr.a) {
            set_reg(instr.dst, std::move(a), instr);
          }
          break;
        }
        if (plan.chunks <= 1) {
          // One-pass branchless pack into an upper-bound buffer (plus one
          // slack slot for the unconditional store); shrinking afterwards
          // is free (capacity is kept).
          out = acquire(n + 1);
          std::uint64_t* po = out.data();
          for (std::size_t i = 0; i < n; ++i) {
            po[total] = pa[i];
            total += pa[i] != 0 ? 1 : 0;
          }
          out.reset_size(total);
        } else {
          // Count / scan / scatter: the count pass doubles as the offset
          // computation, the scatter preserves order within each chunk.
          std::vector<std::uint64_t> offs;
          total = parallel_scan(
              plan,
              [&](std::size_t lo, std::size_t hi) {
                std::uint64_t k = 0;
                for (std::size_t i = lo; i < hi; ++i) {
                  k += pa[i] != 0 ? 1 : 0;
                }
                return k;
              },
              offs);
          out = acquire(total);
          std::uint64_t* po = out.data();
          for_each_chunk(plan, [&](std::size_t c, std::size_t lo,
                                   std::size_t hi) {
            std::uint64_t at = offs[c];
            for (std::size_t i = lo; i < hi; ++i) {
              if (pa[i] != 0) po[at++] = pa[i];
            }
          });
        }
        charge(n);
        charge(total);
        set_reg(instr.dst, std::move(out), instr);
        break;
      }
      case Op::ScanPlus: {
        Buf& a = reg_of(instr.a, instr);
        const std::size_t n = a.size();
        const std::uint64_t* pa = a.data();
        auto scan_into = [&](std::uint64_t* out) {
          const ChunkPlan plan =
              par ? ChunkPlan::make(n) : ChunkPlan::serial(n);
          if (plan.chunks <= 1) {
            std::uint64_t acc = 0;
            for (std::size_t i = 0; i < n; ++i) {
              const std::uint64_t x = pa[i];  // read before an aliased write
              out[i] = acc;
              acc = sat_add(acc, x);
            }
            return;
          }
          // Two-pass block scan; the sum pass completes (a barrier) before
          // the emit pass writes, so in-place aliasing is safe.
          std::vector<std::uint64_t> offs;
          parallel_scan(
              plan,
              [&](std::size_t lo, std::size_t hi) {
                std::uint64_t s = 0;
                for (std::size_t i = lo; i < hi; ++i) s = sat_add(s, pa[i]);
                return s;
              },
              offs);
          for_each_chunk(plan, [&](std::size_t c, std::size_t lo,
                                   std::size_t hi) {
            std::uint64_t acc = offs[c];
            for (std::size_t i = lo; i < hi; ++i) {
              const std::uint64_t x = pa[i];
              out[i] = acc;
              acc = sat_add(acc, x);
            }
          });
        };
        charge(n);
        charge(n);  // input + output
        if (instr.dst == instr.a) {
          ++eng_.inplace_hits;
          scan_into(a.data());
        } else if (operand_dies(pc, 0)) {
          ++eng_.inplace_hits;
          scan_into(a.data());
          set_reg(instr.dst, std::move(a), instr);
        } else {
          Buf out = acquire(n);
          scan_into(out.data());
          set_reg(instr.dst, std::move(out), instr);
        }
        break;
      }
      case Op::Goto: {
        if (instr.target > p_.code.size()) fail(instr, "bad jump");
        next = instr.target;
        work = 1;
        break;
      }
      case Op::GotoIfEmpty: {
        Buf& a = reg_of(instr.a, instr);
        charge(a.size());
        work = sat_add(work, 1);
        // Validated on both edges: a bad target is a program bug even when
        // the branch is not taken this time around.
        if (instr.target > p_.code.size()) fail(instr, "bad jump");
        if (a.empty()) next = instr.target;
        break;
      }
      case Op::Halt: {
        work = 1;
        next = p_.code.size();
        break;
      }
    }

    result.cost.time = sat_add(result.cost.time, 1);
    result.cost.work = sat_add(result.cost.work, work);
    if (prof) {
      InstrProfile& ip = result.profile[pc];
      ip.count += 1;
      ip.wall_ns += static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                               instr_start)
              .count());
      ip.work = sat_add(ip.work, work);
      ip.bytes = sat_add(ip.bytes, sat_mul(work, 8));
      ip.chunks += parallel_chunk_count() - chunks_before;
    }
    if (cfg_.record_trace) {
      result.trace.push_back(
          {instr.op, work, max_len, static_cast<std::uint64_t>(pc)});
    }
    pc = next;
  }

  result.outputs.reserve(p_.num_outputs);
  for (std::size_t i = 0; i < p_.num_outputs; ++i) {
    result.outputs.push_back(regs_[i].to_vec());
  }
  if (cfg_.arena != nullptr) {
    // Outputs are deep-copied above, so the whole register file can be
    // parked in the arena for the next run to reuse.
    for (Buf& b : regs_) pool_->recycle(std::move(b));
  }
  if (prof) {
    eng_.wall_ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             run_start)
            .count());
    const ParallelCounters after = parallel_counters();
    eng_.par_kernels = after.calls - par_before.calls;
    eng_.par_chunks = after.chunks - par_before.chunks;
    eng_.par_serial = after.serial_calls - par_before.serial_calls;
    eng_.pool_hits = pool_->hits() - pool_hits0_;
    eng_.pool_misses = pool_->misses() - pool_misses0_;
    result.engine = eng_;
  }
  return result;
}

}  // namespace

RunResult run(const Program& program, const std::vector<Vec>& inputs,
              const RunConfig& cfg) {
  check_io_shape(program, inputs);
  Engine engine(program, inputs, cfg);
  return engine.exec();
}

// ---------------------------------------------------------------------------
// The v1 reference interpreter
// ---------------------------------------------------------------------------
// Kept verbatim (fresh output vector per instruction, deep-copying Move,
// serial kernels for everything but Arith/Enumerate) as the differential
// baseline: tests assert run() produces bit-identical outputs, traps, T,
// W, and traces; bench_machine measures the v1 -> v2 speedup.

RunResult run_reference(const Program& program, const std::vector<Vec>& inputs,
                        const RunConfig& cfg) {
  check_io_shape(program, inputs);
  std::vector<Vec> regs(program.num_regs);
  for (std::size_t i = 0; i < inputs.size(); ++i) regs[i] = inputs[i];

  auto reg_of = [&](std::uint32_t r, const Instr& instr) -> Vec& {
    if (r >= regs.size()) fail(instr, "register out of range");
    return regs[r];
  };

  RunResult result;
  std::size_t pc = 0;
  std::uint64_t executed = 0;
  const bool prof = cfg.profile;
  using Clock = std::chrono::steady_clock;
  Clock::time_point run_start;
  ParallelCounters par_before;
  if (prof) {
    result.profile.assign(program.code.size(), InstrProfile{});
    par_before = parallel_counters();
    run_start = Clock::now();
  }

  while (pc < program.code.size()) {
    const Instr& instr = program.code[pc];
    if (++executed > cfg.max_instructions) {
      throw FuelExhausted("BVRAM exceeded " +
                          std::to_string(cfg.max_instructions) +
                          " instructions");
    }
    std::uint64_t work = 0;
    std::uint64_t max_len = 0;
    auto charge = [&](const Vec& v) {
      work = sat_add(work, v.size());
      if (v.size() > max_len) max_len = v.size();
    };
    std::size_t next = pc + 1;
    std::uint64_t chunks_before = 0;
    Clock::time_point instr_start;
    if (prof) {
      chunks_before = parallel_chunk_count();
      instr_start = Clock::now();
    }

    switch (instr.op) {
      case Op::Move: {
        Vec out = reg_of(instr.a, instr);
        charge(out);
        charge(out);  // input + output
        reg_of(instr.dst, instr) = std::move(out);
        break;
      }
      case Op::Arith: {
        const Vec& a = reg_of(instr.a, instr);
        const Vec& b = reg_of(instr.b, instr);
        if (a.size() != b.size()) fail(instr, "length mismatch");
        Vec out(a.size());
        const auto op = instr.aop;
        auto body = [&](std::size_t lo, std::size_t hi) {
          for (std::size_t i = lo; i < hi; ++i) {
            out[i] = lang::arith_apply(op, a[i], b[i]);
          }
        };
        if (cfg.parallel_backend) {
          parallel_for(a.size(), body);
        } else {
          body(0, a.size());
        }
        charge(a);
        charge(b);
        charge(out);
        reg_of(instr.dst, instr) = std::move(out);
        break;
      }
      case Op::LoadEmpty: {
        reg_of(instr.dst, instr).clear();
        work = 1;
        break;
      }
      case Op::LoadConst: {
        reg_of(instr.dst, instr) = Vec{instr.imm};
        work = 1;
        max_len = 1;
        break;
      }
      case Op::Append: {
        const Vec& a = reg_of(instr.a, instr);
        const Vec& b = reg_of(instr.b, instr);
        Vec out;
        out.reserve(a.size() + b.size());
        out.insert(out.end(), a.begin(), a.end());
        out.insert(out.end(), b.begin(), b.end());
        charge(a);
        charge(b);
        charge(out);
        reg_of(instr.dst, instr) = std::move(out);
        break;
      }
      case Op::Length: {
        const Vec& a = reg_of(instr.a, instr);
        charge(a);
        reg_of(instr.dst, instr) = Vec{a.size()};
        work = sat_add(work, 1);
        break;
      }
      case Op::Enumerate: {
        const Vec& a = reg_of(instr.a, instr);
        Vec out(a.size());
        auto body = [&](std::size_t lo, std::size_t hi) {
          for (std::size_t i = lo; i < hi; ++i) out[i] = i;
        };
        if (cfg.parallel_backend) {
          parallel_for(a.size(), body);
        } else {
          body(0, a.size());
        }
        charge(a);
        charge(out);
        reg_of(instr.dst, instr) = std::move(out);
        break;
      }
      case Op::BmRoute: {
        const Vec& bound = reg_of(instr.a, instr);
        const Vec& counts = reg_of(instr.b, instr);
        const Vec& data = reg_of(instr.c, instr);
        if (counts.size() != data.size()) {
          fail(instr, "bm-route: counts/data length mismatch");
        }
        if (vec_sum(counts) != bound.size()) {
          fail(instr, "bm-route: bound length != sum of counts");
        }
        Vec out;
        out.reserve(bound.size());
        for (std::size_t t = 0; t < data.size(); ++t) {
          for (std::uint64_t r = 0; r < counts[t]; ++r) out.push_back(data[t]);
        }
        charge(bound);
        charge(counts);
        charge(data);
        charge(out);
        reg_of(instr.dst, instr) = std::move(out);
        break;
      }
      case Op::SbmRoute: {
        const Vec& bound = reg_of(instr.a, instr);
        const Vec& counts = reg_of(instr.b, instr);
        const Vec& data = reg_of(instr.c, instr);
        const Vec& segs =
            reg_of(static_cast<std::uint32_t>(instr.imm), instr);
        if (counts.size() != segs.size()) {
          fail(instr, "sbm-route: counts/segs length mismatch");
        }
        if (vec_sum(counts) != bound.size()) {
          fail(instr, "sbm-route: bound length != sum of counts");
        }
        if (vec_sum(segs) != data.size()) {
          fail(instr, "sbm-route: segment sizes don't cover the data");
        }
        Vec out;
        std::size_t at = 0;
        for (std::size_t t = 0; t < segs.size(); ++t) {
          const std::size_t len = segs[t];
          for (std::uint64_t r = 0; r < counts[t]; ++r) {
            out.insert(out.end(), data.begin() + at, data.begin() + at + len);
          }
          at += len;
        }
        charge(bound);
        charge(counts);
        charge(data);
        charge(segs);
        charge(out);
        reg_of(instr.dst, instr) = std::move(out);
        break;
      }
      case Op::Select: {
        const Vec& a = reg_of(instr.a, instr);
        Vec out;
        for (auto x : a) {
          if (x != 0) out.push_back(x);
        }
        charge(a);
        charge(out);
        reg_of(instr.dst, instr) = std::move(out);
        break;
      }
      case Op::ScanPlus: {
        const Vec& a = reg_of(instr.a, instr);
        Vec out(a.size());
        std::uint64_t acc = 0;
        for (std::size_t i = 0; i < a.size(); ++i) {
          out[i] = acc;
          acc = sat_add(acc, a[i]);
        }
        charge(a);
        charge(out);
        reg_of(instr.dst, instr) = std::move(out);
        break;
      }
      case Op::Goto: {
        if (instr.target > program.code.size()) fail(instr, "bad jump");
        next = instr.target;
        work = 1;
        break;
      }
      case Op::GotoIfEmpty: {
        const Vec& a = reg_of(instr.a, instr);
        charge(a);
        work = sat_add(work, 1);
        if (instr.target > program.code.size()) fail(instr, "bad jump");
        if (a.empty()) next = instr.target;
        break;
      }
      case Op::Halt: {
        work = 1;
        next = program.code.size();
        break;
      }
    }

    result.cost.time = sat_add(result.cost.time, 1);
    result.cost.work = sat_add(result.cost.work, work);
    if (prof) {
      InstrProfile& ip = result.profile[pc];
      ip.count += 1;
      ip.wall_ns += static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                               instr_start)
              .count());
      ip.work = sat_add(ip.work, work);
      ip.bytes = sat_add(ip.bytes, sat_mul(work, 8));
      ip.chunks += parallel_chunk_count() - chunks_before;
    }
    if (cfg.record_trace) {
      result.trace.push_back(
          {instr.op, work, max_len, static_cast<std::uint64_t>(pc)});
    }
    pc = next;
  }

  result.outputs.assign(regs.begin(), regs.begin() + program.num_outputs);
  if (prof) {
    // The reference interpreter has no buffer pool or in-place paths, so
    // only the wall clock and the parallel-dispatch deltas are meaningful.
    result.engine.wall_ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             run_start)
            .count());
    const ParallelCounters after = parallel_counters();
    result.engine.par_kernels = after.calls - par_before.calls;
    result.engine.par_chunks = after.chunks - par_before.chunks;
    result.engine.par_serial = after.serial_calls - par_before.serial_calls;
  }
  return result;
}

// ---------------------------------------------------------------------------
// Assembler
// ---------------------------------------------------------------------------

std::uint32_t Assembler::reg() { return next_reg_++; }

void Assembler::reserve_regs(std::size_t n) {
  if (next_reg_ < n) next_reg_ = static_cast<std::uint32_t>(n);
}

void Assembler::push(Instr in) {
  in.dbg = site_;
  code_.push_back(in);
}

void Assembler::move(std::uint32_t dst, std::uint32_t src) {
  push({Op::Move, ArithOp::Add, dst, src, 0, 0, 0, 0});
}

void Assembler::arith(std::uint32_t dst, ArithOp op, std::uint32_t a,
                      std::uint32_t b) {
  push({Op::Arith, op, dst, a, b, 0, 0, 0});
}

void Assembler::load_empty(std::uint32_t dst) {
  push({Op::LoadEmpty, ArithOp::Add, dst, 0, 0, 0, 0, 0});
}

void Assembler::load_const(std::uint32_t dst, std::uint64_t n) {
  push({Op::LoadConst, ArithOp::Add, dst, 0, 0, 0, n, 0});
}

void Assembler::append(std::uint32_t dst, std::uint32_t a, std::uint32_t b) {
  push({Op::Append, ArithOp::Add, dst, a, b, 0, 0, 0});
}

void Assembler::length(std::uint32_t dst, std::uint32_t src) {
  push({Op::Length, ArithOp::Add, dst, src, 0, 0, 0, 0});
}

void Assembler::enumerate(std::uint32_t dst, std::uint32_t src) {
  push({Op::Enumerate, ArithOp::Add, dst, src, 0, 0, 0, 0});
}

void Assembler::bm_route(std::uint32_t dst, std::uint32_t bound,
                         std::uint32_t counts, std::uint32_t data) {
  push({Op::BmRoute, ArithOp::Add, dst, bound, counts, data, 0, 0});
}

void Assembler::sbm_route(std::uint32_t dst, std::uint32_t bound,
                          std::uint32_t counts, std::uint32_t data,
                          std::uint32_t segs) {
  push({Op::SbmRoute, ArithOp::Add, dst, bound, counts, data, segs, 0});
}

void Assembler::select(std::uint32_t dst, std::uint32_t src) {
  push({Op::Select, ArithOp::Add, dst, src, 0, 0, 0, 0});
}

void Assembler::scan_plus(std::uint32_t dst, std::uint32_t src) {
  push({Op::ScanPlus, ArithOp::Add, dst, src, 0, 0, 0, 0});
}

void Assembler::halt() {
  push({Op::Halt, ArithOp::Add, 0, 0, 0, 0, 0, 0});
}

Assembler::Label Assembler::fresh_label() {
  label_addr_.push_back(-1);
  return label_addr_.size() - 1;
}

void Assembler::bind(Label l) {
  check_label(l);
  if (label_addr_[l] >= 0) {
    throw MachineError("label L" + std::to_string(l) + " bound twice");
  }
  label_addr_[l] = static_cast<std::ptrdiff_t>(code_.size());
}

void Assembler::jump(Label l) {
  check_label(l);
  fixups_.emplace_back(code_.size(), l);
  push({Op::Goto, ArithOp::Add, 0, 0, 0, 0, 0, 0});
}

void Assembler::jump_if_empty(std::uint32_t reg, Label l) {
  check_label(l);
  fixups_.emplace_back(code_.size(), l);
  push({Op::GotoIfEmpty, ArithOp::Add, 0, reg, 0, 0, 0, 0});
}

void Assembler::check_label(Label l) const {
  if (l >= label_addr_.size()) {
    throw MachineError("unknown label L" + std::to_string(l) +
                       " (only " + std::to_string(label_addr_.size()) +
                       " labels allocated)");
  }
}

Program Assembler::finish(std::size_t num_inputs, std::size_t num_outputs) {
  for (const auto& [at, label] : fixups_) {
    const std::ptrdiff_t addr = label_addr_[label];
    if (addr < 0) {
      throw MachineError("unbound label L" + std::to_string(label) +
                         " referenced by instruction " + std::to_string(at) +
                         " `" + code_[at].show() + "`");
    }
    code_[at].target = static_cast<std::size_t>(addr);
  }
  // Every jump target -- including the not-taken edge of GotoIfEmpty --
  // must land inside [0, code.size()] (code.size() is the exit).  Label
  // resolution guarantees this for targets produced above; the check
  // still guards instruction sequences spliced in by future emitters.
  for (std::size_t i = 0; i < code_.size(); ++i) {
    if (code_[i].is_jump() && code_[i].target > code_.size()) {
      throw MachineError("jump target " + std::to_string(code_[i].target) +
                         " out of range in `" + code_[i].show() + "` at " +
                         std::to_string(i));
    }
  }
  Program p;
  p.num_regs = next_reg_;
  p.num_inputs = num_inputs;
  p.num_outputs = num_outputs;
  p.code = std::move(code_);
  return p;
}

}  // namespace nsc::bvram
