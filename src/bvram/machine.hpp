// The Bounded Vector Random Access Machine (paper section 2).
//
// A BVRAM has a *fixed* number of vector registers V_0 .. V_{r-1}, each
// holding a finite sequence of naturals.  There are no scalar registers --
// a number is a sequence of length 1 -- and, crucially, no runtime vector
// stack: the register count is part of the machine, which is the paper's
// point of departure from Blelloch's VRAM.
//
// Instruction set (section 2):
//   Move        V_i <- V_j
//   Arith       V_i <- V_j op V_k        (elementwise; lengths must match)
//   LoadEmpty   V_i <- []
//   LoadConst   V_i <- [n]
//   Append      V_i <- V_j @ V_k
//   Length      V_i <- [length(V_j)]
//   Enumerate   V_i <- [0, 1, ..., length(V_j) - 1]
//   BmRoute     V_i <- bm-route(V_j, V_k, V_l):  element t of V_l is
//               replicated V_k[t] times; V_j is the "bound": its length
//               must equal sum(V_k)   (so the output size is pre-budgeted).
//   SbmRoute    V_i <- sbm-route(V_j, V_k, V_l, V_m): V_l is split into
//               subsequences by V_m; subsequence t is replicated V_k[t]
//               times.  (V_j, V_k) must be a nested sequence (len V_j =
//               sum V_k) and length(V_k) = length(V_m).
//   Select      V_i <- sigma(V_j): pack the nonzero values of V_j.
//   ScanPlus    V_i <- exclusive prefix sums of V_j.
//               *Extension*: not in the paper's base ISA; added under the
//               paper's own robustness remark ("theorem 7.1 can be extended
//               ... provided corresponding instructions are added to the
//               BVRAM", section 3, which names scan explicitly).  Needed by
//               the flattening of sigma/enumerate (the extended abstract
//               omits the segment-descriptor bookkeeping).  Prop 2.1 is
//               preserved: a scan runs in O(log n) butterfly steps
//               (see butterfly/).
//   Goto        unconditional jump
//   GotoIfEmpty if empty?(V_j) then goto l
//   Halt
//
// Costs (section 2): T counts executed instructions (1 each); W charges
// each instruction the sum of the lengths of its input and output
// registers.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "bvram/pool.hpp"  // Buf / BufferPool (RunConfig::arena)
#include "nsc/ast.hpp"     // ArithOp (the shared operation set Sigma)
#include "obs/debuginfo.hpp"
#include "support/cost.hpp"
#include "support/error.hpp"

namespace nsc::bvram {

using lang::ArithOp;

enum class Op {
  Move,
  Arith,
  LoadEmpty,
  LoadConst,
  Append,
  Length,
  Enumerate,
  BmRoute,
  SbmRoute,
  Select,
  ScanPlus,
  Goto,
  GotoIfEmpty,
  Halt,
};

const char* op_name(Op op);

/// One instruction.  Register operands are indices into the machine's
/// register file; `target` is an instruction index for jumps.
///
/// Note: `SbmRoute` carries its fourth register operand (the segment
/// lengths) in `imm`; use `srcs()`/`map_srcs()` below rather than reading
/// the fields positionally.
struct Instr {
  Op op = Op::Halt;
  ArithOp aop = ArithOp::Add;
  std::uint32_t dst = 0;
  std::uint32_t a = 0;
  std::uint32_t b = 0;
  std::uint32_t c = 0;
  std::uint64_t imm = 0;
  std::size_t target = 0;
  /// Debug-site index into the owning Program's DebugTable (0 = unknown).
  /// Pure metadata: never read by the execution engines or the cost model.
  /// Passes that rewrite an instruction in place must leave it; passes
  /// that derive a new instruction from an old one must copy it (see
  /// obs/debuginfo.hpp for the full invariants).
  std::uint32_t dbg = 0;

  std::string show() const;

  // -- accessors for the CFG / dataflow passes in src/opt/ ----------------

  /// How many source registers each op reads.  They occupy the fields
  /// a, b, c, then (for SbmRoute only) imm, in that order -- this is the
  /// single authoritative operand-shape table; srcs() and map_srcs()
  /// below both derive from it.
  static constexpr std::size_t src_count(Op op) {
    switch (op) {
      case Op::Move:
      case Op::Length:
      case Op::Enumerate:
      case Op::Select:
      case Op::ScanPlus:
      case Op::GotoIfEmpty:
        return 1;
      case Op::Arith:
      case Op::Append:
        return 2;
      case Op::BmRoute:
        return 3;
      case Op::SbmRoute:
        return 4;
      case Op::LoadEmpty:
      case Op::LoadConst:
      case Op::Goto:
      case Op::Halt:
        return 0;
    }
    return 0;
  }

  /// The registers this instruction reads (0..4 of them).
  struct Srcs {
    std::uint32_t regs[4] = {0, 0, 0, 0};
    std::size_t n = 0;
    const std::uint32_t* begin() const { return regs; }
    const std::uint32_t* end() const { return regs + n; }
  };
  Srcs srcs() const {
    Srcs s;
    s.n = src_count(op);
    const std::uint32_t fields[4] = {a, b, c,
                                     static_cast<std::uint32_t>(imm)};
    for (std::size_t i = 0; i < s.n; ++i) s.regs[i] = fields[i];
    return s;
  }

  /// Whether this instruction writes `dst`.
  bool has_dst() const {
    return op != Op::Goto && op != Op::GotoIfEmpty && op != Op::Halt;
  }

  /// Whether this instruction transfers control (reads `target`).
  bool is_jump() const { return op == Op::Goto || op == Op::GotoIfEmpty; }

  /// Whether execution can raise a MachineError/EvalError even when every
  /// register operand is in range: Arith (length mismatch, division by
  /// zero) and the routing instructions (bound/segment certificates).
  /// Such instructions must survive dead-code elimination.
  bool can_trap() const {
    return op == Op::Arith || op == Op::BmRoute || op == Op::SbmRoute;
  }

  /// Apply `f : reg -> reg` to every source-register operand in place
  /// (dst and jump targets are untouched).
  template <typename F>
  void map_srcs(F&& f) {
    const std::size_t n = src_count(op);
    if (n >= 1) a = f(a);
    if (n >= 2) b = f(b);
    if (n >= 3) c = f(c);
    if (n >= 4) imm = f(static_cast<std::uint32_t>(imm));
  }
};

/// A fused super-instruction: a run of adjacent elementwise instructions
/// [begin, end) -- Arith, Move, Enumerate, plus a mid-group ScanPlus or a
/// terminal Select -- that the execution engine may run as a single pass
/// over the lanes, staging every intermediate value in a small per-lane
/// scratch instead of materializing it as a register-sized buffer.
///
/// The plan is pure annotation, produced by opt::annotate_fusion and
/// carried alongside the instructions it describes (which are retained
/// unchanged, so disassembly, traces, and run_reference never see it).
/// Like Program::last_use it describes one exact instruction sequence:
/// any mutation of `code` invalidates it (the optimizer's PassManager
/// clears stale plans; re-run opt::annotate_fusion after hand edits).
///
/// Execution contract (see docs/fusion.md for the full invariants):
/// every instruction in the group writes a register ("def" d for the
/// group's d-th instruction) and reads only registers (no jumps, no
/// loads).  Reads resolve statically: either to a *group input* -- a
/// register whose value enters the group from outside -- or to an
/// earlier def.  At run time the engine requires all group inputs to
/// hold vectors of one common length; otherwise (or when the
/// instruction budget would expire mid-group, or when a lane traps) it
/// falls back to per-instruction execution of the same range, which
/// reproduces the unfused behavior -- outputs, traps, T, W, traces --
/// exactly, because the fused attempt never touches the register file
/// before the group commits.
struct FusedGroup {
  std::size_t begin = 0;
  std::size_t end = 0;  ///< exclusive; end - begin <= kMaxFusedGroup

  /// Largest group the executor accepts (bounds its per-lane scratch).
  static constexpr std::size_t kMaxFusedGroup = 48;

  /// Distinct registers read from the register file, in first-read order.
  std::vector<std::uint32_t> inputs;

  /// Where a source operand's value comes from: group input `index`
  /// (from_def == false) or the group's `index`-th def (from_def == true).
  struct Bind {
    bool from_def = false;
    std::uint32_t index = 0;
  };
  /// Operand bindings of all grouped instructions, flattened in
  /// instruction order; instruction k's bindings start at bind_base[k]
  /// and there are Instr::src_count(op) of them.
  std::vector<Bind> binds;
  std::vector<std::uint32_t> bind_base;

  /// Per def: the register this value is installed into when the group
  /// commits, or -1 for a pure intermediate -- a value that provably dies
  /// inside the group (overwritten later, or liveness-dead after its last
  /// in-group read), whose buffer is elided entirely.  A def may commit
  /// to a register other than its instruction's dst: a committed Move of
  /// an elided def sinks its commit onto the producer, so the copy
  /// disappears (the Move executes as a pointer alias).
  std::vector<std::int32_t> commit;

  /// Group contains ScanPlus (lane-carried accumulator) or Select (pack
  /// cursor): the fused loop runs serially even under the parallel
  /// backend.  Pure elementwise groups chunk with ChunkPlan.
  bool serial_only = false;
  /// end-1 is a Select; its output length is data-dependent.
  bool has_select = false;
};

/// A program plus its machine shape (register count, I/O arity).
struct Program {
  std::size_t num_regs = 0;
  std::size_t num_inputs = 0;   // inputs arrive in V_0 .. V_{num_inputs-1}
  std::size_t num_outputs = 0;  // outputs read from V_0 .. V_{num_outputs-1}
  std::vector<Instr> code;

  /// Optional per-instruction source-operand death masks, produced by
  /// opt::annotate_last_use (sa::compile_nsa / compile_nsc attach them as
  /// their final step): bit k of last_use[i] is set iff the register read
  /// by source operand k of code[i] is dead on every path after i.  The
  /// execution engine uses the masks to recycle operand buffers (see the
  /// cost-model note below); empty means "unknown", which is always safe.
  /// The masks describe this exact instruction sequence -- any mutation of
  /// `code` invalidates them (the optimizer's PassManager clears stale
  /// annotations; re-run opt::annotate_last_use after hand edits).
  std::vector<std::uint8_t> last_use;

  /// Optional fusion plan, produced by opt::annotate_fusion (attached by
  /// sa::compile_nsa / compile_nsc right after the last-use masks).  Pure
  /// annotation consumed by run() when RunConfig::fuse allows; empty means
  /// "no fusion", which is always safe.  Invalidated by any mutation of
  /// `code`, exactly like last_use.
  std::vector<FusedGroup> fusion;

  /// Interned debug sites referenced by Instr::dbg.  sa::compile_nsa /
  /// compile_nsc populate it from the NSA tree's surface locations; the
  /// default (empty) table resolves every index to the unknown site, so
  /// hand-assembled programs need no setup.  Unlike last_use this is NOT
  /// invalidated by code edits: the indices live inside the instructions.
  obs::DebugTable debug;

  /// Fraction of instructions (weighted by `weight`, e.g. executed counts;
  /// nullptr weights every slot 1) whose debug site carries a surface
  /// line.  The CI profile-smoke job gates this at >= 0.95 on the
  /// O2-compiled corpus.
  double debug_coverage(const std::vector<std::uint64_t>* weight =
                            nullptr) const;

  std::string disassemble() const;
};

/// Per-instruction work record, consumed by the PRAM scheduler (Prop 3.2)
/// and the butterfly mapper (Prop 2.1).
struct TraceEntry {
  Op op;
  std::uint64_t work;
  std::uint64_t max_len;    // longest register touched
  std::uint64_t instr = 0;  // index of the executed instruction in code
};

/// Accumulated profile for one instruction *slot* (indexed by position in
/// Program::code), collected only under RunConfig::profile.  `wall_ns` is
/// host time and varies run to run; everything else is deterministic and
/// bit-identical across engines and backends (the test_profile gate).
struct InstrProfile {
  std::uint64_t count = 0;    ///< times this slot executed
  std::uint64_t wall_ns = 0;  ///< accumulated wall-clock nanoseconds
  std::uint64_t work = 0;     ///< accumulated W charged by this slot
  std::uint64_t bytes = 0;    ///< cost-model memory traffic: 8 * work
  std::uint64_t chunks = 0;   ///< parallel chunks dispatched by its kernels
};

/// Engine-level counters, collected only under RunConfig::profile.  The
/// pool/in-place counters are v2-only (run_reference allocates per
/// instruction by design, so it reports zeros); the par_* counters are
/// deltas of the process-wide support/parallel statistics.
struct EngineProfile {
  std::uint64_t wall_ns = 0;        ///< whole-run wall clock
  std::uint64_t pool_hits = 0;      ///< acquire() served from a pooled buffer
  std::uint64_t pool_misses = 0;    ///< acquire() had to touch the allocator
  std::uint64_t inplace_hits = 0;   ///< kernel wrote over a dying operand
  std::uint64_t move_swaps = 0;     ///< Move executed as an O(1) buffer swap
  std::uint64_t par_kernels = 0;    ///< kernel invocations split into chunks
  std::uint64_t par_chunks = 0;     ///< total chunks dispatched to the pool
  std::uint64_t par_serial = 0;     ///< kernel invocations run single-chunk
  // Fused-group counters (v2-only, dynamic: counted per group *execution*,
  // so a group inside a loop counts once per trip).
  std::uint64_t fused_groups = 0;     ///< groups executed via the fused path
  std::uint64_t fused_instrs = 0;     ///< instructions covered by those groups
  std::uint64_t fused_elided = 0;     ///< intermediate buffers never built
  std::uint64_t fused_fallbacks = 0;  ///< groups bounced to per-instruction
                                      ///< execution (extent mismatch, trap,
                                      ///< budget expiry)
};

struct RunResult {
  std::vector<std::vector<std::uint64_t>> outputs;
  Cost cost;
  std::vector<TraceEntry> trace;  // only if RunConfig::record_trace
  /// Per-slot samples (size == code.size()), only if RunConfig::profile.
  std::vector<InstrProfile> profile;
  EngineProfile engine;  // only meaningful if RunConfig::profile
};

struct RunConfig {
  std::uint64_t max_instructions = std::uint64_t{1} << 32;
  bool record_trace = false;
  /// Execute the vector kernels with the thread pool (experiment E10's
  /// "real hardware" backend).  Every one of the 11 vector opcodes runs
  /// parallel under this flag -- elementwise ops by chunking, scan-plus by
  /// two-pass block scan, select by count/scan/scatter, the routes by a
  /// prefix sum over counts plus parallel scatter (the Prop 2.1 butterfly
  /// decomposition realized on the pool).  Outputs, traps, T, and W are
  /// bit-identical to the serial backend: the per-chunk partial sums
  /// combine with saturating addition, which is associative, so no result
  /// depends on the chunk decomposition.
  bool parallel_backend = false;
  /// Collect per-instruction wall time / work / traffic samples and the
  /// engine counters into RunResult::profile / RunResult::engine.  Opt-in
  /// observability: when false (the default) the engine takes no
  /// timestamps and allocates nothing extra, and outputs, traps, T, W,
  /// and traces are bit-identical either way (profiling never touches
  /// the machine state -- the differential test in test_profile.cpp).
  bool profile = false;
  /// Execute Program::fusion groups as single-pass super-instructions
  /// (when a plan is attached; programs without one run unchanged).  Like
  /// the pool and the in-place kernels this is invisible to the paper's
  /// semantics: outputs, traps, T, W, and traces are bit-identical to the
  /// unfused engine and to run_reference -- the fused executor synthesizes
  /// the per-instruction charges from the group extent and falls back to
  /// per-instruction execution whenever it could not reproduce them
  /// exactly (see FusedGroup).  Off switches the engine back to strictly
  /// per-instruction execution, the differential baseline.
  bool fuse = true;
  /// Optional cross-run register-file arena (non-owning).  When set, the
  /// engine draws every buffer -- input registers included -- from this
  /// pool instead of a private per-run one, and parks the whole register
  /// file back into it when the run finishes (outputs are copied out
  /// first).  Re-running the same program against the same arena is then
  /// allocation-free in steady state: every acquire is served by a buffer
  /// the previous run recycled (EngineProfile::pool_misses reads 0, the
  /// Arena.SteadyStateZeroAllocation gate).  Purely an allocator swap:
  /// outputs, traps, T, W, traces, and profiles are bit-identical with or
  /// without an arena.  An arena must not be shared by two concurrent
  /// runs (see pool.hpp); the serve layer leases one arena per worker.
  BufferPool* arena = nullptr;
};

// Why the execution engine is invisible to the T/W cost model
// -----------------------------------------------------------
// run() executes programs with a pooled register file: freed buffers are
// recycled instead of returned to the allocator, Move executes as a buffer
// swap when Program::last_use proves the source dead, and Arith /
// Enumerate / ScanPlus / Select (the serial pack never writes past its
// read index) write their result in place over a dead source operand.
// None of this can be observed through the paper's semantics:
//
//   * T charges 1 per executed instruction and W charges the *lengths* of
//     the registers an instruction touches (section 2).  Both are functions
//     of the register *contents*, never of where those contents live in
//     host memory.  Buffer reuse changes addresses only, so the engine
//     charges exactly the costs the naive interpreter charges -- a Move
//     executed as an O(1) pointer swap still charges 2*|V_j|.
//   * Stealing a buffer mutates only registers that liveness proved dead on
//     every path (opt/liveness.hpp), so no later read -- including the
//     output extraction at Halt, where V_0..V_{num_outputs-1} are live by
//     the boundary condition -- can see the difference.
//   * Trap order is preserved: every certificate (operand bounds, length
//     equalities, route sums) is checked before the first byte of any
//     register is overwritten, and in-place elementwise kernels are
//     index-aligned, so a mid-kernel EvalError aborts the run exactly as
//     it does with a fresh output buffer.
//
// The machine therefore runs at hardware speed (no per-instruction
// allocation, no deep copies) while reporting costs bit-identical to
// run_reference(), the original allocate-per-instruction interpreter kept
// below for differential testing and benchmarking.

/// Execute a program.  Throws MachineError on ill-formed programs
/// (register/length/jump violations) and FuelExhausted past the budget.
RunResult run(const Program& program,
              const std::vector<std::vector<std::uint64_t>>& inputs,
              const RunConfig& cfg = {});

/// The v1 interpreter: a fresh heap-allocated output vector per
/// instruction, deep-copying Move, serial route/scan/select kernels.
/// Semantically identical to run() (outputs, traps, T, W, trace); kept as
/// the differential-testing baseline and the "v1" column of
/// bench/bench_machine.cpp.
RunResult run_reference(const Program& program,
                        const std::vector<std::vector<std::uint64_t>>& inputs,
                        const RunConfig& cfg = {});

/// Assembler with labels, for writing programs by hand (tests, examples)
/// and for the SA -> BVRAM code generator.
class Assembler {
 public:
  /// Reserve a fresh register; returns its index.
  std::uint32_t reg();
  /// Ensure at least n registers exist (used to pin input registers).
  void reserve_regs(std::size_t n);

  /// Debug site stamped onto every subsequently emitted instruction
  /// (index into the caller's DebugTable; 0 = unknown, the default).
  /// The SA compiler brackets each NSA node's emission with
  /// set_site(node site) / set_site(previous), so instructions inherit
  /// the nearest enclosing source-attributed combinator.
  void set_site(std::uint32_t site) { site_ = site; }
  std::uint32_t site() const { return site_; }

  // -- instruction emitters ------------------------------------------------
  void move(std::uint32_t dst, std::uint32_t src);
  void arith(std::uint32_t dst, ArithOp op, std::uint32_t a, std::uint32_t b);
  void load_empty(std::uint32_t dst);
  void load_const(std::uint32_t dst, std::uint64_t n);
  void append(std::uint32_t dst, std::uint32_t a, std::uint32_t b);
  void length(std::uint32_t dst, std::uint32_t src);
  void enumerate(std::uint32_t dst, std::uint32_t src);
  void bm_route(std::uint32_t dst, std::uint32_t bound, std::uint32_t counts,
                std::uint32_t data);
  void sbm_route(std::uint32_t dst, std::uint32_t bound, std::uint32_t counts,
                 std::uint32_t data, std::uint32_t segs);
  void select(std::uint32_t dst, std::uint32_t src);
  void scan_plus(std::uint32_t dst, std::uint32_t src);
  void halt();

  // -- labels ---------------------------------------------------------------
  using Label = std::size_t;
  Label fresh_label();
  void bind(Label l);  ///< bind the label to the next instruction
  void jump(Label l);
  void jump_if_empty(std::uint32_t reg, Label l);

  /// Finish: resolves labels; `num_inputs`/`num_outputs` describe the I/O
  /// convention of the finished program.  Throws MachineError if any jump
  /// references a label that was never bound, or if any resolved target
  /// (including the not-taken edge of a GotoIfEmpty) falls outside
  /// [0, code.size()].
  Program finish(std::size_t num_inputs, std::size_t num_outputs);

 private:
  void check_label(Label l) const;
  /// Every emitter funnels through here so the current debug site is
  /// stamped exactly once.
  void push(Instr in);

  std::vector<Instr> code_;
  std::vector<std::ptrdiff_t> label_addr_;     // -1 = unbound
  std::vector<std::pair<std::size_t, Label>> fixups_;
  std::uint32_t next_reg_ = 0;
  std::uint32_t site_ = 0;
};

}  // namespace nsc::bvram
