// The execution engine's buffer primitives, split out of machine.cpp so
// the register-file pool can outlive a single run (the serve layer's
// shared arenas, src/serve/arena.hpp).
//
//   Buf         a raw uninitialized uint64 buffer: growing never
//               value-initializes and shrinking/regrowing within capacity
//               never touches the allocator -- the two properties the
//               pooled register file is built on.
//   BufferPool  a recycling allocator of Bufs.  Within one run it bounds
//               the engine's footprint by the program's own peak register
//               footprint (PR 3); kept across runs of the same program it
//               makes steady-state execution allocation-free: every
//               acquire is served by a buffer recycled from the previous
//               run, so the allocator is touched only while the pool
//               warms up (the serve layer's amortization claim, gated by
//               the Arena.* tests).
//
// A BufferPool is NOT thread-safe: it is either private to one Engine
// (the historical per-run pool) or leased to exactly one worker at a time
// (serve::ArenaPool hands out exclusive leases).  Sharing one pool
// between two concurrent runs is a data race by construction.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <new>
#include <utility>
#include <vector>

namespace nsc::bvram {

/// A raw uninitialized uint64 buffer: the engine's register representation.
/// Unlike std::vector, growing never value-initializes (every kernel writes
/// every slot of its output) and shrinking/regrowing within capacity never
/// touches the allocator.
class Buf {
 public:
  Buf() = default;
  Buf(Buf&& o) noexcept
      : d_(std::exchange(o.d_, nullptr)),
        n_(std::exchange(o.n_, 0)),
        cap_(std::exchange(o.cap_, 0)) {}
  Buf& operator=(Buf&& o) noexcept {
    if (this != &o) {
      std::free(d_);
      d_ = std::exchange(o.d_, nullptr);
      n_ = std::exchange(o.n_, 0);
      cap_ = std::exchange(o.cap_, 0);
    }
    return *this;
  }
  Buf(const Buf&) = delete;
  Buf& operator=(const Buf&) = delete;
  ~Buf() { std::free(d_); }

  std::size_t size() const { return n_; }
  std::size_t capacity() const { return cap_; }
  bool empty() const { return n_ == 0; }
  std::uint64_t* data() { return d_; }
  const std::uint64_t* data() const { return d_; }
  std::uint64_t& operator[](std::size_t i) { return d_[i]; }
  std::uint64_t operator[](std::size_t i) const { return d_[i]; }

  void clear() { n_ = 0; }

  /// Set the size to n, contents uninitialized.  Reallocates (discarding
  /// the old contents) only when the capacity is insufficient.  Capacity
  /// is rounded up to a power of two so that a recycled buffer always
  /// satisfies any later request of its own size class -- BufferPool bins
  /// spares by floor(log2(capacity)), and without the rounding a buffer
  /// of capacity 3 would land in bin 1 while an acquire of 3 (which must
  /// start at bin 2 to be guaranteed a fit) could never find it again.
  void reset_size(std::size_t n) {
    if (n > cap_) {
      static constexpr std::size_t kMaxElems =
          std::numeric_limits<std::size_t>::max() / sizeof(std::uint64_t) / 2;
      if (n > kMaxElems) throw std::bad_alloc();
      std::size_t cap = 1;
      while (cap < n) cap <<= 1;
      if (cap > kMaxElems) cap = n;
      std::free(d_);
      d_ = nullptr;
      cap_ = 0;
      d_ = static_cast<std::uint64_t*>(
          std::malloc(cap * sizeof(std::uint64_t)));
      if (d_ == nullptr) throw std::bad_alloc();
      cap_ = cap;
    }
    n_ = n;
  }

  void assign(const std::vector<std::uint64_t>& v) {
    reset_size(v.size());
    if (!v.empty()) {
      std::memcpy(d_, v.data(), v.size() * sizeof(std::uint64_t));
    }
  }

  std::vector<std::uint64_t> to_vec() const {
    return n_ == 0 ? std::vector<std::uint64_t>{}
                   : std::vector<std::uint64_t>(d_, d_ + n_);
  }

  void swap(Buf& o) noexcept {
    std::swap(d_, o.d_);
    std::swap(n_, o.n_);
    std::swap(cap_, o.cap_);
  }

 private:
  std::uint64_t* d_ = nullptr;
  std::size_t n_ = 0;
  std::size_t cap_ = 0;
};

/// A recycling Buf allocator.  Spares are binned by power-of-two capacity
/// class (bin b holds buffers with capacity in [2^b, 2^{b+1})), so both
/// acquire and recycle are O(1): an acquire of n pops the first non-empty
/// bin that guarantees capacity >= n, a recycle pushes onto its bin's
/// LIFO stack.  O(1) matters here -- a register file parks hundreds of
/// buffers per run into a cross-run arena (RunConfig::arena), and a
/// linear best-fit scan per acquire would cost more than the mallocs the
/// pool exists to avoid.  When no bin can satisfy a request the pool
/// sacrifices its largest spare (one realloc instead of a fresh heap
/// block, and the buffer population stays bounded).
class BufferPool {
 public:
  BufferPool() = default;
  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  Buf acquire(std::size_t n) {
    // Smallest bin every member of which has capacity >= n.
    const int want = n <= 1 ? 0 : bin_of(n - 1) + 1;
    Buf b;
    int from = -1;
    for (int bin = want; bin < kBins; ++bin) {
      if (!bins_[bin].empty()) {
        from = bin;
        break;
      }
    }
    if (from >= 0) {
      ++hits_;
    } else {
      ++misses_;
      // Sacrifice the largest spare: realloc beats a fresh heap block and
      // keeps the circulating buffer population bounded.
      for (int bin = want - 1; bin >= 0; --bin) {
        if (!bins_[bin].empty()) {
          from = bin;
          break;
        }
      }
    }
    if (from >= 0) {
      b = std::move(bins_[from].back());
      bins_[from].pop_back();
      --count_;
    }
    b.reset_size(n);
    return b;
  }

  /// Park a buffer for reuse; zero-capacity buffers are dropped (nothing
  /// to recycle).
  void recycle(Buf&& b) {
    if (b.capacity() == 0) return;
    bins_[bin_of(b.capacity())].push_back(std::move(b));
    ++count_;
  }

  /// Drop every spare buffer, returning the memory to the allocator.  The
  /// hit/miss counters are monotonic and survive (they describe the
  /// pool's lifetime, not its current contents).
  void reset() {
    for (auto& bin : bins_) bin.clear();
    count_ = 0;
  }

  std::size_t spare_count() const { return count_; }
  std::size_t spare_bytes() const {
    std::size_t total = 0;
    for (const auto& bin : bins_) {
      for (const Buf& b : bin) total += b.capacity() * sizeof(std::uint64_t);
    }
    return total;
  }

  /// Lifetime counters: acquires served from a spare vs acquires that had
  /// to touch the allocator (malloc or realloc-via-sacrifice).
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }

 private:
  static constexpr int kBins = 64;

  /// floor(log2(cap)) for cap >= 1.
  static int bin_of(std::size_t cap) {
    int b = 0;
    while (cap >>= 1) ++b;
    return b;
  }

  std::vector<Buf> bins_[kBins];
  std::size_t count_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace nsc::bvram
